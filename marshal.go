package mpcbf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
)

// MarshalBinary implements encoding.BinaryMarshaler: the complete filter
// state (geometry, counters, saturated words) in a deterministic
// little-endian format. This is how Section V's reduce-side join ships a
// loaded filter to every map task (the DistributedCache pattern).
func (m *MPCBF) MarshalBinary() ([]byte, error) {
	return m.f.MarshalBinary()
}

// UnmarshalMPCBF reconstructs a filter serialized with MarshalBinary. The
// result is fully functional and independent of the original.
func UnmarshalMPCBF(data []byte) (*MPCBF, error) {
	f, err := core.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return &MPCBF{f: f}, nil
}

// MarshalBinary serializes a sharded filter: a small header followed by
// each shard's encoding. Not safe to call concurrently with updates.
func (s *Sharded) MarshalBinary() ([]byte, error) {
	out := make([]byte, 12)
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(s.shards)))
	binary.LittleEndian.PutUint64(out[4:12], uint64(s.count.Load()))
	for i := range s.shards {
		blob, err := s.shards[i].f.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("mpcbf: shard %d: %w", i, err)
		}
		var size [4]byte
		binary.LittleEndian.PutUint32(size[:], uint32(len(blob)))
		out = append(out, size[:]...)
		out = append(out, blob...)
	}
	return out, nil
}

// UnmarshalSharded reconstructs a sharded filter serialized with
// (*Sharded).MarshalBinary. The shard-selection seed is not stored in the
// shard blobs, so the original construction seed must be supplied.
func UnmarshalSharded(data []byte, seed uint32) (*Sharded, error) {
	if len(data) < 12 {
		return nil, errors.New("mpcbf: truncated sharded filter")
	}
	nShards := int(binary.LittleEndian.Uint32(data[0:4]))
	count := int64(binary.LittleEndian.Uint64(data[4:12]))
	if nShards < 1 || nShards > 1<<20 || count < 0 {
		return nil, errors.New("mpcbf: implausible sharded header")
	}
	s := &Sharded{
		shards: make([]shard, nShards),
		pick:   pickHasher(seed),
	}
	off := 12
	for i := 0; i < nShards; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("mpcbf: truncated at shard %d", i)
		}
		size := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
		if size < 0 || off+size > len(data) {
			return nil, fmt.Errorf("mpcbf: bad shard %d size %d", i, size)
		}
		f, err := UnmarshalMPCBF(data[off : off+size])
		if err != nil {
			return nil, fmt.Errorf("mpcbf: shard %d: %w", i, err)
		}
		s.shards[i].f = f
		off += size
	}
	if off != len(data) {
		return nil, errors.New("mpcbf: trailing bytes after shards")
	}
	s.count.Store(count)
	return s, nil
}
