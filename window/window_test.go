package window

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	mpcbf "repro"
)

func testOptions(g int) Options {
	return Options{
		Span:        time.Second,
		Generations: g,
		Filter:      mpcbf.Options{MemoryBits: 1 << 19, ExpectedItems: 4096},
		Shards:      4,
	}
}

func wkey(s string, i int) []byte { return []byte(fmt.Sprintf("%s-%06d", s, i)) }

func TestWindowBasics(t *testing.T) {
	f, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if f.Generations() != 4 || f.RotateEvery() != 250*time.Millisecond {
		t.Fatalf("shape: G=%d rotateEvery=%v", f.Generations(), f.RotateEvery())
	}
	for i := 0; i < 100; i++ {
		if err := f.Insert(wkey("a", i)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Len() != 100 {
		t.Fatalf("Len = %d, want 100", f.Len())
	}
	for i := 0; i < 100; i++ {
		if !f.Contains(wkey("a", i)) {
			t.Fatalf("key %d missing immediately after insert", i)
		}
	}
	if f.Contains([]byte("never-inserted-key-xyz")) {
		t.Error("false positive on an empty-ish window (possible but wildly unlikely at this load)")
	}
}

// TestWindowExpiry pins the retirement contract: a full-span key
// survives G-1 rotations and is gone after G.
func TestWindowExpiry(t *testing.T) {
	f, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = wkey("exp", i)
	}
	if err := f.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		f.Rotate()
		for i, k := range keys {
			if !f.Contains(k) {
				t.Fatalf("key %d lost after %d rotations (must survive %d)", i, r, 3)
			}
		}
	}
	f.Rotate() // 4th rotation retires the insert generation
	for i, k := range keys {
		if f.Contains(k) {
			t.Fatalf("key %d still present after G rotations (ring empty, so this is a real leak)", i)
		}
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d after full ring turnover, want 0", f.Len())
	}
	if f.Rotations() != 4 {
		t.Fatalf("Rotations = %d, want 4", f.Rotations())
	}
}

// TestWindowTTLPlacement: a short-TTL key retires earlier than a
// full-span key inserted at the same instant.
func TestWindowTTLPlacement(t *testing.T) {
	f, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	short := []byte("short-ttl-key")
	long := []byte("long-ttl-key")
	// rotateEvery = 250ms; ttl 100ms -> survives ceil(100/250)+1 = 2 rotations.
	if err := f.InsertTTL(short, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(long); err != nil {
		t.Fatal(err)
	}
	if got := f.RotationsFor(100 * time.Millisecond); got != 2 {
		t.Fatalf("RotationsFor(100ms) = %d, want 2", got)
	}
	if got := f.RotationsFor(time.Second); got != 4 {
		t.Fatalf("RotationsFor(span) = %d, want 4 (clamped)", got)
	}
	if got := f.RotationsFor(0); got != 1 {
		t.Fatalf("RotationsFor(0) = %d, want 1", got)
	}
	f.Rotate()
	if !f.Contains(short) || !f.Contains(long) {
		t.Fatal("keys lost after 1 rotation")
	}
	f.Rotate()
	if f.Contains(short) {
		t.Error("short-TTL key survived past its 2-rotation placement")
	}
	if !f.Contains(long) {
		t.Fatal("full-span key lost after 2 rotations")
	}
}

// TestWindowSingleGeneration pins the G=1 degenerate case: the ring is
// one filter, every rotation clears the whole window, and nothing
// panics or wedges.
func TestWindowSingleGeneration(t *testing.T) {
	f, err := New(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if f.RotateEvery() != f.Span() {
		t.Fatalf("G=1 rotateEvery %v != span %v", f.RotateEvery(), f.Span())
	}
	k := []byte("solo")
	if err := f.Insert(k); err != nil {
		t.Fatal(err)
	}
	if !f.Contains(k) {
		t.Fatal("key missing before rotation")
	}
	if got := f.RotationsFor(time.Millisecond); got != 1 {
		t.Fatalf("G=1 RotationsFor = %d, want 1", got)
	}
	f.Rotate()
	if f.Contains(k) {
		t.Fatal("G=1 rotation must clear the window")
	}
	if f.Len() != 0 || f.Head() != 0 || f.Rotations() != 1 {
		t.Fatalf("G=1 post-rotation state: len=%d head=%d rot=%d", f.Len(), f.Head(), f.Rotations())
	}
	// The cleared ring accepts new inserts immediately.
	if err := f.Insert(k); err != nil {
		t.Fatal(err)
	}
	if !f.Contains(k) {
		t.Fatal("re-insert after G=1 rotation lost")
	}
}

// TestWindowQueriesRacingRotation hammers Contains/Insert/batch paths
// from many goroutines while another rotates continuously. Run under
// -race (make race-serving covers this package); the assertion is the
// in-window zero-false-negative contract for keys younger than one
// rotation.
func TestWindowQueriesRacingRotation(t *testing.T) {
	for _, g := range []int{1, 4} {
		t.Run(fmt.Sprintf("G=%d", g), func(t *testing.T) {
			f, err := New(testOptions(g))
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			rotatorDone := make(chan struct{})
			go func() { // rotator
				defer close(rotatorDone)
				for {
					select {
					case <-stop:
						return
					default:
						f.Rotate()
					}
				}
			}()
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 2000; i++ {
						k := wkey(fmt.Sprintf("race-%d", w), i)
						if err := f.Insert(k); err != nil {
							t.Errorf("insert: %v", err)
							return
						}
						// The key may rotate out at any moment (the rotator is
						// spinning), so membership can be false — the point is
						// the race detector and that nothing panics.
						f.Contains(k)
						f.ContainsBatch([][]byte{k, wkey("other", i)})
						f.Len()
						f.Stats()
					}
				}(w)
			}
			wg.Wait() // writers first, then stop the rotator
			close(stop)
			<-rotatorDone
		})
	}
}

func TestWindowContainsBatch(t *testing.T) {
	f, err := New(testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	old := [][]byte{wkey("old", 1), wkey("old", 2)}
	if err := f.InsertBatch(old); err != nil {
		t.Fatal(err)
	}
	f.Rotate()
	f.Rotate()
	fresh := [][]byte{wkey("new", 1), wkey("new", 2)}
	if err := f.InsertBatch(fresh); err != nil {
		t.Fatal(err)
	}
	// Mixed batch: old keys (2 rotations deep), fresh keys, absent keys.
	batch := [][]byte{old[0], fresh[0], wkey("absent", 1), old[1], fresh[1], wkey("absent", 2)}
	want := []bool{true, true, false, true, true, false}
	got := f.ContainsBatch(batch)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch flag %d = %v, want %v (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestWindowDelete(t *testing.T) {
	f, err := New(testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	k := []byte("deletable")
	if err := f.Insert(k); err != nil {
		t.Fatal(err)
	}
	f.Rotate() // key now lives in a non-head generation
	if err := f.Delete(k); err != nil {
		t.Fatalf("delete of aged key: %v", err)
	}
	if f.Contains(k) {
		t.Fatal("key present after delete")
	}
	if err := f.Delete([]byte("never-there")); err == nil {
		t.Fatal("delete of absent key succeeded")
	}
	// Batch: one present, one absent.
	if err := f.Insert(k); err != nil {
		t.Fatal(err)
	}
	ok, _ := f.DeleteBatch([][]byte{k, []byte("still-not-there")})
	if !ok[0] || ok[1] {
		t.Fatalf("DeleteBatch flags = %v, want [true false]", ok)
	}
}

func TestWindowPreciseTTL(t *testing.T) {
	opts := testOptions(4)
	opts.Precise = true
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	k := []byte("precise-key")
	if err := f.InsertTTL(k, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !f.Contains(k) {
		t.Fatal("key missing before TTL")
	}
	if f.PendingExpiries() != 1 {
		t.Fatalf("PendingExpiries = %d, want 1", f.PendingExpiries())
	}
	if n := f.ExpireDue(time.Now()); n != 0 {
		t.Fatalf("premature expiry removed %d keys", n)
	}
	if n := f.ExpireDue(time.Now().Add(20 * time.Millisecond)); n != 1 {
		t.Fatalf("due expiry removed %d keys, want 1", n)
	}
	if f.Contains(k) {
		t.Fatal("key present after precise expiry")
	}
	// A rotated-out entry is skipped, not re-deleted from the fresh
	// generation.
	if err := f.InsertTTL(k, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		f.Rotate()
	}
	if err := f.Insert(k); err != nil { // same key, fresh generation
		t.Fatal(err)
	}
	if n := f.ExpireDue(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("stale-epoch expiry removed %d keys, want 0", n)
	}
	if !f.Contains(k) {
		t.Fatal("fresh insert deleted by a stale expiry entry")
	}
}

func TestWindowMarshalRoundTrip(t *testing.T) {
	f, err := New(testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := f.Insert(wkey("m", i)); err != nil {
			t.Fatal(err)
		}
	}
	f.Rotate()
	for i := 50; i < 80; i++ {
		if err := f.Insert(wkey("m", i)); err != nil {
			t.Fatal(err)
		}
	}

	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !IsWindowed(blob) {
		t.Fatal("IsWindowed false on a windowed blob")
	}
	g, err := UnmarshalFilter(blob)
	if err != nil {
		t.Fatal(err)
	}
	if g.Head() != f.Head() || g.Rotations() != f.Rotations() || g.Len() != f.Len() ||
		g.Span() != f.Span() || g.Generations() != f.Generations() {
		t.Fatalf("restored shape mismatch: %+v vs %+v", g.Stats(), f.Stats())
	}
	for i := 0; i < 80; i++ {
		if !g.Contains(wkey("m", i)) {
			t.Fatalf("restored window lost key %d", i)
		}
	}
	// The restored ring must retire exactly like the original: one more
	// rotation drops the first 50, three more drop the rest.
	f.Rotate()
	g.Rotate()
	for _, w := range []*Filter{f, g} {
		for i := 0; i < 3; i++ {
			w.Rotate()
		}
		if w.Len() != 0 {
			t.Fatalf("ring not empty after full turnover: %d", w.Len())
		}
	}

	// Re-marshaling the restored filter reproduces the original bytes —
	// the byte-identical property the replication e2e relies on.
	blob2, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := UnmarshalFilter(blob2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Rotations() != g.Rotations() {
		t.Fatal("double round-trip drifted")
	}
}

func TestWindowUnmarshalRejectsCorrupt(t *testing.T) {
	f, err := New(testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       blob[:8],
		"bad magic":   append([]byte{1, 2, 3, 4}, blob[4:]...),
		"bad version": func() []byte { b := bytes.Clone(blob); b[4] = 99; return b }(),
		"bad head":    func() []byte { b := bytes.Clone(blob); b[12] = 7; return b }(),
		"truncated":   blob[:len(blob)-5],
		"trailing":    append(bytes.Clone(blob), 0xFF),
	}
	for name, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := UnmarshalFilter(blob); err != nil {
		t.Fatalf("pristine blob rejected: %v", err)
	}
}

func TestWindowOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("zero Span accepted")
	}
	// Defaults: G=4, Shards=16.
	f, err := New(Options{Span: time.Second, Filter: mpcbf.Options{MemoryBits: 1 << 20, ExpectedItems: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Generations() != 4 {
		t.Fatalf("default G = %d, want 4", f.Generations())
	}
}

func TestWindowStats(t *testing.T) {
	f, err := New(testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := f.Insert(wkey("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	f.Rotate()
	st := f.Stats()
	if st.Generations != 3 || st.Rotations != 1 || st.Head != 1 {
		t.Fatalf("stats shape: %+v", st)
	}
	total := 0
	for _, n := range st.GenItems {
		total += n
	}
	if total != 10 || total != f.Len() {
		t.Fatalf("GenItems sum %d != Len %d", total, f.Len())
	}
	if f.MemoryBits() != 3*(1<<19) {
		t.Fatalf("MemoryBits = %d", f.MemoryBits())
	}
	if f.HeadShardStats() == nil {
		t.Fatal("HeadShardStats nil")
	}
	_ = f.FillRatio()
	_ = f.SaturatedWords()
}
