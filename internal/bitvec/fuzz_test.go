package bitvec

import "testing"

// FuzzShiftRoundTrip checks the HCBF workhorse identity on arbitrary bit
// patterns: inserting a zero at any position of a window whose final bit
// is clear, then removing it, restores the window exactly.
func FuzzShiftRoundTrip(f *testing.F) {
	f.Add([]byte{0xFF, 0x00, 0xAA}, uint8(3))
	f.Add([]byte{0x01}, uint8(0))
	f.Add(make([]byte, 40), uint8(200))

	f.Fuzz(func(t *testing.T, pattern []byte, posRaw uint8) {
		n := len(pattern) * 8
		if n < 2 {
			return
		}
		v := New(n)
		for i := 0; i < n; i++ {
			if pattern[i/8]&(1<<(i%8)) != 0 {
				v.Set(i, true)
			}
		}
		v.Set(n-1, false)
		before := v.Clone()
		pos := int(posRaw) % n
		onesBefore := v.Ones(0, n)

		v.InsertZero(pos, n)
		if v.Get(pos) {
			t.Fatalf("InsertZero left a one at %d", pos)
		}
		if v.Ones(0, n) != onesBefore {
			t.Fatalf("popcount changed: %d -> %d", onesBefore, v.Ones(0, n))
		}
		v.RemoveBit(pos, n)
		if !v.Equal(before) {
			t.Fatalf("insert+remove at %d not identity:\nwant %s\n got %s", pos, before, v)
		}
	})
}

// FuzzOnesConsistency cross-checks range popcounts against bit-by-bit
// counting for arbitrary patterns and ranges.
func FuzzOnesConsistency(f *testing.F) {
	f.Add([]byte{0xF0, 0x0F, 0xCC}, uint8(2), uint8(20))
	f.Fuzz(func(t *testing.T, pattern []byte, aRaw, bRaw uint8) {
		n := len(pattern) * 8
		if n == 0 {
			return
		}
		v := New(n)
		for i := 0; i < n; i++ {
			if pattern[i/8]&(1<<(i%8)) != 0 {
				v.Set(i, true)
			}
		}
		a := int(aRaw) % (n + 1)
		b := int(bRaw) % (n + 1)
		if a > b {
			a, b = b, a
		}
		want := 0
		for i := a; i < b; i++ {
			if v.Get(i) {
				want++
			}
		}
		if got := v.Ones(a, b); got != want {
			t.Fatalf("Ones(%d,%d) = %d, want %d", a, b, got, want)
		}
	})
}
