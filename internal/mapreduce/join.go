package mapreduce

import (
	"errors"
	"strings"
	"time"
)

// MembershipFilter is the map-side filter contract of the reduce-side join
// (the paper broadcasts a CBF or MPCBF via DistributedCache). A nil filter
// reproduces the unfiltered baseline join.
type MembershipFilter interface {
	Contains(key []byte) bool
}

// Join tags, mirroring Fig. 13: the left (small) table and the right
// (large) table of the join.
const (
	tagLeft  = "L"
	tagRight = "R"
)

// JoinStats summarizes a reduce-side join run with the quantities Table IV
// compares across filters.
type JoinStats struct {
	// MapOutputRecords is how many records survived the map phase (the
	// filter's effect shows up here).
	MapOutputRecords int64
	// JoinedRows is the number of output rows (must be filter-invariant).
	JoinedRows int
	// RightDropped counts right-table records the filter eliminated.
	RightDropped int64
	// FilterFalsePositives counts right-table records the filter passed
	// whose key has no left-table match (shuffled for nothing).
	FilterFalsePositives int64
	// Elapsed is the total job wall time.
	Elapsed time.Duration
	// ShuffleBytes approximates cross-node traffic.
	ShuffleBytes int64
	Counters     map[string]int64
}

// ReduceSideJoin joins left and right on their keys using the engine,
// optionally filtering right-table records in the map phase with a
// membership filter built over the left table's keys. The emitted rows are
// "leftValue|rightValue" under the join key.
//
// Keys must not contain the '\x00' tag separator.
func ReduceSideJoin(left, right []KV, filter MembershipFilter, mapTasks, reduceTasks int) (*Result, JoinStats, error) {
	if strings.ContainsAny(tagLeft+tagRight, "\x00") {
		return nil, JoinStats{}, errors.New("mapreduce: invalid tags")
	}
	// Build the tagged input: the engine sees one record stream, as a
	// Hadoop job would after input-format union.
	input := make([]KV, 0, len(left)+len(right))
	for _, kv := range left {
		input = append(input, KV{kv.Key, tagLeft + "\x00" + kv.Value})
	}
	for _, kv := range right {
		input = append(input, KV{kv.Key, tagRight + "\x00" + kv.Value})
	}

	mapper := MapperFunc(func(key, value string, emit Emitter) {
		if filter != nil && strings.HasPrefix(value, tagRight) {
			if !filter.Contains([]byte(key)) {
				return // filtered out before the shuffle
			}
		}
		emit(key, value)
	})

	reducer := ReducerFunc(func(key string, values []string, emit Emitter) {
		var lefts, rights []string
		for _, v := range values {
			sep := strings.IndexByte(v, 0)
			if sep < 0 {
				continue
			}
			switch v[:sep] {
			case tagLeft:
				lefts = append(lefts, v[sep+1:])
			case tagRight:
				rights = append(rights, v[sep+1:])
			}
		}
		for _, l := range lefts {
			for _, r := range rights {
				emit(key, l+"|"+r)
			}
		}
	})

	start := time.Now()
	res, err := Run(Job{
		Name:        "reduce-side-join",
		Input:       input,
		Mapper:      mapper,
		Reducer:     reducer,
		MapTasks:    mapTasks,
		ReduceTasks: reduceTasks,
	})
	if err != nil {
		return nil, JoinStats{}, err
	}
	elapsed := time.Since(start)

	// Post-hoc filter audit: which right keys actually had a match.
	leftKeys := make(map[string]bool, len(left))
	for _, kv := range left {
		leftKeys[kv.Key] = true
	}
	var dropped, falsePos int64
	for _, kv := range right {
		passed := filter == nil || filter.Contains([]byte(kv.Key))
		if !passed {
			dropped++
		} else if !leftKeys[kv.Key] {
			falsePos++
		}
	}

	return res, JoinStats{
		MapOutputRecords:     res.Counters[CounterMapOutputRecords],
		JoinedRows:           len(res.Output),
		RightDropped:         dropped,
		FilterFalsePositives: falsePos,
		Elapsed:              elapsed,
		ShuffleBytes:         res.ShuffleBytes,
		Counters:             res.Counters,
	}, nil
}
