// Command mpcbf is a small command-line front end to the filter library:
// it builds a filter over keys read from a file (or stdin), then answers
// membership queries, reporting the measured false positive budget.
//
// Usage:
//
//	mpcbf -type mpcbf -mem 1048576 -insert keys.txt -query probes.txt
//	echo -e "alpha\nbeta" | mpcbf -type cbf -mem 65536 -query -
//
// Each line of the insert file is one key; each line of the query file is
// answered with "yes <key>" or "no <key>".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	mpcbf "repro"
)

func main() {
	var (
		typ    = flag.String("type", "mpcbf", "filter type: mpcbf | cbf | pcbf | bloom | blocked")
		mem    = flag.Int("mem", 1<<20, "memory budget in bits")
		items  = flag.Int("n", 0, "expected distinct items (default: size of the insert set)")
		k      = flag.Int("k", 3, "hash functions")
		g      = flag.Int("g", 1, "memory accesses per key (MPCBF-g / PCBF-g / BF-g)")
		seed   = flag.Uint("seed", 1, "hash seed")
		insert = flag.String("insert", "", "file of keys to insert, one per line ('-' = stdin)")
		query  = flag.String("query", "", "file of keys to query, one per line ('-' = stdin)")
		stats  = flag.Bool("stats", false, "print geometry and expected fpr")
	)
	flag.Parse()

	inserts, err := readLines(*insert)
	if err != nil {
		fatal(err)
	}
	n := *items
	if n == 0 {
		n = len(inserts)
		if n == 0 {
			n = 1000
		}
	}

	opts := mpcbf.Options{
		MemoryBits:     *mem,
		ExpectedItems:  n,
		HashFunctions:  *k,
		MemoryAccesses: *g,
		Seed:           uint32(*seed),
	}

	type filter interface {
		Contains([]byte) bool
	}
	var (
		f      filter
		insFn  func([]byte) error
		expFPR func(int) float64
	)
	switch *typ {
	case "mpcbf":
		m, err := mpcbf.New(opts)
		if err != nil {
			fatal(err)
		}
		f, insFn, expFPR = m, m.Insert, m.ExpectedFPR
	case "cbf":
		c, err := mpcbf.NewCBF(opts)
		if err != nil {
			fatal(err)
		}
		f, insFn, expFPR = c, c.Insert, c.ExpectedFPR
	case "pcbf":
		p, err := mpcbf.NewPCBF(opts)
		if err != nil {
			fatal(err)
		}
		f, insFn, expFPR = p, p.Insert, p.ExpectedFPR
	case "bloom":
		bl, err := mpcbf.NewBloom(opts)
		if err != nil {
			fatal(err)
		}
		f, insFn, expFPR = bl, func(k []byte) error { bl.Insert(k); return nil }, bl.ExpectedFPR
	case "blocked":
		bb, err := mpcbf.NewBlockedBloom(opts)
		if err != nil {
			fatal(err)
		}
		f, insFn = bb, func(k []byte) error { bb.Insert(k); return nil }
	default:
		fatal(fmt.Errorf("unknown filter type %q", *typ))
	}

	for _, key := range inserts {
		if err := insFn(key); err != nil {
			fatal(fmt.Errorf("insert %q: %w", key, err))
		}
	}

	if *stats {
		fmt.Printf("type=%s memory=%d bits k=%d g=%d inserted=%d\n",
			*typ, *mem, *k, *g, len(inserts))
		if expFPR != nil {
			fmt.Printf("expected fpr at n=%d: %.3e\n", n, expFPR(n))
		}
	}

	if *query != "" {
		queries, err := readLines(*query)
		if err != nil {
			fatal(err)
		}
		out := bufio.NewWriter(os.Stdout)
		defer out.Flush()
		for _, q := range queries {
			if f.Contains(q) {
				fmt.Fprintf(out, "yes %s\n", q)
			} else {
				fmt.Fprintf(out, "no %s\n", q)
			}
		}
	}
}

func readLines(path string) ([][]byte, error) {
	if path == "" {
		return nil, nil
	}
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		file, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		r = file
	}
	var lines [][]byte
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		line := make([]byte, len(sc.Bytes()))
		copy(line, sc.Bytes())
		lines = append(lines, line)
	}
	return lines, sc.Err()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mpcbf: %v\n", err)
	os.Exit(1)
}
