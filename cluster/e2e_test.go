package cluster

// End-to-end replication test against the real mpcbfd binary: one
// primary and two -replicate-from replicas, concurrent writers on the
// primary, a SIGKILL and restart of one replica mid-stream, then the
// acceptance bar — every acknowledged insert answerable on every node
// and byte-identical filter dumps across the fleet. A read-scaling
// smoke follows: a bounded connection pool per endpoint across the
// three nodes must beat the same pool against the primary alone by 2x.
// The build/spawn/kill plumbing lives in repro/internal/e2e.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/e2e"
)

// startNode launches one daemon; replicateFrom == "" makes it a
// primary.
func startNode(t *testing.T, bin, dir, addr, replicateFrom string) *e2e.Daemon {
	t.Helper()
	return e2e.StartDaemon(t, e2e.DaemonConfig{
		Bin: bin, Dir: dir, Addr: addr, ReplicateFrom: replicateFrom,
	})
}

func e2eKey(writer, i int) []byte {
	return []byte(fmt.Sprintf("e2e-w%d-%05d", writer, i))
}

// readPool hammers addr with CONTAINS from conns connections for dur
// and returns the completed-request count.
func readPool(t *testing.T, addr []string, conns int, dur time.Duration) uint64 {
	t.Helper()
	var total atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, a := range addr {
		for g := 0; g < conns; g++ {
			c, err := client.Dial(a, client.WithTimeout(5*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(c *client.Client, g int) {
				defer wg.Done()
				defer c.Close()
				key := e2eKey(g%4, g)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := c.Contains(key); err != nil {
						return
					}
					total.Add(1)
				}
			}(c, g)
		}
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return total.Load()
}

func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test builds and runs the daemon binary")
	}
	bin := e2e.BuildDaemon(t)

	paddr := e2e.FreePort(t)
	r1addr := e2e.FreePort(t)
	r2addr := e2e.FreePort(t)
	pdir := filepath.Join(t.TempDir(), "primary")
	r1dir := filepath.Join(t.TempDir(), "replica1")
	r2dir := filepath.Join(t.TempDir(), "replica2")

	primary := startNode(t, bin, pdir, paddr, "")
	pc := e2e.DialRetry(t, paddr)
	defer pc.Close()

	startNode(t, bin, r1dir, r1addr, paddr)
	r2 := startNode(t, bin, r2dir, r2addr, paddr)
	rc1 := e2e.DialRetry(t, r1addr)
	defer rc1.Close()
	e2e.DialRetry(t, r2addr).Close()

	// Concurrent writers: every nil-error return is an acknowledged,
	// fsync'd mutation the whole fleet must eventually serve.
	const writers, perWriter = 4, 1000
	var acked atomic.Uint64
	var wg sync.WaitGroup
	writerErr := make(chan error, writers)
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			c, err := client.Dial(paddr, client.WithTimeout(10*time.Second))
			if err != nil {
				writerErr <- err
				return
			}
			defer c.Close()
			for i := 0; i < perWriter; i++ {
				if err := c.Insert(e2eKey(wr, i)); err != nil {
					writerErr <- fmt.Errorf("writer %d key %d: %w", wr, i, err)
					return
				}
				acked.Add(1)
			}
		}(wr)
	}

	// Mid-stream, SIGKILL replica 2 and restart it on the same data
	// directory: recovery must resume the mirror from its durable
	// position with no gap and no re-application.
	for acked.Load() < writers*perWriter/4 {
		time.Sleep(5 * time.Millisecond)
	}
	r2.Kill()
	startNode(t, bin, r2dir, r2addr, paddr)
	rc2 := e2e.DialRetry(t, r2addr)
	defer rc2.Close()

	wg.Wait()
	close(writerErr)
	for err := range writerErr {
		t.Fatal(err)
	}

	want, err := pc.Len()
	if err != nil {
		t.Fatal(err)
	}
	if want != writers*perWriter {
		t.Fatalf("primary Len = %d, want %d", want, writers*perWriter)
	}

	// Convergence: only inserts ran, so Len equality means every record
	// has been applied.
	deadline := time.Now().Add(30 * time.Second)
	for {
		n1, err1 := rc1.Len()
		n2, err2 := rc2.Len()
		if err1 == nil && err2 == nil && n1 == want && n2 == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged: %d / %d, want %d\nreplica2 output:\n%s",
				n1, n2, want, r2.Output())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Zero acked loss, per key, on both replicas.
	for wr := 0; wr < writers; wr++ {
		batch := make([][]byte, perWriter)
		for i := range batch {
			batch[i] = e2eKey(wr, i)
		}
		for which, rc := range []*client.Client{rc1, rc2} {
			flags, err := rc.ContainsBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			for i, ok := range flags {
				if !ok {
					t.Fatalf("replica %d lost acked key %s", which+1, batch[i])
				}
			}
		}
	}

	// Byte-identical state: the WAL is a total order and both replicas
	// mirrored it exactly.
	pdump, err := pc.Dump()
	if err != nil {
		t.Fatal(err)
	}
	for which, rc := range []*client.Client{rc1, rc2} {
		rdump, err := rc.Dump()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pdump, rdump) {
			t.Fatalf("replica %d dump differs from primary (%d vs %d bytes)", which+1, len(rdump), len(pdump))
		}
	}

	// Read-scaling smoke: a 4-connection pool per endpoint across the
	// three nodes vs the same pool against the primary alone. Loopback
	// round trips bound each pool, so the fleet should approach 3x; the
	// acceptance bar is 2x.
	single := readPool(t, []string{paddr}, 4, 700*time.Millisecond)
	fleet := readPool(t, []string{paddr, r1addr, r2addr}, 4, 700*time.Millisecond)
	t.Logf("CONTAINS throughput: single-node %d, fleet %d (%.2fx)",
		single, fleet, float64(fleet)/float64(single))
	// The scaling assertion needs the three daemons and the client to
	// actually run in parallel; on a 1-2 core box the phases just
	// time-slice one CPU and the ratio measures scheduler overhead.
	if runtime.NumCPU() >= 4 {
		if fleet < 2*single {
			t.Fatalf("fleet reads %d < 2x single-node %d", fleet, single)
		}
	} else {
		t.Logf("skipping 2x assertion: %d CPUs cannot parallelize the fleet", runtime.NumCPU())
	}

	_ = primary
}
