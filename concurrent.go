package mpcbf

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hashing"
)

// Sharded is a thread-safe MPCBF for concurrent packet-processing
// pipelines: the key space is split over independent shards, each an
// MPCBF guarded by its own read-write lock, so queries from different
// goroutines proceed in parallel and updates contend only within a shard.
//
// The aggregate geometry matches a single MPCBF of the same total memory:
// each shard receives MemoryBits/shards and ExpectedItems/shards, so the
// false positive rate is unchanged while lock contention drops by the
// shard factor.
type Sharded struct {
	shards []shard
	pick   hashing.Hasher
	seed   uint32
	count  atomic.Int64
}

type shard struct {
	mu sync.RWMutex
	f  *MPCBF

	// Per-shard op counters for hot-shard detection: a skewed key space
	// shows up as one shard's counters running ahead of the rest long
	// before its fill ratio does. Atomics, so reads never take the lock.
	inserts atomic.Uint64
	deletes atomic.Uint64
	queries atomic.Uint64 // Contains + EstimateCount
}

// NewSharded builds a sharded filter from o with the given shard count
// (rounded up to 1). Each shard must still hold at least one word.
func NewSharded(o Options, shards int) (*Sharded, error) {
	if shards < 1 {
		shards = 1
	}
	per := o
	per.MemoryBits = o.MemoryBits / shards
	per.ExpectedItems = (o.ExpectedItems + shards - 1) / shards
	s := &Sharded{
		shards: make([]shard, shards),
		pick:   pickHasher(o.Seed),
		seed:   o.Seed,
	}
	for i := range s.shards {
		// Distinct per-shard hash families avoid correlated word choices.
		cfg := per
		cfg.Seed = o.Seed + uint32(i)*0x9e3779b9
		f, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("mpcbf: shard %d: %w", i, err)
		}
		s.shards[i].f = f
	}
	return s, nil
}

// pickHasher derives the shard-selection hash family from the options
// seed: a distinct stream keeps it independent of the in-filter hashes.
func pickHasher(seed uint32) hashing.Hasher {
	return hashing.NewHasher(seed ^ 0x5bd1e995)
}

// ensureInit catches use of a Sharded that was not built by NewSharded.
// The zero value has no shards and no hash family, so without this check
// the first operation dies as an opaque divide-by-zero inside the shard
// picker; a clear panic names the actual mistake. Read-only aggregates
// (Len, MemoryBits, FillRatio, ShardStats, ...) stay safe on the zero
// value — they range over the empty shard slice and report emptiness.
func (s *Sharded) ensureInit() {
	if len(s.shards) == 0 {
		panic("mpcbf: Sharded used before NewSharded (the zero value holds no shards)")
	}
}

func (s *Sharded) shardOf(key []byte) *shard {
	s.ensureInit()
	idx := s.pick.NewIndexStream(key).Word(0, len(s.shards))
	return &s.shards[idx]
}

// Insert adds key. Safe for concurrent use.
func (s *Sharded) Insert(key []byte) error {
	sh := s.shardOf(key)
	sh.inserts.Add(1)
	sh.mu.Lock()
	err := sh.f.Insert(key)
	sh.mu.Unlock()
	if err == nil {
		s.count.Add(1)
	}
	return err
}

// Delete removes key. Safe for concurrent use. The element count only
// moves when the underlying delete succeeds, so failed deletes of absent
// keys cannot drift it downward.
func (s *Sharded) Delete(key []byte) error {
	sh := s.shardOf(key)
	sh.deletes.Add(1)
	sh.mu.Lock()
	err := sh.f.Delete(key)
	sh.mu.Unlock()
	if err == nil {
		s.count.Add(-1)
	}
	return err
}

// Contains reports whether key may be in the set. Concurrent queries to
// the same shard proceed in parallel (read lock).
func (s *Sharded) Contains(key []byte) bool {
	sh := s.shardOf(key)
	sh.queries.Add(1)
	sh.mu.RLock()
	ok := sh.f.Contains(key)
	sh.mu.RUnlock()
	return ok
}

// EstimateCount returns an upper bound on key's multiplicity.
func (s *Sharded) EstimateCount(key []byte) int {
	sh := s.shardOf(key)
	sh.queries.Add(1)
	sh.mu.RLock()
	n := sh.f.EstimateCount(key)
	sh.mu.RUnlock()
	return n
}

// Len returns the current number of elements.
func (s *Sharded) Len() int { return int(s.count.Load()) }

// MemoryBits returns the aggregate footprint.
func (s *Sharded) MemoryBits() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].f.MemoryBits()
	}
	return total
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Seed returns the construction seed that selects the shard and in-filter
// hash families.
func (s *Sharded) Seed() uint32 { return s.seed }

// SaturatedWords returns how many words across all shards were frozen as
// always-positive by the graceful overflow policy.
func (s *Sharded) SaturatedWords() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.f.SaturatedWords()
		sh.mu.RUnlock()
	}
	return total
}

// ShardStats is a point-in-time view of one shard, for hot-shard
// detection: op counters expose load skew, fill ratio and saturation
// expose capacity skew.
type ShardStats struct {
	Items          int     `json:"items"`
	FillRatio      float64 `json:"fill_ratio"`
	SaturatedWords int     `json:"saturated_words"`
	Inserts        uint64  `json:"inserts"`
	Deletes        uint64  `json:"deletes"`
	Queries        uint64  `json:"queries"`
}

// ShardStats returns per-shard load and capacity statistics, indexed by
// shard number. Counters are read atomically; the filter gauges take
// each shard's read lock briefly.
func (s *Sharded) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		st := &out[i]
		st.Inserts = sh.inserts.Load()
		st.Deletes = sh.deletes.Load()
		st.Queries = sh.queries.Load()
		sh.mu.RLock()
		st.Items = sh.f.Len()
		st.SaturatedWords = sh.f.SaturatedWords()
		mean, _ := sh.f.FillStats()
		g := sh.f.Geometry()
		sh.mu.RUnlock()
		if denom := float64(g.WordBits - g.FirstLevelBits); denom > 0 {
			st.FillRatio = (mean - float64(g.FirstLevelBits)) / denom
		}
	}
	return out
}

// FillRatio returns the fraction of increment capacity consumed across
// every shard, weighted by shard size — a 0..1 load signal for operators.
// Each HCBF word always spends b1 structural bits on its first level;
// only the remaining w-b1 bits absorb increments, so the ratio counts
// those: 0 when empty, 1 when every word is full.
func (s *Sharded) FillRatio() float64 {
	usedBits, totalBits := 0.0, 0.0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		mean, _ := sh.f.FillStats()
		g := sh.f.Geometry()
		sh.mu.RUnlock()
		usedBits += (mean - float64(g.FirstLevelBits)) * float64(g.Words)
		totalBits += float64(g.Words * (g.WordBits - g.FirstLevelBits))
	}
	if totalBits == 0 {
		return 0
	}
	return usedBits / totalBits
}

// InsertBatch inserts keys in parallel: keys are grouped by shard and the
// shard groups are processed concurrently (bounded by workers; 0 means one
// goroutine per shard), so each shard's lock is taken once per batch
// instead of once per key. Errors are joined; successfully inserted keys
// stay inserted.
func (s *Sharded) InsertBatch(keys [][]byte, workers int) error {
	groups := s.group(keys)
	errs := make([]error, len(s.shards))
	s.parallel(workers, func(i int) {
		if len(groups[i]) == 0 {
			return
		}
		sh := &s.shards[i]
		sh.inserts.Add(uint64(len(groups[i])))
		sh.mu.Lock()
		defer sh.mu.Unlock()
		inserted := int64(0)
		for _, k := range groups[i] {
			if err := sh.f.Insert(k); err != nil {
				errs[i] = fmt.Errorf("mpcbf: shard %d: %w", i, err)
				break
			}
			inserted++
		}
		s.count.Add(inserted)
	})
	return errors.Join(errs...)
}

// DeleteBatch removes keys in parallel with the same shard-grouped locking
// as InsertBatch. Unlike InsertBatch it attempts every key even after a
// failure: deleting an absent key is a per-key condition, not a filter
// fault. It returns an order-preserving slice flagging which keys were
// actually removed plus the joined per-key errors, so callers that must
// know the durable outcome (the server's write-ahead log) can record
// exactly the deletes that happened.
func (s *Sharded) DeleteBatch(keys [][]byte, workers int) ([]bool, error) {
	s.ensureInit()
	ok := make([]bool, len(keys))
	// Group key *indices* by shard so results land in place.
	groups := make([][]int, len(s.shards))
	for i, k := range keys {
		idx := s.pick.NewIndexStream(k).Word(0, len(s.shards))
		groups[idx] = append(groups[idx], i)
	}
	errs := make([]error, len(s.shards))
	s.parallel(workers, func(i int) {
		if len(groups[i]) == 0 {
			return
		}
		sh := &s.shards[i]
		sh.deletes.Add(uint64(len(groups[i])))
		sh.mu.Lock()
		defer sh.mu.Unlock()
		deleted := int64(0)
		var shardErrs []error
		for _, ki := range groups[i] {
			if err := sh.f.Delete(keys[ki]); err != nil {
				shardErrs = append(shardErrs, fmt.Errorf("mpcbf: shard %d key %d: %w", i, ki, err))
				continue
			}
			ok[ki] = true
			deleted++
		}
		errs[i] = errors.Join(shardErrs...)
		s.count.Add(-deleted)
	})
	return ok, errors.Join(errs...)
}

// ContainsBatch answers membership for keys in parallel, preserving order.
func (s *Sharded) ContainsBatch(keys [][]byte, workers int) []bool {
	s.ensureInit()
	out := make([]bool, len(keys))
	// Group key *indices* by shard so results land in place.
	groups := make([][]int, len(s.shards))
	for i, k := range keys {
		idx := s.pick.NewIndexStream(k).Word(0, len(s.shards))
		groups[idx] = append(groups[idx], i)
	}
	s.parallel(workers, func(i int) {
		if len(groups[i]) == 0 {
			return
		}
		sh := &s.shards[i]
		sh.queries.Add(uint64(len(groups[i])))
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		for _, ki := range groups[i] {
			out[ki] = sh.f.Contains(keys[ki])
		}
	})
	return out
}

// group partitions keys by owning shard.
func (s *Sharded) group(keys [][]byte) [][][]byte {
	s.ensureInit()
	groups := make([][][]byte, len(s.shards))
	for _, k := range keys {
		idx := s.pick.NewIndexStream(k).Word(0, len(s.shards))
		groups[idx] = append(groups[idx], k)
	}
	return groups
}

// parallel runs fn(i) for every shard index with bounded concurrency.
func (s *Sharded) parallel(workers int, fn func(i int)) {
	if workers <= 0 || workers > len(s.shards) {
		workers = len(s.shards)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Reset clears every shard.
func (s *Sharded) Reset() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].f.Reset()
		s.shards[i].mu.Unlock()
	}
	s.count.Store(0)
}

var _ CountingFilter = (*Sharded)(nil)
