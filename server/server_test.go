package server

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/server/wire"
)

// startTestServer runs a server on a loopback port and returns a
// connected client. Everything is torn down with the test.
func startTestServer(t *testing.T, storeOpts StoreOptions, cfg Config) (*Server, *client.Client) {
	t.Helper()
	store, err := OpenStore(storeOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })

	srv := New(store, cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	c, err := client.Dial(ln.Addr().String(), client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestServerRoundTrips(t *testing.T) {
	srv, c := startTestServer(t, testStoreOptions(t.TempDir()), Config{})

	key := []byte("round-trip")
	if err := c.Insert(key); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(key); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Contains(key)
	if err != nil || !ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	if n, err := c.EstimateCount(key); err != nil || n < 2 {
		t.Fatalf("EstimateCount = %d, %v", n, err)
	}
	if n, err := c.Len(); err != nil || n != 2 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	if err := c.Delete(key); err != nil {
		t.Fatal(err)
	}
	// Operation-level error keeps the connection usable.
	err = c.Delete([]byte("never-inserted"))
	var se *client.ServerError
	if !asServerError(err, &se) {
		t.Fatalf("Delete absent: err = %v, want ServerError", err)
	}
	if n, err := c.Len(); err != nil || n != 1 {
		t.Fatalf("Len after failed delete = %d, %v (conn must survive)", n, err)
	}

	// Batch ops.
	keys := storeKeys("batch", 300)
	if err := c.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	got, err := c.ContainsBatch(append(keys[:5:5], []byte("absent-1"), []byte("absent-2")))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !got[i] {
			t.Fatalf("batch false negative at %d", i)
		}
	}
	flags, err := c.DeleteBatch(append(keys[:10:10], []byte("ghost")))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !flags[i] {
			t.Fatalf("batch delete %d failed", i)
		}
	}
	if srv.Metrics().Ops(wire.OpInsertBatch) != 1 {
		t.Fatalf("insert_batch ops = %d", srv.Metrics().Ops(wire.OpInsertBatch))
	}
}

func asServerError(err error, target **client.ServerError) bool {
	if err == nil {
		return false
	}
	se, ok := err.(*client.ServerError)
	if ok {
		*target = se
	}
	return ok
}

func TestServerConcurrentClients(t *testing.T) {
	srv, seed := startTestServer(t, testStoreOptions(t.TempDir()), Config{})
	addr := srv.Addr().String()

	const (
		clients    = 8
		perClient  = 200
		batchEvery = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.WithTimeout(10*time.Second))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			var batch [][]byte
			for i := 0; i < perClient; i++ {
				k := []byte(fmt.Sprintf("c%d-k%d", id, i))
				if err := c.Insert(k); err != nil {
					errs <- err
					return
				}
				batch = append(batch, k)
				if len(batch) == batchEvery {
					got, err := c.ContainsBatch(batch)
					if err != nil {
						errs <- err
						return
					}
					for j, ok := range got {
						if !ok {
							errs <- fmt.Errorf("client %d: false negative %q", id, batch[j])
							return
						}
					}
					batch = batch[:0]
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, err := seed.Len(); err != nil || n != clients*perClient {
		t.Fatalf("Len = %d, %v, want %d", n, err, clients*perClient)
	}
}

func TestServerHTTPSidecar(t *testing.T) {
	srv, c := startTestServer(t, testStoreOptions(t.TempDir()), Config{})
	keys := storeKeys("http", 400)
	if err := c.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:25] {
		if ok, err := c.Contains(k); err != nil || !ok {
			t.Fatalf("Contains(%q) = %v, %v", k, ok, err)
		}
	}

	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	if body := httpGet(t, ts.URL+"/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %q", body)
	}
	metrics := httpGet(t, ts.URL+"/metrics")
	for _, want := range []string{
		`mpcbfd_requests_total{op="insert_batch"} 1`,
		`mpcbfd_requests_total{op="contains"} 25`,
		"mpcbfd_filter_len 400",
		"mpcbfd_filter_fill_ratio ",
		"mpcbfd_filter_saturated_words 0",
		"mpcbfd_wal_records_total 400",
		"mpcbfd_request_duration_seconds_bucket",
		"mpcbfd_request_duration_seconds_count 26",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Fill ratio reflects the workload: nonzero once keys are in.
	var fill float64
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "mpcbfd_filter_fill_ratio ") {
			fmt.Sscanf(line, "mpcbfd_filter_fill_ratio %g", &fill)
		}
	}
	if fill <= 0 || fill > 1 {
		t.Fatalf("fill ratio = %g, want (0, 1]", fill)
	}
	if body := httpGet(t, ts.URL+"/debug/vars"); !strings.Contains(body, "mpcbfd") {
		t.Fatalf("/debug/vars missing mpcbfd var")
	}
}

func TestServerFrameLimitAndProtocolErrors(t *testing.T) {
	srv, _ := startTestServer(t, testStoreOptions(t.TempDir()),
		Config{MaxFrameBytes: 1 << 10})
	addr := srv.Addr().String()

	// Oversized frame: ERR response, then the server hangs up.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<16)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := wire.ReadFrame(conn, nil, 0)
	if err != nil {
		t.Fatalf("no ERR response to oversized frame: %v", err)
	}
	if status, body, _ := wire.DecodeStatus(resp); status != wire.StatusErr ||
		!strings.Contains(string(body), "exceeds") {
		t.Fatalf("status=%d body=%q", status, body)
	}

	// Unknown opcode: ERR response, connection closed after.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.WriteFrame(conn2, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err = wire.ReadFrame(conn2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if status, body, _ := wire.DecodeStatus(resp); status != wire.StatusErr ||
		!strings.Contains(string(body), "opcode") {
		t.Fatalf("status=%d body=%q", status, body)
	}
}

func TestServerConnLimit(t *testing.T) {
	srv, keep := startTestServer(t, testStoreOptions(t.TempDir()), Config{MaxConns: 1})
	// The helper's client occupies the single slot; additional dials are
	// accepted then immediately closed.
	if err := keep.Insert([]byte("occupies-slot")); err != nil {
		t.Fatal(err)
	}
	c2, err := client.Dial(srv.Addr().String(), client.WithTimeout(2*time.Second))
	if err == nil {
		defer c2.Close()
		if err := c2.Insert([]byte("should-fail")); err == nil {
			t.Fatal("second connection served beyond MaxConns=1")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Snapshot().Conns.Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejection not recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerGracefulShutdown(t *testing.T) {
	store, err := OpenStore(testStoreOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(store, Config{}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String(), client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert([]byte("pre-shutdown")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after shutdown: %v", err)
	}
	// New connections are refused or immediately closed.
	if c2, err := client.Dial(ln.Addr().String(), client.WithTimeout(time.Second)); err == nil {
		if err := c2.Insert([]byte("post-shutdown")); err == nil {
			t.Fatal("insert succeeded after shutdown")
		}
		c2.Close()
	}
	// The drained state is intact and snapshot-able.
	if !store.Contains([]byte("pre-shutdown")) {
		t.Fatal("pre-shutdown mutation lost")
	}
	if err := store.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return sb.String()
}
