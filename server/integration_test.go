package server

// End-to-end crash-recovery test against the real mpcbfd binary: build
// it, serve on a loopback port, SIGKILL it mid-insert-stream, restart on
// the same data directory, and require every acknowledged mutation back.
// This is the durability contract (SyncAlways: ack implies fsync'd WAL
// record) exercised the only honest way — across a process boundary.

import (
	"bytes"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/client"
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "mpcbfd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/mpcbfd")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// syncBuffer guards daemon output: exec's pipe goroutine writes while
// the test reads for assertions and failure dumps.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

type daemon struct {
	cmd *exec.Cmd
	out *syncBuffer
}

func startDaemon(t *testing.T, bin, dir, addr, httpAddr string, extra ...string) *daemon {
	t.Helper()
	args := []string{
		"-addr", addr, "-http", httpAddr, "-dir", dir,
		"-mem", "2097152", "-n", "20000", "-shards", "4",
		"-fsync", "always", "-snapshot-interval", "0",
		"-drain-timeout", "5s"}
	cmd := exec.Command(bin, append(args, extra...)...)
	out := &syncBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, out: out}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

// dialRetry waits for the daemon to accept connections.
func dialRetry(t *testing.T, addr string) *client.Client {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c, err := client.Dial(addr, client.WithTimeout(5*time.Second))
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func intKey(i int) []byte { return []byte(fmt.Sprintf("crash-key-%06d", i)) }

func TestIntegrationCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the daemon binary")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	addr, httpAddr := freePort(t), freePort(t)

	// Phase 1: serve, stream inserts, SIGKILL mid-stream.
	d1 := startDaemon(t, bin, dir, addr, httpAddr)
	c := dialRetry(t, addr)

	var acked atomic.Int64
	insertDone := make(chan struct{})
	go func() {
		defer close(insertDone)
		for i := 0; i < 20000; i++ {
			if err := c.Insert(intKey(i)); err != nil {
				return // the kill landed; everything before i was acked
			}
			acked.Add(1)
		}
	}()

	const killAfter = 500
	deadline := time.Now().Add(20 * time.Second)
	for acked.Load() < killAfter {
		if time.Now().After(deadline) {
			t.Fatalf("only %d inserts acked before deadline\n%s", acked.Load(), d1.out)
		}
		time.Sleep(time.Millisecond)
	}
	if err := d1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()
	<-insertDone
	c.Close()
	n := int(acked.Load())
	t.Logf("killed daemon with %d acked inserts", n)

	// Phase 2: restart on the same directory; every acked insert must be
	// present (zero false negatives — acked means fsync'd under
	// -fsync always).
	d2 := startDaemon(t, bin, dir, addr, httpAddr)
	c2 := dialRetry(t, addr)
	defer c2.Close()

	got, err := c2.Len()
	if err != nil {
		t.Fatal(err)
	}
	// Len may exceed acked by at most one: an insert can be applied and
	// logged but killed before the ack reached the client.
	if got < n || got > n+1 {
		t.Fatalf("recovered Len = %d, want %d or %d\n%s", got, n, n+1, d2.out)
	}
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = intKey(i)
	}
	const batch = 256
	for off := 0; off < n; off += batch {
		end := off + batch
		if end > n {
			end = n
		}
		flags, err := c2.ContainsBatch(keys[off:end])
		if err != nil {
			t.Fatal(err)
		}
		for j, ok := range flags {
			if !ok {
				t.Fatalf("acked key %d lost after crash", off+j)
			}
		}
	}

	// The sidecar reports the post-restart workload: replayed records,
	// ops, and a fill ratio matching the recovered population.
	metrics := httpGet(t, "http://"+httpAddr+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("mpcbfd_replayed_records %d", got),
		fmt.Sprintf("mpcbfd_filter_len %d", got),
		`mpcbfd_requests_total{op="contains_batch"}`,
		`mpcbfd_requests_total{op="len"} 1`,
		"mpcbfd_filter_fill_ratio ",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(httpGet(t, "http://"+httpAddr+"/healthz"), "ok") {
		t.Error("/healthz not ok")
	}

	// Phase 3: graceful SIGTERM writes a final snapshot; a third start
	// recovers from it with nothing to replay.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v\n%s", err, d2.out)
	}
	if !strings.Contains(d2.out.String(), "clean shutdown") {
		t.Fatalf("no clean shutdown marker:\n%s", d2.out)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no final snapshot: %v %v", snaps, err)
	}

	d3 := startDaemon(t, bin, dir, addr, httpAddr)
	c3 := dialRetry(t, addr)
	defer c3.Close()
	if got3, err := c3.Len(); err != nil || got3 != got {
		t.Fatalf("post-snapshot Len = %d, %v, want %d", got3, err, got)
	}
	if !strings.Contains(d3.out.String(), "replayed=0") {
		t.Fatalf("third start should replay nothing:\n%s", d3.out)
	}
}
