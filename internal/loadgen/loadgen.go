// Package loadgen generates reproducible load against one mpcbfd node
// or a routed cluster. A Config fully determines the workload: the
// seeded keyspace (repro/internal/dataset), the op mix, the loop model
// (closed: fixed concurrency, each worker issues its next op when the
// previous returns; open: a target aggregate rate with send times fixed
// on a schedule), and the request shape (single-key, batch, or
// pipelined). Per-op latencies land in power-of-two histograms
// (repro/server.Histogram) and come back as p50/p90/p99 summaries; the
// run's Manifest — embedded in every Result — is everything needed to
// reproduce it.
//
// Open-loop latency is measured from each op's scheduled send time, not
// its actual send, so a stalled server shows up as queueing delay
// instead of being silently absorbed (no coordinated omission).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/client"
	"repro/cluster"
	"repro/internal/dataset"
	"repro/internal/hashing"
	"repro/server"
)

// Op is one workload operation kind.
type Op uint8

const (
	OpInsert Op = iota
	OpDelete
	OpContains
	OpInsertTTL
	numOps
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpContains:
		return "contains"
	case OpInsertTTL:
		return "insert_ttl"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMutation reports whether the op changes filter state (and therefore
// participates in acked-loss accounting).
func (o Op) IsMutation() bool { return o != OpContains }

// Mix is the op distribution as relative weights; they need not sum to
// anything in particular. A zero Mix is invalid.
type Mix struct {
	Insert    float64 `json:"insert"`
	Delete    float64 `json:"delete"`
	Contains  float64 `json:"contains"`
	InsertTTL float64 `json:"insert_ttl"`
}

// ParseMix parses "insert=40,contains=55,delete=4,insert_ttl=1".
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("loadgen: mix term %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("loadgen: mix weight %q invalid", part)
		}
		switch name {
		case "insert":
			m.Insert = w
		case "delete":
			m.Delete = w
		case "contains":
			m.Contains = w
		case "insert_ttl":
			m.InsertTTL = w
		default:
			return m, fmt.Errorf("loadgen: unknown op %q in mix", name)
		}
	}
	return m, nil
}

func (m Mix) String() string {
	return fmt.Sprintf("insert=%g,delete=%g,contains=%g,insert_ttl=%g",
		m.Insert, m.Delete, m.Contains, m.InsertTTL)
}

// cumulative returns the normalized cumulative weights for op drawing.
func (m Mix) cumulative() ([numOps]float64, error) {
	w := [numOps]float64{m.Insert, m.Delete, m.Contains, m.InsertTTL}
	var total float64
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return w, errors.New("loadgen: mix has no positive weight")
	}
	var cum [numOps]float64
	run := 0.0
	for i, v := range w {
		run += v / total
		cum[i] = run
	}
	cum[numOps-1] = 1 // guard against float drift
	return cum, nil
}

// Config fully describes one load-generation run.
type Config struct {
	// Addrs lists the target nodes. One address drives a single node
	// through repro/client; several drive a rendezvous-routed cluster
	// through repro/cluster. Each entry is "primary" or
	// "primary/replica1/replica2..." (replicas serve reads).
	Addrs []string
	// Namespaces fans ops out across named tenants (single-node targets
	// only); empty targets the default namespace.
	Namespaces []string
	// OpenLoop switches from closed-loop (Concurrency workers, next op
	// when the previous returns) to open-loop (ops scheduled at Rate
	// regardless of completions, Concurrency senders).
	OpenLoop bool
	// Rate is the aggregate target ops/sec (open loop only).
	Rate float64
	// Concurrency is the worker count (default 8).
	Concurrency int
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Mix is the op distribution.
	Mix Mix
	// Batch > 1 issues every op as a batch of that many keys.
	Batch int
	// PipelineDepth > 0 enqueues that many ops per flush on a pipelined
	// connection (single-node, default-namespace targets only).
	PipelineDepth int
	// Keyspace configures the seeded key generator. A zero Seed there
	// falls back to Seed here.
	Keyspace dataset.KeyspaceConfig
	// Seed derives every per-worker stream (ops, keys, namespaces).
	Seed uint64
	// TTL is the per-key lifetime used by insert_ttl ops (default 60s).
	TTL time.Duration
	// Reconnect enables transparent redial on the underlying clients —
	// required when the run rides through daemon kills or partitions.
	Reconnect bool
	// OnMutation, when set, observes every mutation outcome: err is nil
	// (acked), client.ErrMaybeApplied (unknown), or a hard failure. The
	// key slice is only valid during the call. Used by the fault
	// simulation for acked-loss accounting.
	OnMutation func(op Op, key []byte, err error)
	// TraceSample > 0 wraps 1 in every TraceSample ops (per worker) in a
	// TRACE envelope with a fresh trace id; the slowest traced ops come
	// back in Result.SlowTraces, ready to paste into mpcbf-trace. 0
	// disables tracing.
	TraceSample int
	// Grow ramps the drawn keyspace through doublings over the run: ops
	// draw from a prefix of the keyspace that starts at
	// Keyspace.N >> GrowSteps and doubles at each phase boundary until
	// the final phase spans the whole keyspace. Against an elastic
	// daemon the ramp pushes the filter through generation growth
	// mid-run; the phase curve is recorded in the manifest.
	Grow bool
	// GrowSteps is the number of doublings (default 3: the run's final
	// phase draws from 8x its initial prefix).
	GrowSteps int
}

func (c *Config) setDefaults() error {
	if len(c.Addrs) == 0 {
		return errors.New("loadgen: no target addresses")
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.TTL <= 0 {
		c.TTL = time.Minute
	}
	if c.Keyspace.Seed == 0 {
		c.Keyspace.Seed = c.Seed
	}
	if c.OpenLoop && c.Rate <= 0 {
		return errors.New("loadgen: open loop needs a positive -rate")
	}
	routed := len(c.Addrs) > 1 || strings.Contains(c.Addrs[0], "/")
	if c.PipelineDepth > 0 && (routed || len(c.Namespaces) > 0 || c.Batch > 1) {
		return errors.New("loadgen: pipeline mode is single-node, default-namespace, single-key only")
	}
	if len(c.Namespaces) > 0 && routed {
		return errors.New("loadgen: namespace fan-out targets a single unreplicated node")
	}
	if c.Grow {
		if c.GrowSteps <= 0 {
			c.GrowSteps = 3
		}
		if c.Keyspace.N>>c.GrowSteps < 1 {
			return fmt.Errorf("loadgen: keyspace of %d keys cannot ramp through %d doublings", c.Keyspace.N, c.GrowSteps)
		}
	}
	return nil
}

// target is the minimal op surface a worker drives; implemented by the
// single-node client, a namespace view, and the cluster client. Every
// method takes the op's trace context (zero = untraced); a zero context
// costs nothing on any implementation.
type target interface {
	insert(tc client.Trace, key []byte) error
	del(tc client.Trace, key []byte) error
	contains(tc client.Trace, key []byte) error
	insertTTL(tc client.Trace, key []byte, ttl time.Duration) error
	insertBatch(tc client.Trace, keys [][]byte) error
	deleteBatch(tc client.Trace, keys [][]byte) error
	containsBatch(tc client.Trace, keys [][]byte) error
}

type singleTarget struct{ c *client.Client }

func (t singleTarget) insert(tc client.Trace, k []byte) error { return t.c.Traced(tc).Insert(k) }

// del goes through the flag-returning batch op: deleting a key that is
// not (or no longer) present is a legitimate workload outcome, not an
// error — the single-key DELETE wire op rejects it.
func (t singleTarget) del(tc client.Trace, k []byte) error {
	_, err := t.c.Traced(tc).DeleteBatch([][]byte{k})
	return err
}
func (t singleTarget) contains(tc client.Trace, k []byte) error {
	_, err := t.c.Traced(tc).Contains(k)
	return err
}
func (t singleTarget) insertTTL(tc client.Trace, k []byte, ttl time.Duration) error {
	return t.c.Traced(tc).InsertTTL(k, ttl)
}
func (t singleTarget) insertBatch(tc client.Trace, ks [][]byte) error {
	return t.c.Traced(tc).InsertBatch(ks)
}
func (t singleTarget) deleteBatch(tc client.Trace, ks [][]byte) error {
	_, err := t.c.Traced(tc).DeleteBatch(ks)
	return err
}
func (t singleTarget) containsBatch(tc client.Trace, ks [][]byte) error {
	_, err := t.c.Traced(tc).ContainsBatch(ks)
	return err
}

type nsTarget struct{ ns client.Namespace }

func (t nsTarget) insert(tc client.Trace, k []byte) error { return t.ns.Traced(tc).Insert(k) }
func (t nsTarget) del(tc client.Trace, k []byte) error {
	_, err := t.ns.Traced(tc).DeleteBatch([][]byte{k})
	return err
}
func (t nsTarget) contains(tc client.Trace, k []byte) error {
	_, err := t.ns.Traced(tc).Contains(k)
	return err
}
func (t nsTarget) insertTTL(tc client.Trace, k []byte, ttl time.Duration) error {
	return t.ns.Traced(tc).InsertTTL(k, ttl)
}
func (t nsTarget) insertBatch(tc client.Trace, ks [][]byte) error {
	return t.ns.Traced(tc).InsertBatch(ks)
}
func (t nsTarget) deleteBatch(tc client.Trace, ks [][]byte) error {
	_, err := t.ns.Traced(tc).DeleteBatch(ks)
	return err
}
func (t nsTarget) containsBatch(tc client.Trace, ks [][]byte) error {
	_, err := t.ns.Traced(tc).ContainsBatch(ks)
	return err
}

type clusterTarget struct{ c *cluster.Client }

func (t clusterTarget) insert(tc client.Trace, k []byte) error { return t.c.Traced(tc).Insert(k) }
func (t clusterTarget) del(tc client.Trace, k []byte) error {
	_, err := t.c.Traced(tc).DeleteBatch([][]byte{k})
	return err
}
func (t clusterTarget) contains(tc client.Trace, k []byte) error {
	_, err := t.c.Traced(tc).Contains(k)
	return err
}
func (t clusterTarget) insertTTL(tc client.Trace, k []byte, ttl time.Duration) error {
	return t.c.Traced(tc).InsertTTL(k, ttl)
}
func (t clusterTarget) insertBatch(tc client.Trace, ks [][]byte) error {
	return t.c.Traced(tc).InsertBatch(ks)
}
func (t clusterTarget) deleteBatch(tc client.Trace, ks [][]byte) error {
	_, err := t.c.Traced(tc).DeleteBatch(ks)
	return err
}
func (t clusterTarget) containsBatch(tc client.Trace, ks [][]byte) error {
	_, err := t.c.Traced(tc).ContainsBatch(ks)
	return err
}

// worker owns one connection (or one cluster client), one RNG stream,
// and its slice of the op schedule.
type worker struct {
	id      int
	cfg     *Config
	ks      *dataset.Keyspace
	cum     [numOps]float64
	start   time.Time // run start, anchors the grow-mode phase clock
	targets []target  // default ns at [0]; one per namespace otherwise
	closeFn func()
	pipe    *client.Pipeline

	hist     [numOps]*server.Histogram // shared, owned by Runner
	errs     [numOps]*counter
	maybe    [numOps]*counter
	keyBuf   []byte
	batchBuf [][]byte

	opSeq uint64      // ops issued, for 1-in-TraceSample selection
	slow  []SlowTrace // worker-local slowest traced ops, merged by Run
}

// maxSlowTraces bounds how many slow traced ops a Result reports.
const maxSlowTraces = 8

// sampleTrace returns a fresh trace context for 1 in every TraceSample
// ops issued by this worker, the zero (untraced) context otherwise.
func (w *worker) sampleTrace() client.Trace {
	if w.cfg.TraceSample <= 0 {
		return client.Trace{}
	}
	w.opSeq++
	if w.opSeq%uint64(w.cfg.TraceSample) != 0 {
		return client.Trace{}
	}
	return client.NewTrace()
}

// noteSlow keeps the worker's slowest traced ops, trimming lazily so the
// hot path stays an append.
func (w *worker) noteSlow(op Op, tc client.Trace, lat time.Duration) {
	if !tc.Active() {
		return
	}
	w.slow = append(w.slow, SlowTrace{Op: op.String(), LatencyUs: round2(float64(lat) / 1e3), TraceID: tc.String()})
	if len(w.slow) > 4*maxSlowTraces {
		sortSlowTraces(w.slow)
		w.slow = w.slow[:maxSlowTraces]
	}
}

// sortSlowTraces orders slowest-first (ties by id for determinism).
func sortSlowTraces(s []SlowTrace) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].LatencyUs != s[j].LatencyUs {
			return s[i].LatencyUs > s[j].LatencyUs
		}
		return s[i].TraceID < s[j].TraceID
	})
}

type counter struct {
	mu sync.Mutex
	n  uint64
}

func (c *counter) add(n uint64) {
	c.mu.Lock()
	c.n += n
	c.mu.Unlock()
}

func (c *counter) load() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// dial builds the worker's target(s). Each worker gets its own
// connections so the load scales with Concurrency instead of
// serializing on one socket.
func (w *worker) dial() error {
	cfg := w.cfg
	var opts []client.Option
	if cfg.Reconnect {
		// Generous retry budget: the fault schedule kills daemons for
		// hundreds of milliseconds; workers must ride it out.
		opts = append(opts, client.WithReconnect(8, 25*time.Millisecond, time.Second))
	}
	// Any replica listing ("primary/replica") routes through the cluster
	// client so reads actually fan out across the node's read set.
	if len(cfg.Addrs) > 1 || strings.Contains(cfg.Addrs[0], "/") {
		nodes := make([]cluster.Node, len(cfg.Addrs))
		for i, a := range cfg.Addrs {
			parts := strings.Split(a, "/")
			nodes[i] = cluster.Node{Primary: parts[0], Replicas: parts[1:]}
		}
		cc := cluster.ClientConfig{Nodes: nodes, Timeout: 10 * time.Second}
		if cfg.Reconnect {
			cc.ReconnectAttempts = 8
			cc.BackoffBase = 25 * time.Millisecond
			cc.BackoffMax = time.Second
		}
		c, err := cluster.NewClient(cc)
		if err != nil {
			return err
		}
		w.targets = []target{clusterTarget{c}}
		w.closeFn = func() { c.Close() }
		return nil
	}
	addr := strings.Split(cfg.Addrs[0], "/")[0]
	c, err := client.Dial(addr, append(opts, client.WithTimeout(10*time.Second))...)
	if err != nil {
		return err
	}
	w.closeFn = func() { c.Close() }
	if len(cfg.Namespaces) > 0 {
		w.targets = make([]target, len(cfg.Namespaces))
		for i, ns := range cfg.Namespaces {
			w.targets[i] = nsTarget{c.Namespace(ns)}
		}
	} else {
		w.targets = []target{singleTarget{c}}
	}
	if cfg.PipelineDepth > 0 {
		w.pipe = c.Pipeline()
	}
	return nil
}

// growLimit returns the keyspace prefix size for the run phase at now:
// N>>GrowSteps during the first phase, doubling at each boundary, the
// whole keyspace in the last.
func (w *worker) growLimit(now time.Time) int {
	cfg := w.cfg
	phases := cfg.GrowSteps + 1
	phase := int(float64(now.Sub(w.start)) / float64(cfg.Duration) * float64(phases))
	if phase < 0 {
		phase = 0
	}
	if phase > cfg.GrowSteps {
		phase = cfg.GrowSteps
	}
	return w.ks.N() >> (cfg.GrowSteps - phase)
}

// rank samples a key rank, folded into the current grow prefix when
// the ramp is active.
func (w *worker) rank(rng *hashing.RNG) int {
	r := w.ks.Rank(rng)
	if !w.cfg.Grow {
		return r
	}
	return r % w.growLimit(time.Now())
}

// drawKey appends one sampled key to dst, honoring the grow ramp.
func (w *worker) drawKey(dst []byte, rng *hashing.RNG) []byte {
	return w.ks.AppendKey(dst, w.rank(rng))
}

// drawOp maps one uniform draw to an op via the cumulative mix.
func (w *worker) drawOp(u float64) Op {
	for op := Op(0); op < numOps-1; op++ {
		if u < w.cum[op] {
			return op
		}
	}
	return numOps - 1
}

// observe records one completed op.
func (w *worker) observe(op Op, lat time.Duration, keys int, err error) {
	w.hist[op].ObserveDuration(lat)
	if err != nil {
		if errors.Is(err, client.ErrMaybeApplied) {
			w.maybe[op].add(uint64(keys))
		} else {
			w.errs[op].add(uint64(keys))
		}
	}
}

// issue runs one op (single-key or batch) against t and reports its
// latency and error.
func (w *worker) issue(rng *hashing.RNG, op Op, t target) {
	cfg := w.cfg
	tc := w.sampleTrace()
	if cfg.Batch > 1 {
		w.batchBuf = w.batchBuf[:0]
		for i := 0; i < cfg.Batch; i++ {
			w.batchBuf = append(w.batchBuf, w.ks.Key(w.rank(rng)))
		}
		start := time.Now()
		var err error
		switch op {
		case OpInsert:
			err = t.insertBatch(tc, w.batchBuf)
		case OpDelete:
			err = t.deleteBatch(tc, w.batchBuf)
		case OpContains:
			err = t.containsBatch(tc, w.batchBuf)
		case OpInsertTTL:
			// InsertTTLBatch exists only on the direct client; fold TTL
			// batches into plain insert batches for simplicity.
			err = t.insertBatch(tc, w.batchBuf)
		}
		lat := time.Since(start)
		w.observe(op, lat, cfg.Batch, err)
		w.noteSlow(op, tc, lat)
		if cfg.OnMutation != nil && op.IsMutation() {
			for _, k := range w.batchBuf {
				cfg.OnMutation(op, k, err)
			}
		}
		return
	}
	w.keyBuf = w.drawKey(w.keyBuf[:0], rng)
	start := time.Now()
	var err error
	switch op {
	case OpInsert:
		err = t.insert(tc, w.keyBuf)
	case OpDelete:
		err = t.del(tc, w.keyBuf)
	case OpContains:
		err = t.contains(tc, w.keyBuf)
	case OpInsertTTL:
		err = t.insertTTL(tc, w.keyBuf, cfg.TTL)
	}
	lat := time.Since(start)
	w.observe(op, lat, 1, err)
	w.noteSlow(op, tc, lat)
	if cfg.OnMutation != nil && op.IsMutation() {
		cfg.OnMutation(op, w.keyBuf, err)
	}
}

// runClosed is the closed loop: issue, wait, repeat until the deadline.
func (w *worker) runClosed(ctx context.Context, deadline time.Time) {
	rng := w.ks.WorkerRNG(w.id)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		op := w.drawOp(rng.Float64())
		t := w.targets[0]
		if len(w.targets) > 1 {
			t = w.targets[rng.Intn(len(w.targets))]
		}
		w.issue(rng, op, t)
	}
}

// runOpen is the open loop: worker w sends ops number w, w+C, w+2C, ...
// of the global schedule at their fixed times; latency is measured from
// the scheduled send, so server stalls surface as queueing delay.
func (w *worker) runOpen(ctx context.Context, start time.Time, deadline time.Time) {
	rng := w.ks.WorkerRNG(w.id)
	interval := time.Duration(float64(w.cfg.Concurrency) / w.cfg.Rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	next := start.Add(time.Duration(w.id) * interval / time.Duration(w.cfg.Concurrency))
	for next.Before(deadline) && ctx.Err() == nil {
		if wait := time.Until(next); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		op := w.drawOp(rng.Float64())
		t := w.targets[0]
		if len(w.targets) > 1 {
			t = w.targets[rng.Intn(len(w.targets))]
		}
		sched := next
		w.issueTimed(rng, op, t, sched)
		next = next.Add(interval)
	}
}

// issueTimed is issue with latency measured from sched instead of the
// actual call start.
func (w *worker) issueTimed(rng *hashing.RNG, op Op, t target, sched time.Time) {
	cfg := w.cfg
	tc := w.sampleTrace()
	w.keyBuf = w.drawKey(w.keyBuf[:0], rng)
	var err error
	switch op {
	case OpInsert:
		err = t.insert(tc, w.keyBuf)
	case OpDelete:
		err = t.del(tc, w.keyBuf)
	case OpContains:
		err = t.contains(tc, w.keyBuf)
	case OpInsertTTL:
		err = t.insertTTL(tc, w.keyBuf, cfg.TTL)
	}
	lat := time.Since(sched)
	w.observe(op, lat, 1, err)
	w.noteSlow(op, tc, lat)
	if cfg.OnMutation != nil && op.IsMutation() {
		cfg.OnMutation(op, w.keyBuf, err)
	}
}

// runPipelined drives the pipelined connection: enqueue PipelineDepth
// ops, flush, attribute the flush round trip to every op in it.
func (w *worker) runPipelined(ctx context.Context, deadline time.Time) {
	rng := w.ks.WorkerRNG(w.id)
	cfg := w.cfg
	ops := make([]Op, 0, cfg.PipelineDepth)
	keys := make([][]byte, 0, cfg.PipelineDepth)
	tcs := make([]client.Trace, 0, cfg.PipelineDepth)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		ops = ops[:0]
		keys = keys[:0]
		tcs = tcs[:0]
		for i := 0; i < cfg.PipelineDepth; i++ {
			op := w.drawOp(rng.Float64())
			key := w.ks.Key(w.rank(rng))
			tc := w.sampleTrace()
			ops = append(ops, op)
			keys = append(keys, key)
			tcs = append(tcs, tc)
			// Sampled ops in the pipeline get their own envelope; the
			// context resets right after so neighbors stay untraced.
			w.pipe.SetTrace(tc)
			switch op {
			case OpInsert:
				w.pipe.Insert(key)
			case OpDelete:
				// Flag-returning batch form: absent keys are a workload
				// outcome, not an error (see target.del).
				w.pipe.DeleteBatch([][]byte{key})
			case OpContains:
				w.pipe.Contains(key)
			case OpInsertTTL:
				w.pipe.InsertTTL(key, cfg.TTL)
			}
			w.pipe.SetTrace(client.Trace{})
		}
		start := time.Now()
		res, _ := w.pipe.Flush()
		lat := time.Since(start)
		for i, op := range ops {
			var err error
			if i < len(res) {
				err = res[i].Err
			} else {
				err = client.ErrMaybeApplied // flush died before this op's reply
			}
			w.observe(op, lat, 1, err)
			w.noteSlow(op, tcs[i], lat)
			if cfg.OnMutation != nil && op.IsMutation() {
				cfg.OnMutation(op, keys[i], err)
			}
		}
	}
}

// Run executes the configured workload and returns its Result. Worker
// op streams are deterministic functions of (Seed, worker id); the
// interleaving on the wire is not, which is why acked-loss accounting
// goes through OnMutation rather than replaying the schedule.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	cum, err := cfg.Mix.cumulative()
	if err != nil {
		return nil, err
	}
	ks, err := dataset.NewKeyspace(cfg.Keyspace)
	if err != nil {
		return nil, err
	}

	var hist [numOps]*server.Histogram
	var errsC, maybeC [numOps]*counter
	for i := range hist {
		hist[i] = &server.Histogram{}
		errsC[i] = &counter{}
		maybeC[i] = &counter{}
	}

	workers := make([]*worker, cfg.Concurrency)
	for i := range workers {
		w := &worker{id: i, cfg: &cfg, ks: ks, cum: cum, hist: hist, errs: errsC, maybe: maybeC}
		if err := w.dial(); err != nil {
			for _, prev := range workers[:i] {
				prev.closeFn()
			}
			return nil, fmt.Errorf("loadgen: worker %d dial: %w", i, err)
		}
		workers[i] = w
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	var wg sync.WaitGroup
	for _, w := range workers {
		w.start = start
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			defer w.closeFn()
			switch {
			case cfg.PipelineDepth > 0:
				w.runPipelined(ctx, deadline)
			case cfg.OpenLoop:
				w.runOpen(ctx, start, deadline)
			default:
				w.runClosed(ctx, deadline)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Manifest: cfg.manifest(),
		Elapsed:  elapsed.Seconds(),
		Ops:      map[string]OpStats{},
	}
	for op := Op(0); op < numOps; op++ {
		sum := hist[op].Summary()
		if sum.Count == 0 {
			continue
		}
		res.TotalOps += sum.Count
		st := OpStats{
			Count:        sum.Count,
			Errors:       errsC[op].load(),
			MaybeApplied: maybeC[op].load(),
			MeanUs:       round2(sum.Mean / 1e3),
			P50Us:        round2(sum.P50 / 1e3),
			P90Us:        round2(sum.P90 / 1e3),
			P99Us:        round2(sum.P99 / 1e3),
		}
		res.Errors += st.Errors
		res.MaybeApplied += st.MaybeApplied
		res.Ops[op.String()] = st
	}
	if elapsed > 0 {
		res.Throughput = round2(float64(res.TotalOps) / elapsed.Seconds())
	}
	var slow []SlowTrace
	for _, w := range workers {
		slow = append(slow, w.slow...)
	}
	if len(slow) > 0 {
		sortSlowTraces(slow)
		if len(slow) > maxSlowTraces {
			slow = slow[:maxSlowTraces]
		}
		res.SlowTraces = slow
	}
	return res, nil
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// sortedOps returns the op names present in the result, stable for
// human-readable rendering.
func (r *Result) sortedOps() []string {
	names := make([]string, 0, len(r.Ops))
	for name := range r.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
