package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/server/wire"
)

// Pipeline queues requests client-side and ships them in one burst,
// reading responses concurrently with the send. The daemon decodes and
// applies request N+1 while request N's WAL commit is in flight, so a
// pipelined mutation stream pays one group fsync per commit round
// instead of one per request — this is the client half of the server's
// group-commit path, and the way a single connection saturates it.
//
// A Pipeline is not safe for concurrent use. Queue any mix of
// operations, then call Flush: responses come back in request order, as
// PipeResult values aligned index-for-index with the queued requests.
// Between Flush calls the Pipeline is empty and reusable (buffers are
// retained, so steady-state reuse does not allocate beyond response
// decoding).
//
// Error semantics mirror the synchronous client but are attributed
// per-request by frame offset. Operation-level failures (*ServerError,
// *ReadOnlyError) land in that request's PipeResult.Err and do not
// disturb later responses — the stream stays in sync. A transport
// failure breaks the connection; requests already answered keep their
// definitive results, unanswered requests whose bytes may have reached
// the daemon get ErrMaybeApplied if they are mutations, and requests
// provably never sent get a plain transport error. Flush never retries:
// replaying a maybe-applied mutation on a counting filter would
// double-count.
type Pipeline struct {
	c       *Client
	buf     []byte // queued frames: [u32 len][payload]...
	reqs    []pipeReq
	results []PipeResult
	tc      Trace // applied to every subsequently queued request
}

type pipeReq struct {
	op    byte
	start int // offset of this request's frame header in buf
}

// PipeResult is the outcome of one pipelined request. Op echoes the
// request opcode; exactly one of Bool, U64, Bools is populated on
// success, matching what the synchronous method for that opcode
// returns. Bools aliases a buffer reused by the next Flush.
type PipeResult struct {
	Op    byte
	Err   error
	Bool  bool   // Contains
	U64   uint64 // EstimateCount, Len
	Bools []bool // ContainsBatch, DeleteBatch
}

// Pipeline returns a new, empty request pipeline on this connection.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Pending returns the number of queued, unflushed requests.
func (p *Pipeline) Pending() int { return len(p.reqs) }

// SetTrace sets the trace context wrapped around every subsequently
// queued request (the TRACE envelope, outermost). The zero Trace turns
// tracing back off. Requests already queued are unaffected.
func (p *Pipeline) SetTrace(tc Trace) { p.tc = tc }

func (p *Pipeline) add(op byte, ns, key []byte, keys [][]byte, ttl uint64) {
	p.addCfg(op, ns, key, keys, ttl, wire.NsConfig{})
}

func (p *Pipeline) addCfg(op byte, ns, key []byte, keys [][]byte, ttl uint64, cfg wire.NsConfig) {
	if len(ns) > wire.MaxNamespaceLen {
		// A queue method cannot return an error without breaking every
		// call site; an over-long name is a programmer error, caught here
		// rather than desyncing the stream server-side.
		panic(fmt.Sprintf("mpcbfd: namespace name %d bytes long (max %d)", len(ns), wire.MaxNamespaceLen))
	}
	start := len(p.buf)
	p.buf = append(p.buf, 0, 0, 0, 0)
	p.buf = encodeRequest(p.buf, op, ns, key, keys, ttl, cfg, p.tc)
	binary.LittleEndian.PutUint32(p.buf[start:], uint32(len(p.buf)-start-4))
	// The recorded op is the INNER op even under a namespace envelope:
	// Flush decodes responses and attributes transport failures by what
	// the operation does (Contains vs Insert), not how it was framed.
	p.reqs = append(p.reqs, pipeReq{op: op, start: start})
}

// Insert queues an insert of key.
func (p *Pipeline) Insert(key []byte) { p.add(wire.OpInsert, nil, key, nil, 0) }

// Delete queues a delete of key.
func (p *Pipeline) Delete(key []byte) { p.add(wire.OpDelete, nil, key, nil, 0) }

// Contains queues a membership probe; the answer lands in Bool.
func (p *Pipeline) Contains(key []byte) { p.add(wire.OpContains, nil, key, nil, 0) }

// EstimateCount queues a multiplicity estimate; the answer lands in U64.
func (p *Pipeline) EstimateCount(key []byte) { p.add(wire.OpEstimate, nil, key, nil, 0) }

// Len queues an element-count read; the answer lands in U64.
func (p *Pipeline) Len() { p.add(wire.OpLen, nil, nil, nil, 0) }

// InsertBatch queues a batch insert.
func (p *Pipeline) InsertBatch(keys [][]byte) { p.add(wire.OpInsertBatch, nil, nil, keys, 0) }

// DeleteBatch queues a batch delete; per-key flags land in Bools.
func (p *Pipeline) DeleteBatch(keys [][]byte) { p.add(wire.OpDeleteBatch, nil, nil, keys, 0) }

// ContainsBatch queues a batch probe; per-key answers land in Bools.
func (p *Pipeline) ContainsBatch(keys [][]byte) { p.add(wire.OpContainsBatch, nil, nil, keys, 0) }

// InsertTTL queues a TTL insert (windowed daemons only).
func (p *Pipeline) InsertTTL(key []byte, ttl time.Duration) {
	p.add(wire.OpInsertTTL, nil, key, nil, uint64(max(ttl, 0)))
}

// InsertTTLBatch queues a batch TTL insert (windowed daemons only).
func (p *Pipeline) InsertTTLBatch(keys [][]byte, ttl time.Duration) {
	p.add(wire.OpInsertTTLBatch, nil, nil, keys, uint64(max(ttl, 0)))
}

// CreateNamespace queues a CREATE_NS of name with cfg (zero-valued cfg
// fields take the daemon's defaults). A name longer than
// wire.MaxNamespaceLen panics — a programmer error, as in Namespace.
func (p *Pipeline) CreateNamespace(name string, cfg wire.NsConfig) {
	p.addCfg(wire.OpNsCreate, []byte(name), nil, nil, 0, cfg)
}

// DropNamespace queues a DROP_NS of name.
func (p *Pipeline) DropNamespace(name string) {
	p.add(wire.OpNsDrop, []byte(name), nil, nil, 0)
}

// Namespace returns a view of this pipeline that queues every data
// operation against the named namespace (wrapped in the NAMESPACED
// envelope). The view shares the pipeline's queue and Flush; results
// come back in overall queue order regardless of which view queued
// them. A name longer than wire.MaxNamespaceLen panics at queue time.
func (p *Pipeline) Namespace(name string) PipelineNS {
	return PipelineNS{p: p, ns: []byte(name)}
}

// PipelineNS queues namespaced data operations on an underlying
// Pipeline. It is a value-type view: copying it is cheap and all copies
// share the same queue.
type PipelineNS struct {
	p  *Pipeline
	ns []byte
}

// Insert queues an insert of key into the namespace.
func (v PipelineNS) Insert(key []byte) { v.p.add(wire.OpInsert, v.ns, key, nil, 0) }

// Delete queues a delete of key from the namespace.
func (v PipelineNS) Delete(key []byte) { v.p.add(wire.OpDelete, v.ns, key, nil, 0) }

// Contains queues a membership probe; the answer lands in Bool.
func (v PipelineNS) Contains(key []byte) { v.p.add(wire.OpContains, v.ns, key, nil, 0) }

// EstimateCount queues a multiplicity estimate; the answer lands in U64.
func (v PipelineNS) EstimateCount(key []byte) { v.p.add(wire.OpEstimate, v.ns, key, nil, 0) }

// Len queues an element-count read; the answer lands in U64.
func (v PipelineNS) Len() { v.p.add(wire.OpLen, v.ns, nil, nil, 0) }

// InsertBatch queues a batch insert into the namespace.
func (v PipelineNS) InsertBatch(keys [][]byte) { v.p.add(wire.OpInsertBatch, v.ns, nil, keys, 0) }

// DeleteBatch queues a batch delete; per-key flags land in Bools.
func (v PipelineNS) DeleteBatch(keys [][]byte) { v.p.add(wire.OpDeleteBatch, v.ns, nil, keys, 0) }

// ContainsBatch queues a batch probe; per-key answers land in Bools.
func (v PipelineNS) ContainsBatch(keys [][]byte) { v.p.add(wire.OpContainsBatch, v.ns, nil, keys, 0) }

// InsertTTL queues a TTL insert (windowed namespaces only).
func (v PipelineNS) InsertTTL(key []byte, ttl time.Duration) {
	v.p.add(wire.OpInsertTTL, v.ns, key, nil, uint64(max(ttl, 0)))
}

// InsertTTLBatch queues a batch TTL insert (windowed namespaces only).
func (v PipelineNS) InsertTTLBatch(keys [][]byte, ttl time.Duration) {
	v.p.add(wire.OpInsertTTLBatch, v.ns, nil, keys, uint64(max(ttl, 0)))
}

// Flush sends every queued request and reads every response, in order.
// It returns one PipeResult per queued request — always len == Pending()
// at the time of the call, even on failure — plus the first
// transport-level error, if any. The returned slice and any Bools inside
// it are overwritten by the next Flush on this Pipeline.
//
// The send runs in a goroutine concurrent with response reads: the
// daemon's per-connection response queue is bounded, so a large
// single-threaded burst would otherwise deadlock with both sides
// blocked on full buffers.
func (p *Pipeline) Flush() ([]PipeResult, error) {
	n := len(p.reqs)
	if n == 0 {
		return nil, nil
	}
	c := p.c
	c.stRequests.Add(uint64(n))
	c.mu.Lock()
	defer c.mu.Unlock()
	defer func() {
		p.buf = p.buf[:0]
		p.reqs = p.reqs[:0]
	}()
	results := p.results[:0]
	if c.err != nil {
		redialErr := error(nil)
		switch {
		case c.closed:
			redialErr = errors.New("mpcbfd: client closed")
		case !c.reconnect:
			redialErr = fmt.Errorf("mpcbfd: client broken by earlier error: %w", c.err)
		default:
			redialErr = c.redial()
		}
		if redialErr != nil {
			// Nothing was sent: every queued request fails definitively.
			for _, rq := range p.reqs {
				results = append(results, PipeResult{Op: rq.op, Err: redialErr})
			}
			p.results = results
			return results, redialErr
		}
	}
	// The deadline is per unit of progress, not per burst: a pipeline of
	// many durable mutations legitimately takes longer than one
	// round-trip, so the initial window is refreshed after every decoded
	// response (below). SetDeadline covers the concurrent Write too —
	// response progress implies the daemon is consuming our bytes.
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}

	// Send in the background while this goroutine reads responses.
	// Writing straight to the conn (not c.w) keeps the kernel-accepted
	// byte count observable: bytes beyond wr.n provably never left.
	type writeOutcome struct {
		n   int
		err error
	}
	written := make(chan writeOutcome, 1)
	go func() {
		nw, err := c.conn.Write(p.buf)
		written <- writeOutcome{nw, err}
	}()

	var terr error
	rbuf := c.buf
	for i := 0; i < n && terr == nil; i++ {
		payload, err := wire.ReadFrame(c.r, rbuf[:0], c.maxFrame)
		if err != nil {
			terr = err
			break
		}
		if c.timeout > 0 {
			// Each response buys the burst another timeout window; only a
			// stall with zero progress for c.timeout fails the transport.
			c.conn.SetDeadline(time.Now().Add(c.timeout))
		}
		rbuf = payload
		status, body, err := wire.DecodeStatus(payload)
		if err != nil {
			terr = err
			break
		}
		res := PipeResult{Op: p.reqs[i].op}
		switch status {
		case wire.StatusOK:
			switch p.reqs[i].op {
			case wire.OpContains:
				res.Bool, res.Err = wire.DecodeBool(body)
			case wire.OpEstimate, wire.OpLen:
				res.U64, res.Err = wire.DecodeU64(body)
			case wire.OpContainsBatch, wire.OpDeleteBatch:
				var dst []bool
				if i < len(p.results) {
					dst = p.results[i].Bools[:0]
				}
				res.Bools, res.Err = wire.DecodeBoolsInto(body, dst)
			}
			if res.Err != nil {
				// A malformed OK body means the stream framing can no
				// longer be trusted.
				terr = res.Err
			}
		case wire.StatusErr:
			res.Err = &ServerError{Msg: string(body)}
		case wire.StatusReadOnly:
			res.Err = &ReadOnlyError{Primary: string(body)}
		default:
			terr = fmt.Errorf("mpcbfd: unknown status 0x%02x", status)
		}
		if terr != nil {
			break
		}
		results = append(results, res)
	}
	c.buf = rbuf[:0]

	if terr != nil {
		// Break the connection before waiting on the writer: closing the
		// conn unblocks a Write stalled on a dead peer's full buffers.
		c.fail(terr)
	}
	wr := <-written
	if terr == nil {
		if wr.err != nil {
			// All responses arrived, so every result is definitive, but
			// the connection can't be trusted for the next call.
			c.fail(wr.err)
		}
		p.results = results
		return results, nil
	}

	// Transport failure: attribute the unanswered tail. Bytes at offsets
	// below the kernel-accepted watermark may have reached the daemon —
	// unanswered mutations there are in flight and get ErrMaybeApplied.
	// Frames starting at or past the watermark were never sent.
	watermark := wr.n
	if wr.err == nil {
		watermark = len(p.buf)
	}
	for i := len(results); i < n; i++ {
		res := PipeResult{Op: p.reqs[i].op}
		if p.reqs[i].start < watermark && wire.IsMutation(p.reqs[i].op) {
			c.stMaybeApplied.Add(1)
			res.Err = fmt.Errorf("%w (%v)", ErrMaybeApplied, terr)
		} else {
			res.Err = fmt.Errorf("mpcbfd: pipelined request not completed: %w", terr)
		}
		results = append(results, res)
	}
	p.results = results
	return results, terr
}
