package client

import (
	"bufio"
	"net"
	"testing"
	"time"

	"repro/server/wire"
)

// TestClientEncodeZeroAllocs pins 0 allocs/op for the client's request
// encoding (the closure-free encodeRequest path) and batch-response
// decoding into a caller-reused slice. Skipped under -race: its
// instrumentation allocates and would make the counts meaningless.
func TestClientEncodeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are meaningless under -race")
	}
	key := []byte("alloc-guard-key")
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = key
	}
	dst := make([]byte, 0, 2048)

	single := func() {
		dst = encodeRequest(dst[:0], wire.OpInsert, nil, key, nil, 0, wire.NsConfig{}, Trace{})
	}
	single()
	if avg := testing.AllocsPerRun(100, single); avg != 0 {
		t.Errorf("encode single-key: %.1f allocs/op, want 0", avg)
	}

	ns := []byte("tenant-a")
	namespaced := func() {
		dst = encodeRequest(dst[:0], wire.OpInsert, ns, key, nil, 0, wire.NsConfig{}, Trace{})
	}
	namespaced()
	if avg := testing.AllocsPerRun(100, namespaced); avg != 0 {
		t.Errorf("encode namespaced single-key: %.1f allocs/op, want 0", avg)
	}

	batch := func() {
		dst = encodeRequest(dst[:0], wire.OpContainsBatch, nil, nil, keys, 0, wire.NsConfig{}, Trace{})
	}
	batch()
	if avg := testing.AllocsPerRun(100, batch); avg != 0 {
		t.Errorf("encode batch: %.1f allocs/op, want 0", avg)
	}

	ttlBatch := func() {
		dst = encodeRequest(dst[:0], wire.OpInsertTTLBatch, nil, nil, keys, 1e9, wire.NsConfig{}, Trace{})
	}
	ttlBatch()
	if avg := testing.AllocsPerRun(100, ttlBatch); avg != 0 {
		t.Errorf("encode ttl batch: %.1f allocs/op, want 0", avg)
	}

	tc := Trace{ID: [wire.TraceIDLen]byte{1, 2, 3}, Parent: 7}
	traced := func() {
		dst = encodeRequest(dst[:0], wire.OpInsert, ns, key, nil, 0, wire.NsConfig{}, tc)
	}
	traced()
	if avg := testing.AllocsPerRun(100, traced); avg != 0 {
		t.Errorf("encode traced namespaced: %.1f allocs/op, want 0", avg)
	}

	flags := make([]bool, len(keys))
	body := wire.AppendBools(nil, flags)
	boolScratch := make([]bool, 0, len(keys))
	decode := func() {
		out, err := wire.DecodeBoolsInto(body, boolScratch)
		if err != nil {
			t.Fatal(err)
		}
		boolScratch = out[:0]
	}
	decode()
	if avg := testing.AllocsPerRun(100, decode); avg != 0 {
		t.Errorf("decode bools: %.1f allocs/op, want 0", avg)
	}
}

// benchServer is fakeServer for benchmarks: an in-process responder
// with no store behind it, isolating the client's own per-request cost.
func benchServer(b *testing.B) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				var buf []byte
				resp := wire.AppendBool(wire.AppendOK(nil), true)
				for {
					payload, err := wire.ReadFrame(r, buf, 0)
					if err != nil {
						return
					}
					buf = payload[:0]
					if err := wire.WriteFrame(w, resp); err != nil {
						return
					}
					if err := w.Flush(); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// BenchmarkClientRoundTrip is the -benchmem evidence that a synchronous
// client operation allocates nothing in steady state: encode, frame
// write, frame read, and status decode all run through reused buffers.
func BenchmarkClientRoundTrip(b *testing.B) {
	c, err := Dial(benchServer(b), WithTimeout(5*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	key := []byte("bench-key")
	if _, err := c.Contains(key); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClientBatchRoundTripInto covers the batch form: with the
// caller recycling the result slice via ContainsBatchInto, a batch
// request is also 0 allocs/op end to end. (The fake responder answers
// [OK][bool], which DecodeBoolsInto rejects — error paths allocate — so
// this benchServer variant isn't reused; instead the responder answer is
// shaped per-op by inspecting the opcode byte.)
func BenchmarkClientBatchRoundTripInto(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		w := bufio.NewWriter(conn)
		var buf, resp []byte
		flags := make([]bool, 16)
		for {
			payload, err := wire.ReadFrame(r, buf, 0)
			if err != nil {
				return
			}
			buf = payload[:0]
			resp = wire.AppendBools(wire.AppendOK(resp[:0]), flags)
			if err := wire.WriteFrame(w, resp); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String(), WithTimeout(5*time.Second))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	keys := make([][]byte, 16)
	for i := range keys {
		keys[i] = []byte("bench-batch-key")
	}
	flags, err := c.ContainsBatchInto(keys, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flags, err = c.ContainsBatchInto(keys, flags[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}
