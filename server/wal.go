package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// The write-ahead log is a sequence of numbered segment files
// (wal-<seq>.log). Each record is CRC-framed:
//
//	[u32 len LE][u32 crc32(IEEE) of body][body]
//	body = [u8 op][key bytes]
//
// Records are appended for mutations that have already been applied to
// the in-memory filter (apply-then-log), so a record always describes a
// mutation that succeeded; replay therefore never has to guess whether a
// logged delete took effect. A torn tail — short header, short body, or
// CRC mismatch at the end of a segment — marks the end of the durable
// prefix and is discarded silently, exactly like a crash between write
// and fsync.
//
// Segments interlock with snapshots: snapshot-<S>.snap covers every
// record in segments with seq < S, so recovery loads the newest valid
// snapshot and replays segments seq >= S in order.

// SyncPolicy says when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append (one fsync per batch for batch
	// ops). Acknowledged mutations are durable against power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval leaves fsync to a background ticker; a crash window of
	// at most the interval is traded for throughput.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS page cache decides.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseSyncPolicy maps the flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always|interval|never)", s)
}

const walRecordHeader = 8 // u32 len + u32 crc

// wal appends mutation records to the current segment file.
type wal struct {
	dir    string
	policy SyncPolicy

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	seq     uint64
	size    int64 // bytes in the current segment, including buffered
	dirty   bool  // buffered or written bytes not yet fsynced
	records uint64
	syncs   uint64

	// Replication bookkeeping: cumulative counters monotonic across
	// rotations (seeded at open from the retained segments, so they
	// approximate lifetime totals), and a change-notification channel
	// closed-and-replaced on every append so tailers can wait for new
	// records without polling.
	cumRecords uint64
	cumBytes   uint64
	changed    chan struct{}

	// Observability: fsync latency (ns) and commit batch sizes (records
	// per commit). Atomic histograms — no extra locking, and the clock
	// reads bracket an fsync, which costs orders of magnitude more.
	fsyncHist Histogram
	batchHist Histogram
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

// openWAL opens (creating if absent) the segment with the given sequence
// number for append. validBytes is the length of the segment's valid
// record prefix as established by replay (-1 when the segment was not
// replayed, i.e. is new): a longer file has a torn or corrupt tail from a
// crash, and appending after that garbage would hide every new record
// from the next replay — so the tail is truncated away, durably, before
// any append is accepted.
func openWAL(dir string, seq uint64, policy SyncPolicy, validBytes int64) (*wal, error) {
	f, err := os.OpenFile(walPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if validBytes >= 0 {
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if fi.Size() > validBytes {
			if err := f.Truncate(validBytes); err != nil {
				f.Close()
				return nil, fmt.Errorf("server: truncate torn wal tail (%d -> %d bytes): %w", fi.Size(), validBytes, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
		size = validBytes
	}
	return &wal{
		dir:     dir,
		policy:  policy,
		f:       f,
		w:       bufio.NewWriterSize(f, 1<<16),
		seq:     seq,
		size:    size,
		changed: make(chan struct{}),
	}, nil
}

// setBaseline seeds the cumulative replication counters from state that
// predates this process (recovered segments). Called once at open,
// before any appends.
func (w *wal) setBaseline(records uint64, bytes uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cumRecords, w.cumBytes = records, bytes
}

func appendRecord(dst []byte, op byte, key []byte) []byte {
	body := make([]byte, 0, 1+len(key))
	body = append(body, op)
	body = append(body, key...)
	var hdr [walRecordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// Append logs one mutation and, under SyncAlways, makes it durable before
// returning. tr, when non-nil, receives the append and fsync stage
// timings.
func (w *wal) Append(op byte, key []byte, tr *reqTrace) error {
	return w.AppendBatch(op, [][]byte{key}, tr)
}

// AppendBatch logs a group of same-op mutations with a single fsync under
// SyncAlways.
func (w *wal) AppendBatch(op byte, keys [][]byte, tr *reqTrace) error {
	if len(keys) == 0 {
		return nil
	}
	buf := make([]byte, 0, len(keys)*(walRecordHeader+16))
	for _, k := range keys {
		buf = appendRecord(buf, op, k)
	}
	return w.commit(buf, len(keys), tr)
}

// AppendRaw logs pre-framed record bytes verbatim — the replica apply
// path, which mirrors the primary's segment bytes instead of re-encoding
// them. The caller has already CRC-validated the records.
func (w *wal) AppendRaw(raw []byte, n int) error {
	if len(raw) == 0 {
		return nil
	}
	return w.commit(raw, n, nil)
}

// commit writes pre-encoded records as one unit under the WAL lock,
// fsyncing per policy.
func (w *wal) commit(buf []byte, n int, tr *reqTrace) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("server: wal closed")
	}
	t0 := tr.now()
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	tr.addWAL(t0)
	w.records += uint64(n)
	w.size += int64(len(buf))
	w.cumRecords += uint64(n)
	w.cumBytes += uint64(len(buf))
	w.batchHist.Observe(uint64(n))
	w.dirty = true
	w.notifyLocked()
	if w.policy == SyncAlways {
		t1 := tr.now()
		err := w.syncLocked()
		if tr != nil {
			tr.addFsync(time.Since(t1))
		}
		return err
	}
	return nil
}

// notifyLocked wakes every tailer blocked on Changed.
func (w *wal) notifyLocked() {
	close(w.changed)
	w.changed = make(chan struct{})
}

// Changed returns a channel closed at the next append or rotation. Take
// the channel, check the position, then wait on it: the close-and-replace
// discipline makes that sequence race-free.
func (w *wal) Changed() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.changed
}

// Pos returns the current segment and its logical size, counting bytes
// still in the write buffer. This is the position an appended record
// would land at — and, because records are applied before they are
// logged, the WAL position that exactly matches the in-memory filter
// when the store mutation lock is held.
func (w *wal) Pos() (seq uint64, size int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq, w.size
}

// FlushedPos flushes the write buffer (no fsync) and returns the current
// segment and the byte length readable from the segment file. Tailers
// call this before reading so every logical byte is visible on disk.
func (w *wal) FlushedPos() (seq uint64, size int64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, 0, errors.New("server: wal closed")
	}
	if err := w.w.Flush(); err != nil {
		return 0, 0, err
	}
	return w.seq, w.size, nil
}

// CumPos returns the cumulative record and byte counters used by
// replication frames.
func (w *wal) CumPos() (records, bytes uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cumRecords, w.cumBytes
}

// Sync flushes buffered records and fsyncs if anything changed since the
// last sync. Safe to call from a background ticker.
func (w *wal) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.syncLocked()
}

func (w *wal) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.policy != SyncNever {
		t0 := time.Now()
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.fsyncHist.ObserveDuration(time.Since(t0))
	}
	w.dirty = false
	w.syncs++
	return nil
}

// Rotate syncs and closes the current segment and starts seq+1. It
// returns the new sequence number: a snapshot taken of the state at
// rotation time covers every record in segments < newSeq.
func (w *wal) Rotate() (newSeq uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateToLocked(w.seq+1, 0)
}

// RotateTo jumps to an arbitrary higher segment number — the replica
// apply path following the primary across a rotation (or a bootstrap
// that lands past a gap of pruned segments).
func (w *wal) RotateTo(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq <= w.seq {
		return fmt.Errorf("server: wal rotate to %d, already at %d", seq, w.seq)
	}
	// O_TRUNC: the replica starts the new segment at offset 0, so any
	// stale same-named file from an earlier life must not leak a prefix.
	_, err := w.rotateToLocked(seq, os.O_TRUNC)
	return err
}

func (w *wal) rotateToLocked(seq uint64, extraFlag int) (uint64, error) {
	if w.f == nil {
		return 0, errors.New("server: wal closed")
	}
	if err := w.syncLocked(); err != nil {
		return 0, err
	}
	if err := w.f.Close(); err != nil {
		return 0, err
	}
	w.seq = seq
	f, err := os.OpenFile(walPath(w.dir, w.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND|extraFlag, 0o644)
	if err != nil {
		w.f = nil // unusable; subsequent appends fail loudly
		return 0, err
	}
	w.f = f
	w.w.Reset(f)
	w.size = 0
	w.notifyLocked()
	return w.seq, nil
}

// Stats returns cumulative record and sync counts.
func (w *wal) Stats() (records, syncs uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.syncs
}

// Close syncs and closes the current segment.
func (w *wal) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWAL streams every intact record of one segment into fn. A torn
// tail (truncated header/body or CRC mismatch) ends the replay without
// error; replay stops with an error only if fn fails. valid is the byte
// length of the intact record prefix, so the caller can truncate the
// garbage tail before appending to the segment again.
func replayWAL(path string, fn func(op byte, key []byte) error) (records int, valid int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	return scanRecords(bufio.NewReaderSize(f, 1<<16), fn)
}

// scanRecords streams every intact CRC-framed record from r into fn —
// the core shared by segment replay, replication chunk framing on the
// primary, and shipped-record validation on the replica. It stops
// without error at the first torn or corrupt record; valid is the byte
// length of the intact prefix consumed.
func scanRecords(r io.Reader, fn func(op byte, key []byte) error) (records int, valid int64, err error) {
	var hdr [walRecordHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return records, valid, nil // clean EOF or torn header: end of durable prefix
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > wireMaxWALRecord {
			return records, valid, nil // implausible length: torn/corrupt tail
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return records, valid, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != want {
			return records, valid, nil // corrupt record: stop at last good prefix
		}
		if err := fn(body[0], body[1:]); err != nil {
			return records, valid, err
		}
		records++
		valid += walRecordHeader + int64(n)
	}
}

// wireMaxWALRecord bounds a single replayed record body. Keys arrive over
// the wire inside bounded frames, so anything larger is corruption.
const wireMaxWALRecord = 1 << 21

// listWALSegments returns the sequence numbers of every WAL segment in
// dir, ascending.
func listWALSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%016x.log", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}
