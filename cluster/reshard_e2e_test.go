package cluster

// End-to-end resharding test against real mpcbfd binaries: a live
// 2-primary elastic cluster under concurrent writers grows to three
// primaries via the reshard coordinator. The acceptance bar: zero
// acked-insert loss across the membership change, reads correct
// throughout the dual-write window, post-cutover writes routed by the
// new ring, and every node's post-cutover DUMP byte-identical across a
// SIGKILL + recovery replay.

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/cluster/reshard"
	"repro/internal/e2e"
)

// reshardArgs makes a daemon elastic with a small seed geometry so the
// test's key volume spans generation growth, and keeps every snapshot
// blob far under the daemon's 1 MiB request frame bound for IMPORT.
var reshardArgs = []string{"-elastic", "-mem", "262144", "-n", "800"}

func reshardKey(writer, i int) []byte {
	return []byte(fmt.Sprintf("reshard-w%d-%05d", writer, i))
}

func TestReshardE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test builds and runs the daemon binary")
	}
	bin := e2e.BuildDaemon(t)

	addrs := []string{e2e.FreePort(t), e2e.FreePort(t), e2e.FreePort(t)}
	dirs := make([]string, 3)
	daemons := make([]*e2e.Daemon, 3)
	start := func(i int) {
		daemons[i] = e2e.StartDaemon(t, e2e.DaemonConfig{
			Bin: bin, Dir: dirs[i], Addr: addrs[i], Extra: reshardArgs,
		})
	}
	for i := 0; i < 2; i++ {
		dirs[i] = filepath.Join(t.TempDir(), fmt.Sprintf("p%d", i))
		start(i)
		e2e.DialRetry(t, addrs[i]).Close()
	}

	cc, err := NewClient(ClientConfig{
		Nodes:   []Node{{Primary: addrs[0]}, {Primary: addrs[1]}},
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	stopPoll := cc.StartRingPoll(100 * time.Millisecond)
	defer stopPoll()

	// Writers: every nil-error return is an acked insert the cluster
	// must answer forever, across the membership change. The acked set
	// is shared with a reader goroutine asserting correctness live.
	var mu sync.Mutex
	var acked [][]byte
	const writers, perWriter = 3, 2000
	var wg sync.WaitGroup
	writerErr := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := reshardKey(w, i)
				if err := cc.Insert(k); err != nil {
					writerErr <- fmt.Errorf("writer %d key %d: %w", w, i, err)
					return
				}
				mu.Lock()
				acked = append(acked, k)
				mu.Unlock()
			}
		}(w)
	}

	// Reader: continuously re-checks random already-acked keys; a false
	// negative at any point of the dual-write window fails the test.
	readerStop := make(chan struct{})
	readerErr := make(chan error, 1)
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-readerStop:
				return
			default:
			}
			mu.Lock()
			var k []byte
			if len(acked) > 0 {
				k = acked[rng.Intn(len(acked))]
			}
			mu.Unlock()
			if k == nil {
				time.Sleep(time.Millisecond)
				continue
			}
			ok, err := cc.Contains(k)
			if err == nil && !ok {
				select {
				case readerErr <- fmt.Errorf("acked key %s read as absent", k):
				default:
				}
				return
			}
		}
	}()

	// Once the cluster is warm, bring up the third primary and reshard
	// while the writers keep going.
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= writers*perWriter/4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	dirs[2] = filepath.Join(t.TempDir(), "p2")
	start(2)
	e2e.DialRetry(t, addrs[2]).Close()

	co := reshard.New(reshard.Config{
		Timeout: 15 * time.Second,
		// Must exceed the client's 100ms ring-poll interval so no writer
		// is still routing single-homed when the dumps are taken.
		PropagationDelay: 700 * time.Millisecond,
	})
	defer co.Close()
	rep, err := co.Add(addrs[:2], addrs[2])
	if err != nil {
		t.Fatalf("reshard add: %v", err)
	}
	if len(rep.Transfers) != 2 {
		t.Fatalf("expected 2 snapshot transfers, got %+v", rep.Transfers)
	}

	wg.Wait()
	close(writerErr)
	for err := range writerErr {
		t.Fatal(err)
	}

	// The polling client must converge on the stable epoch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := cc.Ring()
		if r.Epoch == rep.StableEpoch && !r.Joint {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never adopted stable ring: at epoch %d joint=%v, want %d", r.Epoch, r.Joint, rep.StableEpoch)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(cc.Ring().New) != 3 {
		t.Fatalf("stable ring has %d members, want 3", len(cc.Ring().New))
	}

	// Post-cutover writes route by the new membership.
	post := make([][]byte, 300)
	for i := range post {
		post[i] = []byte(fmt.Sprintf("reshard-post-%04d", i))
	}
	if err := cc.InsertBatch(post); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	acked = append(acked, post...)
	all := append([][]byte(nil), acked...)
	mu.Unlock()

	close(readerStop)
	readerWg.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	// Zero acked-insert loss over the new ring.
	checkAll := func(when string) {
		for from := 0; from < len(all); from += 1000 {
			to := min(from+1000, len(all))
			flags, err := cc.ContainsBatch(all[from:to])
			if err != nil {
				t.Fatalf("%s: %v", when, err)
			}
			for i, ok := range flags {
				if !ok {
					t.Fatalf("%s: lost acked key %s", when, all[from+i])
				}
			}
		}
	}
	checkAll("post-cutover")

	// The new node absorbed both donors' snapshots and serves keys.
	p3, err := client.Dial(addrs[2], client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	st, err := p3.ElasticStats()
	p3.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Imports < 2 {
		t.Fatalf("new node imported %d generations, want >= 2", st.Imports)
	}

	// Byte-identical second replay: each node's durable state must
	// reconstruct exactly after SIGKILL, imports and growth included.
	for i := range daemons {
		c := e2e.DialRetry(t, addrs[i])
		before, err := c.Dump()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		daemons[i].Kill()
		start(i)
		c = e2e.DialRetry(t, addrs[i])
		after, err := c.Dump()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("node %d dump differs across replay (%d vs %d bytes)\n%s",
				i, len(before), len(after), daemons[i].Output())
		}
	}
	checkAll("post-replay")
}
