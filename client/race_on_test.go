//go:build race

package client

// raceEnabled gates tests that are meaningless under the race detector
// (e.g. allocation guards: -race instruments allocations).
const raceEnabled = true
