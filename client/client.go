// Package client is a minimal, dependency-free Go client for mpcbfd's
// wire protocol (repro/server/wire): one TCP connection, synchronous
// request/response, safe for concurrent use (requests are serialized on
// the connection).
//
// By default a transport-level error permanently breaks a Client — the
// stream position can no longer be trusted — so every later call fails
// fast; dial a new Client to retry. WithReconnect opts into automatic
// redialing with bounded exponential backoff: idempotent reads
// (Contains, EstimateCount, Len, ContainsBatch, Dump) are retried
// transparently, while an interrupted mutation surfaces ErrMaybeApplied
// — the request may or may not have reached the daemon, and blindly
// re-sending it would double-count on a counting filter.
package client

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/server/wire"
)

// ServerError is an operation-level failure reported by the daemon (e.g.
// deleting an absent key). The connection remains usable after one.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "mpcbfd: " + e.Msg }

// ReadOnlyError reports a mutation rejected by a read-only replica.
// Primary, when non-empty, is the address writes should go to instead.
// The connection remains usable after one.
type ReadOnlyError struct{ Primary string }

func (e *ReadOnlyError) Error() string {
	if e.Primary == "" {
		return "mpcbfd: server is read-only"
	}
	return "mpcbfd: server is read-only; writes go to " + e.Primary
}

// ErrMaybeApplied marks a mutation interrupted by a transport failure
// after the request left the client: the daemon may or may not have
// applied it. Match with errors.Is. Re-sending is the caller's call —
// on a counting filter a blind retry double-counts.
var ErrMaybeApplied = errors.New("mpcbfd: connection lost mid-mutation; the daemon may have applied it")

// Option configures Dial.
type Option func(*Client)

// WithTimeout bounds each request round trip (default 10s, 0 disables).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithMaxFrame bounds response frames (default wire.DefaultMaxFrame).
func WithMaxFrame(n int) Option {
	return func(c *Client) { c.maxFrame = n }
}

// WithReconnect makes a broken Client redial instead of failing fast.
// Idempotent reads are retried up to attempts times in total, sleeping
// an exponential backoff (base, doubling, capped at max) between tries;
// interrupted mutations are never retried — they return ErrMaybeApplied
// and the next call redials. Zero arguments pick defaults (3 attempts,
// 50ms base, 2s cap).
func WithReconnect(attempts int, base, max time.Duration) Option {
	return func(c *Client) {
		c.reconnect = true
		c.attempts = attempts
		c.backoffBase = base
		c.backoffMax = max
	}
}

// Client is a connection to an mpcbfd daemon.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	r        *bufio.Reader
	w        *bufio.Writer
	buf      []byte // reused request/response scratch
	err      error  // first transport error; non-nil = broken, stream position unknown
	closed   bool   // Close was called; reconnect never resurrects
	addr     string
	timeout  time.Duration
	maxFrame int

	reconnect   bool
	attempts    int
	backoffBase time.Duration
	backoffMax  time.Duration

	// Lifetime counters, atomic so Stats never contends with requests.
	stRequests     atomic.Uint64
	stTransportErr atomic.Uint64
	stRedials      atomic.Uint64
	stRetries      atomic.Uint64
	stMaybeApplied atomic.Uint64
}

// Stats is a point-in-time view of a Client's lifetime counters.
type Stats struct {
	Requests        uint64 `json:"requests"`         // operations attempted
	TransportErrors uint64 `json:"transport_errors"` // connection-breaking failures
	Redials         uint64 `json:"redials"`          // successful reconnects
	Retries         uint64 `json:"retries"`          // backoff sleeps before re-attempts
	MaybeApplied    uint64 `json:"maybe_applied"`    // mutations lost in transit (ErrMaybeApplied)
}

// Stats returns the connection's lifetime counters.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:        c.stRequests.Load(),
		TransportErrors: c.stTransportErr.Load(),
		Redials:         c.stRedials.Load(),
		Retries:         c.stRetries.Load(),
		MaybeApplied:    c.stMaybeApplied.Load(),
	}
}

// WriteProm appends the connection's counters to a Prometheus
// exposition, labeled by daemon address. When several Clients write to
// the same exposition each repeats the HELP/TYPE header for its series;
// Prometheus parsers accept that as long as the samples differ by label.
func (c *Client) WriteProm(w io.Writer) {
	st := c.Stats()
	emit := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s{addr=%q} %d\n", name, help, name, name, c.addr, v)
	}
	emit("mpcbfd_client_requests_total", "Operations attempted on this connection.", st.Requests)
	emit("mpcbfd_client_transport_errors_total", "Connection-breaking transport failures.", st.TransportErrors)
	emit("mpcbfd_client_redials_total", "Successful reconnects.", st.Redials)
	emit("mpcbfd_client_retries_total", "Backoff sleeps before re-attempts.", st.Retries)
	emit("mpcbfd_client_maybe_applied_total", "Mutations interrupted in transit (ErrMaybeApplied).", st.MaybeApplied)
}

// Dial connects to an mpcbfd daemon at addr.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{addr: addr, timeout: 10 * time.Second, maxFrame: wire.DefaultMaxFrame}
	for _, o := range opts {
		o(c)
	}
	if c.attempts <= 0 {
		c.attempts = 3
	}
	if c.backoffBase <= 0 {
		c.backoffBase = 50 * time.Millisecond
	}
	if c.backoffMax <= 0 {
		c.backoffMax = 2 * time.Second
	}
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.attach(conn)
	return c, nil
}

func (c *Client) attach(conn net.Conn) {
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 1<<16)
	c.w = bufio.NewWriterSize(conn, 1<<16)
	c.err = nil
}

// Close closes the connection. A closed Client stays closed even with
// WithReconnect.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.err == nil {
		c.err = errors.New("client closed")
	}
	return c.conn.Close()
}

// Trace is a distributed-trace context. An active Trace wraps the
// request in the wire TRACE envelope (outermost, before any NAMESPACED
// wrap), so the daemon upgrades it to a full per-stage span carrying
// these ids — visible at /debug/traces and stitchable across nodes by
// mpcbf-trace. The zero Trace is inactive and adds zero wire bytes.
type Trace struct {
	// ID is the 16-byte trace id shared by every span of one logical
	// operation, including all sub-batches of a cluster fan-out.
	ID [wire.TraceIDLen]byte
	// Parent is the client-side span id the request is a child of (0 for
	// a root span).
	Parent uint64
}

// NewTrace returns a Trace with a fresh random id.
func NewTrace() Trace {
	var t Trace
	if _, err := rand.Read(t.ID[:]); err != nil {
		panic("mpcbfd: trace id entropy unavailable: " + err.Error())
	}
	return t
}

// Active reports whether the Trace carries an id (the zero Trace does
// not and encodes nothing).
func (t Trace) Active() bool { return t.ID != [wire.TraceIDLen]byte{} }

// String renders the trace id as hex — the spelling /debug/traces and
// mpcbf-trace use.
func (t Trace) String() string { return hex.EncodeToString(t.ID[:]) }

// encodeRequest encodes one request payload into dst from plain
// arguments — no per-call closure, so the steady-state encode path does
// not allocate. Exactly one of key/keys is meaningful per opcode; ttl is
// read only by the TTL ops, cfg only by CREATE_NS. A non-empty ns wraps
// data ops in the NAMESPACED envelope; the namespace admin ops carry
// their name inline instead. An active tc prepends the TRACE envelope
// outermost — before NAMESPACED and around the admin ops too.
func encodeRequest(dst []byte, op byte, ns, key []byte, keys [][]byte, ttl uint64, cfg wire.NsConfig, tc Trace) []byte {
	if tc.Active() {
		dst = wire.AppendTrace(dst, tc.ID, tc.Parent)
	}
	switch op {
	case wire.OpNsCreate:
		return wire.AppendNsCreateRequest(dst, ns, cfg)
	case wire.OpNsDrop:
		return wire.AppendNsDropRequest(dst, ns)
	case wire.OpNsList:
		return wire.AppendNsListRequest(dst)
	case wire.OpNsStats:
		return wire.AppendNsStatsRequest(dst, ns)
	}
	if len(ns) > 0 {
		dst = wire.AppendNamespaced(dst, ns)
	}
	switch op {
	case wire.OpLen, wire.OpDump, wire.OpWindowStats, wire.OpElasticStats, wire.OpRingGet:
		return append(dst, op)
	case wire.OpRingSet, wire.OpImport:
		// key carries the pre-encoded payload (ring descriptor / filter
		// blob); both ops are op-byte-plus-raw-bytes on the wire.
		return append(append(dst, op), key...)
	case wire.OpInsertBatch, wire.OpDeleteBatch, wire.OpContainsBatch:
		return wire.AppendBatchRequest(dst, op, keys)
	case wire.OpInsertTTL:
		return wire.AppendInsertTTLRequest(dst, key, ttl)
	case wire.OpInsertTTLBatch:
		return wire.AppendInsertTTLBatchRequest(dst, keys, ttl)
	default:
		return wire.AppendKeyRequest(dst, op, key)
	}
}

// do runs one non-namespaced, untraced operation; see doNS.
func (c *Client) do(op byte, key []byte, keys [][]byte, ttl uint64, dec func([]byte) error) error {
	return c.doNS(op, nil, key, keys, ttl, wire.NsConfig{}, Trace{}, dec)
}

// doNS runs one operation, re-encoding the request from its arguments on
// every attempt (the scratch buffer is shared, so a retry cannot reuse a
// previous attempt's payload). Reconnect-enabled clients redial broken
// connections; transport failures retry idempotent ops with backoff and
// convert mutation interruptions to ErrMaybeApplied. Callers must not
// hold c.mu.
//
// dec, when non-nil, is invoked on the OK response body while the
// connection lock is still held: the body aliases the client's reused
// buffer, which the next request on this connection overwrites, so it
// must be decoded (or copied) before the lock is released — never
// retained.
func (c *Client) doNS(op byte, ns, key []byte, keys [][]byte, ttl uint64, cfg wire.NsConfig, tc Trace, dec func([]byte) error) error {
	if len(ns) > wire.MaxNamespaceLen {
		return fmt.Errorf("mpcbfd: namespace name %d bytes long (max %d)", len(ns), wire.MaxNamespaceLen)
	}
	c.stRequests.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.err != nil {
			if c.closed {
				return errors.New("mpcbfd: client closed")
			}
			if !c.reconnect {
				return fmt.Errorf("mpcbfd: client broken by earlier error: %w", c.err)
			}
			if err := c.redial(); err != nil {
				if attempt+1 >= c.attempts {
					return err
				}
				c.stRetries.Add(1)
				c.backoff(attempt)
				continue
			}
		}
		payload := encodeRequest(c.scratch(), op, ns, key, keys, ttl, cfg, tc)
		// Keep the grown buffer: encodeRequest appends into scratch, and
		// without writing the result back every call would regrow from the
		// response-sized buffer and allocate forever.
		c.buf = payload
		body, err := c.roundTrip(payload)
		if err == nil {
			if dec != nil {
				return dec(body)
			}
			return nil
		}
		var se *ServerError
		var ro *ReadOnlyError
		if errors.As(err, &se) || errors.As(err, &ro) {
			return err // operation-level: the stream is still in sync
		}
		if !c.reconnect {
			return err
		}
		if wire.IsMutation(op) {
			// The request may have been applied before the connection
			// died; retrying could double-count. The broken connection is
			// left for the next call to redial.
			c.stMaybeApplied.Add(1)
			return fmt.Errorf("%w (%v)", ErrMaybeApplied, err)
		}
		if attempt+1 >= c.attempts {
			return err
		}
		c.stRetries.Add(1)
		c.backoff(attempt)
	}
}

// redial replaces a broken connection; callers hold c.mu.
func (c *Client) redial() error {
	c.conn.Close()
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.attach(conn)
	c.stRedials.Add(1)
	return nil
}

// backoff sleeps the capped exponential delay for a zero-based attempt
// number. It holds c.mu by design: the client serializes requests, and a
// queued request would fail against the same dead server anyway.
func (c *Client) backoff(attempt int) {
	d := c.backoffBase << attempt
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	time.Sleep(d)
}

// roundTrip sends one request payload and returns the response body for
// an OK status, a *ServerError for an ERR status, and a *ReadOnlyError
// for a READONLY status.
//
// Any transport-level failure — a write or flush error, a failed or
// timed-out read, an undecodable response — leaves the stream position
// unknown: retrying on the same connection would read leftover bytes of
// the previous response and mis-attribute results. So such an error
// breaks the connection (it is closed, c.err set); without WithReconnect
// the Client is then permanently broken. Operation-level statuses do not
// break anything: the response frame was read whole and the stream is
// still in sync.
func (c *Client) roundTrip(payload []byte) ([]byte, error) {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := wire.WriteFrame(c.w, payload); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	resp, err := wire.ReadFrame(c.r, c.buf[:0], c.maxFrame)
	if err != nil {
		return nil, c.fail(err)
	}
	c.buf = resp[:0]
	status, body, err := wire.DecodeStatus(resp)
	if err != nil {
		return nil, c.fail(err)
	}
	switch status {
	case wire.StatusOK:
		return body, nil
	case wire.StatusErr:
		return nil, &ServerError{Msg: string(body)}
	case wire.StatusReadOnly:
		return nil, &ReadOnlyError{Primary: string(body)}
	}
	return nil, c.fail(fmt.Errorf("mpcbfd: unknown status 0x%02x", status))
}

// fail marks the connection broken and closes it; callers hold c.mu.
func (c *Client) fail(err error) error {
	c.stTransportErr.Add(1)
	c.err = err
	c.conn.Close()
	return err
}

// Insert adds key. A nil return means the daemon acknowledged the
// mutation under its configured durability policy.
func (c *Client) Insert(key []byte) error {
	return c.do(wire.OpInsert, key, nil, 0, nil)
}

// Delete removes a previously inserted key.
func (c *Client) Delete(key []byte) error {
	return c.do(wire.OpDelete, key, nil, 0, nil)
}

// Contains reports whether key may be in the set.
func (c *Client) Contains(key []byte) (bool, error) {
	var ok bool
	err := c.do(wire.OpContains, key, nil, 0, func(body []byte) (err error) {
		ok, err = wire.DecodeBool(body)
		return err
	})
	return ok, err
}

// EstimateCount returns an upper bound on key's multiplicity.
func (c *Client) EstimateCount(key []byte) (int, error) {
	var v uint64
	err := c.do(wire.OpEstimate, key, nil, 0, func(body []byte) (err error) {
		v, err = wire.DecodeU64(body)
		return err
	})
	return int(v), err
}

// Len returns the daemon's current element count.
func (c *Client) Len() (int, error) {
	var v uint64
	err := c.do(wire.OpLen, nil, nil, 0, func(body []byte) (err error) {
		v, err = wire.DecodeU64(body)
		return err
	})
	return int(v), err
}

// InsertBatch inserts keys as one request (one WAL commit server-side).
func (c *Client) InsertBatch(keys [][]byte) error {
	return c.do(wire.OpInsertBatch, nil, keys, 0, nil)
}

// DeleteBatch deletes keys as one request, returning order-preserving
// flags for which keys were actually removed.
func (c *Client) DeleteBatch(keys [][]byte) ([]bool, error) {
	return c.DeleteBatchInto(keys, nil)
}

// DeleteBatchInto is DeleteBatch decoding into dst's backing array:
// a caller reusing the returned slice across batches stops allocating.
func (c *Client) DeleteBatchInto(keys [][]byte, dst []bool) ([]bool, error) {
	var out []bool
	err := c.do(wire.OpDeleteBatch, nil, keys, 0, func(body []byte) (err error) {
		out, err = wire.DecodeBoolsInto(body, dst)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ContainsBatch answers membership for keys, order-preserving.
func (c *Client) ContainsBatch(keys [][]byte) ([]bool, error) {
	return c.ContainsBatchInto(keys, nil)
}

// ContainsBatchInto is ContainsBatch decoding into dst's backing array:
// a caller reusing the returned slice across batches stops allocating.
func (c *Client) ContainsBatchInto(keys [][]byte, dst []bool) ([]bool, error) {
	var out []bool
	err := c.do(wire.OpContainsBatch, nil, keys, 0, func(body []byte) (err error) {
		out, err = wire.DecodeBoolsInto(body, dst)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InsertTTL inserts key with a per-key lifetime: against a windowed
// daemon the key expires no earlier than ttl and no later than the
// window span, at rotation granularity. A non-windowed daemon answers
// with a *ServerError.
func (c *Client) InsertTTL(key []byte, ttl time.Duration) error {
	return c.do(wire.OpInsertTTL, key, nil, uint64(max(ttl, 0)), nil)
}

// InsertTTLBatch inserts keys sharing one TTL as a single request (one
// WAL commit server-side). Windowed daemons only.
func (c *Client) InsertTTLBatch(keys [][]byte, ttl time.Duration) error {
	return c.do(wire.OpInsertTTLBatch, nil, keys, uint64(max(ttl, 0)), nil)
}

// WindowStats reports a windowed daemon's generation ring: size, head
// slot, rotation count, span, and per-slot item counts.
func (c *Client) WindowStats() (wire.WindowStats, error) {
	var st wire.WindowStats
	err := c.do(wire.OpWindowStats, nil, nil, 0, func(body []byte) (err error) {
		st, err = wire.DecodeWindowStats(body)
		return err
	})
	return st, err
}

// Dump fetches a consistent point-in-time binary encoding of the
// daemon's filter (decode with repro.UnmarshalSharded, or
// window.UnmarshalFilter when window.IsWindowed reports a windowed
// daemon's encoding). The returned slice is the caller's to keep.
func (c *Client) Dump() ([]byte, error) {
	var blob []byte
	err := c.do(wire.OpDump, nil, nil, 0, func(body []byte) error {
		blob = append([]byte(nil), body...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return blob, nil
}

// Import hands the daemon a complete marshaled filter (Sharded or an
// elastic chain's encoding) to absorb as frozen generation(s) of its
// elastic filter — the snapshot-transfer half of resharding. The nil
// return means every imported generation is durable on the daemon.
func (c *Client) Import(blob []byte) error {
	return c.do(wire.OpImport, blob, nil, 0, nil)
}

// ElasticStats reports an elastic daemon's chain shape: generation
// count, growth/import counters, and per-generation fill and FPR
// budget. Non-elastic daemons answer with a *ServerError.
func (c *Client) ElasticStats() (wire.ElasticStats, error) {
	var st wire.ElasticStats
	err := c.do(wire.OpElasticStats, nil, nil, 0, func(body []byte) (err error) {
		st, err = wire.DecodeElasticStats(body)
		return err
	})
	return st, err
}

// RingSet pushes a cluster ring descriptor to the daemon, which adopts
// it iff the epoch is newer than what it holds and answers OK either
// way — pushing an old descriptor is harmless, so retries are safe.
func (c *Client) RingSet(r wire.Ring) error {
	return c.do(wire.OpRingSet, wire.AppendRing(nil, r), nil, 0, nil)
}

// RingGet reads back the daemon's current ring descriptor. Epoch 0
// means no ring has been installed.
func (c *Client) RingGet() (wire.Ring, error) {
	var r wire.Ring
	err := c.do(wire.OpRingGet, nil, nil, 0, func(body []byte) error {
		var rest []byte
		var err error
		r, rest, err = wire.DecodeRing(body)
		if err != nil {
			return fmt.Errorf("mpcbfd: ring_get response: %w", err)
		}
		if len(rest) != 0 {
			return errors.New("mpcbfd: ring_get response: trailing bytes")
		}
		return nil
	})
	if err != nil {
		return wire.Ring{}, err
	}
	return r, nil
}

// scratch hands out the reused request buffer; callers hold c.mu.
func (c *Client) scratch() []byte { return c.buf[:0] }

// Traced returns a view of the client whose every request is wrapped in
// the TRACE envelope carrying tc. The view shares the connection; it is
// a cheap value, built per call site, so one Client can serve many
// concurrent traces.
func (c *Client) Traced(tc Trace) TracedClient { return TracedClient{c: c, tc: tc} }

// TracedClient issues data operations inside a TRACE envelope,
// optionally namespaced (see Namespace.Traced). It is a value-type
// view: copying it is cheap and all copies share the connection.
type TracedClient struct {
	c  *Client
	tc Trace
	ns []byte
}

// Insert adds key, traced.
func (t TracedClient) Insert(key []byte) error {
	return t.c.doNS(wire.OpInsert, t.ns, key, nil, 0, wire.NsConfig{}, t.tc, nil)
}

// Delete removes a previously inserted key, traced.
func (t TracedClient) Delete(key []byte) error {
	return t.c.doNS(wire.OpDelete, t.ns, key, nil, 0, wire.NsConfig{}, t.tc, nil)
}

// Contains reports whether key may be in the set, traced.
func (t TracedClient) Contains(key []byte) (bool, error) {
	var ok bool
	err := t.c.doNS(wire.OpContains, t.ns, key, nil, 0, wire.NsConfig{}, t.tc, func(body []byte) (err error) {
		ok, err = wire.DecodeBool(body)
		return err
	})
	return ok, err
}

// EstimateCount returns an upper bound on key's multiplicity, traced.
func (t TracedClient) EstimateCount(key []byte) (int, error) {
	var v uint64
	err := t.c.doNS(wire.OpEstimate, t.ns, key, nil, 0, wire.NsConfig{}, t.tc, func(body []byte) (err error) {
		v, err = wire.DecodeU64(body)
		return err
	})
	return int(v), err
}

// InsertBatch inserts keys as one traced request.
func (t TracedClient) InsertBatch(keys [][]byte) error {
	return t.c.doNS(wire.OpInsertBatch, t.ns, nil, keys, 0, wire.NsConfig{}, t.tc, nil)
}

// DeleteBatch deletes keys as one traced request, returning
// order-preserving removal flags.
func (t TracedClient) DeleteBatch(keys [][]byte) ([]bool, error) {
	var out []bool
	err := t.c.doNS(wire.OpDeleteBatch, t.ns, nil, keys, 0, wire.NsConfig{}, t.tc, func(body []byte) (err error) {
		out, err = wire.DecodeBoolsInto(body, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ContainsBatch answers membership for keys, traced, order-preserving.
func (t TracedClient) ContainsBatch(keys [][]byte) ([]bool, error) {
	var out []bool
	err := t.c.doNS(wire.OpContainsBatch, t.ns, nil, keys, 0, wire.NsConfig{}, t.tc, func(body []byte) (err error) {
		out, err = wire.DecodeBoolsInto(body, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InsertTTL inserts key with a per-key lifetime, traced (windowed
// daemons only).
func (t TracedClient) InsertTTL(key []byte, ttl time.Duration) error {
	return t.c.doNS(wire.OpInsertTTL, t.ns, key, nil, uint64(max(ttl, 0)), wire.NsConfig{}, t.tc, nil)
}

// InsertTTLBatch inserts keys sharing one TTL as a single traced
// request (windowed daemons only).
func (t TracedClient) InsertTTLBatch(keys [][]byte, ttl time.Duration) error {
	return t.c.doNS(wire.OpInsertTTLBatch, t.ns, nil, keys, uint64(max(ttl, 0)), wire.NsConfig{}, t.tc, nil)
}
