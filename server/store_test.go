package server

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"testing"

	mpcbf "repro"
)

// discardLog silences store/server logging in tests. (slog.DiscardHandler
// is go1.24; this repo targets go1.22.)
func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testStoreOptions(dir string) StoreOptions {
	return StoreOptions{
		Dir:    dir,
		Filter: mpcbf.Options{MemoryBits: 1 << 19, ExpectedItems: 5000, Seed: 42},
		Shards: 4,
		Sync:   SyncAlways,
		Log:    discardLog(),
	}
}

func storeKeys(prefix string, n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s-%d", prefix, i))
	}
	return keys
}

func TestStoreRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("wal", 500)
	for _, k := range keys[:100] {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InsertBatch(keys[100:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: close the WAL file without snapshotting.
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 499 {
		t.Fatalf("recovered Len = %d, want 499", r.Len())
	}
	if got := r.Stats().ReplayedRecords; got != 501 {
		t.Fatalf("replayed %d records, want 501", got)
	}
	for _, k := range keys[1:] {
		if !r.Contains(k) {
			t.Fatalf("false negative after WAL recovery: %q", k)
		}
	}
}

func TestStoreRecoveryFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("snap", 600)
	if err := s.InsertBatch(keys[:400]); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Tail mutations after the snapshot live only in the fresh segment.
	if err := s.InsertBatch(keys[400:]); err != nil {
		t.Fatal(err)
	}
	ok, err := s.DeleteBatch(keys[:50])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ok {
		if !v {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := s.wal.Close(); err != nil { // crash without final snapshot
		t.Fatal(err)
	}

	r, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 550 {
		t.Fatalf("recovered Len = %d, want 550", r.Len())
	}
	// Only the tail (200 inserts + 50 deletes) should need replaying.
	if got := r.Stats().ReplayedRecords; got != 250 {
		t.Fatalf("replayed %d records, want 250", got)
	}
	for _, k := range keys[50:] {
		if !r.Contains(k) {
			t.Fatalf("false negative after snapshot+tail recovery: %q", k)
		}
	}
}

func TestStoreSnapshotRetainsOnePredecessor(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBatch(storeKeys("trunc", 300)); err != nil {
		t.Fatal(err)
	}
	// The first snapshot has no predecessor, so only the live segment
	// survives it; each later snapshot keeps exactly one older generation
	// (snapshot + covering segments) as a corruption fallback.
	for i, want := range []int{1, 2, 2} {
		if err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
		snaps, err := listSnapshots(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) != want {
			t.Fatalf("after snapshot %d: snapshots = %v, want %d", i+1, snaps, want)
		}
		segs, err := listWALSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != want {
			t.Fatalf("after snapshot %d: segments = %v, want %d", i+1, segs, want)
		}
		if snaps[0] != segs[0] || snaps[len(snaps)-1] != segs[len(segs)-1] {
			t.Fatalf("after snapshot %d: snapshots %v misaligned with segments %v", i+1, snaps, segs)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("fallback", 200)
	if err := s.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil { // predecessor generation
		t.Fatal(err)
	}
	extra := storeKeys("tail", 50)
	if err := s.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // newest generation via final snapshot
		t.Fatal(err)
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %v, want newest + one retained predecessor", snaps)
	}
	// Corrupt the newest snapshot: recovery must fall back to the retained
	// predecessor and replay the segments between the two generations —
	// full state, zero loss.
	corruptFile(t, snapshotPath(dir, snaps[1]))
	r, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 250 {
		t.Fatalf("recovered Len = %d, want 250", r.Len())
	}
	for _, k := range append(append([][]byte(nil), keys...), extra...) {
		if !r.Contains(k) {
			t.Fatalf("false negative on %q after snapshot fallback", k)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAllSnapshotsCorruptFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBatch(storeKeys("doomed", 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("snapshots = %v, %v", snaps, err)
	}
	for _, seq := range snaps {
		corruptFile(t, snapshotPath(dir, seq))
	}
	// Silently coming up empty would masquerade as data loss; the store
	// must refuse to open instead.
	if _, err := OpenStore(testStoreOptions(dir)); err == nil {
		t.Fatal("OpenStore succeeded with every snapshot corrupt")
	}
}

func TestStoreTornTailSurvivesDoubleCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	first := storeKeys("crash1", 100)
	if err := s.InsertBatch(first); err != nil {
		t.Fatal(err)
	}
	if err := s.wal.Close(); err != nil { // crash #1...
		t.Fatal(err)
	}
	segs, err := listWALSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	// ...mid-append: garbage bytes after the last intact record.
	live := walPath(dir, segs[len(segs)-1])
	f, err := os.OpenFile(live, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay drops the torn tail and recovery truncates it, so
	// mutations acked after the restart land where the next replay sees
	// them.
	s2, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 100 {
		t.Fatalf("first recovery Len = %d, want 100", s2.Len())
	}
	second := storeKeys("crash2", 100)
	if err := s2.InsertBatch(second); err != nil {
		t.Fatal(err)
	}
	if err := s2.wal.Close(); err != nil { // crash #2
		t.Fatal(err)
	}

	r, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 200 {
		t.Fatalf("second recovery Len = %d, want 200 (acked records written after restart lost behind torn tail?)", r.Len())
	}
	for _, k := range append(append([][]byte(nil), first...), second...) {
		if !r.Contains(k) {
			t.Fatalf("false negative on acked key %q after double crash", k)
		}
	}
}

func TestStoreDeleteBatchLogsOnlySuccesses(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("dbl", 100)
	if err := s.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	mixed := append(append([][]byte(nil), keys[:40]...), storeKeys("ghost", 40)...)
	ok, err := s.DeleteBatch(mixed)
	if err != nil {
		t.Fatal(err)
	}
	succeeded := 0
	for _, v := range ok {
		if v {
			succeeded++
		}
	}
	wantLen := 100 - succeeded
	if s.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", s.Len(), wantLen)
	}
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay must land on exactly the same count: failed deletes were
	// never logged, so recovery cannot double-apply them.
	r, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", r.Len(), wantLen)
	}
	for _, k := range keys[40:] {
		if !r.Contains(k) {
			t.Fatalf("false negative on surviving key %q", k)
		}
	}
}

func TestStoreEstimateAndLen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := []byte("multiplicity")
	for i := 0; i < 3; i++ {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.EstimateCount(k); n < 3 {
		t.Fatalf("EstimateCount = %d, want >= 3", n)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.ContainsBatch([][]byte{k, []byte("absent-key-xyz")}); !got[0] {
		t.Fatal("ContainsBatch lost the inserted key")
	}
}
