package ns

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	mpcbf "repro"
	"repro/elastic"
	"repro/server/wire"
	"repro/window"
)

// Config is a namespace's resolved filter configuration. Window > 0
// makes the namespace a sliding-window filter of that span; Elastic
// makes it a generational elastic chain (repro/elastic) that grows
// past its seed capacity; otherwise it is a plain counting filter.
// The zero value of any field means "inherit the default" until
// Resolve fills it in.
type Config struct {
	MemoryBits     int
	ExpectedItems  int
	HashFunctions  int
	MemoryAccesses int
	Shards         int
	Seed           uint32
	Window         time.Duration
	Generations    int
	Elastic        bool
}

// Configuration bounds. Geometry arrives from the network (CREATE_NS),
// so resolved values are range-checked before any allocation: a hostile
// or buggy client must not be able to ask one namespace for a
// terabyte.
const (
	minMemoryBits = 64
	maxMemoryBits = 1 << 36 // 8 GiB of filter, per namespace
	maxItems      = 1 << 40
	maxHashFns    = 32
	maxAccesses   = 8
	maxShards     = 4096
	maxGens       = 64
)

// ConfigFromWire converts wire-level overrides to a Config.
func ConfigFromWire(c wire.NsConfig) Config {
	return Config{
		MemoryBits:     int(c.MemoryBits),
		ExpectedItems:  int(c.ExpectedItems),
		HashFunctions:  int(c.HashFunctions),
		MemoryAccesses: int(c.MemoryAccesses),
		Shards:         int(c.Shards),
		Seed:           c.Seed,
		Window:         time.Duration(c.WindowNanos),
		Generations:    int(c.Generations),
		Elastic:        c.Elastic(),
	}
}

// Wire converts a Config to its wire encoding (used when logging
// NS_CREATE records, which carry the resolved configuration).
func (c Config) Wire() wire.NsConfig {
	var flags uint8
	if c.Elastic {
		flags |= wire.NsFlagElastic
	}
	return wire.NsConfig{
		MemoryBits:     uint64(c.MemoryBits),
		ExpectedItems:  uint64(c.ExpectedItems),
		HashFunctions:  uint8(c.HashFunctions),
		MemoryAccesses: uint8(c.MemoryAccesses),
		Shards:         uint16(c.Shards),
		Seed:           c.Seed,
		WindowNanos:    uint64(max(c.Window, 0)),
		Generations:    uint16(c.Generations),
		Flags:          flags,
	}
}

// resolve fills zero fields from d.
func (c Config) resolve(d Config) Config {
	if c.MemoryBits == 0 {
		c.MemoryBits = d.MemoryBits
	}
	if c.ExpectedItems == 0 {
		c.ExpectedItems = d.ExpectedItems
	}
	if c.HashFunctions == 0 {
		c.HashFunctions = d.HashFunctions
	}
	if c.MemoryAccesses == 0 {
		c.MemoryAccesses = d.MemoryAccesses
	}
	if c.Shards == 0 {
		c.Shards = d.Shards
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.Generations == 0 {
		c.Generations = d.Generations
	}
	if c.Window > 0 && c.Generations == 0 {
		c.Generations = 4
	}
	if !c.Elastic {
		c.Elastic = d.Elastic
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.MemoryBits < minMemoryBits || c.MemoryBits > maxMemoryBits:
		return fmt.Errorf("ns: memory bits %d outside [%d, %d]", c.MemoryBits, minMemoryBits, maxMemoryBits)
	case c.ExpectedItems < 1 || c.ExpectedItems > maxItems:
		return fmt.Errorf("ns: expected items %d outside [1, %d]", c.ExpectedItems, maxItems)
	case c.HashFunctions < 1 || c.HashFunctions > maxHashFns:
		return fmt.Errorf("ns: hash functions %d outside [1, %d]", c.HashFunctions, maxHashFns)
	case c.MemoryAccesses < 1 || c.MemoryAccesses > maxAccesses:
		return fmt.Errorf("ns: memory accesses %d outside [1, %d]", c.MemoryAccesses, maxAccesses)
	case c.Shards < 1 || c.Shards > maxShards:
		return fmt.Errorf("ns: shards %d outside [1, %d]", c.Shards, maxShards)
	case c.Window < 0:
		return fmt.Errorf("ns: negative window %v", c.Window)
	case c.Window > 0 && (c.Generations < 1 || c.Generations > maxGens):
		return fmt.Errorf("ns: generations %d outside [1, %d]", c.Generations, maxGens)
	case c.Elastic && c.Window > 0:
		return errors.New("ns: a namespace cannot be both elastic and windowed (growth would duplicate keys across expiring generations)")
	}
	return nil
}

// Windowed reports whether the configuration describes a sliding-window
// namespace.
func (c Config) Windowed() bool { return c.Window > 0 }

// elasticOptions derives the elastic chain configuration: the resolved
// filter geometry seeds generation 0 and the chain target FPR derives
// from it (the elastic package's default).
func (c Config) elasticOptions() elastic.Options {
	return elastic.Options{
		Filter: c.filterOptions(),
		Shards: c.Shards,
	}
}

func (c Config) filterOptions() mpcbf.Options {
	return mpcbf.Options{
		MemoryBits:     c.MemoryBits,
		ExpectedItems:  c.ExpectedItems,
		HashFunctions:  c.HashFunctions,
		MemoryAccesses: c.MemoryAccesses,
		Seed:           c.Seed,
	}
}

// Errors returned by registry operations.
var (
	ErrExists      = errors.New("ns: namespace already exists")
	ErrNotResident = errors.New("ns: namespace not resident")
)

// Entry is one namespace: its resolved configuration plus its filter
// state, which is either resident (exactly one of the three pointers
// non-nil) or evicted (all nil, state in the evict file). The pointers
// are atomic so reads race-free against eviction; state transitions are
// serialized by the registry's caller.
type Entry struct {
	name     string
	wireName []byte // [u8 len][name]: the WAL body of this namespace's SELECT/DROP records
	cfg      Config

	filter atomic.Pointer[mpcbf.Sharded]
	win    atomic.Pointer[window.Filter]
	el     atomic.Pointer[elastic.Filter]

	memBytes   int64        // resident footprint (set at attach; elastic growth updates it via Rebase)
	lastTouch  atomic.Int64 // UnixNano of last access, the LRU key
	nextRotate atomic.Int64 // windowed: UnixNano of the next due rotation (primary's ticker)
	items      atomic.Int64 // element count at last marshal (authoritative while evicted)
	evictions  atomic.Uint64
	recoveries atomic.Uint64
}

func newEntry(name string, cfg Config) *Entry {
	wn := make([]byte, 0, 1+len(name))
	wn = append(wn, byte(len(name)))
	wn = append(wn, name...)
	return &Entry{name: name, wireName: wn, cfg: cfg}
}

// Name returns the namespace name.
func (e *Entry) Name() string { return e.name }

// WALName returns the [u8 len][name] block used as the body of this
// namespace's WAL records. Callers must not mutate it.
func (e *Entry) WALName() []byte { return e.wireName }

// Config returns the resolved configuration.
func (e *Entry) Config() Config { return e.cfg }

// Windowed reports whether this is a sliding-window namespace.
func (e *Entry) Windowed() bool { return e.cfg.Windowed() }

// IsElastic reports whether this is an elastic-chain namespace.
func (e *Entry) IsElastic() bool { return e.cfg.Elastic }

// Resident reports whether filter state is in memory.
func (e *Entry) Resident() bool {
	return e.filter.Load() != nil || e.win.Load() != nil || e.el.Load() != nil
}

// Filter returns the resident plain filter, or nil.
func (e *Entry) Filter() *mpcbf.Sharded { return e.filter.Load() }

// Window returns the resident window filter, or nil.
func (e *Entry) Window() *window.Filter { return e.win.Load() }

// Elastic returns the resident elastic chain, or nil.
func (e *Entry) Elastic() *elastic.Filter { return e.el.Load() }

// Touch records an access at now (UnixNano) for LRU/idle accounting.
func (e *Entry) Touch(now int64) { e.lastTouch.Store(now) }

// NextRotate returns the UnixNano deadline of the next due rotation
// (windowed namespaces on a primary; 0 when unset).
func (e *Entry) NextRotate() int64 { return e.nextRotate.Load() }

// SetNextRotate sets the rotation deadline.
func (e *Entry) SetNextRotate(at int64) { e.nextRotate.Store(at) }

// Insert adds key. The caller must hold the store lock (which excludes
// eviction), so non-residency is a bug, not a race.
func (e *Entry) Insert(key []byte) error {
	if f := e.filter.Load(); f != nil {
		return f.Insert(key)
	}
	if w := e.win.Load(); w != nil {
		return w.Insert(key)
	}
	if el := e.el.Load(); el != nil {
		return el.Insert(key)
	}
	return ErrNotResident
}

// Delete removes one occurrence of key.
func (e *Entry) Delete(key []byte) error {
	if f := e.filter.Load(); f != nil {
		return f.Delete(key)
	}
	if w := e.win.Load(); w != nil {
		return w.Delete(key)
	}
	if el := e.el.Load(); el != nil {
		return el.Delete(key)
	}
	return ErrNotResident
}

// InsertBatch adds keys with the given fan-out (plain namespaces; a
// windowed namespace uses its own configured workers).
func (e *Entry) InsertBatch(keys [][]byte, workers int) error {
	if f := e.filter.Load(); f != nil {
		return f.InsertBatch(keys, workers)
	}
	if w := e.win.Load(); w != nil {
		return w.InsertBatch(keys)
	}
	if el := e.el.Load(); el != nil {
		return el.InsertBatch(keys, workers)
	}
	return ErrNotResident
}

// DeleteBatch removes keys, reporting per-key success.
func (e *Entry) DeleteBatch(keys [][]byte, workers int) ([]bool, error) {
	if f := e.filter.Load(); f != nil {
		return f.DeleteBatch(keys, workers)
	}
	if w := e.win.Load(); w != nil {
		return w.DeleteBatch(keys)
	}
	if el := e.el.Load(); el != nil {
		return el.DeleteBatch(keys, workers)
	}
	return nil, ErrNotResident
}

// Contains probes key. ok is false when the entry is evicted — the
// caller must recover and retry; answering false here would be a false
// negative.
func (e *Entry) Contains(key []byte) (v, ok bool) {
	if f := e.filter.Load(); f != nil {
		return f.Contains(key), true
	}
	if w := e.win.Load(); w != nil {
		return w.Contains(key), true
	}
	if el := e.el.Load(); el != nil {
		return el.Contains(key), true
	}
	return false, false
}

// ContainsBatch probes keys; ok as for Contains.
func (e *Entry) ContainsBatch(keys [][]byte, workers int) (vs []bool, ok bool) {
	if f := e.filter.Load(); f != nil {
		return f.ContainsBatch(keys, workers), true
	}
	if w := e.win.Load(); w != nil {
		return w.ContainsBatch(keys), true
	}
	if el := e.el.Load(); el != nil {
		return el.ContainsBatch(keys, workers), true
	}
	return nil, false
}

// EstimateCount estimates key's multiplicity; ok as for Contains.
func (e *Entry) EstimateCount(key []byte) (n int, ok bool) {
	if f := e.filter.Load(); f != nil {
		return f.EstimateCount(key), true
	}
	if w := e.win.Load(); w != nil {
		return w.EstimateCount(key), true
	}
	if el := e.el.Load(); el != nil {
		return el.EstimateCount(key), true
	}
	return 0, false
}

// Len returns the element count: live when resident, the count at last
// marshal when evicted (exact — an evicted namespace cannot mutate).
func (e *Entry) Len() int {
	if f := e.filter.Load(); f != nil {
		return f.Len()
	}
	if w := e.win.Load(); w != nil {
		return w.Len()
	}
	if el := e.el.Load(); el != nil {
		return el.Len()
	}
	return int(e.items.Load())
}

// Rotate retires the oldest generation (windowed, resident).
func (e *Entry) Rotate() error {
	w := e.win.Load()
	if w == nil {
		return ErrNotResident
	}
	w.Rotate()
	return nil
}

// Marshal serializes the resident filter state.
func (e *Entry) Marshal() ([]byte, error) {
	if f := e.filter.Load(); f != nil {
		return f.MarshalBinary()
	}
	if w := e.win.Load(); w != nil {
		return w.MarshalBinary()
	}
	if el := e.el.Load(); el != nil {
		return el.MarshalBinary()
	}
	return nil, ErrNotResident
}

// Stats summarizes the entry for NS_STATS.
func (e *Entry) Stats() wire.NsStats {
	memBits := uint64(e.cfg.MemoryBits)
	if e.cfg.Windowed() {
		memBits *= uint64(e.cfg.Generations)
	}
	// An elastic chain's footprint is live state, not config: it grows.
	if el := e.el.Load(); el != nil {
		memBits = uint64(el.MemoryBits())
	}
	return wire.NsStats{
		Resident:   e.Resident(),
		Windowed:   e.cfg.Windowed(),
		Items:      uint64(e.Len()),
		MemoryBits: memBits,
		Evictions:  e.evictions.Load(),
		Recoveries: e.recoveries.Load(),
	}
}

// attachFresh builds and attaches empty filter state.
func (e *Entry) attachFresh(workers int) error {
	if e.cfg.Elastic {
		el, err := elastic.New(e.cfg.elasticOptions())
		if err != nil {
			return fmt.Errorf("ns %q: %w", e.name, err)
		}
		e.memBytes = int64(el.MemoryBits() / 8)
		e.el.Store(el)
		return nil
	}
	if e.cfg.Windowed() {
		w, err := window.New(window.Options{
			Span:        e.cfg.Window,
			Generations: e.cfg.Generations,
			Filter:      e.cfg.filterOptions(),
			Shards:      e.cfg.Shards,
			Workers:     workers,
		})
		if err != nil {
			return fmt.Errorf("ns %q: %w", e.name, err)
		}
		e.memBytes = int64(w.MemoryBits() / 8)
		e.win.Store(w)
		return nil
	}
	f, err := mpcbf.NewSharded(e.cfg.filterOptions(), e.cfg.Shards)
	if err != nil {
		return fmt.Errorf("ns %q: %w", e.name, err)
	}
	e.memBytes = int64(f.MemoryBits() / 8)
	e.filter.Store(f)
	return nil
}

// attachData unmarshals and attaches marshaled state, checking that its
// mode matches the configuration.
func (e *Entry) attachData(data []byte) error {
	if elastic.IsElastic(data) {
		if !e.cfg.Elastic {
			return fmt.Errorf("ns %q: elastic state for a non-elastic namespace", e.name)
		}
		el, err := elastic.UnmarshalFilter(data)
		if err != nil {
			return fmt.Errorf("ns %q: %w", e.name, err)
		}
		e.memBytes = int64(el.MemoryBits() / 8)
		e.el.Store(el)
		return nil
	}
	if e.cfg.Elastic {
		return fmt.Errorf("ns %q: non-elastic state for an elastic namespace", e.name)
	}
	if window.IsWindowed(data) {
		if !e.cfg.Windowed() {
			return fmt.Errorf("ns %q: windowed state for a non-windowed namespace", e.name)
		}
		w, err := window.UnmarshalFilter(data)
		if err != nil {
			return fmt.Errorf("ns %q: %w", e.name, err)
		}
		e.memBytes = int64(w.MemoryBits() / 8)
		e.win.Store(w)
		return nil
	}
	if e.cfg.Windowed() {
		return fmt.Errorf("ns %q: non-windowed state for a windowed namespace", e.name)
	}
	f, err := mpcbf.UnmarshalSharded(data)
	if err != nil {
		return fmt.Errorf("ns %q: %w", e.name, err)
	}
	e.memBytes = int64(f.MemoryBits() / 8)
	e.filter.Store(f)
	return nil
}

func (e *Entry) detach() {
	e.filter.Store(nil)
	e.win.Store(nil)
	e.el.Store(nil)
}

// Options configures a Registry.
type Options struct {
	// Defaults fills zero fields of per-namespace overrides; its own
	// zero fields get hard fallbacks (2 MiB-bit filter, 10k items, the
	// paper's k=3 g=1 geometry, 4 shards).
	Defaults Config
	// Quota bounds the summed resident bytes of all named namespaces
	// (the default namespace is outside the registry). <= 0: unlimited.
	Quota int64
	// IdleAfter is the idle-eviction horizon surfaced via IdleCutoff;
	// <= 0 disables idle eviction.
	IdleAfter time.Duration
	// Workers bounds batch fan-out for plain namespaces.
	Workers int
	// Save persists an evicted namespace's marshaled state; Load reads
	// it back; Remove deletes it (DROP_NS). All required.
	Save   func(name string, data []byte) error
	Load   func(name string) ([]byte, error)
	Remove func(name string) error
	// Log receives eviction/recovery events. nil: slog.Default().
	Log *slog.Logger
	// Now is the clock (tests); nil: time.Now.
	Now func() time.Time
}

// Registry is the namespace map plus quota accounting. See the package
// comment for the concurrency contract.
type Registry struct {
	opts Options

	mu      sync.RWMutex // guards entries; transitions additionally serialized by the caller
	entries map[string]*Entry

	residentBytes atomic.Int64
	evictions     atomic.Uint64
	recoveries    atomic.Uint64

	rotateKick chan struct{}
}

// NewRegistry builds an empty registry.
func NewRegistry(opts Options) *Registry {
	d := &opts.Defaults
	if d.MemoryBits == 0 {
		d.MemoryBits = 1 << 21
	}
	if d.ExpectedItems == 0 {
		d.ExpectedItems = 10_000
	}
	if d.HashFunctions == 0 {
		d.HashFunctions = 3
	}
	if d.MemoryAccesses == 0 {
		d.MemoryAccesses = 1
	}
	if d.Shards == 0 {
		d.Shards = 4
	}
	if d.Window > 0 && d.Generations == 0 {
		d.Generations = 4
	}
	if opts.Log == nil {
		opts.Log = slog.Default()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Registry{
		opts:       opts,
		entries:    make(map[string]*Entry),
		rotateKick: make(chan struct{}, 1),
	}
}

// Resolve fills zero fields of override from the defaults and validates
// the result. The resolved Config is what must be logged to the WAL so
// replay is independent of local defaults.
func (r *Registry) Resolve(override Config) (Config, error) {
	c := override.resolve(r.opts.Defaults)
	if err := c.validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Now returns the registry clock's UnixNano.
func (r *Registry) Now() int64 { return r.opts.Now().UnixNano() }

// Quota returns the configured resident-bytes quota (<= 0: unlimited).
func (r *Registry) Quota() int64 { return r.opts.Quota }

// IdleAfter returns the idle-eviction horizon (<= 0: disabled).
func (r *Registry) IdleAfter() time.Duration { return r.opts.IdleAfter }

// ResidentBytes returns the summed resident footprint of named
// namespaces.
func (r *Registry) ResidentBytes() int64 { return r.residentBytes.Load() }

// Len returns the number of namespaces (resident or evicted).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Lookup returns the entry named by name, or nil. Safe anytime.
func (r *Registry) Lookup(name []byte) *Entry {
	r.mu.RLock()
	e := r.entries[string(name)]
	r.mu.RUnlock()
	return e
}

// Names returns all namespace names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Entries returns all entries, sorted by name.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	es := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.mu.RUnlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	return es
}

// Create makes a new resident namespace with an already-resolved
// configuration. The caller is responsible for quota enforcement
// (EnsureQuota) afterwards, so the new entry itself is never the
// victim.
func (r *Registry) Create(name string, cfg Config) (*Entry, error) {
	if err := wire.ValidateNamespace(name); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if r.Lookup([]byte(name)) != nil {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	e := newEntry(name, cfg)
	if err := e.attachFresh(r.opts.Workers); err != nil {
		return nil, err
	}
	e.Touch(r.Now())
	r.mu.Lock()
	r.entries[name] = e
	r.mu.Unlock()
	r.residentBytes.Add(e.memBytes)
	r.KickRotate(e)
	return e, nil
}

// Drop removes a namespace and deletes its evict file. Returns the
// removed entry, or nil if the name was unknown.
func (r *Registry) Drop(name []byte) *Entry {
	r.mu.Lock()
	e := r.entries[string(name)]
	delete(r.entries, string(name))
	r.mu.Unlock()
	if e == nil {
		return nil
	}
	if e.Resident() {
		r.residentBytes.Add(-e.memBytes)
		e.detach()
	}
	if err := r.opts.Remove(e.name); err != nil {
		r.opts.Log.Warn("ns evict file remove failed", "ns", e.name, "error", err)
	}
	return e
}

// Evict marshals e's state to its evict file and drops it from memory.
func (r *Registry) Evict(e *Entry) error {
	if !e.Resident() {
		return nil
	}
	data, err := e.Marshal()
	if err != nil {
		return fmt.Errorf("ns %q: marshal for evict: %w", e.name, err)
	}
	e.items.Store(int64(e.Len()))
	if err := r.opts.Save(e.name, data); err != nil {
		return fmt.Errorf("ns %q: save for evict: %w", e.name, err)
	}
	e.detach()
	r.residentBytes.Add(-e.memBytes)
	e.evictions.Add(1)
	r.evictions.Add(1)
	r.opts.Log.Debug("namespace evicted", "ns", e.name, "bytes", e.memBytes)
	return nil
}

// Recover loads an evicted entry's state back into memory. The caller
// runs EnsureQuota(e) afterwards.
func (r *Registry) Recover(e *Entry) error {
	if e.Resident() {
		return nil
	}
	data, err := r.opts.Load(e.name)
	if err != nil {
		return fmt.Errorf("ns %q: load for recover: %w", e.name, err)
	}
	if err := e.attachData(data); err != nil {
		return err
	}
	r.residentBytes.Add(e.memBytes)
	e.recoveries.Add(1)
	r.recoveries.Add(1)
	e.Touch(r.Now())
	if e.Windowed() {
		e.SetNextRotate(r.opts.Now().Add(e.Window().RotateEvery()).UnixNano())
	}
	r.KickRotate(e)
	r.opts.Log.Debug("namespace recovered", "ns", e.name, "bytes", e.memBytes)
	return nil
}

// Rebase recomputes an elastic entry's resident footprint from its live
// chain — called after growth or a generation import changed the chain's
// memory — and folds the delta into the registry's resident-bytes
// accounting. No-op for non-elastic or evicted entries.
func (r *Registry) Rebase(e *Entry) {
	el := e.el.Load()
	if el == nil {
		return
	}
	nb := int64(el.MemoryBits() / 8)
	r.residentBytes.Add(nb - e.memBytes)
	e.memBytes = nb
}

// EnsureQuota evicts least-recently-touched resident entries (never
// keep) until resident bytes fit the quota. A single entry over quota
// by itself stays resident: the quota bounds the aggregate, residency
// of the active namespace is not negotiable.
func (r *Registry) EnsureQuota(keep *Entry) error {
	if r.opts.Quota <= 0 {
		return nil
	}
	for r.residentBytes.Load() > r.opts.Quota {
		victim := r.oldestResident(keep)
		if victim == nil {
			return nil
		}
		if err := r.Evict(victim); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) oldestResident(skip *Entry) *Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var victim *Entry
	var oldest int64
	for _, e := range r.entries {
		if e == skip || !e.Resident() {
			continue
		}
		if t := e.lastTouch.Load(); victim == nil || t < oldest {
			victim, oldest = e, t
		}
	}
	return victim
}

// EvictIdle evicts every resident entry untouched since cutoff
// (UnixNano), returning how many were evicted.
func (r *Registry) EvictIdle(cutoff int64) (int, error) {
	var idle []*Entry
	r.mu.RLock()
	for _, e := range r.entries {
		if e.Resident() && e.lastTouch.Load() < cutoff {
			idle = append(idle, e)
		}
	}
	r.mu.RUnlock()
	for i, e := range idle {
		if err := r.Evict(e); err != nil {
			return i, err
		}
	}
	return len(idle), nil
}

// InstallSnapshot recreates a namespace during recovery or replica
// bootstrap from a snapshot container record: resolved config, resident
// flag, items-at-marshal, and the marshaled state. Non-resident entries
// get their evict file rewritten from the snapshot's embedded bytes —
// mandatory, not an optimization: WAL-tail replay assumes every
// namespace starts in its snapshot state, and a local evict file
// written after the snapshot may already include tail mutations.
func (r *Registry) InstallSnapshot(name string, cfg Config, resident bool, items uint64, data []byte) error {
	if err := wire.ValidateNamespace(name); err != nil {
		return err
	}
	if err := cfg.validate(); err != nil {
		return fmt.Errorf("ns %q: %w", name, err)
	}
	if r.Lookup([]byte(name)) != nil {
		return fmt.Errorf("%w: %q (duplicate in snapshot)", ErrExists, name)
	}
	e := newEntry(name, cfg)
	if resident {
		if err := e.attachData(data); err != nil {
			return err
		}
		r.residentBytes.Add(e.memBytes)
	} else {
		e.items.Store(int64(items))
		if err := r.opts.Save(name, data); err != nil {
			return fmt.Errorf("ns %q: restore evict file: %w", name, err)
		}
	}
	e.Touch(r.Now())
	r.mu.Lock()
	r.entries[name] = e
	r.mu.Unlock()
	r.KickRotate(e)
	return nil
}

// Reset drops every entry without touching evict files (replica
// bootstrap wipes the files itself before reinstalling).
func (r *Registry) Reset() {
	r.mu.Lock()
	r.entries = make(map[string]*Entry)
	r.mu.Unlock()
	r.residentBytes.Store(0)
}

// RotateKick signals that a windowed entry became resident (created or
// recovered), so the rotation loop re-evaluates its earliest deadline.
func (r *Registry) RotateKick() <-chan struct{} { return r.rotateKick }

// KickRotate wakes the rotation loop if e is a resident windowed entry.
func (r *Registry) KickRotate(e *Entry) {
	if e == nil || !e.Windowed() || e.win.Load() == nil {
		return
	}
	if e.NextRotate() == 0 {
		e.SetNextRotate(r.opts.Now().Add(e.Window().RotateEvery()).UnixNano())
	}
	select {
	case r.rotateKick <- struct{}{}:
	default:
	}
}

// NextRotation returns the resident windowed entry with the earliest
// rotation deadline, or ok == false when there is none.
func (r *Registry) NextRotation() (e *Entry, at int64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.entries {
		if !c.Windowed() || c.win.Load() == nil {
			continue
		}
		if t := c.NextRotate(); !ok || t < at {
			e, at, ok = c, t, true
		}
	}
	return e, at, ok
}

// Totals aggregates registry-wide counters for observability.
type Totals struct {
	Count         int    `json:"count"`
	Resident      int    `json:"resident"`
	QuotaBytes    int64  `json:"quota_bytes"`
	ResidentBytes int64  `json:"resident_bytes"`
	Evictions     uint64 `json:"evictions"`
	Recoveries    uint64 `json:"recoveries"`
}

// EntrySnapshot is one namespace's observable state.
type EntrySnapshot struct {
	Name        string `json:"name"`
	Items       uint64 `json:"items"`
	MemoryBytes uint64 `json:"memory_bytes"`
	Resident    bool   `json:"resident"`
	Windowed    bool   `json:"windowed"`
	Elastic     bool   `json:"elastic"`
	Generations int    `json:"generations,omitempty"` // elastic chain length (resident only)
	Evictions   uint64 `json:"evictions"`
	Recoveries  uint64 `json:"recoveries"`
}

// Snapshot captures every entry plus the aggregate counters, sorted by
// name.
func (r *Registry) Snapshot() ([]EntrySnapshot, Totals) {
	es := r.Entries()
	t := Totals{
		Count:         len(es),
		QuotaBytes:    r.opts.Quota,
		ResidentBytes: r.residentBytes.Load(),
		Evictions:     r.evictions.Load(),
		Recoveries:    r.recoveries.Load(),
	}
	out := make([]EntrySnapshot, 0, len(es))
	for _, e := range es {
		resident := e.Resident()
		if resident {
			t.Resident++
		}
		memBits := uint64(e.cfg.MemoryBits)
		if e.cfg.Windowed() {
			memBits *= uint64(e.cfg.Generations)
		}
		gens := 0
		if el := e.el.Load(); el != nil {
			memBits = uint64(el.MemoryBits())
			gens = el.Generations()
		}
		out = append(out, EntrySnapshot{
			Name:        e.name,
			Items:       uint64(e.Len()),
			MemoryBytes: memBits / 8,
			Resident:    resident,
			Windowed:    e.cfg.Windowed(),
			Elastic:     e.cfg.Elastic,
			Generations: gens,
			Evictions:   e.evictions.Load(),
			Recoveries:  e.recoveries.Load(),
		})
	}
	return out, t
}
