package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {0x01}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(&buf, scratch, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		scratch = got[:0]
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, nil, 50); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	key := []byte("the-key")
	keys := [][]byte{[]byte("a"), {}, []byte("ccc")}
	cases := []struct {
		name    string
		payload []byte
		want    Request
	}{
		{"insert", AppendKeyRequest(nil, OpInsert, key), Request{Op: OpInsert, Key: key}},
		{"delete", AppendKeyRequest(nil, OpDelete, key), Request{Op: OpDelete, Key: key}},
		{"contains", AppendKeyRequest(nil, OpContains, key), Request{Op: OpContains, Key: key}},
		{"estimate", AppendKeyRequest(nil, OpEstimate, key), Request{Op: OpEstimate, Key: key}},
		{"len", AppendLenRequest(nil), Request{Op: OpLen}},
		{"dump", AppendDumpRequest(nil), Request{Op: OpDump}},
		{"replicate", AppendReplicateRequest(nil, 7, 1<<33), Request{Op: OpReplicate, Seq: 7, Off: 1 << 33}},
		{"insert_batch", AppendBatchRequest(nil, OpInsertBatch, keys), Request{Op: OpInsertBatch, Keys: keys}},
		{"delete_batch", AppendBatchRequest(nil, OpDeleteBatch, keys), Request{Op: OpDeleteBatch, Keys: keys}},
		{"contains_batch", AppendBatchRequest(nil, OpContainsBatch, keys), Request{Op: OpContainsBatch, Keys: keys}},
		{"insert_ttl", AppendInsertTTLRequest(nil, key, 5e9), Request{Op: OpInsertTTL, Key: key, TTL: 5e9}},
		{"insert_ttl_batch", AppendInsertTTLBatchRequest(nil, keys, 7e9), Request{Op: OpInsertTTLBatch, Keys: keys, TTL: 7e9}},
		{"window_stats", AppendWindowStatsRequest(nil), Request{Op: OpWindowStats}},
		{"ns_drop", AppendNsDropRequest(nil, []byte("tenant-a")), Request{Op: OpNsDrop, NS: []byte("tenant-a")}},
		{"ns_list", AppendNsListRequest(nil), Request{Op: OpNsList}},
		{"ns_stats", AppendNsStatsRequest(nil, []byte("tenant-a")), Request{Op: OpNsStats, NS: []byte("tenant-a")}},
		{"ns_stats default", AppendNsStatsRequest(nil, nil), Request{Op: OpNsStats}},
		{
			"namespaced insert",
			AppendKeyRequest(AppendNamespaced(nil, []byte("t1")), OpInsert, key),
			Request{Op: OpInsert, Key: key, NS: []byte("t1")},
		},
		{
			"namespaced batch",
			AppendBatchRequest(AppendNamespaced(nil, []byte("t2")), OpContainsBatch, keys),
			Request{Op: OpContainsBatch, Keys: keys, NS: []byte("t2")},
		},
		{
			"namespaced ttl",
			AppendInsertTTLRequest(AppendNamespaced(nil, []byte("t3")), key, 5e9),
			Request{Op: OpInsertTTL, Key: key, TTL: 5e9, NS: []byte("t3")},
		},
		{
			"namespaced default alias",
			AppendKeyRequest(AppendNamespaced(nil, nil), OpContains, key),
			Request{Op: OpContains, Key: key},
		},
		{
			"namespaced dump",
			AppendDumpRequest(AppendNamespaced(nil, []byte("t4"))),
			Request{Op: OpDump, NS: []byte("t4")},
		},
		{
			"ns_create",
			AppendNsCreateRequest(nil, []byte("tenant-b"), NsConfig{
				MemoryBits:     1 << 22,
				ExpectedItems:  5000,
				HashFunctions:  3,
				MemoryAccesses: 1,
				Shards:         8,
				Seed:           99,
				WindowNanos:    60e9,
				Generations:    4,
			}),
			Request{Op: OpNsCreate, NS: []byte("tenant-b"), NsCfg: NsConfig{
				MemoryBits:     1 << 22,
				ExpectedItems:  5000,
				HashFunctions:  3,
				MemoryAccesses: 1,
				Shards:         8,
				Seed:           99,
				WindowNanos:    60e9,
				Generations:    4,
			}},
		},
		{
			"ns_create defaults",
			AppendNsCreateRequest(nil, []byte("t"), NsConfig{}),
			Request{Op: OpNsCreate, NS: []byte("t")},
		},
		{
			"traced insert",
			AppendKeyRequest(AppendTrace(nil, [TraceIDLen]byte{0xAA, 1, 2, 3}, 77), OpInsert, key),
			Request{Op: OpInsert, Key: key, TraceID: [TraceIDLen]byte{0xAA, 1, 2, 3}, ParentSpan: 77, Traced: true},
		},
		{
			"traced namespaced batch",
			AppendBatchRequest(AppendNamespaced(AppendTrace(nil, [TraceIDLen]byte{9}, 1<<40), []byte("t5")), OpContainsBatch, keys),
			Request{Op: OpContainsBatch, Keys: keys, NS: []byte("t5"), TraceID: [TraceIDLen]byte{9}, ParentSpan: 1 << 40, Traced: true},
		},
		{
			"trace zero-length form",
			AppendKeyRequest(AppendTraceUntraced(nil), OpContains, key),
			Request{Op: OpContains, Key: key},
		},
		{
			"traced ttl",
			AppendInsertTTLRequest(AppendTrace(nil, [TraceIDLen]byte{7, 7}, 3), key, 5e9),
			Request{Op: OpInsertTTL, Key: key, TTL: 5e9, TraceID: [TraceIDLen]byte{7, 7}, ParentSpan: 3, Traced: true},
		},
	}
	for _, c := range cases {
		got, err := DecodeRequest(c.payload)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Op != c.want.Op || !bytes.Equal(got.Key, c.want.Key) || got.TTL != c.want.TTL {
			t.Fatalf("%s: got %+v", c.name, got)
		}
		if !bytes.Equal(got.NS, c.want.NS) || got.NsCfg != c.want.NsCfg {
			t.Fatalf("%s: namespace %q cfg %+v, want %q %+v", c.name, got.NS, got.NsCfg, c.want.NS, c.want.NsCfg)
		}
		if got.Seq != c.want.Seq || got.Off != c.want.Off {
			t.Fatalf("%s: position (%d, %d), want (%d, %d)", c.name, got.Seq, got.Off, c.want.Seq, c.want.Off)
		}
		if got.TraceID != c.want.TraceID || got.ParentSpan != c.want.ParentSpan || got.Traced != c.want.Traced {
			t.Fatalf("%s: trace %x/%d/%v, want %x/%d/%v", c.name,
				got.TraceID, got.ParentSpan, got.Traced, c.want.TraceID, c.want.ParentSpan, c.want.Traced)
		}
		if len(got.Keys) != len(c.want.Keys) {
			t.Fatalf("%s: %d keys, want %d", c.name, len(got.Keys), len(c.want.Keys))
		}
		for i := range got.Keys {
			if !bytes.Equal(got.Keys[i], c.want.Keys[i]) {
				t.Fatalf("%s key %d: %q", c.name, i, got.Keys[i])
			}
		}
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	bad := map[string][]byte{
		"empty":                  {},
		"unknown op":             {0xEE},
		"zeroed":                 make([]byte, 16),
		"insert no key":          {OpInsert},
		"insert short len":       {OpInsert, 1, 0},
		"insert key overrun":     {OpInsert, 10, 0, 0, 0, 'x'},
		"insert trailing":        append(AppendKeyRequest(nil, OpInsert, []byte("k")), 0xFF),
		"len trailing":           {OpLen, 0},
		"batch no count":         {OpInsertBatch, 1},
		"batch absurd count":     {OpInsertBatch, 0xFF, 0xFF, 0xFF, 0x7F},
		"batch truncated keys":   {OpInsertBatch, 2, 0, 0, 0, 1, 0, 0, 0, 'a'},
		"batch trailing":         append(AppendBatchRequest(nil, OpContainsBatch, [][]byte{[]byte("k")}), 0x01),
		"dump trailing":          {OpDump, 0},
		"replicate short":        {OpReplicate, 1, 2, 3},
		"replicate long":         append(AppendReplicateRequest(nil, 1, 2), 0xFF),
		"ttl no ttl":             {OpInsertTTL, 1, 2, 3},
		"ttl no key":             append([]byte{OpInsertTTL}, make([]byte, 8)...),
		"ttl key overrun":        append(append([]byte{OpInsertTTL}, make([]byte, 8)...), 10, 0, 0, 0, 'x'),
		"ttl trailing":           append(AppendInsertTTLRequest(nil, []byte("k"), 1), 0xFF),
		"ttl batch short":        {OpInsertTTLBatch, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		"ttl batch absurd":       append(append([]byte{OpInsertTTLBatch}, make([]byte, 8)...), 0xFF, 0xFF, 0xFF, 0x7F),
		"ttl batch truncated":    append(append([]byte{OpInsertTTLBatch}, make([]byte, 8)...), 2, 0, 0, 0, 1, 0, 0, 0, 'a'),
		"ttl batch trailing":     append(AppendInsertTTLBatchRequest(nil, [][]byte{[]byte("k")}, 1), 0x01),
		"window stats body":      {OpWindowStats, 0},
		"ns create no name":      {OpNsCreate},
		"ns create name overrun": {OpNsCreate, 5, 'a', 'b'},
		"ns create short cfg":    append([]byte{OpNsCreate, 1, 'a'}, make([]byte, NsConfigSize-1)...),
		"ns create trailing":     append(AppendNsCreateRequest(nil, []byte("a"), NsConfig{}), 0xFF),
		"ns drop no name":        {OpNsDrop},
		"ns drop name overrun":   {OpNsDrop, 9, 'a'},
		"ns drop trailing":       append(AppendNsDropRequest(nil, []byte("a")), 0xFF),
		"ns stats overrun":       {OpNsStats, 2, 'a'},
		"ns list trailing":       {OpNsList, 0},
		"envelope no name":       {OpNamespaced},
		"envelope name overrun":  {OpNamespaced, 4, 'a', 'b'},
		"envelope empty inner":   {OpNamespaced, 1, 'a'},
		"envelope nested":        {OpNamespaced, 1, 'a', OpNamespaced, 0, OpLen},
		"envelope replicate":     append([]byte{OpNamespaced, 1, 'a'}, AppendReplicateRequest(nil, 1, 2)...),
		"envelope ns_create":     append([]byte{OpNamespaced, 1, 'a'}, AppendNsCreateRequest(nil, []byte("b"), NsConfig{})...),
		"envelope ns_drop":       append([]byte{OpNamespaced, 1, 'a'}, AppendNsDropRequest(nil, []byte("b"))...),
		"envelope ns_list":       {OpNamespaced, 1, 'a', OpNsList},
		"envelope ns_stats":      append([]byte{OpNamespaced, 1, 'a'}, AppendNsStatsRequest(nil, []byte("b"))...),
		"envelope bad inner":     {OpNamespaced, 1, 'a', OpInsert, 9, 0, 0, 0, 'x'},
		"envelope unknown op":    {OpNamespaced, 1, 'a', 0xEE},
		"trace no id len":        {OpTrace},
		"trace bad id len":       {OpTrace, 7, 1, 2, 3, 4, 5, 6, 7, OpLen},
		"trace short id block":   {OpTrace, 24, 1, 2, 3},
		"trace empty inner":      AppendTrace(nil, [TraceIDLen]byte{1}, 2),
		"trace nested":           append(AppendTraceUntraced(nil), AppendTraceUntraced(nil)...),
		"trace nested full":      AppendKeyRequest(AppendTrace(AppendTrace(nil, [TraceIDLen]byte{1}, 2), [TraceIDLen]byte{3}, 4), OpInsert, []byte("k")),
		"trace replicate":        append(AppendTrace(nil, [TraceIDLen]byte{1}, 2), AppendReplicateRequest(nil, 1, 2)...),
		"trace inside envelope":  append(AppendNamespaced(nil, []byte("a")), AppendKeyRequest(AppendTraceUntraced(nil), OpInsert, []byte("k"))...),
		"trace bad inner":        AppendKeyRequest(AppendTrace(nil, [TraceIDLen]byte{1}, 2), OpInsert, nil)[:28],
		"trace unknown op":       append(AppendTraceUntraced(nil), 0xEE),
	}
	for name, payload := range bad {
		if _, err := DecodeRequest(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestResponseHelpers(t *testing.T) {
	status, body, err := DecodeStatus(AppendErr(nil, "boom"))
	if err != nil || status != StatusErr || string(body) != "boom" {
		t.Fatalf("err response: %d %q %v", status, body, err)
	}
	if v, err := DecodeBool(AppendOK(nil)[1:]); err == nil {
		t.Fatalf("empty bool body accepted: %v", v)
	}
	if v, err := DecodeBool(AppendBool(nil, true)); err != nil || !v {
		t.Fatalf("bool: %v %v", v, err)
	}
	if v, err := DecodeU64(AppendU64(nil, 1<<40)); err != nil || v != 1<<40 {
		t.Fatalf("u64: %d %v", v, err)
	}
	in := []bool{true, false, true, true}
	out, err := DecodeBools(AppendBools(nil, in))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("bools: %v %v", out, err)
	}
	if _, err := DecodeBools([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Fatal("bools count mismatch accepted")
	}
	status, body, err = DecodeStatus(AppendReadOnly(nil, "10.0.0.1:7070"))
	if err != nil || status != StatusReadOnly || string(body) != "10.0.0.1:7070" {
		t.Fatalf("read-only response: %d %q %v", status, body, err)
	}
}

func TestWindowStatsRoundTrip(t *testing.T) {
	in := WindowStats{
		Generations:      4,
		Head:             2,
		Rotations:        99,
		SpanNanos:        60e9,
		RotateEveryNanos: 15e9,
		PendingExpiries:  3,
		GenItems:         []uint64{10, 0, 500, 42},
	}
	out, err := DecodeWindowStats(AppendWindowStats(nil, in))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("window stats: %+v %v", out, err)
	}
	bad := map[string][]byte{
		"empty":       {},
		"short":       make([]byte, 10),
		"count short": AppendWindowStats(nil, WindowStats{Generations: 4, GenItems: []uint64{1}}),
		"trailing":    append(AppendWindowStats(nil, in), 0xFF),
	}
	for name, body := range bad {
		if _, err := DecodeWindowStats(body); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNsStatsRoundTrip(t *testing.T) {
	in := NsStats{
		Resident:   true,
		Windowed:   true,
		Items:      12345,
		MemoryBits: 1 << 23,
		Evictions:  7,
		Recoveries: 6,
	}
	out, err := DecodeNsStats(AppendNsStats(nil, in))
	if err != nil || out != in {
		t.Fatalf("ns stats: %+v %v", out, err)
	}
	bad := map[string][]byte{
		"empty":    {},
		"short":    make([]byte, 10),
		"trailing": append(AppendNsStats(nil, in), 0xFF),
	}
	for name, body := range bad {
		if _, err := DecodeNsStats(body); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNsListRoundTrip(t *testing.T) {
	for _, names := range [][]string{nil, {"a"}, {"alpha", "beta-2", "x_y.z"}} {
		out, err := DecodeNsList(AppendNsList(nil, names))
		if err != nil || len(out) != len(names) {
			t.Fatalf("ns list %v: %v %v", names, out, err)
		}
		for i := range names {
			if out[i] != names[i] {
				t.Fatalf("ns list: got %v, want %v", out, names)
			}
		}
	}
	bad := map[string][]byte{
		"empty":        {},
		"short count":  {1, 0},
		"absurd count": {0xFF, 0xFF, 0xFF, 0x7F},
		"name overrun": {1, 0, 0, 0, 5, 'a'},
		"trailing":     append(AppendNsList(nil, []string{"a"}), 0xFF),
	}
	for name, body := range bad {
		if _, err := DecodeNsList(body); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateNamespace(t *testing.T) {
	good := []string{"a", "tenant-1", "A.B_c-9", strings.Repeat("x", MaxNamespaceLen)}
	for _, name := range good {
		if err := ValidateNamespace(name); err != nil {
			t.Errorf("%q rejected: %v", name, err)
		}
	}
	bad := []string{"", strings.Repeat("x", MaxNamespaceLen+1), "has space", "sl/ash", "nul\x00", "ütf8"}
	for _, name := range bad {
		if err := ValidateNamespace(name); err == nil {
			t.Errorf("%q accepted", name)
		}
	}
}

func TestNsConfigRoundTrip(t *testing.T) {
	in := NsConfig{
		MemoryBits:     1 << 30,
		ExpectedItems:  1e6,
		HashFunctions:  5,
		MemoryAccesses: 2,
		Shards:         1024,
		Seed:           0xDEADBEEF,
		WindowNanos:    3600e9,
		Generations:    16,
		Flags:          NsFlagElastic,
	}
	enc := AppendNsConfig(nil, in)
	if len(enc) != NsConfigSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), NsConfigSize)
	}
	out, rest, err := DecodeNsConfig(append(enc, 0xAA))
	if err != nil || out != in || len(rest) != 1 || rest[0] != 0xAA {
		t.Fatalf("round trip: %+v rest=%x err=%v", out, rest, err)
	}
	if _, _, err := DecodeNsConfig(enc[:NsConfigSize-1]); err == nil {
		t.Fatal("short config accepted")
	}
}

// TestEveryOpIsNamed audits OpName/OpNames against the full opcode range:
// a future opcode added without a name (or without bumping MaxOp) fails
// here instead of shipping as "op_0x..".
func TestEveryOpIsNamed(t *testing.T) {
	names := OpNames()
	if len(names) != int(MaxOp) {
		t.Fatalf("OpNames has %d entries, want %d (MaxOp): opcode added without a name, or MaxOp not bumped", len(names), MaxOp)
	}
	seen := map[string]byte{}
	for op := byte(1); op <= MaxOp; op++ {
		name := OpName(op)
		if strings.HasPrefix(name, "op_0x") {
			t.Errorf("opcode 0x%02x has no OpName", op)
		}
		if names[op] != name {
			t.Errorf("opcode 0x%02x: OpNames %q != OpName %q", op, names[op], name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes 0x%02x and 0x%02x share the name %q", prev, op, name)
		}
		seen[name] = op
	}
	if !strings.HasPrefix(OpName(MaxOp+1), "op_0x") {
		t.Errorf("opcode past MaxOp is named %q: bump MaxOp", OpName(MaxOp+1))
	}
	for _, s := range []byte{StatusOK, StatusErr, StatusReadOnly} {
		if strings.HasPrefix(StatusName(s), "status_0x") {
			t.Errorf("status 0x%02x has no StatusName", s)
		}
	}
}

func TestRepFrameRoundTrip(t *testing.T) {
	raw := []byte("pretend-records")
	cases := []struct {
		name    string
		payload []byte
		want    RepFrame
	}{
		{
			"snapshot",
			AppendRepSnapshot(nil, 3, 100, 2000, []byte("filter-bytes")),
			RepFrame{Type: RepSnapshot, Seq: 3, CumRecords: 100, CumBytes: 2000, Data: []byte("filter-bytes")},
		},
		{
			"records",
			AppendRepRecords(nil, 4, 512, 101, 2100, 1, raw),
			RepFrame{Type: RepRecords, Seq: 4, Off: 512, CumRecords: 101, CumBytes: 2100, NumRecords: 1, Data: raw},
		},
		{
			"heartbeat",
			AppendRepHeartbeat(nil, 5, 1<<40, 7, 9, 1700000000000000042),
			RepFrame{Type: RepHeartbeat, Seq: 5, Off: 1 << 40, CumRecords: 7, CumBytes: 9, SentUnixNanos: 1700000000000000042},
		},
		{
			// Legacy 32-byte heartbeat body (no send timestamp) still decodes.
			"heartbeat legacy",
			AppendRepHeartbeat(nil, 5, 1<<40, 7, 9, 0)[:33],
			RepFrame{Type: RepHeartbeat, Seq: 5, Off: 1 << 40, CumRecords: 7, CumBytes: 9},
		},
	}
	for _, c := range cases {
		got, err := DecodeRepFrame(c.payload)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Type != c.want.Type || got.Seq != c.want.Seq || got.Off != c.want.Off ||
			got.CumRecords != c.want.CumRecords || got.CumBytes != c.want.CumBytes ||
			got.NumRecords != c.want.NumRecords || got.SentUnixNanos != c.want.SentUnixNanos ||
			!bytes.Equal(got.Data, c.want.Data) {
			t.Fatalf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestDecodeRepFrameRejectsMalformed(t *testing.T) {
	bad := map[string][]byte{
		"empty":              {},
		"unknown type":       {0x7F},
		"status byte":        {StatusOK},
		"snapshot short":     {RepSnapshot, 1, 2, 3},
		"records short":      append([]byte{RepRecords}, make([]byte, 35)...),
		"records bad count":  AppendRepRecords(nil, 1, 0, 0, 0, 1<<30, []byte("tiny")),
		"heartbeat short":    {RepHeartbeat, 1},
		"heartbeat odd size": AppendRepHeartbeat(nil, 1, 2, 3, 4, 5)[:37],
		"heartbeat trailing": append(AppendRepHeartbeat(nil, 1, 2, 3, 4, 5), 0xFF),
	}
	for name, payload := range bad {
		if _, err := DecodeRepFrame(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
