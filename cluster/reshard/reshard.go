// Package reshard coordinates zero-downtime membership changes for a
// cluster of elastic mpcbfd primaries: adding a primary to (or removing
// one from) a live rendezvous ring while concurrent writers keep every
// acked insert and readers stay correct throughout.
//
// The protocol is a two-epoch switch driven entirely through the wire
// protocol — the daemons hold no membership logic beyond storing and
// republishing ring descriptors (RING_SET/RING_GET):
//
//  1. Joint epoch (dual-write window). The coordinator pushes
//     Ring{Epoch: E+1, Joint: true, Old: current, New: target} to every
//     node of both memberships. Clients polling the ring adopt it and
//     start writing moving keys under BOTH memberships (ack-both),
//     reading both and ORing, while deletes stay on the Old side.
//  2. Snapshot transfer. After PropagationDelay — which must exceed
//     every client's ring-poll interval, or a straggler could write a
//     moving key single-homed after the dump below — the coordinator
//     DUMPs each donor primary and IMPORTs the blob into the receiving
//     node. The daemon absorbs each import as frozen generations of its
//     elastic chain, and the IMPORT ack is the durable watermark: the
//     records are fsync'd under the node's WAL policy before the OK.
//  3. Cutover. Once every import is acked, the coordinator pushes the
//     stable Ring{Epoch: E+2, Joint: false, Old: target, New: target}.
//     Clients converge on single-homed routing over the new membership.
//
// A dump deliberately over-transfers: the receiving node absorbs the
// donor's whole filter, not just the keys remapping to it. Keys that
// stay put leave benign counting-filter residue on the receiver —
// possible extra false positives, never a false negative — which is
// the price of moving state as O(memory) frozen generations instead of
// enumerating keys (a Bloom filter cannot enumerate its keys at all).
//
// Every step is idempotent or monotonic: pushing a ring twice is a
// no-op (nodes adopt only newer epochs), and a failed run can be
// retried — the worst a crashed coordinator leaves behind is a cluster
// in a joint epoch, which is safe (dual-write costs latency, not
// correctness) until a retry completes the cutover.
package reshard

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/client"
	"repro/server/wire"
)

// Config tunes a Coordinator.
type Config struct {
	// Timeout bounds each wire round trip (default 30s — an IMPORT
	// ships a whole marshaled filter and fsyncs it before answering).
	Timeout time.Duration
	// PropagationDelay is how long the coordinator waits after pushing
	// the joint ring before taking dumps. It must exceed every client's
	// ring-poll interval (default 2s).
	PropagationDelay time.Duration
	// Log receives progress events; nil discards them.
	Log *slog.Logger
}

// Transfer records one donor-to-receiver snapshot movement.
type Transfer struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Bytes int    `json:"bytes"`
}

// Report describes a completed membership change.
type Report struct {
	JointEpoch  uint64        `json:"joint_epoch"`
	StableEpoch uint64        `json:"stable_epoch"`
	Old         []string      `json:"old"`
	New         []string      `json:"new"`
	Transfers   []Transfer    `json:"transfers"`
	Duration    time.Duration `json:"duration"`
}

// Coordinator drives membership changes. It is not safe for concurrent
// use — one resharding operation at a time is the point.
type Coordinator struct {
	cfg   Config
	conns map[string]*client.Client
}

// New returns a Coordinator; connections are dialed lazily.
func New(cfg Config) *Coordinator {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.PropagationDelay <= 0 {
		cfg.PropagationDelay = 2 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.DiscardHandler)
	}
	return &Coordinator{cfg: cfg, conns: map[string]*client.Client{}}
}

// Close closes every connection the coordinator dialed.
func (co *Coordinator) Close() error {
	var first error
	for _, cl := range co.conns {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	co.conns = map[string]*client.Client{}
	return first
}

func (co *Coordinator) conn(addr string) (*client.Client, error) {
	if cl, ok := co.conns[addr]; ok {
		return cl, nil
	}
	cl, err := client.Dial(addr,
		client.WithTimeout(co.cfg.Timeout),
		client.WithReconnect(0, 0, 0),
		// An elastic chain can exceed the default response frame.
		client.WithMaxFrame(1<<30))
	if err != nil {
		return nil, fmt.Errorf("reshard: dial %s: %w", addr, err)
	}
	co.conns[addr] = cl
	return cl, nil
}

// baseEpoch returns the highest ring epoch any of the nodes holds, so
// a repeated or resumed reshard always moves forward.
func (co *Coordinator) baseEpoch(nodes []string) (uint64, error) {
	var base uint64
	for _, addr := range nodes {
		cl, err := co.conn(addr)
		if err != nil {
			return 0, err
		}
		r, err := cl.RingGet()
		if err != nil {
			return 0, fmt.Errorf("reshard: ring_get %s: %w", addr, err)
		}
		if r.Epoch > base {
			base = r.Epoch
		}
	}
	return base, nil
}

// push installs the ring descriptor on every node; all must ack.
func (co *Coordinator) push(nodes []string, r wire.Ring) error {
	for _, addr := range nodes {
		cl, err := co.conn(addr)
		if err != nil {
			return err
		}
		if err := cl.RingSet(r); err != nil {
			return fmt.Errorf("reshard: ring_set %s: %w", addr, err)
		}
	}
	co.cfg.Log.Info("ring pushed", "epoch", r.Epoch, "joint", r.Joint, "nodes", len(nodes))
	return nil
}

// transfer dumps the donor and imports the blob into the receiver,
// returning the transfer record once the receiver's durable ack lands.
func (co *Coordinator) transfer(from, to string) (Transfer, error) {
	fc, err := co.conn(from)
	if err != nil {
		return Transfer{}, err
	}
	blob, err := fc.Dump()
	if err != nil {
		return Transfer{}, fmt.Errorf("reshard: dump %s: %w", from, err)
	}
	tc, err := co.conn(to)
	if err != nil {
		return Transfer{}, err
	}
	if err := tc.Import(blob); err != nil {
		return Transfer{}, fmt.Errorf("reshard: import %s -> %s: %w", from, to, err)
	}
	co.cfg.Log.Info("snapshot transferred", "from", from, "to", to, "bytes", len(blob))
	return Transfer{From: from, To: to, Bytes: len(blob)}, nil
}

// run executes the joint-push / transfer / stable-push sequence shared
// by Add and Remove. union is old ∪ new (the push audience), transfers
// the donor→receiver pairs.
func (co *Coordinator) run(union, old, new []string, pairs [][2]string) (*Report, error) {
	start := time.Now()
	base, err := co.baseEpoch(union)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		JointEpoch:  base + 1,
		StableEpoch: base + 2,
		Old:         append([]string(nil), old...),
		New:         append([]string(nil), new...),
	}
	joint := wire.Ring{Epoch: rep.JointEpoch, Joint: true, Old: old, New: new}
	if err := co.push(union, joint); err != nil {
		return nil, err
	}
	time.Sleep(co.cfg.PropagationDelay)
	for _, p := range pairs {
		tr, err := co.transfer(p[0], p[1])
		if err != nil {
			return nil, err
		}
		rep.Transfers = append(rep.Transfers, tr)
	}
	stable := wire.Ring{Epoch: rep.StableEpoch, Joint: false, Old: new, New: new}
	if err := co.push(union, stable); err != nil {
		return nil, err
	}
	rep.Duration = time.Since(start)
	co.cfg.Log.Info("reshard complete",
		"joint_epoch", rep.JointEpoch, "stable_epoch", rep.StableEpoch,
		"transfers", len(rep.Transfers), "duration", rep.Duration)
	return rep, nil
}

// Add grows the ring: newNode joins the membership formed by current.
// Every current primary's filter is dumped and imported into newNode —
// whichever keys remap to it are covered, and clients route to it only
// after its last import is durably acked.
func (co *Coordinator) Add(current []string, newNode string) (*Report, error) {
	if len(current) == 0 {
		return nil, errors.New("reshard: no current membership")
	}
	for _, addr := range current {
		if addr == newNode {
			return nil, fmt.Errorf("reshard: %s is already a member", newNode)
		}
	}
	target := append(append([]string(nil), current...), newNode)
	pairs := make([][2]string, 0, len(current))
	for _, donor := range current {
		pairs = append(pairs, [2]string{donor, newNode})
	}
	return co.run(target, current, target, pairs)
}

// Remove shrinks the ring: departing leaves the membership formed by
// current. Its keys remap across every remaining primary, so its dump
// is imported into each of them before cutover; the departing node can
// be decommissioned once Remove returns.
func (co *Coordinator) Remove(current []string, departing string) (*Report, error) {
	if len(current) < 2 {
		return nil, errors.New("reshard: cannot remove the last member")
	}
	remaining := make([]string, 0, len(current)-1)
	found := false
	for _, addr := range current {
		if addr == departing {
			found = true
			continue
		}
		remaining = append(remaining, addr)
	}
	if !found {
		return nil, fmt.Errorf("reshard: %s is not a member", departing)
	}
	pairs := make([][2]string, 0, len(remaining))
	for _, receiver := range remaining {
		pairs = append(pairs, [2]string{departing, receiver})
	}
	return co.run(current, current, remaining, pairs)
}
