package core

import (
	"fmt"
	"testing"
)

// TestLongChurn simulates the paper's flow-measurement deployment over
// many update periods: a constant-size population with 20% churn per
// period. The filter must stay exact on membership of current members,
// keep its occupancy in steady state (no drift from incomplete unwinding),
// and never overflow under heuristic sizing.
func TestLongChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn test")
	}
	const n = 10000
	const periods = 25
	const churn = n / 5

	// Explicit roomy geometry (B1=40 leaves 24 increment slots per word):
	// every churn period re-rolls the per-word load, so across many
	// periods even the Eq. 11 heuristic's small per-trial overflow tail
	// compounds; exact steady-state assertions need headroom instead.
	f := mustNew(t, Config{MemoryBits: 1 << 21, K: 3, B1: 40, Seed: 42})

	gen := 0
	newKey := func() []byte {
		gen++
		return []byte(fmt.Sprintf("flow-%d", gen))
	}
	var members [][]byte
	for i := 0; i < n; i++ {
		k := newKey()
		members = append(members, k)
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}

	baseMean, _ := f.FillStats()
	for p := 0; p < periods; p++ {
		// Withdraw the oldest churn members, admit fresh ones.
		for _, k := range members[:churn] {
			if err := f.Delete(k); err != nil {
				t.Fatalf("period %d delete: %v", p, err)
			}
		}
		members = members[churn:]
		for i := 0; i < churn; i++ {
			k := newKey()
			members = append(members, k)
			if err := f.Insert(k); err != nil {
				t.Fatalf("period %d insert: %v", p, err)
			}
		}
		if f.Count() != n {
			t.Fatalf("period %d: Count = %d", p, f.Count())
		}
		// Spot-check membership of a stride of current members.
		for i := 0; i < len(members); i += 97 {
			if !f.Contains(members[i]) {
				t.Fatalf("period %d: false negative for %q", p, members[i])
			}
		}
	}

	// Steady state: mean occupancy equals the initial loaded occupancy
	// (b1 + k*n/l), demonstrating that churn fully recycles hierarchy bits.
	endMean, _ := f.FillStats()
	if endMean != baseMean {
		t.Fatalf("occupancy drifted across churn: %.3f -> %.3f", baseMean, endMean)
	}
	if f.SaturatedWords() != 0 {
		t.Fatalf("words saturated during churn: %d", f.SaturatedWords())
	}

	// Unwind everything: the filter must return to pristine emptiness.
	for _, k := range members {
		if err := f.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	finalMean, depth := f.FillStats()
	if finalMean != float64(f.B1()) || depth != 1 {
		t.Fatalf("not pristine after full unwind: mean %.3f depth %d", finalMean, depth)
	}
}
