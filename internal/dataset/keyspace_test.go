package dataset

import (
	"testing"

	"repro/internal/hashing"
)

// TestKeyspacePinnedKeys pins the first keys of two seeds: the Keyspace
// is the reproducibility anchor of the load generator and the cluster
// simulation, so its byte output is part of the determinism contract —
// any change here invalidates recorded run manifests and must be
// deliberate.
func TestKeyspacePinnedKeys(t *testing.T) {
	ks1, err := NewKeyspace(KeyspaceConfig{N: 1000, ZipfS: 1.0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ks2, err := NewKeyspace(KeyspaceConfig{N: 1000, ZipfS: 1.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Key bytes are deterministic and seed-dependent.
	for rank := 0; rank < 16; rank++ {
		k1a, k1b := ks1.Key(rank), ks1.Key(rank)
		if string(k1a) != string(k1b) {
			t.Fatalf("rank %d: non-deterministic key %q vs %q", rank, k1a, k1b)
		}
		if string(ks1.Key(rank)) == string(ks2.Key(rank)) {
			t.Fatalf("rank %d: seeds 1 and 2 share key %q", rank, ks1.Key(rank))
		}
	}

	// The first draws per seed are pinned to golden strings: they guard
	// against any silent change to the RNG derivation, the Zipf table, or
	// the key byte layout — each of which would invalidate every recorded
	// run manifest.
	golden := map[uint64][]string{
		1: {
			"k62-b44a60a237c0f827",
			"k0-a784c31d524d0df7",
			"k189-fca9910e202375ea",
			"k650-cb9f0cf8df3081ec",
			"k12-aa40333104ec7871",
			"k318-59cf8ca66118e0ed",
			"k488-6f5dd3c4da7d0b38",
			"k0-a784c31d524d0df7",
		},
		2: {
			"k1-2500c17971db36fe",
			"k1-2500c17971db36fe",
			"k99-eec034db37382a30",
			"k0-5512854dcc2ed729",
			"k63-f0a8d985862b7765",
			"k0-5512854dcc2ed729",
			"k15-491c8a61961fd633",
			"k3-e3822ac2cded540e",
		},
	}
	buf := make([]byte, 0, 64)
	for seed, want := range golden {
		ks := map[uint64]*Keyspace{1: ks1, 2: ks2}[seed]
		rng := ks.WorkerRNG(0)
		for i, w := range want {
			buf = ks.Draw(buf[:0], rng)
			if string(buf) != w {
				t.Fatalf("seed %d draw %d = %q, want golden %q", seed, i, buf, w)
			}
		}
	}
}

// TestKeyspaceGolden pins exact rank->key bytes so a future refactor
// cannot silently re-map every recorded manifest.
func TestKeyspaceGolden(t *testing.T) {
	ks, err := NewKeyspace(KeyspaceConfig{N: 100, ZipfS: 1.0, Seed: 42, Prefix: "lg"})
	if err != nil {
		t.Fatal(err)
	}
	golden := map[int]string{
		0:  "lg0-2662e781ec8e4b66",
		1:  "lg1-dac65f5cdc40952b",
		17: "lg17-eb1905a7ca327bba",
		99: "lg99-5c4f3e78395e0ca3",
	}
	for rank, want := range golden {
		if got := string(ks.Key(rank)); got != want {
			t.Fatalf("rank %d = %q, want golden %q", rank, got, want)
		}
	}
}

func TestKeyspaceSkew(t *testing.T) {
	ks, err := NewKeyspace(KeyspaceConfig{N: 10000, ZipfS: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := ks.WorkerRNG(0)
	counts := make([]int, ks.N())
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[ks.Rank(rng)]++
	}
	// Zipf(1): rank 0 carries weight 1/H(N) ~ 10% of draws at N=10k.
	if counts[0] < draws/20 {
		t.Fatalf("rank 0 drawn %d times, want heavy head (>= %d)", counts[0], draws/20)
	}
	// Tail still covered: a uniform generator would put ~20 draws on each
	// rank; zipf puts ~0.002% on rank 9999 but the bottom half in total
	// still gets a real share.
	tail := 0
	for r := ks.N() / 2; r < ks.N(); r++ {
		tail += counts[r]
	}
	if tail == 0 {
		t.Fatal("bottom half of the keyspace never drawn")
	}
	if counts[0] <= counts[ks.N()-1] {
		t.Fatalf("no skew: head %d <= tail %d", counts[0], counts[ks.N()-1])
	}

	// Uniform mode: no rank table, roughly flat.
	uks, err := NewKeyspace(KeyspaceConfig{N: 100, ZipfS: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	urng := uks.WorkerRNG(0)
	ucounts := make([]int, uks.N())
	for i := 0; i < 100000; i++ {
		ucounts[uks.Rank(urng)]++
	}
	for r, c := range ucounts {
		if c < 500 || c > 1500 {
			t.Fatalf("uniform mode rank %d drawn %d times, want ~1000", r, c)
		}
	}
}

// TestKeyspaceWorkerStreams: distinct workers draw distinct streams but
// each worker's stream replays exactly.
func TestKeyspaceWorkerStreams(t *testing.T) {
	ks, err := NewKeyspace(KeyspaceConfig{N: 1 << 16, ZipfS: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq := func(worker, n int) []int {
		rng := ks.WorkerRNG(worker)
		out := make([]int, n)
		for i := range out {
			out[i] = ks.Rank(rng)
		}
		return out
	}
	a, b := seq(0, 64), seq(1, 64)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("workers 0 and 1 drew identical rank streams")
	}
	a2 := seq(0, 64)
	for i := range a {
		if a[i] != a2[i] {
			t.Fatalf("worker 0 replay diverged at draw %d", i)
		}
	}
}

func TestKeyspaceDrawAllocs(t *testing.T) {
	ks, err := NewKeyspace(KeyspaceConfig{N: 1 << 14, ZipfS: 1.0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := hashing.NewRNG(1)
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = ks.Draw(buf[:0], rng)
	})
	if allocs != 0 {
		t.Fatalf("Draw allocates %v per op, want 0", allocs)
	}
}

func TestKeyspaceConfigErrors(t *testing.T) {
	if _, err := NewKeyspace(KeyspaceConfig{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewKeyspace(KeyspaceConfig{N: -5}); err == nil {
		t.Fatal("negative N accepted")
	}
}
