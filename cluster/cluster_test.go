package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"testing"
	"time"

	mpcbf "repro"
	"repro/client"
	"repro/server"
	"repro/server/wire"
)

// discardLog silences node logging in tests. (slog.DiscardHandler is
// go1.24; this repo targets go1.22.)
func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testFilter is the shared geometry: replicas must be configured
// identically to the primary so that record replay (the non-bootstrap
// path) lands on an identical layout.
func testFilter() mpcbf.Options {
	return mpcbf.Options{MemoryBits: 1 << 19, ExpectedItems: 5000, Seed: 42}
}

func primaryStoreOpts(t *testing.T) server.StoreOptions {
	return server.StoreOptions{
		Dir:    t.TempDir(),
		Filter: testFilter(),
		Shards: 4,
		Sync:   server.SyncAlways,
		Log:    discardLog(),
	}
}

// startServer serves store on a loopback port and tears everything down
// with the test.
func startServer(t *testing.T, store *server.Store, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(store, cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func startPrimary(t *testing.T) (*server.Store, string) {
	t.Helper()
	store, err := server.OpenStore(primaryStoreOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	_, addr := startServer(t, store, server.Config{
		HeartbeatEvery: 50 * time.Millisecond,
		Log:            discardLog(),
	})
	return store, addr
}

// startReplica opens a replica-mode store mirroring primaryAddr, serves
// it read-only, and runs the sync loop until the test ends.
func startReplica(t *testing.T, primaryAddr string) (*server.Store, *Replica, *server.Server, string) {
	t.Helper()
	opts := primaryStoreOpts(t)
	opts.Replica = true
	store, err := server.OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })

	rep, err := NewReplica(ReplicaConfig{
		PrimaryAddr: primaryAddr,
		Store:       store,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		Log:         discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() { defer close(runDone); rep.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-runDone })

	srv, addr := startServer(t, store, server.Config{
		ReadOnly:    true,
		PrimaryAddr: primaryAddr,
		Log:         discardLog(),
	})
	return store, rep, srv, addr
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func keys(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-%04d", prefix, i))
	}
	return out
}

func TestReplicaConvergesToIdenticalFilter(t *testing.T) {
	pstore, paddr := startPrimary(t)
	r1store, _, _, _ := startReplica(t, paddr)
	r2store, _, _, _ := startReplica(t, paddr)

	c, err := client.Dial(paddr, client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ks := keys("conv", 500)
	if err := c.InsertBatch(ks[:400]); err != nil {
		t.Fatal(err)
	}
	for _, k := range ks[400:] {
		if err := c.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.DeleteBatch(ks[:100]); err != nil {
		t.Fatal(err)
	}

	want := pstore.Len()
	waitFor(t, "replicas to converge", func() bool {
		return r1store.Len() == want && r2store.Len() == want
	})

	pdump, err := pstore.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	for i, rs := range []*server.Store{r1store, r2store} {
		rdump, err := rs.MarshalFilter()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pdump, rdump) {
			t.Fatalf("replica %d filter differs from primary (%d vs %d bytes)", i+1, len(rdump), len(pdump))
		}
	}
}

func TestReplicaServesReadsAndRejectsWrites(t *testing.T) {
	pstore, paddr := startPrimary(t)
	rstore, rep, rsrv, raddr := startReplica(t, paddr)

	pc, err := client.Dial(paddr, client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if err := pc.InsertBatch(keys("ro", 100)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replica to catch up", func() bool { return rstore.Len() == pstore.Len() })

	rc, err := client.Dial(raddr, client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if ok, err := rc.Contains([]byte("ro-0007")); err != nil || !ok {
		t.Fatalf("replica Contains = %v, %v", ok, err)
	}
	if n, err := rc.Len(); err != nil || n != pstore.Len() {
		t.Fatalf("replica Len = %d, %v (want %d)", n, err, pstore.Len())
	}

	err = rc.Insert([]byte("rejected"))
	var ro *client.ReadOnlyError
	if !errors.As(err, &ro) {
		t.Fatalf("replica Insert: err = %v, want *ReadOnlyError", err)
	}
	if ro.Primary != paddr {
		t.Fatalf("redirect = %q, want %q", ro.Primary, paddr)
	}

	// Replica-side observability: the stream is live with zero lag.
	waitFor(t, "lag to drain", func() bool {
		st := rep.Stats()
		return st.Connected && st.LagBytes == 0 && st.Frames > 0
	})
	var prom strings.Builder
	rep.WriteProm(&prom)
	if !strings.Contains(prom.String(), "mpcbfd_replica_connected 1") {
		t.Fatalf("WriteProm missing live gauge:\n%s", prom.String())
	}
	_ = rsrv
}

func TestReplicaBootstrapsWhenHistoryIsPruned(t *testing.T) {
	pstore, paddr := startPrimary(t)

	pc, err := client.Dial(paddr, client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if err := pc.InsertBatch(keys("boot", 300)); err != nil {
		t.Fatal(err)
	}
	// Snapshotting rotates the WAL and prunes segment 1 — a fresh
	// replica's resume position — so the subscription must fall back to
	// a snapshot bootstrap.
	if err := pstore.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := pc.InsertBatch(keys("boot-after", 50)); err != nil {
		t.Fatal(err)
	}

	rstore, rep, _, _ := startReplica(t, paddr)
	waitFor(t, "bootstrap and catch-up", func() bool {
		return rep.Stats().Bootstraps >= 1 && rstore.Len() == pstore.Len()
	})

	pdump, err := pstore.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	rdump, err := rstore.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pdump, rdump) {
		t.Fatal("bootstrapped replica filter differs from primary")
	}

	// And the mirror keeps following after the bootstrap.
	if err := pc.Insert([]byte("post-bootstrap")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-bootstrap record", func() bool { return rstore.Len() == pstore.Len() })
}

func TestClusterClientRoutingAndBatches(t *testing.T) {
	stores := make([]*server.Store, 3)
	nodes := make([]Node, 3)
	for i := range nodes {
		st, addr := startPrimary(t)
		stores[i] = st
		nodes[i] = Node{Primary: addr}
	}
	cc, err := NewClient(ClientConfig{Nodes: nodes, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	ks := keys("route", 300)
	if err := cc.InsertBatch(ks); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, st := range stores {
		n := st.Len()
		if n == 0 {
			t.Fatalf("node %d received no keys: routing is degenerate", i)
		}
		total += n
	}
	if total != len(ks) {
		t.Fatalf("cluster holds %d keys, want %d", total, len(ks))
	}
	if n, err := cc.Len(); err != nil || n != len(ks) {
		t.Fatalf("Len = %d, %v", n, err)
	}

	flags, err := cc.ContainsBatch(ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range flags {
		if !ok {
			t.Fatalf("key %d missing after InsertBatch", i)
		}
	}
	if ok, err := cc.Contains(ks[42]); err != nil || !ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	if v, err := cc.EstimateCount(ks[42]); err != nil || v < 1 {
		t.Fatalf("EstimateCount = %d, %v", v, err)
	}

	// Routing is a pure function of (key, primary set): a client built
	// from the same nodes listed in reverse routes every key to the same
	// primary.
	rev := []Node{nodes[2], nodes[1], nodes[0]}
	cc2, err := NewClient(ClientConfig{Nodes: rev, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cc2.Close()
	for _, k := range ks[:50] {
		a := nodes[cc.route(k)].Primary
		b := rev[cc2.route(k)].Primary
		if a != b {
			t.Fatalf("key %q routed to %s and %s under reordered topology", k, a, b)
		}
	}

	removed, err := cc.DeleteBatch(ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range removed {
		if !ok {
			t.Fatalf("key %d not removed", i)
		}
	}
	if n, err := cc.Len(); err != nil || n != 0 {
		t.Fatalf("Len after delete = %d, %v", n, err)
	}
}

func TestClusterReadsFromReplicaAndFailsOver(t *testing.T) {
	pstore, paddr := startPrimary(t)
	rstore, _, rsrv, raddr := startReplica(t, paddr)

	// A second "replica" address that refuses connections: reads must
	// skip it.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	cc, err := NewClient(ClientConfig{
		Nodes:   []Node{{Primary: paddr, Replicas: []string{deadAddr, raddr}}},
		Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	ks := keys("fo", 50)
	if err := cc.InsertBatch(ks); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replica to catch up", func() bool { return rstore.Len() == pstore.Len() })

	for i := 0; i < 10; i++ {
		if ok, err := cc.Contains(ks[i]); err != nil || !ok {
			t.Fatalf("Contains(%d) = %v, %v", i, ok, err)
		}
	}
	flags, err := cc.ContainsBatch(ks)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range flags {
		if !ok {
			t.Fatalf("ContainsBatch missing key %d", i)
		}
	}
	// The live replica actually served reads (round-robin lands on it
	// after skipping the dead address).
	if rsrv.Metrics().Ops(wire.OpContains)+rsrv.Metrics().Ops(wire.OpContainsBatch) == 0 {
		t.Fatal("no reads reached the replica")
	}

	// With the replica gone too, reads fail over to the primary.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rsrv.Shutdown(ctx)
	waitFor(t, "failover to primary", func() bool {
		ok, err := cc.Contains(ks[0])
		return err == nil && ok
	})
}
