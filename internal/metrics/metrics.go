// Package metrics defines the performance-accounting model the paper uses
// to compare filter variants: per-operation memory accesses and access
// bandwidth in hash bits, plus aggregation helpers for the experiment
// harness. Filters report OpStats from their instrumented entry points;
// the harness averages them into the numbers shown in Tables I-III.
package metrics

import (
	"fmt"
	"math"
)

// OpStats records the cost of one filter operation under the paper's
// memory model.
type OpStats struct {
	// MemAccesses is the number of distinct memory words (or, for the
	// unpartitioned CBF, distinct counters) fetched by the operation.
	MemAccesses int
	// HashBits is the access bandwidth: how many hash bits were consumed
	// to address the touched locations (log2 of each addressed range,
	// summed), the quantity the paper reports as "access bandwidth".
	HashBits int
}

// Add accumulates o into s.
func (s *OpStats) Add(o OpStats) {
	s.MemAccesses += o.MemAccesses
	s.HashBits += o.HashBits
}

// Log2Ceil returns ceil(log2(n)) for n >= 1; addressing a range of n
// locations consumes this many hash bits.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// Aggregate averages a stream of OpStats.
type Aggregate struct {
	Ops         int
	MemAccesses int64
	HashBits    int64
}

// Observe folds one operation's stats into the aggregate.
func (a *Aggregate) Observe(s OpStats) {
	a.Ops++
	a.MemAccesses += int64(s.MemAccesses)
	a.HashBits += int64(s.HashBits)
}

// MeanAccesses returns the average memory accesses per operation.
func (a *Aggregate) MeanAccesses() float64 {
	if a.Ops == 0 {
		return 0
	}
	return float64(a.MemAccesses) / float64(a.Ops)
}

// MeanHashBits returns the average access bandwidth per operation.
func (a *Aggregate) MeanHashBits() float64 {
	if a.Ops == 0 {
		return 0
	}
	return float64(a.HashBits) / float64(a.Ops)
}

func (a *Aggregate) String() string {
	return fmt.Sprintf("%.1f accesses, %.0f bits over %d ops",
		a.MeanAccesses(), a.MeanHashBits(), a.Ops)
}

// FPRResult is the outcome of a false-positive-rate measurement.
type FPRResult struct {
	Queries        int // negative queries issued
	FalsePositives int
}

// Rate returns the measured false positive rate.
func (r FPRResult) Rate() float64 {
	if r.Queries == 0 {
		return math.NaN()
	}
	return float64(r.FalsePositives) / float64(r.Queries)
}
