package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refVector is a trivially correct []bool model used to cross-check the
// packed implementation.
type refVector []bool

func (r refVector) ones(start, end int) int {
	n := 0
	for i := start; i < end; i++ {
		if r[i] {
			n++
		}
	}
	return n
}

func (r refVector) shiftRightOne(start, end int) {
	if end-start <= 1 {
		if end > start {
			r[start] = false
		}
		return
	}
	for i := end - 1; i > start; i-- {
		r[i] = r[i-1]
	}
	r[start] = false
}

func (r refVector) shiftLeftOne(start, end int) {
	if end-start <= 1 {
		if end > start {
			r[start] = false
		}
		return
	}
	for i := start; i < end-1; i++ {
		r[i] = r[i+1]
	}
	r[end-1] = false
}

func (r refVector) equal(v *Vector) bool {
	if len(r) != v.Len() {
		return false
	}
	for i, b := range r {
		if v.Get(i) != b {
			return false
		}
	}
	return true
}

func randomPair(rng *rand.Rand, n int) (*Vector, refVector) {
	v := New(n)
	r := make(refVector, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
			r[i] = true
		}
	}
	return v, r
}

func TestGetSet(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Fatalf("bit %d set after clear", i)
		}
	}
}

func TestSetDoesNotDisturbNeighbors(t *testing.T) {
	v := New(192)
	for i := 0; i < 192; i += 2 {
		v.Set(i, true)
	}
	for i := 0; i < 192; i++ {
		want := i%2 == 0
		if v.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, v.Get(i), want)
		}
	}
}

func TestOnesSmall(t *testing.T) {
	v := New(16)
	for _, i := range []int{1, 3, 5, 10, 15} {
		v.Set(i, true)
	}
	cases := []struct{ start, end, want int }{
		{0, 16, 5}, {0, 0, 0}, {1, 2, 1}, {0, 1, 0},
		{2, 6, 2}, {11, 15, 0}, {15, 16, 1}, {5, 5, 0},
	}
	for _, c := range cases {
		if got := v.Ones(c.start, c.end); got != c.want {
			t.Errorf("Ones(%d,%d) = %d, want %d", c.start, c.end, got, c.want)
		}
	}
}

func TestOnesCrossWord(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v, r := randomPair(rng, 300)
	for trial := 0; trial < 2000; trial++ {
		a := rng.Intn(301)
		b := a + rng.Intn(301-a)
		if got, want := v.Ones(a, b), r.ones(a, b); got != want {
			t.Fatalf("Ones(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestShiftRightOneBasic(t *testing.T) {
	v := New(8)
	v.Set(0, true)
	v.Set(2, true)
	v.ShiftRightOne(0, 8)
	if got, want := v.String(), "01010000"; got != want {
		t.Fatalf("after shift right: %s, want %s", got, want)
	}
}

func TestShiftLeftOneBasic(t *testing.T) {
	v := New(8)
	v.Set(1, true)
	v.Set(3, true)
	v.ShiftLeftOne(0, 8)
	if got, want := v.String(), "10100000"; got != want {
		t.Fatalf("after shift left: %s, want %s", got, want)
	}
}

func TestShiftPreservesOutsideRange(t *testing.T) {
	v := New(64)
	for i := 0; i < 64; i++ {
		v.Set(i, true)
	}
	v.ShiftRightOne(10, 20)
	for i := 0; i < 64; i++ {
		want := i != 10
		if v.Get(i) != want {
			t.Fatalf("bit %d = %v after ShiftRightOne(10,20)", i, v.Get(i))
		}
	}
	v2 := New(64)
	for i := 0; i < 64; i++ {
		v2.Set(i, true)
	}
	v2.ShiftLeftOne(10, 20)
	for i := 0; i < 64; i++ {
		want := i != 19
		if v2.Get(i) != want {
			t.Fatalf("bit %d = %v after ShiftLeftOne(10,20)", i, v2.Get(i))
		}
	}
}

func TestShiftAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 4000; trial++ {
		n := 1 + rng.Intn(260)
		v, r := randomPair(rng, n)
		a := rng.Intn(n)
		b := a + rng.Intn(n-a+1)
		if rng.Intn(2) == 0 {
			v.ShiftRightOne(a, b)
			r.shiftRightOne(a, b)
		} else {
			v.ShiftLeftOne(a, b)
			r.shiftLeftOne(a, b)
		}
		if !r.equal(v) {
			t.Fatalf("trial %d: mismatch after shift [%d,%d) n=%d\n got  %s", trial, a, b, n, v.String())
		}
	}
}

func TestInsertRemoveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		n := 8 + rng.Intn(200)
		v, _ := randomPair(rng, n)
		// Guarantee the last bit is zero so InsertZero loses nothing.
		v.Set(n-1, false)
		before := v.Clone()
		pos := rng.Intn(n)
		v.InsertZero(pos, n)
		if v.Get(pos) {
			t.Fatalf("InsertZero left a set bit at %d", pos)
		}
		v.RemoveBit(pos, n)
		if !v.Equal(before) {
			t.Fatalf("trial %d: insert+remove at %d not identity\nwant %s\n got %s",
				trial, pos, before.String(), v.String())
		}
	}
}

func TestInsertOne(t *testing.T) {
	v := New(8)
	v.Set(0, true)
	v.Set(1, true)
	v.InsertOne(1, 8)
	if got, want := v.String(), "11100000"; got != want {
		t.Fatalf("InsertOne: %s, want %s", got, want)
	}
}

func TestShiftIsLocalInsertion(t *testing.T) {
	// Property: ShiftRightOne(p, end) followed by reading bits equals the
	// reference "insert a zero" semantics.
	f := func(seed int64, posRaw, nRaw uint8) bool {
		n := 2 + int(nRaw)%150
		pos := int(posRaw) % n
		rng := rand.New(rand.NewSource(seed))
		v, r := randomPair(rng, n)
		v.ShiftRightOne(pos, n)
		r.shiftRightOne(pos, n)
		return r.equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOnesAfterShiftInvariant(t *testing.T) {
	// Shifting right within a window whose last bit is clear preserves the
	// total popcount of the window.
	f := func(seed int64, posRaw, nRaw uint8) bool {
		n := 2 + int(nRaw)%150
		pos := int(posRaw) % n
		rng := rand.New(rand.NewSource(seed))
		v, _ := randomPair(rng, n)
		v.Set(n-1, false)
		before := v.Ones(0, n)
		v.ShiftRightOne(pos, n)
		return v.Ones(0, n) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneEqualIndependent(t *testing.T) {
	v := New(100)
	v.Set(42, true)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(7, true)
	if v.Get(7) {
		t.Fatal("clone shares storage with original")
	}
	if v.Equal(c) {
		t.Fatal("Equal failed to detect difference")
	}
}

func TestResetClearsAll(t *testing.T) {
	v := New(129)
	for i := 0; i < 129; i += 3 {
		v.Set(i, true)
	}
	v.Reset()
	if v.Ones(0, 129) != 0 {
		t.Fatal("Reset left set bits")
	}
}

func TestEdgeRanges(t *testing.T) {
	v := New(64)
	v.Set(63, true)
	if v.Ones(63, 64) != 1 {
		t.Fatal("Ones on final bit")
	}
	v.ShiftRightOne(63, 64) // single-bit range clears
	if v.Get(63) {
		t.Fatal("single-bit shift right should clear")
	}
	v.Set(63, true)
	v.ShiftLeftOne(63, 64)
	if v.Get(63) {
		t.Fatal("single-bit shift left should clear")
	}
	v.ShiftRightOne(5, 5) // empty range is a no-op
}

func TestPanicsOnBadIndex(t *testing.T) {
	v := New(10)
	for _, f := range []func(){
		func() { v.Get(-1) },
		func() { v.Get(10) },
		func() { v.Set(10, true) },
		func() { v.Ones(-1, 5) },
		func() { v.Ones(3, 11) },
		func() { v.Ones(5, 4) },
		func() { v.ShiftRightOne(0, 11) },
		func() { v.ShiftLeftOne(-1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStringRendering(t *testing.T) {
	v := New(4)
	v.Set(1, true)
	v.Set(3, true)
	if got := v.String(); got != "0101" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSizeBits(t *testing.T) {
	if got := New(1).SizeBits(); got != 64 {
		t.Fatalf("SizeBits(1) = %d", got)
	}
	if got := New(65).SizeBits(); got != 128 {
		t.Fatalf("SizeBits(65) = %d", got)
	}
}
