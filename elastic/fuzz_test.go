package elastic

import (
	"bytes"
	"encoding/binary"
	"testing"

	mpcbf "repro"
)

// FuzzUnmarshalFilter hammers the chain decoder with mutated
// snapshots: it must never panic, and anything it accepts must
// re-marshal byte-identically (the property recovery and byte-mirror
// replication lean on).
func FuzzUnmarshalFilter(f *testing.F) {
	mk := func(seed func(*Filter)) []byte {
		fl, err := New(Options{
			Filter: mpcbf.Options{MemoryBits: 1 << 12, ExpectedItems: 64, Seed: 3},
			Shards: 2,
		})
		if err != nil {
			f.Fatal(err)
		}
		if seed != nil {
			seed(fl)
		}
		b, err := fl.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	fresh := mk(nil)
	grown := mk(func(fl *Filter) {
		for i := 0; i < 200; i++ {
			_ = fl.Insert([]byte{byte(i), byte(i >> 8), 0xAA})
			if fl.NeedsGrow() {
				_ = fl.Grow()
			}
		}
	})
	f.Add(fresh)
	f.Add(grown)
	f.Add([]byte{})
	f.Add(fresh[:8])
	f.Add(grown[:len(grown)-3])
	// Oversized declared generation count.
	huge := append([]byte{}, fresh...)
	binary.LittleEndian.PutUint32(huge[len(huge)-4:], 0xFFFFFFFF)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := UnmarshalFilter(data)
		if err != nil {
			return
		}
		out, err := fl.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted snapshot fails to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("accepted snapshot not byte-stable across re-marshal")
		}
		// Accepted chains must be operable.
		_ = fl.Contains([]byte("probe"))
		_ = fl.Stats()
	})
}
