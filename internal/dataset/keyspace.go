package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/hashing"
)

// Keyspace is the seeded key generator behind the load generator and the
// cluster simulation: a fixed population of N distinct keys with a
// Zipf(s) popularity distribution over ranks, the same skew shape the
// trace synthesizer uses for flow sizes. Two properties matter to its
// callers:
//
//   - Deterministic: the key bytes for a rank, and the sequence of ranks
//     drawn from a given RNG, depend only on (Seed, N, ZipfS). Replaying
//     a run from its manifest seed reproduces the exact byte stream.
//   - Allocation-light: AppendKey writes into a caller buffer and rank
//     sampling is a binary search over a table built once, so the
//     per-operation path allocates nothing.
//
// A Keyspace is immutable after construction and safe for concurrent
// use; per-worker draw state lives in the *hashing.RNG each worker owns
// (derive them with WorkerRNG so distinct workers get disjoint streams).
type Keyspace struct {
	n      int
	seed   uint64
	zipfS  float64
	prefix string
	cum    []float64 // cumulative rank weights, normalized to [0, 1]
}

// KeyspaceConfig sizes a Keyspace. ZipfS <= 0 selects a uniform
// popularity distribution; ZipfS around 1 matches heavy-tailed Internet
// workloads (and the trace synthesizer's default).
type KeyspaceConfig struct {
	N      int
	ZipfS  float64
	Seed   uint64
	Prefix string // prepended to every key; defaults to "k"
}

// NewKeyspace builds the rank-weight table (the only allocation the
// generator ever performs).
func NewKeyspace(cfg KeyspaceConfig) (*Keyspace, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dataset: keyspace needs N > 0, got %d", cfg.N)
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "k"
	}
	ks := &Keyspace{n: cfg.N, seed: cfg.Seed, zipfS: cfg.ZipfS, prefix: cfg.Prefix}
	if cfg.ZipfS > 0 {
		cum := make([]float64, cfg.N)
		sum := 0.0
		for r := 0; r < cfg.N; r++ {
			sum += math.Pow(float64(r+1), -cfg.ZipfS)
			cum[r] = sum
		}
		for r := range cum {
			cum[r] /= sum
		}
		ks.cum = cum
	}
	return ks, nil
}

// N returns the population size.
func (ks *Keyspace) N() int { return ks.n }

// Seed returns the seed the keyspace was built from.
func (ks *Keyspace) Seed() uint64 { return ks.seed }

// WorkerRNG derives the draw stream for one worker: disjoint across
// workers, reproducible across runs for a given (seed, worker).
func (ks *Keyspace) WorkerRNG(worker int) *hashing.RNG {
	return hashing.NewRNG(hashing.SplitMix64(ks.seed ^ uint64(worker)*0x9E3779B97F4A7C15))
}

// Rank draws a popularity-distributed rank in [0, N) from rng.
func (ks *Keyspace) Rank(rng *hashing.RNG) int {
	if ks.cum == nil {
		return rng.Intn(ks.n)
	}
	u := rng.Float64()
	return sort.SearchFloat64s(ks.cum, u)
}

// AppendKey appends rank's key bytes to dst and returns the extended
// slice. Keys are distinct per rank and seed-dependent: the layout is
// <prefix><rank>-<mix16> where mix16 is 16 hex digits of
// SplitMix64(seed, rank), so two seeds share no keys and key bytes do
// not correlate with filter hash inputs trivially.
func (ks *Keyspace) AppendKey(dst []byte, rank int) []byte {
	dst = append(dst, ks.prefix...)
	dst = strconv.AppendUint(dst, uint64(rank), 10)
	dst = append(dst, '-')
	m := hashing.SplitMix64(ks.seed ^ (uint64(rank)+1)*0xBF58476D1CE4E5B9)
	const hex = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hex[(m>>uint(shift))&0xF])
	}
	return dst
}

// Key returns rank's key as a fresh slice — the convenience form for
// tests and setup paths that do not care about allocation.
func (ks *Keyspace) Key(rank int) []byte {
	return ks.AppendKey(nil, rank)
}

// Draw samples a rank from rng and appends its key to dst — the
// steady-state load-generator call.
func (ks *Keyspace) Draw(dst []byte, rng *hashing.RNG) []byte {
	return ks.AppendKey(dst, ks.Rank(rng))
}
