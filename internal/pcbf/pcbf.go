// Package pcbf implements the Partitioned Counting Bloom Filter of the
// paper's Section III.A: the counter vector is split into l machine words
// of w bits (w/4 counters each); a key hashes to g words and its k counter
// updates are divided among them, so an operation costs g memory accesses
// instead of k. PCBF-1 (g=1) and PCBF-g are the paper's naive fast
// baselines: faster than CBF but with a worse false positive rate.
package pcbf

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/hashing"
	"repro/internal/metrics"
)

// ErrUnderflow is reported when Delete decrements a zero counter.
var ErrUnderflow = errors.New("pcbf: delete of absent key (counter underflow)")

// Filter is a PCBF-g.
type Filter struct {
	counters     *bitvec.Counters
	l            int // number of words
	w            int // word size in bits
	countersWord int // counters per word = w/4
	k, g         int
	split        []int
	hasher       hashing.Hasher
	count        int
}

// New returns a PCBF with l words of w bits, k hash functions split over
// g words per key. w must be a positive multiple of 4.
func New(l, w, k, g int, seed uint32) (*Filter, error) {
	switch {
	case l <= 0:
		return nil, fmt.Errorf("pcbf: l must be positive (l=%d)", l)
	case w <= 0 || w%bitvec.CounterWidth != 0:
		return nil, fmt.Errorf("pcbf: w must be a positive multiple of %d (w=%d)", bitvec.CounterWidth, w)
	case k <= 0 || g <= 0:
		return nil, fmt.Errorf("pcbf: k and g must be positive (k=%d, g=%d)", k, g)
	case g > k:
		return nil, fmt.Errorf("pcbf: g=%d exceeds k=%d", g, k)
	case g > l:
		return nil, fmt.Errorf("pcbf: g=%d exceeds word count l=%d", g, l)
	}
	cw := w / bitvec.CounterWidth
	return &Filter{
		counters:     bitvec.NewCounters(l * cw),
		l:            l,
		w:            w,
		countersWord: cw,
		k:            k,
		g:            g,
		split:        hashing.SplitKEven(k, g),
		hasher:       hashing.NewHasher(seed),
	}, nil
}

// FromMemory returns a PCBF sized to memoryBits total bits with the given
// word size.
func FromMemory(memoryBits, w, k, g int, seed uint32) (*Filter, error) {
	if w <= 0 {
		return nil, fmt.Errorf("pcbf: w must be positive (w=%d)", w)
	}
	return New(memoryBits/w, w, k, g, seed)
}

// L returns the number of words.
func (f *Filter) L() int { return f.l }

// W returns the word size in bits.
func (f *Filter) W() int { return f.w }

// K returns the number of hash functions; G the number of words per key.
func (f *Filter) K() int { return f.k }

// G returns the number of memory accesses (words) per operation.
func (f *Filter) G() int { return f.g }

// Count returns the current number of elements.
func (f *Filter) Count() int { return f.count }

// MemoryBits returns the filter's memory footprint in bits.
func (f *Filter) MemoryBits() int { return f.l * f.w }

// forEachIndex walks the counter indices of key: g words, split[i] slots
// in word i.
func (f *Filter) forEachIndex(key []byte, fn func(word, counterIdx int)) {
	s := f.hasher.NewIndexStream(key)
	slot := 0
	for wi := 0; wi < f.g; wi++ {
		word := s.Word(wi, f.l)
		base := word * f.countersWord
		for j := 0; j < f.split[wi]; j++ {
			fn(word, base+s.Slot(slot, f.countersWord))
			slot++
		}
	}
}

// opCost returns the fixed access cost of an update: g word fetches,
// log2(l) hash bits per word plus log2(w/4) per counter.
func (f *Filter) opCost() metrics.OpStats {
	return metrics.OpStats{
		MemAccesses: f.g,
		HashBits:    f.g*metrics.Log2Ceil(f.l) + f.k*metrics.Log2Ceil(f.countersWord),
	}
}

// Insert adds key.
func (f *Filter) Insert(key []byte) error {
	_, err := f.InsertStats(key)
	return err
}

// InsertStats is Insert with cost accounting.
func (f *Filter) InsertStats(key []byte) (metrics.OpStats, error) {
	f.forEachIndex(key, func(_, idx int) { f.counters.Inc(idx) })
	f.count++
	return f.opCost(), nil
}

// Delete removes key. See cbf.Filter.Delete for underflow semantics.
func (f *Filter) Delete(key []byte) error {
	_, err := f.DeleteStats(key)
	return err
}

// DeleteStats is Delete with cost accounting.
func (f *Filter) DeleteStats(key []byte) (metrics.OpStats, error) {
	var underflow bool
	f.forEachIndex(key, func(_, idx int) {
		if f.counters.Dec(idx) {
			underflow = true
		}
	})
	f.count--
	if underflow {
		return f.opCost(), ErrUnderflow
	}
	return f.opCost(), nil
}

// Contains reports whether key may be in the set (the uninstrumented hot
// path; see Probe).
func (f *Filter) Contains(key []byte) bool {
	s := f.hasher.NewIndexStream(key)
	slot := 0
	for wi := 0; wi < f.g; wi++ {
		base := s.Word(wi, f.l) * f.countersWord
		for j := 0; j < f.split[wi]; j++ {
			if f.counters.Get(base+s.Slot(slot, f.countersWord)) == 0 {
				return false
			}
			slot++
		}
	}
	return true
}

// Probe is Contains with cost accounting: one memory access per word
// visited, short-circuiting on the first word that rejects.
func (f *Filter) Probe(key []byte) (bool, metrics.OpStats) {
	s := f.hasher.NewIndexStream(key)
	wordBits := metrics.Log2Ceil(f.l)
	slotBits := metrics.Log2Ceil(f.countersWord)
	var st metrics.OpStats
	slot := 0
	for wi := 0; wi < f.g; wi++ {
		base := s.Word(wi, f.l) * f.countersWord
		st.MemAccesses++
		st.HashBits += wordBits
		for j := 0; j < f.split[wi]; j++ {
			st.HashBits += slotBits
			if f.counters.Get(base+s.Slot(slot, f.countersWord)) == 0 {
				return false, st
			}
			slot++
		}
	}
	return true, st
}

// CountOf returns the minimum counter value over key's positions.
func (f *Filter) CountOf(key []byte) uint8 {
	min := uint8(bitvec.CounterMax)
	f.forEachIndex(key, func(_, idx int) {
		if v := f.counters.Get(idx); v < min {
			min = v
		}
	})
	return min
}

// Reset clears the filter.
func (f *Filter) Reset() {
	f.counters.Reset()
	f.count = 0
}
