package server

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	if s := h.Summary(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}

	// 100 observations of exactly 1000ns: every quantile must land inside
	// 1000's bucket [512, 1024).
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < 512 || got > 1024 {
			t.Fatalf("q=%v = %v, want within bucket [512, 1024]", q, got)
		}
	}

	// A bimodal distribution: 90 fast (~100ns bucket) + 10 slow (~1e6
	// bucket). p50 must report the fast mode, p99 the slow mode.
	var b Histogram
	for i := 0; i < 90; i++ {
		b.Observe(100)
	}
	for i := 0; i < 10; i++ {
		b.Observe(1 << 20)
	}
	p50, p99 := b.Quantile(0.5), b.Quantile(0.99)
	if p50 < 64 || p50 > 128 {
		t.Fatalf("bimodal p50 = %v, want in fast bucket [64, 128]", p50)
	}
	if p99 < float64(1<<19) || p99 > float64(1<<21) {
		t.Fatalf("bimodal p99 = %v, want in slow bucket [2^19, 2^21]", p99)
	}
	sum := b.Summary()
	if sum.Count != 100 {
		t.Fatalf("summary count = %d, want 100", sum.Count)
	}
	wantMean := float64(90*100+10*(1<<20)) / 100
	if math.Abs(sum.Mean-wantMean) > 1e-9 {
		t.Fatalf("summary mean = %v, want %v", sum.Mean, wantMean)
	}
	if sum.P50 != p50 || sum.P99 != p99 {
		t.Fatalf("summary quantiles %+v disagree with direct calls (%v, %v)", sum, p50, p99)
	}
}

// TestHistogramQuantileInterpolation: within one bucket the estimate
// moves linearly with q, and bucket boundaries are exact.
func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	// 10 in bucket [4,8), 10 in bucket [8,16).
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(9)
	}
	// q=0.5 is the boundary between the two buckets: 8.
	if got := h.Quantile(0.5); got != 8 {
		t.Fatalf("p50 = %v, want exactly 8 at the bucket boundary", got)
	}
	// q=0.25 is halfway through the first bucket: 4 + 0.5*(8-4) = 6.
	if got := h.Quantile(0.25); got != 6 {
		t.Fatalf("p25 = %v, want 6 (linear inside bucket)", got)
	}
	// q=0.75 is halfway through the second: 8 + 0.5*(16-8) = 12.
	if got := h.Quantile(0.75); got != 12 {
		t.Fatalf("p75 = %v, want 12 (linear inside bucket)", got)
	}
	// Out-of-range q clamps.
	if lo, hi := h.Quantile(-1), h.Quantile(2); lo != 4 || hi != 16 {
		t.Fatalf("clamped quantiles = %v, %v; want 4, 16", lo, hi)
	}

	// Zero observations land in bucket 0 = [0,1).
	var z Histogram
	z.Observe(0)
	if got := z.Quantile(1); got > 1 {
		t.Fatalf("all-zero p100 = %v, want <= 1", got)
	}

	// Oversized observations saturate into the last bucket and still
	// produce a finite quantile.
	var o Histogram
	o.Observe(math.MaxUint64)
	if got := o.Quantile(0.5); math.IsInf(got, 0) || got <= 0 {
		t.Fatalf("saturated p50 = %v, want finite positive", got)
	}
}

// TestHistogramQuantileEdges pins the extremes: q=0 and q=1 on empty
// and single-bucket histograms never step outside the occupied bucket.
func TestHistogramQuantileEdges(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty q=%v = %v, want 0", q, got)
		}
	}

	// One observation: a single occupied bucket [512, 1024). q=0 must
	// answer the bucket's low edge, q=1 its high edge; nothing outside.
	var one Histogram
	one.Observe(1000)
	if got := one.Quantile(0); got != 512 {
		t.Fatalf("single-bucket q=0 = %v, want low edge 512", got)
	}
	if got := one.Quantile(1); got != 1024 {
		t.Fatalf("single-bucket q=1 = %v, want high edge 1024", got)
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		if got := one.Quantile(q); got < 512 || got > 1024 {
			t.Fatalf("single-bucket q=%v = %v, want within [512, 1024]", q, got)
		}
	}

	// Many observations, still one bucket: the edges stay pinned.
	var many Histogram
	for i := 0; i < 1000; i++ {
		many.Observe(700)
	}
	if lo, hi := many.Quantile(0), many.Quantile(1); lo != 512 || hi != 1024 {
		t.Fatalf("single-bucket edges = %v, %v; want 512, 1024", lo, hi)
	}
}
