package pcbf

import (
	"fmt"
	"testing"

	"repro/internal/cbf"
	"repro/internal/hashing"
)

func keys(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		l, w, k, g int
	}{
		{0, 64, 3, 1},
		{10, 0, 3, 1},
		{10, 63, 3, 1}, // w not multiple of 4
		{10, 64, 0, 1},
		{10, 64, 3, 0},
		{10, 64, 3, 4}, // g > k
		{2, 64, 8, 3},  // g > l
	}
	for _, c := range cases {
		if _, err := New(c.l, c.w, c.k, c.g, 0); err == nil {
			t.Errorf("New(%d,%d,%d,%d) accepted", c.l, c.w, c.k, c.g)
		}
	}
	f, err := New(100, 64, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.L() != 100 || f.W() != 64 || f.K() != 3 || f.G() != 2 || f.MemoryBits() != 6400 {
		t.Fatal("accessor mismatch")
	}
}

func TestFromMemory(t *testing.T) {
	f, err := FromMemory(1<<20, 64, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.L() != 1<<20/64 {
		t.Fatalf("L = %d", f.L())
	}
	if _, err := FromMemory(1024, 0, 3, 1, 0); err == nil {
		t.Error("w=0 accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, g := range []int{1, 2, 3} {
		f, err := New(1<<12, 64, 3, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		in := keys("in", 1000)
		for _, k := range in {
			if err := f.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range in {
			if !f.Contains(k) {
				t.Fatalf("g=%d: false negative for %q", g, k)
			}
		}
		for _, k := range in {
			if err := f.Delete(k); err != nil {
				t.Fatalf("g=%d: delete: %v", g, err)
			}
		}
		for _, k := range in {
			if f.Contains(k) {
				t.Fatalf("g=%d: stale positive after deletion", g)
			}
		}
	}
}

func TestDeleteAbsentUnderflows(t *testing.T) {
	f, _ := New(1<<10, 64, 3, 1, 0)
	if err := f.Delete([]byte("ghost")); err != ErrUnderflow {
		t.Fatalf("expected ErrUnderflow, got %v", err)
	}
}

func TestOpCosts(t *testing.T) {
	// l=1024 words, w=64 (16 counters/word), k=3.
	f, _ := New(1024, 64, 3, 1, 0)
	st, _ := f.InsertStats([]byte("x"))
	if st.MemAccesses != 1 {
		t.Fatalf("PCBF-1 insert accesses = %d, want 1", st.MemAccesses)
	}
	// log2(1024) + 3*log2(16) = 10 + 12 = 22
	if st.HashBits != 22 {
		t.Fatalf("PCBF-1 insert bits = %d, want 22", st.HashBits)
	}
	f2, _ := New(1024, 64, 4, 2, 0)
	st, _ = f2.InsertStats([]byte("x"))
	if st.MemAccesses != 2 {
		t.Fatalf("PCBF-2 insert accesses = %d, want 2", st.MemAccesses)
	}
	// 2*log2(1024) + 4*log2(16) = 20 + 16 = 36
	if st.HashBits != 36 {
		t.Fatalf("PCBF-2 insert bits = %d, want 36", st.HashBits)
	}
	ok, st := f2.Probe([]byte("x"))
	if !ok || st.MemAccesses != 2 {
		t.Fatalf("member probe: ok=%v accesses=%d", ok, st.MemAccesses)
	}
}

func TestProbeShortCircuit(t *testing.T) {
	f, _ := New(1<<10, 64, 4, 2, 0)
	ok, st := f.Probe([]byte("absent"))
	if ok {
		t.Fatal("empty filter claims membership")
	}
	if st.MemAccesses != 1 {
		t.Fatalf("short-circuit should stop after first word, got %d accesses", st.MemAccesses)
	}
}

func TestFPRWorseThanCBFAtSameMemory(t *testing.T) {
	// Section III.A's observation: PCBF-1 hashes into a w-bit word instead
	// of the whole vector, so its fpr exceeds the standard CBF's at equal
	// memory. Use a loaded filter so the gap is measurable.
	const memBits = 1 << 17 // 128 Kb
	const n = 4000
	std, err := cbf.FromMemory(memBits, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	part, err := FromMemory(memBits, 64, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys("in", n) {
		std.Insert(k)
		part.Insert(k)
	}
	fpStd, fpPart := 0, 0
	const probes = 100000
	for _, k := range keys("out", probes) {
		if std.Contains(k) {
			fpStd++
		}
		if part.Contains(k) {
			fpPart++
		}
	}
	if fpPart <= fpStd {
		t.Fatalf("expected PCBF-1 fpr > CBF fpr, got %d vs %d", fpPart, fpStd)
	}
}

func TestPCBF2BetterThanPCBF1(t *testing.T) {
	// Spreading the k hashes over two words lowers the fpr (Fig. 2).
	const memBits = 1 << 17
	const n = 4000
	p1, _ := FromMemory(memBits, 64, 4, 1, 2)
	p2, _ := FromMemory(memBits, 64, 4, 2, 2)
	for _, k := range keys("in", n) {
		p1.Insert(k)
		p2.Insert(k)
	}
	fp1, fp2 := 0, 0
	const probes = 200000
	for _, k := range keys("out", probes) {
		if p1.Contains(k) {
			fp1++
		}
		if p2.Contains(k) {
			fp2++
		}
	}
	if fp2 >= fp1 {
		t.Fatalf("expected PCBF-2 fpr < PCBF-1 fpr, got %d vs %d", fp2, fp1)
	}
}

func TestRandomOpsNoFalseNegatives(t *testing.T) {
	f, _ := New(1<<12, 64, 3, 2, 5)
	ref := make(map[string]int)
	rng := hashing.NewRNG(13)
	universe := keys("u", 400)
	for op := 0; op < 20000; op++ {
		k := universe[rng.Intn(len(universe))]
		if rng.Intn(2) == 0 || ref[string(k)] == 0 {
			f.Insert(k)
			ref[string(k)]++
		} else {
			f.Delete(k)
			ref[string(k)]--
		}
	}
	for k, n := range ref {
		if n > 0 && !f.Contains([]byte(k)) {
			t.Fatalf("false negative for %q (count %d)", k, n)
		}
	}
}

func TestCountOf(t *testing.T) {
	f, _ := New(1<<12, 64, 3, 1, 0)
	k := []byte("dup")
	for i := 1; i <= 4; i++ {
		f.Insert(k)
		if int(f.CountOf(k)) < i {
			t.Fatalf("CountOf undercounts: %d < %d", f.CountOf(k), i)
		}
	}
}

func TestReset(t *testing.T) {
	f, _ := New(256, 64, 3, 1, 0)
	f.Insert([]byte("a"))
	f.Reset()
	if f.Count() != 0 || f.Contains([]byte("a")) {
		t.Fatal("Reset incomplete")
	}
}
