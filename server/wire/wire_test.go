package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {0x01}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(&buf, scratch, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		scratch = got[:0]
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, nil, 50); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	key := []byte("the-key")
	keys := [][]byte{[]byte("a"), {}, []byte("ccc")}
	cases := []struct {
		name    string
		payload []byte
		want    Request
	}{
		{"insert", AppendKeyRequest(nil, OpInsert, key), Request{Op: OpInsert, Key: key}},
		{"delete", AppendKeyRequest(nil, OpDelete, key), Request{Op: OpDelete, Key: key}},
		{"contains", AppendKeyRequest(nil, OpContains, key), Request{Op: OpContains, Key: key}},
		{"estimate", AppendKeyRequest(nil, OpEstimate, key), Request{Op: OpEstimate, Key: key}},
		{"len", AppendLenRequest(nil), Request{Op: OpLen}},
		{"insert_batch", AppendBatchRequest(nil, OpInsertBatch, keys), Request{Op: OpInsertBatch, Keys: keys}},
		{"delete_batch", AppendBatchRequest(nil, OpDeleteBatch, keys), Request{Op: OpDeleteBatch, Keys: keys}},
		{"contains_batch", AppendBatchRequest(nil, OpContainsBatch, keys), Request{Op: OpContainsBatch, Keys: keys}},
	}
	for _, c := range cases {
		got, err := DecodeRequest(c.payload)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Op != c.want.Op || !bytes.Equal(got.Key, c.want.Key) {
			t.Fatalf("%s: got %+v", c.name, got)
		}
		if len(got.Keys) != len(c.want.Keys) {
			t.Fatalf("%s: %d keys, want %d", c.name, len(got.Keys), len(c.want.Keys))
		}
		for i := range got.Keys {
			if !bytes.Equal(got.Keys[i], c.want.Keys[i]) {
				t.Fatalf("%s key %d: %q", c.name, i, got.Keys[i])
			}
		}
	}
}

func TestDecodeRequestRejectsMalformed(t *testing.T) {
	bad := map[string][]byte{
		"empty":                {},
		"unknown op":           {0xEE},
		"zeroed":               make([]byte, 16),
		"insert no key":        {OpInsert},
		"insert short len":     {OpInsert, 1, 0},
		"insert key overrun":   {OpInsert, 10, 0, 0, 0, 'x'},
		"insert trailing":      append(AppendKeyRequest(nil, OpInsert, []byte("k")), 0xFF),
		"len trailing":         {OpLen, 0},
		"batch no count":       {OpInsertBatch, 1},
		"batch absurd count":   {OpInsertBatch, 0xFF, 0xFF, 0xFF, 0x7F},
		"batch truncated keys": {OpInsertBatch, 2, 0, 0, 0, 1, 0, 0, 0, 'a'},
		"batch trailing":       append(AppendBatchRequest(nil, OpContainsBatch, [][]byte{[]byte("k")}), 0x01),
	}
	for name, payload := range bad {
		if _, err := DecodeRequest(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestResponseHelpers(t *testing.T) {
	status, body, err := DecodeStatus(AppendErr(nil, "boom"))
	if err != nil || status != StatusErr || string(body) != "boom" {
		t.Fatalf("err response: %d %q %v", status, body, err)
	}
	if v, err := DecodeBool(AppendOK(nil)[1:]); err == nil {
		t.Fatalf("empty bool body accepted: %v", v)
	}
	if v, err := DecodeBool(AppendBool(nil, true)); err != nil || !v {
		t.Fatalf("bool: %v %v", v, err)
	}
	if v, err := DecodeU64(AppendU64(nil, 1<<40)); err != nil || v != 1<<40 {
		t.Fatalf("u64: %d %v", v, err)
	}
	in := []bool{true, false, true, true}
	out, err := DecodeBools(AppendBools(nil, in))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("bools: %v %v", out, err)
	}
	if _, err := DecodeBools([]byte{5, 0, 0, 0, 1}); err == nil {
		t.Fatal("bools count mismatch accepted")
	}
}
