package server

// Observability smoke test against the real mpcbfd binary: boot it with
// tracing, JSON logs, and the debug listener enabled, drive a small
// workload, and scrape every operational endpoint. Each must answer 200
// with a parseable body — this is what `make obs-smoke` runs in CI.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/e2e"
)

// httpGetStatus fetches a URL with retries (the sidecar may lag the TCP
// listener by a beat) and returns the final status code and body.
func httpGetStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				t.Fatalf("GET %s: read body: %v", url, rerr)
			}
			return resp.StatusCode, string(body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s never answered: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs the daemon binary")
	}
	bin := e2e.BuildDaemon(t)
	addr, httpAddr, debugAddr := e2e.FreePort(t), e2e.FreePort(t), e2e.FreePort(t)
	d := e2e.StartDaemon(t, e2e.DaemonConfig{Bin: bin, Dir: t.TempDir(), Addr: addr, HTTPAddr: httpAddr,
		Extra: []string{
			"-debug-addr", debugAddr,
			"-trace-sample", "1", "-slow-op", "1ns",
			"-log-format", "json", "-log-level", "debug"}})

	c := e2e.DialRetry(t, addr)
	defer c.Close()
	keys := make([][]byte, 100)
	for i := range keys {
		keys[i] = []byte(strings.Repeat("k", 4) + string(rune('a'+i%26)))
	}
	if err := c.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Contains(keys[0]); err != nil {
		t.Fatal(err)
	}

	// /metrics: 200 and a well-formed Prometheus text document.
	code, metrics := httpGetStatus(t, "http://"+httpAddr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d\n%s", code, d)
	}
	if p := parseProm(t, metrics); p.samples == 0 {
		t.Fatal("/metrics had no samples")
	}

	// /debug/vars: 200 and valid JSON with the mpcbfd var present.
	code, vars := httpGetStatus(t, "http://"+httpAddr+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	var varsDoc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &varsDoc); err != nil {
		t.Fatalf("/debug/vars unparseable: %v", err)
	}
	if _, ok := varsDoc["mpcbfd"]; !ok {
		t.Error("/debug/vars missing mpcbfd var")
	}

	// /readyz and /healthz: both 200 on a live primary.
	for _, path := range []string{"/readyz", "/healthz"} {
		if code, _ := httpGetStatus(t, "http://"+httpAddr+path); code != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, code)
		}
	}

	// /debug/requests: 200, valid JSON, and traced entries (sample=1).
	code, reqs := httpGetStatus(t, "http://"+httpAddr+"/debug/requests")
	if code != http.StatusOK {
		t.Fatalf("/debug/requests = %d", code)
	}
	var rep TraceReport
	if err := json.Unmarshal([]byte(reqs), &rep); err != nil {
		t.Fatalf("/debug/requests unparseable: %v", err)
	}
	if rep.Sampled == 0 || len(rep.Recent) == 0 {
		t.Errorf("no sampled traces with -trace-sample 1: %+v", rep)
	}

	// /debug/traces: a TRACE-enveloped request must land a span keyed by
	// its propagated trace id, with WAL position and commit-round
	// attribution for the mutation.
	tc := client.NewTrace()
	if err := c.Traced(tc).Insert([]byte("traced-smoke-key")); err != nil {
		t.Fatal(err)
	}
	code, traces := httpGetStatus(t, "http://"+httpAddr+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", code)
	}
	var trep TracesReport
	if err := json.Unmarshal([]byte(traces), &trep); err != nil {
		t.Fatalf("/debug/traces unparseable: %v", err)
	}
	foundSpan := false
	for _, sp := range trep.Spans {
		if sp.TraceID == tc.String() {
			foundSpan = true
			if sp.RoundSeq == 0 {
				t.Errorf("traced insert span missing commit-round attribution: %+v", sp)
			}
			if sp.WALSeq == 0 {
				t.Errorf("traced insert span missing WAL position: %+v", sp)
			}
		}
	}
	if !foundSpan {
		t.Errorf("no span with trace id %s in /debug/traces (traced=%d)", tc, trep.Traced)
	}

	// Debug listener: pprof goroutine dump must mention this process's
	// goroutines; /debug/vars rides along.
	code, prof := httpGetStatus(t, "http://"+debugAddr+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Fatalf("pprof goroutine = %d", code)
	}
	if !strings.Contains(prof, "goroutine profile:") {
		t.Errorf("pprof goroutine dump malformed:\n%.200s", prof)
	}
	if code, _ = httpGetStatus(t, "http://"+debugAddr+"/debug/vars"); code != http.StatusOK {
		t.Errorf("debug listener /debug/vars = %d", code)
	}

	// The daemon was started with -log-format json: every line of its
	// output must be machine-parseable, including slow-request warnings
	// (forced by -slow-op 1ns).
	sawSlow := false
	for _, line := range strings.Split(strings.TrimSpace(d.Output()), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("daemon emitted non-JSON log line %q: %v", line, err)
		}
		if obj["msg"] == "slow request" {
			sawSlow = true
		}
	}
	if !sawSlow {
		t.Error("no slow-request warning in daemon logs with -slow-op 1ns")
	}
}
