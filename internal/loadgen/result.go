package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Manifest is the reproducibility record embedded in every Result:
// re-running the generator with these parameters regenerates the same
// per-worker op and key streams.
type Manifest struct {
	Seed        uint64   `json:"seed"`
	Mode        string   `json:"mode"` // "closed", "open", or "pipelined"
	Rate        float64  `json:"rate,omitempty"`
	Concurrency int      `json:"concurrency"`
	Duration    string   `json:"duration"`
	Mix         Mix      `json:"mix"`
	Batch       int      `json:"batch,omitempty"`
	Pipeline    int      `json:"pipeline,omitempty"`
	Addrs       []string `json:"addrs"`
	Namespaces  []string `json:"namespaces,omitempty"`
	Keys        int      `json:"keys"`
	ZipfS       float64  `json:"zipf_s,omitempty"`
	TTL         string   `json:"ttl"`
	TraceSample int      `json:"trace_sample,omitempty"`
	// GrowCurve, present in grow mode, is the keyspace ramp: each phase
	// says from when (offset into the run) ops drew from how many keys.
	GrowCurve []GrowPhase `json:"grow_curve,omitempty"`
}

// GrowPhase is one step of a grow-mode run's keyspace ramp.
type GrowPhase struct {
	At   string `json:"at"`   // offset into the run when the phase begins
	Keys int    `json:"keys"` // keyspace prefix drawn from during the phase
}

func (c *Config) manifest() Manifest {
	mode := "closed"
	switch {
	case c.PipelineDepth > 0:
		mode = "pipelined"
	case c.OpenLoop:
		mode = "open"
	}
	m := Manifest{
		Seed:        c.Seed,
		Mode:        mode,
		Rate:        c.Rate,
		Concurrency: c.Concurrency,
		Duration:    c.Duration.String(),
		Mix:         c.Mix,
		Batch:       c.Batch,
		Pipeline:    c.PipelineDepth,
		Addrs:       c.Addrs,
		Namespaces:  c.Namespaces,
		Keys:        c.Keyspace.N,
		ZipfS:       c.Keyspace.ZipfS,
		TTL:         c.TTL.String(),
		TraceSample: c.TraceSample,
	}
	if c.Grow {
		phases := c.GrowSteps + 1
		m.GrowCurve = make([]GrowPhase, phases)
		for i := 0; i < phases; i++ {
			m.GrowCurve[i] = GrowPhase{
				At:   (c.Duration * time.Duration(i) / time.Duration(phases)).String(),
				Keys: c.Keyspace.N >> (c.GrowSteps - i),
			}
		}
	}
	return m
}

// OpStats is one op kind's outcome: counts and latency summary. For
// batch mode, Count is the number of batch calls while Errors and
// MaybeApplied count keys; latencies are per call. For pipelined mode,
// each op's latency is its flush's round trip.
type OpStats struct {
	Count        uint64  `json:"count"`
	Errors       uint64  `json:"errors"`
	MaybeApplied uint64  `json:"maybe_applied,omitempty"`
	MeanUs       float64 `json:"mean_us"`
	P50Us        float64 `json:"p50_us"`
	P90Us        float64 `json:"p90_us"`
	P99Us        float64 `json:"p99_us"`
}

// SlowTrace identifies one of the run's slowest traced operations: feed
// the id to `mpcbf-trace -trace <id>` (or find it in /debug/traces) to
// see where the time went.
type SlowTrace struct {
	Op        string  `json:"op"`
	LatencyUs float64 `json:"latency_us"`
	TraceID   string  `json:"trace_id"`
}

// Result is one run's outcome.
type Result struct {
	Manifest     Manifest           `json:"manifest"`
	Elapsed      float64            `json:"elapsed_sec"`
	TotalOps     uint64             `json:"total_ops"`
	Throughput   float64            `json:"ops_per_sec"`
	Errors       uint64             `json:"errors"`
	MaybeApplied uint64             `json:"maybe_applied"`
	Ops          map[string]OpStats `json:"ops"`
	// SlowTraces lists the slowest sampled-traced ops (TraceSample > 0).
	SlowTraces []SlowTrace `json:"slow_traces,omitempty"`
}

// WriteHuman renders the run summary as aligned text.
func (r *Result) WriteHuman(w io.Writer) {
	fmt.Fprintf(w, "mode=%s seed=%d concurrency=%d elapsed=%.2fs\n",
		r.Manifest.Mode, r.Manifest.Seed, r.Manifest.Concurrency, r.Elapsed)
	fmt.Fprintf(w, "total %d ops, %.0f ops/s, %d errors, %d maybe-applied\n",
		r.TotalOps, r.Throughput, r.Errors, r.MaybeApplied)
	fmt.Fprintf(w, "%-12s %10s %8s %10s %10s %10s %10s\n",
		"op", "count", "errs", "mean_us", "p50_us", "p90_us", "p99_us")
	for _, name := range r.sortedOps() {
		st := r.Ops[name]
		fmt.Fprintf(w, "%-12s %10d %8d %10.1f %10.1f %10.1f %10.1f\n",
			name, st.Count, st.Errors, st.MeanUs, st.P50Us, st.P90Us, st.P99Us)
	}
	if len(r.SlowTraces) > 0 {
		fmt.Fprintf(w, "slowest traced ops (mpcbf-trace -trace <id>):\n")
		for _, st := range r.SlowTraces {
			fmt.Fprintf(w, "  %-12s %10.1fus  %s\n", st.Op, st.LatencyUs, st.TraceID)
		}
	}
}

// benchFile is the BENCH_cluster.json shape: named runs, most recent
// write wins per name.
type benchFile struct {
	Runs map[string]*Result `json:"runs"`
}

// MergeBenchFile inserts the result under name into the JSON bench file
// at path, creating it if absent and preserving other entries.
func (r *Result) MergeBenchFile(path, name string) error {
	var doc benchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("loadgen: %s exists but is not a bench file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if doc.Runs == nil {
		doc.Runs = map[string]*Result{}
	}
	doc.Runs[name] = r
	out, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(out, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
