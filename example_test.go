package mpcbf_test

import (
	"fmt"

	mpcbf "repro"
)

// Sizing a filter with the analytic model before building it.
func ExampleTuneK() {
	const items, memory = 100000, 8 << 20
	kCBF, _ := mpcbf.TuneKCBF(items, memory)
	kMP, _ := mpcbf.TuneK(items, memory, 1)
	fmt.Printf("CBF wants k=%d (and pays k accesses per query)\n", kCBF)
	fmt.Printf("MPCBF-1 wants k=%d (and pays 1 access per query)\n", kMP)
	// Output:
	// CBF wants k=15 (and pays k accesses per query)
	// MPCBF-1 wants k=4 (and pays 1 access per query)
}

// Comparing structures at equal memory through the common interface.
func ExampleCountingFilter() {
	opts := mpcbf.Options{MemoryBits: 1 << 20, ExpectedItems: 10000}
	mp, _ := mpcbf.New(opts)
	cb, _ := mpcbf.NewCBF(opts)
	for _, f := range []mpcbf.CountingFilter{mp, cb} {
		f.Insert([]byte("route-10.0.0.0/8"))
		fmt.Println(f.Contains([]byte("route-10.0.0.0/8")), f.Len())
	}
	// Output:
	// true 1
	// true 1
}

// Shipping a loaded filter to another process (the DistributedCache
// pattern of the paper's MapReduce application).
func ExampleMPCBF_MarshalBinary() {
	f, _ := mpcbf.New(mpcbf.Options{MemoryBits: 1 << 16, ExpectedItems: 500})
	f.Insert([]byte("patent-4683202"))

	wire, _ := f.MarshalBinary()
	clone, _ := mpcbf.UnmarshalMPCBF(wire)

	fmt.Println(clone.Contains([]byte("patent-4683202")))
	fmt.Println(clone.Contains([]byte("patent-0000000")))
	// Output:
	// true
	// false
}

// A thread-safe filter for concurrent pipelines.
func ExampleNewSharded() {
	s, _ := mpcbf.NewSharded(mpcbf.Options{MemoryBits: 1 << 20, ExpectedItems: 10000}, 8)
	keys := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	if err := s.InsertBatch(keys, 0); err != nil {
		panic(err)
	}
	for _, hit := range s.ContainsBatch([][]byte{[]byte("a"), []byte("z")}, 0) {
		fmt.Println(hit)
	}
	// Output:
	// true
	// false
}

// Inspecting the derived geometry of an MPCBF.
func ExampleMPCBF_Geometry() {
	f, _ := mpcbf.New(mpcbf.Options{MemoryBits: 1 << 20, ExpectedItems: 10000})
	g := f.Geometry()
	fmt.Printf("words=%d wordBits=%d firstLevel=%d capacity=%d\n",
		g.Words, g.WordBits, g.FirstLevelBits, g.WordCapacity)
	// Output:
	// words=16384 wordBits=64 firstLevel=49 capacity=5
}
