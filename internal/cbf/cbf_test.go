package cbf

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/hashing"
)

func keys(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(10, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	f, err := FromMemory(4096, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.M() != 1024 || f.MemoryBits() != 4096 {
		t.Fatalf("FromMemory sizing: m=%d bits=%d", f.M(), f.MemoryBits())
	}
}

func TestInsertQueryDelete(t *testing.T) {
	f, _ := New(1<<12, 3, 1)
	in := keys("in", 300)
	for _, k := range in {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if f.Count() != 300 {
		t.Fatalf("Count = %d", f.Count())
	}
	for _, k := range in {
		if !f.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	for _, k := range in {
		if err := f.Delete(k); err != nil {
			t.Fatalf("delete %q: %v", k, err)
		}
	}
	if f.Count() != 0 {
		t.Fatalf("Count after deletes = %d", f.Count())
	}
	// With everything removed and no saturation, nothing should remain.
	for _, k := range in {
		if f.Contains(k) {
			t.Fatalf("stale positive for %q after full deletion", k)
		}
	}
}

func TestDeleteAbsentUnderflows(t *testing.T) {
	f, _ := New(1<<12, 3, 1)
	if err := f.Delete([]byte("ghost")); err != ErrUnderflow {
		t.Fatalf("expected ErrUnderflow, got %v", err)
	}
}

func TestCountOfTracksMultiplicity(t *testing.T) {
	f, _ := New(1<<14, 4, 2)
	k := []byte("dup")
	for i := 1; i <= 5; i++ {
		f.Insert(k)
		if got := f.CountOf(k); int(got) < i {
			t.Fatalf("after %d inserts CountOf = %d (min-selection must not undercount)", i, got)
		}
	}
	for i := 0; i < 5; i++ {
		f.Delete(k)
	}
	if f.Contains(k) {
		t.Fatal("key still present after balanced deletes")
	}
}

func TestFPRMatchesTheory(t *testing.T) {
	// m/n = 10 counters per key, k = 7: f ~ (1-e^{-0.7})^7 ~ 0.0082.
	const n = 20000
	f, _ := New(10*n, 7, 3)
	for _, k := range keys("in", n) {
		f.Insert(k)
	}
	fp := 0
	const probes = 200000
	for _, k := range keys("out", probes) {
		if f.Contains(k) {
			fp++
		}
	}
	got := float64(fp) / probes
	want := math.Pow(1-math.Exp(-7.0/10), 7)
	if got > want*2 || got < want/2 {
		t.Fatalf("measured fpr %.4f, theory %.4f", got, want)
	}
}

func TestProbeShortCircuit(t *testing.T) {
	f, _ := New(1024, 5, 0)
	ok, st := f.Probe([]byte("absent"))
	if ok {
		t.Fatal("empty filter claims membership")
	}
	if st.MemAccesses != 1 {
		t.Fatalf("empty-filter probe cost %d accesses, want 1", st.MemAccesses)
	}
	f.Insert([]byte("x"))
	ok, st = f.Probe([]byte("x"))
	if !ok || st.MemAccesses != 5 {
		t.Fatalf("member probe: ok=%v accesses=%d", ok, st.MemAccesses)
	}
	if st.HashBits != 5*10 {
		t.Fatalf("member probe bits = %d, want 50", st.HashBits)
	}
}

func TestUpdateStats(t *testing.T) {
	f, _ := New(1024, 3, 0)
	st, err := f.InsertStats([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if st.MemAccesses != 3 || st.HashBits != 30 {
		t.Fatalf("insert stats %+v", st)
	}
	st, err = f.DeleteStats([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if st.MemAccesses != 3 || st.HashBits != 30 {
		t.Fatalf("delete stats %+v", st)
	}
}

func TestSaturationSafety(t *testing.T) {
	// Hammering one key far past 15 must not create false negatives after
	// an equal number of deletes (sticky counters may leave stale
	// positives, never negatives).
	f, _ := New(64, 3, 0)
	k := []byte("hot")
	for i := 0; i < 100; i++ {
		f.Insert(k)
	}
	if f.Saturated() == 0 {
		t.Fatal("expected saturated counters")
	}
	for i := 0; i < 50; i++ {
		f.Delete(k)
	}
	if !f.Contains(k) {
		t.Fatal("false negative on saturated counters")
	}
}

func TestResetRestoresEmpty(t *testing.T) {
	f, _ := New(256, 3, 0)
	for _, k := range keys("in", 50) {
		f.Insert(k)
	}
	f.Reset()
	if f.Count() != 0 {
		t.Fatal("count survives reset")
	}
	for _, k := range keys("in", 50) {
		if f.Contains(k) {
			t.Fatal("membership survives reset")
		}
	}
}

func TestRandomOpsAgainstReference(t *testing.T) {
	// Drive the filter with a random op sequence mirrored in an exact
	// multiset; check the two core guarantees throughout: no false
	// negatives, and CountOf >= true multiplicity (absent saturation).
	f, _ := New(1<<14, 3, 5)
	ref := make(map[string]int)
	rng := hashing.NewRNG(11)
	universe := keys("u", 500)
	for op := 0; op < 30000; op++ {
		k := universe[rng.Intn(len(universe))]
		if rng.Intn(2) == 0 || ref[string(k)] == 0 {
			f.Insert(k)
			ref[string(k)]++
		} else {
			if err := f.Delete(k); err != nil {
				t.Fatalf("op %d: unexpected underflow: %v", op, err)
			}
			ref[string(k)]--
		}
	}
	for k, n := range ref {
		if n > 0 && !f.Contains([]byte(k)) {
			t.Fatalf("false negative for %q (count %d)", k, n)
		}
		if n > 0 && n < 15 && int(f.CountOf([]byte(k))) < n {
			t.Fatalf("CountOf(%q) = %d below true count %d", k, f.CountOf([]byte(k)), n)
		}
	}
}
