// Package client is a minimal, dependency-free Go client for mpcbfd's
// wire protocol (repro/server/wire): one TCP connection, synchronous
// request/response, safe for concurrent use (requests are serialized on
// the connection). A transport-level error permanently breaks a Client —
// the stream position can no longer be trusted — so every later call
// fails fast; dial a new Client to retry.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/server/wire"
)

// ServerError is an operation-level failure reported by the daemon (e.g.
// deleting an absent key). The connection remains usable after one.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "mpcbfd: " + e.Msg }

// Option configures Dial.
type Option func(*Client)

// WithTimeout bounds each request round trip (default 10s, 0 disables).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithMaxFrame bounds response frames (default wire.DefaultMaxFrame).
func WithMaxFrame(n int) Option {
	return func(c *Client) { c.maxFrame = n }
}

// Client is a connection to an mpcbfd daemon.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	r        *bufio.Reader
	w        *bufio.Writer
	buf      []byte // reused request/response scratch
	err      error  // first transport error; non-nil = broken, stream position unknown
	timeout  time.Duration
	maxFrame int
}

// Dial connects to an mpcbfd daemon at addr.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{timeout: 10 * time.Second, maxFrame: wire.DefaultMaxFrame}
	for _, o := range opts {
		o(c)
	}
	d := net.Dialer{Timeout: c.timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 1<<16)
	c.w = bufio.NewWriterSize(conn, 1<<16)
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request payload and returns the response body for
// an OK status, a *ServerError for an ERR status.
//
// Any transport-level failure — a write or flush error, a failed or
// timed-out read, an undecodable response — leaves the stream position
// unknown: retrying on the same connection would read leftover bytes of
// the previous response and mis-attribute results. So the first such
// error permanently breaks the Client (the connection is closed and
// every later call fails fast with the original error); dial a new one
// to retry. A *ServerError does not break the Client: the response frame
// was read whole and the stream is still in sync.
func (c *Client) roundTrip(payload []byte) ([]byte, error) {
	if c.err != nil {
		return nil, fmt.Errorf("mpcbfd: client broken by earlier error: %w", c.err)
	}
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := wire.WriteFrame(c.w, payload); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	resp, err := wire.ReadFrame(c.r, c.buf[:0], c.maxFrame)
	if err != nil {
		return nil, c.fail(err)
	}
	c.buf = resp[:0]
	status, body, err := wire.DecodeStatus(resp)
	if err != nil {
		return nil, c.fail(err)
	}
	if status == wire.StatusErr {
		return nil, &ServerError{Msg: string(body)}
	}
	if status != wire.StatusOK {
		return nil, c.fail(fmt.Errorf("mpcbfd: unknown status 0x%02x", status))
	}
	return body, nil
}

// fail marks the client permanently broken and closes the connection;
// callers hold c.mu.
func (c *Client) fail(err error) error {
	c.err = err
	c.conn.Close()
	return err
}

// Insert adds key. A nil return means the daemon acknowledged the
// mutation under its configured durability policy.
func (c *Client) Insert(key []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.roundTrip(wire.AppendKeyRequest(c.scratch(), wire.OpInsert, key))
	return err
}

// Delete removes a previously inserted key.
func (c *Client) Delete(key []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.roundTrip(wire.AppendKeyRequest(c.scratch(), wire.OpDelete, key))
	return err
}

// Contains reports whether key may be in the set.
func (c *Client) Contains(key []byte) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(wire.AppendKeyRequest(c.scratch(), wire.OpContains, key))
	if err != nil {
		return false, err
	}
	return wire.DecodeBool(body)
}

// EstimateCount returns an upper bound on key's multiplicity.
func (c *Client) EstimateCount(key []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(wire.AppendKeyRequest(c.scratch(), wire.OpEstimate, key))
	if err != nil {
		return 0, err
	}
	v, err := wire.DecodeU64(body)
	return int(v), err
}

// Len returns the daemon's current element count.
func (c *Client) Len() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(wire.AppendLenRequest(c.scratch()))
	if err != nil {
		return 0, err
	}
	v, err := wire.DecodeU64(body)
	return int(v), err
}

// InsertBatch inserts keys as one request (one WAL fsync server-side).
func (c *Client) InsertBatch(keys [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.roundTrip(wire.AppendBatchRequest(c.scratch(), wire.OpInsertBatch, keys))
	return err
}

// DeleteBatch deletes keys as one request, returning order-preserving
// flags for which keys were actually removed.
func (c *Client) DeleteBatch(keys [][]byte) ([]bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(wire.AppendBatchRequest(c.scratch(), wire.OpDeleteBatch, keys))
	if err != nil {
		return nil, err
	}
	return wire.DecodeBools(body)
}

// ContainsBatch answers membership for keys, order-preserving.
func (c *Client) ContainsBatch(keys [][]byte) ([]bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, err := c.roundTrip(wire.AppendBatchRequest(c.scratch(), wire.OpContainsBatch, keys))
	if err != nil {
		return nil, err
	}
	return wire.DecodeBools(body)
}

// scratch hands out the reused request buffer; callers hold c.mu.
func (c *Client) scratch() []byte { return c.buf[:0] }
