// Package chaos is the deterministic fault-schedule harness under the
// cluster simulation (`make sim-multi-seed`): a declarative schedule of
// fault events, a seeded generator that expands a seed into a schedule,
// a replaying runner whose event log is byte-identical across runs of
// the same seed, and the in-process TCP partition proxy the network
// faults act through. Process faults (kill/restart) are applied by the
// caller's hooks; disk faults (slow-fsync, disk-full) reach a live
// daemon through the failpoint endpoint mpcbfd exposes under -chaos
// (see repro/server.ChaosHandler).
//
// # Determinism contract
//
// Everything that enters the event log is derived from (seed, GenConfig)
// alone: event times are schedule offsets (never wall-clock), targets
// and arguments come from the seeded RNG, and the runner logs events in
// schedule order. Two runs of the same seed therefore produce
// byte-identical logs even though their wall-clock interleaving with
// live traffic differs — which is exactly what makes a failure
// reproducible from its manifest seed.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/hashing"
)

// Action names one fault (or its repair).
type Action string

const (
	// ActionKill SIGKILLs the target process.
	ActionKill Action = "kill"
	// ActionRestart restarts the target process on its data directory.
	ActionRestart Action = "restart"
	// ActionPartition drops the target link: the proxy kills live
	// connections and refuses new ones.
	ActionPartition Action = "partition"
	// ActionHeal restores the target link.
	ActionHeal Action = "heal"
	// ActionSlowFsync arms the target's WAL fsync delay; Arg is the
	// delay (time.Duration string).
	ActionSlowFsync Action = "slow-fsync"
	// ActionFsyncOK disarms the target's fsync delay.
	ActionFsyncOK Action = "fsync-ok"
	// ActionDiskFull makes the target's WAL writes fail with ENOSPC.
	ActionDiskFull Action = "disk-full"
	// ActionDiskOK clears the target's disk-full failpoint. The WAL
	// stays poisoned until the target is restarted — pair with
	// kill/restart to recover write availability.
	ActionDiskOK Action = "disk-ok"
)

// Event is one scheduled fault: at offset At from the run's start,
// apply Action to Target. Arg carries the action parameter (the
// slow-fsync delay); it is empty otherwise.
type Event struct {
	At     time.Duration
	Target string
	Action Action
	Arg    string
}

// String renders the canonical event-log line (without newline):
// fixed-width millisecond offset, target, action, and argument. This
// rendering IS the determinism contract — it contains no wall-clock
// component.
func (e Event) String() string {
	if e.Arg == "" {
		return fmt.Sprintf("%08dms %s %s", e.At.Milliseconds(), e.Target, e.Action)
	}
	return fmt.Sprintf("%08dms %s %s %s", e.At.Milliseconds(), e.Target, e.Action, e.Arg)
}

// Schedule is an ordered list of fault events.
type Schedule []Event

// Validate checks ordering and action arguments.
func (s Schedule) Validate() error {
	for i, e := range s {
		if i > 0 && e.At < s[i-1].At {
			return fmt.Errorf("chaos: schedule out of order at %d: %v after %v", i, e.At, s[i-1].At)
		}
		if e.Target == "" {
			return fmt.Errorf("chaos: event %d has no target", i)
		}
		switch e.Action {
		case ActionKill, ActionRestart, ActionPartition, ActionHeal,
			ActionFsyncOK, ActionDiskFull, ActionDiskOK:
			if e.Arg != "" {
				return fmt.Errorf("chaos: event %d (%s) takes no argument, got %q", i, e.Action, e.Arg)
			}
		case ActionSlowFsync:
			if _, err := time.ParseDuration(e.Arg); err != nil {
				return fmt.Errorf("chaos: event %d slow-fsync arg %q: %w", i, e.Arg, err)
			}
		default:
			return fmt.Errorf("chaos: event %d has unknown action %q", i, e.Action)
		}
	}
	return nil
}

// Format renders the whole schedule as canonical event-log text, one
// line per event. Runner.EventLog of a completed run equals Format of
// its schedule.
func (s Schedule) Format() []byte {
	var b strings.Builder
	for _, e := range s {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// GenConfig bounds the seeded schedule generator. Each named target
// contributes one fault/repair pair; the generator places the fault in
// the first 40% of the duration and the repair 15-35% of the duration
// later, so every fault is both live under traffic and healed with
// slack for convergence before the run ends.
type GenConfig struct {
	// Duration is the traffic window events are placed in.
	Duration time.Duration
	// Kill targets get a kill + restart pair.
	Kill []string
	// Partition targets (links) get a partition + heal pair.
	Partition []string
	// SlowFsync targets get a slow-fsync + fsync-ok pair; the delay is
	// drawn from 1-5ms.
	SlowFsync []string
}

// Generate expands a seed into a concrete schedule: same seed and
// config, same schedule, byte for byte. Pairs are placed independently
// per target, then the whole schedule is sorted by (At, Target, Action)
// so the order is total and reproducible.
func Generate(seed uint64, cfg GenConfig) Schedule {
	rng := hashing.NewRNG(seed)
	dur := cfg.Duration
	if dur <= 0 {
		dur = 3 * time.Second
	}
	// Quantize to milliseconds: the log renders milliseconds, and two
	// events a microsecond apart would order by a digit the log never
	// shows.
	ms := func(frac float64) time.Duration {
		return (time.Duration(frac*float64(dur)) / time.Millisecond) * time.Millisecond
	}
	place := func(target string, fault, repair Action, arg string) []Event {
		at := ms(0.05 + 0.35*rng.Float64())        // fault in [5%, 40%]
		healAt := at + ms(0.15+0.20*rng.Float64()) // repair 15-35% later
		return []Event{
			{At: at, Target: target, Action: fault, Arg: arg},
			{At: healAt, Target: target, Action: repair},
		}
	}
	var s Schedule
	for _, t := range cfg.Kill {
		s = append(s, place(t, ActionKill, ActionRestart, "")...)
	}
	for _, t := range cfg.Partition {
		s = append(s, place(t, ActionPartition, ActionHeal, "")...)
	}
	for _, t := range cfg.SlowFsync {
		delay := time.Duration(1+rng.Intn(5)) * time.Millisecond
		s = append(s, place(t, ActionSlowFsync, ActionFsyncOK, delay.String())...)
	}
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].At != s[j].At {
			return s[i].At < s[j].At
		}
		if s[i].Target != s[j].Target {
			return s[i].Target < s[j].Target
		}
		return s[i].Action < s[j].Action
	})
	return s
}
