package elastic

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	mpcbf "repro"
)

func testOptions() Options {
	return Options{
		Filter: mpcbf.Options{
			MemoryBits:    1 << 17, // 16 KiB
			ExpectedItems: 2000,
			Seed:          42,
		},
		Shards: 4,
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

// fillAndGrow inserts n keys, growing whenever the chain asks — the
// same apply-then-check loop the server store runs.
func fillAndGrow(t *testing.T, f *Filter, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if err := f.Insert(key(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if f.NeedsGrow() {
			if err := f.Grow(); err != nil {
				t.Fatalf("grow at %d: %v", i, err)
			}
		}
	}
}

func TestInsertContainsAcrossGrowth(t *testing.T) {
	f, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000 // 5x seed capacity
	fillAndGrow(t, f, 0, n)
	if f.Generations() < 2 {
		t.Fatalf("expected growth, still %d generation(s)", f.Generations())
	}
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d", f.Len(), n)
	}
	for i := 0; i < n; i++ {
		if !f.Contains(key(i)) {
			t.Fatalf("key %d lost after growth", i)
		}
	}
}

func TestDeleteRoutesToOwningGeneration(t *testing.T) {
	f, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 6000
	fillAndGrow(t, f, 0, n)
	if f.Generations() < 2 {
		t.Fatal("test requires a grown chain")
	}
	// Delete keys that live in the sealed generation as well as the head.
	for i := 0; i < n; i += 3 {
		if err := f.Delete(key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if got, want := f.Len(), n-n/3; got != want {
		t.Fatalf("Len after deletes = %d, want %d", got, want)
	}
	if err := f.Delete([]byte("never-inserted")); err == nil {
		t.Fatal("delete of absent key succeeded")
	}
}

func TestBatchOpsAcrossChain(t *testing.T) {
	f, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	var keys [][]byte
	for i := 0; i < 7000; i++ {
		keys = append(keys, key(i))
	}
	// Insert in batches, growing between them.
	for off := 0; off < len(keys); off += 500 {
		if err := f.InsertBatch(keys[off:off+500], 4); err != nil {
			t.Fatal(err)
		}
		for f.NeedsGrow() {
			if err := f.Grow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	probe := append([][]byte{[]byte("absent-a"), []byte("absent-b")}, keys...)
	flags := f.ContainsBatch(probe, 4)
	if flags[0] || flags[1] {
		// Statistically possible but with this geometry effectively never.
		t.Fatal("absent probe reported present")
	}
	for i, ok := range flags[2:] {
		if !ok {
			t.Fatalf("key %d missing from batch lookup", i)
		}
	}
	del, err := f.DeleteBatch(append([][]byte{[]byte("absent-a")}, keys[:100]...), 4)
	if err != nil {
		t.Fatal(err)
	}
	if del[0] {
		t.Fatal("absent key reported deleted")
	}
	for i, ok := range del[1:] {
		if !ok {
			t.Fatalf("key %d not deleted", i)
		}
	}
}

// TestChainFPRUnderTargetAt8x is the pinned acceptance test: grow the
// chain 8x past its seed capacity and the measured false positive rate
// must stay under the configured chain target — the property a single
// fixed-size filter loses catastrophically at the same load.
func TestChainFPRUnderTargetAt8x(t *testing.T) {
	opts := testOptions()
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	n := opts.Filter.ExpectedItems * 8
	fillAndGrow(t, f, 0, n)
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d", f.Len(), n)
	}

	const probes = 200000
	rng := rand.New(rand.NewSource(7))
	fp := 0
	buf := make([]byte, 16)
	for i := 0; i < probes; i++ {
		rng.Read(buf)
		if f.Contains(buf) {
			fp++
		}
	}
	measured := float64(fp) / probes
	target := f.TargetFPR()
	t.Logf("8x growth: %d gens, measured FPR %.6f, target %.6f, analytic %.6f",
		f.Generations(), measured, target, f.ExpectedFPR())
	if measured > target {
		t.Fatalf("measured FPR %.6f exceeds chain target %.6f at 8x capacity", measured, target)
	}

	// Contrast: the same seed geometry without growth, at the same load,
	// must be far over target — otherwise this test proves nothing.
	static, err := mpcbf.NewSharded(opts.Filter, opts.Shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := static.Insert(key(i)); err != nil {
			t.Fatalf("static insert %d: %v", i, err)
		}
	}
	sfp := 0
	rng = rand.New(rand.NewSource(7))
	for i := 0; i < probes; i++ {
		rng.Read(buf)
		if static.Contains(buf) {
			sfp++
		}
	}
	staticFPR := float64(sfp) / probes
	t.Logf("static filter at 8x load: FPR %.6f", staticFPR)
	if staticFPR <= target {
		t.Fatalf("static filter FPR %.6f unexpectedly under target %.6f — test geometry too loose", staticFPR, target)
	}
}

func TestGrowthScheduleDeterministic(t *testing.T) {
	a, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same inserts + same explicit grow points → byte-identical chains.
	for i := 0; i < 9000; i++ {
		if err := a.Insert(key(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(key(i)); err != nil {
			t.Fatal(err)
		}
		if a.NeedsGrow() != b.NeedsGrow() {
			t.Fatalf("divergent NeedsGrow at %d", i)
		}
		if a.NeedsGrow() {
			if err := a.Grow(); err != nil {
				t.Fatal(err)
			}
			if err := b.Grow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("identical histories produced different snapshots")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	fillAndGrow(t, f, 0, 9000)

	// Splice in an imported generation to cover the reshard shape.
	imp, err := mpcbf.NewSharded(mpcbf.Options{MemoryBits: 1 << 14, ExpectedItems: 300, Seed: 99}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := imp.Insert([]byte(fmt.Sprintf("imp-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	f.ImportGeneration(imp)

	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !IsElastic(blob) {
		t.Fatal("IsElastic rejects own snapshot")
	}
	g, err := UnmarshalFilter(blob)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() || g.Generations() != f.Generations() || g.Grows() != f.Grows() || g.Imports() != f.Imports() {
		t.Fatalf("shape mismatch after round trip: %+v vs %+v", g.Stats(), f.Stats())
	}
	for i := 0; i < 9000; i += 7 {
		if !g.Contains(key(i)) {
			t.Fatalf("key %d missing after round trip", i)
		}
	}
	if !g.Contains([]byte("imp-42")) {
		t.Fatal("imported generation key missing after round trip")
	}
	blob2, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-marshal not byte-identical")
	}

	// Post-round-trip growth must continue the original schedule.
	if err := g.Grow(); err != nil {
		t.Fatal(err)
	}
	if err := f.Grow(); err != nil {
		t.Fatal(err)
	}
	ab, _ := f.MarshalBinary()
	bb, _ := g.MarshalBinary()
	if !bytes.Equal(ab, bb) {
		t.Fatal("growth diverged after round trip")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	f, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	fillAndGrow(t, f, 0, 3000)
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:10],
		"truncated": blob[:len(blob)-5],
		"trailing":  append(append([]byte{}, blob...), 0xAB),
	}
	badMagic := append([]byte{}, blob...)
	badMagic[0] ^= 0xFF
	cases["magic"] = badMagic
	badVer := append([]byte{}, blob...)
	binary.LittleEndian.PutUint32(badVer[4:], 0xFFFF)
	cases["version"] = badVer
	for name, data := range cases {
		if _, err := UnmarshalFilter(data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
	if IsElastic(badMagic) {
		t.Error("IsElastic accepted wrong magic")
	}
}

func TestImportGenerationNeverInsertTarget(t *testing.T) {
	f, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	imp, err := mpcbf.NewSharded(mpcbf.Options{MemoryBits: 1 << 13, ExpectedItems: 100, Seed: 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := imp.Insert([]byte("moved")); err != nil {
		t.Fatal(err)
	}
	f.ImportGeneration(imp)
	st := f.Stats()
	if !st.Gens[len(st.Gens)-2].Imported || st.Gens[len(st.Gens)-1].Imported {
		t.Fatalf("imported generation not spliced below head: %+v", st.Gens)
	}
	if !f.Contains([]byte("moved")) {
		t.Fatal("imported key invisible")
	}
	before := imp.Len()
	if err := f.Insert([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if imp.Len() != before {
		t.Fatal("insert landed in imported generation")
	}
	// Deleting the moved key decrements the imported generation.
	if err := f.Delete([]byte("moved")); err != nil {
		t.Fatal(err)
	}
	if imp.Len() != before-1 {
		t.Fatal("delete did not route to imported generation")
	}
}

func TestEstimateCountSumsGenerations(t *testing.T) {
	f, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	k := []byte("hot-key")
	if err := f.Insert(k); err != nil {
		t.Fatal(err)
	}
	fillAndGrow(t, f, 0, 5000) // forces growth past the seed gen
	if f.Generations() < 2 {
		t.Fatal("chain did not grow")
	}
	if err := f.Insert(k); err != nil {
		t.Fatal(err)
	}
	if got := f.EstimateCount(k); got < 2 {
		t.Fatalf("EstimateCount = %d, want >= 2 across generations", got)
	}
}

func TestMaxGenerationsStopsGrowth(t *testing.T) {
	opts := testOptions()
	opts.MaxGenerations = 2
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillAndGrow(t, f, 0, 20000)
	if f.Generations() != 2 {
		t.Fatalf("generations = %d, want capped at 2", f.Generations())
	}
	if f.NeedsGrow() {
		t.Fatal("NeedsGrow past MaxGenerations")
	}
}

func TestResetRestoresSeedGeometry(t *testing.T) {
	f, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	fillAndGrow(t, f, 0, 9000)
	f.Reset()
	if f.Generations() != 1 || f.Len() != 0 || f.Grows() != 0 {
		t.Fatalf("reset left %d gens, %d items, %d grows", f.Generations(), f.Len(), f.Grows())
	}
	fresh, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.MarshalBinary()
	b, _ := fresh.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("reset chain differs from fresh chain")
	}
}

func TestTighteningBudgetsSumUnderTarget(t *testing.T) {
	f, err := New(Options{
		Filter: mpcbf.Options{MemoryBits: 1 << 13, ExpectedItems: 128, Seed: 1},
		Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := f.Grow(); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0.0
	for _, g := range f.Stats().Gens {
		sum += g.Budget
	}
	if sum >= f.TargetFPR() {
		t.Fatalf("budget sum %.9f not under target %.9f", sum, f.TargetFPR())
	}
}

func TestConcurrentChainOps(t *testing.T) {
	f, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	fillAndGrow(t, f, 0, 4000)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 4000; i < 8000; i++ {
			_ = f.Insert(key(i))
			if f.NeedsGrow() {
				_ = f.Grow()
			}
		}
	}()
	for i := 0; i < 4000; i++ {
		if !f.Contains(key(i)) {
			t.Errorf("key %d lost during concurrent growth", i)
			break
		}
		if i%256 == 0 {
			_ = f.Stats()
		}
	}
	<-done
}
