package cluster

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/hashing"
	"repro/server/wire"
)

// Node names one shard of the cluster: a primary that owns writes for
// its key range and any number of read replicas.
type Node struct {
	Primary  string
	Replicas []string
}

// ClientConfig describes a static cluster topology plus per-connection
// tuning. Routing is rendezvous (highest-random-weight) hashing over
// the primaries: each key scores every node with
// XXHash64(key, seed(primary)) and goes to the highest score, so nodes
// can be listed in any order and removing one only remaps its own keys.
type ClientConfig struct {
	Nodes []Node
	// Timeout bounds each request round trip (default 10s).
	Timeout time.Duration
	// ReconnectAttempts / BackoffBase / BackoffMax configure the
	// per-connection auto-reconnect (defaults 3, 50ms, 2s). Reads retry
	// transparently; interrupted mutations surface
	// client.ErrMaybeApplied.
	ReconnectAttempts int
	BackoffBase       time.Duration
	BackoffMax        time.Duration
}

// Client routes single-key and batch operations across the cluster.
// Batches are split per node, fanned out concurrently, and re-stitched
// in input order. Reads prefer replicas (round-robin) and fail over to
// the primary; writes always go to the primary. Safe for concurrent
// use.
type Client struct {
	cfg   ClientConfig
	nodes []*node
}

// node is one shard's connection state: addresses, their rendezvous
// seed, and lazily dialed connections.
type node struct {
	cfg      *ClientConfig
	primary  string
	replicas []string
	seed     uint64

	mu       sync.Mutex
	primaryC *client.Client
	replicaC []*client.Client
	rr       uint64 // round-robin cursor over replicas

	// Routing counters, atomic so Snapshot never blocks requests.
	requests     atomic.Uint64 // operations routed to this node
	batches      atomic.Uint64 // sub-batches fanned out to this node
	batchKeys    atomic.Uint64 // keys across those sub-batches
	failovers    atomic.Uint64 // read attempts past the first endpoint
	maybeApplied atomic.Uint64 // mutations that returned ErrMaybeApplied
}

// noteMutation tallies an ErrMaybeApplied outcome for the node.
func (n *node) noteMutation(err error) {
	if errors.Is(err, client.ErrMaybeApplied) {
		n.maybeApplied.Add(1)
	}
}

// NewClient validates the topology. Connections are dialed lazily, so a
// node that is down at construction time only fails operations routed
// to it.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	c := &Client{cfg: cfg}
	seen := map[string]bool{}
	for _, n := range cfg.Nodes {
		if n.Primary == "" {
			return nil, errors.New("cluster: node with empty primary address")
		}
		if seen[n.Primary] {
			return nil, fmt.Errorf("cluster: duplicate primary %s", n.Primary)
		}
		seen[n.Primary] = true
		c.nodes = append(c.nodes, &node{
			cfg:      &c.cfg,
			primary:  n.Primary,
			replicas: append([]string(nil), n.Replicas...),
			// Seeding the score hash with a hash of the address makes the
			// per-node score streams independent; the key's placement is a
			// pure function of (key, set of primary addresses).
			seed: hashing.XXHash64([]byte(n.Primary), 0x9e3779b97f4a7c15),
		})
	}
	return c, nil
}

// Close closes every open connection.
func (c *Client) Close() error {
	var first error
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.primaryC != nil {
			if err := n.primaryC.Close(); err != nil && first == nil {
				first = err
			}
		}
		for _, rc := range n.replicaC {
			if rc != nil {
				if err := rc.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		n.mu.Unlock()
	}
	return first
}

// route returns the index of the node owning key.
func (c *Client) route(key []byte) int {
	best, bestScore := 0, uint64(0)
	for i, n := range c.nodes {
		if s := hashing.XXHash64(key, n.seed); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

func (c *Client) owner(key []byte) *node { return c.nodes[c.route(key)] }

func (n *node) dialOpts() []client.Option {
	return []client.Option{
		client.WithTimeout(n.cfg.Timeout),
		client.WithReconnect(n.cfg.ReconnectAttempts, n.cfg.BackoffBase, n.cfg.BackoffMax),
	}
}

// primaryClient returns the node's primary connection, dialing it on
// first use.
func (n *node) primaryClient() (*client.Client, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.primaryC == nil {
		cl, err := client.Dial(n.primary, n.dialOpts()...)
		if err != nil {
			return nil, fmt.Errorf("cluster: dial primary %s: %w", n.primary, err)
		}
		n.primaryC = cl
	}
	return n.primaryC, nil
}

// readClients returns the connections to try for a read, in order: each
// replica once starting from the round-robin cursor, then the primary.
// Unreachable replicas are skipped (their slot redials on a later
// read).
func (n *node) readClients() []*client.Client {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*client.Client, 0, len(n.replicas)+1)
	if len(n.replicas) > 0 {
		start := int(n.rr % uint64(len(n.replicas)))
		n.rr++
		for i := 0; i < len(n.replicas); i++ {
			slot := (start + i) % len(n.replicas)
			if n.replicaC == nil {
				n.replicaC = make([]*client.Client, len(n.replicas))
			}
			if n.replicaC[slot] == nil {
				cl, err := client.Dial(n.replicas[slot], n.dialOpts()...)
				if err != nil {
					continue
				}
				n.replicaC[slot] = cl
			}
			out = append(out, n.replicaC[slot])
		}
	}
	if n.primaryC == nil {
		if cl, err := client.Dial(n.primary, n.dialOpts()...); err == nil {
			n.primaryC = cl
		}
	}
	if n.primaryC != nil {
		out = append(out, n.primaryC)
	}
	return out
}

// read runs op against the node's read set, failing over on transport
// errors. Operation-level errors (ServerError) are authoritative and
// returned as-is.
func (n *node) read(op func(*client.Client) error) error {
	n.requests.Add(1)
	clients := n.readClients()
	if len(clients) == 0 {
		return fmt.Errorf("cluster: no reachable endpoint for node %s", n.primary)
	}
	var last error
	for i, cl := range clients {
		if i > 0 {
			n.failovers.Add(1)
		}
		err := op(cl)
		if err == nil {
			return nil
		}
		var se *client.ServerError
		if errors.As(err, &se) {
			return err
		}
		last = err
	}
	return last
}

// Insert adds key on its owning primary.
func (c *Client) Insert(key []byte) error {
	return c.insert(key, client.Trace{})
}

func (c *Client) insert(key []byte, tc client.Trace) error {
	n := c.owner(key)
	n.requests.Add(1)
	cl, err := n.primaryClient()
	if err != nil {
		return err
	}
	err = cl.Traced(tc).Insert(key)
	n.noteMutation(err)
	return err
}

// Delete removes key on its owning primary.
func (c *Client) Delete(key []byte) error {
	return c.delete(key, client.Trace{})
}

func (c *Client) delete(key []byte, tc client.Trace) error {
	n := c.owner(key)
	n.requests.Add(1)
	cl, err := n.primaryClient()
	if err != nil {
		return err
	}
	err = cl.Traced(tc).Delete(key)
	n.noteMutation(err)
	return err
}

// InsertTTL adds key on its owning primary with a time-to-live. The
// node must be serving a windowed store.
func (c *Client) InsertTTL(key []byte, ttl time.Duration) error {
	return c.insertTTL(key, ttl, client.Trace{})
}

func (c *Client) insertTTL(key []byte, ttl time.Duration, tc client.Trace) error {
	n := c.owner(key)
	n.requests.Add(1)
	cl, err := n.primaryClient()
	if err != nil {
		return err
	}
	err = cl.Traced(tc).InsertTTL(key, ttl)
	n.noteMutation(err)
	return err
}

// Contains answers membership from the owning node's read set.
func (c *Client) Contains(key []byte) (bool, error) {
	return c.contains(key, client.Trace{})
}

func (c *Client) contains(key []byte, tc client.Trace) (bool, error) {
	var ok bool
	err := c.owner(key).read(func(cl *client.Client) error {
		var err error
		ok, err = cl.Traced(tc).Contains(key)
		return err
	})
	return ok, err
}

// EstimateCount returns the multiplicity upper bound from the owning
// node's read set.
func (c *Client) EstimateCount(key []byte) (int, error) {
	return c.estimateCount(key, client.Trace{})
}

func (c *Client) estimateCount(key []byte, tc client.Trace) (int, error) {
	var v int
	err := c.owner(key).read(func(cl *client.Client) error {
		var err error
		v, err = cl.Traced(tc).EstimateCount(key)
		return err
	})
	return v, err
}

// Len sums the element counts of all primaries. Keys are partitioned by
// the routing, so the sum is the cluster population.
func (c *Client) Len() (int, error) {
	total := 0
	for _, n := range c.nodes {
		var v int
		err := n.read(func(cl *client.Client) error {
			var err error
			v, err = cl.Len()
			return err
		})
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// split partitions keys by owning node, remembering each key's input
// position for re-stitching.
func (c *Client) split(keys [][]byte) (perNode [][][]byte, perNodeIdx [][]int) {
	perNode = make([][][]byte, len(c.nodes))
	perNodeIdx = make([][]int, len(c.nodes))
	for i, key := range keys {
		n := c.route(key)
		perNode[n] = append(perNode[n], key)
		perNodeIdx[n] = append(perNodeIdx[n], i)
	}
	return perNode, perNodeIdx
}

// fanOut runs fn once per node that owns a non-empty slice of keys,
// concurrently, and returns the first error.
func (c *Client) fanOut(perNode [][][]byte, fn func(n *node, keys [][]byte) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, keys := range perNode {
		if len(keys) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, n *node, keys [][]byte) {
			defer wg.Done()
			errs[i] = fn(n, keys)
		}(i, c.nodes[i], keys)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// InsertBatch inserts keys, split per owning primary and fanned out
// concurrently. On error some nodes' sub-batches may have been applied
// and others not: each sub-batch is atomic per node, the whole batch is
// not.
func (c *Client) InsertBatch(keys [][]byte) error {
	return c.insertBatch(keys, client.Trace{})
}

func (c *Client) insertBatch(keys [][]byte, tc client.Trace) error {
	perNode, _ := c.split(keys)
	return c.fanOut(perNode, func(n *node, sub [][]byte) error {
		n.requests.Add(1)
		n.batches.Add(1)
		n.batchKeys.Add(uint64(len(sub)))
		cl, err := n.primaryClient()
		if err != nil {
			return err
		}
		err = cl.Traced(tc).InsertBatch(sub)
		n.noteMutation(err)
		return err
	})
}

// InsertTTLBatch inserts keys with a shared time-to-live, split per
// owning primary like InsertBatch. The same partial-application caveat
// applies: each node's sub-batch is atomic, the whole batch is not.
func (c *Client) InsertTTLBatch(keys [][]byte, ttl time.Duration) error {
	return c.insertTTLBatch(keys, ttl, client.Trace{})
}

func (c *Client) insertTTLBatch(keys [][]byte, ttl time.Duration, tc client.Trace) error {
	perNode, _ := c.split(keys)
	return c.fanOut(perNode, func(n *node, sub [][]byte) error {
		n.requests.Add(1)
		n.batches.Add(1)
		n.batchKeys.Add(uint64(len(sub)))
		cl, err := n.primaryClient()
		if err != nil {
			return err
		}
		err = cl.Traced(tc).InsertTTLBatch(sub, ttl)
		n.noteMutation(err)
		return err
	})
}

// WindowStats collects the sliding-window state of every node's
// primary, keyed by primary address. Fails if any node is unreachable
// or not serving a windowed store, so callers never mistake a partial
// view for the whole cluster.
func (c *Client) WindowStats() (map[string]wire.WindowStats, error) {
	var mu sync.Mutex
	out := make(map[string]wire.WindowStats, len(c.nodes))
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			n.requests.Add(1)
			cl, err := n.primaryClient()
			if err != nil {
				errs[i] = err
				return
			}
			st, err := cl.WindowStats()
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			out[n.primary] = st
			mu.Unlock()
		}(i, n)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteBatch deletes keys across the cluster and re-stitches the
// per-key removal flags in input order.
func (c *Client) DeleteBatch(keys [][]byte) ([]bool, error) {
	return c.deleteBatch(keys, client.Trace{})
}

func (c *Client) deleteBatch(keys [][]byte, tc client.Trace) ([]bool, error) {
	perNode, perNodeIdx := c.split(keys)
	out := make([]bool, len(keys))
	err := c.fanOut(perNode, func(n *node, sub [][]byte) error {
		n.requests.Add(1)
		n.batches.Add(1)
		n.batchKeys.Add(uint64(len(sub)))
		cl, err := n.primaryClient()
		if err != nil {
			return err
		}
		flags, err := cl.Traced(tc).DeleteBatch(sub)
		if err != nil {
			n.noteMutation(err)
			return err
		}
		return c.stitch(out, perNodeIdx, n, flags)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ContainsBatch answers membership for keys across the cluster,
// re-stitched in input order. Each node's sub-batch goes to its read
// set with failover.
func (c *Client) ContainsBatch(keys [][]byte) ([]bool, error) {
	return c.containsBatch(keys, client.Trace{})
}

func (c *Client) containsBatch(keys [][]byte, tc client.Trace) ([]bool, error) {
	perNode, perNodeIdx := c.split(keys)
	out := make([]bool, len(keys))
	err := c.fanOut(perNode, func(n *node, sub [][]byte) error {
		n.batches.Add(1)
		n.batchKeys.Add(uint64(len(sub)))
		var flags []bool
		rerr := n.read(func(cl *client.Client) error {
			var err error
			flags, err = cl.Traced(tc).ContainsBatch(sub)
			return err
		})
		if rerr != nil {
			return rerr
		}
		return c.stitch(out, perNodeIdx, n, flags)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// stitch scatters one node's order-preserving flags back to the input
// positions recorded by split. Disjoint index sets per node make the
// concurrent writes race-free.
func (c *Client) stitch(out []bool, perNodeIdx [][]int, n *node, flags []bool) error {
	var idx []int
	for i, cand := range c.nodes {
		if cand == n {
			idx = perNodeIdx[i]
			break
		}
	}
	if len(flags) != len(idx) {
		return fmt.Errorf("cluster: node %s answered %d flags for %d keys", n.primary, len(flags), len(idx))
	}
	for i, pos := range idx {
		out[pos] = flags[i]
	}
	return nil
}

// Traced returns a view whose operations all carry the trace context
// tc. Every sub-batch of a fanned-out batch is sent inside a TRACE
// envelope bearing the same trace id, so the /debug/traces rings of
// every node that handled part of the batch hold spans with that id —
// the mpcbf-trace stitcher joins them back into one fan-out tree.
// Create one context per logical operation with client.NewTrace.
func (c *Client) Traced(tc client.Trace) TracedCluster {
	return TracedCluster{c: c, tc: tc}
}

// TracedCluster is a view of a cluster Client whose operations carry a
// trace context; see Client.Traced. It holds no state of its own and is
// safe for concurrent use (though sharing one trace id across unrelated
// operations makes stitched traces ambiguous).
type TracedCluster struct {
	c  *Client
	tc client.Trace
}

// Context returns the trace context this view stamps on operations.
func (t TracedCluster) Context() client.Trace { return t.tc }

// Insert adds key on its owning primary, traced.
func (t TracedCluster) Insert(key []byte) error { return t.c.insert(key, t.tc) }

// Delete removes key on its owning primary, traced.
func (t TracedCluster) Delete(key []byte) error { return t.c.delete(key, t.tc) }

// InsertTTL adds key with a time-to-live on its owning primary, traced.
func (t TracedCluster) InsertTTL(key []byte, ttl time.Duration) error {
	return t.c.insertTTL(key, ttl, t.tc)
}

// Contains answers membership from the owning node's read set, traced.
func (t TracedCluster) Contains(key []byte) (bool, error) { return t.c.contains(key, t.tc) }

// EstimateCount returns the multiplicity upper bound, traced.
func (t TracedCluster) EstimateCount(key []byte) (int, error) { return t.c.estimateCount(key, t.tc) }

// InsertBatch inserts keys with every per-node sub-batch carrying the
// view's trace id.
func (t TracedCluster) InsertBatch(keys [][]byte) error { return t.c.insertBatch(keys, t.tc) }

// InsertTTLBatch inserts keys sharing one TTL, every sub-batch traced.
func (t TracedCluster) InsertTTLBatch(keys [][]byte, ttl time.Duration) error {
	return t.c.insertTTLBatch(keys, ttl, t.tc)
}

// DeleteBatch deletes keys across the cluster, every sub-batch traced.
func (t TracedCluster) DeleteBatch(keys [][]byte) ([]bool, error) {
	return t.c.deleteBatch(keys, t.tc)
}

// ContainsBatch answers membership across the cluster, every sub-batch
// traced.
func (t TracedCluster) ContainsBatch(keys [][]byte) ([]bool, error) {
	return t.c.containsBatch(keys, t.tc)
}

// NodeStats is a point-in-time view of one node's routing counters plus
// the per-connection stats of every dialed endpoint.
type NodeStats struct {
	Primary      string `json:"primary"`
	Requests     uint64 `json:"requests"`
	Batches      uint64 `json:"batches"`
	BatchKeys    uint64 `json:"batch_keys"`
	Failovers    uint64 `json:"failovers"`
	MaybeApplied uint64 `json:"maybe_applied"`

	// Endpoint connection counters, keyed by address; only endpoints
	// dialed so far appear.
	Endpoints map[string]client.Stats `json:"endpoints,omitempty"`
}

// ClientStats is a point-in-time view of the cluster client's routing.
type ClientStats struct {
	Nodes []NodeStats `json:"nodes"`
}

// Snapshot returns per-node routing and connection counters.
func (c *Client) Snapshot() ClientStats {
	st := ClientStats{Nodes: make([]NodeStats, 0, len(c.nodes))}
	for _, n := range c.nodes {
		ns := NodeStats{
			Primary:      n.primary,
			Requests:     n.requests.Load(),
			Batches:      n.batches.Load(),
			BatchKeys:    n.batchKeys.Load(),
			Failovers:    n.failovers.Load(),
			MaybeApplied: n.maybeApplied.Load(),
		}
		n.mu.Lock()
		if n.primaryC != nil {
			ns.Endpoints = map[string]client.Stats{n.primary: n.primaryC.Stats()}
		}
		for i, rc := range n.replicaC {
			if rc == nil {
				continue
			}
			if ns.Endpoints == nil {
				ns.Endpoints = map[string]client.Stats{}
			}
			ns.Endpoints[n.replicas[i]] = rc.Stats()
		}
		n.mu.Unlock()
		st.Nodes = append(st.Nodes, ns)
	}
	return st
}

// WriteProm appends the cluster client's routing counters to a
// Prometheus exposition, labeled by owning primary — for embedding
// mpcbfd consumers into their own /metrics.
func (c *Client) WriteProm(w io.Writer) {
	st := c.Snapshot()
	emit := func(name, help string, val func(ns NodeStats) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, ns := range st.Nodes {
			fmt.Fprintf(w, "%s{node=%q} %d\n", name, ns.Primary, val(ns))
		}
	}
	emit("mpcbf_cluster_requests_total", "Operations routed to each node.",
		func(ns NodeStats) uint64 { return ns.Requests })
	emit("mpcbf_cluster_batches_total", "Sub-batches fanned out to each node.",
		func(ns NodeStats) uint64 { return ns.Batches })
	emit("mpcbf_cluster_batch_keys_total", "Keys across fanned-out sub-batches, by node.",
		func(ns NodeStats) uint64 { return ns.BatchKeys })
	emit("mpcbf_cluster_failovers_total", "Read attempts that fell past a node's first endpoint.",
		func(ns NodeStats) uint64 { return ns.Failovers })
	emit("mpcbf_cluster_maybe_applied_total", "Mutations interrupted in transit (ErrMaybeApplied), by node.",
		func(ns NodeStats) uint64 { return ns.MaybeApplied })
}
