// Command mpcbfd serves a durable sharded MPCBF over TCP: a
// length-prefixed binary protocol (see repro/server/wire) on -addr, and
// an HTTP sidecar with /healthz, /readyz, /metrics, /debug/vars, and
// /debug/requests on -http.
//
// State survives restarts: every acknowledged mutation is written to a
// CRC-framed write-ahead log (fsync policy -fsync), and the filter is
// periodically snapshotted (-snapshot-interval); startup loads the
// newest valid snapshot and replays the WAL tail. SIGTERM/SIGINT drain
// connections, take a final snapshot, and exit cleanly.
//
// With -window the daemon serves a time-decaying sliding-window filter
// (see repro/window): inserts expire after the configured span, aged
// out in -generations discrete steps. INSERT_TTL caps individual keys
// at shorter lifetimes; WINDOW_STATS reports the generation ring.
//
// Every daemon also multiplexes independent named filters (namespaces):
// CREATE_NS/DROP_NS/LIST_NS/NS_STATS administer them, and any data
// operation wrapped in the NAMESPACED envelope targets one by name.
// -ns-mem and -ns-n set the default per-namespace geometry, -ns-quota
// bounds the total resident namespace memory (least-recently-used
// namespaces are evicted to per-namespace snapshot files and recovered
// transparently on next touch), and -ns-idle evicts namespaces untouched
// for the given duration.
//
// With -replicate-from the daemon runs as a read replica: it mirrors
// the named primary's WAL over the binary protocol, serves reads
// locally, and answers mutations with a READONLY redirect to the
// primary. -read-only alone serves an existing data directory without
// accepting writes.
//
// Observability:
//
//   - Logs are structured (log/slog): -log-format picks text or json,
//     -log-level sets the floor.
//   - -trace-sample N records per-stage timings (decode, filter, WAL,
//     fsync, encode) for 1 in N requests; -slow-op D additionally logs
//     and records any request slower than D. Both feed the JSON
//     document at /debug/requests.
//   - -debug-addr starts a second HTTP listener with net/http/pprof
//     (plus /debug/vars and /debug/requests), kept off the operational
//     sidecar so profiling exposure is an explicit opt-in.
//
// With -chaos the HTTP sidecar additionally mounts /chaos, the WAL
// failpoint control endpoint (fsync_delay=DURATION injects latency
// into every WAL fsync; disk_full=true|false makes WAL writes fail with
// ENOSPC until cleared or restarted). It exists for the deterministic
// fault-schedule harness (internal/chaos, `make sim-multi-seed`) and
// must never be enabled on an operational daemon.
//
// Usage:
//
//	mpcbfd -addr :7070 -http :7071 -dir /var/lib/mpcbfd \
//	       -mem 67108864 -n 1000000 -shards 16 -fsync always
//
//	mpcbfd -addr :7170 -dir /var/lib/mpcbfd-replica \
//	       -mem 67108864 -n 1000000 -shards 16 \
//	       -replicate-from primary-host:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	mpcbf "repro"
	"repro/cluster"
	"repro/server"
	"repro/server/ns"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "TCP listen address for the binary protocol")
		httpAddr = flag.String("http", ":7071", "HTTP sidecar address ('' disables)")
		dir      = flag.String("dir", "mpcbfd-data", "data directory (WAL + snapshots)")

		mem    = flag.Int("mem", 1<<26, "filter memory budget in bits (fresh store only)")
		items  = flag.Int("n", 1_000_000, "expected distinct items (fresh store only)")
		shards = flag.Int("shards", 16, "shard count (fresh store only)")
		k      = flag.Int("k", 3, "hash functions (fresh store only)")
		g      = flag.Int("g", 1, "memory accesses per key (fresh store only)")
		seed   = flag.Uint("seed", 1, "hash seed (fresh store only)")

		windowSpan  = flag.Duration("window", 0, "sliding-window span; 0 serves a plain counting filter")
		generations = flag.Int("generations", 4, "generations in the sliding window (with -window)")

		elasticMode = flag.Bool("elastic", false, "serve an elastic filter chain that grows new generations as the head saturates (mutually exclusive with -window)")
		elasticFPR  = flag.Float64("elastic-fpr", 0, "chain-wide false positive bound with -elastic (0: derived from the seed geometry)")

		nsQuota = flag.Int64("ns-quota", 0, "memory budget in bytes across all named namespaces (0: unlimited); least-recently-used namespaces are evicted to disk under pressure")
		nsIdle  = flag.Duration("ns-idle", 0, "evict namespaces untouched for this long (0: never)")
		nsMem   = flag.Int("ns-mem", 0, "default per-namespace memory budget in bits (0: built-in default)")
		nsItems = flag.Int("ns-n", 0, "default per-namespace expected distinct items (0: built-in default)")

		fsync        = flag.String("fsync", "always", "WAL fsync policy: always|interval|never")
		fsyncEvery   = flag.Duration("fsync-interval", 100*time.Millisecond, "fsync period under -fsync interval")
		snapEvery    = flag.Duration("snapshot-interval", 5*time.Minute, "background snapshot period (0 disables)")
		maxConns     = flag.Int("max-conns", 1024, "max simultaneous connections")
		maxFrame     = flag.Int("max-frame", 1<<20, "max request frame bytes")
		idleTimeout  = flag.Duration("idle-timeout", 5*time.Minute, "close idle connections after")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "shutdown drain grace period")

		replicateFrom = flag.String("replicate-from", "", "primary address to mirror; implies -read-only and disables snapshots")
		readOnly      = flag.Bool("read-only", false, "reject mutations with a READONLY redirect")

		chaos = flag.Bool("chaos", false, "expose the WAL failpoint control endpoint (/chaos) on the HTTP sidecar; fault-injection harness use only")

		logFormat   = flag.String("log-format", "text", "log output format: text|json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
		traceSample = flag.Int("trace-sample", 0, "trace per-stage timings for 1 in N requests (0 disables)")
		slowOp      = flag.Duration("slow-op", 0, "log and record requests slower than this (0 disables)")
		debugAddr   = flag.String("debug-addr", "", "debug HTTP address with /debug/pprof ('' disables)")
	)
	flag.Parse()

	log, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(log)

	policy, err := server.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	replica := *replicateFrom != ""
	if replica {
		// A replica's WAL mirrors the primary; local snapshots would
		// rotate it and desynchronize the mirror.
		*snapEvery = 0
	}

	store, err := server.OpenStore(server.StoreOptions{
		Dir: *dir,
		Filter: mpcbf.Options{
			MemoryBits:     *mem,
			ExpectedItems:  *items,
			HashFunctions:  *k,
			MemoryAccesses: *g,
			Seed:           uint32(*seed),
		},
		Shards:      *shards,
		Window:      *windowSpan,
		Generations: *generations,
		Elastic:     *elasticMode,
		ElasticFPR:  *elasticFPR,
		NsDefaults: ns.Config{
			MemoryBits:    *nsMem,
			ExpectedItems: *nsItems,
		},
		NsQuota:       *nsQuota,
		NsIdleAfter:   *nsIdle,
		Sync:          policy,
		SyncEvery:     *fsyncEvery,
		SnapshotEvery: *snapEvery,
		Replica:       replica,
		Log:           log,
	})
	if err != nil {
		fatal(err)
	}
	st := store.Stats()
	if w := store.Window(); w != nil {
		log.Info("store open", "dir", *dir, "elements", store.Len(), "replayed", st.ReplayedRecords,
			"window", w.Span(), "generations", w.Generations(), "rotate_every", w.RotateEvery())
	} else if el := store.Elastic(); el != nil {
		log.Info("store open", "dir", *dir, "elements", store.Len(), "replayed", st.ReplayedRecords,
			"elastic_generations", el.Generations(), "target_fpr", el.TargetFPR())
	} else {
		log.Info("store open", "dir", *dir, "elements", store.Len(), "replayed", st.ReplayedRecords)
	}

	cfg := server.Config{
		Addr:          *addr,
		MaxConns:      *maxConns,
		MaxFrameBytes: *maxFrame,
		IdleTimeout:   *idleTimeout,
		ReadOnly:      *readOnly || replica,
		PrimaryAddr:   *replicateFrom,
		TraceSample:   *traceSample,
		SlowOp:        *slowOp,
		Chaos:         *chaos,
		Log:           log,
	}
	if *chaos {
		log.Warn("chaos failpoint endpoint enabled", "path", "/chaos")
	}

	var rep *cluster.Replica
	repCtx, repCancel := context.WithCancel(context.Background())
	repDone := make(chan struct{})
	close(repDone)
	if replica {
		rep, err = cluster.NewReplica(cluster.ReplicaConfig{
			PrimaryAddr: *replicateFrom,
			Store:       store,
			Log:         log,
		})
		if err != nil {
			fatal(err)
		}
		cfg.Extra = rep
		// A replica that has never applied a stream frame serves
		// arbitrarily stale state; hold /readyz at 503 until then.
		cfg.Ready = rep.Ready
		repDone = make(chan struct{})
		go func() { defer close(repDone); rep.Run(repCtx) }()
		log.Info("replicating", "primary", *replicateFrom)
	}
	defer repCancel()

	srv := server.New(store, cfg, nil)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("http sidecar failed", "error", err)
			}
		}()
		log.Info("http sidecar listening", "addr", *httpAddr)
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("debug listener failed", "error", err)
			}
		}()
		log.Info("debug listener with pprof", "addr", *debugAddr)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Info("serving", "addr", ln.Addr().String(), "fsync", policy.String(), "shards", *shards,
		"trace_sample", *traceSample, "slow_op", *slowOp)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Info("draining", "signal", s.String())
	case err := <-serveErr:
		if err != nil {
			log.Error("serve failed", "error", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Error("shutdown incomplete", "error", err)
	}
	if httpSrv != nil {
		httpSrv.Shutdown(ctx)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(ctx)
	}
	// Stop consuming the replication stream before closing the store it
	// applies into.
	repCancel()
	<-repDone
	if err := store.Close(); err != nil {
		fatal(fmt.Errorf("final snapshot: %w", err))
	}
	if replica {
		log.Info("clean shutdown (mirror position durable)")
	} else {
		log.Info("clean shutdown (final snapshot written)")
	}
}

// buildLogger assembles the process logger from the -log-format and
// -log-level flags. Logs go to stdout: the daemon's only stdout output
// is operational, and keeping one stream preserves ordering.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stdout, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stdout, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpcbfd:", err)
	os.Exit(1)
}
