package cluster

import (
	"fmt"
	"testing"
)

// TestNamespaceRoutingIdentity pins the compatibility contract of
// namespace-aware routing: the default (empty) namespace perturbs the
// rendezvous seed by the XOR identity, so introducing namespaces moves
// not a single pre-existing key.
func TestNamespaceRoutingIdentity(t *testing.T) {
	c, err := NewClient(ClientConfig{Nodes: []Node{
		{Primary: "10.0.0.1:4171"},
		{Primary: "10.0.0.2:4171"},
		{Primary: "10.0.0.3:4171"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	h := nsSeed(nil)
	if h != 0 {
		t.Fatalf("nsSeed(default) = %#x, want 0", h)
	}
	for i := 0; i < 10000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if got, want := c.routeNS(h, key), c.route(key); got != want {
			t.Fatalf("key %q: routeNS(default) = node %d, route = node %d", key, got, want)
		}
	}
}

// TestNamespaceRoutingSpreads checks that distinct namespaces place the
// same key independently: across many keys, at least some must land on
// different nodes under different namespace seeds (a collapsed seed
// would silently pile every tenant onto one placement).
func TestNamespaceRoutingSpreads(t *testing.T) {
	c, err := NewClient(ClientConfig{Nodes: []Node{
		{Primary: "10.0.0.1:4171"},
		{Primary: "10.0.0.2:4171"},
		{Primary: "10.0.0.3:4171"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ha, hb := nsSeed([]byte("tenant-a")), nsSeed([]byte("tenant-b"))
	if ha == hb || ha == 0 || hb == 0 {
		t.Fatalf("namespace seeds not independent: a=%#x b=%#x", ha, hb)
	}
	moved := 0
	for i := 0; i < 10000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if c.routeNS(ha, key) != c.routeNS(hb, key) {
			moved++
		}
	}
	// With 3 nodes, independent placements differ for ~2/3 of keys;
	// anything clearly above zero proves independence without flaking.
	if moved < 1000 {
		t.Fatalf("only %d/10000 keys placed differently across namespaces", moved)
	}
}
