// Package mlccbf implements a Multilayer Compressed Counting Bloom Filter
// in the style of Ficara, Giordano, Procissi and Vitucci (INFOCOM 2008),
// the structure from which the paper's HCBF borrows its hierarchy: counter
// values are stored as chains across layers of bit vectors, where layer
// j+1 holds exactly one bit per set bit of layer j (a unary/Huffman-style
// code), indexed by popcount.
//
// The crucial difference from MPCBF is that the hierarchy here is global:
// one set of layers spans the whole filter. Incrementing a counter inserts
// a bit into a layer shared by *all* counters, which costs a shift of the
// layer tail — O(m) work in the worst case, against MPCBF's O(w) bounded
// in-word shift. This package exists to make that design trade-off
// measurable (experiment ext3): same accuracy mechanism, very different
// update cost.
//
// Layers are stored in growable bit arrays with spare capacity so the
// amortized shift cost is visible but allocation noise is not.
package mlccbf

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/hashing"
)

// ErrUnderflow is returned when Dec/Delete targets a zero counter.
var ErrUnderflow = errors.New("mlccbf: counter underflow")

// maxLayers bounds the counter values representable (counter value ==
// chain depth); 16 mirrors the information content of a 4-bit counter.
const maxLayers = 16

// ErrCounterOverflow is returned when an increment would exceed the
// deepest layer.
var ErrCounterOverflow = errors.New("mlccbf: counter exceeds layer depth")

// Filter is a multilayer compressed CBF with an m-bit first layer and k
// hash functions.
type Filter struct {
	// layers[0] is the fixed m-bit membership layer; deeper layers hold
	// one bit per set bit of the layer above and grow/shrink on updates.
	layers []*layer
	m, k   int
	hasher hashing.Hasher
	count  int
	// ShiftedBits counts the total bits moved by layer shifts — the
	// update-cost metric ext3 reports.
	ShiftedBits int64
}

// layer is a growable bit sequence.
type layer struct {
	bits *bitvec.Vector
	n    int // bits in use
}

func newLayer(capacity int) *layer {
	if capacity < 64 {
		capacity = 64
	}
	return &layer{bits: bitvec.New(capacity)}
}

// ensure grows the backing vector to hold at least n bits.
func (l *layer) ensure(n int) {
	if n <= l.bits.Len() {
		return
	}
	grown := bitvec.New(l.bits.Len() * 2)
	for grown.Len() < n {
		grown = bitvec.New(grown.Len() * 2)
	}
	for i := 0; i < l.n; i++ {
		if l.bits.Get(i) {
			grown.Set(i, true)
		}
	}
	l.bits = grown
}

// insertZero inserts a cleared bit at position pos, shifting the tail
// right. It returns the number of bits moved.
func (l *layer) insertZero(pos int) int {
	l.ensure(l.n + 1)
	l.bits.ShiftRightOne(pos, l.n+1)
	l.n++
	return l.n - pos
}

// removeBit deletes the bit at pos, shifting the tail left. It returns
// the number of bits moved.
func (l *layer) removeBit(pos int) int {
	l.bits.ShiftLeftOne(pos, l.n)
	l.n--
	return l.n - pos + 1
}

// New returns a filter with an m-bit first layer and k hash functions.
func New(m, k int, seed uint32) (*Filter, error) {
	if m <= 0 || k <= 0 {
		return nil, fmt.Errorf("mlccbf: m and k must be positive (m=%d, k=%d)", m, k)
	}
	first := newLayer(m)
	first.n = m
	return &Filter{
		layers: []*layer{first},
		m:      m,
		k:      k,
		hasher: hashing.NewHasher(seed),
	}, nil
}

// M returns the first-layer width; K the number of hash functions.
func (f *Filter) M() int { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count returns the current number of elements.
func (f *Filter) Count() int { return f.count }

// MemoryBits returns the bits currently in use across all layers (the
// compressed size; backing capacity is an implementation detail).
func (f *Filter) MemoryBits() int {
	total := 0
	for _, l := range f.layers {
		total += l.n
	}
	return total
}

// Layers returns the in-use sizes of all layers.
func (f *Filter) Layers() []int {
	out := make([]int, len(f.layers))
	for i, l := range f.layers {
		out[i] = l.n
	}
	return out
}

func (f *Filter) indices(key []byte) []int {
	s := f.hasher.NewIndexStream(key)
	idx := make([]int, f.k)
	for i := range idx {
		idx[i] = s.Slot(i, f.m)
	}
	return idx
}

// inc increments the counter rooted at first-layer position slot.
func (f *Filter) inc(slot int) error {
	pos := slot
	for depth := 0; ; depth++ {
		if depth >= maxLayers {
			return ErrCounterOverflow
		}
		l := f.layers[depth]
		if !l.bits.Get(pos) {
			// First zero of the chain: flip it and give it a zero child.
			childIdx := l.bits.Ones(0, pos)
			l.bits.Set(pos, true)
			if depth+1 >= len(f.layers) {
				f.layers = append(f.layers, newLayer(64))
			}
			f.ShiftedBits += int64(f.layers[depth+1].insertZero(childIdx))
			return nil
		}
		childIdx := l.bits.Ones(0, pos)
		pos = childIdx
	}
}

// dec decrements the counter rooted at slot.
func (f *Filter) dec(slot int) error {
	pos := slot
	if !f.layers[0].bits.Get(pos) {
		return ErrUnderflow
	}
	for depth := 0; ; depth++ {
		l := f.layers[depth]
		childIdx := l.bits.Ones(0, pos)
		child := f.layers[depth+1]
		if !child.bits.Get(childIdx) {
			// Chain ends here: remove the zero child, clear this bit.
			f.ShiftedBits += int64(child.removeBit(childIdx))
			l.bits.Set(pos, false)
			return nil
		}
		pos = childIdx
	}
}

// Insert adds key.
func (f *Filter) Insert(key []byte) error {
	for _, idx := range f.indices(key) {
		if err := f.inc(idx); err != nil {
			return err
		}
	}
	f.count++
	return nil
}

// Delete removes key.
func (f *Filter) Delete(key []byte) error {
	var underflow bool
	for _, idx := range f.indices(key) {
		if err := f.dec(idx); err != nil {
			underflow = true
		}
	}
	f.count--
	if underflow {
		return ErrUnderflow
	}
	return nil
}

// Contains reports whether key may be in the set (first layer only, like
// every hierarchy-coded CBF).
func (f *Filter) Contains(key []byte) bool {
	s := f.hasher.NewIndexStream(key)
	for i := 0; i < f.k; i++ {
		if !f.layers[0].bits.Get(s.Slot(i, f.m)) {
			return false
		}
	}
	return true
}

// CountOf returns the minimum counter value over key's positions.
func (f *Filter) CountOf(key []byte) int {
	min := maxLayers + 1
	for _, idx := range f.indices(key) {
		c := f.counter(idx)
		if c < min {
			min = c
		}
	}
	return min
}

// counter walks the chain rooted at slot.
func (f *Filter) counter(slot int) int {
	pos := slot
	c := 0
	for depth := 0; depth < len(f.layers); depth++ {
		l := f.layers[depth]
		if !l.bits.Get(pos) {
			return c
		}
		c++
		pos = l.bits.Ones(0, pos)
	}
	return c
}

// Reset clears the filter.
func (f *Filter) Reset() {
	first := newLayer(f.m)
	first.n = f.m
	f.layers = []*layer{first}
	f.count = 0
	f.ShiftedBits = 0
}
