package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace serialization: a compact binary format so synthesized workloads
// can be generated once at full scale and replayed across experiment runs
// (or shared between machines), the role the CAIDA pcap files play in the
// paper's setup.
//
// Format (little endian):
//
//	magic "MPTR" | version u32 | uniqueFlows u64 | totalPackets u64
//	flows: uniqueFlows x (src u32, dst u32)
//	packets: totalPackets x flowIndex uvarint (index into the flow table)

const (
	traceMagic   = "MPTR"
	traceVersion = 1
)

// WriteTo serializes the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(traceMagic)); err != nil {
		return n, err
	}
	var hdr [4 + 8 + 8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(t.Flows)))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(len(t.Packets)))
	if err := count(bw.Write(hdr[:])); err != nil {
		return n, err
	}
	index := make(map[Flow]uint64, len(t.Flows))
	var pair [8]byte
	for i, f := range t.Flows {
		index[f] = uint64(i)
		binary.LittleEndian.PutUint32(pair[0:4], f.Src)
		binary.LittleEndian.PutUint32(pair[4:8], f.Dst)
		if err := count(bw.Write(pair[:])); err != nil {
			return n, err
		}
	}
	var varint [binary.MaxVarintLen64]byte
	for _, p := range t.Packets {
		idx, ok := index[p]
		if !ok {
			return n, fmt.Errorf("dataset: packet flow %v not in flow table", p)
		}
		k := binary.PutUvarint(varint[:], idx)
		if err := count(bw.Write(varint[:k])); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading trace magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, errors.New("dataset: not a trace file")
	}
	hdr := make([]byte, 4+8+8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("dataset: reading trace header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != traceVersion {
		return nil, fmt.Errorf("dataset: unsupported trace version %d", v)
	}
	nFlows := binary.LittleEndian.Uint64(hdr[4:12])
	nPackets := binary.LittleEndian.Uint64(hdr[12:20])
	const maxReasonable = 1 << 32
	if nFlows == 0 || nFlows > maxReasonable || nPackets < nFlows || nPackets > maxReasonable {
		return nil, fmt.Errorf("dataset: implausible trace sizes (%d flows, %d packets)", nFlows, nPackets)
	}
	tr := &Trace{
		Flows:   make([]Flow, nFlows),
		Packets: make([]Flow, 0, nPackets),
	}
	var pair [8]byte
	for i := range tr.Flows {
		if _, err := io.ReadFull(br, pair[:]); err != nil {
			return nil, fmt.Errorf("dataset: reading flow %d: %w", i, err)
		}
		tr.Flows[i] = Flow{
			Src: binary.LittleEndian.Uint32(pair[0:4]),
			Dst: binary.LittleEndian.Uint32(pair[4:8]),
		}
	}
	for i := uint64(0); i < nPackets; i++ {
		idx, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("dataset: reading packet %d: %w", i, err)
		}
		if idx >= nFlows {
			return nil, fmt.Errorf("dataset: packet %d references flow %d of %d", i, idx, nFlows)
		}
		tr.Packets = append(tr.Packets, tr.Flows[idx])
	}
	return tr, nil
}
