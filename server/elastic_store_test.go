package server

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	mpcbf "repro"
	"repro/server/ns"
)

// Small seed geometry so growth triggers within a few thousand inserts.
func testElasticStoreOptions(dir string) StoreOptions {
	return StoreOptions{
		Dir:        dir,
		Filter:     mpcbf.Options{MemoryBits: 1 << 15, ExpectedItems: 800, Seed: 42},
		Shards:     2,
		Elastic:    true,
		ElasticFPR: 0.02,
		Sync:       SyncAlways,
		Log:        discardLog(),
	}
}

func TestElasticStoreGrowsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testElasticStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("grow", 3000)
	for _, k := range keys {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	el := s.Elastic()
	if el == nil {
		t.Fatal("elastic store has nil chain")
	}
	gens := el.Generations()
	if gens < 2 {
		t.Fatalf("3000 inserts into an 800-capacity seed grew to %d generations, want >= 2", gens)
	}
	dump, err := s.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	// Crash without snapshotting: recovery must rebuild the chain from
	// the WAL alone — same generations, same bytes.
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(testElasticStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Elastic().Generations(); got != gens {
		t.Fatalf("recovered %d generations, want %d", got, gens)
	}
	redump, err := r.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump, redump) {
		t.Fatal("recovered chain is not byte-identical to the pre-crash chain")
	}
	for _, k := range keys {
		if !r.Contains(k) {
			t.Fatalf("false negative after recovery: %q", k)
		}
	}
	if r.Len() != len(keys) {
		t.Fatalf("recovered Len = %d, want %d", r.Len(), len(keys))
	}
}

func TestElasticStoreRecoversFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testElasticStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("snap", 2400)
	if err := s.InsertBatch(keys[:1600]); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Tail mutations after the snapshot, including more growth.
	if err := s.InsertBatch(keys[1600:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	dump, err := s.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(testElasticStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	redump, err := r.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump, redump) {
		t.Fatal("snapshot+tail recovery diverged from the live chain")
	}
	for _, k := range keys[1:] {
		if !r.Contains(k) {
			t.Fatalf("false negative after snapshot+tail recovery: %q", k)
		}
	}
}

func TestElasticModeIsSticky(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testElasticStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	plain := testStoreOptions(dir)
	if _, err := OpenStore(plain); err == nil {
		t.Fatal("opening an elastic store without Elastic succeeded")
	}

	dir2 := t.TempDir()
	p, err := OpenStore(testStoreOptions(dir2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(testElasticStoreOptions(dir2)); err == nil {
		t.Fatal("opening a plain store with Elastic succeeded")
	}

	bad := testElasticStoreOptions(t.TempDir())
	bad.Window = 1e9
	bad.Generations = 2
	if _, err := OpenStore(bad); err == nil {
		t.Fatal("Elastic+Window accepted")
	}
}

func TestElasticImportSplicesAndSurvivesRestart(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := OpenStore(testElasticStoreOptions(srcDir))
	if err != nil {
		t.Fatal(err)
	}
	srcKeys := storeKeys("src", 2000) // enough to grow the source chain
	if err := src.InsertBatch(srcKeys); err != nil {
		t.Fatal(err)
	}
	if src.Elastic().Generations() < 2 {
		t.Fatalf("source chain did not grow (%d generations)", src.Elastic().Generations())
	}
	blob, err := src.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	dst, err := OpenStore(testElasticStoreOptions(dstDir))
	if err != nil {
		t.Fatal(err)
	}
	dstKeys := storeKeys("dst", 300)
	if err := dst.InsertBatch(dstKeys); err != nil {
		t.Fatal(err)
	}
	if err := dst.Import(blob); err != nil {
		t.Fatal(err)
	}
	if got := dst.Elastic().Imports(); got == 0 {
		t.Fatal("import counter did not advance")
	}
	for _, k := range append(append([][]byte{}, srcKeys...), dstKeys...) {
		if !dst.Contains(k) {
			t.Fatalf("false negative after import: %q", k)
		}
	}
	// New inserts must still land in the destination's own head, not an
	// imported generation, and deletes of imported keys must route to the
	// imported generation.
	if err := dst.Insert([]byte("post-import")); err != nil {
		t.Fatal(err)
	}
	if err := dst.Delete(srcKeys[0]); err != nil {
		t.Fatalf("delete of imported key: %v", err)
	}

	dump, err := dst.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.wal.Close(); err != nil { // crash: imports must replay from the WAL
		t.Fatal(err)
	}
	r, err := OpenStore(testElasticStoreOptions(dstDir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	redump, err := r.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump, redump) {
		t.Fatal("imported chain did not replay byte-identically")
	}
	for _, k := range srcKeys[1:] {
		if !r.Contains(k) {
			t.Fatalf("imported key lost after crash: %q", k)
		}
	}
}

func TestImportRejectsWrongStateKinds(t *testing.T) {
	// A windowed dump must be refused.
	wdir := t.TempDir()
	wopts := testStoreOptions(wdir)
	wopts.Window = 1e9 * 3600
	wopts.Generations = 2
	ws, err := OpenStore(wopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Insert([]byte("w")); err != nil {
		t.Fatal(err)
	}
	wblob, err := ws.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}

	dst, err := OpenStore(testElasticStoreOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.Import(wblob); err == nil {
		t.Fatal("windowed import accepted")
	}
	if err := dst.Import([]byte("garbage")); err == nil {
		t.Fatal("garbage import accepted")
	}

	// Import into a non-elastic store must be refused.
	plain, err := OpenStore(testStoreOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	pb, err := plain.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Import(pb); err == nil {
		t.Fatal("import into a plain store accepted")
	}
}

func TestElasticNamespaceGrowsEvictsRecovers(t *testing.T) {
	dir := t.TempDir()
	opts := testStoreOptions(dir)
	opts.NsDefaults = ns.Config{MemoryBits: 1 << 14, ExpectedItems: 400}
	s, err := OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.reg.Resolve(ns.Config{MemoryBits: 1 << 14, ExpectedItems: 400, Elastic: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.nsCreateLocked("tenant", cfg, nil); err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("ns-grow", 1500)
	for i, k := range keys {
		if _, err := s.nsInsertEnq([]byte("tenant"), k, nil); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := s.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	e := s.reg.Lookup([]byte("tenant"))
	if e == nil || e.Elastic() == nil {
		t.Fatal("tenant is not elastic")
	}
	gens := e.Elastic().Generations()
	if gens < 2 {
		t.Fatalf("namespaced chain did not grow (%d generations)", gens)
	}
	dump, err := s.NsMarshal([]byte("tenant"))
	if err != nil {
		t.Fatal(err)
	}

	// Evict and recover through a read: the chain must come back whole.
	if err := s.reg.Evict(e); err != nil {
		t.Fatal(err)
	}
	ok, err := s.NsContains([]byte("tenant"), keys[0])
	if err != nil || !ok {
		t.Fatalf("recovered read: ok=%v err=%v", ok, err)
	}
	redump, err := s.NsMarshal([]byte("tenant"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump, redump) {
		t.Fatal("evict/recover changed the chain bytes")
	}

	// Crash; replay must rebuild the same chain (snapshotless path).
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	redump, err = r.NsMarshal([]byte("tenant"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump, redump) {
		t.Fatal("namespaced chain did not replay byte-identically")
	}
	for _, k := range keys {
		ok, err := r.NsContains([]byte("tenant"), k)
		if err != nil || !ok {
			t.Fatalf("false negative after replay: %q (err=%v)", k, err)
		}
	}
	st, err := r.NsStats([]byte("tenant"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != uint64(len(keys)) {
		t.Fatalf("NsStats items = %d, want %d", st.Items, len(keys))
	}
}

func TestElasticWindowNamespaceExclusion(t *testing.T) {
	s, err := OpenStore(testStoreOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.reg.Resolve(ns.Config{MemoryBits: 1 << 14, ExpectedItems: 100, Elastic: true, Window: 1e9})
	if err == nil {
		t.Fatal("elastic+windowed namespace accepted")
	}
}

func TestElasticStatsShapes(t *testing.T) {
	s, err := OpenStore(testElasticStoreOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := storeKeys("stats", 2000)
	if err := s.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	st, err := s.ElasticStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Gens) != s.Elastic().Generations() {
		t.Fatalf("stats has %d gens, chain has %d", len(st.Gens), s.Elastic().Generations())
	}
	if st.Grows == 0 {
		t.Fatal("stats reports zero grows after growth")
	}
	var items uint64
	for _, g := range st.Gens {
		items += g.Items
	}
	if items != uint64(len(keys)) {
		t.Fatalf("per-generation items sum to %d, want %d", items, len(keys))
	}

	plain, err := OpenStore(testStoreOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.ElasticStats(); err == nil {
		t.Fatal("ElasticStats on a plain store succeeded")
	}
}

func TestElasticGrowthReplicates(t *testing.T) {
	// A replica fed the primary's WAL bytes must grow its chain at the
	// same records and end byte-identical.
	pdir, rdir := t.TempDir(), t.TempDir()
	p, err := OpenStore(testElasticStoreOptions(pdir))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ropts := testElasticStoreOptions(rdir)
	ropts.Replica = true
	r, err := OpenStore(ropts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	keys := storeKeys("rep", 2500)
	if err := p.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	// Ship the primary's live segment bytes wholesale.
	seq, off, err := p.WALFlushedPos()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(walPath(pdir, seq))
	if err != nil {
		t.Fatal(err)
	}
	raw = raw[:off]
	n, valid, err := scanRecords(bytes.NewReader(raw), func(byte, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if valid != off {
		t.Fatalf("segment has %d valid bytes, flushed position says %d", valid, off)
	}
	if err := r.ReplicaApply(seq, 0, uint32(n), raw); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Elastic().Generations(), p.Elastic().Generations(); got != want {
		t.Fatalf("replica grew to %d generations, primary %d", got, want)
	}
	pd, err := p.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := r.MarshalFilter()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pd, rd) {
		t.Fatal("replica chain is not byte-identical to the primary's")
	}
}

func TestGrowthAckIsDurable(t *testing.T) {
	// The insert that triggers growth must not ack before the GROW record
	// is durable: kill the WAL right after and replay — the chain either
	// has the growth or re-triggers it, but acked keys are never lost.
	dir := t.TempDir()
	s, err := OpenStore(testElasticStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	var acked [][]byte
	for i := 0; ; i++ {
		k := []byte(fmt.Sprintf("durable-%d", i))
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, k)
		if s.Elastic().Grows() > 0 {
			break
		}
		if i > 5000 {
			t.Fatal("no growth after 5000 inserts")
		}
	}
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(testElasticStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Elastic().Grows() == 0 {
		t.Fatal("acked growth lost in replay")
	}
	for _, k := range acked {
		if !r.Contains(k) {
			t.Fatalf("acked key lost: %q", k)
		}
	}
}
