package window

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	mpcbf "repro"
)

// Windowed wire format: a self-describing header followed by each
// generation's sharded-filter encoding, in ring-slot order:
//
//	[u32 magic][u32 version][u32 G][u32 head][u64 rotations][u64 spanNanos]
//	G × [u32 len][Sharded.MarshalBinary bytes]
//
// The magic is distinct from the sharded filter's, so a snapshot loader
// can dispatch on the leading bytes (see IsWindowed). Precise-mode
// expiry heap state is intentionally not serialized: pending precise
// deletes degrade to generation retirement after a restore, which is
// the documented backstop semantics.
const (
	windowMagic   = 0x4D504357 // "WCPM" little-endian ("MPCW" read big-endian)
	windowVersion = 1
	windowHdrLen  = 32
)

// IsWindowed reports whether data begins with the windowed format's
// magic — the dispatch test a snapshot loader uses to pick
// UnmarshalFilter over mpcbf.UnmarshalSharded.
func IsWindowed(data []byte) bool {
	return len(data) >= 4 && binary.LittleEndian.Uint32(data[0:4]) == windowMagic
}

// MarshalBinary serializes the complete window state: ring shape,
// rotation count, span, and every generation's filter. Not safe to call
// concurrently with updates beyond the internal read lock (the caller
// serializes against rotation, as the store's mutation lock does).
func (f *Filter) MarshalBinary() ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]byte, windowHdrLen)
	binary.LittleEndian.PutUint32(out[0:4], windowMagic)
	binary.LittleEndian.PutUint32(out[4:8], windowVersion)
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(f.gens)))
	binary.LittleEndian.PutUint32(out[12:16], uint32(f.head))
	binary.LittleEndian.PutUint64(out[16:24], f.rotations)
	binary.LittleEndian.PutUint64(out[24:32], uint64(f.opts.Span))
	for i, g := range f.gens {
		blob, err := g.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("window: generation %d: %w", i, err)
		}
		var size [4]byte
		binary.LittleEndian.PutUint32(size[:], uint32(len(blob)))
		out = append(out, size[:]...)
		out = append(out, blob...)
	}
	return out, nil
}

// UnmarshalFilter reconstructs a window serialized with MarshalBinary.
// The result is fully functional and independent of the original; the
// ring position, rotation count, and per-generation contents are exact.
func UnmarshalFilter(data []byte) (*Filter, error) {
	if len(data) < windowHdrLen {
		return nil, errors.New("window: truncated windowed filter")
	}
	if !IsWindowed(data) {
		return nil, errors.New("window: bad magic (not a windowed filter)")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != windowVersion {
		return nil, fmt.Errorf("window: unsupported format version %d", v)
	}
	g := int(binary.LittleEndian.Uint32(data[8:12]))
	head := int(binary.LittleEndian.Uint32(data[12:16]))
	rotations := binary.LittleEndian.Uint64(data[16:24])
	span := time.Duration(binary.LittleEndian.Uint64(data[24:32]))
	if g < 1 || g > 1<<10 || head < 0 || head >= g || span <= 0 {
		return nil, errors.New("window: implausible windowed header")
	}
	f := &Filter{
		opts:        Options{Span: span, Generations: g},
		rotateEvery: span / time.Duration(g),
		gens:        make([]*mpcbf.Sharded, g),
		epochs:      make([]uint64, g),
		head:        head,
		rotations:   rotations,
	}
	off := windowHdrLen
	for i := 0; i < g; i++ {
		if off+4 > len(data) {
			return nil, fmt.Errorf("window: truncated at generation %d", i)
		}
		size := int(binary.LittleEndian.Uint32(data[off : off+4]))
		off += 4
		if size < 0 || off+size > len(data) {
			return nil, fmt.Errorf("window: bad generation %d size %d", i, size)
		}
		sf, err := mpcbf.UnmarshalSharded(data[off : off+size])
		if err != nil {
			return nil, fmt.Errorf("window: generation %d: %w", i, err)
		}
		f.gens[i] = sf
		off += size
	}
	if off != len(data) {
		return nil, errors.New("window: trailing bytes after generations")
	}
	f.opts.Shards = f.gens[0].Shards()
	return f, nil
}
