package server

// End-to-end sliding-window tests against the real mpcbfd binary with
// -window: keys verifiably expire after span + one rotation, in-window
// keys never report false negatives, and the generation ring survives a
// SIGKILL + crash recovery (reconstructed from snapshot + WAL).

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/e2e"
	"repro/server/wire"
)

func windowKeys(prefix string, n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("win-%s-%05d", prefix, i))
	}
	return keys
}

// waitRotations polls WINDOW_STATS until the rotation counter reaches
// want or the deadline passes.
func waitRotations(t *testing.T, c *client.Client, want uint64, timeout time.Duration) wire.WindowStats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.WindowStats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Rotations >= want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("rotations stuck at %d, want >= %d", st.Rotations, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestIntegrationWindowExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the daemon binary")
	}
	bin := e2e.BuildDaemon(t)
	dir := t.TempDir()
	addr, httpAddr := e2e.FreePort(t), e2e.FreePort(t)

	// span 2s over 4 generations: one rotation every 500ms, staleness
	// bound 500ms, guaranteed lifetime at least span-span/G = 1.5s.
	d := e2e.StartDaemon(t, e2e.DaemonConfig{Bin: bin, Dir: dir, Addr: addr, HTTPAddr: httpAddr,
		Extra: []string{"-window", "2s", "-generations", "4"}})
	c := e2e.DialRetry(t, addr)
	defer c.Close()

	st, err := c.WindowStats()
	if err != nil {
		t.Fatalf("WINDOW_STATS: %v\n%s", err, d)
	}
	if st.Generations != 4 || st.SpanNanos != uint64(2*time.Second) {
		t.Fatalf("WindowStats = %+v, want G=4 span=2s", st)
	}

	old := windowKeys("old", 200)
	if err := c.InsertBatch(old); err != nil {
		t.Fatal(err)
	}
	// A per-key TTL shorter than the span: expires ahead of its batch.
	if err := c.InsertTTL([]byte("short-lived"), 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	flags, err := c.ContainsBatch(old)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range flags {
		if !ok {
			t.Fatalf("false negative on in-window key %d", i)
		}
	}

	// After span + one rotation every pre-span key must be retired.
	waitRotations(t, c, 5, 10*time.Second)
	// Fresh keys inserted now must be visible while the old cohort is
	// simultaneously gone — expiry is per-generation, not a global
	// reset.
	fresh := windowKeys("fresh", 200)
	if err := c.InsertBatch(fresh); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Contains([]byte("short-lived")); err != nil || ok {
		t.Fatalf("short-TTL key alive after its TTL (ok=%v err=%v)", ok, err)
	}
	flags, err = c.ContainsBatch(old)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range flags {
		if ok {
			t.Fatalf("expired key %d still reported present after span + rotation", i)
		}
	}
	flags, err = c.ContainsBatch(fresh)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range flags {
		if !ok {
			t.Fatalf("false negative on fresh in-window key %d", i)
		}
	}

	// The sidecar exposes the ring.
	metrics := httpGet(t, "http://"+httpAddr+"/metrics")
	for _, want := range []string{
		"mpcbfd_window_generations 4",
		"mpcbfd_window_span_seconds 2",
		"mpcbfd_window_rotations_total",
		`mpcbfd_window_generation_items{gen="0"}`,
		"mpcbfd_window_rotation_duration_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestIntegrationWindowCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the daemon binary")
	}
	bin := e2e.BuildDaemon(t)
	dir := t.TempDir()
	addr, httpAddr := e2e.FreePort(t), e2e.FreePort(t)

	// span 6s over 3 generations: rotation every 2s. Long enough that
	// kill + restart (well under a second) fits inside one rotation
	// period; short enough that the test sees expiry end to end.
	cfg := e2e.DaemonConfig{Bin: bin, Dir: dir, Addr: addr, HTTPAddr: httpAddr,
		Extra: []string{"-window", "6s", "-generations", "3"}}
	d1 := e2e.StartDaemon(t, cfg)
	c := e2e.DialRetry(t, addr)

	// Cohort A lands pre-rotation; wait until at least one rotation is
	// in the WAL so recovery has a ring to reconstruct, not just keys.
	if err := c.InsertBatch(windowKeys("a", 100)); err != nil {
		t.Fatal(err)
	}
	waitRotations(t, c, 1, 10*time.Second)

	// Stream cohort B and SIGKILL mid-stream.
	var acked atomic.Int64
	insertDone := make(chan struct{})
	go func() {
		defer close(insertDone)
		for i := 0; i < 20000; i++ {
			if err := c.Insert([]byte(fmt.Sprintf("win-b-%05d", i))); err != nil {
				return // kill landed; everything before i was acked
			}
			acked.Add(1)
		}
	}()
	deadline := time.Now().Add(20 * time.Second)
	for acked.Load() < 300 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d inserts acked before deadline\n%s", acked.Load(), d1)
		}
		time.Sleep(time.Millisecond)
	}
	// Snapshot the ring as close to the kill as possible; a rotation
	// may still sneak between the read and the signal, so recovery is
	// allowed to land one past it.
	c2 := e2e.DialRetry(t, addr)
	pre, err := c2.WindowStats()
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
	d1.Kill()
	<-insertDone
	c.Close()
	n := int(acked.Load())
	t.Logf("killed daemon with %d acked inserts, ring at head=%d rotations=%d", n, pre.Head, pre.Rotations)

	// Restart: the generation ring is rebuilt from snapshot + WAL.
	d2 := e2e.StartDaemon(t, cfg)
	c3 := e2e.DialRetry(t, addr)
	defer c3.Close()

	post, err := c3.WindowStats()
	if err != nil {
		t.Fatalf("WINDOW_STATS after recovery: %v\n%s", err, d2)
	}
	if post.Generations != 3 {
		t.Fatalf("recovered ring has %d generations, want 3", post.Generations)
	}
	if post.Rotations != pre.Rotations && post.Rotations != pre.Rotations+1 {
		t.Fatalf("recovered rotations = %d, want %d or %d\n%s",
			post.Rotations, pre.Rotations, pre.Rotations+1, d2)
	}
	if want := uint32((uint64(pre.Head) + post.Rotations - pre.Rotations) % 3); post.Head != want {
		t.Fatalf("recovered head = %d, want %d (pre head %d, rotations %d->%d)",
			post.Head, want, pre.Head, pre.Rotations, post.Rotations)
	}

	// Every acked cohort-B key was inserted within the last rotation
	// period, so post-restart it still has at least span-span/G of
	// guaranteed lifetime: zero false negatives allowed.
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("win-b-%05d", i))
	}
	const batch = 256
	for off := 0; off < n; off += batch {
		end := min(off+batch, n)
		flags, err := c3.ContainsBatch(keys[off:end])
		if err != nil {
			t.Fatal(err)
		}
		for j, ok := range flags {
			if !ok {
				t.Fatalf("acked key %d lost across crash recovery", off+j)
			}
		}
	}

	// The recovered ring must keep aging: after span + one rotation
	// from now, cohort B is gone.
	waitRotations(t, c3, post.Rotations+4, 15*time.Second)
	for off := 0; off < n; off += batch {
		end := min(off+batch, n)
		flags, err := c3.ContainsBatch(keys[off:end])
		if err != nil {
			t.Fatal(err)
		}
		for j, ok := range flags {
			if ok {
				t.Fatalf("key %d survived past the window after crash recovery", off+j)
			}
		}
	}
}
