package analytic

import (
	"math"
	"testing"
)

func TestFPRBloomKnownValues(t *testing.T) {
	// Paper Section II.A: m/n=10, k=7 gives f ~ 0.008.
	f := FPRBloom(100000, 1000000, 7)
	if f < 0.007 || f > 0.01 {
		t.Fatalf("FPRBloom(m/n=10,k=7) = %v, want ~0.008", f)
	}
	// Degenerate cases.
	if FPRBloom(0, 100, 3) != 0 {
		t.Error("empty set should have zero fpr")
	}
	if FPRBloom(10, 0, 3) != 1 {
		t.Error("zero memory should have fpr 1")
	}
}

func TestFPRBloomMonotonicity(t *testing.T) {
	// More memory -> lower fpr; more elements -> higher fpr.
	prev := 1.0
	for _, m := range []int{1000, 2000, 4000, 8000} {
		f := FPRBloom(500, m, 4)
		if f >= prev {
			t.Fatalf("fpr not decreasing in m: %v >= %v", f, prev)
		}
		prev = f
	}
	prev = 0.0
	for _, n := range []int{100, 200, 400, 800} {
		f := FPRBloom(n, 4000, 4)
		if f <= prev {
			t.Fatalf("fpr not increasing in n: %v <= %v", f, prev)
		}
		prev = f
	}
}

func TestOptimalKBloom(t *testing.T) {
	if k := OptimalKBloom(1000, 10000); k != 7 {
		t.Fatalf("OptimalKBloom(m/n=10) = %d, want 7", k)
	}
	if k := OptimalKBloom(1000, 1000); k != 1 {
		t.Fatalf("OptimalKBloom(m/n=1) = %d, want 1", k)
	}
	// The optimum must actually minimize Eq. 1 over neighbors.
	n, m := 100000, 1500000
	k := OptimalKBloom(n, m)
	f := FPRBloom(n, m, k)
	if FPRBloom(n, m, k-1) < f || FPRBloom(n, m, k+1) < f {
		t.Fatalf("k=%d is not a local optimum", k)
	}
}

func TestBinomialMixSanity(t *testing.T) {
	// f == 1 everywhere must integrate to ~1 (mass conservation).
	got := binomialMix(100000, 1e-4, func(int) float64 { return 1 })
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("mass = %v, want 1", got)
	}
	// f = indicator(j==0) must equal (1-p)^n.
	p := 1e-4
	got = binomialMix(100000, p, func(j int) float64 {
		if j == 0 {
			return 1
		}
		return 0
	})
	want := math.Exp(100000 * math.Log1p(-p))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("P(0) = %v, want %v", got, want)
	}
	// Degenerate probabilities.
	if binomialMix(10, 0, func(j int) float64 { return float64(j) }) != 0 {
		t.Error("p=0 should evaluate f(0)")
	}
	if binomialMix(10, 1, func(j int) float64 { return float64(j) }) != 10 {
		t.Error("p=1 should evaluate f(trials)")
	}
}

func TestPCBFOrdering(t *testing.T) {
	// Fig. 2's shape: f(CBF) < f(PCBF-2) < f(PCBF-1) at the same memory,
	// and PCBF-1 improves with larger w.
	n, m, k := 100000, 1000000, 3
	cbf := FPRBloom(n, m, k)
	p1w32 := FPRPCBF1(n, m, 32, k)
	p1w64 := FPRPCBF1(n, m, 64, k)
	p2w64 := FPRPCBFg(n, m, 64, k, 2)
	if !(cbf < p2w64 && p2w64 < p1w64) {
		t.Fatalf("ordering violated: cbf=%.3e pcbf2=%.3e pcbf1=%.3e", cbf, p2w64, p1w64)
	}
	if p1w64 >= p1w32 {
		t.Fatalf("PCBF-1 should improve with w: w64=%.3e w32=%.3e", p1w64, p1w32)
	}
}

func TestMPCBFBeatsCBFByOrderOfMagnitude(t *testing.T) {
	// Fig. 5 / Section IV's headline: at k=3 and w=64, MPCBF-1 clearly
	// beats the standard CBF (~3-4x) and MPCBF-2 beats it by around an
	// order of magnitude (the paper's "factor of 13" claim).
	n := 100000
	for _, mOverN := range []int{8, 10, 12} {
		m := mOverN * n
		k := 3
		l := Words(m, 64)
		cbf := FPRBloom(n, m, k)
		mp1 := FPRMPCBF1(n, m, 64, k, HeuristicNmax(n, l))
		mp2 := FPRMPCBFg(n, m, 64, k, 2, HeuristicNmax(2*n, l))
		if mp1 >= cbf/2.5 {
			t.Fatalf("m/n=%d: MPCBF-1 %.3e not clearly below CBF %.3e", mOverN, mp1, cbf)
		}
		if mp2 >= cbf/6 {
			t.Fatalf("m/n=%d: MPCBF-2 %.3e not ~an order below CBF %.3e", mOverN, mp2, cbf)
		}
	}
}

func TestMPCBFgImprovesOnMPCBF1(t *testing.T) {
	n, m, k := 100000, 1000000, 4
	l := Words(m, 64)
	nm1 := HeuristicNmax(n, l)
	nm2 := HeuristicNmax(2*n, l)
	mp1 := FPRMPCBF1(n, m, 64, k, nm1)
	mp2 := FPRMPCBFg(n, m, 64, k, 2, nm2)
	if mp2 >= mp1 {
		t.Fatalf("MPCBF-2 %.3e should beat MPCBF-1 %.3e", mp2, mp1)
	}
}

func TestMPCBFAvgClose(t *testing.T) {
	// The average-case formula should be within a small factor of the
	// heuristic-nmax formula at typical loads.
	n, m, k := 100000, 1000000, 3
	l := Words(m, 64)
	nmax := HeuristicNmax(n, l)
	a := FPRMPCBF1Avg(n, m, 64, k)
	b := FPRMPCBF1(n, m, 64, k, nmax)
	if a <= 0 || b <= 0 {
		t.Fatal("rates must be positive")
	}
	ratio := a / b
	if ratio < 1e-3 || ratio > 1e3 {
		t.Fatalf("avg %.3e and nmax %.3e rates wildly apart", a, b)
	}
	if g2 := FPRMPCBFgAvg(n, m, 64, k, 2); g2 >= a {
		t.Fatalf("avg MPCBF-2 %.3e should beat avg MPCBF-1 %.3e", g2, a)
	}
}

func TestFPRBlockedBloom(t *testing.T) {
	// BF-1's rate exceeds the standard Bloom filter's at equal memory and
	// converges toward it as w grows; BF-2 sits in between.
	n := 100000
	m := 10 * n // total bits
	std := FPRBloom(n, m, 3)
	b64 := FPRBlockedBloom(n, m/64, 64, 3, 1)
	b512 := FPRBlockedBloom(n, m/512, 512, 3, 1)
	b2 := FPRBlockedBloom(n, m/64, 64, 4, 2)
	if !(std < b512 && b512 < b64) {
		t.Fatalf("blocked ordering violated: std=%.3e w512=%.3e w64=%.3e", std, b512, b64)
	}
	if b2 >= b64 {
		t.Fatalf("BF-2 %.3e should beat BF-1 %.3e at k=4", b2, b64)
	}
	if FPRBlockedBloom(10, 0, 64, 3, 1) != 1 {
		t.Fatal("degenerate l should return 1")
	}
}

func TestFPRBlockedBloomMatchesSimulation(t *testing.T) {
	// Monte Carlo cross-check of the closed form at one operating point.
	// (The simulation lives in internal/bloom; here we just compare the
	// formula against an independent direct simulation over words.)
	const l, w, k, n = 512, 64, 3, 4000
	want := FPRBlockedBloom(n, l, w, k, 1)
	rng := newTestRNG(5)
	words := make([][]bool, l)
	for i := range words {
		words[i] = make([]bool, w)
	}
	for e := 0; e < n; e++ {
		word := rng.intn(l)
		for j := 0; j < k; j++ {
			words[word][rng.intn(w)] = true
		}
	}
	fp := 0
	const probes = 200000
	for p := 0; p < probes; p++ {
		word := rng.intn(l)
		hit := true
		for j := 0; j < k; j++ {
			if !words[word][rng.intn(w)] {
				hit = false
				break
			}
		}
		if hit {
			fp++
		}
	}
	got := float64(fp) / probes
	if got < want/1.5 || got > want*1.5 {
		t.Fatalf("simulated %.4f vs formula %.4f", got, want)
	}
}

// newTestRNG is a tiny splitmix-based generator local to the tests, so the
// analytic package keeps zero non-stdlib imports in its API surface.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed} }

func (r *testRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *testRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func TestPoissInv(t *testing.T) {
	// Median of Poisson(1) is 1; P(X<=0)=e^-1~0.368.
	if got := PoissInv(0.3, 1); got != 0 {
		t.Fatalf("PoissInv(0.3,1) = %d, want 0", got)
	}
	if got := PoissInv(0.5, 1); got != 1 {
		t.Fatalf("PoissInv(0.5,1) = %d, want 1", got)
	}
	if got := PoissInv(0, 5); got != 0 {
		t.Fatalf("PoissInv(0,5) = %d, want 0", got)
	}
	// Quantile must be monotone in p.
	prev := 0
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 0.9999} {
		q := PoissInv(p, 4)
		if q < prev {
			t.Fatalf("PoissInv not monotone at p=%v", p)
		}
		prev = q
	}
	// CDF at the returned quantile is >= p, and < p just below it.
	lambda := 7.3
	for _, p := range []float64{0.2, 0.7, 0.99, 0.99999} {
		q := PoissInv(p, lambda)
		if cdf := poissonCDF(q, lambda); cdf < p {
			t.Fatalf("CDF(%d)=%v < p=%v", q, cdf, p)
		}
		if q > 0 {
			if cdf := poissonCDF(q-1, lambda); cdf >= p {
				t.Fatalf("CDF(%d)=%v >= p=%v (quantile not minimal)", q-1, cdf, p)
			}
		}
	}
}

func poissonCDF(x int, lambda float64) float64 {
	pmf := math.Exp(-lambda)
	cdf := pmf
	for i := 1; i <= x; i++ {
		pmf *= lambda / float64(i)
		cdf += pmf
	}
	return cdf
}

func TestHeuristicNmaxPaperRange(t *testing.T) {
	// Section IV.B: with l from 62500 to 250000 and n=100000, the heuristic
	// yields nmax from about 10 down to 7.
	lo := HeuristicNmax(100000, 250000)
	hi := HeuristicNmax(100000, 62500)
	if lo > hi {
		t.Fatalf("nmax should grow with load: l=250000 gives %d, l=62500 gives %d", lo, hi)
	}
	if hi < 8 || hi > 12 {
		t.Fatalf("nmax at l=62500 = %d, paper reports ~10", hi)
	}
	if lo < 5 || lo > 9 {
		t.Fatalf("nmax at l=250000 = %d, paper reports ~7", lo)
	}
}

func TestOverflowBounds(t *testing.T) {
	// Eq. 6 must upper-bound the exact tail.
	n, l := 100000, 62500
	for nmax := 6; nmax <= 14; nmax++ {
		bound := OverflowBoundMPCBF1(n, l, nmax, true)
		exact := OverflowExactTail(n, l, nmax)
		if bound < exact {
			t.Fatalf("nmax=%d: bound %.3e below exact tail %.3e", nmax, bound, exact)
		}
	}
	// The bound decreases in nmax once past the mean.
	prev := math.Inf(1)
	for nmax := 8; nmax <= 20; nmax++ {
		b := OverflowBoundMPCBF1(n, l, nmax, true)
		if b > prev {
			t.Fatalf("bound not decreasing at nmax=%d", nmax)
		}
		prev = b
	}
	if OverflowBoundMPCBF1(n, l, 0, true) != 1 {
		t.Error("nmax=0 should return 1")
	}
	if OverflowExactTail(10, 5, 11) != 0 {
		t.Error("tail beyond trials should be 0")
	}
	// Eq. 10 with g=2 at the same per-word threshold is larger (twice the
	// selections) but still a valid bound.
	g2 := OverflowBoundMPCBFg(n, l, 2, 12, true)
	exact2 := OverflowExactTail(2*n, l, 12)
	if g2 < exact2 {
		t.Fatalf("g=2 bound %.3e below exact %.3e", g2, exact2)
	}
}

func TestDesign(t *testing.T) {
	d, err := Design(100000, 8<<20, 64, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.L != 8<<20/64 {
		t.Fatalf("L = %d", d.L)
	}
	if d.B1 != 64-3*d.Nmax {
		t.Fatalf("B1 = %d with nmax %d", d.B1, d.Nmax)
	}
	if f := d.FPR(100000); f <= 0 || f >= 1 {
		t.Fatalf("design FPR = %v", f)
	}
	if _, err := Design(100000, 32, 64, 3, 1); err == nil {
		t.Error("memory smaller than one word accepted")
	}
	if _, err := Design(100000, 1<<10, 16, 5, 1); err == nil {
		t.Error("design with b1 < k accepted (w=16 cannot host nmax)")
	}
}

func TestOptimalKMPCBFStableInMemory(t *testing.T) {
	// Fig. 9: the optimal k for MPCBF is nearly constant (3 for g=1,
	// 4-5 for g=2, ~5 for g=3) while CBF's grows with memory.
	n := 100000
	for _, mem := range []int{4 << 20, 6 << 20, 8 << 20} {
		k1, f1 := OptimalKMPCBF(n, mem, 64, 1, 16)
		if k1 < 2 || k1 > 4 {
			t.Errorf("mem=%d: optimal k for MPCBF-1 = %d, expected ~3", mem, k1)
		}
		k2, f2 := OptimalKMPCBF(n, mem, 64, 2, 16)
		if k2 < 3 || k2 > 6 {
			t.Errorf("mem=%d: optimal k for MPCBF-2 = %d, expected 4-5", mem, k2)
		}
		if f2 >= f1 {
			t.Errorf("mem=%d: optimal MPCBF-2 rate %.3e not below MPCBF-1 %.3e", mem, f2, f1)
		}
		kc, _ := OptimalKCBF(n, mem)
		if kc < 6 {
			t.Errorf("mem=%d: CBF optimal k = %d, expected >= 6", mem, kc)
		}
	}
}

func TestWords(t *testing.T) {
	if got := Words(1000000, 64); got != 62500 {
		t.Fatalf("Words = %d, want 62500 (paper's l at 4 Mb)", got)
	}
	if got := Words(1, 64); got != 1 {
		t.Fatalf("Words should floor at 1, got %d", got)
	}
}
