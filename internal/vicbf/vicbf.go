// Package vicbf implements the Variable-Increment Counting Bloom Filter
// of Rottenstreich, Kanizo and Keslassy (INFOCOM 2012), cited by the
// paper's related work as the state-of-the-art accuracy improvement that
// still pays k memory accesses per query — the trade-off MPCBF avoids.
//
// VI-CBF (the DL scheme): each of a key's k counters is incremented not
// by 1 but by a key-dependent value from D = {L, ..., 2L-1}. On a query,
// a counter C probed with increment v rules the key out unless C == 0 is
// false and the residual C - v is either 0 or at least L: any other key
// contributes at least L, so a residual in [1, L-1] proves this key's own
// increment was never added.
package vicbf

import (
	"errors"
	"fmt"

	"repro/internal/hashing"
	"repro/internal/metrics"
)

// L is the DL-scheme base: increments are drawn from {L, ..., 2L-1}.
// The VI-CBF paper recommends L = 4.
const L = 4

// counterBits is the per-counter width. Variable increments need wider
// counters than the CBF's 4 bits; 8 bits keeps overflow negligible.
const counterBits = 8

const counterMax = 1<<counterBits - 1

// ErrUnderflow is returned when Delete would drive a counter negative.
var ErrUnderflow = errors.New("vicbf: delete of absent key (counter underflow)")

// Filter is a variable-increment CBF with m 8-bit counters and k hashes.
type Filter struct {
	counters []uint8
	m, k     int
	hasher   hashing.Hasher
	count    int
	sticky   int
}

// New returns a VI-CBF with m counters and k hash functions.
func New(m, k int, seed uint32) (*Filter, error) {
	if m <= 0 || k <= 0 {
		return nil, fmt.Errorf("vicbf: m and k must be positive (m=%d, k=%d)", m, k)
	}
	return &Filter{
		counters: make([]uint8, m),
		m:        m,
		k:        k,
		hasher:   hashing.NewHasher(seed),
	}, nil
}

// FromMemory returns a VI-CBF occupying memoryBits bits
// (m = memoryBits/8 counters).
func FromMemory(memoryBits, k int, seed uint32) (*Filter, error) {
	return New(memoryBits/counterBits, k, seed)
}

// M returns the number of counters; K the number of hash functions.
func (f *Filter) M() int { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count returns the current number of elements.
func (f *Filter) Count() int { return f.count }

// MemoryBits returns the filter's footprint in bits.
func (f *Filter) MemoryBits() int { return f.m * counterBits }

// Saturated reports how many counters are stuck at the maximum.
func (f *Filter) Saturated() int { return f.sticky }

// probe is one (counter index, increment) pair of a key.
type probe struct {
	idx int
	inc uint8
}

func (f *Filter) probes(key []byte) []probe {
	s := f.hasher.NewIndexStream(key)
	out := make([]probe, f.k)
	for i := range out {
		out[i] = probe{
			idx: s.Slot(i, f.m),
			inc: uint8(L + hashing.Reduce(s.Aux(i), L)),
		}
	}
	return out
}

func (f *Filter) opCost() metrics.OpStats {
	// Addressing log2(m) bits plus log2(L) bits to pick the increment,
	// per hash.
	return metrics.OpStats{
		MemAccesses: f.k,
		HashBits:    f.k * (metrics.Log2Ceil(f.m) + metrics.Log2Ceil(L)),
	}
}

// Insert adds key, bumping each of its counters by its variable increment.
func (f *Filter) Insert(key []byte) error {
	_, err := f.InsertStats(key)
	return err
}

// InsertStats is Insert with cost accounting.
func (f *Filter) InsertStats(key []byte) (metrics.OpStats, error) {
	for _, p := range f.probes(key) {
		c := int(f.counters[p.idx]) + int(p.inc)
		if c >= counterMax {
			if f.counters[p.idx] != counterMax {
				f.sticky++
			}
			c = counterMax // saturate; sticky like the CBF's 4-bit counters
		}
		f.counters[p.idx] = uint8(c)
	}
	f.count++
	return f.opCost(), nil
}

// Delete removes key, subtracting its increments. Saturated counters are
// sticky; an underflowing subtraction reports ErrUnderflow and leaves the
// counter at zero.
func (f *Filter) Delete(key []byte) error {
	_, err := f.DeleteStats(key)
	return err
}

// DeleteStats is Delete with cost accounting.
func (f *Filter) DeleteStats(key []byte) (metrics.OpStats, error) {
	var underflow bool
	for _, p := range f.probes(key) {
		switch cur := f.counters[p.idx]; {
		case cur == counterMax:
			// sticky
		case cur < p.inc:
			underflow = true
			f.counters[p.idx] = 0
		default:
			f.counters[p.idx] = cur - p.inc
		}
	}
	f.count--
	if underflow {
		return f.opCost(), ErrUnderflow
	}
	return f.opCost(), nil
}

// admits is the DL-scheme membership rule for one counter.
func admits(counter, inc uint8) bool {
	if counter == counterMax {
		return true // saturated: no evidence either way
	}
	if counter < inc {
		return false
	}
	residual := counter - inc
	return residual == 0 || residual >= L
}

// Contains reports whether key may be in the set.
func (f *Filter) Contains(key []byte) bool {
	s := f.hasher.NewIndexStream(key)
	for i := 0; i < f.k; i++ {
		idx := s.Slot(i, f.m)
		inc := uint8(L + hashing.Reduce(s.Aux(i), L))
		if !admits(f.counters[idx], inc) {
			return false
		}
	}
	return true
}

// Probe is Contains with cost accounting (short-circuits like the CBF).
func (f *Filter) Probe(key []byte) (bool, metrics.OpStats) {
	s := f.hasher.NewIndexStream(key)
	perProbe := metrics.Log2Ceil(f.m) + metrics.Log2Ceil(L)
	var st metrics.OpStats
	for i := 0; i < f.k; i++ {
		st.MemAccesses++
		st.HashBits += perProbe
		idx := s.Slot(i, f.m)
		inc := uint8(L + hashing.Reduce(s.Aux(i), L))
		if !admits(f.counters[idx], inc) {
			return false, st
		}
	}
	return true, st
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.counters {
		f.counters[i] = 0
	}
	f.count = 0
	f.sticky = 0
}
