package sim

import (
	"fmt"
	"testing"

	"repro/internal/cbf"
	"repro/internal/core"
	"repro/internal/dlcbf"
	"repro/internal/hashing"
	"repro/internal/mlccbf"
	"repro/internal/pcbf"
	"repro/internal/rcbf"
	"repro/internal/vicbf"
)

// TestCrossStructureInvariants drives every counting structure in the
// repository with one identical operation sequence and checks the
// invariants any correct counting filter must share: no false negatives
// for present keys, and full emptiness after a balanced unwind. This is
// the integration net under all per-package tests — a bug that slips one
// structure's unit tests still has to agree with five siblings here.
func TestCrossStructureInvariants(t *testing.T) {
	const memBits = 1 << 18
	type fixture struct {
		name string
		f    interface {
			Insert([]byte) error
			Delete([]byte) error
			Contains([]byte) bool
		}
	}
	var fixtures []fixture

	std, err := cbf.FromMemory(memBits, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"cbf", std})

	part, err := pcbf.FromMemory(memBits, 64, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"pcbf-2", part})

	mp, err := core.New(core.Config{MemoryBits: memBits, K: 3, B1: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"mpcbf-1", mp})

	dl, err := dlcbf.FromMemory(memBits, 1)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"dlcbf", dl})

	vi, err := vicbf.FromMemory(memBits, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"vicbf", vi})

	ml, err := mlccbf.New(memBits/2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"mlccbf", ml})

	rc, err := rcbf.ForPopulation(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	fixtures = append(fixtures, fixture{"rcbf", rc})

	// One shared op tape: bounded multiplicities (the dlCBF cell counter
	// and MPCBF word budgets assume light duplication).
	rng := hashing.NewRNG(99)
	universe := make([][]byte, 400)
	for i := range universe {
		universe[i] = []byte(fmt.Sprintf("x-%04d", i))
	}
	ref := make(map[string]int)
	type op struct {
		key []byte
		ins bool
	}
	var tape []op
	for i := 0; i < 12000; i++ {
		k := universe[rng.Intn(len(universe))]
		ins := rng.Intn(2) == 0 || ref[string(k)] == 0
		if ins && ref[string(k)] >= 6 {
			ins = false
		}
		if ins {
			ref[string(k)]++
		} else {
			ref[string(k)]--
		}
		tape = append(tape, op{k, ins})
	}

	for _, fx := range fixtures {
		live := make(map[string]int)
		for i, o := range tape {
			if o.ins {
				if err := fx.f.Insert(o.key); err != nil {
					t.Fatalf("%s: op %d insert: %v", fx.name, i, err)
				}
				live[string(o.key)]++
			} else {
				if err := fx.f.Delete(o.key); err != nil {
					t.Fatalf("%s: op %d delete: %v", fx.name, i, err)
				}
				live[string(o.key)]--
			}
		}
		// Invariant 1: no false negatives.
		for k, n := range live {
			if n > 0 && !fx.f.Contains([]byte(k)) {
				t.Fatalf("%s: false negative for %q (count %d)", fx.name, k, n)
			}
		}
		// Invariant 2: balanced unwind empties the structure.
		for k, n := range live {
			for j := 0; j < n; j++ {
				if err := fx.f.Delete([]byte(k)); err != nil {
					t.Fatalf("%s: unwind delete %q: %v", fx.name, k, err)
				}
			}
		}
		for _, k := range universe {
			if fx.f.Contains(k) {
				t.Fatalf("%s: stale positive for %q after full unwind", fx.name, k)
			}
		}
	}
}
