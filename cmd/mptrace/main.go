// Command mptrace generates, saves, and inspects the synthetic IP traces
// used by the trace experiments (the repository's substitute for the
// paper's CAIDA captures). Generating a full-scale trace once and reusing
// it across runs mirrors the paper's fixed-capture methodology.
//
// Usage:
//
//	mptrace -scale 1.0 -seed 1 -out trace.bin     # synthesize and save
//	mptrace -in trace.bin -stats                  # inspect a saved trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/dataset"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.1, "trace scale (1.0 = 292K flows / 5.6M packets)")
		seed  = flag.Uint64("seed", 1, "generator seed")
		out   = flag.String("out", "", "write the trace to this file")
		in    = flag.String("in", "", "read a trace from this file instead of generating")
		stats = flag.Bool("stats", true, "print trace statistics")
	)
	flag.Parse()

	var trace *dataset.Trace
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		t, err := dataset.ReadTrace(f)
		if err != nil {
			fatal(err)
		}
		trace = t
	default:
		t, err := dataset.NewTrace(dataset.DefaultTraceConfig(*scale, *seed))
		if err != nil {
			fatal(err)
		}
		trace = t
	}

	if *stats {
		counts := make(map[dataset.Flow]int, len(trace.Flows))
		for _, p := range trace.Packets {
			counts[p]++
		}
		sizes := make([]int, 0, len(counts))
		for _, c := range counts {
			sizes = append(sizes, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
		top := 0
		for i := 0; i < len(sizes) && i < 10; i++ {
			top += sizes[i]
		}
		fmt.Printf("flows:   %d unique\n", len(trace.Flows))
		fmt.Printf("packets: %d total (%.1f per flow)\n",
			len(trace.Packets), float64(len(trace.Packets))/float64(len(trace.Flows)))
		fmt.Printf("skew:    top-10 flows carry %.1f%% of packets; max flow %d packets\n",
			100*float64(top)/float64(len(trace.Packets)), sizes[0])
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		n, err := trace.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote:   %s (%d bytes, %.2f bytes/packet)\n",
			*out, n, float64(n)/float64(len(trace.Packets)))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mptrace: %v\n", err)
	os.Exit(1)
}
