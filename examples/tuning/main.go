// Tuning walks through sizing an MPCBF with the analytic model: optimal
// hash counts, the accuracy/access trade-off of MPCBF-g, and the overflow
// safety of a chosen geometry — the reasoning of the paper's Figs. 9-11
// turned into a design aid.
package main

import (
	"flag"
	"fmt"
	"log"

	mpcbf "repro"
)

func main() {
	var (
		items = flag.Int("n", 100000, "expected distinct items")
		memMb = flag.Float64("mem", 8, "memory budget in Mb")
	)
	flag.Parse()
	memBits := int(*memMb * (1 << 20))

	fmt.Printf("sizing for %d items in %.1f Mb (%.1f bits/item)\n\n",
		*items, *memMb, float64(memBits)/float64(*items))

	// 1. The standard CBF's optimum grows with memory and is expensive to
	//    run: every query costs k memory accesses.
	kc, fc := mpcbf.TuneKCBF(*items, memBits)
	fmt.Printf("standard CBF : optimal k=%-2d  fpr %.2e  (k accesses per query)\n", kc, fc)

	// 2. MPCBF's optimum is nearly flat; queries cost g accesses no matter
	//    how many hash functions are used.
	for g := 1; g <= 3; g++ {
		kg, fg := mpcbf.TuneK(*items, memBits, g)
		fmt.Printf("MPCBF-%d      : optimal k=%-2d  fpr %.2e  (%d access(es) per query)\n", g, kg, fg, g)
	}

	// 3. Overflow safety of the chosen geometry.
	p := mpcbf.OverflowProbability(*items, memBits, 64, 1)
	fmt.Printf("\nword-overflow probability of the MPCBF-1 geometry: %.2e\n", p)

	// 4. Build the tuned filter and validate the analytic rate empirically.
	k1, _ := mpcbf.TuneK(*items, memBits, 1)
	f, err := mpcbf.New(mpcbf.Options{MemoryBits: memBits, ExpectedItems: *items, HashFunctions: k1})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *items; i++ {
		if err := f.Insert([]byte(fmt.Sprintf("item-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	probes := 4 * *items
	fp := 0
	for i := 0; i < probes; i++ {
		if f.Contains([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	geo := f.Geometry()
	fmt.Printf("\nbuilt MPCBF-1: l=%d words, b1=%d, nmax=%d, k=%d\n",
		geo.Words, geo.FirstLevelBits, geo.WordCapacity, geo.HashFunctions)
	fmt.Printf("measured fpr %.2e over %d probes (analytic %.2e)\n",
		float64(fp)/float64(probes), probes, f.ExpectedFPR(*items))
	fmt.Printf("overflow events while loading: %d\n", f.OverflowEvents())
}
