package mpcbf

import "repro/internal/metrics"

// Cost is the price of one filter operation under the paper's performance
// model: how many memory words were fetched and how many hash bits were
// consumed to address them (the paper's "access bandwidth").
type Cost struct {
	MemoryAccesses int
	HashBits       int
}

func fromStats(s metrics.OpStats) Cost {
	return Cost{MemoryAccesses: s.MemAccesses, HashBits: s.HashBits}
}

// Filter is the read side shared by every structure in this package.
type Filter interface {
	// Contains reports whether key may be in the set. False positives
	// occur at the structure's configured rate; false negatives do not.
	Contains(key []byte) bool
	// MemoryBits is the structure's memory footprint in bits.
	MemoryBits() int
}

// CountingFilter is a dynamic-set filter supporting deletion.
type CountingFilter interface {
	Filter
	// Insert adds key. An error indicates the structure could not absorb
	// the insert (MPCBF word overflow under the fail policy).
	Insert(key []byte) error
	// Delete removes a previously inserted key. Deleting an absent key
	// returns an error and, as with any counting filter, risks false
	// negatives for colliding keys.
	Delete(key []byte) error
	// EstimateCount returns an upper bound on key's multiplicity (the
	// minimum counter over its positions).
	EstimateCount(key []byte) int
	// Len returns the current number of elements (inserts minus deletes).
	Len() int
}

// Static interface checks for every exported structure.
var (
	_ CountingFilter = (*MPCBF)(nil)
	_ CountingFilter = (*CBF)(nil)
	_ CountingFilter = (*PCBF)(nil)
	_ Filter         = (*Bloom)(nil)
	_ Filter         = (*BlockedBloom)(nil)
)

// Options configures any of the package's structures. Zero fields take
// the documented defaults.
type Options struct {
	// MemoryBits is the total memory budget in bits (required).
	MemoryBits int
	// ExpectedItems is the distinct-element population the structure is
	// sized for. MPCBF requires it (the word-capacity heuristic, Eq. 11 of
	// the paper); the other structures use it only for documentation.
	ExpectedItems int
	// HashFunctions is k (default 3, the paper's base configuration).
	HashFunctions int
	// MemoryAccesses is g, the number of words a key maps to (default 1).
	// Raising g lowers the false positive rate at the price of g memory
	// accesses per operation (MPCBF-g / PCBF-g / BF-g).
	MemoryAccesses int
	// WordBits is the machine word width w (default 64).
	WordBits int
	// Seed selects the hash family; equal seeds give identical layouts.
	Seed uint32
	// StrictOverflow makes MPCBF reject inserts that hit a full word
	// instead of the default graceful policy (freeze the word as
	// always-positive — bounded stale positives, never false negatives,
	// never failed inserts). The sizing heuristic keeps either event
	// rare: it targets about one at-threshold word per filter.
	StrictOverflow bool
}

func (o Options) k() int {
	if o.HashFunctions == 0 {
		return 3
	}
	return o.HashFunctions
}

func (o Options) g() int {
	if o.MemoryAccesses == 0 {
		return 1
	}
	return o.MemoryAccesses
}

func (o Options) w() int {
	if o.WordBits == 0 {
		return 64
	}
	return o.WordBits
}
