// Package analytic implements the paper's closed-form performance model:
// false positive rates for the standard Bloom filter/CBF (Eq. 1), PCBF-1
// and PCBF-g (Eqs. 2-3), MPCBF-1 (Eqs. 4-5 and the average-case variant)
// and MPCBF-g (Eqs. 8-9), the word-overflow bounds (Eqs. 6 and 10), the
// inverse-Poisson nmax heuristic (Eq. 11), and the optimal-k searches
// behind Figs. 9-11. All mixtures over the binomial occupancy distribution
// are evaluated in a numerically careful way (log-domain start, recurrence
// stepping, relative-tolerance truncation).
package analytic

import (
	"fmt"
	"math"
)

// CounterBits is the per-counter width of the standard CBF, fixed at four
// bits throughout the paper.
const CounterBits = 4

// FPRBloom returns the false positive rate of a standard Bloom filter (or
// CBF, whose membership behavior is identical) with n elements, m vector
// positions and k hash functions: (1-(1-1/m)^{kn})^k (Eq. 1).
func FPRBloom(n, m, k int) float64 {
	if n <= 0 {
		return 0
	}
	if m <= 0 || k <= 0 {
		return 1
	}
	// (1-1/m)^{kn} computed stably as exp(kn*log1p(-1/m)).
	p := math.Exp(float64(k) * float64(n) * math.Log1p(-1.0/float64(m)))
	return math.Pow(1-p, float64(k))
}

// OptimalKBloom returns the integer k minimizing Eq. 1 at ratio m/n,
// i.e. round((m/n) ln 2), at least 1.
func OptimalKBloom(n, m int) int {
	if n <= 0 || m <= 0 {
		return 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}

// binomialMix evaluates sum_{j=0}^{trials} Binom(trials, p; j) * f(j),
// truncating the far tail once terms stop contributing. It assumes f is
// bounded in [0, 1], which holds for all conditional false-positive
// probabilities it is used with.
func binomialMix(trials int, p float64, f func(j int) float64) float64 {
	if trials <= 0 {
		return f(0)
	}
	if p <= 0 {
		return f(0)
	}
	if p >= 1 {
		return f(trials)
	}
	// pmf(0) = (1-p)^trials in log domain; step with the recurrence
	// pmf(j+1) = pmf(j) * (trials-j)/(j+1) * p/(1-p).
	logPmf := float64(trials) * math.Log1p(-p)
	pmf := math.Exp(logPmf)
	ratio := p / (1 - p)
	mean := float64(trials) * p
	sum := 0.0
	acc := 0.0 // total probability mass consumed
	for j := 0; j <= trials; j++ {
		if pmf > 0 {
			sum += pmf * f(j)
			acc += pmf
		}
		// Stop when virtually all mass is consumed and we are past the mean.
		if float64(j) > mean && acc > 1-1e-15 {
			break
		}
		pmf *= float64(trials-j) / float64(j+1) * ratio
	}
	return sum
}

// condFPR returns the probability that a query slot pattern of kq hashes
// over a b-slot range is fully covered when j*ki increments landed
// uniformly in the range: (1-(1-1/b)^{j*ki})^{kq}. ki and kq may be
// fractional to mirror the paper's k/g formulas.
func condFPR(j int, ki, kq, b float64) float64 {
	if b <= 1 {
		return 1
	}
	if j == 0 {
		return 0
	}
	p := math.Exp(float64(j) * ki * math.Log1p(-1/b))
	return math.Pow(1-p, kq)
}

// FPRBlockedBloom returns the false positive rate of the one-memory-access
// Bloom filter BF-g of Qiao et al. [11]: l words of w bits, k bits per key
// split over g words. For g=1 this is the formula the paper's Eq. 2
// generalizes to counters; for g>1 the per-word term mirrors Eq. 3 with a
// bit range w instead of w/4 counters.
func FPRBlockedBloom(n, l, w, k, g int) float64 {
	if l <= 0 || w <= 1 {
		return 1
	}
	kg := float64(k) / float64(g)
	perWord := binomialMix(g*n, 1/float64(l), func(j int) float64 {
		return condFPR(j, kg, kg, float64(w))
	})
	return math.Pow(perWord, float64(g))
}

// Words returns l, the number of w-bit words a CBF of m 4-bit counters
// occupies: l = 4m/w (the paper's partitioning of the same memory).
func Words(m, w int) int {
	l := m * CounterBits / w
	if l < 1 {
		l = 1
	}
	return l
}

// FPRPCBF1 returns Eq. 2: the false positive rate of PCBF-1 with n
// elements, m 4-bit counters re-partitioned into w-bit words (w/4 counters
// per word), and k hash functions.
func FPRPCBF1(n, m, w, k int) float64 {
	l := Words(m, w)
	b := float64(w) / CounterBits
	return binomialMix(n, 1/float64(l), func(j int) float64 {
		return condFPR(j, float64(k), float64(k), b)
	})
}

// FPRPCBFg returns Eq. 3: the false positive rate of PCBF-g. Following the
// paper, each of the g probed words is modeled with k/g hashes and the
// word-selection count E' ~ Binom(gn, 1/l); the per-word term is raised to
// the g-th power.
func FPRPCBFg(n, m, w, k, g int) float64 {
	if g <= 1 {
		return FPRPCBF1(n, m, w, k)
	}
	l := Words(m, w)
	b := float64(w) / CounterBits
	kg := float64(k) / float64(g)
	perWord := binomialMix(g*n, 1/float64(l), func(j int) float64 {
		return condFPR(j, kg, kg, b)
	})
	return math.Pow(perWord, float64(g))
}

// FPRMPCBF1 returns Eq. 5: the false positive rate of the improved
// MPCBF-1 whose first level has b1 = w - k*nmax bits. Memory is given as
// the equivalent standard-CBF counter count m (so l = 4m/w words).
func FPRMPCBF1(n, m, w, k, nmax int) float64 {
	l := Words(m, w)
	b1 := float64(w - k*nmax)
	if b1 < 1 {
		return 1
	}
	return binomialMix(n, 1/float64(l), func(j int) float64 {
		return condFPR(j, float64(k), float64(k), b1)
	})
}

// FPRMPCBF1Avg returns the paper's average-case MPCBF-1 rate, where every
// word holds n_avg = n*w/(4m) elements and b1 = w - k*n_avg.
func FPRMPCBF1Avg(n, m, w, k int) float64 {
	l := Words(m, w)
	navg := float64(n) / float64(l)
	b1 := float64(w) - float64(k)*navg
	if b1 < 1 {
		return 1
	}
	return binomialMix(n, 1/float64(l), func(j int) float64 {
		return condFPR(j, float64(k), float64(k), b1)
	})
}

// FPRMPCBFg returns Eq. 9: the improved MPCBF-g rate with
// b1 = w - ceil(k/g)*nmax.
func FPRMPCBFg(n, m, w, k, g, nmax int) float64 {
	if g <= 1 {
		return FPRMPCBF1(n, m, w, k, nmax)
	}
	l := Words(m, w)
	kg := float64(k) / float64(g)
	kgCeil := math.Ceil(kg)
	b1 := float64(w) - kgCeil*float64(nmax)
	if b1 < 1 {
		return 1
	}
	perWord := binomialMix(g*n, 1/float64(l), func(j int) float64 {
		return condFPR(j, kg, kg, b1)
	})
	return math.Pow(perWord, float64(g))
}

// FPRMPCBFgAvg returns the average-case MPCBF-g rate with every word
// holding n'_avg = gn/l elements of k/g hashes each, so
// b1 = w - k*n*w/(4m) exactly as for MPCBF-1.
func FPRMPCBFgAvg(n, m, w, k, g int) float64 {
	if g <= 1 {
		return FPRMPCBF1Avg(n, m, w, k)
	}
	l := Words(m, w)
	kg := float64(k) / float64(g)
	b1 := float64(w) - float64(k)*float64(n)/float64(l)
	if b1 < 1 {
		return 1
	}
	perWord := binomialMix(g*n, 1/float64(l), func(j int) float64 {
		return condFPR(j, kg, kg, b1)
	})
	return math.Pow(perWord, float64(g))
}

// OverflowBoundMPCBF1 returns Eq. 6: the union-style upper bound
// l * (e*n/(nmax*l))^nmax on the probability that some word of MPCBF-1
// receives at least nmax elements. The paper plots the per-word bound
// times l; both are exposed (perWord=false multiplies by l).
func OverflowBoundMPCBF1(n, l, nmax int, perWord bool) float64 {
	if nmax <= 0 {
		return 1
	}
	base := math.E * float64(n) / (float64(nmax) * float64(l))
	b := math.Pow(base, float64(nmax))
	if !perWord {
		b *= float64(l)
	}
	return math.Min(b, 1)
}

// OverflowBoundMPCBFg returns Eq. 10 for MPCBF-g: per-word increments
// follow Binom(gn, 1/l) and the threshold is n'max increments of k/g
// hashes each; the bound is (e*g*n/(n'max*l))^{n'max}, optionally times l.
func OverflowBoundMPCBFg(n, l, g, nmax int, perWord bool) float64 {
	if nmax <= 0 {
		return 1
	}
	base := math.E * float64(g) * float64(n) / (float64(nmax) * float64(l))
	b := math.Pow(base, float64(nmax))
	if !perWord {
		b *= float64(l)
	}
	return math.Min(b, 1)
}

// OverflowExactTail returns the exact binomial tail P(E >= nmax) for
// E ~ Binom(trials, 1/l), the quantity Eq. 6 bounds. Used to validate the
// bound and in tests.
func OverflowExactTail(trials, l, nmax int) float64 {
	if nmax <= 0 {
		return 1
	}
	if nmax > trials {
		return 0
	}
	return binomialMix(trials, 1/float64(l), func(j int) float64 {
		if j >= nmax {
			return 1
		}
		return 0
	})
}

// PoissInv returns the smallest x such that the CDF of a Poisson(lambda)
// distribution at x is >= p (the paper's PoissInv of Eq. 11).
func PoissInv(p, lambda float64) int {
	if p <= 0 {
		return 0
	}
	if lambda <= 0 {
		return 0
	}
	pmf := math.Exp(-lambda)
	cdf := pmf
	x := 0
	// Hard limit far beyond any plausible quantile to guarantee termination
	// even for p extremely close to 1 with accumulated rounding.
	limit := int(lambda) + 200 + int(20*math.Sqrt(lambda))
	for cdf < p && x < limit {
		x++
		pmf *= lambda / float64(x)
		cdf += pmf
	}
	return x
}

// HeuristicNmax implements Eq. 11: nmax = PoissInv(1 - 1/l, n/l), the
// paper's rule for choosing the per-word capacity so that no overflow is
// expected across l words.
func HeuristicNmax(n, l int) int {
	if l <= 0 {
		return 0
	}
	nm := PoissInv(1-1/float64(l), float64(n)/float64(l))
	if nm < 1 {
		nm = 1
	}
	return nm
}

// MPCBFDesign captures the derived geometry of an MPCBF-g instance at a
// given memory budget, the quantities Section IV.B's heuristic fixes
// before an experiment.
type MPCBFDesign struct {
	MemoryBits int // total memory M in bits
	W          int // word width
	L          int // number of words, M/w
	K          int // hash functions
	G          int // memory accesses
	Nmax       int // per-word element capacity (heuristic Eq. 11)
	B1         int // first-level width w - ceil(k/g)*nmax
}

// Design derives the MPCBF geometry for n elements in memoryBits bits with
// word width w, k hashes and g accesses, using the Eq. 11 heuristic
// (applied to g*n word selections for g > 1).
func Design(n, memoryBits, w, k, g int) (MPCBFDesign, error) {
	if memoryBits < w || w <= 0 || k <= 0 || g <= 0 {
		return MPCBFDesign{}, fmt.Errorf("analytic: bad design parameters (M=%d, w=%d, k=%d, g=%d)", memoryBits, w, k, g)
	}
	l := memoryBits / w
	nmax := HeuristicNmax(g*n, l)
	perWordK := (k + g - 1) / g
	b1 := w - perWordK*nmax
	if b1 < perWordK {
		return MPCBFDesign{}, fmt.Errorf("analytic: word too small: w=%d leaves b1=%d for %d hashes (nmax=%d)", w, b1, perWordK, nmax)
	}
	return MPCBFDesign{MemoryBits: memoryBits, W: w, L: l, K: k, G: g, Nmax: nmax, B1: b1}, nil
}

// FPR evaluates the improved-MPCBF false positive rate of the design for
// n elements (Eq. 5 / Eq. 9 with m = M/4 equivalent counters).
func (d MPCBFDesign) FPR(n int) float64 {
	m := d.MemoryBits / CounterBits
	return FPRMPCBFg(n, m, d.W, d.K, d.G, d.Nmax)
}

// OptimalKMPCBF brute-force searches k in [1, kMax] minimizing the
// MPCBF-g false positive rate at the given geometry, re-deriving nmax and
// b1 for every candidate exactly as the paper's exhaustive search does.
func OptimalKMPCBF(n, memoryBits, w, g, kMax int) (bestK int, bestFPR float64) {
	bestK, bestFPR = 1, math.Inf(1)
	for k := 1; k <= kMax; k++ {
		if k < g {
			continue
		}
		d, err := Design(n, memoryBits, w, k, g)
		if err != nil {
			continue
		}
		f := d.FPR(n)
		if f < bestFPR {
			bestK, bestFPR = k, f
		}
	}
	return bestK, bestFPR
}

// OptimalKCBF returns the optimal k for the standard CBF at memoryBits of
// memory (m = M/4 counters) together with the resulting rate.
func OptimalKCBF(n, memoryBits int) (int, float64) {
	m := memoryBits / CounterBits
	k := OptimalKBloom(n, m)
	return k, FPRBloom(n, m, k)
}
