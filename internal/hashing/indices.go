package hashing

import "math/bits"

// Hasher derives all per-key indices a filter needs from a single 128-bit
// base hash, in the Kirsch–Mitzenmacher "less hashing, same performance"
// style: the i-th derived value is a strong mix of h1 + i*h2, which behaves
// like an independent hash for Bloom-filter purposes. Deriving everything
// from one base hash keeps the per-operation hash computation constant
// regardless of k and g, mirroring how the paper's hardware-oriented design
// treats hash cost.
type Hasher struct {
	seed uint32
}

// NewHasher returns a Hasher with the given seed. Filters built with the
// same seed map identical keys to identical locations, which insert/delete
// symmetry relies on.
func NewHasher(seed uint32) Hasher { return Hasher{seed: seed} }

// Seed returns the hasher's seed.
func (h Hasher) Seed() uint32 { return h.seed }

// Base returns the 128-bit base hash of key.
func (h Hasher) Base(key []byte) (uint64, uint64) {
	return Murmur128(key, h.seed)
}

// Derived returns the i-th derived 64-bit hash from base (h1, h2).
func Derived(h1, h2 uint64, i int) uint64 {
	return SplitMix64(h1 + uint64(i)*h2)
}

// Index returns the i-th derived index in [0, n). n must be positive.
// A 128-bit multiply-shift reduction avoids modulo bias without division.
func Index(h1, h2 uint64, i, n int) int {
	return Reduce(Derived(h1, h2, i), n)
}

// Reduce maps a 64-bit hash uniformly onto [0, n) using the multiply-shift
// (Lemire) reduction.
func Reduce(x uint64, n int) int {
	hi, _ := bits.Mul64(x, uint64(n))
	return int(hi)
}

// IndexStream enumerates derived indices for one key. Streams are split
// into channels so that word-selection hashes and slot hashes never reuse
// the same derived value: channel c, position i maps to derived hash
// c*maxPerChannel + i.
type IndexStream struct {
	h1, h2 uint64
}

// channel identifiers for derived-hash separation.
const (
	chanWord = iota
	chanSlot
	chanAux
	streamStride = 64 // max derived values per channel
)

// NewIndexStream builds the index stream of key under h.
func (h Hasher) NewIndexStream(key []byte) IndexStream {
	h1, h2 := Murmur128(key, h.seed)
	return IndexStream{h1: h1, h2: h2}
}

// Word returns the i-th word-selection index in [0, l).
func (s IndexStream) Word(i, l int) int {
	return Index(s.h1, s.h2, chanWord*streamStride+i, l)
}

// Slot returns the i-th slot index in [0, rangeSize).
func (s IndexStream) Slot(i, rangeSize int) int {
	return Index(s.h1, s.h2, chanSlot*streamStride+i, rangeSize)
}

// Aux returns the i-th auxiliary derived hash (fingerprints, VI increments).
func (s IndexStream) Aux(i int) uint64 {
	return Derived(s.h1, s.h2, chanAux*streamStride+i)
}

// SplitKEven distributes k slot hashes over g words the way the paper's
// MPCBF-g does: the first g-1 words receive ceil(k/g) hashes and the last
// word receives the remainder (e.g. k=3, g=2 gives 2 and 1). The returned
// slice has length g and sums to k. Any leftover words receive zero hashes
// only when k < g, which constructors reject.
func SplitKEven(k, g int) []int {
	if k <= 0 || g <= 0 {
		panic("hashing: k and g must be positive")
	}
	per := (k + g - 1) / g // ceil(k/g)
	out := make([]int, g)
	remaining := k
	for i := 0; i < g; i++ {
		take := per
		if take > remaining {
			take = remaining
		}
		out[i] = take
		remaining -= take
	}
	return out
}
