package mlccbf

import (
	"fmt"
	"testing"

	"repro/internal/hashing"
)

func keys(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(10, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	f, _ := New(1<<14, 3, 1)
	in := keys("in", 1500)
	for _, k := range in {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range in {
		if !f.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	for _, k := range in {
		if err := f.Delete(k); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	for _, k := range in {
		if f.Contains(k) {
			t.Fatalf("stale positive for %q", k)
		}
	}
	// Full unwind: only the first layer remains in use.
	if got := f.MemoryBits(); got != 1<<14 {
		t.Fatalf("MemoryBits = %d after unwind, want %d (layers %v)", got, 1<<14, f.Layers())
	}
}

func TestCompressedSizeTracksContent(t *testing.T) {
	// The hierarchy holds exactly one bit per outstanding increment —
	// the compression claim of the multilayer design.
	f, _ := New(1<<12, 3, 2)
	in := keys("in", 200)
	for i, k := range in {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
		want := 1<<12 + (i+1)*3
		if got := f.MemoryBits(); got != want {
			t.Fatalf("after %d inserts MemoryBits = %d, want %d", i+1, got, want)
		}
	}
}

func TestCountOf(t *testing.T) {
	f, _ := New(1<<12, 3, 0)
	k := []byte("dup")
	for i := 1; i <= 6; i++ {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
		if got := f.CountOf(k); got < i {
			t.Fatalf("CountOf after %d inserts = %d", i, got)
		}
	}
	for i := 0; i < 6; i++ {
		if err := f.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if f.CountOf(k) != 0 {
		t.Fatalf("CountOf after unwind = %d", f.CountOf(k))
	}
}

func TestDeleteAbsentUnderflows(t *testing.T) {
	f, _ := New(1<<10, 3, 0)
	if err := f.Delete([]byte("ghost")); err != ErrUnderflow {
		t.Fatalf("expected ErrUnderflow, got %v", err)
	}
}

func TestCounterOverflowBounded(t *testing.T) {
	f, _ := New(64, 1, 0)
	k := []byte("hot")
	var err error
	for i := 0; i < maxLayers+2; i++ {
		if err = f.Insert(k); err != nil {
			break
		}
	}
	if err != ErrCounterOverflow {
		t.Fatalf("expected ErrCounterOverflow, got %v", err)
	}
}

func TestRandomOpsAgainstReference(t *testing.T) {
	f, _ := New(1<<12, 3, 5)
	ref := make(map[string]int)
	rng := hashing.NewRNG(31)
	universe := keys("u", 200)
	for op := 0; op < 8000; op++ {
		k := universe[rng.Intn(len(universe))]
		if (rng.Intn(2) == 0 || ref[string(k)] == 0) && ref[string(k)] < 8 {
			if err := f.Insert(k); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			ref[string(k)]++
		} else {
			if err := f.Delete(k); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			ref[string(k)]--
		}
	}
	outstanding := 0
	for k, n := range ref {
		outstanding += n
		if n > 0 && !f.Contains([]byte(k)) {
			t.Fatalf("false negative for %q (count %d)", k, n)
		}
		if n > 0 && f.CountOf([]byte(k)) < n {
			t.Fatalf("CountOf(%q) = %d below %d", k, f.CountOf([]byte(k)), n)
		}
	}
	if got := f.MemoryBits(); got != 1<<12+outstanding*3 {
		t.Fatalf("MemoryBits = %d, want %d", got, 1<<12+outstanding*3)
	}
}

func TestShiftCostGrowsWithLoad(t *testing.T) {
	// The global hierarchy's defining cost: the bits moved per increment
	// grow with the number of stored elements, unlike MPCBF's in-word
	// bound. Insert in two equal phases and compare shift totals.
	f, _ := New(1<<14, 3, 9)
	in := keys("in", 4000)
	half := len(in) / 2
	for _, k := range in[:half] {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	firstPhase := f.ShiftedBits
	for _, k := range in[half:] {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	secondPhase := f.ShiftedBits - firstPhase
	if secondPhase <= firstPhase*3/2 {
		t.Fatalf("shift cost not growing: phase1 %d, phase2 %d", firstPhase, secondPhase)
	}
}

func TestReset(t *testing.T) {
	f, _ := New(256, 3, 0)
	f.Insert([]byte("a"))
	f.Reset()
	if f.Count() != 0 || f.Contains([]byte("a")) || f.MemoryBits() != 256 {
		t.Fatal("Reset incomplete")
	}
}
