package loadgen

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	mpcbf "repro"
	"repro/client"
	"repro/internal/dataset"
	"repro/server"
	"repro/server/wire"
)

// startServer runs an in-process mpcbfd server (SyncNever: these tests
// measure the generator, not the WAL; windowed so insert_ttl is legal)
// and returns its address.
func startServer(t *testing.T) string {
	t.Helper()
	store, err := server.OpenStore(server.StoreOptions{
		Dir:         t.TempDir(),
		Filter:      mpcbf.Options{MemoryBits: 1 << 20, ExpectedItems: 10_000},
		Shards:      2,
		Sync:        server.SyncNever,
		Window:      time.Minute,
		Generations: 4,
		Log:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := server.New(store, server.Config{}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return ln.Addr().String()
}

func testConfig(addr string) Config {
	return Config{
		Addrs:       []string{addr},
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		Mix:         Mix{Insert: 40, Delete: 5, Contains: 50, InsertTTL: 5},
		Keyspace:    dataset.KeyspaceConfig{N: 1000},
		Seed:        7,
		TTL:         time.Minute,
	}
}

func TestRunClosedLoop(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), testConfig(addr))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 || res.Throughput <= 0 {
		t.Fatalf("no throughput: %+v", res)
	}
	if res.Errors != 0 || res.MaybeApplied != 0 {
		t.Fatalf("errors against a healthy server: %+v", res)
	}
	for _, op := range []string{"insert", "delete", "contains", "insert_ttl"} {
		st, ok := res.Ops[op]
		if !ok || st.Count == 0 {
			t.Fatalf("op %s missing from result: %+v", op, res.Ops)
		}
		if st.P50Us <= 0 || st.P99Us < st.P50Us {
			t.Fatalf("op %s has nonsense percentiles: %+v", op, st)
		}
	}
	if res.Manifest.Mode != "closed" || res.Manifest.Seed != 7 {
		t.Fatalf("manifest = %+v", res.Manifest)
	}
	// The mix must steer the draw: contains ~10x delete at these weights.
	if res.Ops["contains"].Count < 3*res.Ops["delete"].Count {
		t.Fatalf("mix not honored: contains=%d delete=%d",
			res.Ops["contains"].Count, res.Ops["delete"].Count)
	}
}

func TestRunOpenLoopRate(t *testing.T) {
	addr := startServer(t)
	cfg := testConfig(addr)
	cfg.OpenLoop = true
	cfg.Rate = 400
	cfg.Duration = 500 * time.Millisecond
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Rate * cfg.Duration.Seconds()
	if f := float64(res.TotalOps); f < want*0.5 || f > want*1.5 {
		t.Fatalf("open loop sent %d ops, want ~%.0f", res.TotalOps, want)
	}
	if res.Manifest.Mode != "open" || res.Manifest.Rate != 400 {
		t.Fatalf("manifest = %+v", res.Manifest)
	}
}

func TestRunBatch(t *testing.T) {
	addr := startServer(t)
	cfg := testConfig(addr)
	cfg.Batch = 8
	var mu sync.Mutex
	acked := 0
	cfg.OnMutation = func(op Op, key []byte, err error) {
		if err != nil {
			t.Errorf("mutation error: %v", err)
			return
		}
		if !strings.HasPrefix(string(key), "k") {
			t.Errorf("unexpected key %q", key)
		}
		mu.Lock()
		acked++
		mu.Unlock()
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("batch errors: %+v", res)
	}
	if acked == 0 {
		t.Fatal("OnMutation never saw an acked batch key")
	}
	if res.Manifest.Batch != 8 {
		t.Fatalf("manifest batch = %d", res.Manifest.Batch)
	}
}

func TestRunPipelined(t *testing.T) {
	addr := startServer(t)
	cfg := testConfig(addr)
	cfg.PipelineDepth = 16
	cfg.Concurrency = 2
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 || res.Errors != 0 {
		t.Fatalf("pipelined run: %+v", res)
	}
	if res.Manifest.Mode != "pipelined" {
		t.Fatalf("manifest mode = %s", res.Manifest.Mode)
	}
}

func TestRunNamespaces(t *testing.T) {
	addr := startServer(t)
	admin, err := client.Dial(addr, client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"lg-a", "lg-b", "lg-c"}
	for _, name := range names {
		cfg := wire.NsConfig{MemoryBits: 1 << 18, ExpectedItems: 2000,
			WindowNanos: uint64(time.Minute), Generations: 4}
		if err := admin.CreateNamespace(name, cfg); err != nil {
			t.Fatal(err)
		}
	}

	cfg := testConfig(addr)
	cfg.Namespaces = names
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 || res.Errors != 0 {
		t.Fatalf("namespace run: %+v", res)
	}
	// The fan-out must actually have touched each tenant.
	for _, name := range names {
		n, err := admin.Namespace(name).Len()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("namespace %s untouched by the run", name)
		}
	}
	admin.Close()
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                                     // no addrs
		{Addrs: []string{"x"}, OpenLoop: true}, // open loop without rate
		{Addrs: []string{"a", "b"}, PipelineDepth: 4, Mix: Mix{Insert: 1}}, // pipeline + cluster
		{Addrs: []string{"a", "b"}, Namespaces: []string{"n"}, Mix: Mix{Insert: 1}},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := Run(context.Background(), Config{Addrs: []string{"127.0.0.1:1"}, Mix: Mix{}}); err == nil {
		t.Fatal("zero mix accepted")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("insert=40,contains=55,delete=4,insert_ttl=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Insert: 40, Delete: 4, Contains: 55, InsertTTL: 1}) {
		t.Fatalf("parsed %+v", m)
	}
	for _, bad := range []string{"insert", "warp=1", "insert=-2", "insert=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestMergeBenchFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	r1 := &Result{Manifest: Manifest{Seed: 1, Mode: "closed"}, TotalOps: 10}
	r2 := &Result{Manifest: Manifest{Seed: 2, Mode: "open"}, TotalOps: 20}
	if err := r1.MergeBenchFile(path, "first"); err != nil {
		t.Fatal(err)
	}
	if err := r2.MergeBenchFile(path, "second"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs map[string]*Result `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 || doc.Runs["first"].TotalOps != 10 || doc.Runs["second"].TotalOps != 20 {
		t.Fatalf("merged doc: %+v", doc.Runs)
	}
	// Overwrite preserves the other entry.
	r3 := &Result{Manifest: Manifest{Seed: 3}, TotalOps: 30}
	if err := r3.MergeBenchFile(path, "first"); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	doc.Runs = nil
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Runs["first"].TotalOps != 30 || doc.Runs["second"].TotalOps != 20 {
		t.Fatalf("overwrite broke entries: %+v", doc.Runs)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestGrowLimitRamp(t *testing.T) {
	cfg := Config{
		Grow:      true,
		GrowSteps: 2,
		Duration:  900 * time.Millisecond,
		Keyspace:  dataset.KeyspaceConfig{N: 800},
	}
	ks, err := dataset.NewKeyspace(cfg.Keyspace)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(1000, 0)
	w := &worker{cfg: &cfg, ks: ks, start: start}
	// Three phases over 900ms: [0,300)ms -> 200 keys, [300,600)ms -> 400,
	// [600,...] -> 800; past the end clamps at the full keyspace.
	cases := []struct {
		at   time.Duration
		want int
	}{
		{0, 200}, {299 * time.Millisecond, 200},
		{300 * time.Millisecond, 400}, {599 * time.Millisecond, 400},
		{600 * time.Millisecond, 800}, {2 * time.Second, 800},
	}
	for _, tc := range cases {
		if got := w.growLimit(start.Add(tc.at)); got != tc.want {
			t.Errorf("growLimit(+%v) = %d, want %d", tc.at, got, tc.want)
		}
	}
}

func TestRunGrowManifest(t *testing.T) {
	addr := startServer(t)
	cfg := testConfig(addr)
	cfg.Grow = true
	cfg.GrowSteps = 2
	cfg.Keyspace.N = 800
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps == 0 || res.Errors != 0 {
		t.Fatalf("grow run unhealthy: %+v", res)
	}
	want := []GrowPhase{
		{At: "0s", Keys: 200},
		{At: "100ms", Keys: 400},
		{At: "200ms", Keys: 800},
	}
	if len(res.Manifest.GrowCurve) != len(want) {
		t.Fatalf("grow curve = %+v, want %+v", res.Manifest.GrowCurve, want)
	}
	for i, w := range want {
		if res.Manifest.GrowCurve[i] != w {
			t.Fatalf("grow curve[%d] = %+v, want %+v", i, res.Manifest.GrowCurve[i], w)
		}
	}
}

func TestGrowValidation(t *testing.T) {
	cfg := testConfig("127.0.0.1:1")
	cfg.Grow = true
	cfg.GrowSteps = 20 // 1000 >> 20 == 0: no keys in the first phase
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("want error for keyspace smaller than the grow ramp")
	}
}
