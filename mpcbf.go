package mpcbf

import (
	"repro/internal/analytic"
	"repro/internal/core"
)

// MPCBF is the paper's Multiple-Partitioned Counting Bloom Filter: a
// counting filter whose membership queries cost MemoryAccesses (default
// one) word fetches and whose false positive rate at equal memory is
// roughly an order of magnitude below the standard CBF's.
type MPCBF struct {
	f *core.Filter
}

// New builds an MPCBF from o. MemoryBits and ExpectedItems are required:
// the expected population drives the per-word capacity heuristic that
// fixes the first-level width (the improved HCBF layout of Section III.B).
func New(o Options) (*MPCBF, error) {
	policy := core.OverflowSaturate
	if o.StrictOverflow {
		policy = core.OverflowFail
	}
	f, err := core.New(core.Config{
		MemoryBits: o.MemoryBits,
		ExpectedN:  o.ExpectedItems,
		W:          o.w(),
		K:          o.k(),
		G:          o.g(),
		Seed:       o.Seed,
		Overflow:   policy,
	})
	if err != nil {
		return nil, err
	}
	return &MPCBF{f: f}, nil
}

// Insert adds key. Under the default policy a full word is frozen as
// always-positive and the insert succeeds; with Options.StrictOverflow a
// full word rejects the insert atomically with an error. The sizing
// heuristic makes either event rare.
func (m *MPCBF) Insert(key []byte) error { return m.f.Insert(key) }

// InsertWithCost is Insert with the operation's access cost.
func (m *MPCBF) InsertWithCost(key []byte) (Cost, error) {
	st, err := m.f.InsertStats(key)
	return fromStats(st), err
}

// Delete removes a previously inserted key.
func (m *MPCBF) Delete(key []byte) error { return m.f.Delete(key) }

// DeleteWithCost is Delete with the operation's access cost.
func (m *MPCBF) DeleteWithCost(key []byte) (Cost, error) {
	st, err := m.f.DeleteStats(key)
	return fromStats(st), err
}

// Contains reports whether key may be in the set, reading only the g
// first-level sub-vectors (one memory access per word).
func (m *MPCBF) Contains(key []byte) bool { return m.f.Contains(key) }

// ContainsBatch answers membership for every key of keys in order, writing
// the results into dst (grown when too small) and returning it. It is the
// single-threaded analog of Sharded.ContainsBatch: the per-key base hash
// and derived indices are computed exactly once and the filter geometry
// stays hot across the batch, so a reused dst makes bulk queries
// allocation-free. Pass nil to let the method allocate.
func (m *MPCBF) ContainsBatch(keys [][]byte, dst []bool) []bool {
	return m.f.ContainsBatch(keys, dst)
}

// ContainsWithCost is Contains with the operation's access cost; negative
// queries short-circuit on the first rejecting word.
func (m *MPCBF) ContainsWithCost(key []byte) (bool, Cost) {
	ok, st := m.f.Probe(key)
	return ok, fromStats(st)
}

// EstimateCount returns an upper bound on key's multiplicity.
func (m *MPCBF) EstimateCount(key []byte) int { return m.f.CountOf(key) }

// Len returns the current number of elements.
func (m *MPCBF) Len() int { return m.f.Count() }

// MemoryBits returns the filter's memory footprint in bits.
func (m *MPCBF) MemoryBits() int { return m.f.MemoryBits() }

// Reset clears the filter.
func (m *MPCBF) Reset() { m.f.Reset() }

// Geometry describes the derived layout of an MPCBF.
type Geometry struct {
	Words          int // l: number of w-bit words
	WordBits       int // w
	FirstLevelBits int // b1: slots per word
	HashFunctions  int // k
	MemoryAccesses int // g
	WordCapacity   int // nmax: per-word element budget (0 if layout forced)
}

// Geometry reports the filter's derived layout.
func (m *MPCBF) Geometry() Geometry {
	return Geometry{
		Words:          m.f.L(),
		WordBits:       m.f.W(),
		FirstLevelBits: m.f.B1(),
		HashFunctions:  m.f.K(),
		MemoryAccesses: m.f.G(),
		WordCapacity:   m.f.Nmax(),
	}
}

// OverflowEvents returns how many inserts hit a full word; with the
// heuristic sizing this stays at (or very near) zero.
func (m *MPCBF) OverflowEvents() int { return m.f.OverflowEvents() }

// SaturatedWords returns how many words were frozen as always-positive by
// the graceful overflow policy.
func (m *MPCBF) SaturatedWords() int { return m.f.SaturatedWords() }

// FillStats summarizes word occupancy: the mean used bits per word and
// the maximum hierarchy depth observed.
func (m *MPCBF) FillStats() (meanUsedBits float64, maxDepth int) { return m.f.FillStats() }

// ExpectedFPR returns the analytic false positive rate of this filter's
// geometry at population n (Eq. 9 of the paper).
func (m *MPCBF) ExpectedFPR(n int) float64 {
	mCounters := m.f.MemoryBits() / analytic.CounterBits
	nmax := m.f.Nmax()
	if nmax == 0 {
		// Forced-B1 layouts carry no heuristic capacity; recover the
		// equivalent nmax from the layout identity b1 = w - ceil(k/g)*nmax.
		perWord := (m.f.K() + m.f.G() - 1) / m.f.G()
		nmax = (m.f.W() - m.f.B1()) / perWord
	}
	return analytic.FPRMPCBFg(n, mCounters, m.f.W(), m.f.K(), m.f.G(), nmax)
}
