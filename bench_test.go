package mpcbf

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench .). Each BenchmarkFigN/BenchmarkTableN prints
// its table once (stdout) and times a full regeneration; the scale defaults
// to 5% of the paper's workload sizes and can be raised with
// MPEXP_SCALE=1.0 for a full reproduction.
//
// Micro-benchmarks (BenchmarkOps*) time individual operations of every
// structure, and BenchmarkAblation* quantify the design choices DESIGN.md
// calls out.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/hcbf"
	"repro/internal/sim"
)

func benchScale() float64 {
	if s := os.Getenv("MPEXP_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

var printedTables sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := sim.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := sim.Options{Scale: benchScale(), Seed: 1}
	var table *sim.Table
	for i := 0; i < b.N; i++ {
		t, err := r.Run(opts)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		table = t
	}
	if _, done := printedTables.LoadOrStore(id, true); !done && table != nil {
		table.Render(os.Stdout)
	}
}

func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "tab2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "tab3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "tab4") }
func BenchmarkExt1(b *testing.B)   { benchExperiment(b, "ext1") }
func BenchmarkExt2(b *testing.B)   { benchExperiment(b, "ext2") }
func BenchmarkExt3(b *testing.B)   { benchExperiment(b, "ext3") }
func BenchmarkExt4(b *testing.B)   { benchExperiment(b, "ext4") }

// --- per-operation micro-benchmarks -------------------------------------

const (
	microMem = 8 << 20
	microN   = 100000
)

func microKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
	}
	return keys
}

func benchInsertDelete(b *testing.B, f CountingFilter) {
	b.Helper()
	keys := microKeys(microN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if err := f.Insert(k); err != nil {
			b.Fatal(err)
		}
		if err := f.Delete(k); err != nil {
			b.Fatal(err)
		}
	}
}

func benchQuery(b *testing.B, f CountingFilter, hitRatio float64) {
	b.Helper()
	keys := microKeys(microN)
	inserted := int(float64(len(keys)) * hitRatio)
	for _, k := range keys[:inserted] {
		if err := f.Insert(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		if f.Contains(keys[i%len(keys)]) {
			sink++
		}
	}
	_ = sink
}

func BenchmarkOpsMPCBF1InsertDelete(b *testing.B) {
	f, _ := New(Options{MemoryBits: microMem, ExpectedItems: microN})
	benchInsertDelete(b, f)
}

func BenchmarkOpsMPCBF2InsertDelete(b *testing.B) {
	f, _ := New(Options{MemoryBits: microMem, ExpectedItems: microN, MemoryAccesses: 2})
	benchInsertDelete(b, f)
}

func BenchmarkOpsCBFInsertDelete(b *testing.B) {
	f, _ := NewCBF(Options{MemoryBits: microMem})
	benchInsertDelete(b, f)
}

func BenchmarkOpsPCBF1InsertDelete(b *testing.B) {
	f, _ := NewPCBF(Options{MemoryBits: microMem})
	benchInsertDelete(b, f)
}

func BenchmarkOpsMPCBF1Query(b *testing.B) {
	f, _ := New(Options{MemoryBits: microMem, ExpectedItems: microN})
	benchQuery(b, f, 0.8)
}

func BenchmarkOpsMPCBF2Query(b *testing.B) {
	f, _ := New(Options{MemoryBits: microMem, ExpectedItems: microN, MemoryAccesses: 2})
	benchQuery(b, f, 0.8)
}

func BenchmarkOpsCBFQuery(b *testing.B) {
	f, _ := NewCBF(Options{MemoryBits: microMem})
	benchQuery(b, f, 0.8)
}

func BenchmarkOpsPCBF1Query(b *testing.B) {
	f, _ := NewPCBF(Options{MemoryBits: microMem})
	benchQuery(b, f, 0.8)
}

func BenchmarkOpsPCBF2Query(b *testing.B) {
	f, _ := NewPCBF(Options{MemoryBits: microMem, MemoryAccesses: 2})
	benchQuery(b, f, 0.8)
}

func BenchmarkOpsBloomQuery(b *testing.B) {
	f, _ := NewBloom(Options{MemoryBits: microMem})
	keys := microKeys(microN)
	for _, k := range keys[:microN*8/10] {
		f.Insert(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		if f.Contains(keys[i%len(keys)]) {
			sink++
		}
	}
	_ = sink
}

// --- word engine ---------------------------------------------------------

func BenchmarkHCBFWordInc(b *testing.B) {
	arena := bitvec.New(64)
	w, err := hcbf.NewWord(arena, 0, 64, 43)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % 43
		if _, err := w.Inc(slot); err != nil {
			b.StopTimer()
			// Word full: unwind and continue.
			for s := 0; s < 43; s++ {
				for w.Has(s) {
					w.Dec(s)
				}
			}
			b.StartTimer()
			w.Inc(slot)
		}
	}
}

func BenchmarkHCBFWordCount(b *testing.B) {
	arena := bitvec.New(64)
	w, _ := hcbf.NewWord(arena, 0, 64, 43)
	for s := 0; s < 21; s++ {
		w.Inc(s % 43)
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += w.Count(i % 43)
	}
	_ = sink
}

// --- word kernel ---------------------------------------------------------
//
// BenchmarkKernel*/BenchmarkGeneric* pairs measure the register-resident
// word kernel against the generic arena path on identical geometry (the
// default w=64, k=3, g=1). `make bench-json` runs them and records the
// ns/op pairs in BENCH_kernel.json.

// kernelMicroFilter builds the default micro-benchmark geometry directly on
// the core filter, with the kernel on or off.
func kernelMicroFilter(b *testing.B, disable bool) *core.Filter {
	b.Helper()
	f, err := core.New(core.Config{
		MemoryBits:    microMem,
		ExpectedN:     microN,
		W:             64,
		K:             3,
		G:             1,
		Overflow:      core.OverflowSaturate,
		DisableKernel: disable,
	})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func benchCoreInsertDelete(b *testing.B, f *core.Filter) {
	b.Helper()
	keys := microKeys(microN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if err := f.Insert(k); err != nil {
			b.Fatal(err)
		}
		if err := f.Delete(k); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCoreContains(b *testing.B, f *core.Filter) {
	b.Helper()
	keys := microKeys(microN)
	for _, k := range keys[:microN*8/10] {
		if err := f.Insert(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		if f.Contains(keys[i%len(keys)]) {
			sink++
		}
	}
	_ = sink
}

func BenchmarkKernelInsertDelete(b *testing.B)  { benchCoreInsertDelete(b, kernelMicroFilter(b, false)) }
func BenchmarkGenericInsertDelete(b *testing.B) { benchCoreInsertDelete(b, kernelMicroFilter(b, true)) }
func BenchmarkKernelContains(b *testing.B)      { benchCoreContains(b, kernelMicroFilter(b, false)) }
func BenchmarkGenericContains(b *testing.B)     { benchCoreContains(b, kernelMicroFilter(b, true)) }

// benchWordIncDec cycles one word through increment/decrement pairs so the
// hierarchy stays populated and both directions are timed.
func benchWordIncDec(b *testing.B, w hcbf.Word) {
	b.Helper()
	const b1 = 43
	for s := 0; s < 18; s++ {
		if _, err := w.Inc(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % b1
		if _, err := w.Inc(slot); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Dec(slot); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelWordIncDec(b *testing.B) {
	arena := bitvec.New(64)
	w, err := hcbf.NewWord(arena, 0, 64, 43)
	if err != nil {
		b.Fatal(err)
	}
	if !w.Kernel() {
		b.Fatal("expected kernel dispatch")
	}
	benchWordIncDec(b, w)
}

func BenchmarkGenericWordIncDec(b *testing.B) {
	arena := bitvec.New(64)
	w, err := hcbf.NewWordGeneric(arena, 0, 64, 43)
	if err != nil {
		b.Fatal(err)
	}
	benchWordIncDec(b, w)
}

func benchWordCount(b *testing.B, w hcbf.Word) {
	b.Helper()
	for s := 0; s < 21; s++ {
		w.Inc(s % 43)
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += w.Count(i % 43)
	}
	_ = sink
}

func BenchmarkKernelWordCount(b *testing.B) {
	arena := bitvec.New(64)
	w, _ := hcbf.NewWord(arena, 0, 64, 43)
	benchWordCount(b, w)
}

func BenchmarkGenericWordCount(b *testing.B) {
	arena := bitvec.New(64)
	w, _ := hcbf.NewWordGeneric(arena, 0, 64, 43)
	benchWordCount(b, w)
}

// sinkU64 keeps register-resident benchmark results observable.
var sinkU64 uint64

// BenchmarkKernelRawIncDec times the kernel the way the core uses it: the
// word is loaded into a register once and increment/decrement pairs run
// register-to-register with no arena traffic. Compare against
// BenchmarkGenericWordIncDec, the per-bit arena walk doing the same work.
func BenchmarkKernelRawIncDec(b *testing.B) {
	const b1 = 43
	x := uint64(0)
	for s := 0; s < 18; s++ {
		x, _ = hcbf.Inc64(x, b1, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % b1
		x, _ = hcbf.Inc64(x, b1, slot)
		x, _, _ = hcbf.Dec64(x, b1, slot)
	}
	sinkU64 = x
}

// BenchmarkKernelRawCount times register-resident counter readout.
func BenchmarkKernelRawCount(b *testing.B) {
	const b1 = 43
	x := uint64(0)
	for s := 0; s < 21; s++ {
		x, _ = hcbf.Inc64(x, b1, s%b1)
	}
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += hcbf.Count64(x, b1, i%b1)
	}
	sinkU64 = uint64(sink)
}

// --- concurrency ---------------------------------------------------------

func BenchmarkShardedBatchInsert(b *testing.B) {
	keys := microKeys(microN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := NewSharded(Options{MemoryBits: microMem, ExpectedItems: microN}, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.InsertBatch(keys, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedBatchQuery(b *testing.B) {
	keys := microKeys(microN)
	s, err := NewSharded(Options{MemoryBits: microMem, ExpectedItems: microN}, 8)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.InsertBatch(keys[:microN*8/10], 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ContainsBatch(keys[:10000], 0)
	}
}

func BenchmarkShardedScalarQueryParallel(b *testing.B) {
	keys := microKeys(microN)
	s, err := NewSharded(Options{MemoryBits: microMem, ExpectedItems: microN}, 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range keys[:microN*8/10] {
		if err := s.Insert(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Contains(keys[i%len(keys)])
			i++
		}
	})
}

// --- ablations -----------------------------------------------------------

// measureFPR inserts n keys and probes fresh keys.
func measureFPR(b *testing.B, f interface {
	Insert([]byte) error
	Contains([]byte) bool
}, n, probes int) float64 {
	b.Helper()
	for i := 0; i < n; i++ {
		if err := f.Insert([]byte(fmt.Sprintf("in-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	fp := 0
	for i := 0; i < probes; i++ {
		if f.Contains([]byte(fmt.Sprintf("out-%d", i))) {
			fp++
		}
	}
	return float64(fp) / float64(probes)
}

var ablationOnce sync.Map

func ablationPrint(b *testing.B, key, format string, args ...any) {
	if _, done := ablationOnce.LoadOrStore(key, true); !done {
		fmt.Printf("ablation %s: %s\n", key, fmt.Sprintf(format, args...))
	}
	_ = b
}

// BenchmarkAblationImprovedHCBF quantifies the improved layout of Section
// III.B.3: the heuristic first level (b1 = w - k*nmax) against the basic
// HCBF's fixed half-word first level at the same memory.
func BenchmarkAblationImprovedHCBF(b *testing.B) {
	const mem, n, probes = 1 << 21, 20000, 100000
	for i := 0; i < b.N; i++ {
		improved, err := core.New(core.Config{MemoryBits: mem, ExpectedN: n, K: 3,
			Overflow: core.OverflowSaturate})
		if err != nil {
			b.Fatal(err)
		}
		basic, err := core.New(core.Config{MemoryBits: mem, B1: 32, K: 3,
			Overflow: core.OverflowSaturate})
		if err != nil {
			b.Fatal(err)
		}
		fImp := measureFPR(b, improved, n, probes)
		fBasic := measureFPR(b, basic, n, probes)
		if i == 0 {
			ablationPrint(b, "improved-hcbf",
				"improved b1=%d fpr=%.2e | basic b1=32 fpr=%.2e (improved should win)",
				improved.B1(), fImp, fBasic)
		}
	}
}

// BenchmarkAblationWordSize sweeps the word width at fixed memory: larger
// words widen the first level faster than they concentrate load.
func BenchmarkAblationWordSize(b *testing.B) {
	const mem, n, probes = 1 << 21, 20000, 100000
	for i := 0; i < b.N; i++ {
		line := ""
		for _, w := range []int{32, 64, 128, 256} {
			f, err := core.New(core.Config{MemoryBits: mem, ExpectedN: n, K: 3, W: w,
				Overflow: core.OverflowSaturate})
			if err != nil {
				b.Fatal(err)
			}
			line += fmt.Sprintf("w=%d fpr=%.2e  ", w, measureFPR(b, f, n, probes))
		}
		if i == 0 {
			ablationPrint(b, "word-size", "%s", line)
		}
	}
}

// BenchmarkAblationOverflowPolicy compares the strict and saturating
// overflow policies on a deliberately tight filter.
func BenchmarkAblationOverflowPolicy(b *testing.B) {
	const mem, n = 1 << 18, 20000 // ~13 bits per key: tight
	for i := 0; i < b.N; i++ {
		strict, err := core.New(core.Config{MemoryBits: mem, ExpectedN: n, K: 3})
		if err != nil {
			b.Fatal(err)
		}
		sat, err := core.New(core.Config{MemoryBits: mem, ExpectedN: n, K: 3,
			Overflow: core.OverflowSaturate})
		if err != nil {
			b.Fatal(err)
		}
		rejected := 0
		for j := 0; j < n; j++ {
			key := []byte(fmt.Sprintf("in-%d", j))
			if err := strict.Insert(key); err != nil {
				rejected++
			}
			if err := sat.Insert(key); err != nil {
				b.Fatal(err)
			}
		}
		if i == 0 {
			ablationPrint(b, "overflow-policy",
				"strict rejected %d of %d inserts; saturate froze %d of %d words",
				rejected, n, sat.SaturatedWords(), sat.L())
		}
	}
}

// BenchmarkAblationHashCount sweeps k at fixed geometry, showing the
// near-flat optimum of Fig. 9 empirically.
func BenchmarkAblationHashCount(b *testing.B) {
	const mem, n, probes = 1 << 21, 20000, 100000
	for i := 0; i < b.N; i++ {
		line := ""
		for _, k := range []int{2, 3, 4, 5, 6} {
			f, err := core.New(core.Config{MemoryBits: mem, ExpectedN: n, K: k,
				Overflow: core.OverflowSaturate})
			if err != nil {
				b.Fatal(err)
			}
			line += fmt.Sprintf("k=%d fpr=%.2e  ", k, measureFPR(b, f, n, probes))
		}
		if i == 0 {
			ablationPrint(b, "hash-count", "%s", line)
		}
	}
}
