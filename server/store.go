package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	mpcbf "repro"
	"repro/elastic"
	"repro/server/ns"
	"repro/server/wire"
	"repro/window"
)

// Store is the durable state behind mpcbfd: a sharded MPCBF plus a
// write-ahead log and periodic snapshots.
//
// Durability contract: a mutation is acknowledged (the method returns
// nil / its success flag) only after it has been applied in memory AND
// appended to the WAL under the configured fsync policy. With SyncAlways
// every acknowledged mutation survives a crash; with SyncInterval the
// exposure window is the sync interval; with SyncNever the OS decides.
// Mutations are applied before they are logged, so a WAL record always
// describes a mutation that succeeded — replay never re-applies a failed
// delete — and a crash between apply and log can only lose an
// *unacknowledged* mutation.
//
// Snapshot protocol: under the mutation lock the filter is marshalled
// and the WAL rotated to a fresh segment; the marshalled state then
// covers every record in segments below the new sequence number. The
// snapshot bytes are written to a temp file, fsynced, atomically renamed
// to snapshot-<seq>.snap, and read back to verify they load; only then
// are predecessors pruned — keeping one previous snapshot generation and
// the segments that cover it as a fallback. Recovery loads the newest
// snapshot that unmarshals cleanly, replays every surviving segment at
// or above its sequence number, and truncates any torn tail off the live
// segment before appending to it.
type Store struct {
	opts StoreOptions

	// mu serializes mutations against each other and against the
	// marshal+rotate step of a snapshot. Reads go straight to the filter,
	// which has its own per-shard locks. The filter pointer itself is
	// atomic because a replica bootstrap swaps the whole filter while
	// reads are in flight.
	mu     sync.Mutex
	filter atomic.Pointer[mpcbf.Sharded]
	win    atomic.Pointer[window.Filter]  // non-nil in windowed mode; filter is nil then
	el     atomic.Pointer[elastic.Filter] // non-nil in elastic mode; filter is nil then
	wal    *wal

	// reg holds the named namespaces (see ns_store.go); walCtx is the
	// WAL's current selection context — the namespace the last NS_SELECT
	// record named (nil = the default state). Guarded by s.mu on the
	// append path and by apply-path serialization during replay, and
	// reset to nil at every segment boundary.
	reg    *ns.Registry
	walCtx *ns.Entry

	rotHist Histogram // windowed mode: rotation latency (ns)

	snapshots    atomic.Uint64
	lastSnapshot atomic.Int64 // unix nanos, 0 = never
	replayed     int          // records replayed at open

	// onApply, when set, observes each replicated WAL range applied to a
	// replica store: segment seq, byte range [off, off+n), record count,
	// and apply duration. The serving layer points it at the tracer so
	// replica-apply spans land in /debug/traces without the store
	// importing the tracing types.
	onApply func(seq uint64, off int64, n int, recs int, d time.Duration)

	bg     sync.WaitGroup
	stop   chan struct{}
	closed atomic.Bool
}

// SetApplyObserver installs the replica-apply observer. Call before
// serving; nil disables.
func (s *Store) SetApplyObserver(fn func(seq uint64, off int64, n int, recs int, d time.Duration)) {
	s.mu.Lock()
	s.onApply = fn
	s.mu.Unlock()
}

// f returns the current filter; safe without the mutation lock.
func (s *Store) f() *mpcbf.Sharded { return s.filter.Load() }

// StoreOptions configures OpenStore. Filter geometry options are used
// only when no snapshot or WAL exists yet; an existing store carries its
// geometry in the snapshot.
type StoreOptions struct {
	// Dir is the data directory (created if absent).
	Dir string
	// Filter is the geometry for a fresh store.
	Filter mpcbf.Options
	// Shards is the shard count for a fresh store (default 16).
	Shards int
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the ticker period under SyncInterval (default 100ms).
	SyncEvery time.Duration
	// SnapshotEvery starts a background snapshot loop when positive.
	SnapshotEvery time.Duration
	// BatchWorkers bounds batch fan-out (0 = one goroutine per shard).
	BatchWorkers int
	// Window, when positive, runs the store in sliding-window mode: state
	// is a ring of Generations filters rotating every Window/Generations,
	// keys expire after at most Window, and the WAL additionally records
	// rotations and TTL placements (see window_store.go). Like the filter
	// geometry, the mode is sticky: opening an existing non-windowed
	// store with Window set (or vice versa) is an error on a primary.
	Window time.Duration
	// Generations is the window ring size G (default 4; windowed only).
	Generations int
	// Elastic runs the store in elastic mode: state is an elastic.Filter
	// chain that grows a new generation when the head saturates, and the
	// WAL additionally records growth and import events (see
	// elastic_store.go). Sticky like Window, and mutually exclusive with
	// it: a window expires whole generations on a clock, which a growing
	// chain cannot reconcile with.
	Elastic bool
	// ElasticFPR is the chain-wide false positive bound (elastic only;
	// 0 derives it from the seed geometry — see elastic.Options).
	ElasticFPR float64
	// NsDefaults is the default per-namespace filter configuration; zero
	// fields get the ns package's hard fallbacks. Per-namespace CREATE_NS
	// overrides resolve against it.
	NsDefaults ns.Config
	// NsQuota bounds the summed resident bytes of all named namespaces;
	// least-recently-touched namespaces are evicted (snapshot-on-evict,
	// recover-on-touch) to fit. <= 0: unlimited.
	NsQuota int64
	// NsIdleAfter evicts namespaces untouched for this long (0: off).
	NsIdleAfter time.Duration
	// Replica opens the store as a replication target: its WAL mirrors a
	// primary's segment files byte-for-byte (via ReplicaApply /
	// ReplicaBootstrap), so the store never snapshots on its own — a
	// snapshot would rotate the WAL and desynchronize the mirror. The
	// snapshot loop is disabled, Close skips the final snapshot, and
	// Snapshot returns an error.
	Replica bool
	// Log receives operational messages (default slog.Default()). The
	// store logs with component=store attached.
	Log *slog.Logger
}

func (o *StoreOptions) setDefaults() {
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.Window > 0 && o.Generations <= 0 {
		o.Generations = 4
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = slog.Default()
	}
	o.Log = o.Log.With("component", "store")
}

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%016x.snap", seq))
}

// Snapshot files carry a CRC envelope so a silently flipped byte in the
// (self-consistent but checksum-free) filter encoding is caught at load
// time and recovery falls back instead of serving corrupt counters:
//
//	[u32 magic][u32 crc32(IEEE) of data][data = Sharded.MarshalBinary]
const snapMagic = 0x50414E53 // "SNAP" little-endian

func encodeSnapshot(data []byte) []byte {
	out := make([]byte, 8, 8+len(data))
	binary.LittleEndian.PutUint32(out[0:4], snapMagic)
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(data))
	return append(out, data...)
}

func decodeSnapshot(blob []byte) ([]byte, error) {
	if len(blob) < 8 {
		return nil, errors.New("server: truncated snapshot")
	}
	if binary.LittleEndian.Uint32(blob[0:4]) != snapMagic {
		return nil, errors.New("server: bad snapshot magic")
	}
	data := blob[8:]
	if crc32.ChecksumIEEE(data) != binary.LittleEndian.Uint32(blob[4:8]) {
		return nil, errors.New("server: snapshot checksum mismatch")
	}
	return data, nil
}

// listSnapshots returns snapshot sequence numbers in dir, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "snapshot-%016x.snap", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// loadSnapshot reads, checksums, and unmarshals one snapshot file into
// whichever state type its payload encodes; exactly one of the returned
// filters is non-nil. A namespace container additionally yields its
// decoded namespace entries for registry installation.
func loadSnapshot(path string) (*mpcbf.Sharded, *window.Filter, *elastic.Filter, []nsSnapEntry, error) {
	data, err := readSnapshotData(path)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var entries []nsSnapEntry
	if isNsContainer(data) {
		if data, entries, err = decodeNsContainer(data); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if window.IsWindowed(data) {
		w, err := window.UnmarshalFilter(data)
		return nil, w, nil, entries, err
	}
	if elastic.IsElastic(data) {
		el, err := elastic.UnmarshalFilter(data)
		return nil, nil, el, entries, err
	}
	f, err := mpcbf.UnmarshalSharded(data)
	return f, nil, nil, entries, err
}

// OpenStore opens (or initializes) the store in opts.Dir: newest valid
// snapshot first, then WAL replay, then background sync/snapshot loops.
func OpenStore(opts StoreOptions) (*Store, error) {
	opts.setDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}

	snaps, err := listSnapshots(opts.Dir)
	if err != nil {
		return nil, err
	}
	if opts.Elastic && opts.Window > 0 {
		return nil, errors.New("server: -elastic and -window are mutually exclusive (a window expires whole generations on a clock; a growing chain cannot reconcile with that)")
	}
	var (
		filter    *mpcbf.Sharded
		winf      *window.Filter
		elf       *elastic.Filter
		nsEntries []nsSnapEntry
		snapSeq   uint64 // replay segments >= snapSeq
	)
	// Newest snapshot that unmarshals cleanly wins; a corrupt one is
	// logged and skipped so a bad final snapshot degrades to the previous
	// retained one plus a longer replay, not to data loss. Snapshots that
	// exist but all fail to load are a hard error: silently starting from
	// an empty filter would masquerade as data loss.
	for i := len(snaps) - 1; i >= 0; i-- {
		f, w, el, nse, err := loadSnapshot(snapshotPath(opts.Dir, snaps[i]))
		if err == nil {
			filter, winf, elf, nsEntries, snapSeq = f, w, el, nse, snaps[i]
			break
		}
		opts.Log.Warn("skipping corrupt snapshot", "seq", snaps[i], "error", err)
	}
	if filter == nil && winf == nil && elf == nil {
		if len(snaps) > 0 {
			return nil, fmt.Errorf("server: %d snapshot file(s) in %s but none loads cleanly; refusing to start from an empty filter (restore a snapshot or clear the directory to reinitialize)", len(snaps), opts.Dir)
		}
		switch {
		case opts.Window > 0:
			winf, err = window.New(windowOptionsFrom(opts))
			if err != nil {
				return nil, fmt.Errorf("server: fresh window: %w", err)
			}
		case opts.Elastic:
			elf, err = elastic.New(elasticOptionsFrom(opts))
			if err != nil {
				return nil, fmt.Errorf("server: fresh elastic chain: %w", err)
			}
		default:
			filter, err = mpcbf.NewSharded(opts.Filter, opts.Shards)
			if err != nil {
				return nil, fmt.Errorf("server: fresh filter: %w", err)
			}
		}
	}
	// The mode — plain, windowed, or elastic — is a property of the
	// durable state, like the filter geometry: flipping -window or
	// -elastic against an existing store of another kind is a
	// configuration error, not a migration. A replica adopts whatever its
	// local snapshot (mirrored from the primary) encodes, since its next
	// bootstrap would overwrite the mode anyway.
	if !opts.Replica {
		if opts.Window > 0 && winf == nil && (filter != nil || elf != nil) {
			return nil, fmt.Errorf("server: store in %s is not windowed; drop -window or use a fresh directory", opts.Dir)
		}
		if opts.Window <= 0 && winf != nil {
			return nil, fmt.Errorf("server: store in %s is windowed; pass -window or use a fresh directory", opts.Dir)
		}
		if opts.Elastic && elf == nil && (filter != nil || winf != nil) {
			return nil, fmt.Errorf("server: store in %s is not elastic; drop -elastic or use a fresh directory", opts.Dir)
		}
		if !opts.Elastic && elf != nil {
			return nil, fmt.Errorf("server: store in %s is elastic; pass -elastic or use a fresh directory", opts.Dir)
		}
	} else if (filter != nil || winf != nil || elf != nil) &&
		((opts.Window > 0) != (winf != nil) || opts.Elastic != (elf != nil)) {
		opts.Log.Warn("replica adopting snapshot mode over flags", "windowed", winf != nil, "elastic", elf != nil)
	}

	s := &Store{opts: opts, stop: make(chan struct{})}
	switch {
	case winf != nil:
		s.win.Store(winf)
	case elf != nil:
		s.el.Store(elf)
	default:
		s.filter.Store(filter)
	}
	// The registry must exist before replay: the replayed tail can carry
	// NS_CREATE/NS_SELECT records, and every snapshot-installed namespace
	// must start in its snapshot state (InstallSnapshot rewrites evict
	// files from the container) so tail replay lands on the right bytes.
	s.reg = ns.NewRegistry(s.nsRegistryOptions())
	for _, en := range nsEntries {
		if err := s.reg.InstallSnapshot(en.name, en.cfg, en.resident, en.items, en.data); err != nil {
			return nil, fmt.Errorf("server: restore namespace: %w", err)
		}
	}
	if err := s.reg.EnsureQuota(nil); err != nil {
		return nil, fmt.Errorf("server: namespace quota at open: %w", err)
	}

	segs, err := listWALSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	// The live segment — the one appends continue into — is decided up
	// front so replay can report the byte length of its valid record
	// prefix: a torn or corrupt tail left by a crash must be truncated
	// before new records are appended, or everything written after the
	// garbage would be invisible to the next replay.
	walSeq := snapSeq
	if walSeq == 0 {
		walSeq = 1
	}
	if len(segs) > 0 && segs[len(segs)-1] > walSeq {
		walSeq = segs[len(segs)-1]
	}
	tailValid := int64(-1) // -1: the live segment does not exist yet
	var replayedBytes int64
	for _, seq := range segs {
		if seq < snapSeq {
			continue // covered by the snapshot
		}
		n, valid, err := s.replaySegment(walPath(opts.Dir, seq))
		if err != nil {
			return nil, fmt.Errorf("server: replay wal seq %d: %w", seq, err)
		}
		s.replayed += n
		replayedBytes += valid
		if seq == walSeq {
			tailValid = valid
		}
	}
	s.wal, err = openWAL(opts.Dir, walSeq, opts.Sync, tailValid)
	if err != nil {
		return nil, err
	}
	// Seed the replication counters from the recovered segments so the
	// cumulative record/byte totals shipped to replicas stay monotonic
	// across a restart (approximately: pruned segments are gone).
	s.wal.setBaseline(uint64(s.replayed), uint64(replayedBytes))

	if opts.Sync == SyncInterval {
		s.bg.Add(1)
		go s.syncLoop()
	}
	if opts.SnapshotEvery > 0 && !opts.Replica {
		s.bg.Add(1)
		go s.snapshotLoop()
	}
	// Primaries drive the window clock; replicas receive rotations as
	// mirrored WAL records, so their ring stays byte-identical.
	if w := s.w(); w != nil && !opts.Replica {
		s.bg.Add(1)
		go s.rotateLoop(w.RotateEvery())
	}
	// Windowed namespaces get their own deadline-driven rotation loop
	// (primaries only, same reason as above); idle eviction runs on
	// primaries and replicas alike — residency is local policy.
	if !opts.Replica {
		s.bg.Add(1)
		go s.nsRotateLoop()
	}
	if opts.NsIdleAfter > 0 {
		s.bg.Add(1)
		go s.nsIdleLoop()
	}
	return s, nil
}

// batchApplier feeds WAL-ordered records into the filter, batching runs
// of same-op records through the parallel batch paths. Per-shard order
// is preserved inside a batch, so the result is identical to one-by-one
// application. Apply errors are logged and skipped: a record describes a
// mutation that succeeded live, so an apply failure means counter
// divergence from a lost earlier record, and dropping the op is strictly
// safer than aborting recovery or a replication stream. Keys handed to
// add may alias the scan buffer — scanRecords allocates each record body
// fresh, so they stay valid until the flush.
type batchApplier struct {
	s       *Store
	context string // "replay" or "replicate", for log lines
	op      byte
	rot     int // pending batch's rotation count (walOpInsertTTL only)
	keys    [][]byte
}

const applierFlushAt = 4096

func (a *batchApplier) add(op byte, key []byte) error {
	switch op {
	case wire.OpInsert, wire.OpDelete:
		if op != a.op {
			a.flush()
			a.op = op
		}
		a.keys = append(a.keys, key)
	case walOpInsertTTL:
		if e := a.s.walCtx; e != nil {
			if !e.Windowed() {
				return fmt.Errorf("ttl record for non-windowed namespace %q", e.Name())
			}
		} else if a.s.w() == nil {
			return fmt.Errorf("ttl record in a non-windowed store")
		}
		r, k, err := decodeTTLBody(key)
		if err != nil {
			return err
		}
		if op != a.op || r != a.rot {
			a.flush()
			a.op, a.rot = op, r
		}
		a.keys = append(a.keys, k)
	case walOpWindowRotate:
		// A rotation is a batch boundary: everything logged before it must
		// land in the pre-rotation ring position.
		a.flush()
		if e := a.s.walCtx; e != nil {
			if !e.Windowed() {
				return fmt.Errorf("rotate record for non-windowed namespace %q", e.Name())
			}
			if err := a.s.nsResidentLocked(e); err != nil {
				return err
			}
			e.Window().Rotate()
			return nil
		}
		w := a.s.w()
		if w == nil {
			return fmt.Errorf("rotate record in a non-windowed store")
		}
		w.Rotate()
		return nil
	case walOpNsCreate:
		// Namespace lifecycle records are flush barriers too: pending keys
		// belong to the pre-event selection context.
		a.flush()
		return a.s.applyNsCreate(key)
	case walOpNsDrop:
		a.flush()
		return a.s.applyNsDrop(key)
	case walOpNsSelect:
		a.flush()
		return a.s.applyNsSelect(key)
	case walOpElasticGrow:
		// Growth is a flush barrier for the same reason rotation is:
		// everything logged before it must land in the pre-growth head.
		a.flush()
		return a.s.applyElasticGrow()
	case walOpElasticImport:
		a.flush()
		return a.s.applyElasticImport(key)
	default:
		return fmt.Errorf("unknown wal op 0x%02x", op)
	}
	if len(a.keys) >= applierFlushAt {
		a.flush()
	}
	return nil
}

func (a *batchApplier) flush() {
	if len(a.keys) == 0 {
		return
	}
	if e := a.s.walCtx; e != nil {
		a.flushNS(e)
		return
	}
	w, el := a.s.w(), a.s.elf()
	switch a.op {
	case wire.OpInsert:
		var err error
		switch {
		case w != nil:
			err = w.InsertBatch(a.keys)
		case el != nil:
			err = el.InsertBatch(a.keys, a.s.opts.BatchWorkers)
		default:
			err = a.s.f().InsertBatch(a.keys, a.s.opts.BatchWorkers)
		}
		if err != nil {
			a.s.opts.Log.Error("batch insert failed", "context", a.context, "error", err)
		}
	case wire.OpDelete:
		var err error
		switch {
		case w != nil:
			_, err = w.DeleteBatch(a.keys)
		case el != nil:
			_, err = el.DeleteBatch(a.keys, a.s.opts.BatchWorkers)
		default:
			_, err = a.s.f().DeleteBatch(a.keys, a.s.opts.BatchWorkers)
		}
		if err != nil {
			a.s.opts.Log.Error("batch delete failed", "context", a.context, "error", err)
		}
	case walOpInsertTTL:
		if err := w.InsertRotationsBatch(a.keys, a.rot); err != nil {
			a.s.opts.Log.Error("batch ttl insert failed", "context", a.context, "error", err)
		}
	}
	a.keys = a.keys[:0]
}

// replaySegment re-applies one segment's records through a batchApplier.
// Each segment opens in the default selection context — the primary's
// append side resets at every rotation — and the context surviving the
// last replayed segment stays live: appends continue into that segment,
// so the next mutation sees the same selection state the WAL tail ends
// in.
func (s *Store) replaySegment(path string) (int, int64, error) {
	s.walCtx = nil
	a := &batchApplier{s: s, context: "replay"}
	n, valid, err := replayWAL(path, a.add)
	a.flush()
	return n, valid, err
}

// Insert applies and logs one insert.
func (s *Store) Insert(key []byte) error { return s.insert(key, nil) }

// insert is the traced core of Insert: tr (nil when tracing is off)
// receives the filter, WAL-append, and fsync stage timings.
func (s *Store) insert(key []byte, tr *reqTrace) error {
	ticket, err := s.insertEnq(key, tr)
	if err != nil {
		return err
	}
	return s.wal.WaitDurable(ticket, tr)
}

// insertEnq applies one insert and enqueues its WAL record, returning
// the commit ticket. The mutation lock is held only for apply+enqueue —
// never across the fsync — which is what lets concurrent mutations share
// commit rounds. The caller owes a waitDurable(ticket) before
// acknowledging.
func (s *Store) insertEnq(key []byte, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := tr.now()
	var err error
	if w := s.w(); w != nil {
		err = w.Insert(key)
	} else if el := s.elf(); el != nil {
		err = el.Insert(key)
	} else {
		err = s.f().Insert(key)
	}
	if err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(nil); err != nil {
		return 0, err
	}
	ticket, err := s.wal.Enqueue(wire.OpInsert, key, tr)
	if err != nil {
		return 0, err
	}
	// An insert that tipped the head past its growth trigger grows the
	// chain in the same commit round; the grow ticket supersedes the data
	// ticket so the ack covers both.
	if gt := s.growEnqLocked(); gt != 0 {
		ticket = gt
	}
	return ticket, nil
}

// waitDurable blocks until the ticket's WAL records are durable per the
// sync policy. Ticket 0 (nothing logged) returns immediately.
func (s *Store) waitDurable(ticket uint64, tr *reqTrace) error {
	return s.wal.WaitDurable(ticket, tr)
}

// Delete applies and logs one delete. Deleting an absent key fails
// without a WAL record.
func (s *Store) Delete(key []byte) error { return s.delete(key, nil) }

func (s *Store) delete(key []byte, tr *reqTrace) error {
	ticket, err := s.deleteEnq(key, tr)
	if err != nil {
		return err
	}
	return s.wal.WaitDurable(ticket, tr)
}

func (s *Store) deleteEnq(key []byte, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := tr.now()
	var err error
	if w := s.w(); w != nil {
		err = w.Delete(key)
	} else if el := s.elf(); el != nil {
		err = el.Delete(key)
	} else {
		err = s.f().Delete(key)
	}
	if err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(nil); err != nil {
		return 0, err
	}
	return s.wal.Enqueue(wire.OpDelete, key, tr)
}

// InsertBatch applies and logs a batch with a single fsync. On a batch
// error (possible only under the strict overflow policy) nothing is
// logged and the error is returned; the partially applied batch is
// unacknowledged and carries no durability promise.
func (s *Store) InsertBatch(keys [][]byte) error { return s.insertBatch(keys, nil) }

func (s *Store) insertBatch(keys [][]byte, tr *reqTrace) error {
	ticket, err := s.insertBatchEnq(keys, tr)
	if err != nil {
		return err
	}
	return s.wal.WaitDurable(ticket, tr)
}

func (s *Store) insertBatchEnq(keys [][]byte, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := tr.now()
	var err error
	if w := s.w(); w != nil {
		err = w.InsertBatch(keys)
	} else if el := s.elf(); el != nil {
		err = el.InsertBatch(keys, s.opts.BatchWorkers)
	} else {
		err = s.f().InsertBatch(keys, s.opts.BatchWorkers)
	}
	if err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(nil); err != nil {
		return 0, err
	}
	ticket, err := s.wal.EnqueueBatch(wire.OpInsert, keys, tr)
	if err != nil {
		return 0, err
	}
	if gt := s.growEnqLocked(); gt != 0 {
		ticket = gt
	}
	return ticket, nil
}

// DeleteBatch applies a batch of deletes and logs exactly the subset
// that succeeded, with a single fsync. The returned flags are
// order-preserving.
func (s *Store) DeleteBatch(keys [][]byte) ([]bool, error) { return s.deleteBatch(keys, nil) }

func (s *Store) deleteBatch(keys [][]byte, tr *reqTrace) ([]bool, error) {
	ok, ticket, err := s.deleteBatchEnq(keys, tr)
	if err != nil {
		return ok, err
	}
	if err := s.wal.WaitDurable(ticket, tr); err != nil {
		return ok, err
	}
	return ok, nil
}

func (s *Store) deleteBatchEnq(keys [][]byte, tr *reqTrace) ([]bool, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := tr.now()
	var ok []bool
	if w := s.w(); w != nil {
		ok, _ = w.DeleteBatch(keys)
	} else if el := s.elf(); el != nil {
		ok, _ = el.DeleteBatch(keys, s.opts.BatchWorkers)
	} else {
		ok, _ = s.f().DeleteBatch(keys, s.opts.BatchWorkers)
	}
	tr.addFilter(t0)
	if err := s.selectLocked(nil); err != nil {
		return ok, 0, err
	}
	// Log exactly the subset that succeeded, straight from the flags — no
	// intermediate key slice.
	ticket, err := s.wal.EnqueueBatchFlags(wire.OpDelete, keys, ok, tr)
	return ok, ticket, err
}

// Contains answers membership; lock-free at the store level. Checked
// filter-first: in non-windowed mode (the common case) the hot path
// costs exactly one atomic load, same as before windowed or elastic
// stores existed; only the other modes pay the extra nil check.
func (s *Store) Contains(key []byte) bool {
	if f := s.f(); f != nil {
		return f.Contains(key)
	}
	if el := s.elf(); el != nil {
		return el.Contains(key)
	}
	return s.w().Contains(key)
}

// ContainsBatch answers membership for a batch, order-preserving.
func (s *Store) ContainsBatch(keys [][]byte) []bool {
	if f := s.f(); f != nil {
		return f.ContainsBatch(keys, s.opts.BatchWorkers)
	}
	if el := s.elf(); el != nil {
		return el.ContainsBatch(keys, s.opts.BatchWorkers)
	}
	return s.w().ContainsBatch(keys)
}

// EstimateCount returns an upper bound on key's multiplicity.
func (s *Store) EstimateCount(key []byte) int {
	if f := s.f(); f != nil {
		return f.EstimateCount(key)
	}
	if el := s.elf(); el != nil {
		return el.EstimateCount(key)
	}
	return s.w().EstimateCount(key)
}

// Len returns the current element count.
func (s *Store) Len() int {
	if f := s.f(); f != nil {
		return f.Len()
	}
	if el := s.elf(); el != nil {
		return el.Len()
	}
	return s.w().Len()
}

// Filter exposes the underlying sharded filter for read-only inspection
// (metrics: fill ratio, saturated words, memory bits). Nil in windowed
// and elastic modes — use Window or Elastic instead.
func (s *Store) Filter() *mpcbf.Sharded { return s.f() }

// StoreStats is a point-in-time durability report.
type StoreStats struct {
	WALRecords      uint64
	WALSyncs        uint64
	Snapshots       uint64
	LastSnapshot    time.Time // zero if never
	ReplayedRecords int
}

// Stats reports durability counters.
func (s *Store) Stats() StoreStats {
	records, syncs := s.wal.Stats()
	st := StoreStats{
		WALRecords:      records,
		WALSyncs:        syncs,
		Snapshots:       s.snapshots.Load(),
		ReplayedRecords: s.replayed,
	}
	if ns := s.lastSnapshot.Load(); ns != 0 {
		st.LastSnapshot = time.Unix(0, ns)
	}
	return st
}

// WALHists returns plain-value views of the WAL's fsync-latency (ns)
// and enqueue-batch-size histograms.
func (s *Store) WALHists() (fsync, batch HistSnapshot) {
	return s.wal.fsyncHist.Snapshot(), s.wal.batchHist.Snapshot()
}

// WALGroupHists returns the group-commit histograms: records per commit
// round and commit-round latency (ns).
func (s *Store) WALGroupHists() (group, commit HistSnapshot) {
	return s.wal.groupHist.Snapshot(), s.wal.commitHist.Snapshot()
}

// WALGroupStats reports commit rounds completed and callers currently
// blocked in WaitDurable.
func (s *Store) WALGroupStats() (commits uint64, waiters int64) {
	return s.wal.GroupStats()
}

// Snapshot writes a point-in-time snapshot and truncates the WAL behind
// it. Mutations are blocked only for the in-memory marshal and segment
// rotation; the disk write happens outside the lock. Refused on a
// replica: its WAL mirrors the primary's segments, and a local rotation
// would desynchronize the mirror.
func (s *Store) Snapshot() error {
	if s.opts.Replica {
		return errors.New("server: replica store does not snapshot (its WAL mirrors the primary)")
	}
	_, _, _, _, err := s.snapshot()
	return err
}

// snapshot is the shared snapshot core: it returns the marshaled filter
// data, the new live segment the stream continues into, and the WAL's
// cumulative counters at the rotation point — everything a replication
// bootstrap frame needs.
func (s *Store) snapshot() (data []byte, newSeq uint64, cumRecords, cumBytes uint64, err error) {
	s.mu.Lock()
	data, err = s.marshalLocked()
	if err != nil {
		s.mu.Unlock()
		return nil, 0, 0, 0, fmt.Errorf("server: snapshot marshal: %w", err)
	}
	newSeq, err = s.wal.Rotate()
	if err == nil {
		cumRecords, cumBytes = s.wal.CumPos()
		// A fresh segment opens in the default selection context; the next
		// namespaced mutation re-emits its SELECT.
		s.walCtx = nil
	}
	s.mu.Unlock()
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("server: snapshot rotate: %w", err)
	}

	final := snapshotPath(s.opts.Dir, newSeq)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, encodeSnapshot(data)); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("server: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("server: snapshot rename: %w", err)
	}
	syncDir(s.opts.Dir)

	// Read the snapshot back before deleting anything it obsoletes: if
	// what landed on disk does not load, the predecessors are still the
	// only recoverable state and must survive.
	if err := verifySnapshot(final); err != nil {
		return nil, 0, 0, 0, fmt.Errorf("server: snapshot verify: %w", err)
	}

	s.snapshots.Add(1)
	s.lastSnapshot.Store(time.Now().UnixNano())
	s.cleanup(newSeq)
	return data, newSeq, cumRecords, cumBytes, nil
}

// cleanup removes WAL segments and snapshots made obsolete by
// snapshot-<keepSeq>, always retaining one predecessor snapshot
// generation and the segments that cover it: if the newest snapshot is
// later found corrupt, recovery falls back to the previous one and
// replays forward from its sequence number. Failures are logged, not
// fatal: stale files cost disk, never correctness.
func (s *Store) cleanup(keepSeq uint64) {
	// floor: everything below it is unreachable by recovery. With a
	// predecessor snapshot P < keepSeq retained, recovery may load P and
	// needs segments seq >= P, so the floor drops to P.
	floor := keepSeq
	snaps, err := listSnapshots(s.opts.Dir)
	if err != nil {
		s.opts.Log.Warn("cleanup: list snapshots", "error", err)
		return
	}
	for _, seq := range snaps {
		if seq < keepSeq {
			floor = seq // snaps is ascending: ends at the newest predecessor
		}
	}
	for _, seq := range snaps {
		if seq < floor {
			if err := os.Remove(snapshotPath(s.opts.Dir, seq)); err != nil {
				s.opts.Log.Warn("cleanup: remove snapshot", "seq", seq, "error", err)
			}
		}
	}
	if segs, err := listWALSegments(s.opts.Dir); err == nil {
		for _, seq := range segs {
			if seq < floor {
				if err := os.Remove(walPath(s.opts.Dir, seq)); err != nil {
					s.opts.Log.Warn("cleanup: remove wal segment", "seq", seq, "error", err)
				}
			}
		}
	}
}

func (s *Store) syncLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.wal.Sync(); err != nil {
				s.opts.Log.Error("wal sync failed", "error", err)
			}
		case <-s.stop:
			return
		}
	}
}

func (s *Store) snapshotLoop() {
	defer s.bg.Done()
	t := time.NewTicker(s.opts.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Snapshot(); err != nil {
				s.opts.Log.Error("background snapshot failed", "error", err)
			}
		case <-s.stop:
			return
		}
	}
}

// Close stops background loops, takes a final snapshot (primaries only —
// a replica restart recovers by replaying its mirrored segments), and
// closes the WAL. Idempotent.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.bg.Wait()
	var errs []error
	if !s.opts.Replica {
		if err := s.Snapshot(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := s.wal.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename survives power loss; best
// effort on platforms where directories cannot be fsynced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
