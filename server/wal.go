package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The write-ahead log is a sequence of numbered segment files
// (wal-<seq>.log). Each record is CRC-framed:
//
//	[u32 len LE][u32 crc32(IEEE) of body][body]
//	body = [u8 op][key bytes]
//
// Records are appended for mutations that have already been applied to
// the in-memory filter (apply-then-log), so a record always describes a
// mutation that succeeded; replay therefore never has to guess whether a
// logged delete took effect. A torn tail — short header, short body, or
// CRC mismatch at the end of a segment — marks the end of the durable
// prefix and is discarded silently, exactly like a crash between write
// and fsync.
//
// Segments interlock with snapshots: snapshot-<S>.snap covers every
// record in segments with seq < S, so recovery loads the newest valid
// snapshot and replays segments seq >= S in order.
//
// # Group commit
//
// Appending is split into two phases so fsyncs amortize across
// concurrent writers instead of serializing them:
//
//  1. Enqueue — under the store mutation lock, records are framed
//     directly into an in-memory pending buffer and the caller receives
//     a commit ticket (a monotonic sequence number covering everything
//     enqueued so far).
//  2. WaitDurable — outside the store lock, the caller blocks until a
//     commit round has made its ticket durable. Whoever arrives first
//     elects itself leader (a TryLock on the commit IO lock), swaps the
//     pending buffer out, performs ONE write + fsync for every record
//     enqueued by then, advances the durable ticket, and broadcasts.
//     Everyone else sleeps on a condition variable — no per-record
//     channels, no allocation on the wait path.
//
// Under SyncAlways no caller is released before its bytes are fsync'd —
// the durability contract is unchanged — but N concurrent writers share
// one fsync instead of paying N. Under SyncInterval/SyncNever a
// background committer goroutine drains the pending buffer (kicked on
// the empty→non-empty transition) and fsync stays with the policy's
// ticker / the OS. The record byte layout on disk is exactly what
// single-record appends produced, so replica byte-mirroring and replay
// are unaffected.
//
// Lock order: store.mu → wal.commitMu → wal.mu. WaitDurable acquires
// commitMu only via TryLock while holding wal.mu, which cannot deadlock.

// SyncPolicy says when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncAlways fsyncs before a mutation is acknowledged (one fsync may
	// cover many concurrent mutations — group commit). Acknowledged
	// mutations are durable against power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval leaves fsync to a background ticker; a crash window of
	// at most the interval is traded for throughput.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS page cache decides.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseSyncPolicy maps the flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always|interval|never)", s)
}

const walRecordHeader = 8 // u32 len + u32 crc

// walPendingCap is the soft bound on the pending buffer under the async
// policies: an enqueuer that finds more than this unwritten waits for
// the committer to drain before returning, so a slow disk back-pressures
// producers instead of growing the heap without bound.
const walPendingCap = 1 << 20

// walRecycleCap bounds the capacity of buffers kept on the swap
// free-list; a rare giant batch does not pin its buffer forever.
const walRecycleCap = 4 << 20

// wal appends mutation records to the current segment file.
type wal struct {
	dir    string
	policy SyncPolicy

	// mu guards the enqueue state: the pending buffer, tickets, logical
	// position, and counters. It is never held across disk IO.
	mu        sync.Mutex
	cond      sync.Cond // signaled when durTicket advances or pending drains
	f         walFile   // segment file behind the failpoint seam (see failpoint.go)
	pending   []byte    // framed records enqueued but not yet written
	spare     []byte    // recycled swap buffer for pending
	seq       uint64
	size      int64 // logical bytes in the current segment, incl. pending
	dirty     bool  // written or pending bytes not yet fsynced
	records   uint64
	syncs     uint64
	enqTicket uint64 // ticket of the newest enqueued group
	durTicket uint64 // tickets <= this are committed per policy
	commitErr error  // sticky: first commit IO failure poisons the log

	// Commit-round attribution for tracing (guarded by mu): the sequence
	// number (groupCommits value), record count, and covered ticket of
	// the most recent round that wrote bytes. A waiter released by a
	// round reads these immediately after the broadcast, so they name
	// the round that covered its ticket (or a successor — attribution is
	// best-effort under races, never blocking).
	lastRoundSeq    uint64
	lastRoundRecs   int
	lastRoundTicket uint64

	// commitMu serializes commit IO (write+fsync) and rotation. Taken
	// before mu; WaitDurable only TryLocks it while holding mu.
	commitMu sync.Mutex

	// Replication bookkeeping: cumulative counters monotonic across
	// rotations (seeded at open from the retained segments, so they
	// approximate lifetime totals), and a change-notification channel for
	// tailers. The channel is armed lazily by Changed() and closed on the
	// next enqueue or rotation, so a WAL nobody tails never allocates one.
	cumRecords uint64
	cumBytes   uint64
	changed    chan struct{} // nil when no tailer is waiting

	// Committer goroutine (async policies only): kicked on the
	// empty→non-empty pending transition.
	kick      chan struct{}
	stopDrain chan struct{}
	drainDone chan struct{}

	// Observability. fsyncHist: fsync latency (ns). batchHist: records
	// per Enqueue group (the per-request batch size). groupHist: records
	// per commit round (the group-commit amortization factor). commitHist:
	// commit-round latency (ns). waiters: callers currently blocked in
	// WaitDurable. groupCommits: commit rounds completed.
	fsyncHist    Histogram
	batchHist    Histogram
	groupHist    Histogram
	commitHist   Histogram
	waiters      atomic.Int64
	groupCommits atomic.Uint64
}

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

// openWAL opens (creating if absent) the segment with the given sequence
// number for append. validBytes is the length of the segment's valid
// record prefix as established by replay (-1 when the segment was not
// replayed, i.e. is new): a longer file has a torn or corrupt tail from a
// crash, and appending after that garbage would hide every new record
// from the next replay — so the tail is truncated away, durably, before
// any append is accepted.
func openWAL(dir string, seq uint64, policy SyncPolicy, validBytes int64) (*wal, error) {
	f, err := os.OpenFile(walPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if validBytes >= 0 {
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if fi.Size() > validBytes {
			if err := f.Truncate(validBytes); err != nil {
				f.Close()
				return nil, fmt.Errorf("server: truncate torn wal tail (%d -> %d bytes): %w", fi.Size(), validBytes, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
		size = validBytes
	}
	w := &wal{
		dir:    dir,
		policy: policy,
		f:      wrapWALFile(f),
		seq:    seq,
		size:   size,
	}
	w.cond.L = &w.mu
	if policy != SyncAlways {
		w.kick = make(chan struct{}, 1)
		w.stopDrain = make(chan struct{})
		w.drainDone = make(chan struct{})
		go w.drainLoop()
	}
	return w, nil
}

// drainLoop is the background committer for the async policies: it
// writes pending records out (no fsync — that stays with the policy's
// ticker or the OS) whenever an enqueue kicks it.
func (w *wal) drainLoop() {
	defer close(w.drainDone)
	for {
		select {
		case <-w.kick:
			w.commitMu.Lock()
			w.commitRound(false, nil)
			w.commitMu.Unlock()
		case <-w.stopDrain:
			return
		}
	}
}

// setBaseline seeds the cumulative replication counters from state that
// predates this process (recovered segments). Called once at open,
// before any appends.
func (w *wal) setBaseline(records uint64, bytes uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cumRecords, w.cumBytes = records, bytes
}

// frameRecordLocked appends one CRC-framed record to the pending buffer
// in place — no intermediate body allocation. body = [op][key...] or
// [op][extra...][key...] when extra is non-nil (the TTL rotation-count
// prefix).
func (w *wal) frameRecordLocked(op byte, extra []byte, key []byte) {
	bodyLen := 1 + len(extra) + len(key)
	hdrOff := len(w.pending)
	w.pending = append(w.pending, 0, 0, 0, 0, 0, 0, 0, 0)
	w.pending = append(w.pending, op)
	w.pending = append(w.pending, extra...)
	w.pending = append(w.pending, key...)
	body := w.pending[hdrOff+walRecordHeader:]
	binary.LittleEndian.PutUint32(w.pending[hdrOff:], uint32(bodyLen))
	binary.LittleEndian.PutUint32(w.pending[hdrOff+4:], crc32.ChecksumIEEE(body))
}

// finishEnqueueLocked advances the logical position and counters for a
// group of n records occupying grew bytes, issues the group's ticket,
// and wakes the committer/tailers. Caller holds w.mu.
func (w *wal) finishEnqueueLocked(n int, grew int, tr *reqTrace, t0 time.Time) uint64 {
	w.records += uint64(n)
	w.size += int64(grew)
	w.cumRecords += uint64(n)
	w.cumBytes += uint64(grew)
	w.batchHist.Observe(uint64(n))
	w.dirty = true
	w.enqTicket++
	ticket := w.enqTicket
	w.notifyLocked()
	tr.addWAL(t0)
	if w.kick != nil && len(w.pending) == grew {
		// empty→non-empty transition: wake the async committer.
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
	return ticket
}

// Enqueue frames one record into the pending buffer and returns its
// commit ticket. The record becomes durable per policy once a commit
// round covering the ticket completes; pass the ticket to WaitDurable.
// Callers serialize enqueues against state mutation (the store holds its
// mutation lock), which is what makes WAL order equal apply order.
func (w *wal) Enqueue(op byte, key []byte, tr *reqTrace) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enqueueOKLocked(); err != nil {
		return 0, err
	}
	t0 := tr.now()
	tr.setWALPos(w.seq, w.size)
	before := len(w.pending)
	w.frameRecordLocked(op, nil, key)
	return w.finishEnqueueLocked(1, len(w.pending)-before, tr, t0), nil
}

// EnqueueBatch frames a group of same-op records as one ticket (their
// durability is decided by a single commit round).
func (w *wal) EnqueueBatch(op byte, keys [][]byte, tr *reqTrace) (uint64, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enqueueOKLocked(); err != nil {
		return 0, err
	}
	t0 := tr.now()
	tr.setWALPos(w.seq, w.size)
	before := len(w.pending)
	for _, k := range keys {
		w.frameRecordLocked(op, nil, k)
	}
	return w.finishEnqueueLocked(len(keys), len(w.pending)-before, tr, t0), nil
}

// EnqueueBatchFlags frames only the keys whose flag is set — the
// delete-batch path logging exactly the subset that succeeded, without
// building an intermediate slice.
func (w *wal) EnqueueBatchFlags(op byte, keys [][]byte, flags []bool, tr *reqTrace) (uint64, error) {
	n := 0
	for _, ok := range flags {
		if ok {
			n++
		}
	}
	if n == 0 {
		return 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enqueueOKLocked(); err != nil {
		return 0, err
	}
	t0 := tr.now()
	tr.setWALPos(w.seq, w.size)
	before := len(w.pending)
	for i, k := range keys {
		if flags[i] {
			w.frameRecordLocked(op, nil, k)
		}
	}
	return w.finishEnqueueLocked(n, len(w.pending)-before, tr, t0), nil
}

// EnqueueTTL frames one windowed TTL record ([op][u32 rot][key]) without
// an intermediate body allocation.
func (w *wal) EnqueueTTL(op byte, rot uint32, key []byte, tr *reqTrace) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enqueueOKLocked(); err != nil {
		return 0, err
	}
	t0 := tr.now()
	tr.setWALPos(w.seq, w.size)
	before := len(w.pending)
	var rb [4]byte
	binary.LittleEndian.PutUint32(rb[:], rot)
	w.frameRecordLocked(op, rb[:], key)
	return w.finishEnqueueLocked(1, len(w.pending)-before, tr, t0), nil
}

// EnqueueTTLBatch frames windowed TTL records ([op][u32 rot][key]) for a
// batch sharing one rotation count, without per-key body allocation.
func (w *wal) EnqueueTTLBatch(op byte, rot uint32, keys [][]byte, tr *reqTrace) (uint64, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enqueueOKLocked(); err != nil {
		return 0, err
	}
	t0 := tr.now()
	tr.setWALPos(w.seq, w.size)
	before := len(w.pending)
	var rb [4]byte
	binary.LittleEndian.PutUint32(rb[:], rot)
	for _, k := range keys {
		w.frameRecordLocked(op, rb[:], k)
	}
	return w.finishEnqueueLocked(len(keys), len(w.pending)-before, tr, t0), nil
}

// EnqueueRaw appends pre-framed record bytes verbatim — the replica
// apply path, which mirrors the primary's segment bytes instead of
// re-encoding them. The caller has already CRC-validated the records.
func (w *wal) EnqueueRaw(raw []byte, n int) (uint64, error) {
	if len(raw) == 0 {
		return 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enqueueOKLocked(); err != nil {
		return 0, err
	}
	before := len(w.pending)
	w.pending = append(w.pending, raw...)
	return w.finishEnqueueLocked(n, len(w.pending)-before, nil, time.Time{}), nil
}

func (w *wal) enqueueOKLocked() error {
	if w.f == nil {
		return errors.New("server: wal closed")
	}
	return w.commitErr
}

// WaitDurable blocks until the given ticket's records are committed per
// policy. Ticket 0 (nothing enqueued) returns immediately. Under
// SyncAlways the caller returns only after a write+fsync covering the
// ticket — the first waiter to arrive leads the commit round for
// everyone pending. Under the async policies the caller returns as soon
// as the pending buffer is within bounds; durability stays with the
// sync ticker / the OS.
func (w *wal) WaitDurable(ticket uint64, tr *reqTrace) error {
	if ticket == 0 {
		return nil
	}
	if w.policy != SyncAlways {
		return w.waitBackpressure()
	}
	t0 := tr.now()
	w.mu.Lock()
	for w.durTicket < ticket && w.commitErr == nil && w.f != nil {
		if w.commitMu.TryLock() {
			// Leader: commit everything enqueued so far in one round.
			w.mu.Unlock()
			w.commitRound(true, tr)
			w.commitMu.Unlock()
			w.mu.Lock()
			continue
		}
		// A round is in flight; it (or its successor) will cover us.
		w.waiters.Add(1)
		w.cond.Wait()
		w.waiters.Add(-1)
	}
	err := w.commitErr
	if err == nil && w.f == nil && w.durTicket < ticket {
		err = errors.New("server: wal closed")
	}
	if err == nil && tr != nil && w.lastRoundTicket >= ticket {
		tr.setRound(w.lastRoundSeq, w.lastRoundRecs)
	}
	w.mu.Unlock()
	if tr != nil {
		tr.addFsync(time.Since(t0))
	}
	return err
}

// waitBackpressure bounds the pending buffer under the async policies:
// producers stall only when the committer is more than walPendingCap
// behind.
func (w *wal) waitBackpressure() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.pending) > walPendingCap && w.commitErr == nil && w.f != nil {
		w.waiters.Add(1)
		w.cond.Wait()
		w.waiters.Add(-1)
	}
	return w.commitErr
}

// commitRound performs one commit: swap the pending buffer out under mu,
// write it with a single pwrite outside mu, fsync when sync is set (and
// the policy ever fsyncs), then advance the durable ticket and broadcast.
// Caller holds commitMu and NOT mu.
func (w *wal) commitRound(sync bool, tr *reqTrace) {
	t0 := time.Now()
	if sync {
		// Let runnable writers enqueue before the batch is sealed. A
		// blocking fsync does not hand its P off immediately (sysmon
		// retakes it on its own clock), so on few-core hosts writers that
		// arrived "during" the previous fsync are often still waiting to
		// run here; one yield lets them drain into this round instead of
		// each forcing a round of their own. With no other runnable
		// goroutine this is a few nanoseconds.
		runtime.Gosched()
	}
	w.mu.Lock()
	if w.f == nil || w.commitErr != nil {
		w.cond.Broadcast()
		w.mu.Unlock()
		return
	}
	buf := w.pending
	recs := 0 // frames in the swapped buffer, for the group-size histogram
	for off := 0; off+walRecordHeader <= len(buf); {
		l := int(binary.LittleEndian.Uint32(buf[off:]))
		off += walRecordHeader + l
		recs++
	}
	ticket := w.enqTicket
	dirty := w.dirty
	f := w.f
	w.pending = w.spare[:0]
	w.spare = nil
	w.mu.Unlock()

	var err error
	wrote := len(buf) > 0
	if wrote {
		_, err = f.Write(buf)
	}
	synced := false
	if err == nil && sync && (wrote || dirty) {
		if w.policy != SyncNever {
			ts := time.Now()
			err = f.Sync()
			w.fsyncHist.ObserveDuration(time.Since(ts))
		}
		synced = err == nil
	}

	w.mu.Lock()
	if cap(buf) <= walRecycleCap && w.spare == nil {
		w.spare = buf[:0]
	}
	if err != nil {
		if w.commitErr == nil {
			w.commitErr = err
		}
	} else {
		// durTicket is the SyncAlways ack gate: WaitDurable releases a
		// writer the moment durTicket covers its ticket, so under
		// SyncAlways only a round that actually fsync'd may advance it —
		// a non-sync round (a tailer's FlushedPos, a metrics scrape)
		// writes bytes that are still only in the page cache. The async
		// policies never gate acks on durTicket, so their non-sync drain
		// rounds advance it freely.
		if (synced || w.policy != SyncAlways) && ticket > w.durTicket {
			w.durTicket = ticket
		}
		if synced {
			w.syncs++
			// Bytes enqueued after the swap are pending again; only a round
			// that drained everything leaves the log clean.
			w.dirty = len(w.pending) > 0
		}
	}
	if wrote {
		round := w.groupCommits.Add(1)
		w.groupHist.Observe(uint64(recs))
		w.commitHist.ObserveDuration(time.Since(t0))
		w.lastRoundSeq = round
		w.lastRoundRecs = recs
		w.lastRoundTicket = ticket
		// The leader's own ticket is always covered by its round.
		tr.setRound(round, recs)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Append logs one mutation and, under SyncAlways, makes it durable before
// returning — Enqueue + WaitDurable for callers without a pipeline. tr,
// when non-nil, receives the append and fsync stage timings.
func (w *wal) Append(op byte, key []byte, tr *reqTrace) error {
	ticket, err := w.Enqueue(op, key, tr)
	if err != nil {
		return err
	}
	return w.WaitDurable(ticket, tr)
}

// AppendBatch logs a group of same-op mutations with a single fsync under
// SyncAlways.
func (w *wal) AppendBatch(op byte, keys [][]byte, tr *reqTrace) error {
	ticket, err := w.EnqueueBatch(op, keys, tr)
	if err != nil {
		return err
	}
	return w.WaitDurable(ticket, tr)
}

// AppendRaw logs pre-framed record bytes verbatim (see EnqueueRaw),
// synchronously per policy.
func (w *wal) AppendRaw(raw []byte, n int) error {
	ticket, err := w.EnqueueRaw(raw, n)
	if err != nil {
		return err
	}
	return w.WaitDurable(ticket, nil)
}

// notifyLocked wakes every tailer blocked on Changed. The channel is
// armed lazily, so a WAL without tailers pays one nil check here.
func (w *wal) notifyLocked() {
	if w.changed != nil {
		close(w.changed)
		w.changed = nil
	}
}

// Changed returns a channel closed at the next enqueue or rotation. Take
// the channel, check the position, then wait on it: the close-and-replace
// discipline makes that sequence race-free.
func (w *wal) Changed() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.changed == nil {
		w.changed = make(chan struct{})
	}
	return w.changed
}

// Pos returns the current segment and its logical size, counting bytes
// still in the pending buffer. This is the position an appended record
// would land at — and, because records are applied before they are
// logged, the WAL position that exactly matches the in-memory filter
// when the store mutation lock is held.
func (w *wal) Pos() (seq uint64, size int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq, w.size
}

// FlushedPos drains the pending buffer to the segment file (no fsync)
// and returns the current segment and the byte length readable from it.
// Tailers call this before reading so every logical byte is visible on
// disk.
func (w *wal) FlushedPos() (seq uint64, size int64, err error) {
	w.commitMu.Lock()
	defer w.commitMu.Unlock()
	w.commitRound(false, nil)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, 0, errors.New("server: wal closed")
	}
	if w.commitErr != nil {
		return 0, 0, w.commitErr
	}
	// Records enqueued after the commit round are not on disk yet; the
	// readable prefix is the logical size minus what is still pending.
	return w.seq, w.size - int64(len(w.pending)), nil
}

// CumPos returns the cumulative record and byte counters used by
// replication frames.
func (w *wal) CumPos() (records, bytes uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cumRecords, w.cumBytes
}

// Sync drains pending records and fsyncs if anything changed since the
// last sync. Safe to call from a background ticker.
func (w *wal) Sync() error {
	w.commitMu.Lock()
	defer w.commitMu.Unlock()
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return nil
	}
	idle := len(w.pending) == 0 && !w.dirty
	err := w.commitErr
	w.mu.Unlock()
	if idle || err != nil {
		return err
	}
	w.commitRound(true, nil)
	w.mu.Lock()
	err = w.commitErr
	w.mu.Unlock()
	return err
}

// drainLocked writes any pending bytes directly; caller holds BOTH
// commitMu and mu (rotation and close — no commit round can be in
// flight, so touching the file under mu is safe and keeps the
// swap atomic with what follows).
func (w *wal) drainLocked(fsync bool) error {
	wrote := len(w.pending) > 0
	if wrote {
		if _, err := w.f.Write(w.pending); err != nil {
			if w.commitErr == nil {
				w.commitErr = err
			}
			return err
		}
		if cap(w.pending) <= walRecycleCap {
			w.pending = w.pending[:0]
		} else {
			w.pending = nil
		}
	}
	if fsync && (wrote || w.dirty) {
		if w.policy != SyncNever {
			t0 := time.Now()
			if err := w.f.Sync(); err != nil {
				if w.commitErr == nil {
					w.commitErr = err
				}
				return err
			}
			w.fsyncHist.ObserveDuration(time.Since(t0))
		}
		w.syncs++
		w.dirty = false
	}
	w.durTicket = w.enqTicket
	w.cond.Broadcast()
	return nil
}

// Rotate syncs and closes the current segment and starts seq+1. It
// returns the new sequence number: a snapshot taken of the state at
// rotation time covers every record in segments < newSeq. The commit
// lock is held only for this drain-and-swap — the caller's snapshot
// disk write happens entirely outside it, so concurrent group commits
// resume as soon as the new segment is open.
func (w *wal) Rotate() (newSeq uint64, err error) {
	w.commitMu.Lock()
	defer w.commitMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateToLocked(w.seq+1, 0)
}

// RotateTo jumps to an arbitrary higher segment number — the replica
// apply path following the primary across a rotation (or a bootstrap
// that lands past a gap of pruned segments).
func (w *wal) RotateTo(seq uint64) error {
	w.commitMu.Lock()
	defer w.commitMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq <= w.seq {
		return fmt.Errorf("server: wal rotate to %d, already at %d", seq, w.seq)
	}
	// O_TRUNC: the replica starts the new segment at offset 0, so any
	// stale same-named file from an earlier life must not leak a prefix.
	_, err := w.rotateToLocked(seq, os.O_TRUNC)
	return err
}

// rotateToLocked drains, fsyncs, and swaps segment files; caller holds
// both commitMu and mu.
func (w *wal) rotateToLocked(seq uint64, extraFlag int) (uint64, error) {
	if w.f == nil {
		return 0, errors.New("server: wal closed")
	}
	if w.commitErr != nil {
		return 0, w.commitErr
	}
	if err := w.drainLocked(true); err != nil {
		return 0, err
	}
	if err := w.f.Close(); err != nil {
		return 0, err
	}
	w.seq = seq
	f, err := os.OpenFile(walPath(w.dir, w.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND|extraFlag, 0o644)
	if err != nil {
		w.f = nil // unusable; subsequent appends fail loudly
		w.cond.Broadcast()
		return 0, err
	}
	w.f = wrapWALFile(f)
	w.size = 0
	w.notifyLocked()
	return w.seq, nil
}

// Stats returns cumulative record and sync counts.
func (w *wal) Stats() (records, syncs uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.syncs
}

// GroupStats reports group-commit activity: commit rounds completed and
// callers currently blocked in WaitDurable.
func (w *wal) GroupStats() (commits uint64, waiters int64) {
	return w.groupCommits.Load(), w.waiters.Load()
}

// Close drains, syncs, and closes the current segment.
func (w *wal) Close() error {
	if w.stopDrain != nil {
		close(w.stopDrain)
		<-w.drainDone
		w.stopDrain = nil
	}
	w.commitMu.Lock()
	defer w.commitMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.drainLocked(true)
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	w.cond.Broadcast()
	return err
}

// replayWAL streams every intact record of one segment into fn. A torn
// tail (truncated header/body or CRC mismatch) ends the replay without
// error; replay stops with an error only if fn fails. valid is the byte
// length of the intact record prefix, so the caller can truncate the
// garbage tail before appending to the segment again.
func replayWAL(path string, fn func(op byte, key []byte) error) (records int, valid int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	return scanRecords(bufio.NewReaderSize(f, 1<<16), fn)
}

// scanRecords streams every intact CRC-framed record from r into fn —
// the core shared by segment replay, replication chunk framing on the
// primary, and shipped-record validation on the replica. It stops
// without error at the first torn or corrupt record; valid is the byte
// length of the intact prefix consumed.
func scanRecords(r io.Reader, fn func(op byte, key []byte) error) (records int, valid int64, err error) {
	var hdr [walRecordHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return records, valid, nil // clean EOF or torn header: end of durable prefix
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > wireMaxWALRecord {
			return records, valid, nil // implausible length: torn/corrupt tail
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return records, valid, nil // torn body
		}
		if crc32.ChecksumIEEE(body) != want {
			return records, valid, nil // corrupt record: stop at last good prefix
		}
		if err := fn(body[0], body[1:]); err != nil {
			return records, valid, err
		}
		records++
		valid += walRecordHeader + int64(n)
	}
}

// wireMaxWALRecord bounds a single replayed record body. Keys arrive over
// the wire inside bounded frames, so anything larger is corruption.
const wireMaxWALRecord = 1 << 21

// listWALSegments returns the sequence numbers of every WAL segment in
// dir, ascending.
func listWALSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "wal-%016x.log", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}
