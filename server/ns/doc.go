// Package ns is mpcbfd's multi-tenant namespace registry: thousands of
// independently configured MPCBF filters (plain or sliding-window)
// keyed by name, sharing one daemon, one WAL, and one replication
// stream.
//
// A Registry maps names to Entries. Each Entry owns one filter with its
// own geometry (memory, k, g, shards, seed) and optional window config,
// resolved at creation from the daemon's defaults plus per-namespace
// overrides; the resolved configuration is immutable for the life of
// the namespace and is what the store records in the WAL, so crash
// recovery and replicas rebuild identical geometry regardless of local
// defaults.
//
// Entries move between two states:
//
//	resident  — filter state in memory; reads and writes are direct.
//	evicted   — state marshaled to a per-namespace snapshot file (via
//	            the Save callback) and dropped from memory; any touch
//	            recovers it transparently (Load callback + unmarshal).
//
// Eviction is local policy, never replicated: the registry enforces a
// daemon-wide resident-bytes quota by evicting the least recently
// touched entries, plus an optional idle timeout. A namespace's evict
// file is exact — an evicted namespace cannot receive mutations (a
// mutation is a touch, which recovers it first) — so evict-file bytes
// always equal the marshaled state at last evict.
//
// Concurrency contract: Lookup and the read-side Entry methods are safe
// anytime; every state transition (Create, Drop, Evict, Recover,
// EnsureQuota, EvictIdle, InstallSnapshot) must be serialized by the
// caller — the store runs them under its own mutex, the same lock that
// orders WAL appends, so namespace lifecycle records interleave
// correctly with data records.
package ns
