package wire

import (
	"bytes"
	"testing"
)

// The decoders face bytes from the network; whatever arrives — malformed
// frames, truncated keys, oversize counts — they must return an error,
// never panic or over-allocate. The fuzzers pin that, plus the property
// that everything the encoders produce decodes back to itself.

func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendKeyRequest(nil, OpInsert, []byte("key")))
	f.Add(AppendBatchRequest(nil, OpContainsBatch, [][]byte{[]byte("a"), []byte("b")}))
	f.Add(AppendLenRequest(nil))
	f.Add(AppendDumpRequest(nil))
	f.Add(AppendReplicateRequest(nil, 3, 999))
	f.Add([]byte{OpInsertBatch, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{OpInsert, 0xFF, 0xFF, 0xFF, 0x7F, 'x'})
	f.Add(AppendInsertTTLRequest(nil, []byte("ttl-key"), 30e9))
	f.Add(AppendInsertTTLBatchRequest(nil, [][]byte{[]byte("a"), []byte("b")}, 1e9))
	f.Add(AppendWindowStatsRequest(nil))
	// Truncated TTL frames: mid-ttl, mid-count, mid-key.
	f.Add([]byte{OpInsertTTL, 1, 2, 3})
	f.Add(append([]byte{OpInsertTTLBatch}, make([]byte, 9)...))
	f.Add(append(append([]byte{OpInsertTTLBatch}, make([]byte, 8)...), 2, 0, 0, 0, 1, 0, 0, 0, 'a'))
	// Oversized TTL frames: absurd key length / key count.
	f.Add(append(append([]byte{OpInsertTTL}, make([]byte, 8)...), 0xFF, 0xFF, 0xFF, 0x7F, 'x'))
	f.Add(append(append([]byte{OpInsertTTLBatch}, make([]byte, 8)...), 0xFF, 0xFF, 0xFF, 0x7F))
	// Namespace ops and the NAMESPACED envelope.
	f.Add(AppendNsCreateRequest(nil, []byte("tenant"), NsConfig{MemoryBits: 1 << 20, Shards: 4}))
	f.Add(AppendNsDropRequest(nil, []byte("tenant")))
	f.Add(AppendNsListRequest(nil))
	f.Add(AppendNsStatsRequest(nil, []byte("tenant")))
	f.Add(AppendKeyRequest(AppendNamespaced(nil, []byte("t")), OpInsert, []byte("key")))
	f.Add(AppendBatchRequest(AppendNamespaced(nil, nil), OpContainsBatch, [][]byte{[]byte("a")}))
	// Truncated namespace frames: mid-name, mid-config, empty inner.
	f.Add([]byte{OpNsCreate, 9, 'a'})
	f.Add(append([]byte{OpNsCreate, 1, 'a'}, make([]byte, NsConfigSize-2)...))
	f.Add([]byte{OpNamespaced, 3, 'a', 'b'})
	f.Add([]byte{OpNamespaced, 1, 'a'})
	// Oversized / hostile namespace frames: max name length, nested
	// envelope, enveloped replicate.
	f.Add(append([]byte{OpNsDrop, 0xFF}, make([]byte, 0xFF)...))
	f.Add([]byte{OpNamespaced, 1, 'a', OpNamespaced, 1, 'b', OpLen})
	f.Add(append([]byte{OpNamespaced, 1, 'a'}, AppendReplicateRequest(nil, 1, 2)...))
	// TRACE envelope: full form, zero-length form, traced NAMESPACED,
	// truncated id block, bad id length, nested trace, traced replicate,
	// trace inside namespaced (must be outermost).
	f.Add(AppendKeyRequest(AppendTrace(nil, [TraceIDLen]byte{1, 2, 3}, 42), OpInsert, []byte("key")))
	f.Add(AppendKeyRequest(AppendTraceUntraced(nil), OpContains, []byte("key")))
	f.Add(AppendKeyRequest(AppendNamespaced(AppendTrace(nil, [TraceIDLen]byte{9}, 7), []byte("t")), OpInsert, []byte("key")))
	f.Add([]byte{OpTrace})
	f.Add([]byte{OpTrace, 24, 1, 2, 3})
	f.Add([]byte{OpTrace, 7, 1, 2, 3, 4, 5, 6, 7, OpLen})
	f.Add(AppendTrace(AppendTraceUntraced(nil)[:0], [TraceIDLen]byte{}, 0))
	f.Add(append(AppendTraceUntraced(nil), AppendTraceUntraced(nil)...))
	f.Add(append(AppendTraceUntraced(nil), AppendReplicateRequest(nil, 1, 2)...))
	f.Add(append(AppendNamespaced(nil, []byte("t")), AppendKeyRequest(AppendTraceUntraced(nil), OpInsert, []byte("k"))...))
	// Ring / import / elastic stats ops (protocol version 4): well-formed,
	// truncated mid-ring, oversized member count, empty import, enveloped
	// import and elastic stats, forbidden enveloped ring.
	f.Add(AppendRingSetRequest(nil, Ring{Epoch: 3, Joint: true, Old: []string{"a:1", "b:2"}, New: []string{"a:1", "b:2", "c:3"}}))
	f.Add(AppendRingGetRequest(nil))
	f.Add(AppendElasticStatsRequest(nil))
	f.Add(AppendImportRequest(nil, []byte("blobby")))
	f.Add(AppendRingSetRequest(nil, Ring{Epoch: 1, Old: []string{"x:1"}, New: []string{"x:1"}})[:12])
	f.Add([]byte{OpRingSet, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF})
	f.Add([]byte{OpImport})
	f.Add(AppendImportRequest(AppendNamespaced(nil, []byte("t")), []byte("blob")))
	f.Add(AppendElasticStatsRequest(AppendNamespaced(nil, []byte("t"))))
	f.Add(append([]byte{OpNamespaced, 1, 'a'}, AppendRingGetRequest(nil)...))
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		// A successful decode implies a known, named opcode and a key set
		// that fits inside the payload.
		if req.Op == 0 || req.Op > MaxOp {
			t.Fatalf("decoded unknown opcode 0x%02x", req.Op)
		}
		total := 0
		for _, k := range req.Keys {
			total += len(k)
		}
		if len(req.Key)+total > len(payload) {
			t.Fatalf("decoded keys (%d bytes) exceed payload (%d bytes)", len(req.Key)+total, len(payload))
		}
	})
}

func FuzzDecodeStatus(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendOK(nil))
	f.Add(AppendErr(nil, "boom"))
	f.Add(AppendReadOnly(nil, "127.0.0.1:7070"))
	f.Add(AppendBools(AppendOK(nil), []bool{true, false}))
	f.Add(AppendU64(AppendOK(nil), 1<<63))
	f.Add(AppendNsList(AppendOK(nil), []string{"a", "tenant-b"}))
	f.Add(AppendNsStats(AppendOK(nil), NsStats{Resident: true, Items: 42}))
	f.Add(AppendRing(AppendOK(nil), Ring{Epoch: 5, Joint: true, Old: []string{"a:1"}, New: []string{"a:1", "b:2"}}))
	f.Add(AppendElasticStats(AppendOK(nil), ElasticStats{
		Grows: 2, TargetFPR: 0.01,
		Gens: []ElasticGenStats{{Items: 10, Capacity: 100, FillRatio: 0.1, Budget: 0.005, MemoryBits: 4096}},
	}))
	f.Fuzz(func(t *testing.T, payload []byte) {
		status, body, err := DecodeStatus(payload)
		if err != nil {
			return
		}
		if 1+len(body) != len(payload) {
			t.Fatalf("status %d: body %d bytes from %d-byte payload", status, len(body), len(payload))
		}
		// The body decoders must tolerate arbitrary bodies.
		DecodeBool(body)
		DecodeU64(body)
		if vs, err := DecodeBools(body); err == nil && len(vs) > len(body) {
			t.Fatalf("bools: %d values from %d bytes", len(vs), len(body))
		}
		DecodeNsStats(body)
		if names, err := DecodeNsList(body); err == nil && len(names) > len(body) {
			t.Fatalf("ns list: %d names from %d bytes", len(names), len(body))
		}
		if r, _, err := DecodeRing(body); err == nil && len(r.Old)+len(r.New) > len(body) {
			t.Fatalf("ring: %d members from %d bytes", len(r.Old)+len(r.New), len(body))
		}
		if es, err := DecodeElasticStats(body); err == nil && len(es.Gens) > len(body) {
			t.Fatalf("elastic stats: %d generations from %d bytes", len(es.Gens), len(body))
		}
	})
}

// FuzzRepFrameRoundTrip drives the replication codec from both ends:
// DecodeRepFrame must never panic on arbitrary bytes, and re-encoding a
// successfully decoded frame must reproduce the original payload.
func FuzzRepFrameRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRepSnapshot(nil, 1, 10, 100, []byte("filter")))
	f.Add(AppendRepRecords(nil, 2, 64, 11, 132, 1, []byte("rawrecord")))
	f.Add(AppendRepHeartbeat(nil, 2, 96, 12, 164, 1700000000000000000))
	f.Add([]byte{RepHeartbeat, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
		17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}) // legacy 32-byte body
	f.Add([]byte{RepRecords, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := DecodeRepFrame(payload)
		if err != nil {
			return
		}
		var again []byte
		switch fr.Type {
		case RepSnapshot:
			again = AppendRepSnapshot(nil, fr.Seq, fr.CumRecords, fr.CumBytes, fr.Data)
		case RepRecords:
			again = AppendRepRecords(nil, fr.Seq, fr.Off, fr.CumRecords, fr.CumBytes, fr.NumRecords, fr.Data)
		case RepHeartbeat:
			again = AppendRepHeartbeat(nil, fr.Seq, fr.Off, fr.CumRecords, fr.CumBytes, fr.SentUnixNanos)
			// A legacy 32-byte heartbeat re-encodes in the 40-byte form
			// with a zero timestamp appended; the prefix must still match.
			if len(payload) == 33 {
				if fr.SentUnixNanos != 0 {
					t.Fatalf("legacy heartbeat decoded timestamp %d", fr.SentUnixNanos)
				}
				again = again[:33]
			}
		default:
			t.Fatalf("decoded unknown frame type 0x%02x", fr.Type)
		}
		if !bytes.Equal(again, payload) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", again, payload)
		}
	})
}
