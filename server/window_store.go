package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"time"

	mpcbf "repro"
	"repro/elastic"
	"repro/window"
)

// Windowed mode: when StoreOptions.Window is set, the store's state is a
// window.Filter (a ring of G generation filters) instead of a single
// Sharded MPCBF, and two WAL-only record types join the log so crash
// recovery and replication reconstruct the exact generation ring:
//
//	ROTATE:     body = [0xE0]                — the ring advanced one slot
//	INSERT_TTL: body = [0xE1][u32 r][key]    — key placed r rotations from retirement
//
// The opcodes live outside the wire protocol's space (MaxOp is far
// below 0xE0) because rotation is never a client request — the primary's
// clock drives it — and a TTL insert's durable form is its rotation
// count, not its wall-clock TTL. Logging r instead of a timestamp keeps
// replay deterministic: a replica mirroring the primary's WAL bytes, or
// a recovery replaying them hours later, lands every key in the same
// ring slot the primary chose. For the same reason the serving layer
// does not use the window package's precise mode — per-key wall-clock
// deletes cannot be replayed deterministically; TTL granularity here is
// the rotation period.
//
// Rotation ordering: mutations and rotations both run under the store
// mutation lock, apply-then-log, so WAL order equals apply order and the
// ring position at any WAL byte is exact. Replicas never run a rotation
// clock of their own — rotations arrive as mirrored ROTATE records.
const (
	walOpWindowRotate = 0xE0
	walOpInsertTTL    = 0xE1
)

// decodeTTLBody splits a TTL record's key field back into its rotation
// count and key: [u32 r][key bytes] (the wal's EnqueueTTL* framing).
func decodeTTLBody(b []byte) (r int, key []byte, err error) {
	if len(b) < 4 {
		return 0, nil, errors.New("server: truncated ttl wal record")
	}
	return int(binary.LittleEndian.Uint32(b[:4])), b[4:], nil
}

// w returns the window filter, nil when the store is not windowed; safe
// without the mutation lock.
func (s *Store) w() *window.Filter { return s.win.Load() }

// Windowed reports whether the store runs in sliding-window mode.
func (s *Store) Windowed() bool { return s.w() != nil }

// Window exposes the window filter for read-only inspection (nil when
// not windowed).
func (s *Store) Window() *window.Filter { return s.w() }

// RotationHist returns the rotation-latency histogram (time holding the
// mutation lock per ring rotation, including the WAL append).
func (s *Store) RotationHist() HistSnapshot { return s.rotHist.Snapshot() }

var errNotWindowed = errors.New("server: not a windowed store (start mpcbfd with -window)")

// InsertTTL inserts key with a per-key lifetime: the key expires no
// earlier than ttl from now and no later than the window span, at
// rotation granularity. Windowed stores only.
func (s *Store) InsertTTL(key []byte, ttl time.Duration) error {
	return s.insertTTL(key, ttl, nil)
}

func (s *Store) insertTTL(key []byte, ttl time.Duration, tr *reqTrace) error {
	ticket, err := s.insertTTLEnq(key, ttl, tr)
	if err != nil {
		return err
	}
	return s.wal.WaitDurable(ticket, tr)
}

func (s *Store) insertTTLEnq(key []byte, ttl time.Duration, tr *reqTrace) (uint64, error) {
	w := s.w()
	if w == nil {
		return 0, errNotWindowed
	}
	r := w.Generations()
	if ttl >= 0 { // negative = overflowed u64 nanos: treat as full span
		r = w.RotationsFor(ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := tr.now()
	if err := w.InsertRotations(key, r); err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(nil); err != nil {
		return 0, err
	}
	return s.wal.EnqueueTTL(walOpInsertTTL, uint32(r), key, tr)
}

// InsertTTLBatch inserts a batch of keys sharing one TTL, with a single
// fsync. Windowed stores only.
func (s *Store) InsertTTLBatch(keys [][]byte, ttl time.Duration) error {
	return s.insertTTLBatch(keys, ttl, nil)
}

func (s *Store) insertTTLBatch(keys [][]byte, ttl time.Duration, tr *reqTrace) error {
	ticket, err := s.insertTTLBatchEnq(keys, ttl, tr)
	if err != nil {
		return err
	}
	return s.wal.WaitDurable(ticket, tr)
}

func (s *Store) insertTTLBatchEnq(keys [][]byte, ttl time.Duration, tr *reqTrace) (uint64, error) {
	w := s.w()
	if w == nil {
		return 0, errNotWindowed
	}
	r := w.Generations()
	if ttl >= 0 {
		r = w.RotationsFor(ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t0 := tr.now()
	if err := w.InsertRotationsBatch(keys, r); err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(nil); err != nil {
		return 0, err
	}
	return s.wal.EnqueueTTLBatch(walOpInsertTTL, uint32(r), keys, tr)
}

// WindowStats reports the generation ring's shape and occupancy.
// Windowed stores only.
func (s *Store) WindowStats() (window.Stats, error) {
	w := s.w()
	if w == nil {
		return window.Stats{}, errNotWindowed
	}
	return w.Stats(), nil
}

// rotate advances the generation ring one slot and logs the rotation, so
// recovery and replicas advance their rings at the same WAL position.
func (s *Store) rotate() error {
	w := s.w()
	if w == nil {
		return errNotWindowed
	}
	t0 := time.Now()
	s.mu.Lock()
	w.Rotate()
	err := s.selectLocked(nil)
	if err == nil {
		err = s.wal.Append(walOpWindowRotate, nil, nil)
	}
	s.mu.Unlock()
	s.rotHist.ObserveDuration(time.Since(t0))
	return err
}

// rotateLoop drives the window clock on a primary. The period restarts
// at process boot (the time since the last pre-crash rotation is not
// persisted), which can stretch one key's lifetime by at most one
// rotation period — the same staleness bound the window already carries.
func (s *Store) rotateLoop(every time.Duration) {
	defer s.bg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.rotate(); err != nil {
				s.opts.Log.Error("window rotation failed", "error", err)
			}
		case <-s.stop:
			return
		}
	}
}

// marshalLocked encodes the store's state — windowed or not — for
// snapshots, DUMP, and replication bootstrap. With namespaces present
// the encoding is the self-contained container of ns_store.go; without
// them it stays the bare filter encoding old tooling understands.
// Caller holds s.mu.
func (s *Store) marshalLocked() ([]byte, error) {
	base, err := s.marshalBaseLocked()
	if err != nil || s.reg == nil || s.reg.Len() == 0 {
		return base, err
	}
	return s.encodeNsContainerLocked(base)
}

// marshalBaseLocked encodes only the default (anonymous) state.
func (s *Store) marshalBaseLocked() ([]byte, error) {
	if w := s.w(); w != nil {
		return w.MarshalBinary()
	}
	if el := s.elf(); el != nil {
		return el.MarshalBinary()
	}
	return s.f().MarshalBinary()
}

// readSnapshotData reads one snapshot file and returns its CRC-verified
// payload, which is either a Sharded or a windowed encoding — the
// leading magic (window.IsWindowed) says which.
func readSnapshotData(path string) ([]byte, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(blob)
}

// verifySnapshot confirms a just-written snapshot file loads cleanly —
// the default state and, for a namespace container, every embedded
// namespace.
func verifySnapshot(path string) error {
	data, err := readSnapshotData(path)
	if err != nil {
		return err
	}
	if isNsContainer(data) {
		var entries []nsSnapEntry
		if data, entries, err = decodeNsContainer(data); err != nil {
			return err
		}
		for i := range entries {
			if err := verifyNsState(entries[i].data); err != nil {
				return fmt.Errorf("ns %q: %w", entries[i].name, err)
			}
		}
	}
	if window.IsWindowed(data) {
		_, err = window.UnmarshalFilter(data)
		return err
	}
	if elastic.IsElastic(data) {
		_, err = elastic.UnmarshalFilter(data)
		return err
	}
	_, err = mpcbf.UnmarshalSharded(data)
	return err
}

func windowOptionsFrom(opts StoreOptions) window.Options {
	return window.Options{
		Span:        opts.Window,
		Generations: opts.Generations,
		Filter:      opts.Filter,
		Shards:      opts.Shards,
		Workers:     opts.BatchWorkers,
	}
}
