package server

import (
	"strings"
	"testing"
	"time"
)

// testWindowStoreOptions uses a span long enough that the background
// rotation ticker never fires inside a test; rotations are driven
// explicitly through s.rotate() so each test controls the clock.
func testWindowStoreOptions(dir string) StoreOptions {
	o := testStoreOptions(dir)
	o.Window = time.Hour
	o.Generations = 4
	return o
}

func TestWindowStoreBasics(t *testing.T) {
	s, err := OpenStore(testWindowStoreOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Windowed() {
		t.Fatal("store with Window set is not windowed")
	}
	if s.Filter() != nil {
		t.Fatal("windowed store leaked a non-nil Sharded filter")
	}
	if err := s.Insert([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertTTL([]byte("b"), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertTTLBatch(storeKeys("tb", 10), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if !s.Contains([]byte("a")) || !s.Contains([]byte("b")) {
		t.Fatal("false negative on fresh windowed store")
	}
	if got := s.Len(); got != 12 {
		t.Fatalf("Len = %d, want 12", got)
	}
	st, err := s.WindowStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Generations != 4 || st.Span != time.Hour {
		t.Fatalf("WindowStats = %+v", st)
	}
}

func TestPlainStoreRejectsWindowOps(t *testing.T) {
	s, err := OpenStore(testStoreOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.InsertTTL([]byte("x"), time.Minute); err == nil {
		t.Fatal("InsertTTL on a plain store did not error")
	}
	if err := s.InsertTTLBatch(storeKeys("x", 3), time.Minute); err == nil {
		t.Fatal("InsertTTLBatch on a plain store did not error")
	}
	if _, err := s.WindowStats(); err == nil {
		t.Fatal("WindowStats on a plain store did not error")
	}
}

// TestWindowStoreRecoveryFromWALOnly drives a mixed history of plain
// inserts, TTL inserts, and rotations, crashes without a snapshot, and
// checks recovery reconstructs the exact generation ring: same head,
// same rotation count, and keys expire on exactly the same future
// rotation as they would have pre-crash.
func TestWindowStoreRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testWindowStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	// full-span key: survives G-1=3 more rotations, gone after 4.
	if err := s.Insert([]byte("long")); err != nil {
		t.Fatal(err)
	}
	// rotate-every is span/G = 15m, so a 10m TTL needs 2 rotations
	// (RotationsFor rounds up and adds one so lifetime is always >= ttl).
	if err := s.InsertTTL([]byte("short"), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBatch(storeKeys("batch", 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.rotate(); err != nil {
		t.Fatal(err)
	}
	// Inserted after one rotation: lives in a younger generation.
	if err := s.InsertTTLBatch(storeKeys("young", 20), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.rotate(); err != nil {
		t.Fatal(err)
	}
	// Two rotations in: "short" (2 rotations-to-live) just expired.
	if s.Contains([]byte("short")) {
		t.Fatal("short-TTL key survived its rotation budget pre-crash")
	}
	if !s.Contains([]byte("long")) {
		t.Fatal("full-span key expired early pre-crash")
	}
	pre, err := s.WindowStats()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.wal.Close(); err != nil { // crash: no final snapshot
		t.Fatal(err)
	}

	r, err := OpenStore(testWindowStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	post, err := r.WindowStats()
	if err != nil {
		t.Fatal(err)
	}
	if post.Head != pre.Head || post.Rotations != pre.Rotations {
		t.Fatalf("ring mismatch after recovery: pre head=%d rot=%d, post head=%d rot=%d",
			pre.Head, pre.Rotations, post.Head, post.Rotations)
	}
	for i := range pre.GenItems {
		if pre.GenItems[i] != post.GenItems[i] {
			t.Fatalf("generation %d items: pre %d, post %d", i, pre.GenItems[i], post.GenItems[i])
		}
	}
	if r.Contains([]byte("short")) {
		t.Fatal("expired key resurrected by recovery")
	}
	if !r.Contains([]byte("long")) {
		t.Fatal("false negative on full-span key after recovery")
	}
	for _, k := range storeKeys("young", 20) {
		if !r.Contains(k) {
			t.Fatalf("false negative on young key %q after recovery", k)
		}
	}
	// The ring must keep retiring on the same schedule: "long" and the
	// first batch sit 2 rotations from expiry, "young" needs only 1
	// more ("young" was inserted with 2 rotations-to-live, one already
	// spent).
	if err := r.rotate(); err != nil {
		t.Fatal(err)
	}
	if r.Contains([]byte("young-0")) {
		t.Fatal("young TTL key survived past its rotation budget after recovery")
	}
	if !r.Contains([]byte("long")) {
		t.Fatal("full-span key expired one rotation early after recovery")
	}
	if err := r.rotate(); err != nil {
		t.Fatal(err)
	}
	if err := r.rotate(); err != nil {
		t.Fatal(err)
	}
	if r.Contains([]byte("long")) || r.Contains([]byte("batch-0")) {
		t.Fatal("full-span keys survived a full window of rotations")
	}
}

// TestWindowStoreRecoveryFromSnapshotPlusTail checks the windowed
// snapshot format round-trips through the snapshot/recover path with a
// WAL tail of TTL inserts and rotations on top.
func TestWindowStoreRecoveryFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testWindowStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBatch(storeKeys("base", 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Tail: TTL inserts and one more rotation, replayed from the WAL.
	if err := s.InsertTTLBatch(storeKeys("tail", 30), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.rotate(); err != nil {
		t.Fatal(err)
	}
	pre, err := s.WindowStats()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(testWindowStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// 30 TTL inserts + 1 rotation replay on top of the snapshot.
	if got := r.Stats().ReplayedRecords; got != 31 {
		t.Fatalf("replayed %d records, want 31", got)
	}
	post, err := r.WindowStats()
	if err != nil {
		t.Fatal(err)
	}
	if post.Head != pre.Head || post.Rotations != pre.Rotations {
		t.Fatalf("ring mismatch: pre head=%d rot=%d, post head=%d rot=%d",
			pre.Head, pre.Rotations, post.Head, post.Rotations)
	}
	for _, k := range storeKeys("base", 100) {
		if !r.Contains(k) {
			t.Fatalf("false negative on %q after snapshot+tail recovery", k)
		}
	}
	for _, k := range storeKeys("tail", 30) {
		if !r.Contains(k) {
			t.Fatalf("false negative on %q after snapshot+tail recovery", k)
		}
	}
}

// TestWindowStoreModeMismatch: flipping -window on an existing primary
// data directory of the other mode must fail loudly, not silently
// reinterpret the state.
func TestWindowStoreModeMismatch(t *testing.T) {
	t.Run("plain dir, windowed flags", func(t *testing.T) {
		dir := t.TempDir()
		s, err := OpenStore(testStoreOptions(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Insert([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenStore(testWindowStoreOptions(dir)); err == nil {
			t.Fatal("opening a plain store with -window did not error")
		} else if !strings.Contains(err.Error(), "not windowed") {
			t.Fatalf("unhelpful mode-mismatch error: %v", err)
		}
	})
	t.Run("windowed dir, plain flags", func(t *testing.T) {
		dir := t.TempDir()
		s, err := OpenStore(testWindowStoreOptions(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Insert([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenStore(testStoreOptions(dir)); err == nil {
			t.Fatal("opening a windowed store without -window did not error")
		} else if !strings.Contains(err.Error(), "windowed") {
			t.Fatalf("unhelpful mode-mismatch error: %v", err)
		}
	})
}

// TestWindowStoreDelete exercises counting deletes against the ring
// through the store path (delete must land in the generation that holds
// the key).
func TestWindowStoreDelete(t *testing.T) {
	s, err := OpenStore(testWindowStoreOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Insert([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert([]byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if s.Contains([]byte("old")) {
		t.Fatal("deleted key still present")
	}
	if !s.Contains([]byte("new")) {
		t.Fatal("delete removed the wrong generation's key")
	}
	flags, err := s.DeleteBatch([][]byte{[]byte("new"), []byte("absent")})
	if err != nil {
		t.Fatal(err)
	}
	if !flags[0] || flags[1] {
		t.Fatalf("DeleteBatch flags = %v, want [true false]", flags)
	}
}

// TestWindowStoreReplicaAdoptsSnapshotMode: a replica whose local
// snapshot is windowed opens in windowed mode even without the flags —
// the shipped state, not the command line, decides.
func TestWindowStoreReplicaAdoptsSnapshotMode(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testWindowStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBatch(storeKeys("rep", 40)); err != nil {
		t.Fatal(err)
	}
	if err := s.rotate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // clean close writes a snapshot
		t.Fatal(err)
	}

	ro := testStoreOptions(dir) // note: no Window set
	ro.Replica = true
	r, err := OpenStore(ro)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Windowed() {
		t.Fatal("replica did not adopt the windowed snapshot mode")
	}
	for _, k := range storeKeys("rep", 40) {
		if !r.Contains(k) {
			t.Fatalf("false negative on %q after replica open", k)
		}
	}
	st, err := r.WindowStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rotations != 1 {
		t.Fatalf("replica rotations = %d, want 1", st.Rotations)
	}
}
