package mapreduce

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func wordCountJob(text []string, mapTasks, reduceTasks int, combiner bool) Job {
	input := make([]KV, len(text))
	for i, line := range text {
		input[i] = KV{Key: fmt.Sprintf("line-%d", i), Value: line}
	}
	sum := ReducerFunc(func(key string, values []string, emit Emitter) {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(v)
			total += n
		}
		emit(key, strconv.Itoa(total))
	})
	job := Job{
		Name:  "wordcount",
		Input: input,
		Mapper: MapperFunc(func(_, value string, emit Emitter) {
			for _, w := range strings.Fields(value) {
				emit(w, "1")
			}
		}),
		Reducer:     sum,
		MapTasks:    mapTasks,
		ReduceTasks: reduceTasks,
	}
	if combiner {
		job.Combiner = sum
	}
	return job
}

func TestWordCount(t *testing.T) {
	text := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog jumps",
	}
	res, err := Run(wordCountJob(text, 2, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"the": "3", "quick": "2", "dog": "2", "brown": "1",
		"fox": "1", "lazy": "1", "jumps": "1",
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output size %d, want %d: %v", len(res.Output), len(want), res.Output)
	}
	for _, kv := range res.Output {
		if want[kv.Key] != kv.Value {
			t.Errorf("%s = %s, want %s", kv.Key, kv.Value, want[kv.Key])
		}
	}
	if res.Counters[CounterMapInputRecords] != 3 {
		t.Errorf("map input = %d", res.Counters[CounterMapInputRecords])
	}
	if res.Counters[CounterMapOutputRecords] != 11 {
		t.Errorf("map output = %d", res.Counters[CounterMapOutputRecords])
	}
	if res.Counters[CounterReduceInputGroups] != 7 {
		t.Errorf("groups = %d", res.Counters[CounterReduceInputGroups])
	}
}

func TestWordCountManyTaskShapes(t *testing.T) {
	text := []string{"a b", "b c c", "d", "", "a a a"}
	var ref []KV
	for _, shape := range [][2]int{{1, 1}, {3, 1}, {1, 4}, {8, 3}, {16, 8}} {
		res, err := Run(wordCountJob(text, shape[0], shape[1], false))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Output
			continue
		}
		if fmt.Sprint(res.Output) != fmt.Sprint(ref) {
			t.Fatalf("task shape %v changed the result: %v vs %v", shape, res.Output, ref)
		}
	}
}

func TestCombinerReducesShuffle(t *testing.T) {
	text := make([]string, 50)
	for i := range text {
		text[i] = "x x x y"
	}
	plain, err := Run(wordCountJob(text, 4, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Run(wordCountJob(text, 4, 2, true))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(plain.Output) != fmt.Sprint(combined.Output) {
		t.Fatal("combiner changed the result")
	}
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Fatalf("combiner did not reduce shuffle: %d vs %d",
			combined.ShuffleBytes, plain.ShuffleBytes)
	}
	if combined.Counters[CounterCombineOutput] == 0 {
		t.Fatal("combine counter missing")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Job{}); err == nil {
		t.Fatal("job without mapper/reducer accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(wordCountJob(nil, 4, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 0 {
		t.Fatalf("empty input produced output: %v", res.Output)
	}
}

func TestPartitionStable(t *testing.T) {
	for _, key := range []string{"", "a", "abc", "patent-123"} {
		p := partition(key, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition(%q) = %d", key, p)
		}
		if partition(key, 7) != p {
			t.Fatal("partition not deterministic")
		}
	}
}

func TestFormatCounters(t *testing.T) {
	s := FormatCounters(map[string]int64{"b": 2, "a": 1})
	if s != "a=1 b=2 " {
		t.Fatalf("FormatCounters = %q", s)
	}
}

// --- reduce-side join ---

type setFilter map[string]bool

func (s setFilter) Contains(key []byte) bool { return s[string(key)] }

func joinTables() (left, right []KV) {
	left = []KV{
		{"p1", "patent-one"},
		{"p2", "patent-two"},
		{"p3", "patent-three"},
	}
	right = []KV{
		{"p1", "cite-a"},
		{"p1", "cite-b"},
		{"p3", "cite-c"},
		{"q9", "cite-d"}, // no match
		{"q8", "cite-e"}, // no match
	}
	return left, right
}

func TestReduceSideJoinNoFilter(t *testing.T) {
	left, right := joinTables()
	res, stats, err := ReduceSideJoin(left, right, nil, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []KV{
		{"p1", "patent-one|cite-a"},
		{"p1", "patent-one|cite-b"},
		{"p3", "patent-three|cite-c"},
	}
	if fmt.Sprint(res.Output) != fmt.Sprint(want) {
		t.Fatalf("join output %v, want %v", res.Output, want)
	}
	if stats.JoinedRows != 3 {
		t.Fatalf("JoinedRows = %d", stats.JoinedRows)
	}
	// Without a filter every record is shuffled.
	if stats.MapOutputRecords != int64(len(left)+len(right)) {
		t.Fatalf("map outputs = %d", stats.MapOutputRecords)
	}
	if stats.RightDropped != 0 || stats.FilterFalsePositives != 2 {
		t.Fatalf("audit: dropped=%d falsePos=%d", stats.RightDropped, stats.FilterFalsePositives)
	}
}

func TestReduceSideJoinExactFilter(t *testing.T) {
	left, right := joinTables()
	filter := setFilter{"p1": true, "p2": true, "p3": true}
	res, stats, err := ReduceSideJoin(left, right, filter, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JoinedRows != 3 {
		t.Fatalf("JoinedRows = %d (filter must not change the join)", stats.JoinedRows)
	}
	// The two unmatched citations are dropped in the map phase.
	if stats.MapOutputRecords != int64(len(left)+3) {
		t.Fatalf("map outputs = %d, want %d", stats.MapOutputRecords, len(left)+3)
	}
	if stats.RightDropped != 2 || stats.FilterFalsePositives != 0 {
		t.Fatalf("audit: dropped=%d falsePos=%d", stats.RightDropped, stats.FilterFalsePositives)
	}
	if len(res.Output) != 3 {
		t.Fatalf("output rows = %d", len(res.Output))
	}
}

func TestReduceSideJoinFalsePositiveFilter(t *testing.T) {
	// A filter with a false positive shuffles the useless record but the
	// join result is unchanged — exactly why fpr only costs I/O.
	left, right := joinTables()
	filter := setFilter{"p1": true, "p2": true, "p3": true, "q9": true}
	res, stats, err := ReduceSideJoin(left, right, filter, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.JoinedRows != 3 || len(res.Output) != 3 {
		t.Fatalf("join changed by fp filter: %d rows", stats.JoinedRows)
	}
	if stats.FilterFalsePositives != 1 || stats.RightDropped != 1 {
		t.Fatalf("audit: dropped=%d falsePos=%d", stats.RightDropped, stats.FilterFalsePositives)
	}
}

func TestJoinFilterInvariance(t *testing.T) {
	// Property: for any filter that passes all true join keys, the join
	// output is identical to the unfiltered join.
	left, right := joinTables()
	base, _, err := ReduceSideJoin(left, right, nil, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	filters := []setFilter{
		{"p1": true, "p2": true, "p3": true},
		{"p1": true, "p2": true, "p3": true, "q8": true, "q9": true},
	}
	for i, f := range filters {
		res, _, err := ReduceSideJoin(left, right, f, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Output) != fmt.Sprint(base.Output) {
			t.Fatalf("filter %d changed join output", i)
		}
	}
}
