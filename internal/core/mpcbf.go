// Package core implements the paper's primary contribution: the
// Multiple-Partitioned Counting Bloom Filter (MPCBF-1 and MPCBF-g,
// Sections III.B and III.C).
//
// The membership counter vector is partitioned into l words of w bits, each
// holding an improved Hierarchical CBF (internal/hcbf) whose first level
// occupies b1 = w - ceil(k/g)*nmax bits. A key hashes to g words and to k
// first-level slots split over them, so a query costs g memory accesses
// (one for MPCBF-1) while the first level is several times wider than the
// w/4 counters a packed CBF word would offer — which is what buys the
// order-of-magnitude false-positive-rate reduction at equal memory.
package core

import (
	"errors"
	"fmt"

	"repro/internal/analytic"
	"repro/internal/bitvec"
	"repro/internal/hashing"
	"repro/internal/hcbf"
	"repro/internal/metrics"
)

// ErrWordOverflow is returned by Insert when one of the key's words cannot
// absorb the key's increments. Under OverflowFail the filter state is
// unchanged; sizing via the Eq. 11 heuristic makes this event vanishingly
// rare (the paper never observed it).
var ErrWordOverflow = errors.New("mpcbf: word overflow")

// ErrUnderflow is returned by Delete when a slot counter is already zero —
// the key being deleted was not (fully) present.
var ErrUnderflow = errors.New("mpcbf: delete of absent key (counter underflow)")

// OverflowPolicy selects how Insert reacts to a full word.
type OverflowPolicy int

const (
	// OverflowFail rejects the insert, leaving the filter unchanged.
	OverflowFail OverflowPolicy = iota
	// OverflowSaturate marks the word saturated: every membership test
	// against it answers positive from then on, and its counters are
	// frozen. Like a saturated 4-bit counter this can create stale
	// positives but never false negatives.
	OverflowSaturate
)

// Config parametrizes a filter. Zero fields take defaults; see New.
type Config struct {
	// MemoryBits is the total memory budget M in bits (required).
	MemoryBits int
	// ExpectedN is the number of distinct elements the filter is sized
	// for; it drives the Eq. 11 nmax heuristic (required unless B1 set).
	ExpectedN int
	// W is the word width in bits (default 64).
	W int
	// K is the number of hash functions (default 3).
	K int
	// G is the number of words (memory accesses) per key (default 1).
	G int
	// B1 overrides the first-level width. Zero selects the improved
	// layout b1 = w - ceil(k/g)*nmax; a positive value builds the basic
	// HCBF of Fig. 3(a) with a fixed first level (used by ablations).
	B1 int
	// Seed selects the hash family.
	Seed uint32
	// Overflow selects the word-overflow policy (default OverflowFail).
	Overflow OverflowPolicy
	// DisableKernel forces the generic per-bit arena path even for word
	// geometries the register-resident kernel supports (w=64/128). Used by
	// the kernel/generic differential tests and ablations; production
	// filters leave it false.
	DisableKernel bool
}

func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = 64
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.G == 0 {
		c.G = 1
	}
	return c
}

// Kernel dispatch modes for the filter's word geometry (mirrors the
// internal/hcbf dispatch; cached here so the hot query path never
// re-derives it).
const (
	kmodeGeneric = iota // per-bit arena walk
	kmode64             // w=64: single-register word kernel
	kmode128            // w=128: two-register word kernel
)

// Filter is an MPCBF-g.
type Filter struct {
	arena  *bitvec.Vector
	cfg    Config
	l      int   // number of words
	b1     int   // first-level width
	nmax   int   // per-word capacity used to derive b1 (0 when B1 forced)
	kmode  int   // register-kernel dispatch mode
	split  []int // slot hashes per word, ceil(k/g) first
	hasher hashing.Hasher

	count     int
	overflows int
	saturated map[int]bool // words switched to always-positive (Saturate)

	// Per-filter scratch for the update paths; a Filter is not safe for
	// concurrent use (wrap with a lock or use the public Sharded type),
	// so reusing these keeps Insert/Delete allocation-free.
	tbuf []target
	sbuf []int
}

// New builds a filter from cfg.
func New(cfg Config) (*Filter, error) {
	cfg = cfg.withDefaults()
	if cfg.MemoryBits < cfg.W {
		return nil, fmt.Errorf("mpcbf: memory %d bits smaller than one word (w=%d)", cfg.MemoryBits, cfg.W)
	}
	if cfg.K < 1 || cfg.G < 1 {
		return nil, fmt.Errorf("mpcbf: k and g must be positive (k=%d, g=%d)", cfg.K, cfg.G)
	}
	if cfg.G > cfg.K {
		return nil, fmt.Errorf("mpcbf: g=%d exceeds k=%d", cfg.G, cfg.K)
	}
	l := cfg.MemoryBits / cfg.W
	if cfg.G > l {
		return nil, fmt.Errorf("mpcbf: g=%d exceeds word count l=%d", cfg.G, l)
	}
	b1 := cfg.B1
	nmax := 0
	if b1 == 0 {
		if cfg.ExpectedN <= 0 {
			return nil, errors.New("mpcbf: ExpectedN required to derive the improved layout (or set B1)")
		}
		d, err := analytic.Design(cfg.ExpectedN, cfg.MemoryBits, cfg.W, cfg.K, cfg.G)
		if err != nil {
			return nil, err
		}
		b1, nmax = d.B1, d.Nmax
	}
	if b1 < 1 || b1 > cfg.W {
		return nil, fmt.Errorf("mpcbf: first level b1=%d outside (0,%d]", b1, cfg.W)
	}
	kmode := kmodeGeneric
	if !cfg.DisableKernel {
		switch cfg.W {
		case 64:
			kmode = kmode64
		case 128:
			kmode = kmode128
		}
	}
	return &Filter{
		arena:     bitvec.New(l * cfg.W),
		cfg:       cfg,
		l:         l,
		b1:        b1,
		nmax:      nmax,
		kmode:     kmode,
		split:     hashing.SplitKEven(cfg.K, cfg.G),
		hasher:    hashing.NewHasher(cfg.Seed),
		saturated: make(map[int]bool),
	}, nil
}

// L returns the number of words.
func (f *Filter) L() int { return f.l }

// W returns the word width in bits.
func (f *Filter) W() int { return f.cfg.W }

// B1 returns the first-level width in bits.
func (f *Filter) B1() int { return f.b1 }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.cfg.K }

// G returns the number of memory accesses per operation.
func (f *Filter) G() int { return f.cfg.G }

// Nmax returns the per-word capacity the improved layout was derived from
// (zero when B1 was forced).
func (f *Filter) Nmax() int { return f.nmax }

// Count returns the current number of elements (inserts minus deletes).
func (f *Filter) Count() int { return f.count }

// OverflowEvents returns how many inserts hit a full word.
func (f *Filter) OverflowEvents() int { return f.overflows }

// SaturatedWords returns how many words were switched to always-positive
// under OverflowSaturate.
func (f *Filter) SaturatedWords() int { return len(f.saturated) }

// MemoryBits returns the filter's memory footprint in bits.
func (f *Filter) MemoryBits() int { return f.l * f.cfg.W }

func (f *Filter) word(idx int) hcbf.Word {
	var w hcbf.Word
	var err error
	if f.cfg.DisableKernel {
		w, err = hcbf.NewWordGeneric(f.arena, idx*f.cfg.W, f.cfg.W, f.b1)
	} else {
		w, err = hcbf.NewWord(f.arena, idx*f.cfg.W, f.cfg.W, f.b1)
	}
	if err != nil {
		panic("mpcbf: internal geometry error: " + err.Error())
	}
	return w
}

// target is one word of a key together with the key's slots in it.
type target struct {
	word  int
	slots []int
}

// targets resolves the key's g words and the k slots split over them,
// into the filter's scratch buffers (valid until the next call). When two
// word hashes collide the targets are kept separate entries of the same
// word; capacity checks aggregate them.
func (f *Filter) targets(key []byte) []target {
	s := f.hasher.NewIndexStream(key)
	if cap(f.tbuf) < f.cfg.G {
		f.tbuf = make([]target, f.cfg.G)
		f.sbuf = make([]int, f.cfg.K)
	}
	out := f.tbuf[:f.cfg.G]
	slots := f.sbuf[:0]
	slot := 0
	for wi := 0; wi < f.cfg.G; wi++ {
		lo := len(slots)
		for j := 0; j < f.split[wi]; j++ {
			slots = append(slots, s.Slot(slot, f.b1))
			slot++
		}
		out[wi] = target{word: s.Word(wi, f.l), slots: slots[lo:]}
	}
	return out
}

// overflowWord records an overflow event on word idx and applies the
// configured policy: ErrWordOverflow under OverflowFail, or nil after
// freezing the word under OverflowSaturate.
func (f *Filter) overflowWord(idx int) error {
	f.overflows++
	if f.cfg.Overflow != OverflowSaturate {
		return ErrWordOverflow
	}
	f.saturated[idx] = true
	return nil
}

// Insert adds key. Under OverflowFail a full word rejects the whole insert
// atomically with ErrWordOverflow.
func (f *Filter) Insert(key []byte) error {
	_, err := f.insert(key, false)
	return err
}

// InsertStats is Insert with access accounting: g memory accesses, and for
// bandwidth log2(l) per word plus, for every increment, log2 of each
// hierarchy level traversed (the paper's update-bandwidth model).
func (f *Filter) InsertStats(key []byte) (metrics.OpStats, error) {
	return f.insert(key, true)
}

func (f *Filter) insert(key []byte, withStats bool) (metrics.OpStats, error) {
	var st metrics.OpStats
	// Hot path: default geometry (g=1, w=64), no accounting. The key's
	// word is loaded into a register once, its k slot indices are hashed
	// and incremented in place, and the word is stored back — one memory
	// access in, one out, with no intermediate target buffers. The update
	// is atomic: a full word fails before any bit changes.
	if !withStats && f.cfg.G == 1 && f.kmode == kmode64 {
		s := f.hasher.NewIndexStream(key)
		wIdx := s.Word(0, f.l)
		if len(f.saturated) != 0 && f.saturated[wIdx] {
			f.count++
			return st, nil
		}
		base := wIdx << 6
		b1, k := f.b1, f.cfg.K
		x := f.arena.Uint64At(base)
		if 64-hcbf.Used64(x, b1) < k {
			if err := f.overflowWord(wIdx); err != nil {
				return st, err
			}
			f.count++
			return st, nil
		}
		for i := 0; i < k; i++ {
			x, _ = hcbf.Inc64(x, b1, s.Slot(i, b1))
		}
		f.arena.SetUint64At(base, x)
		f.count++
		return st, nil
	}
	ts := f.targets(key)
	if withStats {
		st.MemAccesses = f.cfg.G
		st.HashBits = f.cfg.G * metrics.Log2Ceil(f.l)
	}
	// Fast path: single word, no accounting (the default g=1 geometry).
	// The update is an atomic word transaction — on the w=64 kernel one
	// aligned load, k register increments, one store — so no separate
	// capacity pre-walk is needed: a full word fails before any bit
	// changes. Slots come from the filter's own hash stream, so the raw
	// kernel functions are called without per-slot range checks.
	if !withStats && len(ts) == 1 {
		t := ts[0]
		if len(f.saturated) != 0 && f.saturated[t.word] {
			f.count++
			return st, nil
		}
		switch f.kmode {
		case kmode64:
			base := t.word << 6
			x := f.arena.Uint64At(base)
			if 64-hcbf.Used64(x, f.b1) < len(t.slots) {
				if err := f.overflowWord(t.word); err != nil {
					return st, err
				}
				break // word saturated: skip the increments
			}
			for _, s := range t.slots {
				x, _ = hcbf.Inc64(x, f.b1, s)
			}
			f.arena.SetUint64At(base, x)
		default:
			if err := f.word(t.word).IncBatch(t.slots); err != nil {
				if err := f.overflowWord(t.word); err != nil {
					return st, err
				}
			}
		}
		f.count++
		return st, nil
	}
	// Atomic capacity pre-check, aggregating slot counts per distinct word
	// (the g word hashes may collide). g is tiny, so the quadratic
	// duplicate scan beats a map.
	for i := range ts {
		dup := false
		for j := 0; j < i; j++ {
			if ts[j].word == ts[i].word {
				dup = true
				break
			}
		}
		if dup || f.saturated[ts[i].word] {
			continue
		}
		need := len(ts[i].slots)
		for j := i + 1; j < len(ts); j++ {
			if ts[j].word == ts[i].word {
				need += len(ts[j].slots)
			}
		}
		if f.word(ts[i].word).Free() < need {
			if err := f.overflowWord(ts[i].word); err != nil {
				return st, err
			}
		}
	}
	for _, t := range ts {
		if f.saturated[t.word] {
			continue
		}
		w := f.word(t.word)
		if !withStats {
			if err := w.IncBatch(t.slots); err != nil {
				// Unreachable given the pre-check; fail loudly if the
				// invariant is ever broken.
				panic("mpcbf: increment failed after capacity check: " + err.Error())
			}
			continue
		}
		for _, slot := range t.slots {
			levels := w.Levels()
			depth, err := w.Inc(slot)
			if err != nil {
				panic("mpcbf: increment failed after capacity check: " + err.Error())
			}
			for j := 0; j < depth; j++ {
				if j < len(levels) {
					st.HashBits += metrics.Log2Ceil(levels[j])
				}
			}
		}
	}
	f.count++
	return st, nil
}

// Delete removes key. Deleting a key that is not present returns
// ErrUnderflow; as with the standard CBF, counters that could be
// decremented have been, so deletions of unverified keys are hazardous.
func (f *Filter) Delete(key []byte) error {
	_, err := f.delete(key, false)
	return err
}

// DeleteStats is Delete with access accounting (same model as InsertStats).
func (f *Filter) DeleteStats(key []byte) (metrics.OpStats, error) {
	return f.delete(key, true)
}

func (f *Filter) delete(key []byte, withStats bool) (metrics.OpStats, error) {
	var st metrics.OpStats
	// Hot path: default geometry (g=1, w=64), no accounting — the mirror
	// image of the insert hot path: one aligned load, k register
	// decrements, one store. Underflowing slots are skipped and counted so
	// a failed delete cannot corrupt neighboring chains.
	if !withStats && f.cfg.G == 1 && f.kmode == kmode64 {
		s := f.hasher.NewIndexStream(key)
		wIdx := s.Word(0, f.l)
		if len(f.saturated) != 0 && f.saturated[wIdx] {
			f.count--
			return st, nil
		}
		base := wIdx << 6
		b1, k := f.b1, f.cfg.K
		x := f.arena.Uint64At(base)
		underflows := 0
		for i := 0; i < k; i++ {
			var ok bool
			if x, _, ok = hcbf.Dec64(x, b1, s.Slot(i, b1)); !ok {
				underflows++
			}
		}
		f.arena.SetUint64At(base, x)
		if underflows > 0 {
			return st, ErrUnderflow
		}
		f.count--
		return st, nil
	}
	ts := f.targets(key)
	if withStats {
		st.MemAccesses = f.cfg.G
		st.HashBits = f.cfg.G * metrics.Log2Ceil(f.l)
	}
	underflows := 0
	for _, t := range ts {
		if len(f.saturated) != 0 && f.saturated[t.word] {
			continue // frozen word: counters no longer tracked
		}
		w := f.word(t.word)
		if !withStats {
			// Fused per-word decrement: one load, one store on kernel
			// geometries, with per-slot underflows skipped and counted.
			underflows += w.DecBatch(t.slots)
			continue
		}
		for _, slot := range t.slots {
			levels := w.Levels()
			depth, err := w.Dec(slot)
			if err != nil {
				underflows++
				continue
			}
			for j := 0; j < depth; j++ {
				if j < len(levels) {
					st.HashBits += metrics.Log2Ceil(levels[j])
				}
			}
		}
	}
	if underflows > 0 {
		// The key was not (fully) present: the element count must not
		// drift downward on failed deletes.
		return st, ErrUnderflow
	}
	f.count--
	return st, nil
}

// Contains reports whether key may be in the set. This is the hot path:
// on kernel geometries each of the g words is fetched with a single
// aligned load and its k slot bits are tested in a register — the paper's
// one-memory-access query, literally. No cost accounting (use Probe for
// the instrumented variant).
func (f *Filter) Contains(key []byte) bool {
	s := f.hasher.NewIndexStream(key)
	slot := 0
	for wi := 0; wi < f.cfg.G; wi++ {
		wIdx := s.Word(wi, f.l)
		if len(f.saturated) != 0 && f.saturated[wIdx] {
			slot += f.split[wi]
			continue
		}
		switch f.kmode {
		case kmode64:
			x := f.arena.Uint64At(wIdx << 6)
			for j := 0; j < f.split[wi]; j++ {
				if x>>uint(s.Slot(slot, f.b1))&1 == 0 {
					return false
				}
				slot++
			}
		case kmode128:
			base := wIdx << 7
			lo, hi := f.arena.Uint64At(base), f.arena.Uint64At(base+64)
			for j := 0; j < f.split[wi]; j++ {
				if !hcbf.Has128(lo, hi, s.Slot(slot, f.b1)) {
					return false
				}
				slot++
			}
		default:
			base := wIdx * f.cfg.W
			for j := 0; j < f.split[wi]; j++ {
				if !f.arena.Get(base + s.Slot(slot, f.b1)) {
					return false
				}
				slot++
			}
		}
	}
	return true
}

// ContainsBatch answers membership for every key of keys, writing the
// results into dst (grown when too small) and returning it. Batching
// amortizes per-call overhead — geometry and saturation state stay hot
// across keys, and a reused dst keeps the loop allocation-free — which is
// the single-threaded counterpart of Sharded.ContainsBatch.
func (f *Filter) ContainsBatch(keys [][]byte, dst []bool) []bool {
	if cap(dst) < len(keys) {
		dst = make([]bool, len(keys))
	}
	dst = dst[:len(keys)]
	for i, k := range keys {
		dst[i] = f.Contains(k)
	}
	return dst
}

// Probe is Contains with access accounting: one memory access per word
// visited (short-circuiting on the first word that rejects), log2(l) hash
// bits per word plus log2(b1) per first-level slot probed. Only the first
// level is ever read — the hierarchy is update-side state.
func (f *Filter) Probe(key []byte) (bool, metrics.OpStats) {
	s := f.hasher.NewIndexStream(key)
	wordBits := metrics.Log2Ceil(f.l)
	slotBits := metrics.Log2Ceil(f.b1)
	var st metrics.OpStats
	slot := 0
	for wi := 0; wi < f.cfg.G; wi++ {
		wIdx := s.Word(wi, f.l)
		st.MemAccesses++
		st.HashBits += wordBits
		if len(f.saturated) != 0 && f.saturated[wIdx] {
			slot += f.split[wi]
			continue
		}
		w := f.word(wIdx)
		for j := 0; j < f.split[wi]; j++ {
			st.HashBits += slotBits
			if !w.Has(s.Slot(slot, f.b1)) {
				return false, st
			}
			slot++
		}
	}
	return true, st
}

// CountOf returns the minimum counter value across key's slots, an upper
// bound on its multiplicity. Saturated words report a large value.
func (f *Filter) CountOf(key []byte) int {
	min := int(^uint(0) >> 1)
	for _, t := range f.targets(key) {
		if f.saturated[t.word] {
			continue
		}
		w := f.word(t.word)
		for _, slot := range t.slots {
			if c := w.Count(slot); c < min {
				min = c
			}
		}
	}
	return min
}

// FillStats summarizes word occupancy for experiments: the mean used bits
// per word and the maximum hierarchy depth observed.
func (f *Filter) FillStats() (meanUsed float64, maxDepth int) {
	total := 0
	for i := 0; i < f.l; i++ {
		w := f.word(i)
		total += w.Used()
		if d := len(w.Levels()); d > maxDepth {
			maxDepth = d
		}
	}
	return float64(total) / float64(f.l), maxDepth
}

// Reset clears the filter.
func (f *Filter) Reset() {
	f.arena.Reset()
	f.count = 0
	f.overflows = 0
	f.saturated = make(map[int]bool)
}
