package core

import (
	"fmt"
	"testing"

	"repro/internal/cbf"
	"repro/internal/hashing"
)

func keys(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

func mustNew(t *testing.T, cfg Config) *Filter {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{MemoryBits: 32, W: 64, ExpectedN: 10},          // memory < one word
		{MemoryBits: 1 << 20, K: -1, ExpectedN: 10},     // bad k
		{MemoryBits: 1 << 20, K: 3, G: 4, ExpectedN: 1}, // g > k
		{MemoryBits: 1 << 20},                           // no ExpectedN, no B1
		{MemoryBits: 1 << 20, B1: 100, W: 64},           // b1 > w
		{MemoryBits: 128, W: 64, K: 3, G: 3},            // g > l (l=2) and g<=k ok
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDefaultsAndGeometry(t *testing.T) {
	f := mustNew(t, Config{MemoryBits: 1 << 20, ExpectedN: 10000})
	if f.W() != 64 || f.K() != 3 || f.G() != 1 {
		t.Fatalf("defaults: w=%d k=%d g=%d", f.W(), f.K(), f.G())
	}
	if f.L() != 1<<20/64 {
		t.Fatalf("L = %d", f.L())
	}
	if f.B1() != 64-3*f.Nmax() {
		t.Fatalf("improved layout violated: b1=%d nmax=%d", f.B1(), f.Nmax())
	}
	if f.MemoryBits() != f.L()*64 {
		t.Fatalf("MemoryBits = %d", f.MemoryBits())
	}
}

func TestBasicLayoutOverride(t *testing.T) {
	f := mustNew(t, Config{MemoryBits: 1 << 16, B1: 32, W: 64, K: 3})
	if f.B1() != 32 || f.Nmax() != 0 {
		t.Fatalf("override: b1=%d nmax=%d", f.B1(), f.Nmax())
	}
}

func TestRoundTrip(t *testing.T) {
	for _, g := range []int{1, 2, 3} {
		f := mustNew(t, Config{MemoryBits: 1 << 20, ExpectedN: 2000, K: 3, G: g, Seed: 1})
		in := keys("in", 2000)
		for _, k := range in {
			if err := f.Insert(k); err != nil {
				t.Fatalf("g=%d insert: %v", g, err)
			}
		}
		if f.Count() != 2000 {
			t.Fatalf("Count = %d", f.Count())
		}
		for _, k := range in {
			if !f.Contains(k) {
				t.Fatalf("g=%d: false negative for %q", g, k)
			}
		}
		for _, k := range in {
			if err := f.Delete(k); err != nil {
				t.Fatalf("g=%d delete: %v", g, err)
			}
		}
		for _, k := range in {
			if f.Contains(k) {
				t.Fatalf("g=%d: stale positive after deletion", g)
			}
		}
		mean, _ := f.FillStats()
		if mean != float64(f.B1()) {
			t.Fatalf("g=%d: words not fully unwound: mean used %.2f, want %d", g, mean, f.B1())
		}
	}
}

func TestDeleteAbsentUnderflows(t *testing.T) {
	f := mustNew(t, Config{MemoryBits: 1 << 16, ExpectedN: 100})
	if err := f.Delete([]byte("ghost")); err != ErrUnderflow {
		t.Fatalf("expected ErrUnderflow, got %v", err)
	}
}

func TestCountOf(t *testing.T) {
	// Explicit B1 leaves 32 increments of headroom per word: duplicate
	// inserts of one key concentrate in its words, which the distinct-
	// element heuristic does not size for.
	f := mustNew(t, Config{MemoryBits: 1 << 18, K: 3, G: 2, B1: 32})
	k := []byte("dup")
	for i := 1; i <= 5; i++ {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
		if got := f.CountOf(k); got < i {
			t.Fatalf("after %d inserts CountOf = %d", i, got)
		}
	}
}

func TestOverflowFailIsAtomic(t *testing.T) {
	// One word (l=1), tiny capacity: w=64, b1 forced to 62 leaves room for
	// 2 increments only; a k=3 insert must fail without mutating anything.
	f := mustNew(t, Config{MemoryBits: 64, W: 64, K: 3, B1: 62, Seed: 3})
	err := f.Insert([]byte("x"))
	if err != ErrWordOverflow {
		t.Fatalf("expected ErrWordOverflow, got %v", err)
	}
	if f.OverflowEvents() != 1 {
		t.Fatalf("OverflowEvents = %d", f.OverflowEvents())
	}
	mean, _ := f.FillStats()
	if mean != 62 {
		t.Fatalf("failed insert left residue: mean used %.1f", mean)
	}
	if f.Count() != 0 {
		t.Fatalf("Count = %d after failed insert", f.Count())
	}
}

func TestOverflowSaturate(t *testing.T) {
	f := mustNew(t, Config{
		MemoryBits: 64, W: 64, K: 3, B1: 62, Seed: 3,
		Overflow: OverflowSaturate,
	})
	if err := f.Insert([]byte("x")); err != nil {
		t.Fatalf("saturate policy should absorb overflow, got %v", err)
	}
	if f.SaturatedWords() != 1 {
		t.Fatalf("SaturatedWords = %d", f.SaturatedWords())
	}
	// Saturated words answer positive for everything (stale positives,
	// never false negatives).
	if !f.Contains([]byte("x")) || !f.Contains([]byte("never-inserted")) {
		t.Fatal("saturated word must answer positive")
	}
	// Deletes against a saturated word are no-ops, not corruption.
	if err := f.Delete([]byte("x")); err != nil {
		t.Fatalf("delete on saturated word: %v", err)
	}
}

func TestHeuristicAvoidsOverflow(t *testing.T) {
	// Section IV.B: with nmax from Eq. 11 the paper never observed word
	// overflow. Reproduce at small scale: n=20000 into 1 Mb.
	f := mustNew(t, Config{MemoryBits: 1 << 20, ExpectedN: 20000, K: 3, Seed: 7})
	for _, k := range keys("in", 20000) {
		if err := f.Insert(k); err != nil {
			t.Fatalf("overflow despite heuristic sizing: %v", err)
		}
	}
	if f.OverflowEvents() != 0 {
		t.Fatalf("OverflowEvents = %d", f.OverflowEvents())
	}
}

func TestFPRBeatsCBFAtSameMemory(t *testing.T) {
	// The paper's central experimental claim (Fig. 7): at equal memory and
	// k, MPCBF-1 and especially MPCBF-2 have lower fpr than the CBF.
	const memBits = 1 << 19 // 512 Kb
	const n = 10000         // ~13 counters-equivalent per key
	std, err := cbf.FromMemory(memBits, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	mp1 := mustNew(t, Config{MemoryBits: memBits, ExpectedN: n, K: 3, G: 1, Seed: 2})
	mp2 := mustNew(t, Config{MemoryBits: memBits, ExpectedN: n, K: 3, G: 2, Seed: 2})
	for _, k := range keys("in", n) {
		std.Insert(k)
		if err := mp1.Insert(k); err != nil {
			t.Fatal(err)
		}
		if err := mp2.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	var fpStd, fp1, fp2 int
	const probes = 300000
	for _, k := range keys("out", probes) {
		if std.Contains(k) {
			fpStd++
		}
		if mp1.Contains(k) {
			fp1++
		}
		if mp2.Contains(k) {
			fp2++
		}
	}
	if fp1 >= fpStd {
		t.Fatalf("MPCBF-1 fp=%d not below CBF fp=%d", fp1, fpStd)
	}
	if fp2 >= fp1 {
		t.Fatalf("MPCBF-2 fp=%d not below MPCBF-1 fp=%d", fp2, fp1)
	}
	if fp2*4 > fpStd {
		t.Fatalf("MPCBF-2 fp=%d not well below CBF fp=%d", fp2, fpStd)
	}
}

func TestProbeAccounting(t *testing.T) {
	f := mustNew(t, Config{MemoryBits: 1 << 16, ExpectedN: 100, K: 4, G: 2, Seed: 0})
	if err := f.Insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
	ok, st := f.Probe([]byte("x"))
	if !ok {
		t.Fatal("member not found")
	}
	if st.MemAccesses != 2 {
		t.Fatalf("member probe accesses = %d, want g=2", st.MemAccesses)
	}
	wantBits := 2*10 + 4*6 // log2(1024 words)=10, log2ceil(b1<=64)=6
	if st.HashBits != wantBits {
		t.Fatalf("member probe bits = %d, want %d (b1=%d)", st.HashBits, wantBits, f.B1())
	}
	ok, st = f.Probe([]byte("definitely-absent-key"))
	if ok && st.MemAccesses > 2 {
		t.Fatalf("absent probe: %v, %d accesses", ok, st.MemAccesses)
	}
}

func TestUpdateStats(t *testing.T) {
	f := mustNew(t, Config{MemoryBits: 1 << 16, ExpectedN: 100, K: 3, G: 1, Seed: 0})
	st, err := f.InsertStats([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if st.MemAccesses != 1 {
		t.Fatalf("insert accesses = %d, want 1", st.MemAccesses)
	}
	// log2(l=1024) + 3 fresh slots at level 1 (log2ceil(b1)) each.
	if st.HashBits <= 10 {
		t.Fatalf("insert bits = %d, too small", st.HashBits)
	}
	st2, err := f.DeleteStats([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if st2.MemAccesses != 1 {
		t.Fatalf("delete accesses = %d", st2.MemAccesses)
	}
	if st2.HashBits != st.HashBits {
		t.Fatalf("delete bits %d != insert bits %d for symmetric op", st2.HashBits, st.HashBits)
	}
}

func TestRandomOpsAgainstReference(t *testing.T) {
	// Explicit B1: random-walk multiplicities exceed what the distinct-
	// element heuristic sizes words for.
	f := mustNew(t, Config{MemoryBits: 1 << 18, K: 3, G: 2, B1: 16, Seed: 5})
	ref := make(map[string]int)
	rng := hashing.NewRNG(17)
	universe := keys("u", 300)
	for op := 0; op < 20000; op++ {
		k := universe[rng.Intn(len(universe))]
		if (rng.Intn(2) == 0 || ref[string(k)] == 0) && ref[string(k)] < 5 {
			if err := f.Insert(k); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			ref[string(k)]++
		} else {
			if err := f.Delete(k); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			ref[string(k)]--
		}
	}
	total := 0
	for k, n := range ref {
		total += n
		if n > 0 && !f.Contains([]byte(k)) {
			t.Fatalf("false negative for %q (count %d)", k, n)
		}
		if n > 0 && f.CountOf([]byte(k)) < n {
			t.Fatalf("CountOf(%q) = %d below true count %d", k, f.CountOf([]byte(k)), n)
		}
	}
	if f.Count() != total {
		t.Fatalf("Count = %d, reference total %d", f.Count(), total)
	}
}

func TestReset(t *testing.T) {
	f := mustNew(t, Config{MemoryBits: 1 << 16, ExpectedN: 100})
	f.Insert([]byte("a"))
	f.Reset()
	if f.Count() != 0 || f.Contains([]byte("a")) || f.OverflowEvents() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestWordHashCollisionHandled(t *testing.T) {
	// With l=2 and g=2, both word hashes frequently land on the same word;
	// inserts must still be atomic and consistent.
	f := mustNew(t, Config{MemoryBits: 128, W: 64, K: 2, G: 2, B1: 40, Seed: 1})
	in := keys("in", 8)
	for _, k := range in {
		if err := f.Insert(k); err != nil && err != ErrWordOverflow {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	for _, k := range in {
		f.Delete(k) // must not panic even after partial overflow rejections
	}
}

func TestFillStats(t *testing.T) {
	f := mustNew(t, Config{MemoryBits: 1 << 12, K: 3, B1: 40, Seed: 0})
	mean, depth := f.FillStats()
	if mean != float64(f.B1()) || depth != 1 {
		t.Fatalf("fresh filter: mean=%v depth=%d", mean, depth)
	}
	for _, k := range keys("in", 50) {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	mean, depth = f.FillStats()
	want := float64(f.B1()) + float64(50*3)/float64(f.L())
	if mean < want-0.01 || mean > want+0.01 {
		t.Fatalf("mean used = %v, want ~%v", mean, want)
	}
	if depth < 2 {
		t.Fatalf("depth = %d after load", depth)
	}
}
