package hashing

import "math/bits"

const (
	mmC1 = 0x87c37b91114253d5
	mmC2 = 0x4cf5ad432745937f
)

// Murmur128 computes the x64 variant of MurmurHash3 (128-bit) of data with
// the given seed, returning the two 64-bit halves. The pair serves as the
// base of every double-hashed index stream in this repository.
func Murmur128(data []byte, seed uint32) (uint64, uint64) {
	n := len(data)
	h1 := uint64(seed)
	h2 := uint64(seed)
	p := data
	for len(p) >= 16 {
		k1 := le64(p[0:8])
		k2 := le64(p[8:16])
		p = p[16:]

		k1 *= mmC1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= mmC2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= mmC2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= mmC1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	var k1, k2 uint64
	switch len(p) & 15 {
	case 15:
		k2 ^= uint64(p[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(p[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(p[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(p[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(p[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(p[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(p[8])
		k2 *= mmC2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= mmC1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(p[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(p[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(p[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(p[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(p[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(p[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(p[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(p[0])
		k1 *= mmC1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= mmC2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
