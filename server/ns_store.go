package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	mpcbf "repro"
	"repro/elastic"
	"repro/server/ns"
	"repro/server/wire"
	"repro/window"
)

// Multi-tenant namespaces: the store owns a ns.Registry of named filters
// alongside its default (anonymous) state, all sharing the one WAL and
// the one replication stream. Three WAL-only record types make the
// namespace map and the per-record targeting durable:
//
//	NS_CREATE: body = [0xE2][u8 len][name][NsConfigSize-byte resolved config]
//	NS_DROP:   body = [0xE3][u8 len][name]
//	NS_SELECT: body = [0xE4][u8 len][name]   (len 0 = the default state)
//
// NS_CREATE carries the *resolved* configuration, so replay and replicas
// rebuild identical geometry regardless of their local defaults.
// NS_SELECT is a prefix record: every data record that follows applies
// to the selected namespace until the next SELECT. The selection resets
// to the default state at each segment boundary — the primary emits it
// only as needed after a rotation — so a snapshot plus its tail segments
// is always self-describing. All three are flush barriers in the batch
// applier, mirroring the ROTATE discipline: records logged before a
// lifecycle event must land in the pre-event state.
//
// Evictions are deliberately NOT logged: residency is local policy (each
// node has its own quota), while the WAL describes the logical state
// both primaries and byte-mirror replicas must agree on.
const (
	walOpNsCreate = 0xE2
	walOpNsDrop   = 0xE3
	walOpNsSelect = 0xE4
)

// nsDefaultWALName is the [u8 len][name] body selecting the default
// state (length 0).
var nsDefaultWALName = []byte{0}

// nsSnapPath is a namespace's evict file: the marshaled filter state of
// an evicted namespace, wrapped in the same CRC envelope as snapshots.
func nsSnapPath(dir, name string) string {
	return filepath.Join(dir, "ns-"+name+".snap")
}

// listNsSnapFiles returns the evict files present in dir.
func listNsSnapFiles(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		n := e.Name()
		if strings.HasPrefix(n, "ns-") && strings.HasSuffix(n, ".snap") {
			out = append(out, filepath.Join(dir, n))
		}
	}
	return out
}

// nsRegistryOptions binds the registry's persistence callbacks to the
// store's data directory using the same write-fsync-rename-syncdir
// discipline as snapshots.
func (s *Store) nsRegistryOptions() ns.Options {
	dir := s.opts.Dir
	return ns.Options{
		Defaults:  s.opts.NsDefaults,
		Quota:     s.opts.NsQuota,
		IdleAfter: s.opts.NsIdleAfter,
		Workers:   s.opts.BatchWorkers,
		Log:       s.opts.Log,
		Save: func(name string, data []byte) error {
			final := nsSnapPath(dir, name)
			tmp := final + ".tmp"
			if err := writeFileSync(tmp, encodeSnapshot(data)); err != nil {
				return err
			}
			if err := os.Rename(tmp, final); err != nil {
				return err
			}
			syncDir(dir)
			return nil
		},
		Load: func(name string) ([]byte, error) {
			return readSnapshotData(nsSnapPath(dir, name))
		},
		Remove: func(name string) error {
			if err := os.Remove(nsSnapPath(dir, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
			return nil
		},
	}
}

// Namespaces exposes the registry for observability snapshots.
func (s *Store) Namespaces() *ns.Registry { return s.reg }

// nsCreateBody frames an NS_CREATE record body: the namespace's WAL name
// block followed by its resolved wire configuration.
func nsCreateBody(e *ns.Entry) []byte {
	wn := e.WALName()
	body := make([]byte, 0, len(wn)+wire.NsConfigSize)
	body = append(body, wn...)
	return wire.AppendNsConfig(body, e.Config().Wire())
}

// decodeNsName splits [u8 len][name] off the front of a namespace WAL
// record body.
func decodeNsName(b []byte) (name, rest []byte, err error) {
	if len(b) < 1 {
		return nil, nil, errors.New("server: truncated namespace wal record")
	}
	n := int(b[0])
	if len(b) < 1+n {
		return nil, nil, errors.New("server: truncated namespace wal record")
	}
	return b[1 : 1+n], b[1+n:], nil
}

// selectLocked ensures the WAL's selection context matches e (nil = the
// default state), emitting an NS_SELECT record when it does not. Caller
// holds s.mu; the enqueued select shares the commit round of whatever
// data record follows it.
func (s *Store) selectLocked(e *ns.Entry) error {
	if s.walCtx == e {
		return nil
	}
	body := nsDefaultWALName
	if e != nil {
		body = e.WALName()
	}
	if _, err := s.wal.Enqueue(walOpNsSelect, body, nil); err != nil {
		return err
	}
	s.walCtx = e
	return nil
}

// nsResidentLocked recovers an evicted entry and re-enforces the quota
// so the recovery itself cannot push resident bytes over it.
func (s *Store) nsResidentLocked(e *ns.Entry) error {
	if e.Resident() {
		return nil
	}
	if err := s.reg.Recover(e); err != nil {
		return err
	}
	return s.reg.EnsureQuota(e)
}

// nsCreateLocked creates a resident namespace with an already-resolved
// configuration and logs its NS_CREATE record. Quota enforcement runs
// after the create so the new namespace is never its own victim.
func (s *Store) nsCreateLocked(name string, cfg ns.Config, tr *reqTrace) (*ns.Entry, uint64, error) {
	e, err := s.reg.Create(name, cfg)
	if err != nil {
		return nil, 0, err
	}
	ticket, err := s.wal.Enqueue(walOpNsCreate, nsCreateBody(e), tr)
	if err != nil {
		return nil, 0, err
	}
	if err := s.reg.EnsureQuota(e); err != nil {
		return nil, 0, err
	}
	return e, ticket, nil
}

// nsEntryLocked resolves a name to its entry, recovering it if evicted.
// With create set, an unknown name is lazily created from the daemon's
// defaults (logging NS_CREATE with the resolved config); without it, an
// unknown name returns (nil, nil).
func (s *Store) nsEntryLocked(name []byte, create bool) (*ns.Entry, error) {
	if e := s.reg.Lookup(name); e != nil {
		if err := s.nsResidentLocked(e); err != nil {
			return nil, err
		}
		e.Touch(s.reg.Now())
		return e, nil
	}
	if !create {
		return nil, nil
	}
	cfg, err := s.reg.Resolve(ns.Config{})
	if err != nil {
		return nil, err
	}
	e, _, err := s.nsCreateLocked(string(name), cfg, nil)
	return e, err
}

// nsWindowEntryLocked is nsEntryLocked for the TTL paths: lazy creation
// is refused up front when the defaults are not windowed, so a bad TTL
// insert cannot create a namespace as a side effect.
func (s *Store) nsWindowEntryLocked(name []byte) (*ns.Entry, error) {
	if e := s.reg.Lookup(name); e != nil {
		if !e.Windowed() {
			return nil, fmt.Errorf("server: namespace %q is not windowed", name)
		}
		if err := s.nsResidentLocked(e); err != nil {
			return nil, err
		}
		e.Touch(s.reg.Now())
		return e, nil
	}
	cfg, err := s.reg.Resolve(ns.Config{})
	if err != nil {
		return nil, err
	}
	if !cfg.Windowed() {
		return nil, fmt.Errorf("server: namespace %q is not windowed (defaults are not windowed; CREATE_NS it with a window)", name)
	}
	e, _, err := s.nsCreateLocked(string(name), cfg, nil)
	return e, err
}

// --- namespaced mutations -------------------------------------------------
//
// Same shape as the default-state *Enq methods: apply under s.mu, then
// enqueue (SELECT as needed, then the data record) and return the commit
// ticket the caller must wait out before acknowledging.

func (s *Store) nsInsertEnq(name, key []byte, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.nsEntryLocked(name, true)
	if err != nil {
		return 0, err
	}
	t0 := tr.now()
	if err := e.Insert(key); err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(e); err != nil {
		return 0, err
	}
	ticket, err := s.wal.Enqueue(wire.OpInsert, key, tr)
	if err != nil {
		return 0, err
	}
	// The GROW record (if due) rides the selection this insert just
	// established; its ticket supersedes the data ticket.
	if gt := s.nsGrowEnqLocked(e); gt != 0 {
		ticket = gt
	}
	return ticket, nil
}

func (s *Store) nsDeleteEnq(name, key []byte, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.nsEntryLocked(name, true)
	if err != nil {
		return 0, err
	}
	t0 := tr.now()
	if err := e.Delete(key); err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(e); err != nil {
		return 0, err
	}
	return s.wal.Enqueue(wire.OpDelete, key, tr)
}

func (s *Store) nsInsertBatchEnq(name []byte, keys [][]byte, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.nsEntryLocked(name, true)
	if err != nil {
		return 0, err
	}
	t0 := tr.now()
	if err := e.InsertBatch(keys, s.opts.BatchWorkers); err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(e); err != nil {
		return 0, err
	}
	ticket, err := s.wal.EnqueueBatch(wire.OpInsert, keys, tr)
	if err != nil {
		return 0, err
	}
	if gt := s.nsGrowEnqLocked(e); gt != 0 {
		ticket = gt
	}
	return ticket, nil
}

func (s *Store) nsDeleteBatchEnq(name []byte, keys [][]byte, tr *reqTrace) ([]bool, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.nsEntryLocked(name, true)
	if err != nil {
		return nil, 0, err
	}
	t0 := tr.now()
	ok, _ := e.DeleteBatch(keys, s.opts.BatchWorkers)
	tr.addFilter(t0)
	if err := s.selectLocked(e); err != nil {
		return nil, 0, err
	}
	ticket, err := s.wal.EnqueueBatchFlags(wire.OpDelete, keys, ok, tr)
	return ok, ticket, err
}

func (s *Store) nsInsertTTLEnq(name, key []byte, ttl time.Duration, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.nsWindowEntryLocked(name)
	if err != nil {
		return 0, err
	}
	w := e.Window()
	r := w.Generations()
	if ttl >= 0 {
		r = w.RotationsFor(ttl)
	}
	t0 := tr.now()
	if err := w.InsertRotations(key, r); err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(e); err != nil {
		return 0, err
	}
	return s.wal.EnqueueTTL(walOpInsertTTL, uint32(r), key, tr)
}

func (s *Store) nsInsertTTLBatchEnq(name []byte, keys [][]byte, ttl time.Duration, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.nsWindowEntryLocked(name)
	if err != nil {
		return 0, err
	}
	w := e.Window()
	r := w.Generations()
	if ttl >= 0 {
		r = w.RotationsFor(ttl)
	}
	t0 := tr.now()
	if err := w.InsertRotationsBatch(keys, r); err != nil {
		return 0, err
	}
	tr.addFilter(t0)
	if err := s.selectLocked(e); err != nil {
		return 0, err
	}
	return s.wal.EnqueueTTLBatch(walOpInsertTTL, uint32(r), keys, tr)
}

// --- namespaced reads -----------------------------------------------------
//
// Reads are lock-free while the namespace is resident. An evicted
// namespace answers ok=false from the entry, and the read recovers it
// under s.mu and retries there — answering from nothing would be a false
// negative, which the filter contract forbids. The under-lock retry
// cannot race another eviction: evictions run under s.mu too.

// nsReadEntry recovers e for a read that found it evicted. It re-checks
// the registry under the lock: a concurrently dropped (or
// dropped-and-recreated) namespace reads as absent.
func (s *Store) nsReadEntry(name []byte, e *ns.Entry) (*ns.Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reg.Lookup(name) != e {
		return nil, nil
	}
	if err := s.nsResidentLocked(e); err != nil {
		return nil, err
	}
	e.Touch(s.reg.Now())
	return e, nil
}

// NsContains answers membership in a named namespace. An unknown
// namespace is empty: every key answers false.
func (s *Store) NsContains(name, key []byte) (bool, error) {
	e := s.reg.Lookup(name)
	if e == nil {
		return false, nil
	}
	if v, ok := e.Contains(key); ok {
		e.Touch(s.reg.Now())
		return v, nil
	}
	e, err := s.nsReadEntry(name, e)
	if e == nil || err != nil {
		return false, err
	}
	v, _ := e.Contains(key)
	return v, nil
}

// NsContainsBatch answers membership for a batch, order-preserving.
func (s *Store) NsContainsBatch(name []byte, keys [][]byte) ([]bool, error) {
	e := s.reg.Lookup(name)
	if e == nil {
		return make([]bool, len(keys)), nil
	}
	if vs, ok := e.ContainsBatch(keys, s.opts.BatchWorkers); ok {
		e.Touch(s.reg.Now())
		return vs, nil
	}
	e, err := s.nsReadEntry(name, e)
	if err != nil {
		return nil, err
	}
	if e == nil {
		return make([]bool, len(keys)), nil
	}
	vs, _ := e.ContainsBatch(keys, s.opts.BatchWorkers)
	return vs, nil
}

// NsEstimateCount returns an upper bound on key's multiplicity in a
// named namespace (0 for an unknown namespace).
func (s *Store) NsEstimateCount(name, key []byte) (int, error) {
	e := s.reg.Lookup(name)
	if e == nil {
		return 0, nil
	}
	if n, ok := e.EstimateCount(key); ok {
		e.Touch(s.reg.Now())
		return n, nil
	}
	e, err := s.nsReadEntry(name, e)
	if e == nil || err != nil {
		return 0, err
	}
	n, _ := e.EstimateCount(key)
	return n, nil
}

// NsLen returns a namespace's element count without forcing recovery:
// an evicted namespace reports its count at last marshal, which is
// exact (evicted state cannot mutate).
func (s *Store) NsLen(name []byte) int {
	e := s.reg.Lookup(name)
	if e == nil {
		return 0
	}
	return e.Len()
}

// NsMarshal returns a consistent point-in-time encoding of one
// namespace's state (the namespaced DUMP). Identical bytes on primary
// and replica at the same replication position.
func (s *Store) NsMarshal(name []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.nsEntryLocked(name, false)
	if err != nil {
		return nil, err
	}
	if e == nil {
		return nil, fmt.Errorf("server: unknown namespace %q", name)
	}
	return e.Marshal()
}

// NsWindowStats reports the generation ring of a windowed namespace.
func (s *Store) NsWindowStats(name []byte) (window.Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.nsEntryLocked(name, false)
	if err != nil {
		return window.Stats{}, err
	}
	if e == nil {
		return window.Stats{}, fmt.Errorf("server: unknown namespace %q", name)
	}
	if !e.Windowed() {
		return window.Stats{}, errNotWindowed
	}
	return e.Window().Stats(), nil
}

// --- namespace admin ops --------------------------------------------------

// nsCreateEnq creates a namespace from wire-level overrides resolved
// against the daemon defaults. Re-creating an existing namespace is
// idempotent iff the resolved configurations match.
func (s *Store) nsCreateEnq(name []byte, cfgw wire.NsConfig, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cfg, err := s.reg.Resolve(ns.ConfigFromWire(cfgw))
	if err != nil {
		return 0, err
	}
	if e := s.reg.Lookup(name); e != nil {
		if e.Config() != cfg {
			return 0, fmt.Errorf("server: namespace %q exists with a different configuration", name)
		}
		return 0, nil
	}
	_, ticket, err := s.nsCreateLocked(string(name), cfg, tr)
	return ticket, err
}

// nsDropEnq removes a namespace, its evict file, and logs NS_DROP. A
// drop implicitly resets the WAL selection context (both here and at
// apply time), so no dangling SELECT can target the dropped name.
// Dropping an unknown name succeeds without logging anything — the
// no-op mirror of applyNsDrop, so a cluster-wide drop that partially
// failed can be retried until every node agrees.
func (s *Store) nsDropEnq(name []byte, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.reg.Drop(name)
	if e == nil {
		return 0, nil
	}
	if s.walCtx == e {
		s.walCtx = nil
	}
	return s.wal.Enqueue(walOpNsDrop, e.WALName(), tr)
}

// NsList returns all namespace names, sorted.
func (s *Store) NsList() []string { return s.reg.Names() }

// NsStats summarizes one named namespace.
func (s *Store) NsStats(name []byte) (wire.NsStats, error) {
	e := s.reg.Lookup(name)
	if e == nil {
		return wire.NsStats{}, fmt.Errorf("server: unknown namespace %q", name)
	}
	return e.Stats(), nil
}

// DefaultNsStats summarizes the default (anonymous) state in NS_STATS
// shape: always resident, never evicted.
func (s *Store) DefaultNsStats() wire.NsStats {
	st := wire.NsStats{Resident: true}
	if w := s.w(); w != nil {
		st.Windowed = true
		st.Items = uint64(w.Len())
		st.MemoryBits = uint64(w.MemoryBits())
	} else if el := s.elf(); el != nil {
		st.Items = uint64(el.Len())
		st.MemoryBits = uint64(el.MemoryBits())
	} else {
		f := s.f()
		st.Items = uint64(f.Len())
		st.MemoryBits = uint64(f.MemoryBits())
	}
	return st
}

// --- WAL apply (recovery + replication) -----------------------------------

// applyNsCreate replays an NS_CREATE record. An existing namespace with
// the identical resolved configuration is tolerated — a replica that
// rejected a frame after applying part of it sees the same record again
// on resend — but a configuration mismatch is a hard error: the durable
// history disagrees with memory.
func (s *Store) applyNsCreate(body []byte) error {
	name, rest, err := decodeNsName(body)
	if err != nil {
		return err
	}
	cfgw, rest, err := wire.DecodeNsConfig(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("server: trailing bytes in NS_CREATE record")
	}
	cfg := ns.ConfigFromWire(cfgw)
	if e := s.reg.Lookup(name); e != nil {
		if e.Config() != cfg {
			return fmt.Errorf("server: NS_CREATE replay: namespace %q exists with a different configuration", name)
		}
		return nil
	}
	e, err := s.reg.Create(string(name), cfg)
	if err != nil {
		return err
	}
	return s.reg.EnsureQuota(e)
}

// applyNsDrop replays an NS_DROP record. Dropping an unknown namespace
// is a no-op (resend idempotency).
func (s *Store) applyNsDrop(body []byte) error {
	name, rest, err := decodeNsName(body)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("server: trailing bytes in NS_DROP record")
	}
	e := s.reg.Drop(name)
	if e != nil && s.walCtx == e {
		s.walCtx = nil
	}
	return nil
}

// applyNsSelect replays an NS_SELECT record: subsequent data records
// target the named namespace (recovered if evicted). A select of an
// unknown namespace means the WAL stream is inconsistent — fail loudly
// rather than misdirect counters.
func (s *Store) applyNsSelect(body []byte) error {
	name, rest, err := decodeNsName(body)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return errors.New("server: trailing bytes in NS_SELECT record")
	}
	if len(name) == 0 {
		s.walCtx = nil
		return nil
	}
	e := s.reg.Lookup(name)
	if e == nil {
		return fmt.Errorf("server: NS_SELECT of unknown namespace %q", name)
	}
	if err := s.nsResidentLocked(e); err != nil {
		return err
	}
	e.Touch(s.reg.Now())
	s.walCtx = e
	return nil
}

// flushNS is batchApplier.flush for records targeting a named
// namespace. The target may have been evicted mid-stream by quota
// pressure from another namespace's create — recover it first.
func (a *batchApplier) flushNS(e *ns.Entry) {
	if err := a.s.nsResidentLocked(e); err != nil {
		a.s.opts.Log.Error("ns batch apply: recover failed", "context", a.context, "ns", e.Name(), "error", err)
		a.keys = a.keys[:0]
		return
	}
	var err error
	switch a.op {
	case wire.OpInsert:
		err = e.InsertBatch(a.keys, a.s.opts.BatchWorkers)
	case wire.OpDelete:
		_, err = e.DeleteBatch(a.keys, a.s.opts.BatchWorkers)
	case walOpInsertTTL:
		err = e.Window().InsertRotationsBatch(a.keys, a.rot)
	}
	if err != nil {
		a.s.opts.Log.Error("ns batch apply failed", "context", a.context, "ns", e.Name(), "error", err)
	}
	a.keys = a.keys[:0]
}

// --- snapshot container ---------------------------------------------------
//
// When any namespace exists, snapshots (and DUMP/bootstrap payloads)
// switch from the bare filter encoding to a container that carries the
// default state plus every namespace — resolved config, residency,
// items, and marshaled state:
//
//	[u32 magic][u32 version=2]
//	[u64 len][default state]
//	[u32 count] then per namespace, sorted by name:
//	  [u8 len][name][NsConfigSize-byte config][u8 resident][u64 items][u64 len][state]
//
// Version 2 widened the per-namespace config by the flags byte
// (NsConfigSize 34 -> 35); version-1 containers are refused with an
// explicit version error rather than misparsed.
//
// The container is self-contained: an evicted namespace's state is
// embedded by reading its evict file at snapshot time (safe — evicted
// state cannot mutate). On load, non-resident entries have their local
// evict file REWRITTEN from the embedded bytes: WAL-tail replay assumes
// every namespace starts in its snapshot state, and a local file
// written after this snapshot may already include tail mutations —
// replaying the tail on top would double-apply on a counting filter.
const (
	nsContainerMagic   = 0x4D50534E // "NSPM" little-endian
	nsContainerVersion = 2
)

// nsSnapEntry is one decoded container entry.
type nsSnapEntry struct {
	name     string
	cfg      ns.Config
	resident bool
	items    uint64
	data     []byte
}

// isNsContainer reports whether snapshot payload data is a namespace
// container.
func isNsContainer(data []byte) bool {
	return len(data) >= 8 && binary.LittleEndian.Uint32(data[:4]) == nsContainerMagic
}

// encodeNsContainerLocked wraps the already-marshaled default state and
// every namespace into a container. Caller holds s.mu.
func (s *Store) encodeNsContainerLocked(base []byte) ([]byte, error) {
	entries := s.reg.Entries()
	out := make([]byte, 0, 16+len(base)+4)
	out = binary.LittleEndian.AppendUint32(out, nsContainerMagic)
	out = binary.LittleEndian.AppendUint32(out, nsContainerVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(base)))
	out = append(out, base...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		var data []byte
		var err error
		if e.Resident() {
			data, err = e.Marshal()
		} else {
			data, err = readSnapshotData(nsSnapPath(s.opts.Dir, e.Name()))
		}
		if err != nil {
			return nil, fmt.Errorf("server: snapshot ns %q: %w", e.Name(), err)
		}
		out = append(out, e.WALName()...)
		out = wire.AppendNsConfig(out, e.Config().Wire())
		resident := byte(0)
		if e.Resident() {
			resident = 1
		}
		out = append(out, resident)
		out = binary.LittleEndian.AppendUint64(out, uint64(e.Len()))
		out = binary.LittleEndian.AppendUint64(out, uint64(len(data)))
		out = append(out, data...)
	}
	return out, nil
}

var errBadNsContainer = errors.New("server: corrupt namespace snapshot container")

// decodeNsContainer splits a container into the default state and its
// namespace entries.
func decodeNsContainer(blob []byte) (base []byte, entries []nsSnapEntry, err error) {
	if len(blob) < 16 {
		return nil, nil, errBadNsContainer
	}
	if v := binary.LittleEndian.Uint32(blob[4:8]); v != nsContainerVersion {
		return nil, nil, fmt.Errorf("server: namespace container version %d not supported", v)
	}
	baseLen := binary.LittleEndian.Uint64(blob[8:16])
	rest := blob[16:]
	if uint64(len(rest)) < baseLen+4 {
		return nil, nil, errBadNsContainer
	}
	base = rest[:baseLen]
	rest = rest[baseLen:]
	count := binary.LittleEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint64(count) > uint64(len(rest)) { // each entry is > 1 byte
		return nil, nil, errBadNsContainer
	}
	entries = make([]nsSnapEntry, 0, count)
	for i := uint32(0); i < count; i++ {
		name, r, err := decodeNsName(rest)
		if err != nil {
			return nil, nil, errBadNsContainer
		}
		cfgw, r, err := wire.DecodeNsConfig(r)
		if err != nil {
			return nil, nil, errBadNsContainer
		}
		if len(r) < 1+8+8 {
			return nil, nil, errBadNsContainer
		}
		resident := r[0] != 0
		items := binary.LittleEndian.Uint64(r[1:9])
		dataLen := binary.LittleEndian.Uint64(r[9:17])
		r = r[17:]
		if uint64(len(r)) < dataLen {
			return nil, nil, errBadNsContainer
		}
		entries = append(entries, nsSnapEntry{
			name:     string(name),
			cfg:      ns.ConfigFromWire(cfgw),
			resident: resident,
			items:    items,
			data:     r[:dataLen],
		})
		rest = r[dataLen:]
	}
	if len(rest) != 0 {
		return nil, nil, errBadNsContainer
	}
	return base, entries, nil
}

// verifyNsState confirms one namespace's marshaled state unmarshals.
func verifyNsState(data []byte) error {
	if window.IsWindowed(data) {
		_, err := window.UnmarshalFilter(data)
		return err
	}
	if elastic.IsElastic(data) {
		_, err := elastic.UnmarshalFilter(data)
		return err
	}
	_, err := mpcbf.UnmarshalSharded(data)
	return err
}

// --- background loops -----------------------------------------------------

// nsRotateLoop drives the window clock of every windowed namespace on a
// primary, sleeping until the earliest due rotation and re-evaluating
// whenever a windowed namespace is created or recovered. Each rotation
// advances one namespace's ring under s.mu and logs SELECT+ROTATE, so
// replicas and recovery advance the same ring at the same WAL position.
func (s *Store) nsRotateLoop() {
	defer s.bg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		e, at, ok := s.reg.NextRotation()
		if !ok {
			select {
			case <-s.reg.RotateKick():
				continue
			case <-s.stop:
				return
			}
		}
		if d := time.Duration(at - time.Now().UnixNano()); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-s.reg.RotateKick():
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
			case <-s.stop:
				timer.Stop()
				return
			}
			continue
		}
		s.nsRotate(e)
	}
}

// nsRotate rotates one namespace's ring and logs it. The entry may have
// been evicted or dropped since the deadline scan; both skip (a
// recovered namespace reschedules itself).
func (s *Store) nsRotate(e *ns.Entry) {
	t0 := time.Now()
	var ticket uint64
	s.mu.Lock()
	w := e.Window()
	if w == nil || s.reg.Lookup([]byte(e.Name())) != e {
		s.mu.Unlock()
		return
	}
	w.Rotate()
	err := s.selectLocked(e)
	if err == nil {
		ticket, err = s.wal.Enqueue(walOpWindowRotate, nil, nil)
	}
	e.SetNextRotate(time.Now().Add(w.RotateEvery()).UnixNano())
	s.mu.Unlock()
	if err == nil {
		err = s.wal.WaitDurable(ticket, nil)
	}
	if err != nil {
		s.opts.Log.Error("namespace rotation failed", "ns", e.Name(), "error", err)
	}
	s.rotHist.ObserveDuration(time.Since(t0))
}

// nsIdleLoop evicts namespaces untouched past the idle horizon. Runs on
// primaries and replicas alike — residency is local policy.
func (s *Store) nsIdleLoop() {
	defer s.bg.Done()
	period := s.opts.NsIdleAfter / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			cutoff := time.Now().Add(-s.opts.NsIdleAfter).UnixNano()
			s.mu.Lock()
			_, err := s.reg.EvictIdle(cutoff)
			s.mu.Unlock()
			if err != nil {
				s.opts.Log.Error("idle eviction failed", "error", err)
			}
		case <-s.stop:
			return
		}
	}
}
