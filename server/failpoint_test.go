package server

import (
	"errors"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	mpcbf "repro"
)

func failpointStoreOpts(dir string) StoreOptions {
	return StoreOptions{
		Dir:    dir,
		Filter: mpcbf.Options{MemoryBits: 1 << 20, ExpectedItems: 10_000},
		Shards: 2,
		Sync:   SyncAlways,
		Log:    discardLog(),
	}
}

// TestFailpointSlowFsync: an armed fsync delay shows up in mutation
// latency (the ack gate is the fsync) and disarming restores it, with
// no durability change — the slow writes are still acked-durable.
func TestFailpointSlowFsync(t *testing.T) {
	fp := WALFailpoints()
	defer fp.Reset()

	dir := t.TempDir()
	st, err := OpenStore(failpointStoreOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const delay = 20 * time.Millisecond
	fp.SetFsyncDelay(delay)
	t0 := time.Now()
	if err := st.Insert([]byte("slow-key")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < delay {
		t.Fatalf("insert under %v fsync delay returned in %v", delay, d)
	}

	fp.Reset()
	t0 = time.Now()
	if err := st.Insert([]byte("fast-key")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > delay {
		t.Fatalf("insert after reset still slow: %v", d)
	}
	if !st.Contains([]byte("slow-key")) || !st.Contains([]byte("fast-key")) {
		t.Fatal("keys written under the failpoint lost")
	}
}

// TestFailpointDiskFull: WAL writes fail with ENOSPC, mutations error,
// reads keep serving, the poisoning is sticky (clearing the failpoint
// does not resurrect the log — same as a real disk), and a restart with
// the failpoint clear recovers every previously acked write.
func TestFailpointDiskFull(t *testing.T) {
	fp := WALFailpoints()
	defer fp.Reset()

	dir := t.TempDir()
	st, err := OpenStore(failpointStoreOpts(dir))
	if err != nil {
		t.Fatal(err)
	}

	if err := st.Insert([]byte("acked-before")); err != nil {
		t.Fatal(err)
	}

	fp.SetDiskFull(true)
	err = st.Insert([]byte("doomed"))
	if err == nil {
		t.Fatal("insert succeeded on a full disk")
	}
	if !errors.Is(err, syscall.ENOSPC) && !strings.Contains(err.Error(), "no space") {
		t.Fatalf("disk-full insert error = %v, want ENOSPC", err)
	}

	// Reads are unaffected: the filter still serves.
	if !st.Contains([]byte("acked-before")) {
		t.Fatal("read path broken by disk-full failpoint")
	}

	// Sticky: space coming back does not un-poison a log whose durable
	// position is unknown; the process must restart.
	fp.SetDiskFull(false)
	if err := st.Insert([]byte("still-poisoned")); err == nil {
		t.Fatal("insert succeeded on a poisoned WAL without restart")
	}

	// Close errors (the final snapshot/drain hits the poisoned log);
	// discard it — the crash-recovery path is what the restart exercises.
	st.Close()

	st2, err := OpenStore(failpointStoreOpts(dir))
	if err != nil {
		t.Fatalf("reopen after disk-full: %v", err)
	}
	defer st2.Close()
	if !st2.Contains([]byte("acked-before")) {
		t.Fatal("acked pre-fault key lost across restart")
	}
	if err := st2.Insert([]byte("after-restart")); err != nil {
		t.Fatalf("insert after restart: %v", err)
	}
	if !st2.Contains([]byte("after-restart")) {
		t.Fatal("post-restart insert not visible")
	}
}

// TestChaosHandler drives the HTTP control surface: GET reflects state,
// POST sets and clears failpoints, bad input is rejected.
func TestChaosHandler(t *testing.T) {
	fp := WALFailpoints()
	defer fp.Reset()
	h := ChaosHandler()

	get := func() string {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/chaos", nil))
		if rec.Code != 200 {
			t.Fatalf("GET /chaos = %d", rec.Code)
		}
		return rec.Body.String()
	}
	post := func(query string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/chaos?"+query, nil))
		return rec.Code
	}

	if body := get(); !strings.Contains(body, `"fsync_delay":"0s"`) || !strings.Contains(body, `"disk_full":false`) {
		t.Fatalf("initial state = %s", body)
	}
	if code := post("fsync_delay=5ms&disk_full=true"); code != 200 {
		t.Fatalf("POST = %d", code)
	}
	if fp.FsyncDelay() != 5*time.Millisecond || !fp.DiskFull() {
		t.Fatalf("state after POST: delay=%v full=%v", fp.FsyncDelay(), fp.DiskFull())
	}
	if body := get(); !strings.Contains(body, `"fsync_delay":"5ms"`) || !strings.Contains(body, `"disk_full":true`) {
		t.Fatalf("state after POST = %s", body)
	}
	if code := post("fsync_delay=0s&disk_full=false"); code != 200 {
		t.Fatalf("clearing POST = %d", code)
	}
	if fp.FsyncDelay() != 0 || fp.DiskFull() {
		t.Fatal("failpoints not cleared")
	}
	if code := post("fsync_delay=banana"); code != 400 {
		t.Fatalf("bad duration accepted: %d", code)
	}
	if code := post("disk_full=maybe"); code != 400 {
		t.Fatalf("bad bool accepted: %d", code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("DELETE", "/chaos", nil))
	if rec.Code != 405 {
		t.Fatalf("DELETE = %d, want 405", rec.Code)
	}
}

// TestFailpointFileENOSPCShape: the injected error unwraps to ENOSPC so
// callers matching errno behave as with a real full disk.
func TestFailpointFileENOSPCShape(t *testing.T) {
	fp := WALFailpoints()
	defer fp.Reset()
	f, err := os.CreateTemp(t.TempDir(), "wal")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wf := wrapWALFile(f)
	fp.SetDiskFull(true)
	_, err = wf.Write([]byte("x"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	fp.SetDiskFull(false)
	if _, err := wf.Write([]byte("x")); err != nil {
		t.Fatalf("write after clear: %v", err)
	}
}
