package cluster

// End-to-end replication test against the real mpcbfd binary: one
// primary and two -replicate-from replicas, concurrent writers on the
// primary, a SIGKILL and restart of one replica mid-stream, then the
// acceptance bar — every acknowledged insert answerable on every node
// and byte-identical filter dumps across the fleet. A read-scaling
// smoke follows: a bounded connection pool per endpoint across the
// three nodes must beat the same pool against the primary alone by 2x.

import (
	"bytes"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/client"
)

func buildDaemonE2E(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "mpcbfd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/mpcbfd")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freePortE2E(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

type daemonE2E struct {
	cmd *exec.Cmd
	out *bytes.Buffer
	mu  sync.Mutex
}

func (d *daemonE2E) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.out.Write(p)
}

func (d *daemonE2E) Output() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.out.String()
}

// startNode launches one daemon; replicateFrom == "" makes it a
// primary.
func startNode(t *testing.T, bin, dir, addr, replicateFrom string) *daemonE2E {
	t.Helper()
	args := []string{
		"-addr", addr, "-http", "", "-dir", dir,
		"-mem", "2097152", "-n", "20000", "-shards", "4",
		"-fsync", "always", "-snapshot-interval", "0",
		"-drain-timeout", "5s",
	}
	if replicateFrom != "" {
		args = append(args, "-replicate-from", replicateFrom)
	}
	cmd := exec.Command(bin, args...)
	d := &daemonE2E{cmd: cmd, out: &bytes.Buffer{}}
	cmd.Stdout = d
	cmd.Stderr = d
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

func dialRetryE2E(t *testing.T, addr string) *client.Client {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c, err := client.Dial(addr, client.WithTimeout(5*time.Second))
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func e2eKey(writer, i int) []byte {
	return []byte(fmt.Sprintf("e2e-w%d-%05d", writer, i))
}

// readPool hammers addr with CONTAINS from conns connections for dur
// and returns the completed-request count.
func readPool(t *testing.T, addr []string, conns int, dur time.Duration) uint64 {
	t.Helper()
	var total atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, a := range addr {
		for g := 0; g < conns; g++ {
			c, err := client.Dial(a, client.WithTimeout(5*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(c *client.Client, g int) {
				defer wg.Done()
				defer c.Close()
				key := e2eKey(g%4, g)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := c.Contains(key); err != nil {
						return
					}
					total.Add(1)
				}
			}(c, g)
		}
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return total.Load()
}

func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test builds and runs the daemon binary")
	}
	bin := buildDaemonE2E(t)

	paddr := freePortE2E(t)
	r1addr := freePortE2E(t)
	r2addr := freePortE2E(t)
	pdir := filepath.Join(t.TempDir(), "primary")
	r1dir := filepath.Join(t.TempDir(), "replica1")
	r2dir := filepath.Join(t.TempDir(), "replica2")

	primary := startNode(t, bin, pdir, paddr, "")
	pc := dialRetryE2E(t, paddr)
	defer pc.Close()

	startNode(t, bin, r1dir, r1addr, paddr)
	r2 := startNode(t, bin, r2dir, r2addr, paddr)
	rc1 := dialRetryE2E(t, r1addr)
	defer rc1.Close()
	dialRetryE2E(t, r2addr).Close()

	// Concurrent writers: every nil-error return is an acknowledged,
	// fsync'd mutation the whole fleet must eventually serve.
	const writers, perWriter = 4, 1000
	var acked atomic.Uint64
	var wg sync.WaitGroup
	writerErr := make(chan error, writers)
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			c, err := client.Dial(paddr, client.WithTimeout(10*time.Second))
			if err != nil {
				writerErr <- err
				return
			}
			defer c.Close()
			for i := 0; i < perWriter; i++ {
				if err := c.Insert(e2eKey(wr, i)); err != nil {
					writerErr <- fmt.Errorf("writer %d key %d: %w", wr, i, err)
					return
				}
				acked.Add(1)
			}
		}(wr)
	}

	// Mid-stream, SIGKILL replica 2 and restart it on the same data
	// directory: recovery must resume the mirror from its durable
	// position with no gap and no re-application.
	for acked.Load() < writers*perWriter/4 {
		time.Sleep(5 * time.Millisecond)
	}
	if err := r2.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	r2.cmd.Wait()
	startNode(t, bin, r2dir, r2addr, paddr)
	rc2 := dialRetryE2E(t, r2addr)
	defer rc2.Close()

	wg.Wait()
	close(writerErr)
	for err := range writerErr {
		t.Fatal(err)
	}

	want, err := pc.Len()
	if err != nil {
		t.Fatal(err)
	}
	if want != writers*perWriter {
		t.Fatalf("primary Len = %d, want %d", want, writers*perWriter)
	}

	// Convergence: only inserts ran, so Len equality means every record
	// has been applied.
	deadline := time.Now().Add(30 * time.Second)
	for {
		n1, err1 := rc1.Len()
		n2, err2 := rc2.Len()
		if err1 == nil && err2 == nil && n1 == want && n2 == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged: %d / %d, want %d\nreplica2 output:\n%s",
				n1, n2, want, r2.Output())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Zero acked loss, per key, on both replicas.
	for wr := 0; wr < writers; wr++ {
		batch := make([][]byte, perWriter)
		for i := range batch {
			batch[i] = e2eKey(wr, i)
		}
		for which, rc := range []*client.Client{rc1, rc2} {
			flags, err := rc.ContainsBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			for i, ok := range flags {
				if !ok {
					t.Fatalf("replica %d lost acked key %s", which+1, batch[i])
				}
			}
		}
	}

	// Byte-identical state: the WAL is a total order and both replicas
	// mirrored it exactly.
	pdump, err := pc.Dump()
	if err != nil {
		t.Fatal(err)
	}
	for which, rc := range []*client.Client{rc1, rc2} {
		rdump, err := rc.Dump()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pdump, rdump) {
			t.Fatalf("replica %d dump differs from primary (%d vs %d bytes)", which+1, len(rdump), len(pdump))
		}
	}

	// Read-scaling smoke: a 4-connection pool per endpoint across the
	// three nodes vs the same pool against the primary alone. Loopback
	// round trips bound each pool, so the fleet should approach 3x; the
	// acceptance bar is 2x.
	single := readPool(t, []string{paddr}, 4, 700*time.Millisecond)
	fleet := readPool(t, []string{paddr, r1addr, r2addr}, 4, 700*time.Millisecond)
	t.Logf("CONTAINS throughput: single-node %d, fleet %d (%.2fx)",
		single, fleet, float64(fleet)/float64(single))
	// The scaling assertion needs the three daemons and the client to
	// actually run in parallel; on a 1-2 core box the phases just
	// time-slice one CPU and the ratio measures scheduler overhead.
	if runtime.NumCPU() >= 4 {
		if fleet < 2*single {
			t.Fatalf("fleet reads %d < 2x single-node %d", fleet, single)
		}
	} else {
		t.Logf("skipping 2x assertion: %d CPUs cannot parallelize the fleet", runtime.NumCPU())
	}

	_ = primary
}
