package server

// Multi-tenant end-to-end test against the real mpcbfd binary: 200
// namespaces with mixed geometries under a 64 MiB quota (so LRU
// eviction runs continuously), concurrent writers, SIGKILL mid-stream,
// restart, and a byte-mirror replica. The contract under test:
//
//   - every acknowledged (namespace, key) survives the kill — including
//     keys whose namespace was evicted to disk and whose WAL records
//     straddle the evict/recover boundary (the WAL never rotates here:
//     -snapshot-interval 0);
//   - evicted namespaces recover transparently on touch with zero loss;
//   - a replica attached after the crash converges to per-namespace
//     DUMPs byte-identical to the primary's.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/e2e"
	"repro/server/wire"
)

const (
	nsE2ECount   = 200
	nsE2EWriters = 8
	nsE2EBatch   = 40
)

func nsE2EName(i int) string { return fmt.Sprintf("t%03d", i) }

// nsE2EDial is e2e.DialRetry with the response frame cap raised past
// the largest namespace dump (the 1 MiB-geometry tenants marshal to
// just over the client's 1 MiB default) and a timeout generous enough
// for dumps that first recover an evicted namespace on a loaded daemon.
func nsE2EDial(t *testing.T, addr string) *client.Client {
	t.Helper()
	return e2e.DialRetry(t, addr, client.WithTimeout(15*time.Second), client.WithMaxFrame(8<<20))
}

func nsE2EKeys(ns, batch int) [][]byte {
	keys := make([][]byte, nsE2EBatch)
	for k := range keys {
		keys[k] = []byte(fmt.Sprintf("ns%03d-b%03d-k%02d", ns, batch, k))
	}
	return keys
}

func TestIntegrationNamespaces(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the daemon binary")
	}
	bin := e2e.BuildDaemon(t)
	dir := t.TempDir()
	addr, httpAddr := e2e.FreePort(t), e2e.FreePort(t)
	cfg := e2e.DaemonConfig{Bin: bin, Dir: dir, Addr: addr, HTTPAddr: httpAddr,
		Extra: []string{"-ns-quota", "67108864"}} // 64 MiB

	// Phase 1: create 200 namespaces with mixed geometries. The summed
	// footprint (≈116 MiB) exceeds the quota, so roughly half are
	// resident at any moment and every workload phase exercises
	// eviction and recover-on-touch.
	d1 := e2e.StartDaemon(t, cfg)
	admin := e2e.DialRetry(t, addr)
	for i := 0; i < nsE2ECount; i++ {
		cfg := wire.NsConfig{MemoryBits: 1 << (21 + uint(i%3)), ExpectedItems: 10000}
		if err := admin.CreateNamespace(nsE2EName(i), cfg); err != nil {
			t.Fatalf("create %s: %v", nsE2EName(i), err)
		}
	}
	admin.Close()

	// Phase 2: concurrent writers, one connection each, every writer
	// cycling its own 25 namespaces in batch rounds. Only batches whose
	// InsertBatch returned nil are recorded as acked.
	var mu sync.Mutex
	acked := map[[2]int]bool{} // (namespace index, batch number)
	var perWriter [nsE2EWriters]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nsE2EWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.WithTimeout(10*time.Second))
			if err != nil {
				t.Errorf("writer %d dial: %v", w, err)
				return
			}
			defer cl.Close()
			per := nsE2ECount / nsE2EWriters
			for batch := 0; ; batch++ {
				for n := w * per; n < (w+1)*per; n++ {
					if err := cl.Namespace(nsE2EName(n)).InsertBatch(nsE2EKeys(n, batch)); err != nil {
						return // the kill landed; everything recorded so far was acked
					}
					mu.Lock()
					acked[[2]int{n, batch}] = true
					mu.Unlock()
					perWriter[w].Add(1)
				}
			}
		}(w)
	}

	// SIGKILL once every writer has finished at least two full rounds:
	// by then each namespace holds ≥ 2 acked batches and the quota has
	// forced evictions mid-stream.
	deadline := time.Now().Add(60 * time.Second)
	for {
		ready := true
		for w := range perWriter {
			if perWriter[w].Load() < 2*int64(nsE2ECount/nsE2EWriters) {
				ready = false
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writers too slow before kill\n%s", d1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.Kill()
	wg.Wait()
	mu.Lock()
	total := len(acked)
	mu.Unlock()
	t.Logf("killed daemon with %d acked batches (%d keys)", total, total*nsE2EBatch)

	// Phase 3: restart and require every acked (namespace, key) back.
	e2e.StartDaemon(t, cfg)
	c2 := nsE2EDial(t, addr)
	defer c2.Close()

	perNS := make([][][]byte, nsE2ECount)
	mu.Lock()
	for nb := range acked {
		perNS[nb[0]] = append(perNS[nb[0]], nsE2EKeys(nb[0], nb[1])...)
	}
	mu.Unlock()
	for n, keys := range perNS {
		if len(keys) == 0 {
			t.Fatalf("namespace %s has no acked batches; the kill landed too early", nsE2EName(n))
		}
		flags, err := c2.Namespace(nsE2EName(n)).ContainsBatch(keys)
		if err != nil {
			t.Fatalf("%s contains batch: %v", nsE2EName(n), err)
		}
		for j, ok := range flags {
			if !ok {
				t.Fatalf("acked key %q lost from %s after crash", keys[j], nsE2EName(n))
			}
		}
	}
	names, err := c2.ListNamespaces()
	if err != nil || len(names) != nsE2ECount {
		t.Fatalf("recovered namespace count = %d, %v; want %d", len(names), err, nsE2ECount)
	}

	// The quota must have evicted namespaces during the workload; the
	// recovered daemon re-runs the same pressure during replay, so the
	// post-restart counters must show evictions AND recoveries.
	metrics := httpGet(t, "http://"+httpAddr+"/metrics")
	if sumPromFamily(t, metrics, "mpcbfd_ns_evictions_total{") == 0 {
		t.Error("no namespace evictions under a 64 MiB quota for ~116 MiB of filters")
	}
	if sumPromFamily(t, metrics, "mpcbfd_ns_recoveries_total{") == 0 {
		t.Error("no namespace recoveries despite quota churn")
	}
	if !strings.Contains(metrics, fmt.Sprintf("mpcbfd_ns_count %d", nsE2ECount)) {
		t.Errorf("/metrics missing mpcbfd_ns_count %d", nsE2ECount)
	}

	// Phase 4: attach a byte-mirror replica and require per-namespace
	// DUMPs to converge to byte equality, polled with a deadline.
	raddr, rhttp := e2e.FreePort(t), e2e.FreePort(t)
	e2e.StartDaemon(t, e2e.DaemonConfig{Bin: bin, Dir: t.TempDir(), Addr: raddr, HTTPAddr: rhttp,
		ReplicateFrom: addr, Extra: cfg.Extra})
	rc := nsE2EDial(t, raddr)
	defer func() { rc.Close() }()

	// A dump of an evicted namespace recovers it first, and while the
	// replica is still swallowing the ~116 MiB bootstrap its store lock
	// is busy — individual dumps can time out. Re-dial on any error and
	// keep polling until the deadline.
	waitReplicaSync := time.Now().Add(120 * time.Second)
	for n := 0; n < nsE2ECount; n++ {
		name := nsE2EName(n)
		want, err := c2.Namespace(name).Dump()
		if err != nil {
			t.Fatalf("primary dump %s: %v", name, err)
		}
		for {
			got, err := rc.Namespace(name).Dump()
			if err == nil && string(got) == string(want) {
				break
			}
			if time.Now().After(waitReplicaSync) {
				t.Fatalf("replica dump for %s never converged (err=%v, %d vs %d bytes)",
					name, err, len(got), len(want))
			}
			if err != nil {
				rc.Close()
				time.Sleep(200 * time.Millisecond)
				rc = nsE2EDial(t, raddr)
				continue
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

// sumPromFamily sums the values of every sample whose series starts
// with prefix (family name including the opening label brace).
func sumPromFamily(t *testing.T, metrics, prefix string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
	}
	return sum
}
