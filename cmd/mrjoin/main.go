// Command mrjoin runs the Section V experiment standalone: a reduce-side
// join over synthetic NBER-shape patent/citation tables on the in-process
// MapReduce engine, with a selectable map-side filter.
//
// Usage:
//
//	mrjoin -filter mpcbf1 -scale 0.02
//	mrjoin -filter none -patents 5000 -citations 200000
package main

import (
	"flag"
	"fmt"
	"os"

	mpcbf "repro"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
)

func main() {
	var (
		filterKind = flag.String("filter", "mpcbf1", "map-side filter: none | cbf | mpcbf1 | mpcbf2")
		scale      = flag.Float64("scale", 0.02, "scale of the paper's table sizes (71,661 x 16,522,438)")
		patents    = flag.Int("patents", 0, "patent rows (overrides -scale)")
		citations  = flag.Int("citations", 0, "citation rows (overrides -scale)")
		bitsPerKey = flag.Int("bits", 24, "filter bits per patent key")
		seed       = flag.Uint64("seed", 1, "workload seed")
		mapTasks   = flag.Int("maps", 8, "map tasks")
		reducers   = flag.Int("reducers", 4, "reduce tasks")
	)
	flag.Parse()

	cfg := dataset.DefaultJoinConfig(*scale, *seed)
	if *patents > 0 {
		cfg.Patents = *patents
	}
	if *citations > 0 {
		cfg.Citations = *citations
	}
	ds, err := dataset.NewJoinDataset(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tables: %d patents x %d citations (%d matching)\n",
		len(ds.Patents), len(ds.Citations), ds.Matching)

	left := make([]mapreduce.KV, len(ds.Patents))
	keys := make([][]byte, len(ds.Patents))
	for i, p := range ds.Patents {
		keys[i] = dataset.PatentKey(p.ID)
		left[i] = mapreduce.KV{Key: string(keys[i]), Value: fmt.Sprintf("%d,%s", p.Year, p.Country)}
	}
	right := make([]mapreduce.KV, len(ds.Citations))
	for i, c := range ds.Citations {
		right[i] = mapreduce.KV{Key: string(dataset.PatentKey(c.Cited)), Value: fmt.Sprintf("%d", c.Citing)}
	}

	var filter mapreduce.MembershipFilter
	if *filterKind != "none" {
		opts := mpcbf.Options{
			MemoryBits:    len(ds.Patents) * *bitsPerKey,
			ExpectedItems: len(ds.Patents),
			Seed:          uint32(*seed),
		}
		if opts.MemoryBits < 256 {
			opts.MemoryBits = 256
		}
		var f interface {
			Insert([]byte) error
			Contains([]byte) bool
		}
		switch *filterKind {
		case "cbf":
			c, err := mpcbf.NewCBF(opts)
			if err != nil {
				fatal(err)
			}
			f = c
		case "mpcbf1":
			m, err := mpcbf.New(opts)
			if err != nil {
				fatal(err)
			}
			f = m
		case "mpcbf2":
			opts.MemoryAccesses = 2
			m, err := mpcbf.New(opts)
			if err != nil {
				fatal(err)
			}
			f = m
		default:
			fatal(fmt.Errorf("unknown filter %q", *filterKind))
		}
		for _, k := range keys {
			if err := f.Insert(k); err != nil {
				fatal(err)
			}
		}
		filter = containsFunc(f.Contains)
	}

	res, stats, err := mapreduce.ReduceSideJoin(left, right, filter, *mapTasks, *reducers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("filter=%s\n", *filterKind)
	fmt.Printf("map outputs:        %d\n", stats.MapOutputRecords)
	fmt.Printf("right rows dropped: %d\n", stats.RightDropped)
	fmt.Printf("filter false pos:   %d\n", stats.FilterFalsePositives)
	fmt.Printf("shuffle bytes:      %d\n", stats.ShuffleBytes)
	fmt.Printf("joined rows:        %d\n", stats.JoinedRows)
	fmt.Printf("elapsed:            %v\n", stats.Elapsed)
	fmt.Printf("counters:           %s\n", mapreduce.FormatCounters(res.Counters))
}

type containsFunc func([]byte) bool

func (f containsFunc) Contains(key []byte) bool { return f(key) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mrjoin: %v\n", err)
	os.Exit(1)
}
