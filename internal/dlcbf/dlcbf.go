// Package dlcbf implements the d-left Counting Bloom Filter of Bonomi,
// Mitzenmacher, Panigrahy, Singh and Varghese (ESA 2006), the
// fingerprint-based CBF alternative the paper's related-work section
// compares against: d-left hashing places a small remainder of each key
// into the least-loaded of d candidate buckets, offering CBF functionality
// in roughly half the memory at equal false positive rate.
//
// Faithful to the ESA construction, a key is first hashed to one
// (bucket-index + remainder)-sized value v, and its candidate location in
// subtable i is an invertible permutation P_i(v) split into a bucket index
// (high bits) and a stored 12-bit remainder (low bits). Because the P_i
// are bijections, two keys that collide in one subtable collide in all of
// them — which is what makes deletions unambiguous.
//
// Cells are packed 16 bits: a 12-bit remainder and a 4-bit saturating
// multiplicity counter (counter zero = empty cell).
package dlcbf

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/hashing"
	"repro/internal/metrics"
)

const (
	fpBits       = 12
	fpMask       = 1<<fpBits - 1
	counterBits  = 4
	counterMax   = 1<<counterBits - 1
	cellBits     = 16
	maxSubtables = 8
)

// odd multipliers for the per-subtable permutations (any odd constant is
// invertible modulo a power of two).
var permMul = [maxSubtables]uint64{
	0x9E3779B97F4A7C15, 0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9,
	0x27D4EB2F165667C5, 0x85EBCA77C2B2AE63, 0xFF51AFD7ED558CCD,
	0xC4CEB9FE1A85EC53, 0xBF58476D1CE4E5B9,
}

// ErrNotFound is returned by Delete when the key's remainder is absent
// from all candidate buckets.
var ErrNotFound = errors.New("dlcbf: delete of absent key")

// ErrBucketOverflow is returned by Insert when every candidate bucket is
// full and the remainder is not already present.
var ErrBucketOverflow = errors.New("dlcbf: all candidate buckets full")

// Filter is a d-left counting Bloom filter.
type Filter struct {
	cells      []uint16 // d*b*c cells, subtable-major
	d          int      // subtables
	b          int      // buckets per subtable (power of two)
	c          int      // cells per bucket
	bBits      int      // log2(b)
	domainMask uint64   // mask of the (bBits + fpBits)-bit hash domain
	hasher     hashing.Hasher
	count      int
	occupied   int
}

// New returns a dlCBF with d subtables of b buckets of c cells. b must be
// a power of two (the permutation domain requirement) and d at most 8.
func New(d, b, c int, seed uint32) (*Filter, error) {
	if d <= 0 || b <= 0 || c <= 0 {
		return nil, fmt.Errorf("dlcbf: dimensions must be positive (d=%d, b=%d, c=%d)", d, b, c)
	}
	if d > maxSubtables {
		return nil, fmt.Errorf("dlcbf: at most %d subtables (d=%d)", maxSubtables, d)
	}
	if b&(b-1) != 0 {
		return nil, fmt.Errorf("dlcbf: buckets per subtable must be a power of two (b=%d)", b)
	}
	bBits := bits.TrailingZeros(uint(b))
	return &Filter{
		cells:      make([]uint16, d*b*c),
		d:          d,
		b:          b,
		c:          c,
		bBits:      bBits,
		domainMask: 1<<(uint(bBits)+fpBits) - 1,
		hasher:     hashing.NewHasher(seed),
	}, nil
}

// FromMemory returns a dlCBF occupying at most memoryBits bits, using the
// construction of the dlCBF paper: 4 subtables, 8 cells per bucket, and
// the largest power-of-two bucket count that fits.
func FromMemory(memoryBits int, seed uint32) (*Filter, error) {
	const d, c = 4, 8
	b := memoryBits / (cellBits * d * c)
	if b < 1 {
		b = 1
	}
	// Round down to a power of two.
	for b&(b-1) != 0 {
		b &= b - 1
	}
	return New(d, b, c, seed)
}

// D returns the number of subtables.
func (f *Filter) D() int { return f.d }

// B returns the buckets per subtable.
func (f *Filter) B() int { return f.b }

// C returns the cells per bucket.
func (f *Filter) C() int { return f.c }

// Count returns the current number of elements.
func (f *Filter) Count() int { return f.count }

// MemoryBits returns the table's footprint in bits.
func (f *Filter) MemoryBits() int { return len(f.cells) * cellBits }

// LoadFactor returns the fraction of occupied cells.
func (f *Filter) LoadFactor() float64 {
	return float64(f.occupied) / float64(len(f.cells))
}

// permute applies the subtable-i bijection to v within the hash domain:
// multiply by an odd constant (invertible mod 2^B), then a xorshift mix
// folded back into the domain. Both steps are bijections of the domain.
func (f *Filter) permute(v uint64, i int) uint64 {
	width := uint(f.bBits) + fpBits
	v = (v * permMul[i]) & f.domainMask
	v ^= v >> (width/2 + 1)
	v = (v * permMul[(i+1)%maxSubtables]) & f.domainMask
	return v
}

// locate derives the candidate (bucket, remainder) pair per subtable.
func (f *Filter) locate(key []byte) (remainders []uint16, buckets []int) {
	s := f.hasher.NewIndexStream(key)
	v := s.Aux(0) & f.domainMask
	remainders = make([]uint16, f.d)
	buckets = make([]int, f.d)
	for i := 0; i < f.d; i++ {
		p := f.permute(v, i)
		buckets[i] = int(p >> fpBits)
		remainders[i] = uint16(p & fpMask)
	}
	return remainders, buckets
}

func (f *Filter) bucket(sub, idx int) []uint16 {
	start := (sub*f.b + idx) * f.c
	return f.cells[start : start+f.c]
}

func cellFP(cell uint16) uint16 { return cell & fpMask }
func cellCount(cell uint16) int { return int(cell >> fpBits) }
func makeCell(fp uint16, n int) uint16 {
	return fp&fpMask | uint16(n)<<fpBits
}

// Insert adds key: if its identity already sits in a candidate bucket the
// cell counter is incremented (saturating), otherwise the remainder is
// placed in the least-loaded candidate bucket, breaking ties to the left.
func (f *Filter) Insert(key []byte) error {
	_, err := f.InsertStats(key)
	return err
}

// InsertStats is Insert with cost accounting: d bucket reads.
func (f *Filter) InsertStats(key []byte) (metrics.OpStats, error) {
	rem, buckets := f.locate(key)
	st := f.opCost()
	// Pass 1: existing identity?
	for i, bi := range buckets {
		bucket := f.bucket(i, bi)
		for ci, cell := range bucket {
			if cellCount(cell) > 0 && cellFP(cell) == rem[i] {
				n := cellCount(cell)
				if n < counterMax {
					bucket[ci] = makeCell(rem[i], n+1)
				}
				f.count++
				return st, nil
			}
		}
	}
	// Pass 2: least-loaded bucket, leftmost on ties.
	bestSub, bestLoad := -1, f.c+1
	for i, bi := range buckets {
		load := 0
		for _, cell := range f.bucket(i, bi) {
			if cellCount(cell) > 0 {
				load++
			}
		}
		if load < bestLoad {
			bestSub, bestLoad = i, load
		}
	}
	if bestLoad >= f.c {
		return st, ErrBucketOverflow
	}
	bucket := f.bucket(bestSub, buckets[bestSub])
	for ci, cell := range bucket {
		if cellCount(cell) == 0 {
			bucket[ci] = makeCell(rem[bestSub], 1)
			f.occupied++
			f.count++
			return st, nil
		}
	}
	return st, ErrBucketOverflow // unreachable given bestLoad < c
}

// Delete removes key, decrementing (and on zero, freeing) its cell.
// Because the subtable locations are permutations of one hash value, the
// matching cell is unambiguous up to full-identity collisions.
func (f *Filter) Delete(key []byte) error {
	_, err := f.DeleteStats(key)
	return err
}

// DeleteStats is Delete with cost accounting.
func (f *Filter) DeleteStats(key []byte) (metrics.OpStats, error) {
	rem, buckets := f.locate(key)
	st := f.opCost()
	for i, bi := range buckets {
		bucket := f.bucket(i, bi)
		for ci, cell := range bucket {
			if cellCount(cell) > 0 && cellFP(cell) == rem[i] {
				n := cellCount(cell)
				switch {
				case n == counterMax:
					// sticky, like a saturated CBF counter
				case n == 1:
					bucket[ci] = 0
					f.occupied--
				default:
					bucket[ci] = makeCell(rem[i], n-1)
				}
				f.count--
				return st, nil
			}
		}
	}
	f.count--
	return st, ErrNotFound
}

// Contains reports whether key may be in the set.
func (f *Filter) Contains(key []byte) bool {
	rem, buckets := f.locate(key)
	for i, bi := range buckets {
		for _, cell := range f.bucket(i, bi) {
			if cellCount(cell) > 0 && cellFP(cell) == rem[i] {
				return true
			}
		}
	}
	return false
}

// Probe is Contains with cost accounting: a negative query must inspect
// all d candidate buckets; a positive one stops at the match.
func (f *Filter) Probe(key []byte) (bool, metrics.OpStats) {
	rem, buckets := f.locate(key)
	var st metrics.OpStats
	for i, bi := range buckets {
		st.MemAccesses++
		st.HashBits += f.bBits + fpBits
		for _, cell := range f.bucket(i, bi) {
			if cellCount(cell) > 0 && cellFP(cell) == rem[i] {
				return true, st
			}
		}
	}
	return false, st
}

// CountOf returns the multiplicity estimate of key (its cell counter).
func (f *Filter) CountOf(key []byte) uint8 {
	rem, buckets := f.locate(key)
	for i, bi := range buckets {
		for _, cell := range f.bucket(i, bi) {
			if cellCount(cell) > 0 && cellFP(cell) == rem[i] {
				return uint8(cellCount(cell))
			}
		}
	}
	return 0
}

func (f *Filter) opCost() metrics.OpStats {
	return metrics.OpStats{
		MemAccesses: f.d,
		HashBits:    f.d * (f.bBits + fpBits),
	}
}

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.cells {
		f.cells[i] = 0
	}
	f.count = 0
	f.occupied = 0
}
