package cluster

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/hashing"
	"repro/server/wire"
)

// Node names one shard of the cluster: a primary that owns writes for
// its key range and any number of read replicas.
type Node struct {
	Primary  string
	Replicas []string
}

// ClientConfig describes a static cluster topology plus per-connection
// tuning. Routing is rendezvous (highest-random-weight) hashing over
// the primaries: each key scores every node with
// XXHash64(key, seed(primary)) and goes to the highest score, so nodes
// can be listed in any order and removing one only remaps its own keys.
type ClientConfig struct {
	Nodes []Node
	// Timeout bounds each request round trip (default 10s).
	Timeout time.Duration
	// ReconnectAttempts / BackoffBase / BackoffMax configure the
	// per-connection auto-reconnect (defaults 3, 50ms, 2s). Reads retry
	// transparently; interrupted mutations surface
	// client.ErrMaybeApplied.
	ReconnectAttempts int
	BackoffBase       time.Duration
	BackoffMax        time.Duration
}

// Client routes single-key and batch operations across the cluster.
// Batches are split per node, fanned out concurrently, and re-stitched
// in input order. Reads prefer replicas (round-robin) and fail over to
// the primary; writes always go to the primary. Safe for concurrent
// use.
//
// Routing is governed by a ring descriptor (wire.Ring) the client
// adopts whenever it sees a newer epoch — via UpdateRing, PollRing, or
// StartRingPoll. The initial membership is the configured primaries at
// epoch 0. During a joint (dual-write) epoch a mutation goes to the
// key's owner under BOTH memberships and acks only when both succeed,
// reads OR both owners, and deletes stay on the pre-change side (the
// authoritative population until cutover) so a counting filter is never
// decremented for a key one side never held.
type Client struct {
	cfg ClientConfig

	mu     sync.Mutex       // guards nodes/byAddr growth on ring adoption
	nodes  []*node          // every node ever known, append-only
	byAddr map[string]*node // primary address -> node

	ring atomic.Pointer[ringView]
}

// ringView resolves a ring descriptor's address lists to live nodes.
// On a stable ring old and new hold the same membership.
type ringView struct {
	epoch uint64
	joint bool
	old   []*node // membership before the change
	new   []*node // membership after the change
}

// rendezvousSalt seeds the per-node score-stream hash; see NewClient.
const rendezvousSalt = 0x9e3779b97f4a7c15

// node is one shard's connection state: addresses, their rendezvous
// seed, and lazily dialed connections.
type node struct {
	cfg      *ClientConfig
	primary  string
	replicas []string
	seed     uint64

	mu       sync.Mutex
	primaryC *client.Client
	replicaC []*client.Client
	rr       uint64 // round-robin cursor over replicas

	// Routing counters, atomic so Snapshot never blocks requests.
	requests     atomic.Uint64 // operations routed to this node
	batches      atomic.Uint64 // sub-batches fanned out to this node
	batchKeys    atomic.Uint64 // keys across those sub-batches
	failovers    atomic.Uint64 // read attempts past the first endpoint
	maybeApplied atomic.Uint64 // mutations that returned ErrMaybeApplied
}

// noteMutation tallies an ErrMaybeApplied outcome for the node.
func (n *node) noteMutation(err error) {
	if errors.Is(err, client.ErrMaybeApplied) {
		n.maybeApplied.Add(1)
	}
}

// NewClient validates the topology. Connections are dialed lazily, so a
// node that is down at construction time only fails operations routed
// to it.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	c := &Client{cfg: cfg, byAddr: map[string]*node{}}
	for _, n := range cfg.Nodes {
		if n.Primary == "" {
			return nil, errors.New("cluster: node with empty primary address")
		}
		if c.byAddr[n.Primary] != nil {
			return nil, fmt.Errorf("cluster: duplicate primary %s", n.Primary)
		}
		nd := &node{
			cfg:      &c.cfg,
			primary:  n.Primary,
			replicas: append([]string(nil), n.Replicas...),
			// Seeding the score hash with a hash of the address makes the
			// per-node score streams independent; the key's placement is a
			// pure function of (key, set of primary addresses).
			seed: hashing.XXHash64([]byte(n.Primary), rendezvousSalt),
		}
		c.byAddr[n.Primary] = nd
		c.nodes = append(c.nodes, nd)
	}
	c.ring.Store(&ringView{old: c.nodes, new: c.nodes})
	return c, nil
}

// allNodes returns a stable copy of every node ever known — for
// Close/Snapshot, which must cover nodes a past ring introduced.
func (c *Client) allNodes() []*node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*node(nil), c.nodes...)
}

// serving returns the membership authoritative for single-homed
// operations: the stable membership, or the pre-change side during a
// joint epoch (the incoming side is still being backfilled).
func (c *Client) serving() []*node {
	v := c.ring.Load()
	if v.joint {
		return v.old
	}
	return v.new
}

// members returns the union of both ring sides — the set admin
// operations must reach so an incoming node is not skipped during the
// joint window.
func (c *Client) members() []*node {
	v := c.ring.Load()
	if !v.joint {
		return v.new
	}
	out := append([]*node(nil), v.old...)
	for _, n := range v.new {
		found := false
		for _, o := range v.old {
			if o == n {
				found = true
				break
			}
		}
		if !found {
			out = append(out, n)
		}
	}
	return out
}

// UpdateRing offers a ring descriptor; the client adopts it iff the
// epoch is newer than the view it routes by, and reports whether it
// did. Unseen addresses get fresh nodes (primaries only — a ring
// carries no replica topology); addresses present in both views keep
// their connections.
func (c *Client) UpdateRing(r wire.Ring) (bool, error) {
	if len(r.Old) == 0 || len(r.New) == 0 {
		return false, errors.New("cluster: ring with an empty membership side")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur := c.ring.Load(); r.Epoch <= cur.epoch {
		return false, nil
	}
	c.ring.Store(&ringView{
		epoch: r.Epoch,
		joint: r.Joint,
		old:   c.sideLocked(r.Old),
		new:   c.sideLocked(r.New),
	})
	return true, nil
}

// sideLocked resolves one ring side's addresses to nodes, creating
// nodes for addresses the client has never routed to. Callers hold
// c.mu.
func (c *Client) sideLocked(addrs []string) []*node {
	out := make([]*node, 0, len(addrs))
	for _, a := range addrs {
		n := c.byAddr[a]
		if n == nil {
			n = &node{cfg: &c.cfg, primary: a, seed: hashing.XXHash64([]byte(a), rendezvousSalt)}
			c.byAddr[a] = n
			c.nodes = append(c.nodes, n)
		}
		out = append(out, n)
	}
	return out
}

// Ring returns the descriptor the client currently routes by. Epoch 0
// is the configured bootstrap membership.
func (c *Client) Ring() wire.Ring {
	v := c.ring.Load()
	r := wire.Ring{Epoch: v.epoch, Joint: v.joint}
	for _, n := range v.old {
		r.Old = append(r.Old, n.primary)
	}
	for _, n := range v.new {
		r.New = append(r.New, n.primary)
	}
	return r
}

// PollRing asks every known node for its ring descriptor and adopts
// the newest. Unreachable nodes and nodes predating the RING ops are
// skipped, so polling a cluster that never resharded is a no-op.
// Reports whether a newer ring was adopted.
func (c *Client) PollRing() bool {
	var newest wire.Ring
	for _, n := range c.allNodes() {
		cl, err := n.primaryClient()
		if err != nil {
			continue
		}
		r, err := cl.RingGet()
		if err != nil {
			continue
		}
		if r.Epoch > newest.Epoch {
			newest = r
		}
	}
	if newest.Epoch == 0 {
		return false
	}
	adopted, _ := c.UpdateRing(newest)
	return adopted
}

// StartRingPoll polls the cluster's ring at interval on a background
// goroutine — the push path for live resharding. Call the returned
// function to stop; it is idempotent.
func (c *Client) StartRingPoll(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.PollRing()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Close closes every open connection.
func (c *Client) Close() error {
	var first error
	for _, n := range c.allNodes() {
		n.mu.Lock()
		if n.primaryC != nil {
			if err := n.primaryC.Close(); err != nil && first == nil {
				first = err
			}
		}
		for _, rc := range n.replicaC {
			if rc != nil {
				if err := rc.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		n.mu.Unlock()
	}
	return first
}

// routeIn returns the index within side of the node owning key under
// the namespace seed perturbation nsH (0 for the default namespace).
func routeIn(side []*node, nsH uint64, key []byte) int {
	best, bestScore := 0, uint64(0)
	for i, n := range side {
		if s := hashing.XXHash64(key, n.seed^nsH); i == 0 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// route returns the index of the node owning key within the serving
// membership.
func (c *Client) route(key []byte) int { return routeIn(c.serving(), 0, key) }

// owners returns the node(s) a write to key must reach: its owner
// under the serving membership and, during a joint epoch, its owner
// under the incoming membership when that differs.
func (c *Client) owners(key []byte) (primary, dual *node) {
	v := c.ring.Load()
	if !v.joint {
		side := v.new
		return side[routeIn(side, 0, key)], nil
	}
	o := v.old[routeIn(v.old, 0, key)]
	n := v.new[routeIn(v.new, 0, key)]
	if o == n {
		return o, nil
	}
	return o, n
}

// mutate runs one mutation against the node's primary, tallying the
// routing counters.
func (n *node) mutate(fn func(*client.Client) error) error {
	n.requests.Add(1)
	cl, err := n.primaryClient()
	if err != nil {
		return err
	}
	err = fn(cl)
	n.noteMutation(err)
	return err
}

func (n *node) dialOpts() []client.Option {
	return []client.Option{
		client.WithTimeout(n.cfg.Timeout),
		client.WithReconnect(n.cfg.ReconnectAttempts, n.cfg.BackoffBase, n.cfg.BackoffMax),
	}
}

// primaryClient returns the node's primary connection, dialing it on
// first use.
func (n *node) primaryClient() (*client.Client, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.primaryC == nil {
		cl, err := client.Dial(n.primary, n.dialOpts()...)
		if err != nil {
			return nil, fmt.Errorf("cluster: dial primary %s: %w", n.primary, err)
		}
		n.primaryC = cl
	}
	return n.primaryC, nil
}

// readClients returns the connections to try for a read, in order: each
// replica once starting from the round-robin cursor, then the primary.
// Unreachable replicas are skipped (their slot redials on a later
// read).
func (n *node) readClients() []*client.Client {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*client.Client, 0, len(n.replicas)+1)
	if len(n.replicas) > 0 {
		start := int(n.rr % uint64(len(n.replicas)))
		n.rr++
		for i := 0; i < len(n.replicas); i++ {
			slot := (start + i) % len(n.replicas)
			if n.replicaC == nil {
				n.replicaC = make([]*client.Client, len(n.replicas))
			}
			if n.replicaC[slot] == nil {
				cl, err := client.Dial(n.replicas[slot], n.dialOpts()...)
				if err != nil {
					continue
				}
				n.replicaC[slot] = cl
			}
			out = append(out, n.replicaC[slot])
		}
	}
	if n.primaryC == nil {
		if cl, err := client.Dial(n.primary, n.dialOpts()...); err == nil {
			n.primaryC = cl
		}
	}
	if n.primaryC != nil {
		out = append(out, n.primaryC)
	}
	return out
}

// read runs op against the node's read set, failing over on transport
// errors. Operation-level errors (ServerError) are authoritative and
// returned as-is.
func (n *node) read(op func(*client.Client) error) error {
	n.requests.Add(1)
	clients := n.readClients()
	if len(clients) == 0 {
		return fmt.Errorf("cluster: no reachable endpoint for node %s", n.primary)
	}
	var last error
	for i, cl := range clients {
		if i > 0 {
			n.failovers.Add(1)
		}
		err := op(cl)
		if err == nil {
			return nil
		}
		var se *client.ServerError
		if errors.As(err, &se) {
			return err
		}
		last = err
	}
	return last
}

// Insert adds key on its owning primary — on both owners, ack-both,
// during a joint epoch. A joint-window error means the insert may be
// present on one side only; as with client.ErrMaybeApplied, blindly
// retrying can double-count.
func (c *Client) Insert(key []byte) error {
	return c.insert(key, client.Trace{})
}

func (c *Client) insert(key []byte, tc client.Trace) error {
	o, dual := c.owners(key)
	if err := o.mutate(func(cl *client.Client) error { return cl.Traced(tc).Insert(key) }); err != nil {
		return err
	}
	if dual == nil {
		return nil
	}
	return dual.mutate(func(cl *client.Client) error { return cl.Traced(tc).Insert(key) })
}

// Delete removes key on its owning primary. During a joint epoch
// deletes stay on the pre-change owner: it is the authoritative
// population until cutover, and decrementing a counter the incoming
// side never incremented would corrupt it. A key dual-written during
// the window may leave a residual count on the incoming side — benign
// Bloom residue (possible false positive, never a false negative).
func (c *Client) Delete(key []byte) error {
	return c.delete(key, client.Trace{})
}

func (c *Client) delete(key []byte, tc client.Trace) error {
	side := c.serving()
	n := side[routeIn(side, 0, key)]
	return n.mutate(func(cl *client.Client) error { return cl.Traced(tc).Delete(key) })
}

// InsertTTL adds key on its owning primary with a time-to-live (on
// both owners during a joint epoch). The node must be serving a
// windowed store.
func (c *Client) InsertTTL(key []byte, ttl time.Duration) error {
	return c.insertTTL(key, ttl, client.Trace{})
}

func (c *Client) insertTTL(key []byte, ttl time.Duration, tc client.Trace) error {
	o, dual := c.owners(key)
	if err := o.mutate(func(cl *client.Client) error { return cl.Traced(tc).InsertTTL(key, ttl) }); err != nil {
		return err
	}
	if dual == nil {
		return nil
	}
	return dual.mutate(func(cl *client.Client) error { return cl.Traced(tc).InsertTTL(key, ttl) })
}

// Contains answers membership from the owning node's read set. During
// a joint epoch both owners are consulted and the answers ORed: a key
// written before the window lives only on the pre-change side, one
// written during it on both.
func (c *Client) Contains(key []byte) (bool, error) {
	return c.contains(key, client.Trace{})
}

func (c *Client) contains(key []byte, tc client.Trace) (bool, error) {
	o, dual := c.owners(key)
	var ok bool
	err := o.read(func(cl *client.Client) error {
		var err error
		ok, err = cl.Traced(tc).Contains(key)
		return err
	})
	if err != nil || ok || dual == nil {
		return ok, err
	}
	err = dual.read(func(cl *client.Client) error {
		var err error
		ok, err = cl.Traced(tc).Contains(key)
		return err
	})
	return ok, err
}

// EstimateCount returns the multiplicity upper bound from the owning
// node's read set — the max over both owners during a joint epoch
// (dual-written keys count on both sides; max never double-counts).
func (c *Client) EstimateCount(key []byte) (int, error) {
	return c.estimateCount(key, client.Trace{})
}

func (c *Client) estimateCount(key []byte, tc client.Trace) (int, error) {
	o, dual := c.owners(key)
	var v int
	err := o.read(func(cl *client.Client) error {
		var err error
		v, err = cl.Traced(tc).EstimateCount(key)
		return err
	})
	if err != nil || dual == nil {
		return v, err
	}
	var v2 int
	err = dual.read(func(cl *client.Client) error {
		var err error
		v2, err = cl.Traced(tc).EstimateCount(key)
		return err
	})
	return max(v, v2), err
}

// Len sums the element counts of the serving membership's primaries.
// Keys are partitioned by the routing, so the sum is the cluster
// population; the incoming side of a joint epoch is excluded because
// its dual-written and imported keys would double-count.
func (c *Client) Len() (int, error) {
	total := 0
	for _, n := range c.serving() {
		var v int
		err := n.read(func(cl *client.Client) error {
			var err error
			v, err = cl.Len()
			return err
		})
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// split partitions keys by owning node within side under the namespace
// seed nsH, remembering each key's input position for re-stitching.
func split(side []*node, nsH uint64, keys [][]byte) (perNode [][][]byte, perNodeIdx [][]int) {
	perNode = make([][][]byte, len(side))
	perNodeIdx = make([][]int, len(side))
	for i, key := range keys {
		n := routeIn(side, nsH, key)
		perNode[n] = append(perNode[n], key)
		perNodeIdx[n] = append(perNodeIdx[n], i)
	}
	return perNode, perNodeIdx
}

// fanOut runs fn once per side node that owns a non-empty slice of
// keys, concurrently, and joins the errors. fn receives the node's
// index within side so callers can reach the matching perNodeIdx
// slice.
func fanOut(side []*node, perNode [][][]byte, fn func(i int, n *node, keys [][]byte) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(side))
	for i, keys := range perNode {
		if len(keys) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, n *node, keys [][]byte) {
			defer wg.Done()
			errs[i] = fn(i, n, keys)
		}(i, side[i], keys)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// sendBatch splits keys over side and fans each sub-batch out to its
// owning primary with fn.
func sendBatch(side []*node, keys [][]byte, fn func(cl *client.Client, sub [][]byte) error) error {
	perNode, _ := split(side, 0, keys)
	return fanOut(side, perNode, func(_ int, n *node, sub [][]byte) error {
		n.requests.Add(1)
		n.batches.Add(1)
		n.batchKeys.Add(uint64(len(sub)))
		cl, err := n.primaryClient()
		if err != nil {
			return err
		}
		err = fn(cl, sub)
		n.noteMutation(err)
		return err
	})
}

// dualKeys returns the subset of keys whose owner under the incoming
// membership differs from their owner under the pre-change one — the
// keys a joint-epoch batch must write twice.
func dualKeys(v *ringView, keys [][]byte) [][]byte {
	var out [][]byte
	for _, key := range keys {
		if v.old[routeIn(v.old, 0, key)] != v.new[routeIn(v.new, 0, key)] {
			out = append(out, key)
		}
	}
	return out
}

// InsertBatch inserts keys, split per owning primary and fanned out
// concurrently. On error some nodes' sub-batches may have been applied
// and others not: each sub-batch is atomic per node, the whole batch is
// not. During a joint epoch, keys whose ownership is moving are written
// under both memberships and the batch acks only when both sides did.
func (c *Client) InsertBatch(keys [][]byte) error {
	return c.insertBatch(keys, client.Trace{})
}

func (c *Client) insertBatch(keys [][]byte, tc client.Trace) error {
	v := c.ring.Load()
	send := func(side []*node, ks [][]byte) error {
		return sendBatch(side, ks, func(cl *client.Client, sub [][]byte) error {
			return cl.Traced(tc).InsertBatch(sub)
		})
	}
	if !v.joint {
		return send(v.new, keys)
	}
	if err := send(v.old, keys); err != nil {
		return err
	}
	if dual := dualKeys(v, keys); len(dual) > 0 {
		return send(v.new, dual)
	}
	return nil
}

// InsertTTLBatch inserts keys with a shared time-to-live, split per
// owning primary like InsertBatch (including joint-epoch dual-write).
// The same partial-application caveat applies: each node's sub-batch is
// atomic, the whole batch is not.
func (c *Client) InsertTTLBatch(keys [][]byte, ttl time.Duration) error {
	return c.insertTTLBatch(keys, ttl, client.Trace{})
}

func (c *Client) insertTTLBatch(keys [][]byte, ttl time.Duration, tc client.Trace) error {
	v := c.ring.Load()
	send := func(side []*node, ks [][]byte) error {
		return sendBatch(side, ks, func(cl *client.Client, sub [][]byte) error {
			return cl.Traced(tc).InsertTTLBatch(sub, ttl)
		})
	}
	if !v.joint {
		return send(v.new, keys)
	}
	if err := send(v.old, keys); err != nil {
		return err
	}
	if dual := dualKeys(v, keys); len(dual) > 0 {
		return send(v.new, dual)
	}
	return nil
}

// WindowStats collects the sliding-window state of every node's
// primary, keyed by primary address. Fails if any node is unreachable
// or not serving a windowed store, so callers never mistake a partial
// view for the whole cluster.
func (c *Client) WindowStats() (map[string]wire.WindowStats, error) {
	nodes := c.serving()
	var mu sync.Mutex
	out := make(map[string]wire.WindowStats, len(nodes))
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			n.requests.Add(1)
			cl, err := n.primaryClient()
			if err != nil {
				errs[i] = err
				return
			}
			st, err := cl.WindowStats()
			if err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			out[n.primary] = st
			mu.Unlock()
		}(i, n)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// DeleteBatch deletes keys across the cluster and re-stitches the
// per-key removal flags in input order. During a joint epoch deletes
// stay on the pre-change membership; see Delete.
func (c *Client) DeleteBatch(keys [][]byte) ([]bool, error) {
	return c.deleteBatch(keys, client.Trace{})
}

func (c *Client) deleteBatch(keys [][]byte, tc client.Trace) ([]bool, error) {
	side := c.serving()
	perNode, perNodeIdx := split(side, 0, keys)
	out := make([]bool, len(keys))
	err := fanOut(side, perNode, func(i int, n *node, sub [][]byte) error {
		n.requests.Add(1)
		n.batches.Add(1)
		n.batchKeys.Add(uint64(len(sub)))
		cl, err := n.primaryClient()
		if err != nil {
			return err
		}
		flags, err := cl.Traced(tc).DeleteBatch(sub)
		if err != nil {
			n.noteMutation(err)
			return err
		}
		return stitch(out, perNodeIdx[i], flags, n.primary, false)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ContainsBatch answers membership for keys across the cluster,
// re-stitched in input order. Each node's sub-batch goes to its read
// set with failover. During a joint epoch, keys whose ownership is
// moving are also asked of their incoming owner and the flags ORed.
func (c *Client) ContainsBatch(keys [][]byte) ([]bool, error) {
	return c.containsBatch(keys, client.Trace{})
}

func (c *Client) containsBatch(keys [][]byte, tc client.Trace) ([]bool, error) {
	v := c.ring.Load()
	out := make([]bool, len(keys))
	ask := func(side []*node, ks [][]byte, positions []int) error {
		perNode, perNodeIdx := split(side, 0, ks)
		return fanOut(side, perNode, func(i int, n *node, sub [][]byte) error {
			n.batches.Add(1)
			n.batchKeys.Add(uint64(len(sub)))
			var flags []bool
			rerr := n.read(func(cl *client.Client) error {
				var err error
				flags, err = cl.Traced(tc).ContainsBatch(sub)
				return err
			})
			if rerr != nil {
				return rerr
			}
			idx := perNodeIdx[i]
			if positions != nil {
				// ks is a subset; map subset positions back to the input's.
				mapped := make([]int, len(idx))
				for j, p := range idx {
					mapped[j] = positions[p]
				}
				idx = mapped
			}
			return stitch(out, idx, flags, n.primary, positions != nil)
		})
	}
	if !v.joint {
		if err := ask(v.new, keys, nil); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := ask(v.old, keys, nil); err != nil {
		return nil, err
	}
	var dual [][]byte
	var positions []int
	for i, key := range keys {
		if v.old[routeIn(v.old, 0, key)] != v.new[routeIn(v.new, 0, key)] {
			dual = append(dual, key)
			positions = append(positions, i)
		}
	}
	if len(dual) > 0 {
		if err := ask(v.new, dual, positions); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// stitch scatters one node's order-preserving flags back to the input
// positions recorded by split. Disjoint index sets per pass-and-node
// make the concurrent writes race-free (the OR pass of a joint-epoch
// ContainsBatch runs after the first pass completed).
func stitch(out []bool, idx []int, flags []bool, primary string, or bool) error {
	if len(flags) != len(idx) {
		return fmt.Errorf("cluster: node %s answered %d flags for %d keys", primary, len(flags), len(idx))
	}
	for i, pos := range idx {
		if or {
			out[pos] = out[pos] || flags[i]
		} else {
			out[pos] = flags[i]
		}
	}
	return nil
}

// Traced returns a view whose operations all carry the trace context
// tc. Every sub-batch of a fanned-out batch is sent inside a TRACE
// envelope bearing the same trace id, so the /debug/traces rings of
// every node that handled part of the batch hold spans with that id —
// the mpcbf-trace stitcher joins them back into one fan-out tree.
// Create one context per logical operation with client.NewTrace.
func (c *Client) Traced(tc client.Trace) TracedCluster {
	return TracedCluster{c: c, tc: tc}
}

// TracedCluster is a view of a cluster Client whose operations carry a
// trace context; see Client.Traced. It holds no state of its own and is
// safe for concurrent use (though sharing one trace id across unrelated
// operations makes stitched traces ambiguous).
type TracedCluster struct {
	c  *Client
	tc client.Trace
}

// Context returns the trace context this view stamps on operations.
func (t TracedCluster) Context() client.Trace { return t.tc }

// Insert adds key on its owning primary, traced.
func (t TracedCluster) Insert(key []byte) error { return t.c.insert(key, t.tc) }

// Delete removes key on its owning primary, traced.
func (t TracedCluster) Delete(key []byte) error { return t.c.delete(key, t.tc) }

// InsertTTL adds key with a time-to-live on its owning primary, traced.
func (t TracedCluster) InsertTTL(key []byte, ttl time.Duration) error {
	return t.c.insertTTL(key, ttl, t.tc)
}

// Contains answers membership from the owning node's read set, traced.
func (t TracedCluster) Contains(key []byte) (bool, error) { return t.c.contains(key, t.tc) }

// EstimateCount returns the multiplicity upper bound, traced.
func (t TracedCluster) EstimateCount(key []byte) (int, error) { return t.c.estimateCount(key, t.tc) }

// InsertBatch inserts keys with every per-node sub-batch carrying the
// view's trace id.
func (t TracedCluster) InsertBatch(keys [][]byte) error { return t.c.insertBatch(keys, t.tc) }

// InsertTTLBatch inserts keys sharing one TTL, every sub-batch traced.
func (t TracedCluster) InsertTTLBatch(keys [][]byte, ttl time.Duration) error {
	return t.c.insertTTLBatch(keys, ttl, t.tc)
}

// DeleteBatch deletes keys across the cluster, every sub-batch traced.
func (t TracedCluster) DeleteBatch(keys [][]byte) ([]bool, error) {
	return t.c.deleteBatch(keys, t.tc)
}

// ContainsBatch answers membership across the cluster, every sub-batch
// traced.
func (t TracedCluster) ContainsBatch(keys [][]byte) ([]bool, error) {
	return t.c.containsBatch(keys, t.tc)
}

// NodeStats is a point-in-time view of one node's routing counters plus
// the per-connection stats of every dialed endpoint.
type NodeStats struct {
	Primary      string `json:"primary"`
	Requests     uint64 `json:"requests"`
	Batches      uint64 `json:"batches"`
	BatchKeys    uint64 `json:"batch_keys"`
	Failovers    uint64 `json:"failovers"`
	MaybeApplied uint64 `json:"maybe_applied"`

	// Endpoint connection counters, keyed by address; only endpoints
	// dialed so far appear.
	Endpoints map[string]client.Stats `json:"endpoints,omitempty"`
}

// ClientStats is a point-in-time view of the cluster client's routing.
type ClientStats struct {
	// RingEpoch and RingJoint describe the membership descriptor the
	// client routes by (epoch 0 = configured bootstrap membership).
	RingEpoch uint64      `json:"ring_epoch"`
	RingJoint bool        `json:"ring_joint"`
	Nodes     []NodeStats `json:"nodes"`
}

// Snapshot returns per-node routing and connection counters.
func (c *Client) Snapshot() ClientStats {
	nodes := c.allNodes()
	v := c.ring.Load()
	st := ClientStats{
		RingEpoch: v.epoch,
		RingJoint: v.joint,
		Nodes:     make([]NodeStats, 0, len(nodes)),
	}
	for _, n := range nodes {
		ns := NodeStats{
			Primary:      n.primary,
			Requests:     n.requests.Load(),
			Batches:      n.batches.Load(),
			BatchKeys:    n.batchKeys.Load(),
			Failovers:    n.failovers.Load(),
			MaybeApplied: n.maybeApplied.Load(),
		}
		n.mu.Lock()
		if n.primaryC != nil {
			ns.Endpoints = map[string]client.Stats{n.primary: n.primaryC.Stats()}
		}
		for i, rc := range n.replicaC {
			if rc == nil {
				continue
			}
			if ns.Endpoints == nil {
				ns.Endpoints = map[string]client.Stats{}
			}
			ns.Endpoints[n.replicas[i]] = rc.Stats()
		}
		n.mu.Unlock()
		st.Nodes = append(st.Nodes, ns)
	}
	return st
}

// WriteProm appends the cluster client's routing counters to a
// Prometheus exposition, labeled by owning primary — for embedding
// mpcbfd consumers into their own /metrics.
func (c *Client) WriteProm(w io.Writer) {
	st := c.Snapshot()
	emit := func(name, help string, val func(ns NodeStats) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, ns := range st.Nodes {
			fmt.Fprintf(w, "%s{node=%q} %d\n", name, ns.Primary, val(ns))
		}
	}
	emit("mpcbf_cluster_requests_total", "Operations routed to each node.",
		func(ns NodeStats) uint64 { return ns.Requests })
	emit("mpcbf_cluster_batches_total", "Sub-batches fanned out to each node.",
		func(ns NodeStats) uint64 { return ns.Batches })
	emit("mpcbf_cluster_batch_keys_total", "Keys across fanned-out sub-batches, by node.",
		func(ns NodeStats) uint64 { return ns.BatchKeys })
	emit("mpcbf_cluster_failovers_total", "Read attempts that fell past a node's first endpoint.",
		func(ns NodeStats) uint64 { return ns.Failovers })
	emit("mpcbf_cluster_maybe_applied_total", "Mutations interrupted in transit (ErrMaybeApplied), by node.",
		func(ns NodeStats) uint64 { return ns.MaybeApplied })
	fmt.Fprintf(w, "# HELP mpcbf_cluster_ring_epoch Membership descriptor epoch the client routes by.\n# TYPE mpcbf_cluster_ring_epoch gauge\nmpcbf_cluster_ring_epoch %d\n", st.RingEpoch)
	joint := 0
	if st.RingJoint {
		joint = 1
	}
	fmt.Fprintf(w, "# HELP mpcbf_cluster_ring_joint Whether the client is inside a dual-write (joint) epoch.\n# TYPE mpcbf_cluster_ring_joint gauge\nmpcbf_cluster_ring_joint %d\n", joint)
}
