package chaos

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is an in-process TCP proxy used to fault one link of a cluster:
// a client (or replica) connects to the proxy's address instead of the
// real endpoint, and the schedule partitions the link by dropping live
// connections and refusing new ones, or degrades it by delaying every
// forwarded write. All goroutines it starts are tracked, so Close
// returns only once the proxy has fully unwound — the leak check in the
// tests relies on that.
type Proxy struct {
	target string
	ln     net.Listener

	drop    atomic.Bool
	delayNs atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // both halves of every live relay
	closed bool

	wg sync.WaitGroup
}

// NewProxy listens on 127.0.0.1 (an ephemeral port) and forwards each
// accepted connection to target until dropped, healed, or closed.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what the faulted side dials
// instead of the real target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetDrop partitions (true) or heals (false) the link. Partitioning
// kills every live relayed connection and makes new accepts be closed
// immediately — the dialing side sees connection resets, exactly like a
// black-holed route with RST generation (the aggressive partition that
// flushes out reconnect bugs fastest).
func (p *Proxy) SetDrop(on bool) {
	p.drop.Store(on)
	if on {
		p.killConns()
	}
}

// Dropped reports whether the link is currently partitioned.
func (p *Proxy) Dropped() bool { return p.drop.Load() }

// SetDelay sleeps d before every forwarded write in both directions
// (0 disables) — a slow link rather than a dead one.
func (p *Proxy) SetDelay(d time.Duration) { p.delayNs.Store(int64(d)) }

// ActiveConns returns the number of live relay halves (two per proxied
// connection).
func (p *Proxy) ActiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Close shuts the listener, kills live connections, and waits for every
// proxy goroutine to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.killConns()
	p.wg.Wait()
	return err
}

// killConns closes every registered connection half.
func (p *Proxy) killConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
	}
}

// track registers a connection unless the proxy is already closed or
// dropped (in which case it is closed immediately and not registered).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.drop.Load() {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.conns, c)
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if p.drop.Load() {
			down.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			down.Close()
			continue
		}
		if !p.track(down) {
			up.Close()
			continue
		}
		if !p.track(up) {
			p.untrack(down)
			down.Close()
			continue
		}
		p.wg.Add(2)
		go p.relay(down, up)
		go p.relay(up, down)
	}
}

// relay copies src to dst, applying the configured write delay, until
// either side dies; it then closes both so the peer relay unwinds too.
func (p *Proxy) relay(dst, src net.Conn) {
	defer p.wg.Done()
	buf := make([]byte, 32*1024)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if d := p.delayNs.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if rerr != nil {
			break
		}
	}
	src.Close()
	dst.Close()
	p.untrack(src)
	p.untrack(dst)
}
