package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Serialization lets a loaded filter be broadcast to other processes —
// the DistributedCache pattern of the paper's Section V — or persisted
// across restarts. The format is a fixed little-endian header followed by
// the saturated-word list and the raw arena words.

const (
	marshalMagic   = 0x4D504342 // "MPCB"
	marshalVersion = 1
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (f *Filter) MarshalBinary() ([]byte, error) {
	arena := f.arena.Words()
	sat := make([]int, 0, len(f.saturated))
	for w := range f.saturated {
		sat = append(sat, w)
	}
	sort.Ints(sat)

	size := 4 + 4 + 10*8 + len(sat)*8 + len(arena)*8
	buf := make([]byte, 0, size)
	le := binary.LittleEndian

	put := func(v uint64) {
		var b [8]byte
		le.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	var hdr [8]byte
	le.PutUint32(hdr[0:4], marshalMagic)
	le.PutUint32(hdr[4:8], marshalVersion)
	buf = append(buf, hdr[:]...)

	put(uint64(f.cfg.MemoryBits))
	put(uint64(f.cfg.W))
	put(uint64(f.cfg.K))
	put(uint64(f.cfg.G))
	put(uint64(f.b1))
	put(uint64(f.nmax))
	put(uint64(f.cfg.Seed))
	put(uint64(f.cfg.Overflow))
	put(uint64(f.count))
	put(uint64(f.overflows))
	put(uint64(len(sat)))
	put(uint64(len(arena)))
	for _, w := range sat {
		put(uint64(w))
	}
	for _, w := range arena {
		put(w)
	}
	return buf, nil
}

// Unmarshal reconstructs a filter serialized with MarshalBinary.
func Unmarshal(data []byte) (*Filter, error) {
	le := binary.LittleEndian
	if len(data) < 8+12*8 {
		return nil, errors.New("mpcbf: truncated filter data")
	}
	if le.Uint32(data[0:4]) != marshalMagic {
		return nil, errors.New("mpcbf: bad magic")
	}
	if v := le.Uint32(data[4:8]); v != marshalVersion {
		return nil, fmt.Errorf("mpcbf: unsupported version %d", v)
	}
	off := 8
	next := func() uint64 {
		v := le.Uint64(data[off : off+8])
		off += 8
		return v
	}
	memBits := int(next())
	w := int(next())
	k := int(next())
	g := int(next())
	b1 := int(next())
	nmax := int(next())
	seedRaw := next()
	overflow := OverflowPolicy(next())
	count := int(next())
	overflows := int(next())
	nSat := int(next())
	nArena := int(next())

	if overflow != OverflowFail && overflow != OverflowSaturate {
		return nil, fmt.Errorf("mpcbf: bad overflow policy %d", overflow)
	}
	// Sanity-bound every header field before any allocation: the input is
	// untrusted, and the arena size implied by the geometry must match the
	// payload length exactly.
	const maxWordBits = 1 << 16
	if w < 1 || w > maxWordBits || k < 1 || k > 1024 || g < 1 || g > k ||
		b1 < 1 || b1 > w || nmax < 0 || nmax > w ||
		count < 0 || overflows < 0 || seedRaw > 1<<32-1 {
		return nil, errors.New("mpcbf: implausible filter header")
	}
	seed := uint32(seedRaw)
	if memBits < w || memBits/w > (1<<40)/maxWordBits {
		return nil, errors.New("mpcbf: implausible filter size")
	}
	if nSat < 0 || nArena < 0 || nSat+nArena < 0 ||
		len(data) != off+(nSat+nArena)*8 {
		return nil, errors.New("mpcbf: corrupt filter length")
	}
	if wantArena := (memBits / w * w); (wantArena+63)/64 != nArena {
		return nil, fmt.Errorf("mpcbf: arena size %d does not match geometry", nArena)
	}

	f, err := New(Config{
		MemoryBits: memBits, W: w, K: k, G: g, B1: b1,
		Seed: seed, Overflow: overflow,
	})
	if err != nil {
		return nil, fmt.Errorf("mpcbf: rebuilding geometry: %w", err)
	}
	// New derived b1 from the header's explicit B1, so nmax is zero; carry
	// the original heuristic value for Geometry reporting.
	f.nmax = nmax
	f.count = count
	f.overflows = overflows
	prev := -1
	for i := 0; i < nSat; i++ {
		wIdx := int(next())
		// The canonical encoding lists saturated words strictly ascending;
		// anything else would not round-trip.
		if wIdx < 0 || wIdx >= f.l || wIdx <= prev {
			return nil, fmt.Errorf("mpcbf: saturated word %d out of range or order", wIdx)
		}
		prev = wIdx
		f.saturated[wIdx] = true
	}
	arena := f.arena.Words()
	if nArena != len(arena) {
		return nil, fmt.Errorf("mpcbf: arena size %d does not match geometry (%d)", nArena, len(arena))
	}
	for i := range arena {
		arena[i] = next()
	}
	return f, nil
}
