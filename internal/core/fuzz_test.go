package core

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes to the deserializer: it must reject
// or accept without ever panicking, and round-trip anything it accepts.
func FuzzUnmarshal(f *testing.F) {
	mk := func(cfg Config, n int) []byte {
		flt, err := New(cfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			_ = flt.Insert([]byte{byte(i), byte(i >> 8)})
		}
		data, err := flt.MarshalBinary()
		if err != nil {
			panic(err)
		}
		return data
	}
	f.Add(mk(Config{MemoryBits: 1 << 12, B1: 40, K: 3}, 10))
	f.Add(mk(Config{MemoryBits: 1 << 10, B1: 32, K: 2, G: 2, Overflow: OverflowSaturate}, 40))
	f.Add([]byte{})
	f.Add([]byte("BCPM gibberish"))

	f.Fuzz(func(t *testing.T, data []byte) {
		flt, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent enough to
		// re-serialize to an equal byte string.
		out, err := flt.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted filter fails to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not stable: %d vs %d bytes", len(out), len(data))
		}
		// And queries must not panic.
		flt.Contains([]byte("probe"))
	})
}

// FuzzKernelVsGeneric replays an arbitrary insert/delete/query tape on a
// kernel filter and a DisableKernel twin, requiring identical errors,
// queries, element counts, and raw arena bits after every operation. This is
// the end-to-end half of the kernel equivalence argument; the word-level
// half lives in internal/hcbf.FuzzWordKernelVsGeneric.
func FuzzKernelVsGeneric(f *testing.F) {
	f.Add(false, []byte{0, 1, 2, 3, 128, 129})
	f.Add(false, []byte{5, 5, 5, 133, 133, 133, 69, 69})
	f.Add(true, []byte{0, 1, 2, 3, 0, 1, 2, 3, 128})
	f.Fuzz(func(t *testing.T, wide bool, tape []byte) {
		w := 64
		if wide {
			w = 128
		}
		cfg := Config{MemoryBits: 1 << 12, ExpectedN: 40, W: w, K: 3, Seed: 2,
			Overflow: OverflowSaturate}
		k, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gcfg := cfg
		gcfg.DisableKernel = true
		g, err := New(gcfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range tape {
			key := []byte{op & 0x3f}
			switch {
			case op&0x80 == 0:
				kerr := k.Insert(key)
				gerr := g.Insert(key)
				if (kerr == nil) != (gerr == nil) {
					t.Fatalf("op %d: Insert errs %v vs %v", i, kerr, gerr)
				}
			case op&0x40 == 0:
				kerr := k.Delete(key)
				gerr := g.Delete(key)
				if (kerr == nil) != (gerr == nil) {
					t.Fatalf("op %d: Delete errs %v vs %v", i, kerr, gerr)
				}
			default:
				if k.Contains(key) != g.Contains(key) {
					t.Fatalf("op %d: Contains diverges", i)
				}
				if k.CountOf(key) != g.CountOf(key) {
					t.Fatalf("op %d: CountOf diverges", i)
				}
			}
			if !k.arena.Equal(g.arena) {
				t.Fatalf("op %d: arenas diverge", i)
			}
			if k.count != g.count {
				t.Fatalf("op %d: count %d vs %d", i, k.count, g.count)
			}
		}
	})
}

// FuzzFilterOps drives a small filter with an arbitrary key/op tape,
// checking the no-false-negative guarantee throughout.
func FuzzFilterOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 128, 129})
	f.Add([]byte{5, 5, 5, 133, 133, 133})
	f.Fuzz(func(t *testing.T, tape []byte) {
		flt, err := New(Config{MemoryBits: 1 << 12, B1: 32, K: 3, Seed: 1,
			Overflow: OverflowSaturate})
		if err != nil {
			t.Fatal(err)
		}
		ref := make(map[byte]int)
		for _, op := range tape {
			id := op & 0x7f
			key := []byte{id}
			if op&0x80 == 0 {
				if err := flt.Insert(key); err != nil {
					t.Fatalf("insert under saturate policy failed: %v", err)
				}
				ref[id]++
			} else if ref[id] > 0 {
				if err := flt.Delete(key); err != nil {
					t.Fatalf("delete of present key: %v", err)
				}
				ref[id]--
			}
			for id, n := range ref {
				if n > 0 && !flt.Contains([]byte{id}) {
					t.Fatalf("false negative for %d (count %d)", id, n)
				}
			}
		}
	})
}
