package server

import (
	"fmt"
	"testing"

	mpcbf "repro"
	"repro/server/wire"
)

// Benchmarks for the serving hot path: store-level ops (filter + WAL)
// and the server dispatch loop. These are the before/after pair for any
// change that touches the request path — observability instrumentation
// in particular must stay atomics/branch-only when sampling is off, and
// these numbers prove it.

func benchStoreSync(b *testing.B, sync SyncPolicy) *Store {
	b.Helper()
	st, err := OpenStore(StoreOptions{
		Dir: b.TempDir(),
		Filter: mpcbf.Options{
			MemoryBits:    1 << 23,
			ExpectedItems: 200_000,
		},
		Shards: 8,
		Sync:   sync,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st
}

func benchStore(b *testing.B) *Store {
	return benchStoreSync(b, SyncNever) // isolate CPU cost from disk
}

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench-key-%08d", i))
	}
	return keys
}

// The insert+delete cost splits into an append-only variant (SyncNever:
// pure CPU — filter, WAL framing, committer handoff) and an
// fsync-dominated one (SyncAlways: each iteration pays a synchronous
// commit round). The pair attributes the mutation/read gap: before group
// commit the SyncAlways number WAS the per-connection mutation ceiling;
// with group commit it is only the single-connection floor — see the
// saturation benchmark for the concurrent throughput this unlocks.
func BenchmarkStoreInsertDeleteSyncNever(b *testing.B) {
	benchStoreInsertDelete(b, SyncNever)
}

func BenchmarkStoreInsertDeleteSyncAlways(b *testing.B) {
	benchStoreInsertDelete(b, SyncAlways)
}

func benchStoreInsertDelete(b *testing.B, sync SyncPolicy) {
	st := benchStoreSync(b, sync)
	keys := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if err := st.Insert(k); err != nil {
			b.Fatal(err)
		}
		if err := st.Delete(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreContains(b *testing.B) {
	st := benchStore(b)
	keys := benchKeys(4096)
	for _, k := range keys[:2048] {
		if err := st.Insert(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Contains(keys[i%len(keys)])
	}
}

// BenchmarkDispatch runs decoded requests through the server dispatch
// path (store op + response encode), the full per-request CPU cost minus
// the socket.
func BenchmarkDispatchContains(b *testing.B) {
	st := benchStore(b)
	srv := New(st, Config{}, nil)
	keys := benchKeys(4096)
	for _, k := range keys[:2048] {
		if err := st.Insert(k); err != nil {
			b.Fatal(err)
		}
	}
	var resp []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := wire.Request{Op: wire.OpContains, Key: keys[i%len(keys)]}
		resp, _, _ = srv.dispatch(req, resp[:0], nil)
	}
}

func BenchmarkDispatchInsertDelete(b *testing.B) {
	st := benchStore(b)
	srv := New(st, Config{}, nil)
	keys := benchKeys(4096)
	var resp []byte
	var tkt uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		resp, tkt, _ = srv.dispatch(wire.Request{Op: wire.OpInsert, Key: k}, resp[:0], nil)
		if err := st.waitDurable(tkt, nil); err != nil {
			b.Fatal(err)
		}
		resp, tkt, _ = srv.dispatch(wire.Request{Op: wire.OpDelete, Key: k}, resp[:0], nil)
		if err := st.waitDurable(tkt, nil); err != nil {
			b.Fatal(err)
		}
	}
}
