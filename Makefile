GO ?= go
BENCHTIME ?= 1s

.PHONY: build test vet lint race race-serving bench bench-json bench-saturation bench-cluster fuzz-kernel fuzz-wire serve integration cluster-e2e window-e2e ns-e2e elastic-e2e reshard-e2e obs-smoke sim-multi-seed loadgen-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs staticcheck when it is installed; vet is the floor either
# way (the CI lint job installs staticcheck explicitly).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only"; \
	fi

race:
	$(GO) test -race ./...

# race-serving focuses the race detector on the concurrent serving stack
# (server, replication, clients) without the -short gating CI applies to
# the full tree, and compiles every CLI (including mpcbf-trace) under
# the race detector so instrumented builds stay green.
race-serving:
	$(GO) build -race ./cmd/...
	$(GO) test -race -count=1 ./server/... ./cluster/... ./client/... ./window/...

bench:
	$(GO) test -run '^$$' -bench 'Ops' -benchtime $(BENCHTIME) .

# bench-json runs the word-kernel benchmark pairs and records the ns/op
# numbers (plus kernel-vs-generic speedups) in BENCH_kernel.json.
bench-json:
	$(GO) test -run '^$$' -bench 'Benchmark(Kernel|Generic|OpsMPCBF1)' \
		-benchtime $(BENCHTIME) . | tee /tmp/bench_kernel.txt
	awk ' \
	  /^Benchmark/ { \
	    name = $$1; sub(/-[0-9]+$$/, "", name); \
	    ns[name] = $$3; order[n++] = name; \
	  } \
	  END { \
	    printf "{\n  \"geometry\": {\"w\": 64, \"k\": 3, \"g\": 1, \"memory_bits\": 8388608},\n"; \
	    printf "  \"ns_per_op\": {\n"; \
	    for (i = 0; i < n; i++) { \
	      printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : ""); \
	    } \
	    printf "  },\n  \"speedups\": {\n"; \
	    printf "    \"insert_delete_kernel_vs_generic\": %.2f,\n", \
	      ns["BenchmarkGenericInsertDelete"] / ns["BenchmarkKernelInsertDelete"]; \
	    printf "    \"contains_kernel_vs_generic\": %.2f,\n", \
	      ns["BenchmarkGenericContains"] / ns["BenchmarkKernelContains"]; \
	    printf "    \"word_incdec_kernel_vs_generic\": %.2f,\n", \
	      ns["BenchmarkGenericWordIncDec"] / ns["BenchmarkKernelRawIncDec"]; \
	    printf "    \"word_count_kernel_vs_generic\": %.2f\n", \
	      ns["BenchmarkGenericWordCount"] / ns["BenchmarkKernelRawCount"]; \
	    printf "  }\n}\n"; \
	  }' /tmp/bench_kernel.txt > BENCH_kernel.json
	@cat BENCH_kernel.json
	$(GO) test -run '^$$' -bench 'Benchmark(Dispatch|Store|Window)' \
		-benchtime $(BENCHTIME) ./server ./window | tee /tmp/bench_serving.txt
	MPCBF_SATURATION_OUT=$(SATURATION_OUT) $(GO) test -run 'TestSaturationReport' -count=1 ./server
	{ awk ' \
	  /^Benchmark/ { \
	    name = $$1; sub(/-[0-9]+$$/, "", name); \
	    ns[name] = $$3; order[n++] = name; \
	  } \
	  END { \
	    printf "{\n  \"ns_per_op\": {\n"; \
	    for (i = 0; i < n; i++) { \
	      printf "    \"%s\": %s%s\n", order[i], ns[order[i]], (i < n-1 ? "," : ""); \
	    } \
	    printf "  },\n  \"saturation\": "; \
	  }' /tmp/bench_serving.txt; cat $(SATURATION_OUT); printf "}\n"; } > BENCH_serving.json
	@cat BENCH_serving.json

# bench-saturation drives the SyncAlways mutation path at fixed
# connection counts — the pre-group-commit per-request-fsync baseline
# ("serialized") against free-running synchronous connections ("grouped")
# and the pipelined client API ("pipelined") — and writes ops/s with
# p50/p99 latency as JSON to $(SATURATION_OUT). bench-json merges the
# same block into BENCH_serving.json. Without MPCBF_SATURATION_OUT the
# test runs a tiny CI smoke instead.
SATURATION_OUT ?= /tmp/mpcbf_saturation.json
bench-saturation:
	MPCBF_SATURATION_OUT=$(SATURATION_OUT) $(GO) test -run 'TestSaturationReport' -count=1 -v ./server
	@cat $(SATURATION_OUT)

# fuzz-kernel gives the kernel/generic differential fuzzers a short budget
# each; raise FUZZTIME for longer campaigns.
FUZZTIME ?= 10s
fuzz-kernel:
	$(GO) test -run '^$$' -fuzz FuzzWordKernelVsGeneric -fuzztime $(FUZZTIME) ./internal/hcbf
	$(GO) test -run '^$$' -fuzz FuzzKernelVsGeneric -fuzztime $(FUZZTIME) ./internal/core

# fuzz-wire hardens the network protocol decoders: malformed request,
# status, and replication frames must error, never panic.
fuzz-wire:
	$(GO) test -run '^$$' -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME) ./server/wire
	$(GO) test -run '^$$' -fuzz FuzzDecodeStatus -fuzztime $(FUZZTIME) ./server/wire
	$(GO) test -run '^$$' -fuzz FuzzRepFrameRoundTrip -fuzztime $(FUZZTIME) ./server/wire

# serve runs the mpcbfd daemon with a local data dir; MPCBFD_FLAGS adds
# extra flags (e.g. MPCBFD_FLAGS='-fsync interval -shards 32').
MPCBFD_FLAGS ?=
serve:
	$(GO) run ./cmd/mpcbfd -dir mpcbfd-data $(MPCBFD_FLAGS)

# integration builds the daemon and runs the end-to-end crash-recovery
# test (SIGKILL mid-stream, restart, verify every acked mutation). The
# sliding-window e2e has its own target (window-e2e).
integration:
	$(GO) test -race -count=1 -run 'TestIntegrationCrashRecovery' -v ./server

# cluster-e2e builds the daemon and runs the replication end-to-end
# test: 1 primary + 2 replicas, concurrent writers, a replica SIGKILLed
# and restarted mid-stream, convergence to byte-identical filters, and
# a read-scaling throughput smoke. The tracing e2e rides along: one
# TRACE-enveloped batch fanned out over two primaries, spans with
# commit-round attribution on both, the replica apply joined by WAL
# offset, and the quiesced lag-in-time gauge ≈ 0.
cluster-e2e:
	$(GO) test -race -count=1 -run 'TestClusterE2E|TestClusterTraceE2E' -v ./cluster

# window-e2e builds the daemon with -window and verifies the sliding
# window end to end: keys expire after span + one rotation, in-window
# keys never report false negatives, and the generation ring survives a
# SIGKILL + crash recovery.
window-e2e:
	$(GO) test -race -count=1 -run 'TestIntegrationWindow' -v ./server

# ns-e2e builds the daemon with a 64 MiB namespace quota and drives 200
# mixed-geometry namespaces with concurrent writers: SIGKILL mid-stream,
# restart recovers every acked (namespace, key), evicted namespaces
# recover on touch with zero loss, and a replica converges to
# byte-identical per-namespace dumps.
ns-e2e:
	$(GO) test -race -count=1 -run 'TestIntegrationNamespaces' -v ./server

# elastic-e2e builds the daemon with -elastic and SIGKILLs it while
# concurrent writers push the default chain, an elastic namespace, and
# a windowed namespace past their seed geometries: recovery must keep
# every acked insert, preserve the chain shape, and replay byte-exactly
# a second time.
elastic-e2e:
	$(GO) test -race -count=1 -run 'TestIntegrationElasticCrashMidGrowth' -v ./server

# reshard-e2e grows a live 2-primary elastic cluster to three primaries
# under concurrent writers: the coordinator pushes the joint (dual-write)
# ring, snapshot-transfers both donors into the new node (DUMP->IMPORT
# with durable acks), and cuts over. Zero acked-insert loss, reads
# correct throughout, and every node's post-cutover DUMP byte-identical
# across a SIGKILL + replay.
reshard-e2e:
	$(GO) test -race -count=1 -run 'TestReshardE2E' -v ./cluster

# sim-multi-seed runs the deterministic fault-schedule harness: for
# each seed in MPCBF_SIM_SEEDS, a generated schedule (primary
# kill+restart, replica-link partition+heal, slow-fsync fault+repair)
# is replayed twice against a live primary/replica pair under loadgen
# traffic. Each replay asserts zero acked-write loss and a
# byte-identical replica dump; the two replays' event logs must match
# byte for byte. The first seed additionally replays as an elastic pair
# under a grow-mode keyspace ramp, so ELASTIC_GROW barriers replicate
# through the same faults. MPCBF_SIM_ARTIFACTS (a directory) collects
# per-seed event logs; MPCBF_SIM_DURATION scales the traffic window.
MPCBF_SIM_SEEDS ?= 1,2,3
MPCBF_SIM_ARTIFACTS ?=
sim-multi-seed:
	MPCBF_SIM_SEEDS=$(MPCBF_SIM_SEEDS) MPCBF_SIM_ARTIFACTS=$(MPCBF_SIM_ARTIFACTS) \
		$(GO) test -count=1 -run 'TestSimMultiSeed' -v ./cluster

# loadgen-smoke boots a windowed daemon on a loopback port and drives a
# short mpcbf-loadgen run in each loop model (closed, open, pipelined);
# a nonzero exit or any op error in the JSON results fails the target.
LOADGEN_SMOKE_ADDR ?= 127.0.0.1:46511
loadgen-smoke:
	$(GO) build -o /tmp/mpcbfd-smoke ./cmd/mpcbfd
	$(GO) build -o /tmp/mpcbf-loadgen ./cmd/mpcbf-loadgen
	@set -e; dir=$$(mktemp -d); \
	/tmp/mpcbfd-smoke -addr $(LOADGEN_SMOKE_ADDR) -dir $$dir/data \
		-window 30s -snapshot-interval 0 >$$dir/daemon.log 2>&1 & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true; rm -rf $$dir" EXIT; \
	ok=; for i in $$(seq 50); do \
	  if /tmp/mpcbf-loadgen -addrs $(LOADGEN_SMOKE_ADDR) -duration 2s -c 4 \
	      -seed 11 -json $$dir/closed.json 2>/dev/null; then ok=1; break; fi; \
	  sleep 0.2; \
	done; test -n "$$ok" || { cat $$dir/daemon.log; exit 1; }; \
	/tmp/mpcbf-loadgen -addrs $(LOADGEN_SMOKE_ADDR) -mode open -rate 2000 \
		-duration 2s -c 4 -seed 12 -json $$dir/open.json; \
	/tmp/mpcbf-loadgen -addrs $(LOADGEN_SMOKE_ADDR) -pipeline 16 \
		-duration 2s -c 2 -seed 13 -json $$dir/pipe.json; \
	! grep -E '"errors": [1-9]' $$dir/closed.json $$dir/open.json $$dir/pipe.json

# bench-cluster boots a primary plus one WAL-shipping replica and
# records reproducible loadgen runs (closed-loop, open-loop, pipelined,
# and replica-routed reads) in BENCH_cluster.json; every entry embeds
# the manifest that regenerates its workload.
BENCH_CLUSTER_DURATION ?= 5s
bench-cluster:
	$(GO) build -o /tmp/mpcbfd-bench ./cmd/mpcbfd
	$(GO) build -o /tmp/mpcbf-loadgen ./cmd/mpcbf-loadgen
	@set -e; dir=$$(mktemp -d); \
	/tmp/mpcbfd-bench -addr 127.0.0.1:46521 -dir $$dir/p -window 30s \
		-snapshot-interval 0 >$$dir/p.log 2>&1 & p=$$!; \
	sleep 1; \
	/tmp/mpcbfd-bench -addr 127.0.0.1:46522 -dir $$dir/r \
		-replicate-from 127.0.0.1:46521 >$$dir/r.log 2>&1 & r=$$!; \
	trap "kill $$p $$r 2>/dev/null || true; rm -rf $$dir" EXIT; \
	sleep 1; \
	/tmp/mpcbf-loadgen -addrs 127.0.0.1:46521 -duration $(BENCH_CLUSTER_DURATION) \
		-c 8 -zipf 1.1 -seed 42 -bench BENCH_cluster.json -bench-name closed_c8; \
	/tmp/mpcbf-loadgen -addrs 127.0.0.1:46521 -mode open -rate 5000 \
		-duration $(BENCH_CLUSTER_DURATION) -c 8 -zipf 1.1 -seed 42 \
		-bench BENCH_cluster.json -bench-name open_5k; \
	/tmp/mpcbf-loadgen -addrs 127.0.0.1:46521 -pipeline 32 \
		-duration $(BENCH_CLUSTER_DURATION) -c 4 -zipf 1.1 -seed 42 \
		-bench BENCH_cluster.json -bench-name pipelined_d32; \
	/tmp/mpcbf-loadgen -addrs 127.0.0.1:46521/127.0.0.1:46522 -mix contains=100 \
		-duration $(BENCH_CLUSTER_DURATION) -c 8 -zipf 1.1 -seed 42 \
		-bench BENCH_cluster.json -bench-name reads_replica_routed
	@cat BENCH_cluster.json

# obs-smoke boots the daemon with tracing, JSON logs, and the pprof
# listener enabled, then scrapes /metrics, /debug/vars, /readyz,
# /debug/requests, /debug/traces, and /debug/pprof/goroutine — failing
# on any non-200 or unparseable body. It then boots a 3-node fixture
# (two primaries + a replica of the first), drives traced load through
# the cluster-aware loadgen, and requires mpcbf-trace to stitch at
# least one cross-node trace out of the /debug/traces rings.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestObsSmoke' -v ./server
	$(GO) build -o /tmp/mpcbfd-obs ./cmd/mpcbfd
	$(GO) build -o /tmp/mpcbf-loadgen ./cmd/mpcbf-loadgen
	$(GO) build -o /tmp/mpcbf-trace ./cmd/mpcbf-trace
	@set -e; dir=$$(mktemp -d); \
	/tmp/mpcbfd-obs -addr 127.0.0.1:46531 -http 127.0.0.1:46541 \
		-dir $$dir/p1 >$$dir/p1.log 2>&1 & p1=$$!; \
	/tmp/mpcbfd-obs -addr 127.0.0.1:46532 -http 127.0.0.1:46542 \
		-dir $$dir/p2 >$$dir/p2.log 2>&1 & p2=$$!; \
	trap "kill $$p1 $$p2 $$r1 2>/dev/null || true; rm -rf $$dir" EXIT; \
	sleep 1; \
	/tmp/mpcbfd-obs -addr 127.0.0.1:46533 -http 127.0.0.1:46543 \
		-dir $$dir/r1 -replicate-from 127.0.0.1:46531 >$$dir/r1.log 2>&1 & r1=$$!; \
	ok=; for i in $$(seq 50); do \
	  if /tmp/mpcbf-loadgen -addrs 127.0.0.1:46531,127.0.0.1:46532 -duration 2s \
	      -c 4 -batch 8 -trace-sample 10 -seed 21 -json $$dir/load.json 2>/dev/null; \
	      then ok=1; break; fi; \
	  sleep 0.2; \
	done; test -n "$$ok" || { cat $$dir/p1.log $$dir/p2.log; exit 1; }; \
	sleep 1.2; \
	/tmp/mpcbf-trace -nodes 127.0.0.1:46541,127.0.0.1:46542,127.0.0.1:46543 \
		| tee $$dir/traces.txt; \
	grep -q '^trace ' $$dir/traces.txt

ci: build lint race integration window-e2e cluster-e2e ns-e2e elastic-e2e reshard-e2e obs-smoke loadgen-smoke sim-multi-seed
	$(GO) test -run '^$$' -bench 'Ops' -benchtime 100x .
