package server

import (
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/server/wire"
)

// Request tracing: every request gets an ID from an atomic counter; a
// 1-in-N sample additionally collects per-stage timings
// (decode → filter op → WAL append → fsync → encode+write). Sampled
// entries land in a fixed ring of recent requests; requests slower than
// the configured threshold land in a second ring (with stage detail
// when they were sampled) and emit a slog warning. Both rings are
// served as JSON at /debug/requests.
//
// Distributed tracing rides the same machinery: a request that arrives
// inside a TRACE envelope is always upgraded to a full trace (force),
// its span lands in a third ring keyed by the propagated trace id, and
// replica-side WAL applies land in a fourth; both are served at
// /debug/traces for the mpcbf-trace stitcher.
//
// Hot-path cost when sampling and the slow threshold are both off: one
// atomic Add (the request ID) and two predictable branches — no clock
// reads beyond the one the latency histogram already takes, no locks,
// no allocation. The rings take a mutex, but only sampled or slow
// requests ever reach them.

// TraceEntry is one traced request as exposed at /debug/requests and
// /debug/traces. Stage fields are zero for slow-but-unsampled requests
// (only the total was measured). Requests that arrived inside a TRACE
// envelope carry the propagated trace id and parent span; the server's
// request ID doubles as this span's id. Mutations additionally record
// where they landed in the WAL (segment sequence plus byte offset) and
// which group-commit round made them durable, so a primary span can be
// joined to the replica-apply span covering the same offset range.
type TraceEntry struct {
	ID         uint64    `json:"id"`
	Op         string    `json:"op"`
	TraceID    string    `json:"trace_id,omitempty"`    // hex, propagated by the client
	ParentSpan uint64    `json:"parent_span,omitempty"` // client-side parent span id
	NS         string    `json:"ns,omitempty"`          // namespace for enveloped requests
	Start      time.Time `json:"start"`
	TotalNs    int64     `json:"total_ns"`
	DecodeNs   int64     `json:"decode_ns,omitempty"`
	FilterNs   int64     `json:"filter_ns,omitempty"`
	WALNs      int64     `json:"wal_ns,omitempty"`
	FsyncNs    int64     `json:"fsync_ns,omitempty"`
	EncodeNs   int64     `json:"encode_ns,omitempty"`
	RoundSeq   uint64    `json:"round_seq,omitempty"`  // group-commit round that covered this op
	RoundRecs  int       `json:"round_recs,omitempty"` // records committed in that round
	WALSeq     uint64    `json:"wal_seq,omitempty"`    // WAL segment the op appended to
	WALOff     uint64    `json:"wal_off,omitempty"`    // byte offset of the op's first record
	WALEnd     uint64    `json:"wal_end,omitempty"`    // replica apply: end of the applied range
	Keys       int       `json:"keys"`
	KeyBytes   int       `json:"key_bytes"`
	Failed     bool      `json:"failed,omitempty"`
	Sampled    bool      `json:"sampled"`
	Replica    bool      `json:"replica,omitempty"` // replica-side WAL apply span
}

// reqTrace accumulates stage timings for one sampled request. A nil
// *reqTrace is valid everywhere and records nothing, so the store and
// WAL plumbing never branch on "is tracing on" themselves.
type reqTrace struct {
	entry   TraceEntry
	traceID [wire.TraceIDLen]byte
	traced  bool
}

// now returns the stage clock, or the zero Time when tr is nil so the
// untraced path never reads the clock.
func (tr *reqTrace) now() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return time.Now()
}

func (tr *reqTrace) addDecode(t0 time.Time) {
	if tr != nil {
		tr.entry.DecodeNs += time.Since(t0).Nanoseconds()
	}
}

func (tr *reqTrace) addFilter(t0 time.Time) {
	if tr != nil {
		tr.entry.FilterNs += time.Since(t0).Nanoseconds()
	}
}

func (tr *reqTrace) addWAL(t0 time.Time) {
	if tr != nil {
		tr.entry.WALNs += time.Since(t0).Nanoseconds()
	}
}

func (tr *reqTrace) addFsync(d time.Duration) {
	if tr != nil {
		tr.entry.FsyncNs += d.Nanoseconds()
	}
}

// setContext records the propagated trace id and parent span from a
// TRACE envelope. Hex formatting is deferred to finish so the hot path
// only copies bytes.
func (tr *reqTrace) setContext(id [wire.TraceIDLen]byte, parent uint64) {
	if tr != nil {
		tr.traceID = id
		tr.traced = true
		tr.entry.ParentSpan = parent
	}
}

// setNS records the namespace name for an enveloped request.
func (tr *reqTrace) setNS(name []byte) {
	if tr != nil && len(name) != 0 {
		tr.entry.NS = string(name)
	}
}

// setWALPos records where the op's first record landed in the WAL: the
// segment sequence and the byte offset the append started at. This is
// the join key to the replica-apply span covering the same range.
func (tr *reqTrace) setWALPos(seq uint64, off int64) {
	if tr != nil {
		tr.entry.WALSeq = seq
		tr.entry.WALOff = uint64(off)
	}
}

// setRound records the group-commit round that made the op durable and
// how many records shared that round.
func (tr *reqTrace) setRound(seq uint64, recs int) {
	if tr != nil && tr.entry.RoundSeq == 0 {
		tr.entry.RoundSeq = seq
		tr.entry.RoundRecs = recs
	}
}

// traceRing is a fixed-size ring of completed trace entries. Pushes are
// mutex-guarded; only sampled or slow requests push.
type traceRing struct {
	mu    sync.Mutex
	buf   []TraceEntry
	next  int
	total uint64
}

func (r *traceRing) push(e TraceEntry) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// entries returns the ring's contents, newest first.
func (r *traceRing) entries() []TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	if r.total < uint64(n) {
		n = int(r.total)
	}
	out := make([]TraceEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[((r.next-1-i)%len(r.buf)+len(r.buf))%len(r.buf)])
	}
	return out
}

const traceRingSize = 128

// Tracer owns the request-ID counter, the sampling decision, and the
// recent/slow rings. Configure it through Config.TraceSample and
// Config.SlowOp.
type Tracer struct {
	sampleEvery uint64 // trace 1 in N requests; 0 = off
	slowNs      int64  // slow threshold; 0 = off
	log         *slog.Logger

	seq     atomic.Uint64
	recent  traceRing
	slow    traceRing
	traced  traceRing // requests that arrived with a client trace id
	applies traceRing // replica-side WAL apply spans
}

func newTracer(sampleEvery int, slow time.Duration, log *slog.Logger) *Tracer {
	t := &Tracer{
		slowNs: slow.Nanoseconds(),
		log:    log,
	}
	if sampleEvery > 0 {
		t.sampleEvery = uint64(sampleEvery)
	}
	t.recent.buf = make([]TraceEntry, traceRingSize)
	t.slow.buf = make([]TraceEntry, traceRingSize)
	t.traced.buf = make([]TraceEntry, traceRingSize)
	t.applies.buf = make([]TraceEntry, traceRingSize)
	return t
}

// begin assigns the request ID and decides sampling. The returned trace
// is nil for unsampled requests.
func (t *Tracer) begin() (id uint64, tr *reqTrace) {
	id = t.seq.Add(1)
	if t.sampleEvery == 0 || id%t.sampleEvery != 0 {
		return id, nil
	}
	tr = &reqTrace{}
	tr.entry.ID = id
	tr.entry.Start = time.Now()
	tr.entry.Sampled = true
	return id, tr
}

// force upgrades an unsampled request to a full trace. Requests that
// arrive inside a TRACE envelope always record stage detail — the
// client asked for it — independent of the sampling rate; Sampled stays
// false so the recent ring remains a faithful 1-in-N sample.
func (t *Tracer) force(id uint64, tr *reqTrace) *reqTrace {
	if tr != nil {
		return tr
	}
	tr = &reqTrace{}
	tr.entry.ID = id
	tr.entry.Start = time.Now()
	return tr
}

// recordApply pushes one replica-side WAL apply span: the offset range
// [off, off+n) of segment seq was applied to the local filter in d.
// Joined to primary mutation spans by offset containment.
func (t *Tracer) recordApply(seq uint64, off int64, n int, recs int, d time.Duration) {
	t.applies.push(TraceEntry{
		ID:      t.seq.Add(1),
		Op:      "replica_apply",
		Start:   time.Now().Add(-d),
		TotalNs: d.Nanoseconds(),
		WALSeq:  seq,
		WALOff:  uint64(off),
		WALEnd:  uint64(off) + uint64(n),
		Keys:    recs,
		Replica: true,
	})
}

// finish completes one request: sampled entries go to the recent ring;
// entries over the slow threshold go to the slow ring and warn. No-op
// (two branches) for the common unsampled-and-fast case.
func (t *Tracer) finish(id uint64, tr *reqTrace, op byte, keys, keyBytes int, total time.Duration, failed bool) {
	slow := t.slowNs > 0 && total.Nanoseconds() >= t.slowNs
	if tr == nil && !slow {
		return
	}
	var e TraceEntry
	if tr != nil {
		e = tr.entry
		// Encode+write is whatever the measured stages don't account for.
		if rest := total.Nanoseconds() - e.DecodeNs - e.FilterNs - e.WALNs - e.FsyncNs; rest > 0 {
			e.EncodeNs = rest
		}
		if tr.traced {
			e.TraceID = hex.EncodeToString(tr.traceID[:])
		}
	} else {
		e.ID = id
		e.Start = time.Now().Add(-total)
	}
	e.Op = wire.OpNames()[op]
	e.TotalNs = total.Nanoseconds()
	e.Keys = keys
	e.KeyBytes = keyBytes
	e.Failed = failed
	if tr != nil && tr.traced {
		t.traced.push(e)
	}
	if tr != nil && e.Sampled {
		t.recent.push(e)
	}
	if slow {
		t.slow.push(e)
		t.log.Warn("slow request",
			"id", e.ID, "op", e.Op, "total", total,
			"decode_ns", e.DecodeNs, "filter_ns", e.FilterNs,
			"wal_ns", e.WALNs, "fsync_ns", e.FsyncNs, "encode_ns", e.EncodeNs,
			"keys", e.Keys, "key_bytes", e.KeyBytes, "failed", e.Failed)
	}
}

// TraceReport is the JSON document served at /debug/requests.
type TraceReport struct {
	Requests    uint64       `json:"requests"` // IDs assigned so far
	SampleEvery uint64       `json:"sample_every"`
	SlowOpNs    int64        `json:"slow_op_ns"`
	Sampled     uint64       `json:"sampled"`
	Slow        uint64       `json:"slow"`
	Recent      []TraceEntry `json:"recent"`
	SlowRecent  []TraceEntry `json:"slow_recent"`
}

// Report returns the current trace state, newest entries first.
func (t *Tracer) Report() TraceReport {
	rep := TraceReport{
		Requests:    t.seq.Load(),
		SampleEvery: t.sampleEvery,
		SlowOpNs:    t.slowNs,
		Recent:      t.recent.entries(),
		SlowRecent:  t.slow.entries(),
	}
	t.recent.mu.Lock()
	rep.Sampled = t.recent.total
	t.recent.mu.Unlock()
	t.slow.mu.Lock()
	rep.Slow = t.slow.total
	t.slow.mu.Unlock()
	return rep
}

func (t *Tracer) serveHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(t.Report())
}

// TracesReport is the JSON document served at /debug/traces: spans that
// belong to distributed traces. Spans holds requests that arrived with
// a client trace id; ReplicaApplies holds replica-side WAL apply spans
// (joined to primary spans by offset containment). Both follow the same
// fixed-ring discipline as /debug/requests.
type TracesReport struct {
	Requests       uint64       `json:"requests"` // IDs assigned so far
	Traced         uint64       `json:"traced"`   // spans pushed, ever
	Applies        uint64       `json:"applies"`  // apply spans pushed, ever
	Spans          []TraceEntry `json:"spans"`
	ReplicaApplies []TraceEntry `json:"replica_applies"`
}

// TracesReport returns the distributed-tracing rings, newest first.
func (t *Tracer) TracesReport() TracesReport {
	rep := TracesReport{
		Requests:       t.seq.Load(),
		Spans:          t.traced.entries(),
		ReplicaApplies: t.applies.entries(),
	}
	t.traced.mu.Lock()
	rep.Traced = t.traced.total
	t.traced.mu.Unlock()
	t.applies.mu.Lock()
	rep.Applies = t.applies.total
	t.applies.mu.Unlock()
	return rep
}

func (t *Tracer) serveTracesHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(t.TracesReport())
}
