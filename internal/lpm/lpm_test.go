package lpm

import (
	"testing"

	"repro/internal/hashing"
)

func mustTable(t *testing.T, routes int) *Table {
	t.Helper()
	tbl, err := New(Config{ExpectedRoutes: routes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func ip(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero ExpectedRoutes accepted")
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		addr   uint32
		length int
		want   uint32
	}{
		{ip(10, 1, 2, 3), 8, ip(10, 0, 0, 0)},
		{ip(10, 1, 2, 3), 16, ip(10, 1, 0, 0)},
		{ip(10, 1, 2, 3), 24, ip(10, 1, 2, 0)},
		{ip(10, 1, 2, 3), 32, ip(10, 1, 2, 3)},
		{ip(10, 1, 2, 3), 0, 0},
		{ip(255, 255, 255, 255), 1, ip(128, 0, 0, 0)},
	}
	for _, c := range cases {
		if got := mask(c.addr, c.length); got != c.want {
			t.Errorf("mask(%#x, %d) = %#x, want %#x", c.addr, c.length, got, c.want)
		}
	}
}

func TestLongestPrefixWins(t *testing.T) {
	tbl := mustTable(t, 100)
	tbl.Insert(ip(10, 0, 0, 0), 8, 1)
	tbl.Insert(ip(10, 1, 0, 0), 16, 2)
	tbl.Insert(ip(10, 1, 2, 0), 24, 3)
	tbl.Insert(0, 0, 99) // default route

	cases := []struct {
		addr    uint32
		wantHop uint32
		wantLen int
	}{
		{ip(10, 1, 2, 200), 3, 24},
		{ip(10, 1, 9, 1), 2, 16},
		{ip(10, 200, 0, 1), 1, 8},
		{ip(192, 168, 0, 1), 99, 0},
	}
	for _, c := range cases {
		hop, l, err := tbl.Lookup(c.addr)
		if err != nil || hop != c.wantHop || l != c.wantLen {
			t.Errorf("Lookup(%#x) = (%d, %d, %v), want (%d, %d)", c.addr, hop, l, err, c.wantHop, c.wantLen)
		}
		// The unfiltered baseline must agree.
		hop2, l2, err2 := tbl.LookupExactOnly(c.addr)
		if err2 != nil || hop2 != hop || l2 != l {
			t.Errorf("baseline disagrees for %#x", c.addr)
		}
	}
}

func TestNoRoute(t *testing.T) {
	tbl := mustTable(t, 10)
	tbl.Insert(ip(10, 0, 0, 0), 8, 1)
	if _, _, err := tbl.Lookup(ip(192, 168, 1, 1)); err != ErrNoRoute {
		t.Fatalf("expected ErrNoRoute, got %v", err)
	}
}

func TestRouteWithdrawal(t *testing.T) {
	tbl := mustTable(t, 100)
	tbl.Insert(ip(10, 0, 0, 0), 8, 1)
	tbl.Insert(ip(10, 1, 0, 0), 16, 2)
	if hop, _, _ := tbl.Lookup(ip(10, 1, 5, 5)); hop != 2 {
		t.Fatalf("pre-withdrawal hop = %d", hop)
	}
	if err := tbl.Remove(ip(10, 1, 0, 0), 16); err != nil {
		t.Fatal(err)
	}
	hop, l, err := tbl.Lookup(ip(10, 1, 5, 5))
	if err != nil || hop != 1 || l != 8 {
		t.Fatalf("post-withdrawal: (%d, %d, %v), want (1, 8)", hop, l, err)
	}
	if err := tbl.Remove(ip(10, 1, 0, 0), 16); err != ErrNotFound {
		t.Fatalf("double remove: %v", err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestDefaultRouteLifecycle(t *testing.T) {
	tbl := mustTable(t, 10)
	if err := tbl.Remove(0, 0); err != ErrNotFound {
		t.Fatal("removing absent default should fail")
	}
	tbl.Insert(0, 0, 7)
	if hop, l, err := tbl.Lookup(ip(1, 2, 3, 4)); err != nil || hop != 7 || l != 0 {
		t.Fatalf("default lookup: %d %d %v", hop, l, err)
	}
	tbl.Insert(0, 0, 8) // update, not duplicate
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	tbl.Remove(0, 0)
	if _, _, err := tbl.Lookup(ip(1, 2, 3, 4)); err != ErrNoRoute {
		t.Fatal("default survived removal")
	}
}

func TestUpdateDoesNotDuplicate(t *testing.T) {
	tbl := mustTable(t, 10)
	tbl.Insert(ip(10, 0, 0, 0), 8, 1)
	tbl.Insert(ip(10, 0, 0, 0), 8, 2) // next-hop change
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after update", tbl.Len())
	}
	if hop, _, _ := tbl.Lookup(ip(10, 9, 9, 9)); hop != 2 {
		t.Fatalf("hop = %d after update", hop)
	}
}

func TestBadLength(t *testing.T) {
	tbl := mustTable(t, 10)
	if err := tbl.Insert(0, 33, 1); err == nil {
		t.Fatal("length 33 accepted")
	}
	if err := tbl.Remove(0, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestFilterSavesExactProbes(t *testing.T) {
	// A realistic mix of prefix lengths; random traffic mostly misses,
	// and the filters should eliminate the vast majority of exact-table
	// consultations compared to the unfiltered baseline.
	tbl := mustTable(t, 4000)
	rng := hashing.NewRNG(5)
	lengths := []int{8, 16, 20, 24, 28, 32}
	for i := 0; i < 4000; i++ {
		l := lengths[rng.Intn(len(lengths))]
		tbl.Insert(uint32(rng.Uint64()), l, uint32(i))
	}
	tbl.Insert(0, 0, 999)

	const lookups = 20000
	addrs := make([]uint32, lookups)
	for i := range addrs {
		addrs[i] = uint32(rng.Uint64())
	}

	tbl.ResetStats()
	for _, a := range addrs {
		if _, _, err := tbl.Lookup(a); err != nil {
			t.Fatal(err)
		}
	}
	filteredExact := tbl.ExactProbes

	tbl.ResetStats()
	for _, a := range addrs {
		if _, _, err := tbl.LookupExactOnly(a); err != nil {
			t.Fatal(err)
		}
	}
	baselineExact := tbl.ExactProbes

	if filteredExact*4 >= baselineExact {
		t.Fatalf("filters saved too little: %d exact probes vs baseline %d",
			filteredExact, baselineExact)
	}
}

func TestFilteredAndExactAlwaysAgree(t *testing.T) {
	tbl := mustTable(t, 1000)
	rng := hashing.NewRNG(9)
	for i := 0; i < 1000; i++ {
		tbl.Insert(uint32(rng.Uint64()), 8+rng.Intn(25), uint32(i))
	}
	for i := 0; i < 5000; i++ {
		addr := uint32(rng.Uint64())
		h1, l1, e1 := tbl.Lookup(addr)
		h2, l2, e2 := tbl.LookupExactOnly(addr)
		if h1 != h2 || l1 != l2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("divergence at %#x: (%d,%d,%v) vs (%d,%d,%v)", addr, h1, l1, e1, h2, l2, e2)
		}
	}
}
