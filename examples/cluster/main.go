// cluster is a self-contained walkthrough of the mpcbf cluster layer:
// it starts two primaries and one WAL-shipping replica in-process (no
// external daemons needed), routes a keyspace across them with the
// rendezvous-hashing cluster client, waits for the replica to converge,
// and shows the read-only redirect plus a byte-for-byte DUMP comparison
// between the replica and its primary.
//
//	go run ./examples/cluster
//
// The same topology runs as separate daemons with:
//
//	mpcbfd -addr :7070 -dir data/p0
//	mpcbfd -addr :7080 -dir data/p1
//	mpcbfd -addr :7170 -dir data/r0 -replicate-from 127.0.0.1:7070
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"time"

	mpcbf "repro"
	"repro/client"
	"repro/cluster"
	"repro/server"
)

func main() {
	// --- two primaries, each its own key-space shard -------------------
	p0, p0addr := startNode(server.StoreOptions{}, server.Config{})
	p1, p1addr := startNode(server.StoreOptions{}, server.Config{})

	// --- a replica mirroring primary 0 ---------------------------------
	rstore, raddr := startNode(
		server.StoreOptions{Replica: true},
		server.Config{ReadOnly: true, PrimaryAddr: p0addr},
	)
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		PrimaryAddr: p0addr,
		Store:       rstore,
		Log:         discardLog(),
	})
	check("replica", err)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rep.Run(ctx)

	// --- the cluster client over the whole topology --------------------
	cc, err := cluster.NewClient(cluster.ClientConfig{Nodes: []cluster.Node{
		{Primary: p0addr, Replicas: []string{raddr}},
		{Primary: p1addr},
	}})
	check("cluster client", err)
	defer cc.Close()

	keys := make([][]byte, 2000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("flow-%05d", i))
	}
	check("insert", cc.InsertBatch(keys))
	n0, n1 := p0.Len(), p1.Len()
	fmt.Printf("rendezvous routing split %d keys: %d on %s, %d on %s\n",
		len(keys), n0, p0addr, n1, p1addr)

	hits, err := cc.ContainsBatch(keys)
	check("contains", err)
	missing := 0
	for _, ok := range hits {
		if !ok {
			missing++
		}
	}
	total, err := cc.Len()
	check("len", err)
	fmt.Printf("cluster answers every key (%d missing), Len sums to %d\n", missing, total)

	// --- replica convergence -------------------------------------------
	for rstore.Len() != p0.Len() {
		time.Sleep(10 * time.Millisecond)
	}
	st := rep.Stats()
	fmt.Printf("replica caught up: %d elements, %d stream frames, lag %d bytes\n",
		rstore.Len(), st.Frames, st.LagBytes)

	// A direct client sees the replica reject writes with a redirect...
	rc, err := client.Dial(raddr)
	check("dial replica", err)
	defer rc.Close()
	var ro *client.ReadOnlyError
	if err := rc.Insert([]byte("nope")); errors.As(err, &ro) {
		fmt.Printf("replica refused a write, redirecting to %s\n", ro.Primary)
	}

	// ...and DUMP proves the mirror is exact: the replica's filter is
	// byte-identical to its primary's.
	pc, err := client.Dial(p0addr)
	check("dial primary", err)
	defer pc.Close()
	pdump, err := pc.Dump()
	check("dump primary", err)
	rdump, err := rc.Dump()
	check("dump replica", err)
	fmt.Printf("DUMP: primary %d bytes, replica %d bytes, identical=%v\n",
		len(pdump), len(rdump), bytes.Equal(pdump, rdump))
}

// startNode opens a store in a temp dir with defaults overlaid on opts
// and serves it on a loopback port.
func startNode(opts server.StoreOptions, cfg server.Config) (*server.Store, string) {
	dir, err := os.MkdirTemp("", "mpcbf-cluster-example-*")
	check("tempdir", err)
	opts.Dir = dir
	opts.Filter = mpcbf.Options{MemoryBits: 1 << 20, ExpectedItems: 20000, Seed: 7}
	opts.Shards = 4
	opts.Sync = server.SyncNever // demo data, speed over durability
	opts.Log = discardLog()
	store, err := server.OpenStore(opts)
	check("open store", err)

	cfg.HeartbeatEvery = 100 * time.Millisecond
	cfg.Log = discardLog()
	srv := server.New(store, cfg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check("listen", err)
	go srv.Serve(ln)
	return store, ln.Addr().String()
}

// discardLog silences node logging so the example's stdout stays the
// narrative. (slog.DiscardHandler is go1.24; this repo targets go1.22.)
func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func check(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "cluster example: %s: %v\n", what, err)
		os.Exit(1)
	}
}
