package sim

import (
	"fmt"
	"time"

	"repro/internal/cbf"
	"repro/internal/core"
	"repro/internal/dlcbf"
	"repro/internal/hashing"
	"repro/internal/memmodel"
	"repro/internal/mlccbf"
	"repro/internal/rcbf"
	"repro/internal/spectral"
	"repro/internal/vicbf"
)

// Ext1 is an extension beyond the paper's evaluation: the related-work
// structures it cites but does not measure — dlCBF (Bonomi et al. [17]),
// VI-CBF (Rottenstreich et al. [23]) and RCBF (Hua et al. [18]) —
// compared against CBF, PCBF and MPCBF on the synthetic string workload.
// Reported per structure: actual memory, measured fpr and average query
// accesses.
func Ext1(o Options) (*Table, error) {
	names := []string{"CBF", "PCBF-1", "MPCBF-1", "MPCBF-2", "dlCBF", "VI-CBF", "RCBF"}
	t := &Table{
		ID:    "ext1",
		Title: "Extension: related-work structures at equal memory budget (k=3 where applicable)",
		Header: []string{"budget(Mb)", "structure", "mem used(Mb)", "fpr",
			"query accesses", "query bandwidth(bits)"},
		Notes: []string{
			"dlCBF, VI-CBF and RCBF improve the CBF's accuracy but keep d (resp. k, 1+scan)",
			"memory accesses; MPCBF combines the accuracy win with one access (the paper's",
			"positioning). dlCBF rounds its bucket count to a power of two, and RCBF sizes",
			"itself by population (fingerprint storage, not a counter array) — the 'mem",
			"used' column shows each structure's actual footprint.",
		},
	}
	for _, mb := range []float64{4.0, 6.0, 8.0} {
		memBits := o.memBits(mb)
		env, err := newSynthEnv(o, memBits, 3, []string{"CBF", "PCBF-1", "MPCBF-1", "MPCBF-2"})
		if err != nil {
			return nil, err
		}
		// Extend the environment with the related-work structures.
		ext := map[string]countingFilter{}
		dl, err := dlcbf.FromMemory(memBits, uint32(o.Seed))
		if err != nil {
			return nil, err
		}
		ext["dlCBF"] = dl
		vi, err := vicbf.FromMemory(memBits, 3, uint32(o.Seed))
		if err != nil {
			return nil, err
		}
		ext["VI-CBF"] = vi
		rc, err := rcbf.ForPopulation(len(env.workload.Test), uint32(o.Seed))
		if err != nil {
			return nil, err
		}
		ext["RCBF"] = rc
		for name, f := range ext {
			for _, key := range env.workload.Test {
				if err := f.Insert(key); err != nil {
					return nil, fmt.Errorf("%s insert: %w", name, err)
				}
			}
			for _, key := range env.workload.DeleteChurn {
				if err := f.Delete(key); err != nil {
					return nil, fmt.Errorf("%s churn delete: %w", name, err)
				}
			}
			for _, key := range env.workload.InsertChurn {
				if err := f.Insert(key); err != nil {
					return nil, fmt.Errorf("%s churn insert: %w", name, err)
				}
			}
			env.filters[name] = f
		}
		for _, name := range names {
			fpr := env.measureFPR(name)
			acc, bits := measureQueryOverhead(env, name)
			t.Rows = append(t.Rows, []string{
				fmtMb(memBits), name, fmtMb(env.filters[name].MemoryBits()), fmtRate(fpr),
				fmt.Sprintf("%.1f", acc), fmt.Sprintf("%.0f", bits),
			})
		}
	}
	return t, nil
}

// Static checks: the extension structures satisfy the harness interface.
var (
	_ countingFilter = (*dlcbf.Filter)(nil)
	_ countingFilter = (*vicbf.Filter)(nil)
	_ countingFilter = (*rcbf.Filter)(nil)
)

// Ext2 is a second extension: multiplicity-estimation accuracy of the
// counting structures on a Zipf-frequency stream — the standard CBF and
// MPCBF (both min-selection over their counters) against the Spectral
// Bloom Filter of Cohen and Matias [12] with and without its Minimal
// Increase heuristic, at equal memory. Reported: mean over-count per key
// and the fraction of keys estimated exactly.
func Ext2(o Options) (*Table, error) {
	t := &Table{
		ID:     "ext2",
		Title:  "Extension: multiplicity estimation on a Zipf stream (equal memory)",
		Header: []string{"mem(Mb)", "structure", "mean over-count", "exact keys", "saturated", "supports delete"},
		Notes: []string{
			"Min-selection never undercounts, so error = mean(estimate - truth), aggregated",
			"over keys with true count <= 12 (inside every structure's counter range) whose",
			"estimate is not saturated; the saturated column is the fraction of those keys",
			"whose structure can only answer 'many' (CBF's 4-bit ceiling, MPCBF's frozen",
			"words). Zipf streams are MPCBF's worst case — hot keys exhaust whole words —",
			"which is why the paper positions it for membership over dynamic sets, not",
			"frequency estimation. Spectral/minimal-increase is the accuracy ceiling but",
			"gives up deletion.",
		},
	}
	nKeys := o.scaled(40000)
	inserts := o.scaled(400000)
	rng := hashing.NewRNG(o.Seed + 77)
	universe := make([][]byte, nKeys)
	for i := range universe {
		universe[i] = []byte(fmt.Sprintf("key-%d", i))
	}
	// Zipf-ish frequencies: rank r drawn with weight 1/(r+1).
	stream := make([][]byte, inserts)
	truth := make(map[string]int, nKeys)
	for i := range stream {
		r := int(float64(nKeys) * rng.Float64() * rng.Float64()) // skewed
		stream[i] = universe[r]
		truth[string(universe[r])]++
	}

	for _, mb := range []float64{2.0, 4.0} {
		memBits := o.memBits(mb)

		type estimator struct {
			name    string
			insert  func([]byte) error
			observe func([]byte) int
			satAt   int // estimates >= satAt mean "many" (0: never)
			delOK   string
		}
		var ests []estimator

		std, err := cbf.FromMemory(memBits, 3, uint32(o.Seed))
		if err != nil {
			return nil, err
		}
		ests = append(ests, estimator{"CBF", std.Insert,
			func(k []byte) int { return int(std.CountOf(k)) }, 15, "yes"})

		// Multiplicity streams are sized by total increments, not distinct
		// keys: leave each word capacity for 1.5x the average increment
		// load (inserts*k/l), clamped to keep a useful first level.
		l := memBits / 64
		slack := inserts*3*3/(2*l) + 1
		b1 := 64 - slack
		if b1 < 8 {
			b1 = 8
		}
		mp, err := core.New(core.Config{
			MemoryBits: memBits, K: 3, B1: b1,
			Seed: uint32(o.Seed), Overflow: core.OverflowSaturate,
		})
		if err != nil {
			return nil, err
		}
		ests = append(ests, estimator{"MPCBF-1", mp.Insert, mp.CountOf, inserts, "yes"})

		sp, err := spectral.New(memBits/32, 3, false, uint32(o.Seed))
		if err != nil {
			return nil, err
		}
		ests = append(ests, estimator{"Spectral", func(k []byte) error { sp.Insert(k); return nil }, sp.Estimate, 0, "yes"})

		smi, err := spectral.New(memBits/32, 3, true, uint32(o.Seed))
		if err != nil {
			return nil, err
		}
		ests = append(ests, estimator{"Spectral-MI", func(k []byte) error { smi.Insert(k); return nil }, smi.Estimate, 0, "no"})

		for _, e := range ests {
			for _, k := range stream {
				if err := e.insert(k); err != nil {
					return nil, fmt.Errorf("%s insert: %w", e.name, err)
				}
			}
			var over float64
			exact, measured, saturated := 0, 0, 0
			for k, n := range truth {
				if n > 12 {
					continue // outside the 4-bit-comparable regime
				}
				est := e.observe([]byte(k))
				if e.satAt > 0 && est >= e.satAt {
					// A saturated answer ('many'): 4-bit ceiling or a
					// frozen MPCBF word.
					saturated++
					continue
				}
				measured++
				if est == n {
					exact++
				}
				if d := est - n; d > 0 {
					over += float64(d)
				}
			}
			if measured == 0 {
				measured = 1
			}
			t.Rows = append(t.Rows, []string{
				fmtMb(memBits), e.name,
				fmt.Sprintf("%.3f", over/float64(measured)),
				fmt.Sprintf("%.1f%%", 100*float64(exact)/float64(measured)),
				fmt.Sprintf("%.1f%%", 100*float64(saturated)/float64(measured+saturated)),
				e.delOK,
			})
		}
	}
	return t, nil
}

// Ext3 is the hierarchy-partitioning ablation behind the paper's core
// design decision: MPCBF's per-word hierarchy against a global multilayer
// hierarchy in the style of ML-CCBF [19] (from which HCBF borrows its
// counter coding). Both share the same aggregate first-level width and k,
// so their false positive rates coincide; what differs is the update
// cost — a global hierarchy shifts an unbounded layer tail per increment,
// a word-local one shifts at most w bits.
func Ext3(o Options) (*Table, error) {
	t := &Table{
		ID:    "ext3",
		Title: "Extension/ablation: per-word hierarchy (MPCBF) vs global hierarchy (ML-CCBF style)",
		Header: []string{"n", "structure", "fpr", "insert ns/op", "query ns/op",
			"shifted bits/insert", "memory bits"},
		Notes: []string{
			"Equal aggregate first-level width and k=3. The global hierarchy's",
			"per-insert shift cost grows with n (its layers span the whole filter),",
			"while MPCBF's is bounded by the word size — the reason Section III",
			"partitions the counter vector before layering it. The global layout's",
			"slightly lower fpr is the partitioning penalty (whole-range hashing vs",
			"per-word, cf. Fig. 2) and its smaller memory is the absent per-word",
			"slack: both are what MPCBF trades for O(w) updates and 1-access queries.",
		},
	}
	for _, scaleN := range []int{20000, 40000} {
		n := o.scaled(scaleN)
		// MPCBF geometry first; ML-CCBF copies its aggregate first level.
		memBits := 16 * n // comfortable load
		mp, err := core.New(core.Config{
			MemoryBits: memBits, ExpectedN: n, K: 3,
			Seed: uint32(o.Seed), Overflow: core.OverflowSaturate,
		})
		if err != nil {
			return nil, err
		}
		ml, err := mlccbf.New(mp.L()*mp.B1(), 3, uint32(o.Seed))
		if err != nil {
			return nil, err
		}

		in := make([][]byte, n)
		for i := range in {
			in[i] = []byte(fmt.Sprintf("e3-%d", i))
		}
		probes := make([][]byte, 4*n)
		for i := range probes {
			probes[i] = []byte(fmt.Sprintf("e3out-%d", i))
		}

		type target struct {
			name     string
			insert   func([]byte) error
			contains func([]byte) bool
			shifted  func() int64
			memory   func() int
		}
		targets := []target{
			{"MPCBF-1", mp.Insert, mp.Contains,
				func() int64 { return -1 }, mp.MemoryBits},
			{"ML-CCBF", ml.Insert, ml.Contains,
				func() int64 { return ml.ShiftedBits }, ml.MemoryBits},
		}
		for _, tg := range targets {
			start := time.Now()
			for _, k := range in {
				if err := tg.insert(k); err != nil {
					return nil, fmt.Errorf("%s insert: %w", tg.name, err)
				}
			}
			insNs := float64(time.Since(start).Nanoseconds()) / float64(n)

			start = time.Now()
			fp := 0
			for _, k := range probes {
				if tg.contains(k) {
					fp++
				}
			}
			qryNs := float64(time.Since(start).Nanoseconds()) / float64(len(probes))

			shift := "-"
			if s := tg.shifted(); s >= 0 {
				shift = fmt.Sprintf("%.0f", float64(s)/float64(n))
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n), tg.name,
				fmtRate(float64(fp) / float64(len(probes))),
				fmt.Sprintf("%.0f", insNs),
				fmt.Sprintf("%.0f", qryNs),
				shift,
				fmt.Sprintf("%d", tg.memory()),
			})
		}
	}
	return t, nil
}

// Ext4 projects the measured query-access statistics onto hardware memory
// models (internal/memmodel), quantifying the paper's Fig. 8 discussion:
// software wall time is hash-dominated, but on a pipelined FPGA/ASIC with
// parallel hash units and on-chip SRAM the ordering follows memory
// accesses, where MPCBF-1 is ~2-3x faster than the CBF.
func Ext4(o Options) (*Table, error) {
	t := &Table{
		ID:     "ext4",
		Title:  "Extension: projected query throughput under hardware memory models (k=3)",
		Header: []string{"structure", "accesses", "hash fns", "technology", "latency(ns)", "Mops"},
		Notes: []string{
			"Access counts are measured over the query mix; hash-function counts follow",
			"the paper (CBF: k; PCBF-g/MPCBF-g: g word hashes + k slot hashes).",
			"Software models add serial hash cost (hash-bound, CBF competitive);",
			"the pipelined SRAM model is access-bound, the paper's target regime.",
		},
	}
	memBits := o.memBits(tableMemMb)
	env, err := newSynthEnv(o, memBits, 3, structureNames)
	if err != nil {
		return nil, err
	}
	hashFns := map[string]int{
		"CBF": 3, "PCBF-1": 4, "PCBF-2": 5, "MPCBF-1": 4, "MPCBF-2": 5,
	}
	techs := []memmodel.Technology{
		memmodel.SoftwareCache, memmodel.SoftwareDRAM, memmodel.HardwareSRAM,
	}
	for _, name := range structureNames {
		acc, _ := measureQueryOverhead(env, name)
		for _, tech := range techs {
			// Same formula as memmodel.OpLatencyNs with the measured
			// fractional access average.
			mem := acc * tech.AccessNs
			var latency float64
			if tech.Pipelined {
				latency = mem
				if tech.HashNs > latency {
					latency = tech.HashNs
				}
			} else {
				latency = mem + float64(hashFns[name])*tech.HashNs
			}
			t.Rows = append(t.Rows, []string{
				name,
				fmt.Sprintf("%.1f", acc),
				fmt.Sprintf("%d", hashFns[name]),
				tech.Name,
				fmt.Sprintf("%.1f", latency),
				fmt.Sprintf("%.0f", memmodel.ThroughputMops(latency)),
			})
		}
	}
	return t, nil
}
