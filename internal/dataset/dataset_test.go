package dataset

import (
	"bytes"
	"testing"
)

func TestStringWorkloadShape(t *testing.T) {
	cfg := DefaultStringConfig(0.01, 1) // 1K test, 10K queries, 200 churn
	w, err := NewStringWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Test) != 1000 || len(w.Queries) != 10000 ||
		len(w.DeleteChurn) != 200 || len(w.InsertChurn) != 200 {
		t.Fatalf("sizes: %d %d %d %d", len(w.Test), len(w.Queries),
			len(w.DeleteChurn), len(w.InsertChurn))
	}
	for _, s := range w.Test {
		if len(s) != StringLen {
			t.Fatalf("test string %q has length %d", s, len(s))
		}
		for _, c := range s {
			if !((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
				t.Fatalf("character %q outside alphabet", c)
			}
		}
	}
}

func TestStringWorkloadUniqueness(t *testing.T) {
	w, err := NewStringWorkload(DefaultStringConfig(0.02, 2))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, s := range w.Test {
		if seen[string(s)] {
			t.Fatalf("duplicate test string %q", s)
		}
		seen[string(s)] = true
	}
	// Insert churn must be disjoint from the test set.
	for _, s := range w.InsertChurn {
		if seen[string(s)] {
			t.Fatalf("churn string %q collides with test set", s)
		}
	}
	// Delete churn must be a subset of the test set, without duplicates.
	del := make(map[string]bool)
	for _, s := range w.DeleteChurn {
		if !seen[string(s)] {
			t.Fatalf("delete churn %q not in test set", s)
		}
		if del[string(s)] {
			t.Fatalf("duplicate delete churn %q", s)
		}
		del[string(s)] = true
	}
}

func TestStringWorkloadMemberFraction(t *testing.T) {
	w, err := NewStringWorkload(DefaultStringConfig(0.05, 3))
	if err != nil {
		t.Fatal(err)
	}
	members := make(map[string]bool, len(w.Test))
	for _, s := range w.Test {
		members[string(s)] = true
	}
	hit := 0
	for _, q := range w.Queries {
		if members[string(q)] {
			hit++
		}
	}
	frac := float64(hit) / float64(len(w.Queries))
	if frac < 0.77 || frac > 0.83 {
		t.Fatalf("member fraction %.3f, want ~0.80", frac)
	}
}

func TestStringWorkloadDeterminism(t *testing.T) {
	a, _ := NewStringWorkload(DefaultStringConfig(0.01, 7))
	b, _ := NewStringWorkload(DefaultStringConfig(0.01, 7))
	for i := range a.Test {
		if !bytes.Equal(a.Test[i], b.Test[i]) {
			t.Fatal("same-seed workloads differ")
		}
	}
	c, _ := NewStringWorkload(DefaultStringConfig(0.01, 8))
	if bytes.Equal(a.Test[0], c.Test[0]) && bytes.Equal(a.Test[1], c.Test[1]) {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestStringWorkloadValidation(t *testing.T) {
	if _, err := NewStringWorkload(StringConfig{TestSize: 0, QuerySize: 1}); err == nil {
		t.Error("zero test size accepted")
	}
	if _, err := NewStringWorkload(StringConfig{TestSize: 10, QuerySize: 10, MemberFraction: 1.5}); err == nil {
		t.Error("bad member fraction accepted")
	}
	if _, err := NewStringWorkload(StringConfig{TestSize: 10, QuerySize: 10, ChurnSize: 20}); err == nil {
		t.Error("churn > test accepted")
	}
}

func TestNonMembersDisjoint(t *testing.T) {
	w, _ := NewStringWorkload(DefaultStringConfig(0.01, 4))
	members := make(map[string]bool)
	for _, s := range w.Test {
		members[string(s)] = true
	}
	for _, s := range w.InsertChurn {
		members[string(s)] = true
	}
	for _, s := range w.NonMembers(5000, 99) {
		if members[string(s)] {
			t.Fatalf("NonMembers returned member %q", s)
		}
	}
}

func TestTraceShape(t *testing.T) {
	tr, err := NewTrace(DefaultTraceConfig(0.002, 1)) // ~584 flows, ~11K packets
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Flows) != 584 {
		t.Fatalf("unique flows = %d", len(tr.Flows))
	}
	if len(tr.Packets) != 11171 {
		t.Fatalf("packets = %d", len(tr.Packets))
	}
	// Every flow appears at least once; totals add up.
	counts := make(map[Flow]int)
	for _, p := range tr.Packets {
		counts[p]++
	}
	if len(counts) != len(tr.Flows) {
		t.Fatalf("packet stream covers %d flows, want %d", len(counts), len(tr.Flows))
	}
	// Heavy tail: the most common flow should dwarf the median.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 20 {
		t.Fatalf("flow sizes not skewed: max = %d", max)
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(TraceConfig{UniqueFlows: 10, TotalPackets: 5, ZipfS: 1}); err == nil {
		t.Error("packets < flows accepted")
	}
	if _, err := NewTrace(TraceConfig{UniqueFlows: 10, TotalPackets: 20, ZipfS: 0}); err == nil {
		t.Error("zipf 0 accepted")
	}
}

func TestTraceSampleAndFresh(t *testing.T) {
	tr, _ := NewTrace(TraceConfig{UniqueFlows: 500, TotalPackets: 2000, ZipfS: 1, Seed: 2})
	sample, err := tr.SampleFlows(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	pop := make(map[Flow]bool)
	for _, f := range tr.Flows {
		pop[f] = true
	}
	seen := make(map[Flow]bool)
	for _, f := range sample {
		if !pop[f] {
			t.Fatal("sampled flow outside population")
		}
		if seen[f] {
			t.Fatal("duplicate in sample")
		}
		seen[f] = true
	}
	if _, err := tr.SampleFlows(501, 3); err == nil {
		t.Error("oversample accepted")
	}
	for _, f := range tr.FreshFlows(200, 4) {
		if pop[f] {
			t.Fatal("fresh flow collides with population")
		}
	}
}

func TestFlowKey(t *testing.T) {
	f := Flow{Src: 0x01020304, Dst: 0x05060708}
	if !bytes.Equal(f.Key(), []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("Key() = %v", f.Key())
	}
}

func TestJoinDatasetShape(t *testing.T) {
	ds, err := NewJoinDataset(JoinConfig{Patents: 1000, Citations: 20000, MatchFraction: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Patents) != 1000 || len(ds.Citations) != 20000 {
		t.Fatalf("sizes: %d %d", len(ds.Patents), len(ds.Citations))
	}
	// Verify Matching agrees with an exact recount.
	keys := make(map[uint32]bool)
	for _, p := range ds.Patents {
		keys[p.ID] = true
	}
	matches := 0
	for _, c := range ds.Citations {
		if keys[c.Cited] {
			matches++
		}
	}
	if matches != ds.Matching {
		t.Fatalf("Matching = %d, recount %d", ds.Matching, matches)
	}
	frac := float64(matches) / float64(len(ds.Citations))
	if frac < 0.04 || frac > 0.06 {
		t.Fatalf("match fraction %.3f, want ~0.05", frac)
	}
}

func TestJoinDatasetValidation(t *testing.T) {
	if _, err := NewJoinDataset(JoinConfig{Patents: 0, Citations: 10}); err == nil {
		t.Error("zero patents accepted")
	}
	if _, err := NewJoinDataset(JoinConfig{Patents: 10, Citations: 10, MatchFraction: -0.1}); err == nil {
		t.Error("negative match fraction accepted")
	}
}

func TestPatentKey(t *testing.T) {
	if string(PatentKey(12345)) != "12345" {
		t.Fatalf("PatentKey = %q", PatentKey(12345))
	}
}

func TestDefaultConfigsScale(t *testing.T) {
	c := DefaultStringConfig(1.0, 0)
	if c.TestSize != 100000 || c.QuerySize != 1000000 || c.ChurnSize != 20000 {
		t.Fatalf("paper string config wrong: %+v", c)
	}
	tc := DefaultTraceConfig(1.0, 0)
	if tc.UniqueFlows != 292363 || tc.TotalPackets != 5585633 {
		t.Fatalf("paper trace config wrong: %+v", tc)
	}
	jc := DefaultJoinConfig(1.0, 0)
	if jc.Patents != 71661 || jc.Citations != 16522438 {
		t.Fatalf("paper join config wrong: %+v", jc)
	}
}
