package mpcbf

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// legacyShardedMarshal reproduces the version-1 sharded wire format
// ([nShards u32][count u64][shards...]) that stored no magic, version, or
// shard-selection seed, so compatibility tests can exercise old blobs
// without keeping fixture files around.
func legacyShardedMarshal(t *testing.T, s *Sharded) []byte {
	t.Helper()
	out := make([]byte, 12)
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(s.shards)))
	binary.LittleEndian.PutUint64(out[4:12], uint64(s.count.Load()))
	for i := range s.shards {
		blob, err := s.shards[i].f.MarshalBinary()
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		var size [4]byte
		binary.LittleEndian.PutUint32(size[:], uint32(len(blob)))
		out = append(out, size[:]...)
		out = append(out, blob...)
	}
	return out
}

func newPopulatedSharded(t *testing.T, seed uint32) (*Sharded, [][]byte) {
	t.Helper()
	s, err := NewSharded(Options{MemoryBits: 1 << 19, ExpectedItems: 4000, Seed: seed}, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := apiKeys("roundtrip", 4000)
	if err := s.InsertBatch(keys, 0); err != nil {
		t.Fatal(err)
	}
	// A few duplicates so EstimateCount has multiplicity to preserve.
	for _, k := range keys[:16] {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	return s, keys
}

// assertShardedEqual checks the observable state UnmarshalSharded must
// preserve: Len, membership, and multiplicity estimates.
func assertShardedEqual(t *testing.T, want, got *Sharded, keys [][]byte) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	if got.Shards() != want.Shards() {
		t.Fatalf("Shards = %d, want %d", got.Shards(), want.Shards())
	}
	if got.Seed() != want.Seed() {
		t.Fatalf("Seed = %d, want %d", got.Seed(), want.Seed())
	}
	for _, k := range keys {
		if !got.Contains(k) {
			t.Fatalf("false negative after round trip: %q", k)
		}
		if w, g := want.EstimateCount(k), got.EstimateCount(k); g != w {
			t.Fatalf("EstimateCount(%q) = %d, want %d", k, g, w)
		}
	}
}

func TestShardedMarshalV2SelfDescribing(t *testing.T) {
	s, keys := newPopulatedSharded(t, 77)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The current format needs no out-of-band seed...
	g, err := UnmarshalSharded(data)
	if err != nil {
		t.Fatal(err)
	}
	assertShardedEqual(t, s, g, keys)
	// ...and ignores a stale legacy seed argument rather than mis-keying
	// the shard-selection hash.
	g2, err := UnmarshalSharded(data, 99999)
	if err != nil {
		t.Fatal(err)
	}
	assertShardedEqual(t, s, g2, keys)
	// The clone must route new keys identically to the original (the
	// restored seed drives shard selection).
	extra := apiKeys("post-restore", 500)
	if err := g.InsertBatch(extra, 0); err != nil {
		t.Fatal(err)
	}
	for _, k := range extra {
		if !g.Contains(k) {
			t.Fatalf("false negative on post-restore insert: %q", k)
		}
	}
}

func TestShardedMarshalLegacyCompat(t *testing.T) {
	s, keys := newPopulatedSharded(t, 123)
	old := legacyShardedMarshal(t, s)
	g, err := UnmarshalSharded(old, 123)
	if err != nil {
		t.Fatal(err)
	}
	assertShardedEqual(t, s, g, keys)
	// Without the seed a legacy blob is rejected, not silently mis-keyed.
	if _, err := UnmarshalSharded(old); err == nil ||
		!strings.Contains(err.Error(), "legacy") {
		t.Fatalf("legacy blob without seed: err = %v", err)
	}
	// A legacy load re-marshals into the current format and stays equal.
	again, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again[0:4], []byte{0x53, 0x43, 0x50, 0x4D}) {
		t.Fatalf("re-marshal did not upgrade to v2 magic: % x", again[0:4])
	}
	g2, err := UnmarshalSharded(again)
	if err != nil {
		t.Fatal(err)
	}
	assertShardedEqual(t, s, g2, keys)
}

func TestShardedUnmarshalErrorPaths(t *testing.T) {
	s, _ := newPopulatedSharded(t, 5)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(mutate func([]byte)) []byte {
		c := append([]byte(nil), data...)
		mutate(c)
		return c
	}
	cases := map[string][]byte{
		"empty":            {},
		"magic only":       data[:4],
		"header truncated": data[:20],
		"body truncated":   data[:len(data)/2],
		"trailing bytes":   append(append([]byte(nil), data...), 0xFF),
		"future version": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[4:8], 99)
		}),
		"zero shards": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[12:16], 0)
		}),
		"absurd shard count": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[12:16], 1<<24)
		}),
		"negative count": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint64(c[16:24], 1<<63)
		}),
		"oversized shard size": corrupt(func(c []byte) {
			binary.LittleEndian.PutUint32(c[24:28], 1<<30)
		}),
		"corrupt shard magic": corrupt(func(c []byte) {
			c[28] ^= 0xFF // first byte of shard 0's core header
		}),
	}
	for name, bad := range cases {
		if _, err := UnmarshalSharded(bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Legacy error paths: truncation inside the shard table.
	old := legacyShardedMarshal(t, s)
	for name, bad := range map[string][]byte{
		"legacy body truncated": old[:len(old)/3],
		"legacy trailing":       append(append([]byte(nil), old...), 7),
	} {
		if _, err := UnmarshalSharded(bad, 5); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestShardedDeleteBatch(t *testing.T) {
	s, err := NewSharded(Options{MemoryBits: 1 << 19, ExpectedItems: 4000, Seed: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := apiKeys("db", 3000)
	if err := s.InsertBatch(keys, 0); err != nil {
		t.Fatal(err)
	}
	// Clean batch of present keys: no error, every flag set, survivors
	// keep answering positive (deleting present keys cannot produce false
	// negatives — shared counters stay >= 1).
	ok, err := s.DeleteBatch(keys[:2000], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != 2000 {
		t.Fatalf("result length %d, want 2000", len(ok))
	}
	for i, v := range ok {
		if !v {
			t.Fatalf("present key %d not deleted", i)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	for _, k := range keys[2000:] {
		if !s.Contains(k) {
			t.Fatalf("false negative on surviving key %q", k)
		}
	}
	// Mixed batch with absent keys: the absent ones fail individually
	// (joined error, flag false) without derailing the present ones, and
	// Len only moves by the successful deletes.
	absent := apiKeys("never-inserted", 100)
	mixed := append(append([][]byte(nil), keys[2000:]...), absent...)
	ok, err = s.DeleteBatch(mixed, 2)
	if err == nil {
		t.Fatal("expected joined errors for absent keys")
	}
	deleted := 0
	for i := 0; i < 1000; i++ {
		if ok[i] {
			deleted++
		} else {
			t.Fatalf("present key %d not deleted", i)
		}
	}
	// Absent keys may occasionally "succeed" as filter false positives;
	// just require that Len matches the flags exactly.
	for i := 1000; i < len(mixed); i++ {
		if ok[i] {
			deleted++
		}
	}
	if got := 1000 - deleted; s.Len() != got {
		t.Fatalf("Len = %d, want %d (flags and count must agree)", s.Len(), got)
	}
}
