package hashing

import "math/bits"

// SplitMix64 is the finalizer of the splitmix64 generator, used both as a
// standalone mixer for derived hashes and to seed xoshiro streams.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// RNG is a xoshiro256** pseudo-random generator. Every stochastic component
// of the repository (dataset synthesis, workload shuffling) draws from a
// seeded RNG so that experiments are reproducible bit-for-bit.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	var r RNG
	x := seed
	for i := range r.s {
		x = SplitMix64(x)
		r.s[i] = x
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return &r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("hashing: Intn requires positive n")
	}
	return Reduce(r.Uint64(), n)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Shuffle randomizes the order of n elements via the swap callback.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork returns an independent generator derived from r's stream, for
// parallel workload synthesis.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
