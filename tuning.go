package mpcbf

import "repro/internal/analytic"

// TuneK returns the number of hash functions minimizing the analytic false
// positive rate of an MPCBF with the given geometry (brute-force search,
// as in the paper's Fig. 9), together with that rate. Unlike the standard
// CBF — whose optimum grows with memory — MPCBF's optimal k is nearly
// constant (≈3 for g=1, 4-5 for g=2).
func TuneK(expectedItems, memoryBits, memoryAccesses int) (k int, fpr float64) {
	g := memoryAccesses
	if g <= 0 {
		g = 1
	}
	return analytic.OptimalKMPCBF(expectedItems, memoryBits, 64, g, 16)
}

// TuneKCBF returns the optimal k of a standard CBF at the given memory
// ((m/n)·ln 2 over m = memoryBits/4 counters) and its analytic rate.
func TuneKCBF(expectedItems, memoryBits int) (k int, fpr float64) {
	return analytic.OptimalKCBF(expectedItems, memoryBits)
}

// OverflowProbability bounds the chance that any MPCBF word overflows its
// capacity when n distinct items are inserted into a filter of the given
// geometry (Eq. 6 / Eq. 10 of the paper). New's sizing heuristic keeps
// this vanishingly small; use this to validate custom geometries.
func OverflowProbability(expectedItems, memoryBits, wordBits, memoryAccesses int) float64 {
	w := wordBits
	if w <= 0 {
		w = 64
	}
	g := memoryAccesses
	if g <= 0 {
		g = 1
	}
	l := memoryBits / w
	if l < 1 {
		return 1
	}
	nmax := analytic.HeuristicNmax(g*expectedItems, l)
	// Exact per-word tail (a word overflows when it receives more than its
	// nmax-element capacity), union-bounded over the l words. The paper's
	// closed-form Eq. 6/10 bound is looser; see analytic.OverflowBoundMPCBFg.
	tail := analytic.OverflowExactTail(g*expectedItems, l, nmax+1)
	p := float64(l) * tail
	if p > 1 {
		p = 1
	}
	return p
}
