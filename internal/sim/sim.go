// Package sim is the experiment harness: one runner per table and figure
// of the paper's evaluation (Figs. 2, 5-12, Tables I-IV), each regenerating
// the corresponding rows/series from this repository's implementations.
// Workloads are scaled by Options.Scale (1.0 = the paper's sizes) so the
// same code serves fast CI runs and full reproductions.
package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cbf"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pcbf"
)

// Options control an experiment run.
type Options struct {
	// Scale multiplies every workload size; 1.0 reproduces the paper.
	Scale float64
	// Seed drives all workload synthesis and hash families.
	Seed uint64
}

// DefaultOptions runs at one-tenth of the paper's scale.
func DefaultOptions() Options { return Options{Scale: 0.1, Seed: 1} }

func (o Options) scaled(n int) int {
	s := int(float64(n) * o.Scale)
	if s < 1 {
		s = 1
	}
	return s
}

// Table is a rendered experiment result: the rows/series of one paper
// artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner is one experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(Options) (*Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Runner {
	return []Runner{
		{"fig2", "Analytic FPR of CBF vs PCBF-1/PCBF-2 across word sizes", Fig2},
		{"fig5", "Analytic FPR of CBF vs MPCBF-1/MPCBF-2 (k=3)", Fig5},
		{"fig6", "Word overflow probability of MPCBF-1 vs nmax", Fig6},
		{"fig7a", "Simulated FPR on synthetic strings, k=3", Fig7a},
		{"fig7b", "Simulated FPR on synthetic strings, k=4", Fig7b},
		{"fig8", "Execution time of the query workload, k=3", Fig8},
		{"fig9", "Optimal number of hash functions vs memory", Fig9},
		{"fig10", "FPR with optimal k", Fig10},
		{"fig11", "Query overhead with optimal k (accesses and bandwidth)", Fig11},
		{"fig12", "Simulated FPR on IP traces, k=3", Fig12},
		{"tab1", "Query overhead with k=3 and k=4", Table1},
		{"tab2", "Update overhead with k=3 and k=4", Table2},
		{"tab3", "Processing overhead with k=3 on IP traces", Table3},
		{"tab4", "Reduce-side join performance in MapReduce", Table4},
		{"ext1", "Extension: dlCBF and VI-CBF vs CBF/PCBF/MPCBF at equal memory", Ext1},
		{"ext2", "Extension: multiplicity estimation vs the Spectral Bloom Filter", Ext2},
		{"ext3", "Ablation: per-word hierarchy (MPCBF) vs global hierarchy (ML-CCBF style)", Ext3},
		{"ext4", "Extension: projected query throughput under hardware memory models", Ext4},
	}
}

// Lookup returns the runner with the given id.
func Lookup(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	rs := Registry()
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

// --- uniform filter plumbing -------------------------------------------

// countingFilter is the interface every evaluated structure satisfies.
type countingFilter interface {
	Insert(key []byte) error
	InsertStats(key []byte) (metrics.OpStats, error)
	Delete(key []byte) error
	DeleteStats(key []byte) (metrics.OpStats, error)
	Contains(key []byte) bool
	Probe(key []byte) (bool, metrics.OpStats)
	MemoryBits() int
}

// Static interface checks.
var (
	_ countingFilter = (*cbf.Filter)(nil)
	_ countingFilter = (*pcbf.Filter)(nil)
	_ countingFilter = (*core.Filter)(nil)
)

// structure names used across tables, in the paper's order.
var structureNames = []string{"CBF", "PCBF-1", "PCBF-2", "MPCBF-1", "MPCBF-2"}

const wordBits = 64 // the evaluation's word size (64-bit processors)

// buildFilter constructs one of the evaluated structures at the given
// memory budget. n is the expected distinct population (for MPCBF's
// layout heuristic).
func buildFilter(name string, memBits, n, k int, seed uint32) (countingFilter, error) {
	switch name {
	case "CBF":
		return cbf.FromMemory(memBits, k, seed)
	case "PCBF-1":
		return pcbf.FromMemory(memBits, wordBits, k, 1, seed)
	case "PCBF-2":
		return pcbf.FromMemory(memBits, wordBits, k, 2, seed)
	case "PCBF-3":
		return pcbf.FromMemory(memBits, wordBits, k, 3, seed)
	case "MPCBF-1", "MPCBF-2", "MPCBF-3":
		g := int(name[len(name)-1] - '0')
		// Eq. 11 targets about one word at the overflow threshold across
		// the filter; the saturate policy absorbs that tail event (one
		// always-positive word in tens of thousands) instead of failing,
		// matching how a hardware deployment would degrade.
		return core.New(core.Config{
			MemoryBits: memBits, ExpectedN: n, W: wordBits, K: k, G: g,
			Seed: seed, Overflow: core.OverflowSaturate,
		})
	default:
		return nil, fmt.Errorf("sim: unknown structure %q", name)
	}
}

// fmtRate renders a false positive rate the way the paper's plots do.
func fmtRate(r float64) string {
	switch {
	case r == 0:
		return "0"
	case r < 1e-3:
		return fmt.Sprintf("%.2e", r)
	default:
		return fmt.Sprintf("%.5f", r)
	}
}

func fmtMb(bits int) string {
	return fmt.Sprintf("%.2f", float64(bits)/(1<<20))
}

// sortedKeys returns map keys in sorted order (deterministic rendering).
func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
