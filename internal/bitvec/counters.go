package bitvec

import "fmt"

// CounterWidth is the counter width used by the standard CBF and PCBF:
// four bits per counter, the value the paper (and Fan et al.) identify as
// sufficient for most applications.
const CounterWidth = 4

// CounterMax is the saturation value of a 4-bit counter.
const CounterMax = (1 << CounterWidth) - 1

// Counters is a vector of packed 4-bit saturating counters. Counters that
// reach CounterMax stick there: further increments and decrements leave
// them unchanged, the standard defence against counter overflow corrupting
// membership (at the price of possible stale positives).
type Counters struct {
	words []uint64
	n     int
	// sticky counts how many counters are currently saturated; exposed for
	// experiment sanity checks.
	sticky int
}

// NewCounters returns n zeroed 4-bit counters.
func NewCounters(n int) *Counters {
	if n < 0 {
		panic("bitvec: negative counter count")
	}
	return &Counters{words: make([]uint64, (n+15)/16), n: n}
}

// Len returns the number of counters.
func (c *Counters) Len() int { return c.n }

func (c *Counters) check(i int) {
	if i < 0 || i >= c.n {
		panic(fmt.Sprintf("bitvec: counter %d out of range [0,%d)", i, c.n))
	}
}

// Get returns the value of counter i.
func (c *Counters) Get(i int) uint8 {
	c.check(i)
	return uint8(c.words[i>>4] >> ((uint(i) & 15) * 4) & 0xF)
}

func (c *Counters) put(i int, val uint8) {
	shift := (uint(i) & 15) * 4
	c.words[i>>4] = c.words[i>>4]&^(0xF<<shift) | uint64(val&0xF)<<shift
}

// Inc increments counter i, saturating at CounterMax. It reports whether
// the counter saturated as a result of (or despite) this increment.
func (c *Counters) Inc(i int) (saturated bool) {
	v := c.Get(i)
	if v == CounterMax {
		return true
	}
	v++
	if v == CounterMax {
		c.sticky++
		saturated = true
	}
	c.put(i, v)
	return saturated
}

// Dec decrements counter i. Saturated counters stay saturated; decrementing
// a zero counter is reported as underflow and leaves the counter at zero.
func (c *Counters) Dec(i int) (underflow bool) {
	v := c.Get(i)
	switch v {
	case 0:
		return true
	case CounterMax:
		return false // sticky
	}
	c.put(i, v-1)
	return false
}

// Saturated returns how many counters are currently stuck at CounterMax.
func (c *Counters) Saturated() int { return c.sticky }

// Reset zeroes all counters.
func (c *Counters) Reset() {
	for i := range c.words {
		c.words[i] = 0
	}
	c.sticky = 0
}

// SizeBits returns the allocated storage in bits.
func (c *Counters) SizeBits() int { return len(c.words) * 64 }
