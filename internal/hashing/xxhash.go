// Package hashing implements the hash-function substrate shared by every
// filter: a from-scratch xxHash64 and Murmur3 (x64, 128-bit), double-hashed
// index streams in the Kirsch–Mitzenmacher style, and deterministic
// pseudo-random generators (splitmix64, xoshiro256**) for workload
// synthesis. Only the standard library is used.
package hashing

import "math/bits"

const (
	xxPrime1 = 0x9E3779B185EBCA87
	xxPrime2 = 0xC2B2AE3D27D4EB4F
	xxPrime3 = 0x165667B19E3779F9
	xxPrime4 = 0x85EBCA77C2B2AE63
	xxPrime5 = 0x27D4EB2F165667C5
)

// XXHash64 computes the 64-bit xxHash of data with the given seed.
func XXHash64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64
	p := data
	if n >= 32 {
		v1 := seed + xxPrime1 + xxPrime2
		v2 := seed + xxPrime2
		v3 := seed
		v4 := seed - xxPrime1
		for len(p) >= 32 {
			v1 = xxRound(v1, le64(p[0:8]))
			v2 = xxRound(v2, le64(p[8:16]))
			v3 = xxRound(v3, le64(p[16:24]))
			v4 = xxRound(v4, le64(p[24:32]))
			p = p[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = xxMergeRound(h, v1)
		h = xxMergeRound(h, v2)
		h = xxMergeRound(h, v3)
		h = xxMergeRound(h, v4)
	} else {
		h = seed + xxPrime5
	}
	h += uint64(n)
	for len(p) >= 8 {
		h ^= xxRound(0, le64(p[0:8]))
		h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
		p = p[8:]
	}
	if len(p) >= 4 {
		h ^= uint64(le32(p[0:4])) * xxPrime1
		h = bits.RotateLeft64(h, 23)*xxPrime2 + xxPrime3
		p = p[4:]
	}
	for _, b := range p {
		h ^= uint64(b) * xxPrime5
		h = bits.RotateLeft64(h, 11) * xxPrime1
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

func xxRound(acc, input uint64) uint64 {
	acc += input * xxPrime2
	acc = bits.RotateLeft64(acc, 31)
	return acc * xxPrime1
}

func xxMergeRound(acc, val uint64) uint64 {
	acc ^= xxRound(0, val)
	return acc*xxPrime1 + xxPrime4
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
