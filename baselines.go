package mpcbf

import (
	"repro/internal/analytic"
	"repro/internal/bloom"
	"repro/internal/cbf"
	"repro/internal/pcbf"
)

// CBF is the standard counting Bloom filter of Fan et al.: m = MemoryBits/4
// four-bit saturating counters addressed by k hash functions. It is the
// paper's primary baseline.
type CBF struct {
	f *cbf.Filter
}

// NewCBF builds a standard CBF occupying o.MemoryBits bits.
func NewCBF(o Options) (*CBF, error) {
	f, err := cbf.FromMemory(o.MemoryBits, o.k(), o.Seed)
	if err != nil {
		return nil, err
	}
	return &CBF{f: f}, nil
}

// Insert adds key (never fails: counters saturate at 15).
func (c *CBF) Insert(key []byte) error { return c.f.Insert(key) }

// InsertWithCost is Insert with the operation's access cost (k accesses).
func (c *CBF) InsertWithCost(key []byte) (Cost, error) {
	st, err := c.f.InsertStats(key)
	return fromStats(st), err
}

// Delete removes a previously inserted key.
func (c *CBF) Delete(key []byte) error { return c.f.Delete(key) }

// DeleteWithCost is Delete with the operation's access cost.
func (c *CBF) DeleteWithCost(key []byte) (Cost, error) {
	st, err := c.f.DeleteStats(key)
	return fromStats(st), err
}

// Contains reports whether key may be in the set.
func (c *CBF) Contains(key []byte) bool { return c.f.Contains(key) }

// ContainsWithCost is Contains with the operation's cost; negative queries
// short-circuit on the first zero counter.
func (c *CBF) ContainsWithCost(key []byte) (bool, Cost) {
	ok, st := c.f.Probe(key)
	return ok, fromStats(st)
}

// EstimateCount returns an upper bound on key's multiplicity (capped at
// the 4-bit counter maximum, 15).
func (c *CBF) EstimateCount(key []byte) int { return int(c.f.CountOf(key)) }

// Len returns the current number of elements.
func (c *CBF) Len() int { return c.f.Count() }

// MemoryBits returns the filter's memory footprint in bits.
func (c *CBF) MemoryBits() int { return c.f.MemoryBits() }

// Reset clears the filter.
func (c *CBF) Reset() { c.f.Reset() }

// ExpectedFPR returns the analytic false positive rate at population n
// (Eq. 1 of the paper).
func (c *CBF) ExpectedFPR(n int) float64 {
	return analytic.FPRBloom(n, c.f.M(), c.f.K())
}

// PCBF is the partitioned CBF of Section III.A: 4-bit counters packed into
// machine words, one (or g) memory accesses per operation. It is faster
// but less accurate than the standard CBF — the baseline MPCBF improves on.
type PCBF struct {
	f *pcbf.Filter
}

// NewPCBF builds a PCBF-g occupying o.MemoryBits bits.
func NewPCBF(o Options) (*PCBF, error) {
	f, err := pcbf.FromMemory(o.MemoryBits, o.w(), o.k(), o.g(), o.Seed)
	if err != nil {
		return nil, err
	}
	return &PCBF{f: f}, nil
}

// Insert adds key.
func (p *PCBF) Insert(key []byte) error { return p.f.Insert(key) }

// InsertWithCost is Insert with the operation's access cost (g accesses).
func (p *PCBF) InsertWithCost(key []byte) (Cost, error) {
	st, err := p.f.InsertStats(key)
	return fromStats(st), err
}

// Delete removes a previously inserted key.
func (p *PCBF) Delete(key []byte) error { return p.f.Delete(key) }

// DeleteWithCost is Delete with the operation's access cost.
func (p *PCBF) DeleteWithCost(key []byte) (Cost, error) {
	st, err := p.f.DeleteStats(key)
	return fromStats(st), err
}

// Contains reports whether key may be in the set.
func (p *PCBF) Contains(key []byte) bool { return p.f.Contains(key) }

// ContainsWithCost is Contains with the operation's cost.
func (p *PCBF) ContainsWithCost(key []byte) (bool, Cost) {
	ok, st := p.f.Probe(key)
	return ok, fromStats(st)
}

// EstimateCount returns an upper bound on key's multiplicity.
func (p *PCBF) EstimateCount(key []byte) int { return int(p.f.CountOf(key)) }

// Len returns the current number of elements.
func (p *PCBF) Len() int { return p.f.Count() }

// MemoryBits returns the filter's memory footprint in bits.
func (p *PCBF) MemoryBits() int { return p.f.MemoryBits() }

// Reset clears the filter.
func (p *PCBF) Reset() { p.f.Reset() }

// ExpectedFPR returns the analytic false positive rate at population n
// (Eqs. 2-3 of the paper).
func (p *PCBF) ExpectedFPR(n int) float64 {
	mCounters := p.f.MemoryBits() / analytic.CounterBits
	return analytic.FPRPCBFg(n, mCounters, p.f.W(), p.f.K(), p.f.G())
}

// Bloom is the classic insert-only Bloom filter (one bit per position).
type Bloom struct {
	f *bloom.Filter
}

// NewBloom builds a standard Bloom filter of o.MemoryBits bits.
func NewBloom(o Options) (*Bloom, error) {
	f, err := bloom.New(o.MemoryBits, o.k(), o.Seed)
	if err != nil {
		return nil, err
	}
	return &Bloom{f: f}, nil
}

// Insert adds key.
func (b *Bloom) Insert(key []byte) { b.f.Insert(key) }

// Contains reports whether key may be in the set.
func (b *Bloom) Contains(key []byte) bool { return b.f.Contains(key) }

// MemoryBits returns the filter's memory footprint in bits.
func (b *Bloom) MemoryBits() int { return b.f.MemoryBits() }

// Reset clears the filter.
func (b *Bloom) Reset() { b.f.Reset() }

// ExpectedFPR returns the analytic false positive rate at population n.
func (b *Bloom) ExpectedFPR(n int) float64 {
	return analytic.FPRBloom(n, b.f.M(), b.f.K())
}

// BlockedBloom is the one-memory-access Bloom filter BF-g of Qiao et al.,
// the structure whose partitioning idea MPCBF extends to counting filters.
type BlockedBloom struct {
	f *bloom.Blocked
}

// NewBlockedBloom builds a BF-g of o.MemoryBits bits.
func NewBlockedBloom(o Options) (*BlockedBloom, error) {
	f, err := bloom.NewBlocked(o.MemoryBits/o.w(), o.w(), o.k(), o.g(), o.Seed)
	if err != nil {
		return nil, err
	}
	return &BlockedBloom{f: f}, nil
}

// Insert adds key.
func (b *BlockedBloom) Insert(key []byte) { b.f.Insert(key) }

// Contains reports whether key may be in the set.
func (b *BlockedBloom) Contains(key []byte) bool { return b.f.Contains(key) }

// ContainsWithCost is Contains with the operation's cost (g accesses).
func (b *BlockedBloom) ContainsWithCost(key []byte) (bool, Cost) {
	ok, st := b.f.Probe(key)
	return ok, fromStats(st)
}

// MemoryBits returns the filter's memory footprint in bits.
func (b *BlockedBloom) MemoryBits() int { return b.f.MemoryBits() }

// Reset clears the filter.
func (b *BlockedBloom) Reset() { b.f.Reset() }
