package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/server/wire"
)

// promParser validates the Prometheus text exposition format (0.0.4):
// HELP and TYPE precede a metric's samples, neither repeats, sample
// lines parse, histogram suffixes attach to their base family, and no
// series (name + label set) appears twice.
type promParser struct {
	helpSeen map[string]bool
	typeOf   map[string]string
	series   map[string]int
	samples  int
}

func parseProm(t *testing.T, text string) *promParser {
	t.Helper()
	p := &promParser{
		helpSeen: map[string]bool{},
		typeOf:   map[string]string{},
		series:   map[string]int{},
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Errorf("line %d: HELP without text: %q", ln+1, line)
			}
			if p.helpSeen[name] {
				t.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			p.helpSeen[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown TYPE %q", ln+1, typ)
			}
			if _, dup := p.typeOf[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if !p.helpSeen[name] {
				t.Errorf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			if len(p.series) > 0 {
				for s := range p.series {
					if metricFamily(seriesName(s), p.typeOf) == name {
						t.Errorf("line %d: TYPE %s after its samples", ln+1, name)
					}
				}
			}
			p.typeOf[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		// Sample: name[{labels}] value
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Errorf("line %d: malformed sample: %q", ln+1, line)
			continue
		}
		series, val := line[:idx], line[idx+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Errorf("line %d: unparseable value %q: %v", ln+1, val, err)
		}
		name := seriesName(series)
		family := metricFamily(name, p.typeOf)
		if !p.helpSeen[family] {
			t.Errorf("line %d: sample %s before HELP %s", ln+1, series, family)
		}
		if _, ok := p.typeOf[family]; !ok {
			t.Errorf("line %d: sample %s before TYPE %s", ln+1, series, family)
		}
		p.series[series]++
		if p.series[series] > 1 {
			t.Errorf("line %d: duplicate series %s", ln+1, series)
		}
		p.samples++
	}
	return p
}

// seriesName strips the label set off a sample's series identifier.
func seriesName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// metricFamily resolves a sample name to its declared family: histogram
// samples use the _bucket/_sum/_count suffixes of their base name.
func metricFamily(name string, typeOf map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && typeOf[base] == "histogram" {
			return base
		}
	}
	return name
}

// TestPromExpositionFormat drives a workload and validates the whole
// /metrics document against the text-format rules.
func TestPromExpositionFormat(t *testing.T) {
	srv, c := startTestServer(t, testStoreOptions(t.TempDir()), Config{TraceSample: 2})
	keys := storeKeys("prom", 300)
	if err := c.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:10] {
		if _, err := c.Contains(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	// Populate two namespaces so the {ns=...} families render.
	for _, name := range []string{"tenant-a", "tenant-b"} {
		if err := c.Namespace(name).Insert([]byte("ns-prom-key")); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()
	text := httpGet(t, ts.URL+"/metrics")
	p := parseProm(t, text)
	if p.samples == 0 {
		t.Fatal("no samples parsed")
	}
	for _, family := range []string{
		"mpcbfd_requests_total",
		"mpcbfd_request_duration_seconds",
		"mpcbfd_wal_fsync_duration_seconds",
		"mpcbfd_wal_batch_keys",
		"mpcbfd_shard_items",
		"mpcbfd_shard_inserts_total",
		"mpcbfd_goroutines",
		"mpcbfd_heap_alloc_bytes",
		"mpcbfd_gc_cycles_total",
		"mpcbfd_last_snapshot_age_seconds",
		"mpcbfd_trace_sampled_total",
		"mpcbfd_ready",
		"mpcbfd_ns_count",
		"mpcbfd_ns_items",
		"mpcbfd_ns_memory_bytes",
		"mpcbfd_ns_resident",
		"mpcbfd_ns_evictions_total",
		"mpcbfd_ns_recoveries_total",
	} {
		if _, ok := p.typeOf[family]; !ok {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	// One series per shard for the per-shard gauges.
	shards := 0
	for s := range p.series {
		if strings.HasPrefix(s, "mpcbfd_shard_items{") {
			shards++
		}
	}
	if want := srv.Store().Filter().Shards(); shards != want {
		t.Errorf("mpcbfd_shard_items series = %d, want %d", shards, want)
	}
	// One series per namespace for the per-namespace gauges.
	nsSeries := 0
	for s := range p.series {
		if strings.HasPrefix(s, "mpcbfd_ns_items{") {
			nsSeries++
		}
	}
	if nsSeries != 2 {
		t.Errorf("mpcbfd_ns_items series = %d, want 2", nsSeries)
	}
}

// TestExpvarMatchesProm asserts /debug/vars and /metrics agree — both
// are rendered from the same ServerSnapshot.
func TestExpvarMatchesProm(t *testing.T) {
	srv, c := startTestServer(t, testStoreOptions(t.TempDir()), Config{})
	if err := c.InsertBatch(storeKeys("drift", 200)); err != nil {
		t.Fatal(err)
	}
	if err := c.Namespace("drift-ns").InsertBatch(storeKeys("ns-drift", 50)); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	var doc struct {
		Mpcbfd struct {
			Server ServerSnapshot `json:"server"`
		} `json:"mpcbfd"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, ts.URL+"/debug/vars")), &doc); err != nil {
		t.Fatalf("/debug/vars unparseable: %v", err)
	}
	snap := doc.Mpcbfd.Server

	if snap.Namespaces == nil || len(snap.Namespaces.Entries) != 1 {
		t.Fatalf("expvar namespaces slice missing or wrong size: %+v", snap.Namespaces)
	}
	nsEntry := snap.Namespaces.Entries[0]

	metrics := httpGet(t, ts.URL+"/metrics")
	for _, pair := range [][2]string{
		{"mpcbfd_filter_len", fmt.Sprintf("%d", snap.Filter.Len)},
		{"mpcbfd_wal_records_total", fmt.Sprintf("%d", snap.WAL.Records)},
		{"mpcbfd_replayed_records", fmt.Sprintf("%d", snap.WAL.ReplayedRecords)},
		{`mpcbfd_requests_total{op="insert_batch"}`, fmt.Sprintf("%d", snap.Ops["insert_batch"])},
		{"mpcbfd_ns_count", fmt.Sprintf("%d", snap.Namespaces.Totals.Count)},
		{`mpcbfd_ns_items{ns="drift-ns"}`, fmt.Sprintf("%d", nsEntry.Items)},
	} {
		if want := pair[0] + " " + pair[1]; !strings.Contains(metrics, want) {
			t.Errorf("/metrics disagrees with /debug/vars: missing %q", want)
		}
	}
	if snap.Filter.Len != 200 {
		t.Errorf("expvar filter len = %d, want 200", snap.Filter.Len)
	}
	if nsEntry.Name != "drift-ns" || nsEntry.Items != 50 || !nsEntry.Resident {
		t.Errorf("expvar namespace entry = %+v, want drift-ns with 50 resident items", nsEntry)
	}
	if !snap.Ready {
		t.Error("expvar snapshot not ready on a live server")
	}
}

// TestReadyz exercises the liveness/readiness split: /healthz stays 200
// while /readyz follows the Ready gate and the shutdown drain.
func TestReadyz(t *testing.T) {
	ready := true
	srv, _ := startTestServer(t, testStoreOptions(t.TempDir()), Config{
		Ready: func() bool { return ready },
	})
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", got)
	}
	ready = false // e.g. replica fell behind / never bootstrapped
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with Ready()==false = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz must stay 200 while unready, got %d", got)
	}
	ready = true
	if got := status("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz recovered = %d, want 200", got)
	}

	// Shutdown drain: the process is still alive (healthz 200) but must
	// stop receiving traffic (readyz 503). Shutdown is idempotent, so the
	// test cleanup's second call is harmless.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", got)
	}
}

// TestDebugRequestsJSON validates the /debug/requests document: shape,
// sampling accounting, and per-stage timings on sampled entries.
func TestDebugRequestsJSON(t *testing.T) {
	srv, c := startTestServer(t, testStoreOptions(t.TempDir()), Config{
		TraceSample: 1, // trace everything
		SlowOp:      time.Nanosecond,
		Log:         discardLog(),
	})
	if err := c.Insert([]byte("traced-key")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Contains([]byte("traced-key")); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()
	body := httpGet(t, ts.URL+"/debug/requests")

	var rep TraceReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/requests unparseable: %v\n%s", err, body)
	}
	if rep.SampleEvery != 1 {
		t.Errorf("sample_every = %d, want 1", rep.SampleEvery)
	}
	if rep.SlowOpNs != 1 {
		t.Errorf("slow_op_ns = %d, want 1", rep.SlowOpNs)
	}
	if rep.Requests < 2 || rep.Sampled < 2 {
		t.Fatalf("requests/sampled = %d/%d, want >= 2", rep.Requests, rep.Sampled)
	}
	if rep.Slow < 2 {
		t.Errorf("slow = %d, want >= 2 with a 1ns threshold", rep.Slow)
	}
	if len(rep.Recent) == 0 {
		t.Fatal("recent ring empty with TraceSample=1")
	}
	byOp := map[string]TraceEntry{}
	for _, e := range rep.Recent {
		byOp[e.Op] = e
	}
	ins, ok := byOp["insert"]
	if !ok {
		t.Fatalf("no insert entry in recent ring: %s", body)
	}
	if !ins.Sampled || ins.ID == 0 || ins.TotalNs <= 0 {
		t.Errorf("insert entry malformed: %+v", ins)
	}
	if ins.Keys != 1 || ins.KeyBytes != len("traced-key") {
		t.Errorf("insert keys/bytes = %d/%d, want 1/%d", ins.Keys, ins.KeyBytes, len("traced-key"))
	}
	if ins.FilterNs <= 0 || ins.WALNs <= 0 {
		t.Errorf("insert stage timings missing: filter=%d wal=%d", ins.FilterNs, ins.WALNs)
	}
	if ins.FsyncNs <= 0 { // testStoreOptions uses SyncAlways
		t.Errorf("insert fsync timing missing under SyncAlways: %+v", ins)
	}
	if con, ok := byOp["contains"]; ok {
		if con.WALNs != 0 {
			t.Errorf("contains must not touch the WAL: %+v", con)
		}
		if con.FilterNs <= 0 {
			t.Errorf("contains filter stage missing: %+v", con)
		}
	} else {
		t.Errorf("no contains entry in recent ring")
	}
	if len(rep.SlowRecent) == 0 {
		t.Error("slow ring empty with a 1ns threshold")
	}
}

// syncBuffer guards log output written by server goroutines while the
// test reads it for assertions.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlogRequestLifecycle captures the structured log of one request
// lifecycle (conn accepted → slow-request warning → conn closed) via a
// JSON handler and asserts the attributes are machine-readable.
func TestSlogRequestLifecycle(t *testing.T) {
	var buf syncBuffer
	log := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, c := startTestServer(t, testStoreOptions(t.TempDir()), Config{
		TraceSample: 1,
		SlowOp:      time.Nanosecond, // everything is "slow": deterministic warning
		Log:         log,
	})
	if err := c.Insert([]byte("logged-key")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// The conn-closed line lands after the client socket drops; poll.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), "conn closed") {
		if time.Now().After(deadline) {
			t.Fatalf("no conn-closed log line:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	type line struct {
		Level     string `json:"level"`
		Msg       string `json:"msg"`
		Component string `json:"component"`
		Remote    string `json:"remote"`
		ID        uint64 `json:"id"`
		Op        string `json:"op"`
		WALNs     int64  `json:"wal_ns"`
		FilterNs  int64  `json:"filter_ns"`
		Keys      int    `json:"keys"`
		Failed    bool   `json:"failed"`
	}
	var accepted, slow, closed *line
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("non-JSON log line %q: %v", raw, err)
		}
		switch l.Msg {
		case "conn accepted":
			accepted = &line{}
			*accepted = l
		case "slow request":
			slow = &line{}
			*slow = l
		case "conn closed":
			closed = &line{}
			*closed = l
		}
	}
	if accepted == nil || closed == nil {
		t.Fatalf("missing conn lifecycle lines:\n%s", buf.String())
	}
	if accepted.Level != "DEBUG" || accepted.Component != "server" || accepted.Remote == "" {
		t.Errorf("conn accepted line malformed: %+v", accepted)
	}
	if slow == nil {
		t.Fatalf("no slow-request warning with a 1ns threshold:\n%s", buf.String())
	}
	if slow.Level != "WARN" || slow.Component != "server" {
		t.Errorf("slow request line level/component: %+v", slow)
	}
	if slow.Op != "insert" || slow.ID == 0 || slow.Keys != 1 || slow.Failed {
		t.Errorf("slow request attrs: %+v", slow)
	}
	if slow.WALNs <= 0 || slow.FilterNs <= 0 {
		t.Errorf("slow request stage timings (sampled request): %+v", slow)
	}
}

// TestDebugHandlerPprof asserts the gated debug mux serves pprof and
// the shared debug endpoints.
func TestDebugHandlerPprof(t *testing.T) {
	srv, _ := startTestServer(t, testStoreOptions(t.TempDir()), Config{})
	ts := httptest.NewServer(srv.DebugHandler())
	defer ts.Close()

	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/cmdline",
		"/debug/vars",
		"/debug/requests",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	// The operational sidecar must NOT expose pprof.
	op := httptest.NewServer(srv.HTTPHandler())
	defer op.Close()
	resp, err := http.Get(op.URL + "/debug/pprof/goroutine")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("operational sidecar serves pprof; it must be gated behind DebugHandler")
	}
}

// TestTracerDisabledIsCheap sanity-checks the off path: with sampling
// and the slow threshold both off, requests must not land in any ring.
func TestTracerDisabledIsCheap(t *testing.T) {
	srv, c := startTestServer(t, testStoreOptions(t.TempDir()), Config{})
	if err := c.InsertBatch(storeKeys("off", 50)); err != nil {
		t.Fatal(err)
	}
	rep := srv.Tracer().Report()
	if rep.Requests == 0 {
		t.Fatal("request IDs must still be assigned")
	}
	if rep.Sampled != 0 || rep.Slow != 0 || len(rep.Recent) != 0 || len(rep.SlowRecent) != 0 {
		t.Errorf("tracing off but rings populated: %+v", rep)
	}
}

// TestExpvarMatchesPromElasticRing extends the anti-drift check to the
// elastic-chain and partition-ring families: both expositions render
// from the same ServerSnapshot, so every number must agree, and the new
// families must keep the /metrics document format-valid.
func TestExpvarMatchesPromElasticRing(t *testing.T) {
	srv, c := startTestServer(t, testElasticStoreOptions(t.TempDir()), Config{})
	// Push past the seed generation so a grow event is on the books.
	if err := c.InsertBatch(storeKeys("elastic-drift", 1200)); err != nil {
		t.Fatal(err)
	}
	// Adopt a joint ring so the mpcbfd_ring_* family renders.
	err := c.RingSet(wire.Ring{Epoch: 9, Joint: true,
		Old: []string{"a:1", "b:1"}, New: []string{"a:1", "b:1", "c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	// Import the node's own dump so imported-generation gauges are live.
	blob, err := c.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Import(blob); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()
	var doc struct {
		Mpcbfd struct {
			Server ServerSnapshot `json:"server"`
		} `json:"mpcbfd"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, ts.URL+"/debug/vars")), &doc); err != nil {
		t.Fatalf("/debug/vars unparseable: %v", err)
	}
	snap := doc.Mpcbfd.Server
	if snap.Elastic == nil || snap.Elastic.Grows == 0 {
		t.Fatalf("expvar elastic snapshot missing or never grew: %+v", snap.Elastic)
	}
	if snap.Ring == nil {
		t.Fatal("expvar ring snapshot missing after RING_SET")
	}
	if snap.Ring.JointSeconds <= 0 {
		t.Fatalf("joint ring adopted but JointSeconds = %g", snap.Ring.JointSeconds)
	}
	if snap.Elastic.Imports == 0 || snap.Elastic.ImportedKeys == 0 || snap.Elastic.ImportedBytes == 0 {
		t.Fatalf("import left no trace in the snapshot: %+v", snap.Elastic)
	}

	metrics := httpGet(t, ts.URL+"/metrics")
	pairs := [][2]string{
		{"mpcbfd_elastic_generations", fmt.Sprintf("%d", snap.Elastic.Generations)},
		{"mpcbfd_elastic_grows_total", fmt.Sprintf("%d", snap.Elastic.Grows)},
		{"mpcbfd_elastic_imports_total", fmt.Sprintf("%d", snap.Elastic.Imports)},
		{"mpcbfd_elastic_imported_keys", fmt.Sprintf("%d", snap.Elastic.ImportedKeys)},
		{"mpcbfd_elastic_imported_bytes", fmt.Sprintf("%d", snap.Elastic.ImportedBytes)},
		{"mpcbfd_elastic_target_fpr", fmt.Sprintf("%g", snap.Elastic.TargetFPR)},
		{"mpcbfd_ring_epoch", "9"},
		{"mpcbfd_ring_joint", "1"},
		{"mpcbfd_ring_old_nodes", "2"},
		{"mpcbfd_ring_new_nodes", "3"},
	}
	for i, g := range snap.Elastic.Gens {
		pairs = append(pairs, [2]string{
			fmt.Sprintf(`mpcbfd_elastic_generation_items{gen="%d"}`, i),
			fmt.Sprintf("%d", g.Items),
		})
	}
	for _, pair := range pairs {
		if want := pair[0] + " " + pair[1]; !strings.Contains(metrics, want) {
			t.Errorf("/metrics disagrees with /debug/vars: missing %q", want)
		}
	}
	p := parseProm(t, metrics)
	for _, fam := range []string{
		"mpcbfd_elastic_generations",
		"mpcbfd_elastic_grows_total",
		"mpcbfd_elastic_imports_total",
		"mpcbfd_elastic_imported_keys",
		"mpcbfd_elastic_imported_bytes",
		"mpcbfd_elastic_target_fpr",
		"mpcbfd_elastic_expected_fpr",
		"mpcbfd_elastic_generation_items",
		"mpcbfd_elastic_generation_fill_ratio",
		"mpcbfd_elastic_generation_fpr_budget",
		"mpcbfd_ring_epoch",
		"mpcbfd_ring_joint",
		"mpcbfd_ring_old_nodes",
		"mpcbfd_ring_new_nodes",
		"mpcbfd_ring_joint_seconds",
	} {
		if _, ok := p.typeOf[fam]; !ok {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
}
