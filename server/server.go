// Package server implements mpcbfd's serving layer: a TCP front end
// speaking the wire protocol of repro/server/wire, dispatching onto a
// durable Store (sharded MPCBF + write-ahead log + snapshots), plus an
// HTTP sidecar for health and metrics.
package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/server/wire"
)

// StatsSource supplies extra observability state appended to both the
// Prometheus exposition and the expvar snapshot — the hook a replica
// process uses to publish its replication gauges without the server
// package importing the cluster package. Both views come from the same
// implementor, so they cannot drift apart.
type StatsSource interface {
	// WriteProm appends Prometheus text-format metrics.
	WriteProm(w io.Writer)
	// Vars returns the same state as a JSON-marshalable map.
	Vars() map[string]any
}

// Config tunes the TCP front end.
type Config struct {
	// Addr is the listen address (default ":7070").
	Addr string
	// MaxConns bounds simultaneous connections; excess accepts are closed
	// immediately (default 1024).
	MaxConns int
	// MaxFrameBytes bounds one request frame (default wire.DefaultMaxFrame).
	MaxFrameBytes int
	// IdleTimeout closes connections with no complete request for this
	// long (default 5m).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 30s).
	WriteTimeout time.Duration
	// ReadOnly rejects mutations with a StatusReadOnly redirect carrying
	// PrimaryAddr. Set on replicas.
	ReadOnly bool
	// PrimaryAddr is the address advertised in read-only redirects.
	PrimaryAddr string
	// HeartbeatEvery is the replication heartbeat period while a
	// subscriber is caught up (default 1s).
	HeartbeatEvery time.Duration
	// Extra, when set, contributes additional metrics to both /metrics
	// and /debug/vars (e.g. a replica's replication gauges).
	Extra StatsSource
	// Ready, when set, gates /readyz: the endpoint reports 503 while
	// Ready returns false (a replica still bootstrapping its snapshot,
	// for example). Shutdown drain always reports not-ready regardless.
	Ready func() bool
	// TraceSample collects per-stage timings for 1 in TraceSample
	// requests into the /debug/requests ring (0 disables sampling).
	TraceSample int
	// SlowOp records any request slower than this in the slow ring at
	// /debug/requests and logs a warning (0 disables).
	SlowOp time.Duration
	// Log receives structured operational messages (default
	// slog.Default()). The server logs with component=server attached.
	Log *slog.Logger
}

func (c *Config) setDefaults() {
	if c.Addr == "" {
		c.Addr = ":7070"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = wire.DefaultMaxFrame
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	c.Log = c.Log.With("component", "server")
}

// Server accepts wire-protocol connections and serves them from a Store.
type Server struct {
	cfg     Config
	store   *Store
	metrics *Metrics
	tracer  *Tracer

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// stop wakes replication streamers (blocked on WAL changes, not
	// reads) at shutdown; subs tracks them for the metrics gauges.
	stop chan struct{}
	subs sync.Map // *replSub -> struct{}
}

// New builds a server over store. metrics may be nil (a private instance
// is created).
func New(store *Store, cfg Config, metrics *Metrics) *Server {
	cfg.setDefaults()
	if metrics == nil {
		metrics = &Metrics{}
	}
	return &Server{
		cfg:     cfg,
		store:   store,
		metrics: metrics,
		tracer:  newTracer(cfg.TraceSample, cfg.SlowOp, cfg.Log),
		conns:   make(map[net.Conn]struct{}),
		stop:    make(chan struct{}),
	}
}

// Tracer returns the server's request tracer.
func (s *Server) Tracer() *Tracer { return s.tracer }

// Metrics returns the server's metrics aggregate.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Store returns the backing store.
func (s *Server) Store() *Store { return s.store }

// Addr returns the bound listen address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe binds cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			s.metrics.ConnRejected()
			conn.Close()
			continue
		}
		go func() {
			defer s.untrack(conn)
			s.handleConn(conn)
		}()
	}
}

// track registers a connection. The wg.Add happens under s.mu, before
// Shutdown (which also takes s.mu after setting closed) can observe the
// connection set — so Shutdown's wg.Wait can never see a zero counter
// while an accepted connection's handler is still starting.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.metrics.ConnOpened()
	return true
}

func (s *Server) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.metrics.ConnClosed()
	s.wg.Done()
}

// Shutdown stops accepting, wakes idle readers so in-flight requests
// drain, and waits for connections to finish. When ctx expires first the
// remaining connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Interrupt reads: a connection blocked waiting for the next request
	// fails its read and exits; one mid-request finishes the request,
	// writes the response, then fails its next read.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// handleConn runs the request loop for one connection: read a frame,
// dispatch, write the response. Operation-level failures produce ERR
// responses and keep the connection; protocol violations produce an ERR
// response (best effort) and close it.
func (s *Server) handleConn(conn net.Conn) {
	log := s.cfg.Log.With("remote", conn.RemoteAddr().String())
	log.Debug("conn accepted")
	defer log.Debug("conn closed")
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	var (
		reqBuf  []byte
		respBuf []byte
	)
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		payload, err := wire.ReadFrame(r, reqBuf, s.cfg.MaxFrameBytes)
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				s.respond(conn, w, wire.AppendErr(respBuf[:0], err.Error()))
			} else if !isExpectedClose(err) {
				log.Warn("read failed", "error", err)
			}
			return
		}
		reqBuf = payload[:0]
		s.metrics.AddBytes(4+len(payload), 0)

		// Every request gets an ID; a sampled one also gets a stage
		// trace (tr is nil otherwise, and every tr method is a no-op).
		id, tr := s.tracer.begin()
		tDec := tr.now()
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			s.respond(conn, w, wire.AppendErr(respBuf[:0], err.Error()))
			return // protocol violation: framing can no longer be trusted
		}
		tr.addDecode(tDec)

		if req.Op == wire.OpReplicate {
			// The connection leaves request/response mode for good: it
			// becomes a one-way replication stream until either side
			// hangs up.
			s.metrics.ObserveRequest(req.Op, 0, false)
			log.Info("replication subscriber attached", "seq", req.Seq, "off", req.Off)
			s.serveReplication(conn, w, req)
			return
		}

		start := time.Now()
		resp, opFailed := s.dispatch(req, respBuf[:0], tr)
		s.metrics.ObserveRequest(req.Op, time.Since(start), opFailed)
		respBuf = resp[:0]

		ok := s.respond(conn, w, resp)
		if tr != nil || s.tracer.slowNs > 0 {
			// Off the hot path: only sampled requests or servers with a
			// slow threshold configured ever get here.
			total := time.Since(start)
			if tr != nil {
				total = time.Since(tr.entry.Start)
			}
			keys, keyBytes := requestSize(req)
			s.tracer.finish(id, tr, req.Op, keys, keyBytes, total, opFailed)
		}
		if !ok {
			return
		}
		if s.closed.Load() {
			return // draining: finish the in-flight request, then hang up
		}
	}
}

// requestSize reports a request's key count and payload byte volume for
// trace entries.
func requestSize(req wire.Request) (keys, keyBytes int) {
	if req.Keys != nil {
		n := 0
		for _, k := range req.Keys {
			n += len(k)
		}
		return len(req.Keys), n
	}
	if req.Key != nil {
		return 1, len(req.Key)
	}
	return 0, 0
}

// respond writes one response frame and flushes. Returns false when the
// connection is no longer usable.
func (s *Server) respond(conn net.Conn, w *bufio.Writer, payload []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if err := wire.WriteFrame(w, payload); err == nil {
		if err = w.Flush(); err == nil {
			s.metrics.AddBytes(0, 4+len(payload))
			return true
		}
	}
	return false
}

// dispatch executes one decoded request against the store and encodes
// the response into dst.
func (s *Server) dispatch(req wire.Request, dst []byte, tr *reqTrace) (resp []byte, opFailed bool) {
	if s.cfg.ReadOnly && wire.IsMutation(req.Op) {
		return wire.AppendReadOnly(dst, s.cfg.PrimaryAddr), true
	}
	switch req.Op {
	case wire.OpInsert:
		if err := s.store.insert(req.Key, tr); err != nil {
			return wire.AppendErr(dst, err.Error()), true
		}
		return wire.AppendOK(dst), false
	case wire.OpDelete:
		if err := s.store.delete(req.Key, tr); err != nil {
			return wire.AppendErr(dst, err.Error()), true
		}
		return wire.AppendOK(dst), false
	case wire.OpContains:
		t0 := tr.now()
		ok := s.store.Contains(req.Key)
		tr.addFilter(t0)
		return wire.AppendBool(wire.AppendOK(dst), ok), false
	case wire.OpEstimate:
		t0 := tr.now()
		n := s.store.EstimateCount(req.Key)
		tr.addFilter(t0)
		return wire.AppendU64(wire.AppendOK(dst), uint64(n)), false
	case wire.OpLen:
		return wire.AppendU64(wire.AppendOK(dst), uint64(s.store.Len())), false
	case wire.OpInsertBatch:
		if err := s.store.insertBatch(req.Keys, tr); err != nil {
			return wire.AppendErr(dst, err.Error()), true
		}
		return wire.AppendOK(dst), false
	case wire.OpDeleteBatch:
		ok, err := s.store.deleteBatch(req.Keys, tr)
		if err != nil {
			// WAL failure: the durable outcome is unknown; fail loudly.
			return wire.AppendErr(dst, err.Error()), true
		}
		return wire.AppendBools(wire.AppendOK(dst), ok), false
	case wire.OpContainsBatch:
		t0 := tr.now()
		flags := s.store.ContainsBatch(req.Keys)
		tr.addFilter(t0)
		return wire.AppendBools(wire.AppendOK(dst), flags), false
	case wire.OpDump:
		data, err := s.store.MarshalFilter()
		if err != nil {
			return wire.AppendErr(dst, err.Error()), true
		}
		return append(wire.AppendOK(dst), data...), false
	case wire.OpInsertTTL:
		if err := s.store.insertTTL(req.Key, durationFromNanos(req.TTL), tr); err != nil {
			return wire.AppendErr(dst, err.Error()), true
		}
		return wire.AppendOK(dst), false
	case wire.OpInsertTTLBatch:
		if err := s.store.insertTTLBatch(req.Keys, durationFromNanos(req.TTL), tr); err != nil {
			return wire.AppendErr(dst, err.Error()), true
		}
		return wire.AppendOK(dst), false
	case wire.OpWindowStats:
		st, err := s.store.WindowStats()
		if err != nil {
			return wire.AppendErr(dst, err.Error()), true
		}
		ws := wire.WindowStats{
			Generations:      uint32(st.Generations),
			Head:             uint32(st.Head),
			Rotations:        st.Rotations,
			SpanNanos:        uint64(st.Span),
			RotateEveryNanos: uint64(st.RotateEvery),
			PendingExpiries:  uint64(st.PendingExpiries),
			GenItems:         make([]uint64, len(st.GenItems)),
		}
		for i, n := range st.GenItems {
			ws.GenItems[i] = uint64(n)
		}
		return wire.AppendWindowStats(wire.AppendOK(dst), ws), false
	}
	return wire.AppendErr(dst, "unknown opcode"), true
}

// durationFromNanos converts a wire TTL to a duration; values past
// MaxInt64 nanoseconds map to -1, which the store treats as full-span.
func durationFromNanos(ns uint64) time.Duration {
	if ns > 1<<63-1 {
		return -1
	}
	return time.Duration(ns)
}

func isExpectedClose(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true // idle timeout or shutdown wake-up
	}
	return false
}
