package window

import (
	"fmt"
	"testing"
	"time"

	mpcbf "repro"
)

func benchWindow(b *testing.B, g int) *Filter {
	b.Helper()
	f, err := New(Options{
		Span:        time.Minute,
		Generations: g,
		Filter:      mpcbf.Options{MemoryBits: 1 << 22, ExpectedItems: 100_000},
		Shards:      8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func benchWindowKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("window-bench-key-%08d", i))
	}
	return keys
}

// BenchmarkWindowContains measures the read path: a point query that
// ORs membership across G live generations, newest-first. Spread over
// generations so the probe doesn't always hit the head.
func BenchmarkWindowContains(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			f := benchWindow(b, g)
			keys := benchWindowKeys(50_000)
			per := len(keys) / g
			for gen := 0; gen < g; gen++ {
				if err := f.InsertBatch(keys[gen*per : (gen+1)*per]); err != nil {
					b.Fatal(err)
				}
				if gen != g-1 {
					f.Rotate()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !f.Contains(keys[i%len(keys)]) {
					b.Fatal("false negative in window")
				}
			}
		})
	}
}

// BenchmarkWindowRotate measures the O(1)-amortized retirement swap:
// reset of the tail generation's counters plus ring bookkeeping, on a
// loaded filter. This is the latency a serving rotation tick pays.
func BenchmarkWindowRotate(b *testing.B) {
	for _, g := range []int{4, 8} {
		b.Run(fmt.Sprintf("G=%d", g), func(b *testing.B) {
			f := benchWindow(b, g)
			keys := benchWindowKeys(20_000)
			if err := f.InsertBatch(keys); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Rotate()
			}
		})
	}
}
