package server

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	mpcbf "repro"
	"repro/elastic"
	"repro/server/ns"
	"repro/server/wire"
)

// Unified observability: ServerSnapshot is the single point-in-time view
// of the serving process. Both expositions render from it — /metrics
// formats a snapshot as Prometheus text, /debug/vars marshals the same
// struct as JSON — so the two can never drift apart.

// ServerSnapshot is one consistent-enough cut of every operational gauge
// and counter the server exports.
type ServerSnapshot struct {
	Ops       map[string]uint64 `json:"ops"` // per-op request counts, by wire op name
	OpsTotal  uint64            `json:"ops_total"`
	OpErrors  uint64            `json:"op_errors"`
	Conns     ConnSnapshot      `json:"conns"`
	BytesIn   uint64            `json:"bytes_in"`
	BytesOut  uint64            `json:"bytes_out"`
	LatencyNs HistSnapshot      `json:"request_latency_ns"`

	Filter FilterSnapshot     `json:"filter"`
	Shards []mpcbf.ShardStats `json:"shards"`
	// Window is present only when the store runs in sliding-window mode.
	Window *WindowSnapshot `json:"window,omitempty"`
	// Elastic is present only when the store runs in elastic mode.
	Elastic *ElasticSnapshot `json:"elastic,omitempty"`
	// Ring is present once a reshard coordinator has pushed a partition
	// map (RING_SET) to this node.
	Ring *RingSnapshot `json:"ring,omitempty"`

	// Namespaces is present only when named namespaces exist: the
	// registry totals plus one entry per namespace, sorted by name.
	Namespaces *NamespacesSnapshot `json:"namespaces,omitempty"`

	WAL         WALSnapshot      `json:"wal"`
	Replication ReplicationStats `json:"replication"`
	Trace       TraceCounts      `json:"trace"`
	Runtime     RuntimeSnapshot  `json:"runtime"`
	Ready       bool             `json:"ready"`
}

// NamespacesSnapshot is the multi-tenant slice of a ServerSnapshot.
type NamespacesSnapshot struct {
	Totals  ns.Totals          `json:"totals"`
	Entries []ns.EntrySnapshot `json:"entries"`
}

// ConnSnapshot is the connection accounting slice of a ServerSnapshot.
type ConnSnapshot struct {
	Open     int64  `json:"open"`
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
}

// FilterSnapshot is the aggregate filter state slice of a ServerSnapshot.
type FilterSnapshot struct {
	Len            int     `json:"len"`
	FillRatio      float64 `json:"fill_ratio"`
	SaturatedWords int     `json:"saturated_words"`
	MemoryBits     int     `json:"memory_bits"`
	Shards         int     `json:"shards"`
}

// WindowSnapshot is the sliding-window slice of a ServerSnapshot: the
// generation ring's shape, per-slot occupancy, and rotation latency.
type WindowSnapshot struct {
	SpanNs          int64        `json:"span_ns"`
	RotateEveryNs   int64        `json:"rotate_every_ns"`
	Generations     int          `json:"generations"`
	Head            int          `json:"head"`
	Rotations       uint64       `json:"rotations"`
	GenItems        []int        `json:"gen_items"`
	PendingExpiries int          `json:"pending_expiries"`
	RotationNs      HistSnapshot `json:"rotation_ns"`
}

// ElasticSnapshot is the generational-growth slice of a ServerSnapshot:
// the chain's shape, its FPR budget accounting, and per-generation
// occupancy (oldest first; the last entry is the head).
type ElasticSnapshot struct {
	Generations int    `json:"generations"`
	Grows       uint32 `json:"grows"`
	Imports     uint64 `json:"imports"`
	// ImportedKeys/ImportedBytes total the current population and memory
	// of the imported (frozen) generations — how much resharded state
	// this node is carrying. Derived from the chain, so they survive
	// restarts with it.
	ImportedKeys  int                `json:"imported_keys"`
	ImportedBytes int64              `json:"imported_bytes"`
	TargetFPR     float64            `json:"target_fpr"`
	ExpectedFPR   float64            `json:"expected_fpr"`
	Gens          []elastic.GenStats `json:"gens"`
}

// RingSnapshot summarizes the cluster partition map this node last
// adopted: reshard progress reads as epoch advancing and the joint
// (dual-write) flag clearing at cutover.
type RingSnapshot struct {
	Epoch    uint64 `json:"epoch"`
	Joint    bool   `json:"joint"`
	OldNodes int    `json:"old_nodes"`
	NewNodes int    `json:"new_nodes"`
	// JointSeconds is how long this node has been in the current joint
	// (dual-write) epoch, 0 outside one — a reshard stuck mid-flight
	// reads as this gauge climbing without the joint flag clearing.
	JointSeconds float64 `json:"joint_seconds"`
}

// WALSnapshot is the durability slice of a ServerSnapshot. The
// last-snapshot fields are computed here, once, for both expositions:
// LastSnapshotUnixNano is 0 and LastSnapshotAgeSeconds -1 when no
// snapshot has been taken yet.
type WALSnapshot struct {
	Records                uint64       `json:"records"`
	Syncs                  uint64       `json:"syncs"`
	GroupCommits           uint64       `json:"group_commits"`
	Waiters                int64        `json:"waiters"`
	Snapshots              uint64       `json:"snapshots"`
	ReplayedRecords        int          `json:"replayed_records"`
	LastSnapshotUnixNano   int64        `json:"last_snapshot_unix_nano"`
	LastSnapshotAgeSeconds float64      `json:"last_snapshot_age_seconds"`
	FsyncNs                HistSnapshot `json:"fsync_ns"`
	BatchKeys              HistSnapshot `json:"batch_keys"`
	GroupRecords           HistSnapshot `json:"group_records"`
	CommitNs               HistSnapshot `json:"commit_ns"`
}

// TraceCounts summarizes the request tracer: IDs assigned, entries
// sampled into the recent ring, and slow-threshold hits.
type TraceCounts struct {
	Requests uint64 `json:"requests"`
	Sampled  uint64 `json:"sampled"`
	Slow     uint64 `json:"slow"`
}

// RuntimeSnapshot is the Go-runtime slice of a ServerSnapshot.
type RuntimeSnapshot struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	HeapObjects    uint64 `json:"heap_objects"`
	GCCycles       uint32 `json:"gc_cycles"`
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
}

// Snapshot collects the full observability state. Counters are read
// atomically; the filter gauges briefly take each shard's read lock;
// runtime stats come from runtime.ReadMemStats.
func (s *Server) Snapshot() ServerSnapshot {
	snap := ServerSnapshot{
		Ops:      make(map[string]uint64, len(wire.OpNames())),
		OpErrors: s.metrics.errors.Load(),
		Conns: ConnSnapshot{
			Open:     s.metrics.open.Load(),
			Accepted: s.metrics.accepted.Load(),
			Rejected: s.metrics.rejected.Load(),
		},
		BytesIn:   s.metrics.bytesIn.Load(),
		BytesOut:  s.metrics.bytesOut.Load(),
		LatencyNs: s.metrics.lat.Snapshot(),
	}
	for op, name := range wire.OpNames() {
		n := s.metrics.ops[op].Load()
		snap.Ops[name] = n
		snap.OpsTotal += n
	}

	if w := s.store.Window(); w != nil {
		st := w.Stats()
		snap.Filter = FilterSnapshot{
			Len:            s.store.Len(),
			FillRatio:      w.FillRatio(),
			SaturatedWords: w.SaturatedWords(),
			MemoryBits:     w.MemoryBits(),
			Shards:         len(w.HeadShardStats()),
		}
		// Per-shard stats come from the head generation — the live insert
		// target, where load skew shows first.
		snap.Shards = w.HeadShardStats()
		snap.Window = &WindowSnapshot{
			SpanNs:          int64(st.Span),
			RotateEveryNs:   int64(st.RotateEvery),
			Generations:     st.Generations,
			Head:            st.Head,
			Rotations:       st.Rotations,
			GenItems:        st.GenItems,
			PendingExpiries: st.PendingExpiries,
			RotationNs:      s.store.RotationHist(),
		}
	} else if el := s.store.Elastic(); el != nil {
		st := el.Stats()
		snap.Filter = FilterSnapshot{
			Len:            el.Len(),
			FillRatio:      el.FillRatio(), // head generation: the live insert target
			SaturatedWords: el.SaturatedWords(),
			MemoryBits:     el.MemoryBits(),
			Shards:         len(el.HeadShardStats()),
		}
		snap.Shards = el.HeadShardStats()
		es := &ElasticSnapshot{
			Generations: st.Generations,
			Grows:       st.Grows,
			Imports:     st.Imports,
			TargetFPR:   st.TargetFPR,
			ExpectedFPR: el.ExpectedFPR(),
			Gens:        st.Gens,
		}
		for _, g := range st.Gens {
			if g.Imported {
				es.ImportedKeys += g.Items
				es.ImportedBytes += int64(g.MemoryBits / 8)
			}
		}
		snap.Elastic = es
	} else {
		f := s.store.Filter()
		snap.Filter = FilterSnapshot{
			Len:            f.Len(),
			FillRatio:      f.FillRatio(),
			SaturatedWords: f.SaturatedWords(),
			MemoryBits:     f.MemoryBits(),
			Shards:         f.Shards(),
		}
		snap.Shards = f.ShardStats()
	}
	if r := s.ring.Load(); r != nil {
		rs := &RingSnapshot{Epoch: r.Epoch, Joint: r.Joint, OldNodes: len(r.Old), NewNodes: len(r.New)}
		if r.Joint {
			if at := s.ringAdopted.Load(); at != 0 {
				rs.JointSeconds = time.Since(time.Unix(0, at)).Seconds()
			}
		}
		snap.Ring = rs
	}

	if reg := s.store.Namespaces(); reg != nil && reg.Len() > 0 {
		entries, totals := reg.Snapshot()
		snap.Namespaces = &NamespacesSnapshot{Totals: totals, Entries: entries}
	}

	st := s.store.Stats()
	snap.WAL = WALSnapshot{
		Records:                st.WALRecords,
		Syncs:                  st.WALSyncs,
		Snapshots:              st.Snapshots,
		ReplayedRecords:        st.ReplayedRecords,
		LastSnapshotAgeSeconds: -1,
	}
	if !st.LastSnapshot.IsZero() {
		snap.WAL.LastSnapshotUnixNano = st.LastSnapshot.UnixNano()
		snap.WAL.LastSnapshotAgeSeconds = time.Since(st.LastSnapshot).Seconds()
	}
	snap.WAL.FsyncNs, snap.WAL.BatchKeys = s.store.WALHists()
	snap.WAL.GroupRecords, snap.WAL.CommitNs = s.store.WALGroupHists()
	snap.WAL.GroupCommits, snap.WAL.Waiters = s.store.WALGroupStats()

	snap.Replication = s.ReplicationStats()

	rep := s.tracer.Report()
	snap.Trace = TraceCounts{Requests: rep.Requests, Sampled: rep.Sampled, Slow: rep.Slow}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap.Runtime = RuntimeSnapshot{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		GCCycles:       ms.NumGC,
		GCPauseTotalNs: ms.PauseTotalNs,
	}

	snap.Ready = s.ready()
	return snap
}

// ready reports whether the process should accept traffic: not draining,
// and past any caller-supplied readiness gate (a replica mid-bootstrap).
func (s *Server) ready() bool {
	if s.closed.Load() {
		return false
	}
	if s.cfg.Ready != nil && !s.cfg.Ready() {
		return false
	}
	return true
}

func promCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promGaugeInt(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

func promGaugeFloat(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// WriteProm renders snap as Prometheus text exposition (version 0.0.4).
// Every series carries # HELP and # TYPE lines, emitted once per metric
// name, before its samples.
func (snap ServerSnapshot) WriteProm(w io.Writer) {
	// Per-op request counters under one metric name; sorted for a
	// deterministic exposition.
	ops := make([]string, 0, len(snap.Ops))
	for name := range snap.Ops {
		ops = append(ops, name)
	}
	sort.Strings(ops)
	fmt.Fprintf(w, "# HELP mpcbfd_requests_total Requests served, by wire operation.\n")
	fmt.Fprintf(w, "# TYPE mpcbfd_requests_total counter\n")
	for _, name := range ops {
		fmt.Fprintf(w, "mpcbfd_requests_total{op=%q} %d\n", name, snap.Ops[name])
	}
	promCounter(w, "mpcbfd_request_errors_total", "Requests that returned an error status.", snap.OpErrors)
	snap.LatencyNs.WritePromSeconds(w, "mpcbfd_request_duration_seconds", "Request latency from dispatch to response encoding.")
	// Pre-interpolated quantile gauges beside the raw histogram: dashboards
	// that can't run histogram_quantile (or want the server's own
	// interpolation) read these directly.
	promGaugeFloat(w, "mpcbfd_request_latency_p50_seconds", "Interpolated request-latency median.", snap.LatencyNs.Quantile(0.50)/1e9)
	promGaugeFloat(w, "mpcbfd_request_latency_p99_seconds", "Interpolated request-latency 99th percentile.", snap.LatencyNs.Quantile(0.99)/1e9)

	promGaugeInt(w, "mpcbfd_connections_open", "Connections currently open.", snap.Conns.Open)
	promCounter(w, "mpcbfd_connections_accepted_total", "Connections accepted.", snap.Conns.Accepted)
	promCounter(w, "mpcbfd_connections_rejected_total", "Connections refused by the MaxConns limit.", snap.Conns.Rejected)
	promCounter(w, "mpcbfd_bytes_in_total", "Request frame bytes received.", snap.BytesIn)
	promCounter(w, "mpcbfd_bytes_out_total", "Response frame bytes sent.", snap.BytesOut)

	promGaugeInt(w, "mpcbfd_filter_len", "Elements currently in the filter.", int64(snap.Filter.Len))
	promGaugeFloat(w, "mpcbfd_filter_fill_ratio", "Fraction of increment capacity consumed (0..1).", snap.Filter.FillRatio)
	promGaugeInt(w, "mpcbfd_filter_saturated_words", "HCBF words frozen as always-positive by overflow.", int64(snap.Filter.SaturatedWords))
	promGaugeInt(w, "mpcbfd_filter_memory_bits", "Aggregate filter footprint in bits.", int64(snap.Filter.MemoryBits))
	promGaugeInt(w, "mpcbfd_filter_shards", "Shard count of the filter.", int64(snap.Filter.Shards))

	writeShardProm(w, snap.Shards)

	if win := snap.Window; win != nil {
		promGaugeFloat(w, "mpcbfd_window_span_seconds", "Configured sliding-window span.", float64(win.SpanNs)/1e9)
		promGaugeFloat(w, "mpcbfd_window_rotate_every_seconds", "Rotation period (span / generations): the staleness bound.", float64(win.RotateEveryNs)/1e9)
		promGaugeInt(w, "mpcbfd_window_generations", "Generation ring size G.", int64(win.Generations))
		promGaugeInt(w, "mpcbfd_window_head", "Ring slot currently receiving inserts.", int64(win.Head))
		promCounter(w, "mpcbfd_window_rotations_total", "Ring rotations since the window was created.", win.Rotations)
		promGaugeInt(w, "mpcbfd_window_pending_expiries", "Precise-mode TTL entries awaiting expiry.", int64(win.PendingExpiries))
		fmt.Fprintf(w, "# HELP mpcbfd_window_generation_items Elements per generation, by ring slot.\n# TYPE mpcbfd_window_generation_items gauge\n")
		for i, n := range win.GenItems {
			fmt.Fprintf(w, "mpcbfd_window_generation_items{gen=\"%d\"} %d\n", i, n)
		}
		win.RotationNs.WritePromSeconds(w, "mpcbfd_window_rotation_duration_seconds", "Time holding the mutation lock per ring rotation.")
	}

	if el := snap.Elastic; el != nil {
		promGaugeInt(w, "mpcbfd_elastic_generations", "Generations in the elastic chain (including imports).", int64(el.Generations))
		promCounter(w, "mpcbfd_elastic_grows_total", "Growth events: new head generations appended since the chain was created.", uint64(el.Grows))
		promCounter(w, "mpcbfd_elastic_imports_total", "Frozen generations spliced in by IMPORT (resharding).", el.Imports)
		promGaugeInt(w, "mpcbfd_elastic_imported_keys", "Population of the imported (frozen) generations — keys moved here by resharding.", int64(el.ImportedKeys))
		promGaugeInt(w, "mpcbfd_elastic_imported_bytes", "Memory held by imported generations.", el.ImportedBytes)
		promGaugeFloat(w, "mpcbfd_elastic_target_fpr", "Chain-wide false positive bound the growth schedule maintains.", el.TargetFPR)
		promGaugeFloat(w, "mpcbfd_elastic_expected_fpr", "Analytic chain FPR at current occupancy (union bound over generations).", el.ExpectedFPR)
		emitGen := func(name, help string, val func(g elastic.GenStats) string) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for i, g := range el.Gens {
				fmt.Fprintf(w, "%s{gen=\"%d\"} %s\n", name, i, val(g))
			}
		}
		emitGen("mpcbfd_elastic_generation_items", "Elements per chain generation (oldest first).",
			func(g elastic.GenStats) string { return fmt.Sprintf("%d", g.Items) })
		emitGen("mpcbfd_elastic_generation_fill_ratio", "Fill ratio per chain generation (0..1).",
			func(g elastic.GenStats) string { return fmt.Sprintf("%g", g.FillRatio) })
		emitGen("mpcbfd_elastic_generation_fpr_budget", "Tightened FPR budget per generation (0 for imported generations).",
			func(g elastic.GenStats) string { return fmt.Sprintf("%g", g.Budget) })
	}

	if r := snap.Ring; r != nil {
		promGaugeInt(w, "mpcbfd_ring_epoch", "Cluster partition-map epoch this node last adopted.", int64(r.Epoch))
		joint := int64(0)
		if r.Joint {
			joint = 1
		}
		promGaugeInt(w, "mpcbfd_ring_joint", "1 during a reshard's dual-write window, 0 after cutover.", joint)
		promGaugeInt(w, "mpcbfd_ring_old_nodes", "Primaries in the outgoing partition map.", int64(r.OldNodes))
		promGaugeInt(w, "mpcbfd_ring_new_nodes", "Primaries in the incoming partition map.", int64(r.NewNodes))
		promGaugeFloat(w, "mpcbfd_ring_joint_seconds", "Seconds spent in the current dual-write window (0 outside one).", r.JointSeconds)
	}

	if n := snap.Namespaces; n != nil {
		writeNamespaceProm(w, n)
	}

	promCounter(w, "mpcbfd_wal_records_total", "Mutations appended to the write-ahead log.", snap.WAL.Records)
	promCounter(w, "mpcbfd_wal_syncs_total", "WAL fsync calls.", snap.WAL.Syncs)
	promCounter(w, "mpcbfd_snapshots_total", "Snapshots written since start.", snap.WAL.Snapshots)
	promGaugeInt(w, "mpcbfd_replayed_records", "WAL records replayed at the last open.", int64(snap.WAL.ReplayedRecords))
	promGaugeFloat(w, "mpcbfd_last_snapshot_age_seconds", "Seconds since the last snapshot (-1 before the first).", snap.WAL.LastSnapshotAgeSeconds)
	snap.WAL.FsyncNs.WritePromSeconds(w, "mpcbfd_wal_fsync_duration_seconds", "WAL fsync latency.")
	promGaugeFloat(w, "mpcbfd_wal_fsync_p50_seconds", "Interpolated WAL fsync latency median.", snap.WAL.FsyncNs.Quantile(0.50)/1e9)
	promGaugeFloat(w, "mpcbfd_wal_fsync_p99_seconds", "Interpolated WAL fsync latency 99th percentile.", snap.WAL.FsyncNs.Quantile(0.99)/1e9)
	snap.WAL.BatchKeys.WritePromCounts(w, "mpcbfd_wal_batch_keys", "Keys committed per WAL append.")
	promCounter(w, "mpcbfd_wal_group_commits_total", "Commit rounds (one write+fsync shared by every record enqueued when the round began).", snap.WAL.GroupCommits)
	promGaugeInt(w, "mpcbfd_wal_commit_waiters", "Callers currently blocked waiting for a commit round.", snap.WAL.Waiters)
	snap.WAL.GroupRecords.WritePromCounts(w, "mpcbfd_wal_group_records", "Records per commit round: the group-commit amortization factor.")
	snap.WAL.CommitNs.WritePromSeconds(w, "mpcbfd_wal_commit_duration_seconds", "Commit round latency (buffer swap + write + fsync).")

	promGaugeInt(w, "mpcbfd_connected_replicas", "Replication subscribers currently streaming.", int64(snap.Replication.Connected))
	promGaugeInt(w, "mpcbfd_replication_max_lag_bytes", "WAL bytes the furthest-behind subscriber trails the live end.", snap.Replication.MaxLagBytes)

	promCounter(w, "mpcbfd_trace_requests_total", "Request IDs assigned by the tracer.", snap.Trace.Requests)
	promCounter(w, "mpcbfd_trace_sampled_total", "Requests sampled into the recent-trace ring.", snap.Trace.Sampled)
	promCounter(w, "mpcbfd_trace_slow_total", "Requests over the slow-op threshold.", snap.Trace.Slow)

	promGaugeInt(w, "mpcbfd_goroutines", "Goroutines in the process.", int64(snap.Runtime.Goroutines))
	promGaugeInt(w, "mpcbfd_heap_alloc_bytes", "Bytes of allocated heap objects.", int64(snap.Runtime.HeapAllocBytes))
	promGaugeInt(w, "mpcbfd_heap_sys_bytes", "Heap memory obtained from the OS.", int64(snap.Runtime.HeapSysBytes))
	promGaugeInt(w, "mpcbfd_heap_objects", "Live heap objects.", int64(snap.Runtime.HeapObjects))
	promCounter(w, "mpcbfd_gc_cycles_total", "Completed GC cycles.", uint64(snap.Runtime.GCCycles))
	promGaugeFloat(w, "mpcbfd_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", float64(snap.Runtime.GCPauseTotalNs)/1e9)

	ready := int64(0)
	if snap.Ready {
		ready = 1
	}
	promGaugeInt(w, "mpcbfd_ready", "1 when the process is accepting traffic (see /readyz).", ready)
}

// writeNamespaceProm renders the multi-tenant families: registry-wide
// totals plus per-namespace series labeled {ns=...}. Only emitted when
// namespaces exist, so a single-tenant daemon's exposition is unchanged.
func writeNamespaceProm(w io.Writer, n *NamespacesSnapshot) {
	promGaugeInt(w, "mpcbfd_ns_count", "Named namespaces in the registry.", int64(n.Totals.Count))
	promGaugeInt(w, "mpcbfd_ns_resident_count", "Named namespaces currently resident in memory.", int64(n.Totals.Resident))
	promGaugeInt(w, "mpcbfd_ns_quota_bytes", "Memory budget across all named namespaces (0: unlimited).", n.Totals.QuotaBytes)
	promGaugeInt(w, "mpcbfd_ns_resident_bytes", "Summed filter bytes of resident named namespaces.", n.Totals.ResidentBytes)

	emit := func(name, typ, help string, val func(e ns.EntrySnapshot) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, e := range n.Entries {
			fmt.Fprintf(w, "%s{ns=%q} %d\n", name, e.Name, val(e))
		}
	}
	emit("mpcbfd_ns_items", "gauge", "Elements per namespace.",
		func(e ns.EntrySnapshot) uint64 { return e.Items })
	emit("mpcbfd_ns_memory_bytes", "gauge", "Filter footprint per namespace in bytes.",
		func(e ns.EntrySnapshot) uint64 { return e.MemoryBytes })
	emit("mpcbfd_ns_resident", "gauge", "1 when the namespace is resident, 0 when evicted to disk.",
		func(e ns.EntrySnapshot) uint64 {
			if e.Resident {
				return 1
			}
			return 0
		})
	emit("mpcbfd_ns_evictions_total", "counter", "Times each namespace was evicted to its snapshot file.",
		func(e ns.EntrySnapshot) uint64 { return e.Evictions })
	emit("mpcbfd_ns_recoveries_total", "counter", "Times each namespace was recovered from its snapshot file.",
		func(e ns.EntrySnapshot) uint64 { return e.Recoveries })
	emit("mpcbfd_ns_elastic_generations", "gauge", "Elastic chain length per namespace (0: not elastic).",
		func(e ns.EntrySnapshot) uint64 { return uint64(e.Generations) })
}

// writeShardProm renders the per-shard gauge families, one HELP/TYPE
// block per metric name with a sample per shard.
func writeShardProm(w io.Writer, shards []mpcbf.ShardStats) {
	emit := func(name, typ, help string, val func(st mpcbf.ShardStats) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for i, st := range shards {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %s\n", name, i, val(st))
		}
	}
	emit("mpcbfd_shard_items", "gauge", "Elements per shard.",
		func(st mpcbf.ShardStats) string { return fmt.Sprintf("%d", st.Items) })
	emit("mpcbfd_shard_fill_ratio", "gauge", "Fraction of increment capacity consumed per shard (0..1).",
		func(st mpcbf.ShardStats) string { return fmt.Sprintf("%g", st.FillRatio) })
	emit("mpcbfd_shard_saturated_words", "gauge", "Saturated HCBF words per shard.",
		func(st mpcbf.ShardStats) string { return fmt.Sprintf("%d", st.SaturatedWords) })
	emit("mpcbfd_shard_inserts_total", "counter", "Insert operations routed to each shard.",
		func(st mpcbf.ShardStats) string { return fmt.Sprintf("%d", st.Inserts) })
	emit("mpcbfd_shard_deletes_total", "counter", "Delete operations routed to each shard.",
		func(st mpcbf.ShardStats) string { return fmt.Sprintf("%d", st.Deletes) })
	emit("mpcbfd_shard_queries_total", "counter", "Membership and count queries routed to each shard.",
		func(st mpcbf.ShardStats) string { return fmt.Sprintf("%d", st.Queries) })
}

// WriteProm writes the full Prometheus exposition for s: a fresh
// snapshot plus any Config.Extra contribution.
func (s *Server) WriteProm(w io.Writer) {
	s.Snapshot().WriteProm(w)
	if s.cfg.Extra != nil {
		s.cfg.Extra.WriteProm(w)
	}
}

// Vars returns the expvar document: the same snapshot /metrics renders,
// plus any Config.Extra contribution under its own keys.
func (s *Server) Vars() map[string]any {
	m := map[string]any{"server": s.Snapshot()}
	if s.cfg.Extra != nil {
		for k, v := range s.cfg.Extra.Vars() {
			m[k] = v
		}
	}
	return m
}
