package client

import (
	"time"

	"repro/server/wire"
)

// Namespace admin operations plus a per-namespace view of the data API.
//
// A daemon multiplexes many independent filters keyed by name; every
// data operation can target one of them by wrapping the request in the
// NAMESPACED envelope. Namespace is a value-type view over a Client
// that does exactly that — it holds no connection state of its own, so
// creating one per request is free and all views on one Client share
// its connection, serialization, and reconnect policy.

// CreateNamespace creates an independent filter named name on the
// daemon. Zero-valued cfg fields take the daemon's namespace defaults;
// set cfg.WindowNanos (and optionally cfg.Generations) for a sliding-
// window namespace. Creating a name that already exists with the same
// effective configuration succeeds idempotently; with a different
// configuration it fails with *ServerError.
func (c *Client) CreateNamespace(name string, cfg wire.NsConfig) error {
	return c.doNS(wire.OpNsCreate, []byte(name), nil, nil, 0, cfg, Trace{}, nil)
}

// DropNamespace deletes the named filter and everything in it.
// Dropping a name that does not exist succeeds (idempotent).
func (c *Client) DropNamespace(name string) error {
	return c.doNS(wire.OpNsDrop, []byte(name), nil, nil, 0, wire.NsConfig{}, Trace{}, nil)
}

// ListNamespaces returns the daemon's namespace names, sorted.
func (c *Client) ListNamespaces() ([]string, error) {
	var names []string
	err := c.do(wire.OpNsList, nil, nil, 0, func(body []byte) (err error) {
		names, err = wire.DecodeNsList(body)
		return err
	})
	if err != nil {
		return nil, err
	}
	return names, nil
}

// NamespaceStats reports one namespace's residency, occupancy, and
// eviction/recovery counters. The empty name reports the default
// (anonymous) namespace.
func (c *Client) NamespaceStats(name string) (wire.NsStats, error) {
	var st wire.NsStats
	err := c.doNS(wire.OpNsStats, []byte(name), nil, nil, 0, wire.NsConfig{}, Trace{}, func(body []byte) (err error) {
		st, err = wire.DecodeNsStats(body)
		return err
	})
	return st, err
}

// Namespace returns a view whose data operations all target the named
// filter. The view does not verify the namespace exists; daemons create
// it lazily (with default configuration) on first mutation, and reads
// of an unknown namespace answer empty. Method semantics otherwise
// match the Client method of the same name.
func (c *Client) Namespace(name string) Namespace {
	return Namespace{c: c, ns: []byte(name)}
}

// Namespace is a per-namespace view of a Client's data API; see
// Client.Namespace.
type Namespace struct {
	c  *Client
	ns []byte
}

// Name returns the namespace name this view targets.
func (n Namespace) Name() string { return string(n.ns) }

// Traced returns a view issuing this namespace's data operations inside
// a TRACE envelope carrying tc; see Client.Traced.
func (n Namespace) Traced(tc Trace) TracedClient {
	return TracedClient{c: n.c, tc: tc, ns: n.ns}
}

// Insert adds key to the namespace.
func (n Namespace) Insert(key []byte) error {
	return n.c.doNS(wire.OpInsert, n.ns, key, nil, 0, wire.NsConfig{}, Trace{}, nil)
}

// Delete removes a previously inserted key from the namespace.
func (n Namespace) Delete(key []byte) error {
	return n.c.doNS(wire.OpDelete, n.ns, key, nil, 0, wire.NsConfig{}, Trace{}, nil)
}

// Contains reports whether key may be in the namespace.
func (n Namespace) Contains(key []byte) (bool, error) {
	var ok bool
	err := n.c.doNS(wire.OpContains, n.ns, key, nil, 0, wire.NsConfig{}, Trace{}, func(body []byte) (err error) {
		ok, err = wire.DecodeBool(body)
		return err
	})
	return ok, err
}

// EstimateCount returns an upper bound on key's multiplicity in the
// namespace.
func (n Namespace) EstimateCount(key []byte) (int, error) {
	var v uint64
	err := n.c.doNS(wire.OpEstimate, n.ns, key, nil, 0, wire.NsConfig{}, Trace{}, func(body []byte) (err error) {
		v, err = wire.DecodeU64(body)
		return err
	})
	return int(v), err
}

// Len returns the namespace's current element count.
func (n Namespace) Len() (int, error) {
	var v uint64
	err := n.c.doNS(wire.OpLen, n.ns, nil, nil, 0, wire.NsConfig{}, Trace{}, func(body []byte) (err error) {
		v, err = wire.DecodeU64(body)
		return err
	})
	return int(v), err
}

// InsertBatch inserts keys into the namespace as one request.
func (n Namespace) InsertBatch(keys [][]byte) error {
	return n.c.doNS(wire.OpInsertBatch, n.ns, nil, keys, 0, wire.NsConfig{}, Trace{}, nil)
}

// DeleteBatch deletes keys from the namespace as one request, returning
// order-preserving flags for which keys were actually removed.
func (n Namespace) DeleteBatch(keys [][]byte) ([]bool, error) {
	return n.DeleteBatchInto(keys, nil)
}

// DeleteBatchInto is DeleteBatch decoding into dst's backing array.
func (n Namespace) DeleteBatchInto(keys [][]byte, dst []bool) ([]bool, error) {
	var out []bool
	err := n.c.doNS(wire.OpDeleteBatch, n.ns, nil, keys, 0, wire.NsConfig{}, Trace{}, func(body []byte) (err error) {
		out, err = wire.DecodeBoolsInto(body, dst)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ContainsBatch answers membership in the namespace, order-preserving.
func (n Namespace) ContainsBatch(keys [][]byte) ([]bool, error) {
	return n.ContainsBatchInto(keys, nil)
}

// ContainsBatchInto is ContainsBatch decoding into dst's backing array.
func (n Namespace) ContainsBatchInto(keys [][]byte, dst []bool) ([]bool, error) {
	var out []bool
	err := n.c.doNS(wire.OpContainsBatch, n.ns, nil, keys, 0, wire.NsConfig{}, Trace{}, func(body []byte) (err error) {
		out, err = wire.DecodeBoolsInto(body, dst)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InsertTTL inserts key with a per-key lifetime (windowed namespaces
// only; a non-windowed namespace answers with *ServerError).
func (n Namespace) InsertTTL(key []byte, ttl time.Duration) error {
	return n.c.doNS(wire.OpInsertTTL, n.ns, key, nil, uint64(max(ttl, 0)), wire.NsConfig{}, Trace{}, nil)
}

// InsertTTLBatch inserts keys sharing one TTL as a single request
// (windowed namespaces only).
func (n Namespace) InsertTTLBatch(keys [][]byte, ttl time.Duration) error {
	return n.c.doNS(wire.OpInsertTTLBatch, n.ns, nil, keys, uint64(max(ttl, 0)), wire.NsConfig{}, Trace{}, nil)
}

// WindowStats reports a windowed namespace's generation ring.
func (n Namespace) WindowStats() (wire.WindowStats, error) {
	var st wire.WindowStats
	err := n.c.doNS(wire.OpWindowStats, n.ns, nil, nil, 0, wire.NsConfig{}, Trace{}, func(body []byte) (err error) {
		st, err = wire.DecodeWindowStats(body)
		return err
	})
	return st, err
}

// Stats reports the namespace's residency, occupancy, and counters.
func (n Namespace) Stats() (wire.NsStats, error) {
	return n.c.NamespaceStats(string(n.ns))
}

// Dump fetches a consistent point-in-time binary encoding of the
// namespace's filter (decode with repro.UnmarshalSharded, or
// window.UnmarshalFilter when window.IsWindowed reports a windowed
// encoding). The returned slice is the caller's to keep.
func (n Namespace) Dump() ([]byte, error) {
	var blob []byte
	err := n.c.doNS(wire.OpDump, n.ns, nil, nil, 0, wire.NsConfig{}, Trace{}, func(body []byte) error {
		blob = append([]byte(nil), body...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return blob, nil
}
