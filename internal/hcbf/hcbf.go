// Package hcbf implements the Hierarchical Counting Bloom Filter of the
// paper's Section III.B: the per-word data structure at the heart of MPCBF.
//
// A HCBF lives inside one w-bit machine word. The word is split into d
// levels laid out contiguously: level 1 is a b1-bit membership vector, and
// level j+1 holds exactly one bit per 1-bit of level j, ordered by parent
// position (so |v_{j+1}| = popcount(v_j)). The counter value of slot i is
// the length of the chain of 1-bits reached by repeated popcount indexing:
// starting at level-1 bit i, a 1 at position p of level j continues at
// position popcount_j(p) (the number of 1s before p in level j) of level
// j+1, and the first 0 terminates the chain (Algorithm 1).
//
// Incrementing a slot flips the first 0 on its chain to 1 and inserts a new
// 0 child bit in the next level, shifting the tail of the word right by one
// — so every outstanding increment consumes exactly one bit, and the word
// stores b1 + (sum of all counters) bits. Bits are only spent on non-zero
// counters, which is why b1 can be far larger than the w/4 slots a packed
// 4-bit-counter word offers, and why MPCBF's false positive rate beats the
// standard CBF's at equal memory.
package hcbf

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
)

// ErrOverflow is returned when an increment does not fit in the word: the
// hierarchy already occupies all w bits (the word-overflow event of the
// paper's Section III.B.4).
var ErrOverflow = errors.New("hcbf: word overflow")

// ErrUnderflow is returned when a decrement targets a slot whose counter is
// zero — deleting an element that was never inserted.
var ErrUnderflow = errors.New("hcbf: counter underflow")

// Word dispatch modes. Word-aligned default geometries take the
// register-resident kernel (kernel.go); everything else — the w=32/256
// ablation sweeps, unaligned windows, forced-generic views — walks the
// arena bit by bit.
const (
	modeGeneric = iota // per-bit arena walk (reference path)
	mode64             // w=64, 64-bit-aligned base: single-register kernel
	mode128            // w=128, 64-bit-aligned base: two-register kernel
)

// Word is a view of one HCBF embedded in a bit arena. The zero value is
// not usable; construct views via NewWord. Word carries no state of its
// own: everything is encoded in the arena bits, so views are cheap values.
type Word struct {
	arena *bitvec.Vector
	base  int   // absolute bit offset of the word in the arena
	w     int   // word width in bits
	b1    int   // first-level (membership sub-vector) width in bits
	mode  uint8 // kernel dispatch mode
}

// NewWord returns a view of the w-bit window starting at bit offset base
// of arena, interpreted as a HCBF with a b1-bit first level. Views over
// 64-bit-aligned windows of width 64 or 128 automatically use the
// register-resident kernel; all other geometries use the generic path.
func NewWord(arena *bitvec.Vector, base, w, b1 int) (Word, error) {
	h, err := NewWordGeneric(arena, base, w, b1)
	if err != nil {
		return h, err
	}
	if base&63 == 0 {
		switch w {
		case 64:
			h.mode = mode64
		case 128:
			h.mode = mode128
		}
	}
	return h, nil
}

// NewWordGeneric is NewWord with the kernel disabled: the view always takes
// the generic arena path. It exists for the kernel/generic differential
// tests and for ablations that want the reference implementation.
func NewWordGeneric(arena *bitvec.Vector, base, w, b1 int) (Word, error) {
	switch {
	case arena == nil:
		return Word{}, errors.New("hcbf: nil arena")
	case w <= 0:
		return Word{}, fmt.Errorf("hcbf: word width must be positive (w=%d)", w)
	case b1 <= 0 || b1 > w:
		return Word{}, fmt.Errorf("hcbf: first level must satisfy 0 < b1 <= w (b1=%d, w=%d)", b1, w)
	case base < 0 || base+w > arena.Len():
		return Word{}, fmt.Errorf("hcbf: window [%d,%d) outside arena of %d bits", base, base+w, arena.Len())
	}
	return Word{arena: arena, base: base, w: w, b1: b1, mode: modeGeneric}, nil
}

// Kernel reports whether the view uses the register-resident kernel.
func (h Word) Kernel() bool { return h.mode != modeGeneric }

// W returns the word width in bits.
func (h Word) W() int { return h.w }

// B1 returns the first-level width in bits (the slot range of the word).
func (h Word) B1() int { return h.b1 }

func (h Word) checkSlot(slot int) {
	if slot < 0 || slot >= h.b1 {
		panic(fmt.Sprintf("hcbf: slot %d out of range [0,%d)", slot, h.b1))
	}
}

// Has reports whether slot's counter is non-zero. Only the first level is
// consulted, which is what makes MPCBF queries single-access: membership
// never needs the hierarchy.
func (h Word) Has(slot int) bool {
	h.checkSlot(slot)
	switch h.mode {
	case mode64:
		return Has64(h.arena.Uint64At(h.base), slot)
	case mode128:
		return Has128(h.arena.Uint64At(h.base), h.arena.Uint64At(h.base+64), slot)
	}
	return h.arena.Get(h.base + slot)
}

// Count returns the counter value of slot by walking its chain.
func (h Word) Count(slot int) int {
	h.checkSlot(slot)
	switch h.mode {
	case mode64:
		return Count64(h.arena.Uint64At(h.base), h.b1, slot)
	case mode128:
		return Count128(h.arena.Uint64At(h.base), h.arena.Uint64At(h.base+64), h.b1, slot)
	}
	start, size := h.base, h.b1
	pos := slot
	c := 0
	for h.arena.Get(start + pos) {
		c++
		childIdx := h.arena.Ones(start, start+pos)
		nextSize := h.arena.Ones(start, start+size)
		pos, start, size = childIdx, start+size, nextSize
	}
	return c
}

// Used returns the number of occupied bits: b1 plus one bit per
// outstanding increment. It is recomputed from the bits alone so that a
// Word view needs no side state.
func (h Word) Used() int {
	switch h.mode {
	case mode64:
		return Used64(h.arena.Uint64At(h.base), h.b1)
	case mode128:
		return Used128(h.arena.Uint64At(h.base), h.arena.Uint64At(h.base+64), h.b1)
	}
	start, size := h.base, h.b1
	total := h.b1
	for {
		ones := h.arena.Ones(start, start+size)
		if ones == 0 {
			return total
		}
		start += size
		size = ones
		total += size
	}
}

// Free returns the number of increments the word can still absorb.
func (h Word) Free() int { return h.w - h.Used() }

// Levels returns the sizes of the hierarchy levels currently in use,
// starting with b1. The slice length is the depth d; Σ Levels() == Used().
func (h Word) Levels() []int {
	switch h.mode {
	case mode64:
		return Levels64(h.arena.Uint64At(h.base), h.b1, nil)
	case mode128:
		return Levels128(h.arena.Uint64At(h.base), h.arena.Uint64At(h.base+64), h.b1, nil)
	}
	sizes := []int{h.b1}
	start, size := h.base, h.b1
	for {
		ones := h.arena.Ones(start, start+size)
		if ones == 0 {
			return sizes
		}
		start += size
		size = ones
		sizes = append(sizes, size)
	}
}

// Inc increments slot's counter. It returns the depth of the hierarchy
// level where the chain's first 0 was found (the counter's new value),
// which callers use for access-bandwidth accounting. ErrOverflow is
// returned, with no state change, when the word has no free bit.
func (h Word) Inc(slot int) (depth int, err error) {
	h.checkSlot(slot)
	switch h.mode {
	case mode64:
		x := h.arena.Uint64At(h.base)
		if Used64(x, h.b1) >= 64 {
			return 0, ErrOverflow
		}
		nx, depth := Inc64(x, h.b1, slot)
		h.arena.SetUint64At(h.base, nx)
		return depth, nil
	case mode128:
		lo, hi := h.arena.Uint64At(h.base), h.arena.Uint64At(h.base+64)
		if Used128(lo, hi, h.b1) >= 128 {
			return 0, ErrOverflow
		}
		nlo, nhi, depth := Inc128(lo, hi, h.b1, slot)
		h.arena.SetUint64At(h.base, nlo)
		h.arena.SetUint64At(h.base+64, nhi)
		return depth, nil
	}
	if h.Used() >= h.w {
		return 0, ErrOverflow
	}
	return h.incGeneric(slot), nil
}

// incGeneric is the arena-walking increment; the caller has verified the
// word has a free bit.
func (h Word) incGeneric(slot int) (depth int) {
	start, size := h.base, h.b1
	pos := slot
	depth = 1
	for h.arena.Get(start + pos) {
		childIdx := h.arena.Ones(start, start+pos)
		nextSize := h.arena.Ones(start, start+size)
		pos, start, size = childIdx, start+size, nextSize
		depth++
	}
	// First 0 of the chain is at (level depth, pos). Flip it and give it a
	// 0 child at position popcount(pos) of the next level, shifting the
	// tail of the word right by one bit.
	childIdx := h.arena.Ones(start, start+pos)
	h.arena.Set(start+pos, true)
	h.arena.InsertZero(start+size+childIdx, h.base+h.w)
	return depth
}

// IncBatch increments every slot of slots as one atomic word transaction:
// the capacity check runs once against the batch size, and either all
// increments apply or none do (ErrOverflow). On kernel geometries the word
// is loaded into registers once, updated len(slots) times, and stored back
// once — the fused per-key update path of the MPCBF core.
func (h Word) IncBatch(slots []int) error {
	for _, s := range slots {
		h.checkSlot(s)
	}
	switch h.mode {
	case mode64:
		x := h.arena.Uint64At(h.base)
		if 64-Used64(x, h.b1) < len(slots) {
			return ErrOverflow
		}
		for _, s := range slots {
			x, _ = Inc64(x, h.b1, s)
		}
		h.arena.SetUint64At(h.base, x)
		return nil
	case mode128:
		lo, hi := h.arena.Uint64At(h.base), h.arena.Uint64At(h.base+64)
		if 128-Used128(lo, hi, h.b1) < len(slots) {
			return ErrOverflow
		}
		for _, s := range slots {
			lo, hi, _ = Inc128(lo, hi, h.b1, s)
		}
		h.arena.SetUint64At(h.base, lo)
		h.arena.SetUint64At(h.base+64, hi)
		return nil
	}
	if h.Free() < len(slots) {
		return ErrOverflow
	}
	for _, s := range slots {
		h.incGeneric(s)
	}
	return nil
}

// Dec decrements slot's counter, undoing the deepest increment of its
// chain. It returns the depth of the removed chain link (the counter's
// previous value). ErrUnderflow is returned, with no state change, when
// the counter is zero.
func (h Word) Dec(slot int) (depth int, err error) {
	h.checkSlot(slot)
	switch h.mode {
	case mode64:
		nx, depth, ok := Dec64(h.arena.Uint64At(h.base), h.b1, slot)
		if !ok {
			return 0, ErrUnderflow
		}
		h.arena.SetUint64At(h.base, nx)
		return depth, nil
	case mode128:
		lo, hi := h.arena.Uint64At(h.base), h.arena.Uint64At(h.base+64)
		nlo, nhi, depth, ok := Dec128(lo, hi, h.b1, slot)
		if !ok {
			return 0, ErrUnderflow
		}
		h.arena.SetUint64At(h.base, nlo)
		h.arena.SetUint64At(h.base+64, nhi)
		return depth, nil
	}
	return h.decGeneric(slot)
}

// decGeneric is the arena-walking decrement.
func (h Word) decGeneric(slot int) (depth int, err error) {
	start, size := h.base, h.b1
	pos := slot
	if !h.arena.Get(start + pos) {
		return 0, ErrUnderflow
	}
	depth = 1
	for {
		childIdx := h.arena.Ones(start, start+pos)
		nextStart := start + size
		nextSize := h.arena.Ones(start, start+size)
		childAbs := nextStart + childIdx
		if !h.arena.Get(childAbs) {
			// (level depth, pos) is the chain's last 1: remove its 0 child
			// and clear it.
			h.arena.RemoveBit(childAbs, h.base+h.w)
			h.arena.Set(start+pos, false)
			return depth, nil
		}
		pos, start, size = childIdx, nextStart, nextSize
		depth++
	}
}

// DecBatch decrements every slot of slots, skipping slots whose counter is
// already zero, and returns how many were skipped. On kernel geometries the
// word is loaded once and stored once, mirroring IncBatch; unlike IncBatch
// the batch is not atomic — each slot decrements independently, matching
// the counting-filter deletion semantics of the core.
func (h Word) DecBatch(slots []int) (underflows int) {
	for _, s := range slots {
		h.checkSlot(s)
	}
	switch h.mode {
	case mode64:
		x := h.arena.Uint64At(h.base)
		for _, s := range slots {
			var ok bool
			if x, _, ok = Dec64(x, h.b1, s); !ok {
				underflows++
			}
		}
		h.arena.SetUint64At(h.base, x)
		return underflows
	case mode128:
		lo, hi := h.arena.Uint64At(h.base), h.arena.Uint64At(h.base+64)
		for _, s := range slots {
			var ok bool
			if lo, hi, _, ok = Dec128(lo, hi, h.b1, s); !ok {
				underflows++
			}
		}
		h.arena.SetUint64At(h.base, lo)
		h.arena.SetUint64At(h.base+64, hi)
		return underflows
	}
	for _, s := range slots {
		if _, err := h.decGeneric(s); err != nil {
			underflows++
		}
	}
	return underflows
}

// String renders the word's levels as bit strings separated by '|', e.g.
// "10101001|0110|00". Intended for tests and debugging.
func (h Word) String() string {
	out := ""
	start := h.base
	for i, size := range h.Levels() {
		if i > 0 {
			out += "|"
		}
		for p := start; p < start+size; p++ {
			if h.arena.Get(p) {
				out += "1"
			} else {
				out += "0"
			}
		}
		start += size
	}
	return out
}
