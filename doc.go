// Package mpcbf implements Multiple-Partitioned Counting Bloom Filters —
// fast, accurate counting Bloom filters that answer membership queries
// with a single memory access — together with the classic structures they
// are evaluated against.
//
// It is a from-scratch Go reproduction of:
//
//	Kun Huang, Jie Zhang, Dafang Zhang, Gaogang Xie, Kave Salamatian,
//	Alex X. Liu, Wei Li. "A Multi-Partitioning Approach to Building Fast
//	and Accurate Counting Bloom Filters". IEEE IPDPS 2013.
//
// # The structures
//
//   - MPCBF (New): the paper's contribution. The counter vector is split
//     into machine words, each organized as a hierarchical CBF whose
//     popcount-indexed levels spend bits only on non-zero counters. A
//     query reads g words (g=1 by default); at equal memory the false
//     positive rate is roughly an order of magnitude below the standard
//     CBF's.
//   - CBF (NewCBF): the standard counting Bloom filter of Fan et al. —
//     m 4-bit saturating counters, k memory accesses per operation.
//   - PCBF (NewPCBF): the naive partitioned CBF — one memory access, but
//     a worse false positive rate than CBF (Section III.A baseline).
//   - Bloom / BlockedBloom (NewBloom, NewBlockedBloom): plain membership
//     filters, including the one-memory-access blocked filter (BF-g) that
//     inspired MPCBF.
//
// # Quick start
//
//	f, err := mpcbf.New(mpcbf.Options{
//		MemoryBits:    8 << 20, // 8 Mb
//		ExpectedItems: 100000,
//	})
//	if err != nil { ... }
//	f.Insert([]byte("alpha"))
//	f.Contains([]byte("alpha")) // true
//	f.Delete([]byte("alpha"))
//
// Every structure is deterministic under a fixed Options.Seed, supports
// Insert/Delete/Contains/EstimateCount, and reports per-operation costs in
// the paper's memory-access/hash-bit model via the *WithCost methods.
//
// # Word kernel
//
// At the default geometry (64-bit words, and 128-bit words as the
// two-register variant) each HCBF word lives at a 64-bit-aligned arena
// offset, so every operation loads the whole word into a register once,
// runs Algorithm 1 as math/bits popcounts and shift/mask splices, and
// stores it back once — a true single memory access per word rather than a
// per-bit walk. Odd geometries (the w=32/256 ablation sweeps) transparently
// fall back to the generic arena path, which differential fuzzing keeps
// bit-for-bit identical to the kernel. ContainsBatch (and
// Sharded.ContainsBatch) amortize per-call overhead across bulk queries.
//
// # Serving
//
// The repro/server and repro/client packages lift the sharded filter
// into a network service: cmd/mpcbfd serves the wire protocol of
// repro/server/wire over TCP with a write-ahead log, snapshots, and an
// HTTP metrics sidecar, so a fleet of processes can share one
// membership oracle (the deployment shape of the paper's Section V
// join). See README.md "Running the server".
//
// The cmd/mpexp binary regenerates every table and figure of the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md.
package mpcbf
