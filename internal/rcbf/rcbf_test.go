package rcbf

import (
	"fmt"
	"testing"

	"repro/internal/cbf"
	"repro/internal/hashing"
)

func keys(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("zero buckets accepted")
	}
	f, err := ForPopulation(0, 1)
	if err != nil || f.Buckets() != 1 {
		t.Fatalf("ForPopulation floor: %v, %d", err, f.Buckets())
	}
}

func TestRoundTrip(t *testing.T) {
	f, _ := ForPopulation(5000, 1)
	in := keys("in", 5000)
	for _, k := range in {
		if err := f.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if f.Count() != 5000 {
		t.Fatalf("Count = %d", f.Count())
	}
	for _, k := range in {
		if !f.Contains(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	for _, k := range in {
		if err := f.Delete(k); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	if f.Count() != 0 || f.MemoryBits() != f.Buckets()*2 {
		t.Fatalf("not empty after unwind: count=%d mem=%d", f.Count(), f.MemoryBits())
	}
	for _, k := range in {
		if f.Contains(k) {
			t.Fatalf("stale positive for %q", k)
		}
	}
}

func TestDeleteAbsent(t *testing.T) {
	f, _ := ForPopulation(100, 1)
	if err := f.Delete([]byte("ghost")); err != ErrNotFound {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
}

func TestMultiplicity(t *testing.T) {
	f, _ := ForPopulation(100, 1)
	k := []byte("dup")
	for i := 1; i <= 5; i++ {
		f.Insert(k)
		if got := f.CountOf(k); got != i {
			t.Fatalf("CountOf after %d inserts = %d", i, got)
		}
	}
	for i := 0; i < 5; i++ {
		if err := f.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if f.Contains(k) {
		t.Fatal("present after balanced deletes")
	}
}

func TestMemoryProportionalToPopulation(t *testing.T) {
	// RCBF's defining property: memory tracks stored fingerprints, not a
	// preallocated counter array.
	f, _ := ForPopulation(10000, 2)
	base := f.MemoryBits()
	for i, k := range keys("in", 1000) {
		f.Insert(k)
		if got, want := f.MemoryBits(), base+(i+1)*fpBits; got != want {
			t.Fatalf("after %d inserts MemoryBits = %d, want %d", i+1, got, want)
		}
	}
}

func TestMemoryAdvantageOverCBF(t *testing.T) {
	// The ICNP paper's claim: ~3x less memory than the CBF at comparable
	// false positive rates. Build both for the same population, compare
	// measured fpr per bit.
	const n = 20000
	r, _ := ForPopulation(n, 3)
	for _, k := range keys("in", n) {
		if err := r.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	// A CBF with the same memory budget as the loaded RCBF.
	std, err := cbf.FromMemory(r.MemoryBits(), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys("in", n) {
		std.Insert(k)
	}
	fpR, fpC := 0, 0
	const probes = 300000
	for _, k := range keys("out", probes) {
		if r.Contains(k) {
			fpR++
		}
		if std.Contains(k) {
			fpC++
		}
	}
	if fpR*3 >= fpC {
		t.Fatalf("RCBF fp=%d not well below CBF fp=%d at equal memory", fpR, fpC)
	}
}

func TestProbeCost(t *testing.T) {
	f, _ := New(1024, 0)
	_, st := f.Probe([]byte("x"))
	if st.MemAccesses != 1 {
		t.Fatalf("probe accesses = %d, want 1", st.MemAccesses)
	}
	if st.HashBits != 10+fpBits {
		t.Fatalf("probe bits = %d", st.HashBits)
	}
}

func TestRandomOpsAgainstReference(t *testing.T) {
	f, _ := ForPopulation(500, 5)
	ref := make(map[string]int)
	rng := hashing.NewRNG(41)
	universe := keys("u", 300)
	for op := 0; op < 20000; op++ {
		k := universe[rng.Intn(len(universe))]
		if rng.Intn(2) == 0 || ref[string(k)] == 0 {
			if err := f.Insert(k); err != nil {
				t.Fatal(err)
			}
			ref[string(k)]++
		} else {
			if err := f.Delete(k); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			ref[string(k)]--
		}
	}
	total := 0
	for k, n := range ref {
		total += n
		if n > 0 && !f.Contains([]byte(k)) {
			t.Fatalf("false negative for %q", k)
		}
		if n > 0 && f.CountOf([]byte(k)) < n {
			t.Fatalf("CountOf(%q) = %d below %d", k, f.CountOf([]byte(k)), n)
		}
	}
	if f.Count() != total {
		t.Fatalf("Count = %d, reference %d", f.Count(), total)
	}
}

func TestFenwickOffsetsConsistent(t *testing.T) {
	// Offsets must be non-decreasing and partition the store exactly.
	f, _ := New(64, 7)
	for _, k := range keys("in", 500) {
		f.Insert(k)
	}
	prev := 0
	total := 0
	for b := 0; b < f.Buckets(); b++ {
		off := f.offset(b)
		if off < prev {
			t.Fatalf("offset regression at bucket %d", b)
		}
		prev = off
		total += f.bucketLen(b)
	}
	if total != len(f.store) || f.offset(f.Buckets()) != len(f.store) {
		t.Fatalf("bucket lengths sum %d, store %d", total, len(f.store))
	}
}

func TestReset(t *testing.T) {
	f, _ := ForPopulation(100, 0)
	f.Insert([]byte("a"))
	f.Reset()
	if f.Count() != 0 || f.Contains([]byte("a")) {
		t.Fatal("Reset incomplete")
	}
}
