// Package e2e is the shared daemon harness for end-to-end tests: build
// the real mpcbfd binary (once per test process), spawn it on loopback
// ports, wait for it to accept connections, and SIGKILL/restart it on
// the same data directory. The crash-recovery, replication, windowing,
// namespace, observability, and fault-simulation tests all drive real
// processes through this package instead of each carrying its own copy
// of the spawn/kill/wait-ready plumbing.
package e2e

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/client"
)

var buildOnce struct {
	sync.Once
	bin string
	err error
}

// BuildDaemon compiles cmd/mpcbfd and returns the binary path. The
// build runs once per test process and is shared by every test in the
// package — rebuilding an unchanged binary per test was the slowest
// line in the old per-file helpers.
func BuildDaemon(t testing.TB) string {
	t.Helper()
	buildOnce.Do(func() {
		root, err := findRoot()
		if err != nil {
			buildOnce.err = err
			return
		}
		dir, err := os.MkdirTemp("", "mpcbfd-e2e-")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "mpcbfd")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/mpcbfd")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildOnce.err = fmt.Errorf("go build ./cmd/mpcbfd: %w\n%s", err, out)
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatal(buildOnce.err)
	}
	return buildOnce.bin
}

// findRoot walks up from the test's working directory to the module
// root (the directory holding go.mod), so the harness works from any
// package depth.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("e2e: no go.mod above working directory")
		}
		dir = parent
	}
}

// FreePort reserves a loopback port and releases it for the daemon to
// claim.
func FreePort(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// syncBuffer guards daemon output: exec's pipe goroutine writes while
// the test reads for assertions and failure dumps.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// DaemonConfig describes one mpcbfd process. Zero values get the
// shared e2e defaults (2MiB filter, 20k items, 4 shards, fsync always,
// no snapshot timer, 5s drain) so tests only state what they vary.
type DaemonConfig struct {
	// Bin is the binary from BuildDaemon.
	Bin string
	// Dir is the data directory.
	Dir string
	// Addr is the wire listen address (from FreePort).
	Addr string
	// HTTPAddr is the observability sidecar address; empty disables it.
	HTTPAddr string
	// ReplicateFrom makes the node a read replica of the given primary.
	ReplicateFrom string
	// Chaos exposes the /chaos failpoint endpoint on the HTTP sidecar.
	Chaos bool
	// Extra is appended verbatim after the defaults, so it can override
	// them (flag packages take the last occurrence).
	Extra []string
}

// Daemon is one live mpcbfd process.
type Daemon struct {
	cmd *exec.Cmd
	out *syncBuffer
}

// Output returns everything the daemon has written to stdout/stderr.
func (d *Daemon) Output() string { return d.out.String() }

// String makes %s-formatting a daemon in t.Fatalf dump its output.
func (d *Daemon) String() string { return d.out.String() }

// Signal delivers sig to the process.
func (d *Daemon) Signal(sig os.Signal) error { return d.cmd.Process.Signal(sig) }

// Wait blocks until the process exits and returns its exit error.
func (d *Daemon) Wait() error { return d.cmd.Wait() }

// Kill SIGKILLs the daemon and reaps it — the crash half of every
// crash-recovery test. Safe to call on an already-dead process.
func (d *Daemon) Kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// StartDaemon launches one mpcbfd with the shared defaults plus cfg
// and registers a kill-and-reap cleanup. Restart after a crash is
// simply StartDaemon again with the same config.
func StartDaemon(t testing.TB, cfg DaemonConfig) *Daemon {
	t.Helper()
	args := []string{
		"-addr", cfg.Addr, "-http", cfg.HTTPAddr, "-dir", cfg.Dir,
		"-mem", "2097152", "-n", "20000", "-shards", "4",
		"-fsync", "always", "-snapshot-interval", "0",
		"-drain-timeout", "5s",
	}
	if cfg.ReplicateFrom != "" {
		args = append(args, "-replicate-from", cfg.ReplicateFrom)
	}
	if cfg.Chaos {
		args = append(args, "-chaos")
	}
	args = append(args, cfg.Extra...)
	cmd := exec.Command(cfg.Bin, args...)
	out := &syncBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &Daemon{cmd: cmd, out: out}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

// DialRetry waits for the daemon to accept connections, then returns a
// connected client. It fails the test after 15s.
func DialRetry(t testing.TB, addr string, opts ...client.Option) *client.Client {
	t.Helper()
	opts = append([]client.Option{client.WithTimeout(5 * time.Second)}, opts...)
	deadline := time.Now().Add(15 * time.Second)
	for {
		c, err := client.Dial(addr, opts...)
		if err == nil {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
