package server

import (
	"errors"
	"fmt"

	mpcbf "repro"
	"repro/elastic"
	"repro/server/ns"
	"repro/server/wire"
	"repro/window"
)

// Elastic mode: when StoreOptions.Elastic is set, the store's state is
// an elastic.Filter — a chain of Sharded MPCBF generations that grows
// when the head saturates — instead of a single fixed-capacity filter.
// Two WAL-only record types make the chain's shape durable:
//
//	ELASTIC_GROW:   body = [0xE5]         — a new head generation was appended
//	ELASTIC_IMPORT: body = [0xE6][blob]   — blob (a Sharded encoding) spliced
//	                                        in as a frozen generation
//
// Like ROTATE, the opcodes live outside the wire protocol's space:
// growth is never a client request — the head's fill ratio drives it —
// and an import's durable form is the exact generation bytes, so replay
// and byte-mirror replicas rebuild the identical chain. Both are flush
// barriers in the batch applier: keys logged before a growth event must
// land in the pre-growth head, or replay would spread them across
// generations the live filter never used.
//
// Growth ordering: the insert that tips the head over GrowAt applies and
// enqueues first, then the GROW record — both under the mutation lock,
// in one commit round. The chain is therefore a pure function of the
// durable record sequence: a crash after the insert but before the GROW
// is durable replays to a head one insert fuller, recovery re-detects
// NeedsGrow on the next insert, and the regrown chain has the same
// geometry because generation geometry depends only on the growth index
// (see elastic.Filter.Grow).
const (
	walOpElasticGrow   = 0xE5
	walOpElasticImport = 0xE6
)

// elf returns the elastic chain, nil when the store is not elastic; safe
// without the mutation lock.
func (s *Store) elf() *elastic.Filter { return s.el.Load() }

// IsElastic reports whether the store runs in elastic (generational
// growth) mode.
func (s *Store) IsElastic() bool { return s.elf() != nil }

// Elastic exposes the elastic chain for read-only inspection (nil when
// not elastic).
func (s *Store) Elastic() *elastic.Filter { return s.elf() }

var errNotElastic = errors.New("server: not an elastic store (start mpcbfd with -elastic)")

func elasticOptionsFrom(opts StoreOptions) elastic.Options {
	return elastic.Options{
		Filter:    opts.Filter,
		Shards:    opts.Shards,
		TargetFPR: opts.ElasticFPR,
	}
}

// growEnqLocked checks the default chain's growth trigger after an
// insert has been applied and enqueued, and — when due — grows the chain
// and logs the GROW record. It returns the grow ticket (0 when nothing
// grew): the caller replaces its data ticket with it so the ack also
// covers the growth event. Errors are logged, not returned: the
// triggering insert already succeeded and must be acknowledged; a chain
// that failed to grow keeps absorbing inserts into its head and retries
// on the next one. Caller holds s.mu with walCtx == nil.
func (s *Store) growEnqLocked() uint64 {
	el := s.elf()
	if el == nil || !el.NeedsGrow() {
		return 0
	}
	if err := el.Grow(); err != nil {
		s.opts.Log.Error("elastic grow failed", "error", err)
		return 0
	}
	ticket, err := s.wal.Enqueue(walOpElasticGrow, nil, nil)
	if err != nil {
		s.opts.Log.Error("elastic grow log failed", "error", err)
		return 0
	}
	s.opts.Log.Info("elastic growth", "generations", el.Generations())
	return ticket
}

// nsGrowEnqLocked is growEnqLocked for a namespaced chain: the GROW
// record rides the selection context the data record just established
// (walCtx == e), and the registry's resident-byte accounting is rebased
// to the grown chain before the quota re-check. Caller holds s.mu.
func (s *Store) nsGrowEnqLocked(e *ns.Entry) uint64 {
	el := e.Elastic()
	if el == nil || !el.NeedsGrow() {
		return 0
	}
	if err := el.Grow(); err != nil {
		s.opts.Log.Error("elastic grow failed", "ns", e.Name(), "error", err)
		return 0
	}
	ticket, err := s.wal.Enqueue(walOpElasticGrow, nil, nil)
	if err != nil {
		s.opts.Log.Error("elastic grow log failed", "ns", e.Name(), "error", err)
		return 0
	}
	s.reg.Rebase(e)
	if err := s.reg.EnsureQuota(e); err != nil {
		s.opts.Log.Warn("namespace quota after elastic growth", "ns", e.Name(), "error", err)
	}
	s.opts.Log.Info("elastic growth", "ns", e.Name(), "generations", el.Generations())
	return ticket
}

// applyElasticGrow replays one ELASTIC_GROW record into the selected
// chain (recovery and replication).
func (s *Store) applyElasticGrow() error {
	if e := s.walCtx; e != nil {
		if !e.IsElastic() {
			return fmt.Errorf("elastic grow record for non-elastic namespace %q", e.Name())
		}
		if err := s.nsResidentLocked(e); err != nil {
			return err
		}
		if err := e.Elastic().Grow(); err != nil {
			return err
		}
		s.reg.Rebase(e)
		return nil
	}
	el := s.elf()
	if el == nil {
		return errors.New("elastic grow record in a non-elastic store")
	}
	return el.Grow()
}

// applyElasticImport replays one ELASTIC_IMPORT record: the body is the
// exact Sharded encoding the primary logged, spliced in as a frozen
// generation just below the head.
func (s *Store) applyElasticImport(body []byte) error {
	g, err := mpcbf.UnmarshalSharded(body)
	if err != nil {
		return fmt.Errorf("elastic import record: %w", err)
	}
	if e := s.walCtx; e != nil {
		if !e.IsElastic() {
			return fmt.Errorf("elastic import record for non-elastic namespace %q", e.Name())
		}
		if err := s.nsResidentLocked(e); err != nil {
			return err
		}
		e.Elastic().ImportGeneration(g)
		s.reg.Rebase(e)
		return nil
	}
	el := s.elf()
	if el == nil {
		return errors.New("elastic import record in a non-elastic store")
	}
	el.ImportGeneration(g)
	return nil
}

// --- IMPORT (the resharding receive path) ---------------------------------

// importGen pairs a decoded generation with the exact bytes its WAL
// record will carry, so replay decodes the same bytes back.
type importGen struct {
	f    *mpcbf.Sharded
	blob []byte
}

// importGenerations decides what an IMPORT blob splices into the chain.
// A bare Sharded encoding becomes one frozen generation; a dumped
// elastic chain is flattened into one frozen generation per non-empty
// source generation (a chain import during resharding must not graft the
// source's growth schedule onto the destination's). Windowed state and
// namespace containers are refused: their keys carry expiry or tenancy
// the flat chain cannot represent.
func importGenerations(blob []byte) ([]importGen, error) {
	switch {
	case isNsContainer(blob):
		return nil, errors.New("server: IMPORT of a namespace container (dump one filter or one namespace)")
	case window.IsWindowed(blob):
		return nil, errors.New("server: IMPORT of a windowed filter (its generations expire on the source's clock)")
	case elastic.IsElastic(blob):
		src, err := elastic.UnmarshalFilter(blob)
		if err != nil {
			return nil, fmt.Errorf("server: IMPORT blob: %w", err)
		}
		blobs, err := src.ExportGenerations()
		if err != nil {
			return nil, err
		}
		gens := make([]importGen, 0, len(blobs))
		for _, b := range blobs {
			g, err := mpcbf.UnmarshalSharded(b)
			if err != nil {
				return nil, fmt.Errorf("server: IMPORT blob: %w", err)
			}
			if g.Len() == 0 {
				continue // an empty generation buys probe cost, not keys
			}
			gens = append(gens, importGen{f: g, blob: b})
		}
		return gens, nil
	default:
		g, err := mpcbf.UnmarshalSharded(blob)
		if err != nil {
			return nil, fmt.Errorf("server: IMPORT blob: %w", err)
		}
		if g.Len() == 0 {
			return nil, nil
		}
		return []importGen{{f: g, blob: blob}}, nil
	}
}

// checkImportRecordSizes rejects an import whose generations would not
// fit in WAL records BEFORE anything is applied: an oversize record
// would append fine but be discarded as corruption at the next replay.
func checkImportRecordSizes(gens []importGen) error {
	for _, g := range gens {
		if 1+len(g.blob) > wireMaxWALRecord {
			return fmt.Errorf("server: imported generation (%d bytes) exceeds the %d-byte WAL record bound; reshard with smaller source generations", len(g.blob), wireMaxWALRecord)
		}
	}
	return nil
}

// Import splices a dumped filter into the default elastic chain as
// frozen generation(s), durably. The ack is the reshard handoff
// watermark: once Import returns nil, every imported key survives a
// crash here.
func (s *Store) Import(blob []byte) error { return s.importFilter(blob, nil) }

func (s *Store) importFilter(blob []byte, tr *reqTrace) error {
	ticket, err := s.importEnq(blob, tr)
	if err != nil {
		return err
	}
	return s.wal.WaitDurable(ticket, tr)
}

// importEnq applies an import and logs one ELASTIC_IMPORT record per
// generation, returning the last record's commit ticket (0 when the
// blob held no keys).
func (s *Store) importEnq(blob []byte, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.elf()
	if el == nil {
		return 0, errNotElastic
	}
	gens, err := importGenerations(blob)
	if err != nil {
		return 0, err
	}
	if err := checkImportRecordSizes(gens); err != nil {
		return 0, err
	}
	if err := s.selectLocked(nil); err != nil {
		return 0, err
	}
	t0 := tr.now()
	var ticket uint64
	for _, g := range gens {
		el.ImportGeneration(g.f)
		tk, err := s.wal.Enqueue(walOpElasticImport, g.blob, tr)
		if err != nil {
			return 0, err
		}
		ticket = tk
	}
	tr.addFilter(t0)
	return ticket, nil
}

// nsImportEnq is importEnq against a named namespace. The target must
// already exist and be elastic — an import must not lazily create a
// namespace whose geometry the source never saw.
func (s *Store) nsImportEnq(name, blob []byte, tr *reqTrace) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.nsEntryLocked(name, false)
	if err != nil {
		return 0, err
	}
	if e == nil {
		return 0, fmt.Errorf("server: unknown namespace %q", name)
	}
	el := e.Elastic()
	if el == nil {
		return 0, fmt.Errorf("server: namespace %q is not elastic", name)
	}
	gens, err := importGenerations(blob)
	if err != nil {
		return 0, err
	}
	if err := checkImportRecordSizes(gens); err != nil {
		return 0, err
	}
	if err := s.selectLocked(e); err != nil {
		return 0, err
	}
	t0 := tr.now()
	var ticket uint64
	for _, g := range gens {
		el.ImportGeneration(g.f)
		tk, err := s.wal.Enqueue(walOpElasticImport, g.blob, tr)
		if err != nil {
			return 0, err
		}
		ticket = tk
	}
	tr.addFilter(t0)
	s.reg.Rebase(e)
	if err := s.reg.EnsureQuota(e); err != nil {
		s.opts.Log.Warn("namespace quota after import", "ns", e.Name(), "error", err)
	}
	return ticket, nil
}

// --- ELASTIC_STATS --------------------------------------------------------

// elasticWireStats converts the chain's stats into their wire shape.
func elasticWireStats(st elastic.Stats) wire.ElasticStats {
	out := wire.ElasticStats{
		Grows:     st.Grows,
		Imports:   st.Imports,
		TargetFPR: st.TargetFPR,
		Gens:      make([]wire.ElasticGenStats, len(st.Gens)),
	}
	for i, g := range st.Gens {
		out.Gens[i] = wire.ElasticGenStats{
			Items:      uint64(g.Items),
			Capacity:   uint64(g.Capacity),
			FillRatio:  g.FillRatio,
			Budget:     g.Budget,
			MemoryBits: uint64(g.MemoryBits),
			Imported:   g.Imported,
		}
	}
	return out
}

// ElasticStats reports the default chain's shape. Elastic stores only.
func (s *Store) ElasticStats() (wire.ElasticStats, error) {
	el := s.elf()
	if el == nil {
		return wire.ElasticStats{}, errNotElastic
	}
	return elasticWireStats(el.Stats()), nil
}

// NsElasticStats reports a named elastic namespace's chain shape.
func (s *Store) NsElasticStats(name []byte) (wire.ElasticStats, error) {
	e := s.reg.Lookup(name)
	if e == nil {
		return wire.ElasticStats{}, fmt.Errorf("server: unknown namespace %q", name)
	}
	el := e.Elastic()
	if el == nil {
		return wire.ElasticStats{}, fmt.Errorf("server: namespace %q is not elastic", name)
	}
	return elasticWireStats(el.Stats()), nil
}
