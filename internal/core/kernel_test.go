package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// twinFilters builds two filters with identical geometry and seed, one on
// the register-resident kernel and one forced onto the generic arena path.
func twinFilters(t *testing.T, cfg Config) (kernel, generic *Filter) {
	t.Helper()
	k, err := New(cfg)
	if err != nil {
		t.Fatalf("kernel filter: %v", err)
	}
	gcfg := cfg
	gcfg.DisableKernel = true
	g, err := New(gcfg)
	if err != nil {
		t.Fatalf("generic filter: %v", err)
	}
	return k, g
}

// checkTwins asserts the two filters are observably identical: same arena
// bits, same element count, same overflow statistics.
func checkTwins(t *testing.T, step string, k, g *Filter) {
	t.Helper()
	if !k.arena.Equal(g.arena) {
		t.Fatalf("%s: kernel and generic arenas diverge", step)
	}
	if k.count != g.count {
		t.Fatalf("%s: count %d vs %d", step, k.count, g.count)
	}
	if k.overflows != g.overflows {
		t.Fatalf("%s: overflows %d vs %d", step, k.overflows, g.overflows)
	}
	if len(k.saturated) != len(g.saturated) {
		t.Fatalf("%s: saturated words %d vs %d", step, len(k.saturated), len(g.saturated))
	}
}

// TestKernelVsGenericDifferential replays long random insert/delete/query
// sequences on kernel and generic filters across the kernel geometries
// (w=64 and w=128, g=1 and g=2) and requires bit-for-bit agreement.
func TestKernelVsGenericDifferential(t *testing.T) {
	configs := []Config{
		{MemoryBits: 1 << 14, ExpectedN: 200, W: 64, K: 3, G: 1, Seed: 11, Overflow: OverflowSaturate},
		{MemoryBits: 1 << 14, ExpectedN: 200, W: 64, K: 4, G: 2, Seed: 12, Overflow: OverflowSaturate},
		{MemoryBits: 1 << 14, ExpectedN: 200, W: 128, K: 3, G: 1, Seed: 13, Overflow: OverflowSaturate},
		{MemoryBits: 1 << 12, B1: 40, W: 64, K: 3, G: 1, Seed: 14, Overflow: OverflowFail},
	}
	for ci, cfg := range configs {
		t.Run(fmt.Sprintf("cfg%d_w%d_g%d", ci, cfg.W, cfg.G), func(t *testing.T) {
			k, g := twinFilters(t, cfg)
			if k.kmode == kmodeGeneric {
				t.Fatalf("config did not take the kernel")
			}
			rng := rand.New(rand.NewSource(int64(ci)))
			live := make(map[int]int)
			phantomDeletes := 0
			for step := 0; step < 3000; step++ {
				id := rng.Intn(300)
				key := []byte(fmt.Sprintf("key-%03d", id))
				switch rng.Intn(3) {
				case 0:
					kerr := k.Insert(key)
					gerr := g.Insert(key)
					if (kerr == nil) != (gerr == nil) {
						t.Fatalf("step %d: Insert errs %v vs %v", step, kerr, gerr)
					}
					if kerr == nil {
						live[id]++
					}
				case 1:
					kerr := k.Delete(key)
					gerr := g.Delete(key)
					if (kerr == nil) != (gerr == nil) {
						t.Fatalf("step %d: Delete errs %v vs %v", step, kerr, gerr)
					}
					if kerr == nil {
						if live[id] > 0 {
							live[id]--
						} else {
							// Collision delete: the key's slots were all held
							// up by other elements, so this stole their bits.
							phantomDeletes++
						}
					}
				case 2:
					if k.Contains(key) != g.Contains(key) {
						t.Fatalf("step %d: Contains(%s) diverges", step, key)
					}
					if k.CountOf(key) != g.CountOf(key) {
						t.Fatalf("step %d: CountOf(%s) diverges", step, key)
					}
				}
				checkTwins(t, fmt.Sprintf("step %d", step), k, g)
			}
			// No false negatives on either path for everything still live —
			// valid only if no collision delete stole bits from live keys
			// (standard counting-filter caveat).
			if phantomDeletes > 0 {
				return
			}
			for id, n := range live {
				if n <= 0 {
					continue
				}
				key := []byte(fmt.Sprintf("key-%03d", id))
				if !k.Contains(key) || !g.Contains(key) {
					t.Fatalf("false negative for %s (count %d)", key, n)
				}
			}
		})
	}
}

// TestDeleteAbsentKeyKeepsCount is the regression test for the count-drift
// bug: a failed delete (underflow on some slot) must not decrement the
// element count, on either dispatch path.
func TestDeleteAbsentKeyKeepsCount(t *testing.T) {
	for _, disable := range []bool{false, true} {
		f, err := New(Config{MemoryBits: 1 << 12, B1: 40, W: 64, K: 3, Seed: 5,
			Overflow: OverflowSaturate, DisableKernel: disable})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := f.Insert([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if f.Count() != 8 {
			t.Fatalf("count = %d after 8 inserts", f.Count())
		}
		// Deleting keys that were never inserted must fail and leave the
		// count alone, no matter how often it is retried.
		for i := 0; i < 50; i++ {
			if err := f.Delete([]byte(fmt.Sprintf("absent-%d", i))); err == nil {
				// A full k-slot collision with live keys can legitimately
				// delete; with 8 keys in 2^12 bits it does not happen.
				t.Fatalf("delete of absent key %d unexpectedly succeeded", i)
			}
		}
		if f.Count() != 8 {
			t.Fatalf("disable=%v: count drifted to %d after failed deletes, want 8",
				disable, f.Count())
		}
	}
}

// TestContainsBatch checks order preservation, dst reuse, and agreement with
// the scalar query.
func TestContainsBatch(t *testing.T) {
	f, err := New(Config{MemoryBits: 1 << 13, ExpectedN: 50, W: 64, K: 3, Seed: 9,
		Overflow: OverflowSaturate})
	if err != nil {
		t.Fatal(err)
	}
	var keys [][]byte
	for i := 0; i < 60; i++ {
		keys = append(keys, []byte(fmt.Sprintf("batch-%02d", i)))
	}
	for i := 0; i < 30; i++ {
		if err := f.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	got := f.ContainsBatch(keys, nil)
	if len(got) != len(keys) {
		t.Fatalf("len = %d, want %d", len(got), len(keys))
	}
	for i, k := range keys {
		if got[i] != f.Contains(k) {
			t.Fatalf("batch[%d] = %v disagrees with Contains", i, got[i])
		}
	}
	// A reused dst of sufficient capacity must be written in place.
	dst := make([]bool, 0, len(keys))
	got2 := f.ContainsBatch(keys, dst)
	if &got2[0] != &dst[:1][0] {
		t.Fatal("sufficient-capacity dst was reallocated")
	}
	for i := range got {
		if got[i] != got2[i] {
			t.Fatalf("reused-dst result diverges at %d", i)
		}
	}
}
