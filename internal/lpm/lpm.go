// Package lpm implements Bloom-filter-assisted longest prefix matching in
// the style of Dharmapurikar, Krishnamurthy and Taylor (SIGCOMM 2003) —
// the IP-route-lookup application the paper's introduction motivates.
//
// One counting filter per prefix length guards an exact hash table: a
// lookup probes the filters from longest prefix to shortest and consults
// the (slow, off-chip in hardware) exact table only on filter hits. A
// filter false positive costs one wasted exact probe, never a wrong
// route. Using MPCBF as the per-length filter keeps each probe at one
// memory access and — because MPCBF counts — lets routes be withdrawn
// without rebuilding, which the original static-Bloom design cannot do.
package lpm

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// MaxBits is the IPv4 address width.
const MaxBits = 32

// ErrNoRoute is returned by Lookup when no prefix covers the address.
var ErrNoRoute = errors.New("lpm: no matching route")

// ErrNotFound is returned by Remove for an absent route.
var ErrNotFound = errors.New("lpm: route not found")

// Table is a dynamic longest-prefix-match table.
type Table struct {
	// filters[l] guards the prefixes of length l (1-based; length 0 is
	// the default route, held directly).
	filters [MaxBits + 1]*core.Filter
	exact   [MaxBits + 1]map[uint32]uint32 // masked prefix -> next hop
	hasDef  bool
	defHop  uint32
	routes  int

	// Probe accounting for the experiment narrative.
	FilterProbes int64 // filter membership tests
	ExactProbes  int64 // exact-table consultations (filter hits)
}

// Config sizes the table.
type Config struct {
	// ExpectedRoutes sizes the per-length filters (split evenly).
	ExpectedRoutes int
	// FilterBitsPerRoute is the memory budget per route per filter level
	// (default 16).
	FilterBitsPerRoute int
	Seed               uint32
}

// New returns an empty table sized for cfg.ExpectedRoutes.
func New(cfg Config) (*Table, error) {
	if cfg.ExpectedRoutes <= 0 {
		return nil, fmt.Errorf("lpm: ExpectedRoutes must be positive (%d)", cfg.ExpectedRoutes)
	}
	bits := cfg.FilterBitsPerRoute
	if bits == 0 {
		bits = 16
	}
	perLevel := cfg.ExpectedRoutes/8 + 64 // real tables concentrate on few lengths
	memBits := perLevel * bits
	if memBits < 256 {
		memBits = 256
	}
	t := &Table{}
	for l := 1; l <= MaxBits; l++ {
		f, err := core.New(core.Config{
			MemoryBits: memBits,
			ExpectedN:  perLevel,
			K:          3,
			Seed:       cfg.Seed + uint32(l),
			Overflow:   core.OverflowSaturate,
		})
		if err != nil {
			return nil, fmt.Errorf("lpm: level %d: %w", l, err)
		}
		t.filters[l] = f
		t.exact[l] = make(map[uint32]uint32)
	}
	return t, nil
}

// mask returns addr masked to length bits.
func mask(addr uint32, length int) uint32 {
	if length <= 0 {
		return 0
	}
	return addr &^ (1<<(MaxBits-uint(length)) - 1)
}

func key(prefix uint32, length int) []byte {
	return []byte{
		byte(prefix >> 24), byte(prefix >> 16), byte(prefix >> 8), byte(prefix),
		byte(length),
	}
}

// Len returns the number of installed routes.
func (t *Table) Len() int { return t.routes }

// Insert installs (or updates) a route. length 0 sets the default route.
func (t *Table) Insert(prefix uint32, length int, nextHop uint32) error {
	if length < 0 || length > MaxBits {
		return fmt.Errorf("lpm: prefix length %d out of range", length)
	}
	if length == 0 {
		if !t.hasDef {
			t.routes++
		}
		t.hasDef, t.defHop = true, nextHop
		return nil
	}
	p := mask(prefix, length)
	if _, exists := t.exact[length][p]; !exists {
		if err := t.filters[length].Insert(key(p, length)); err != nil {
			return err
		}
		t.routes++
	}
	t.exact[length][p] = nextHop
	return nil
}

// Remove withdraws a route — the operation that requires *counting*
// filters: the per-length filter forgets the prefix so later lookups stop
// probing the exact table for it.
func (t *Table) Remove(prefix uint32, length int) error {
	if length < 0 || length > MaxBits {
		return fmt.Errorf("lpm: prefix length %d out of range", length)
	}
	if length == 0 {
		if !t.hasDef {
			return ErrNotFound
		}
		t.hasDef = false
		t.routes--
		return nil
	}
	p := mask(prefix, length)
	if _, exists := t.exact[length][p]; !exists {
		return ErrNotFound
	}
	delete(t.exact[length], p)
	t.routes--
	return t.filters[length].Delete(key(p, length))
}

// Lookup returns the next hop of the longest prefix covering addr.
func (t *Table) Lookup(addr uint32) (nextHop uint32, length int, err error) {
	for l := MaxBits; l >= 1; l-- {
		if len(t.exact[l]) == 0 {
			continue // empty level: a real router skips unused lengths
		}
		p := mask(addr, l)
		t.FilterProbes++
		if !t.filters[l].Contains(key(p, l)) {
			continue
		}
		t.ExactProbes++
		if hop, ok := t.exact[l][p]; ok {
			return hop, l, nil
		}
		// Filter false positive: wasted exact probe, keep scanning.
	}
	if t.hasDef {
		return t.defHop, 0, nil
	}
	return 0, 0, ErrNoRoute
}

// LookupExactOnly is the unfiltered baseline: consult the exact table at
// every non-empty length. Used to quantify the probe savings.
func (t *Table) LookupExactOnly(addr uint32) (nextHop uint32, length int, err error) {
	for l := MaxBits; l >= 1; l-- {
		if len(t.exact[l]) == 0 {
			continue
		}
		t.ExactProbes++
		if hop, ok := t.exact[l][mask(addr, l)]; ok {
			return hop, l, nil
		}
	}
	if t.hasDef {
		return t.defHop, 0, nil
	}
	return 0, 0, ErrNoRoute
}

// ResetStats zeroes the probe counters.
func (t *Table) ResetStats() {
	t.FilterProbes = 0
	t.ExactProbes = 0
}
