package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/server/wire"
)

// fakeServer answers each request with a canned response payload,
// letting the client be tested without the real daemon.
func fakeServer(t *testing.T, respond func(req wire.Request) []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var buf []byte
				for {
					payload, err := wire.ReadFrame(conn, buf, 0)
					if err != nil {
						return
					}
					buf = payload[:0]
					req, err := wire.DecodeRequest(payload)
					if err != nil {
						return
					}
					if err := wire.WriteFrame(conn, respond(req)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestClientDialFailure(t *testing.T) {
	// A listener that is immediately closed: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, WithTimeout(500*time.Millisecond)); err == nil {
		t.Fatal("Dial to dead address succeeded")
	}
}

func TestClientServerError(t *testing.T) {
	addr := fakeServer(t, func(req wire.Request) []byte {
		return wire.AppendErr(nil, "key not found")
	})
	c, err := Dial(addr, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Delete([]byte("missing"))
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *ServerError", err)
	}
	if se.Msg != "key not found" {
		t.Fatalf("Msg = %q", se.Msg)
	}
	if se.Error() != "mpcbfd: key not found" {
		t.Fatalf("Error() = %q", se.Error())
	}
	// A ServerError is an operation-level failure: the stream stayed in
	// sync and the client keeps working.
	if err := c.Delete([]byte("missing-too")); !errors.As(err, &se) {
		t.Fatalf("second call after ServerError: err = %v, want *ServerError", err)
	}
}

func TestClientBreaksOnTransportError(t *testing.T) {
	// A server that answers the first request with a truncated frame (the
	// header promises 8 payload bytes, only 2 arrive) and then stalls: the
	// client's read deadline fires mid-response, leaving the stream
	// position unknown.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	stall := make(chan struct{})
	t.Cleanup(func() { close(stall) })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.ReadFrame(conn, nil, 0); err != nil {
			return
		}
		conn.Write([]byte{8, 0, 0, 0, 0x01, 0x00})
		<-stall
	}()

	c, err := Dial(ln.Addr().String(), WithTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert([]byte("k")); err == nil {
		t.Fatal("truncated response accepted")
	}
	// The client must now be permanently broken and fail fast — not read
	// leftover bytes of the old response and mis-attribute them to the
	// next request.
	start := time.Now()
	if err := c.Insert([]byte("k2")); err == nil {
		t.Fatal("call on broken client succeeded")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("broken client appears to have performed I/O (%v)", elapsed)
	}
}

func TestClientDecodesResponses(t *testing.T) {
	addr := fakeServer(t, func(req wire.Request) []byte {
		switch req.Op {
		case wire.OpContains:
			return wire.AppendBool(wire.AppendOK(nil), true)
		case wire.OpEstimate:
			return wire.AppendU64(wire.AppendOK(nil), 7)
		case wire.OpLen:
			return wire.AppendU64(wire.AppendOK(nil), 42)
		case wire.OpContainsBatch:
			flags := make([]bool, len(req.Keys))
			for i := range flags {
				flags[i] = i%2 == 0
			}
			return wire.AppendBools(wire.AppendOK(nil), flags)
		}
		return wire.AppendOK(nil)
	})
	c, err := Dial(addr, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if ok, err := c.Contains([]byte("k")); err != nil || !ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	if n, err := c.EstimateCount([]byte("k")); err != nil || n != 7 {
		t.Fatalf("EstimateCount = %d, %v", n, err)
	}
	if n, err := c.Len(); err != nil || n != 42 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	if err := c.Insert([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertBatch([][]byte{[]byte("a"), []byte("b")}); err != nil {
		t.Fatal(err)
	}
	flags, err := c.ContainsBatch([][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("flags = %v, want %v", flags, want)
		}
	}
}

func TestClientMalformedResponse(t *testing.T) {
	addr := fakeServer(t, func(req wire.Request) []byte {
		return []byte{} // empty payload: no status byte
	})
	c, err := Dial(addr, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert([]byte("k")); err == nil {
		t.Fatal("empty response accepted")
	}
}
