package server

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/server/wire"
)

// HistBuckets is the bucket count of Histogram: power-of-two buckets
// covering 1..2^(HistBuckets-1) (~8.6s when the unit is nanoseconds);
// larger observations land in the last bucket.
const HistBuckets = 34

// Histogram is a lock-free power-of-two histogram: bucket i counts
// observations in [2^(i-1), 2^i). It is the one histogram shape used
// across the serving stack (request latency, WAL fsync latency, batch
// sizes, replica apply latency) so every exposition renders the same
// way. The zero value is ready to use.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value (a duration in nanoseconds, a batch size —
// any non-negative magnitude).
func (h *Histogram) Observe(v uint64) {
	idx := bits.Len64(v) // v in [2^(idx-1), 2^idx)
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d's nanosecond count.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(uint64(d.Nanoseconds()))
}

// HistSnapshot is a plain-value view of a Histogram, embeddable in the
// unified observability snapshot (and therefore in expvar JSON).
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []uint64 `json:"buckets"` // bucket i counts values in [2^(i-1), 2^i)
}

// Snapshot returns a consistent-enough plain view (each field is read
// atomically; the set is not a single atomic cut, which is fine for
// monitoring).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]uint64, HistBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// values by linear interpolation inside the power-of-two bucket the
// target count falls in: bucket i spans [2^(i-1), 2^i) (bucket 0 is
// [0, 1)), so the estimate is exact at bucket boundaries and off by at
// most a factor of two inside a bucket — plenty for p50/p99 latency
// reporting without a full sample recording. Returns 0 on an empty
// histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			lo, hi := histBucketBounds(i)
			frac := (target - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	_, hi := histBucketBounds(len(s.Buckets) - 1)
	return hi
}

// histBucketBounds returns bucket i's value range [lo, hi).
func histBucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
}

// HistSummary is the compact roll-up the load generator and the
// saturation bench report per operation: counts plus interpolated
// latency quantiles. Values carry whatever unit was observed
// (nanoseconds for the latency histograms).
type HistSummary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summary rolls the snapshot up into count/mean/p50/p90/p99.
func (s HistSnapshot) Summary() HistSummary {
	sum := HistSummary{
		Count: s.Count,
		Sum:   s.Sum,
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
	if s.Count > 0 {
		sum.Mean = float64(s.Sum) / float64(s.Count)
	}
	return sum
}

// Quantile estimates the q-quantile of the live histogram; see
// HistSnapshot.Quantile for the interpolation contract.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Summary rolls the live histogram up into count/mean/p50/p90/p99.
func (h *Histogram) Summary() HistSummary { return h.Snapshot().Summary() }

// WritePromSeconds renders a nanosecond-valued HistSnapshot as a
// Prometheus histogram in seconds.
func (s HistSnapshot) WritePromSeconds(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := uint64(0)
	for i := 0; i < len(s.Buckets)-1; i++ {
		cum += s.Buckets[i]
		le := float64(uint64(1)<<i) / 1e9
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", le), cum)
	}
	cum += s.Buckets[len(s.Buckets)-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(s.Sum)/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// WritePromCounts renders a count-valued HistSnapshot (e.g. batch sizes)
// as a Prometheus histogram with unit-less bounds.
func (s HistSnapshot) WritePromCounts(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := uint64(0)
	for i := 0; i < len(s.Buckets)-1; i++ {
		cum += s.Buckets[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, uint64(1)<<i, cum)
	}
	cum += s.Buckets[len(s.Buckets)-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// Metrics aggregates serving-side counters: per-op request counts, error
// count, connection accounting, byte volume, and a request latency
// histogram. All fields are atomics — safe for concurrent handlers and
// lock-free on the hot path.
type Metrics struct {
	ops      [256]atomic.Uint64 // indexed by opcode
	errors   atomic.Uint64
	rejected atomic.Uint64 // connections refused by the limit
	open     atomic.Int64
	accepted atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	lat      Histogram
}

// ObserveRequest records one completed request.
func (m *Metrics) ObserveRequest(op byte, d time.Duration, failed bool) {
	m.ops[op].Add(1)
	if failed {
		m.errors.Add(1)
	}
	m.lat.ObserveDuration(d)
}

// ConnOpened / ConnClosed / ConnRejected track connection lifecycle.
func (m *Metrics) ConnOpened()   { m.open.Add(1); m.accepted.Add(1) }
func (m *Metrics) ConnClosed()   { m.open.Add(-1) }
func (m *Metrics) ConnRejected() { m.rejected.Add(1) }

// AddBytes accounts frame traffic.
func (m *Metrics) AddBytes(in, out int) {
	if in > 0 {
		m.bytesIn.Add(uint64(in))
	}
	if out > 0 {
		m.bytesOut.Add(uint64(out))
	}
}

// Ops returns the request count for one opcode.
func (m *Metrics) Ops(op byte) uint64 { return m.ops[op].Load() }

// TotalOps returns the request count across all opcodes.
func (m *Metrics) TotalOps() uint64 {
	var t uint64
	for op := range wire.OpNames() {
		t += m.ops[op].Load()
	}
	return t
}
