package hashing

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// xxHash64 reference vectors computed with the canonical C implementation.
func TestXXHash64Vectors(t *testing.T) {
	cases := []struct {
		in   string
		seed uint64
		want uint64
	}{
		{"", 0, 0xef46db3751d8e999},
		{"", 1, 0xd5afba1336a3be4b},
		{"a", 0, 0xd24ec4f1a98c6e5b},
		{"abc", 0, 0x44bc2cf5ad770999},
		{"message digest", 0, 0x066ed728fceeb3be},
		{"abcdefghijklmnopqrstuvwxyz", 0, 0xcfe1f278fa89835c},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", 0, 0xaaa46907d3047814},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", 0, 0xe04a477f19ee145d},
	}
	for _, c := range cases {
		if got := XXHash64([]byte(c.in), c.seed); got != c.want {
			t.Errorf("XXHash64(%q, %d) = %#x, want %#x", c.in, c.seed, got, c.want)
		}
	}
}

// Murmur3 x64 128-bit reference vectors from the canonical implementation.
func TestMurmur128Vectors(t *testing.T) {
	cases := []struct {
		in     string
		seed   uint32
		h1, h2 uint64
	}{
		{"", 0, 0x0000000000000000, 0x0000000000000000},
		{"hello", 0, 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"19 Jan 2038 at 3:14:07 AM", 0, 0xb89e5988b737affc, 0x664fc2950231b2cb},
		{"The quick brown fox jumps over the lazy dog.", 0, 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
		{"hello", 1, 0xa78ddff5adae8d10, 0x128900ef20900135},
	}
	for _, c := range cases {
		h1, h2 := Murmur128([]byte(c.in), c.seed)
		if h1 != c.h1 || h2 != c.h2 {
			t.Errorf("Murmur128(%q, %d) = (%#x, %#x), want (%#x, %#x)",
				c.in, c.seed, h1, h2, c.h1, c.h2)
		}
	}
}

func TestXXHash64AllLengths(t *testing.T) {
	// Exercise every tail-length code path 0..64 and confirm determinism
	// plus sensitivity to each byte.
	buf := make([]byte, 65)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	seen := make(map[uint64]int)
	for n := 0; n <= 64; n++ {
		h := XXHash64(buf[:n], 42)
		if h2 := XXHash64(buf[:n], 42); h2 != h {
			t.Fatalf("nondeterministic at len %d", n)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between lengths %d and %d", prev, n)
		}
		seen[h] = n
	}
}

func TestMurmurByteSensitivity(t *testing.T) {
	base := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	h1, h2 := Murmur128(base, 0)
	for i := range base {
		mod := append([]byte(nil), base...)
		mod[i] ^= 1
		m1, m2 := Murmur128(mod, 0)
		if m1 == h1 && m2 == h2 {
			t.Fatalf("flipping byte %d did not change hash", i)
		}
	}
}

func TestReduceRange(t *testing.T) {
	f := func(x uint64, nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		r := Reduce(x, n)
		return r >= 0 && r < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceUniformity(t *testing.T) {
	// Chi-squared style sanity: reducing sequential splitmix outputs onto
	// 16 buckets should be near-uniform.
	const buckets, samples = 16, 1 << 16
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[Reduce(SplitMix64(uint64(i)), buckets)]++
	}
	expect := float64(samples) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > expect*0.1 {
			t.Errorf("bucket %d has %d samples, expected ~%.0f", b, c, expect)
		}
	}
}

func TestIndexStreamDeterminismAndSeparation(t *testing.T) {
	h := NewHasher(7)
	s1 := h.NewIndexStream([]byte("key"))
	s2 := h.NewIndexStream([]byte("key"))
	for i := 0; i < 8; i++ {
		if s1.Word(i, 1000) != s2.Word(i, 1000) || s1.Slot(i, 64) != s2.Slot(i, 64) {
			t.Fatal("index stream not deterministic")
		}
	}
	// Word and slot channels must differ (with overwhelming probability
	// over several draws) even for equal ranges.
	same := 0
	for i := 0; i < 16; i++ {
		if s1.Word(i, 1<<30) == s1.Slot(i, 1<<30) {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("word and slot channels correlated: %d equal of 16", same)
	}
}

func TestIndexStreamSeedSensitivity(t *testing.T) {
	a := NewHasher(1).NewIndexStream([]byte("key"))
	b := NewHasher(2).NewIndexStream([]byte("key"))
	diff := false
	for i := 0; i < 4; i++ {
		if a.Word(i, 1<<30) != b.Word(i, 1<<30) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitKEven(t *testing.T) {
	cases := []struct {
		k, g int
		want []int
	}{
		{3, 1, []int{3}},
		{3, 2, []int{2, 1}},
		{4, 2, []int{2, 2}},
		{5, 2, []int{3, 2}},
		{5, 3, []int{2, 2, 1}},
		{7, 3, []int{3, 3, 1}},
		{1, 1, []int{1}},
		{12, 4, []int{3, 3, 3, 3}},
	}
	for _, c := range cases {
		got := SplitKEven(c.k, c.g)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("SplitKEven(%d,%d) = %v, want %v", c.k, c.g, got, c.want)
		}
		sum := 0
		for _, v := range got {
			sum += v
		}
		if sum != c.k {
			t.Errorf("SplitKEven(%d,%d) sums to %d", c.k, c.g, sum)
		}
	}
}

func TestSplitKEvenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	SplitKEven(0, 2)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(100)
	if a.Uint64() == c.Uint64() {
		t.Fatal("different seeds produced same stream start")
	}
}

func TestRNGIntnAndFloat(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(8)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate %d after shuffle", x)
		}
		seen[x] = true
	}
	if len(seen) != 50 {
		t.Fatal("shuffle lost elements")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(1)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Fatal("fork mirrors parent")
	}
}

func TestDerivedSpread(t *testing.T) {
	// Derived hashes for consecutive i must not collide for a random base.
	h1, h2 := Murmur128([]byte("spread"), 0)
	seen := make(map[uint64]bool)
	for i := 0; i < 256; i++ {
		d := Derived(h1, h2, i)
		if seen[d] {
			t.Fatalf("derived collision at i=%d", i)
		}
		seen[d] = true
	}
}
