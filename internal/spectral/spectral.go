// Package spectral implements the Spectral Bloom Filter of Cohen and
// Matias (SIGMOD 2003), cited by the paper as the classic
// multiplicity-estimating CBF variant. It stores the multiset's frequency
// spectrum in a counter vector and answers "how many times was x
// inserted" with the minimum-selection estimate, optionally sharpened by
// the Minimal Increase heuristic: an insert bumps only the counters that
// currently hold the key's minimum, which provably never worsens the
// estimate of any key and empirically cuts the estimation error several
// fold.
//
// Minimal Increase is incompatible with deletions (the heuristic makes
// increments unattributable), so this implementation is insert/query
// only; use the CBF/MPCBF for dynamic sets. That trade-off is exactly why
// the paper's MPCBF — which keeps deletions — tracks plain-increment
// semantics instead.
package spectral

import (
	"fmt"
	"math"

	"repro/internal/hashing"
)

// Filter is a spectral Bloom filter with m counters and k hash functions.
type Filter struct {
	counters []uint32
	m, k     int
	minInc   bool
	hasher   hashing.Hasher
	count    int
}

// New returns a spectral filter with m counters and k hash functions.
// minimalIncrease selects the Minimal Increase insert heuristic.
func New(m, k int, minimalIncrease bool, seed uint32) (*Filter, error) {
	if m <= 0 || k <= 0 {
		return nil, fmt.Errorf("spectral: m and k must be positive (m=%d, k=%d)", m, k)
	}
	return &Filter{
		counters: make([]uint32, m),
		m:        m,
		k:        k,
		minInc:   minimalIncrease,
		hasher:   hashing.NewHasher(seed),
	}, nil
}

// M returns the number of counters; K the number of hash functions.
func (f *Filter) M() int { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count returns the number of inserts.
func (f *Filter) Count() int { return f.count }

// MemoryBits returns the filter's footprint in bits (32-bit counters, the
// "unbounded counter" idealization of the SBF paper; its string-array
// compression is orthogonal to the estimation semantics reproduced here).
func (f *Filter) MemoryBits() int { return f.m * 32 }

func (f *Filter) indices(key []byte) []int {
	s := f.hasher.NewIndexStream(key)
	idx := make([]int, f.k)
	for i := range idx {
		idx[i] = s.Slot(i, f.m)
	}
	return idx
}

// Insert adds one occurrence of key.
func (f *Filter) Insert(key []byte) {
	idx := f.indices(key)
	f.count++
	if !f.minInc {
		for _, i := range idx {
			f.counters[i]++
		}
		return
	}
	// Minimal Increase: only the counters equal to the key's current
	// minimum move, by exactly one.
	min := uint32(math.MaxUint32)
	for _, i := range idx {
		if f.counters[i] < min {
			min = f.counters[i]
		}
	}
	for _, i := range idx {
		if f.counters[i] == min {
			f.counters[i] = min + 1
		}
	}
}

// Estimate returns the minimum-selection frequency estimate of key. It
// never undercounts.
func (f *Filter) Estimate(key []byte) int {
	min := uint32(math.MaxUint32)
	for _, i := range f.indices(key) {
		if f.counters[i] < min {
			min = f.counters[i]
		}
	}
	return int(min)
}

// Contains reports whether key was (possibly) inserted at least once.
func (f *Filter) Contains(key []byte) bool { return f.Estimate(key) > 0 }

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.counters {
		f.counters[i] = 0
	}
	f.count = 0
}
