// Package rcbf implements a Rank-indexed Counting Bloom Filter in the
// style of Hua, Zhao, Lin and Xu (ICNP 2008), the remaining related-work
// baseline of the paper's Section II: elements are reduced to fingerprints
// chained per hash bucket, with the chains addressed by *rank* (prefix
// counts) instead of pointers — which is where its ~3x memory advantage
// over the standard CBF at equal false positive rate comes from.
//
// This implementation keeps RCBF's semantics and cost structure — exact
// fingerprint storage, one bucket probe per query, memory proportional to
// the stored population rather than to a counter array — while replacing
// the paper's bit-level hierarchical index with its software analog: a
// dense fingerprint array ordered by bucket plus a Fenwick tree over
// bucket sizes, so bucket offsets are rank queries in O(log B) like the
// original's popcount chains. DESIGN.md records the substitution.
package rcbf

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/hashing"
	"repro/internal/metrics"
)

// fpBits is the stored fingerprint width. 12 bits matches the dlCBF
// configuration, making cross-structure comparisons direct.
const fpBits = 12

const fpMask = 1<<fpBits - 1

// ErrNotFound is returned by Delete when no fingerprint instance of the
// key exists in its bucket.
var ErrNotFound = errors.New("rcbf: delete of absent key")

// Filter is a rank-indexed counting Bloom filter.
type Filter struct {
	buckets int
	// fenwick maintains bucket sizes; prefix sums give bucket offsets
	// into the dense fingerprint store.
	fenwick []int
	// store holds all fingerprints, bucket-major, each bucket's
	// fingerprints sorted (for deterministic layout and binary search).
	store  []uint16
	hasher hashing.Hasher
	count  int
}

// New returns an RCBF with the given bucket count.
func New(buckets int, seed uint32) (*Filter, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("rcbf: buckets must be positive (%d)", buckets)
	}
	return &Filter{
		buckets: buckets,
		fenwick: make([]int, buckets+1),
		hasher:  hashing.NewHasher(seed),
	}, nil
}

// ForPopulation sizes the filter for n elements at the customary average
// bucket load of ~1 (buckets = n).
func ForPopulation(n int, seed uint32) (*Filter, error) {
	if n < 1 {
		n = 1
	}
	return New(n, seed)
}

// Buckets returns the bucket count.
func (f *Filter) Buckets() int { return f.buckets }

// Count returns the number of stored fingerprint instances.
func (f *Filter) Count() int { return f.count }

// MemoryBits returns the structure's footprint under RCBF's accounting:
// fpBits per stored fingerprint plus the rank index, modeled at 2 bits
// per bucket (the paper's hierarchical bitmaps are a small constant per
// bucket).
func (f *Filter) MemoryBits() int {
	return len(f.store)*fpBits + f.buckets*2
}

// --- Fenwick tree over bucket sizes --------------------------------------

func (f *Filter) fenwickAdd(bucket, delta int) {
	for i := bucket + 1; i <= f.buckets; i += i & (-i) {
		f.fenwick[i] += delta
	}
}

// offset returns the store index where bucket's fingerprints begin
// (the rank query of the original design).
func (f *Filter) offset(bucket int) int {
	sum := 0
	for i := bucket; i > 0; i -= i & (-i) {
		sum += f.fenwick[i]
	}
	return sum
}

func (f *Filter) bucketLen(bucket int) int {
	return f.offset(bucket+1) - f.offset(bucket)
}

// locate derives the key's bucket and fingerprint.
func (f *Filter) locate(key []byte) (bucket int, fp uint16) {
	s := f.hasher.NewIndexStream(key)
	return s.Word(0, f.buckets), uint16(s.Aux(0) & fpMask)
}

// span returns the store slice of one bucket.
func (f *Filter) span(bucket int) (lo, hi int) {
	lo = f.offset(bucket)
	return lo, lo + f.bucketLen(bucket)
}

// Insert adds key: its fingerprint is inserted into the bucket's sorted
// run (duplicates represent multiplicity).
func (f *Filter) Insert(key []byte) error {
	_, err := f.InsertStats(key)
	return err
}

// InsertStats is Insert with cost accounting: one bucket access plus the
// rank computation.
func (f *Filter) InsertStats(key []byte) (metrics.OpStats, error) {
	bucket, fp := f.locate(key)
	lo, hi := f.span(bucket)
	pos := lo + sort.Search(hi-lo, func(i int) bool { return f.store[lo+i] >= fp })
	f.store = append(f.store, 0)
	copy(f.store[pos+1:], f.store[pos:])
	f.store[pos] = fp
	f.fenwickAdd(bucket, 1)
	f.count++
	return f.opCost(), nil
}

// Delete removes one instance of key's fingerprint from its bucket.
func (f *Filter) Delete(key []byte) error {
	_, err := f.DeleteStats(key)
	return err
}

// DeleteStats is Delete with cost accounting.
func (f *Filter) DeleteStats(key []byte) (metrics.OpStats, error) {
	bucket, fp := f.locate(key)
	lo, hi := f.span(bucket)
	pos := lo + sort.Search(hi-lo, func(i int) bool { return f.store[lo+i] >= fp })
	if pos >= hi || f.store[pos] != fp {
		return f.opCost(), ErrNotFound
	}
	f.store = append(f.store[:pos], f.store[pos+1:]...)
	f.fenwickAdd(bucket, -1)
	f.count--
	return f.opCost(), nil
}

// Contains reports whether key may be in the set.
func (f *Filter) Contains(key []byte) bool {
	bucket, fp := f.locate(key)
	lo, hi := f.span(bucket)
	pos := lo + sort.Search(hi-lo, func(i int) bool { return f.store[lo+i] >= fp })
	return pos < hi && f.store[pos] == fp
}

// Probe is Contains with cost accounting: one memory access (the bucket's
// chain), addressed by log2(buckets) + fpBits hash bits.
func (f *Filter) Probe(key []byte) (bool, metrics.OpStats) {
	return f.Contains(key), f.opCost()
}

// CountOf returns key's multiplicity estimate: the number of instances of
// its fingerprint in its bucket.
func (f *Filter) CountOf(key []byte) int {
	bucket, fp := f.locate(key)
	lo, hi := f.span(bucket)
	n := 0
	for i := lo + sort.Search(hi-lo, func(i int) bool { return f.store[lo+i] >= fp }); i < hi && f.store[i] == fp; i++ {
		n++
	}
	return n
}

func (f *Filter) opCost() metrics.OpStats {
	return metrics.OpStats{
		MemAccesses: 1,
		HashBits:    metrics.Log2Ceil(f.buckets) + fpBits,
	}
}

// Reset clears the filter.
func (f *Filter) Reset() {
	f.store = f.store[:0]
	for i := range f.fenwick {
		f.fenwick[i] = 0
	}
	f.count = 0
}
