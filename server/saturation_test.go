package server

// Saturation benchmark for the mutation path at SyncAlways: fixed
// connection counts, p50/p99 latency and ops/s. Three modes per
// connection count:
//
//   - serialized: a global mutex admits one in-flight mutation at a
//     time, reproducing the pre-group-commit WAL where every request
//     paid its own fsync and concurrent connections queued behind the
//     log lock. Throughput stays flat as connections grow.
//   - grouped: synchronous clients run free and the committer coalesces
//     whatever arrives together into shared fsync rounds. Scaling is
//     bounded by round-trip turnaround: each connection has at most one
//     record in flight.
//   - pipelined: each connection keeps a window of requests in flight
//     via the Pipeline API, the designed way to keep the committer fed;
//     latency is recorded per flush (the time a caller waits for a
//     window), ops/s counts individual inserts.
//
// By default this runs at tiny scale as a CI smoke (keeps the harness
// compiling and the modes honest). Setting MPCBF_SATURATION_OUT=path
// switches to full scale — conns {1,2,4,8,16} — and writes the JSON
// block that `make bench-saturation` merges into BENCH_serving.json.

import (
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	mpcbf "repro"
	"repro/client"
)

type saturationPoint struct {
	Conns     int     `json:"conns"`
	Mode      string  `json:"mode"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Us     float64 `json:"p50_us"`
	P99Us     float64 `json:"p99_us"`
}

func TestSaturationReport(t *testing.T) {
	out := os.Getenv("MPCBF_SATURATION_OUT")
	connCounts, opsPerConn := []int{1, 4}, 30 // tiny: CI smoke
	if out != "" {
		connCounts, opsPerConn = []int{1, 2, 4, 8, 16}, 400
	}

	st, err := OpenStore(StoreOptions{
		Dir:    t.TempDir(),
		Filter: mpcbf.Options{MemoryBits: 1 << 23, ExpectedItems: 200_000},
		Shards: 8,
		Sync:   SyncAlways,
		Log:    discardLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := New(st, Config{}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer ln.Close()
	addr := ln.Addr().String()

	modes := []string{"serialized", "grouped", "pipelined"}
	var points []saturationPoint
	byMode := make(map[string]map[int]float64) // mode -> conns -> ops/s
	for _, m := range modes {
		byMode[m] = make(map[int]float64)
	}
	for _, conns := range connCounts {
		for _, mode := range modes {
			n := opsPerConn
			switch mode {
			case "serialized":
				if conns > 1 {
					n = max(opsPerConn/conns, 8) // flat throughput: don't wait forever
				}
			case "pipelined":
				n = opsPerConn * 4 // cheap per op; more samples
			}
			p := runSaturationPoint(t, addr, conns, n, mode)
			points = append(points, p)
			byMode[mode][conns] = p.OpsPerSec
			t.Logf("%-10s conns=%-2d ops=%-5d %9.0f ops/s  p50=%6.0fµs  p99=%6.0fµs",
				mode, p.Conns, p.Ops, p.OpsPerSec, p.P50Us, p.P99Us)
		}
	}

	// Group commit must beat the per-request-fsync baseline once multiple
	// connections share the committer; the full run asserts the headline
	// target — >=5x mutation throughput at 8 connections — on the
	// pipelined mode, which is how a deployment that cares about mutation
	// throughput drives this server. The tiny CI smoke only checks the
	// harness still runs end to end (margins are noise at smoke scale).
	speedups := make(map[int]float64)
	for _, conns := range connCounts {
		best := max(byMode["grouped"][conns], byMode["pipelined"][conns])
		speedups[conns] = best / byMode["serialized"][conns]
	}
	if out != "" {
		if s := speedups[8]; s < 5 {
			t.Errorf("speedup over per-request fsync at 8 conns = %.1fx, want >= 5x", s)
		}
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(f, "{\n    \"policy\": \"always\",\n    \"points\": [\n")
		for i, p := range points {
			comma := ","
			if i == len(points)-1 {
				comma = ""
			}
			fmt.Fprintf(f, "      {\"conns\": %d, \"mode\": %q, \"ops\": %d, \"ops_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
				p.Conns, p.Mode, p.Ops, p.OpsPerSec, p.P50Us, p.P99Us, comma)
		}
		fmt.Fprintf(f, "    ],\n    \"speedup_vs_per_request_fsync\": {")
		for i, conns := range connCounts {
			comma := ","
			if i == len(connCounts)-1 {
				comma = ""
			}
			fmt.Fprintf(f, "\"%d\": %.2f%s", conns, speedups[conns], comma)
		}
		fmt.Fprintf(f, "}\n  }\n")
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}

var saturationSeq int // distinct key space per point, across all modes

const saturationPipeDepth = 32 // inserts in flight per connection in pipelined mode

func runSaturationPoint(t *testing.T, addr string, conns, opsPerConn int, mode string) saturationPoint {
	t.Helper()
	saturationSeq++
	seq := saturationSeq

	clients := make([]*client.Client, conns)
	for i := range clients {
		c, err := client.Dial(addr, client.WithTimeout(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	var gate sync.Mutex // serialized mode: one in-flight mutation, like per-request fsync
	// The exported lock-free Histogram absorbs latencies from every
	// worker concurrently; p50/p99 come from its Quantile interpolation —
	// the same machinery the load generator reports through.
	var lat Histogram
	ops := make([]int, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w]
			if mode == "pipelined" {
				p := c.Pipeline()
				for i := 0; i < opsPerConn; i += saturationPipeDepth {
					for j := 0; j < saturationPipeDepth; j++ {
						p.Insert([]byte(fmt.Sprintf("sat-%d-%d-%06d", seq, w, i+j)))
					}
					t0 := time.Now()
					res, err := p.Flush()
					if err != nil {
						t.Errorf("flush: %v", err)
						return
					}
					for _, r := range res {
						if r.Err != nil {
							t.Errorf("pipelined insert: %v", r.Err)
							return
						}
					}
					// Per-flush latency: the time a caller waits for a whole
					// in-flight window, an upper bound for each op in it.
					lat.ObserveDuration(time.Since(t0))
					ops[w] += len(res)
				}
			} else {
				for i := 0; i < opsPerConn; i++ {
					key := []byte(fmt.Sprintf("sat-%d-%d-%06d", seq, w, i))
					if mode == "serialized" {
						gate.Lock()
					}
					t0 := time.Now()
					err := c.Insert(key)
					d := time.Since(t0)
					if mode == "serialized" {
						gate.Unlock()
					}
					if err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					lat.ObserveDuration(d)
					ops[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	if t.Failed() {
		t.FailNow()
	}

	total := 0
	for _, n := range ops {
		total += n
	}
	sum := lat.Summary()
	return saturationPoint{
		Conns:     conns,
		Mode:      mode,
		Ops:       total,
		OpsPerSec: float64(total) / wall.Seconds(),
		P50Us:     sum.P50 / float64(time.Microsecond),
		P99Us:     sum.P99 / float64(time.Microsecond),
	}
}
