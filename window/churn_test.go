package window

import (
	"fmt"
	"testing"
	"time"

	mpcbf "repro"
)

// TestWindowChurnFPR is the EXPERIMENTS.md "windowed churn" harness: a
// window under steady-state churn (one cohort of fresh keys per
// rotation, oldest cohort retired) measured for in-window false
// negatives (must be zero), false-positive rate on never-inserted
// probes, and residual positives on expired keys, against a single
// static Sharded filter of equal total memory holding the same live
// population. Deterministic: fixed seed, fixed cohorts.
func TestWindowChurnFPR(t *testing.T) {
	const (
		g       = 8
		bitsGen = 1 << 21 // per generation; window total = 8 * 2Mib = 16 Mib
		liveW   = 20_000  // steady-state window population
		cohort  = liveW / g
		rounds  = 64 // rotations of steady churn after warm-up
		probes  = 200_000
	)
	key := func(round, i int) []byte { return []byte(fmt.Sprintf("churn-%d-%d", round, i)) }

	w, err := New(Options{
		Span:        time.Hour, // clock unused; rotations driven manually
		Generations: g,
		Filter:      mpcbf.Options{MemoryBits: bitsGen, ExpectedItems: liveW, Seed: 7},
		Shards:      8,
	})
	if err != nil {
		t.Fatal(err)
	}

	insertCohort := func(round int) {
		keys := make([][]byte, cohort)
		for i := range keys {
			keys[i] = key(round, i)
		}
		if err := w.InsertBatch(keys); err != nil {
			t.Fatal(err)
		}
	}

	round := 0
	for ; round < g; round++ { // warm-up: fill every generation
		insertCohort(round)
		w.Rotate()
	}
	falseNeg, expiredPos, expiredProbes := 0, 0, 0
	for ; round < g+rounds; round++ {
		insertCohort(round)
		// Keys from the last g-1 cohorts are inside the guaranteed
		// lifetime: any miss is a false negative.
		for r := round - (g - 2); r <= round; r++ {
			for i := 0; i < cohort; i += 7 {
				if !w.Contains(key(r, i)) {
					falseNeg++
				}
			}
		}
		// Keys retired at least one full window ago: a hit is residual
		// aliasing, the window's effective FPR on its own past.
		if old := round - 2*g; old >= 0 {
			for i := 0; i < cohort; i++ {
				expiredProbes++
				if w.Contains(key(old, i)) {
					expiredPos++
				}
			}
		}
		w.Rotate()
	}
	if falseNeg != 0 {
		t.Fatalf("%d in-window false negatives under churn, want 0", falseNeg)
	}

	// Fresh-probe FPR of the churning window vs a static filter of the
	// same total memory holding the same live population.
	static, err := mpcbf.NewSharded(mpcbf.Options{MemoryBits: g * bitsGen, ExpectedItems: liveW, Seed: 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for r := round - g + 1; r <= round; r++ {
		if r < 0 {
			continue
		}
		for i := 0; i < cohort; i++ {
			if err := static.Insert(key(r, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	winPos, staticPos := 0, 0
	for i := 0; i < probes; i++ {
		p := []byte(fmt.Sprintf("probe-%d", i))
		if w.Contains(p) {
			winPos++
		}
		if static.Contains(p) {
			staticPos++
		}
	}
	winFPR := float64(winPos) / probes
	staticFPR := float64(staticPos) / probes
	expiredFPR := float64(expiredPos) / float64(expiredProbes)
	t.Logf("windowed churn: live=%d G=%d rounds=%d", liveW, g, rounds)
	t.Logf("window fresh-probe fpr = %.2e (%d/%d)", winFPR, winPos, probes)
	t.Logf("static equal-memory fpr = %.2e (%d/%d)", staticFPR, staticPos, probes)
	t.Logf("expired-key residual fpr = %.2e (%d/%d)", expiredFPR, expiredPos, expiredProbes)

	// Loose sanity bounds: the union over G lightly-loaded generations
	// must stay within an order of magnitude of the equal-memory static
	// filter, and expired keys must behave like fresh probes (their
	// generation was reset, nothing lingers).
	if winPos > 10*staticPos+100 {
		t.Fatalf("window fpr %.2e implausibly above static %.2e", winFPR, staticFPR)
	}
	if expiredFPR > 10*winFPR+0.001 {
		t.Fatalf("expired keys resurface at %.2e, window baseline %.2e", expiredFPR, winFPR)
	}
}
