package hcbf

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
)

// TestKernelDispatch pins the geometries that take the register-resident
// kernel: 64-bit-aligned windows of width 64 or 128, and nothing else.
func TestKernelDispatch(t *testing.T) {
	arena := bitvec.New(1024)
	cases := []struct {
		base, w int
		kernel  bool
	}{
		{0, 64, true},
		{64, 64, true},
		{128, 128, true},
		{0, 128, true},
		{32, 64, false},  // unaligned base
		{1, 64, false},   // unaligned base
		{0, 32, false},   // ablation width
		{0, 256, false},  // ablation width
		{64, 100, false}, // odd width
	}
	for _, c := range cases {
		h, err := NewWord(arena, c.base, c.w, c.w/2)
		if err != nil {
			t.Fatalf("NewWord(base=%d w=%d): %v", c.base, c.w, err)
		}
		if h.Kernel() != c.kernel {
			t.Errorf("NewWord(base=%d w=%d).Kernel() = %v, want %v",
				c.base, c.w, h.Kernel(), c.kernel)
		}
		g, err := NewWordGeneric(arena, c.base, c.w, c.w/2)
		if err != nil {
			t.Fatalf("NewWordGeneric(base=%d w=%d): %v", c.base, c.w, err)
		}
		if g.Kernel() {
			t.Errorf("NewWordGeneric(base=%d w=%d) took the kernel", c.base, c.w)
		}
	}
}

// kernelVsGeneric drives a kernel word and a generic word over twin arenas
// with the same operation tape and asserts bit-for-bit agreement after every
// step: same depths, same errors, same arena contents, same readouts.
func kernelVsGeneric(t *testing.T, w, b1, base int, tape []byte) {
	t.Helper()
	ka := bitvec.New(base + 4*w)
	ga := bitvec.New(base + 4*w)
	kw, err := NewWord(ka, base, w, b1)
	if err != nil {
		t.Fatalf("kernel word: %v", err)
	}
	if !kw.Kernel() {
		t.Fatalf("geometry w=%d base=%d did not take the kernel", w, base)
	}
	gw, err := NewWordGeneric(ga, base, w, b1)
	if err != nil {
		t.Fatalf("generic word: %v", err)
	}
	for i, op := range tape {
		slot := int(op&0x7f) % b1
		if op&0x80 == 0 {
			kd, kerr := kw.Inc(slot)
			gd, gerr := gw.Inc(slot)
			if kd != gd || kerr != gerr {
				t.Fatalf("op %d Inc(%d): kernel (%d, %v) vs generic (%d, %v)",
					i, slot, kd, kerr, gd, gerr)
			}
		} else {
			kd, kerr := kw.Dec(slot)
			gd, gerr := gw.Dec(slot)
			if kd != gd || kerr != gerr {
				t.Fatalf("op %d Dec(%d): kernel (%d, %v) vs generic (%d, %v)",
					i, slot, kd, kerr, gd, gerr)
			}
		}
		if !ka.Equal(ga) {
			t.Fatalf("op %d (slot %d): arenas diverge\nkernel:  %s\ngeneric: %s",
				i, slot, kw.String(), gw.String())
		}
		if ku, gu := kw.Used(), gw.Used(); ku != gu {
			t.Fatalf("op %d: Used %d vs %d", i, ku, gu)
		}
	}
	for slot := 0; slot < b1; slot++ {
		if kc, gc := kw.Count(slot), gw.Count(slot); kc != gc {
			t.Fatalf("Count(%d): kernel %d vs generic %d", slot, kc, gc)
		}
		if kw.Has(slot) != gw.Has(slot) {
			t.Fatalf("Has(%d) mismatch", slot)
		}
	}
	kl, gl := kw.Levels(), gw.Levels()
	if len(kl) != len(gl) {
		t.Fatalf("Levels depth: kernel %v vs generic %v", kl, gl)
	}
	for i := range kl {
		if kl[i] != gl[i] {
			t.Fatalf("Levels: kernel %v vs generic %v", kl, gl)
		}
	}
}

// TestKernelVsGenericRandomOps replays long random increment/decrement tapes
// on the 64- and 128-bit kernels against the generic reference path across a
// spread of first-level widths and aligned bases.
func TestKernelVsGenericRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{64, 128} {
		for _, b1 := range []int{1, 2, 7, w / 2, w - 1, w} {
			for _, base := range []int{0, 64, 192} {
				tape := make([]byte, 400)
				// Bias toward increments so the hierarchy actually grows deep
				// and overflow paths are reached.
				for i := range tape {
					tape[i] = byte(rng.Intn(256)) &^ byte(rng.Intn(2)<<7)
				}
				kernelVsGeneric(t, w, b1, base, tape)
			}
		}
	}
}

// TestIncBatchAtomic checks the all-or-nothing contract: a batch that does
// not fit leaves the word untouched on both paths.
func TestIncBatchAtomic(t *testing.T) {
	for _, mk := range []func(*bitvec.Vector) (Word, error){
		func(a *bitvec.Vector) (Word, error) { return NewWord(a, 0, 64, 60) },
		func(a *bitvec.Vector) (Word, error) { return NewWordGeneric(a, 0, 64, 60) },
	} {
		arena := bitvec.New(64)
		h, err := mk(arena)
		if err != nil {
			t.Fatal(err)
		}
		// 60 bits of level 1 leave 4 free bits; a batch of 3 fits.
		if err := h.IncBatch([]int{5, 9, 5}); err != nil {
			t.Fatalf("batch within capacity: %v", err)
		}
		if got := h.Count(5); got != 2 {
			t.Fatalf("Count(5) = %d after batch, want 2", got)
		}
		before := arena.Clone()
		// Only 1 free bit remains; a batch of 2 must fail atomically.
		if err := h.IncBatch([]int{1, 2}); err != ErrOverflow {
			t.Fatalf("oversized batch: got %v, want ErrOverflow", err)
		}
		if !arena.Equal(before) {
			t.Fatal("failed batch mutated the word")
		}
	}
}

// TestDecBatchUnderflows checks per-slot decrement semantics: zero counters
// are skipped and counted, live counters still decrement.
func TestDecBatchUnderflows(t *testing.T) {
	for _, mk := range []func(*bitvec.Vector) (Word, error){
		func(a *bitvec.Vector) (Word, error) { return NewWord(a, 0, 64, 40) },
		func(a *bitvec.Vector) (Word, error) { return NewWordGeneric(a, 0, 64, 40) },
	} {
		arena := bitvec.New(64)
		h, err := mk(arena)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.IncBatch([]int{3, 3, 8}); err != nil {
			t.Fatal(err)
		}
		if got := h.DecBatch([]int{3, 8, 11}); got != 1 {
			t.Fatalf("underflows = %d, want 1 (slot 11 is empty)", got)
		}
		if got := h.Count(3); got != 1 {
			t.Fatalf("Count(3) = %d, want 1", got)
		}
		if h.Has(8) || h.Has(11) {
			t.Fatal("slots 8/11 should be empty")
		}
	}
}

// FuzzWordKernelVsGeneric explores the kernel/generic equivalence beyond the
// seeded random tapes: arbitrary tapes, both kernel widths, fuzzed first
// levels. Any divergence in depths, errors, readouts, or raw arena bits
// fails.
func FuzzWordKernelVsGeneric(f *testing.F) {
	f.Add(false, uint8(40), []byte{0, 1, 2, 3, 0, 129, 130})
	f.Add(false, uint8(1), []byte{0, 0, 0, 0, 128})
	f.Add(true, uint8(100), []byte{5, 5, 5, 133, 133, 133, 5})
	f.Add(true, uint8(7), []byte{9, 9, 9, 9, 9, 9, 137, 137})

	f.Fuzz(func(t *testing.T, wide bool, b1Raw uint8, tape []byte) {
		w := 64
		if wide {
			w = 128
		}
		b1 := int(b1Raw)%w + 1
		kernelVsGeneric(t, w, b1, 0, tape)
	})
}
