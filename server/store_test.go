package server

import (
	"fmt"
	"os"
	"testing"

	mpcbf "repro"
)

func testStoreOptions(dir string) StoreOptions {
	return StoreOptions{
		Dir:    dir,
		Filter: mpcbf.Options{MemoryBits: 1 << 19, ExpectedItems: 5000, Seed: 42},
		Shards: 4,
		Sync:   SyncAlways,
		Logf:   func(string, ...any) {},
	}
}

func storeKeys(prefix string, n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s-%d", prefix, i))
	}
	return keys
}

func TestStoreRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("wal", 500)
	for _, k := range keys[:100] {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InsertBatch(keys[100:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: close the WAL file without snapshotting.
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 499 {
		t.Fatalf("recovered Len = %d, want 499", r.Len())
	}
	if got := r.Stats().ReplayedRecords; got != 501 {
		t.Fatalf("replayed %d records, want 501", got)
	}
	for _, k := range keys[1:] {
		if !r.Contains(k) {
			t.Fatalf("false negative after WAL recovery: %q", k)
		}
	}
}

func TestStoreRecoveryFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("snap", 600)
	if err := s.InsertBatch(keys[:400]); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Tail mutations after the snapshot live only in the fresh segment.
	if err := s.InsertBatch(keys[400:]); err != nil {
		t.Fatal(err)
	}
	ok, err := s.DeleteBatch(keys[:50])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ok {
		if !v {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := s.wal.Close(); err != nil { // crash without final snapshot
		t.Fatal(err)
	}

	r, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 550 {
		t.Fatalf("recovered Len = %d, want 550", r.Len())
	}
	// Only the tail (200 inserts + 50 deletes) should need replaying.
	if got := r.Stats().ReplayedRecords; got != 250 {
		t.Fatalf("replayed %d records, want 250", got)
	}
	for _, k := range keys[50:] {
		if !r.Contains(k) {
			t.Fatalf("false negative after snapshot+tail recovery: %q", k)
		}
	}
}

func TestStoreSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InsertBatch(storeKeys("trunc", 300)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	segs, err := listWALSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after snapshots = %v, want exactly the live one", segs)
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %v, want only the newest", snaps)
	}
	if snaps[0] != segs[0] {
		t.Fatalf("snapshot seq %d does not match live segment %d", snaps[0], segs[0])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("fallback", 200)
	if err := s.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // writes the final snapshot
		t.Fatal(err)
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshot written by Close")
	}
	// Corrupt the newest snapshot's body. Recovery must fall back — here
	// to a fresh filter plus full WAL replay... but Close truncated the
	// WAL. So re-add a tail first: reopen, mutate, crash.
	s2, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	extra := storeKeys("tail", 50)
	if err := s2.InsertBatch(extra); err != nil {
		t.Fatal(err)
	}
	if err := s2.wal.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ = listSnapshots(dir)
	newest := snapshotPath(dir, snaps[len(snaps)-1])
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(newest, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// The corrupt snapshot was skipped: the base state (keys) is lost to
	// the truncated WAL, but the surviving tail replays onto a fresh
	// filter and recovery still comes up serving.
	for _, k := range extra {
		if !r.Contains(k) {
			t.Fatalf("false negative on tail key %q after fallback", k)
		}
	}
	if r.Len() != 50 {
		t.Fatalf("recovered Len = %d, want 50 (tail only)", r.Len())
	}
}

func TestStoreDeleteBatchLogsOnlySuccesses(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	keys := storeKeys("dbl", 100)
	if err := s.InsertBatch(keys); err != nil {
		t.Fatal(err)
	}
	mixed := append(append([][]byte(nil), keys[:40]...), storeKeys("ghost", 40)...)
	ok, err := s.DeleteBatch(mixed)
	if err != nil {
		t.Fatal(err)
	}
	succeeded := 0
	for _, v := range ok {
		if v {
			succeeded++
		}
	}
	wantLen := 100 - succeeded
	if s.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", s.Len(), wantLen)
	}
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay must land on exactly the same count: failed deletes were
	// never logged, so recovery cannot double-apply them.
	r, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", r.Len(), wantLen)
	}
	for _, k := range keys[40:] {
		if !r.Contains(k) {
			t.Fatalf("false negative on surviving key %q", k)
		}
	}
}

func TestStoreEstimateAndLen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(testStoreOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := []byte("multiplicity")
	for i := 0; i < 3; i++ {
		if err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.EstimateCount(k); n < 3 {
		t.Fatalf("EstimateCount = %d, want >= 3", n)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.ContainsBatch([][]byte{k, []byte("absent-key-xyz")}); !got[0] {
		t.Fatal("ContainsBatch lost the inserted key")
	}
}
