package wire

import (
	"bytes"
	"reflect"
	"testing"
)

func TestRingRoundTrip(t *testing.T) {
	rings := []Ring{
		{},
		{Epoch: 1, Old: []string{"a:1"}, New: []string{"a:1"}},
		{Epoch: 7, Joint: true, Old: []string{"a:1", "b:2"}, New: []string{"a:1", "b:2", "c:3"}},
		{Epoch: 1 << 60, Joint: true, Old: []string{"10.0.0.1:7070/10.0.0.2:7070"}, New: nil},
	}
	for _, in := range rings {
		enc := AppendRing(nil, in)
		out, rest, err := DecodeRing(append(enc, 0xAA))
		if err != nil || len(rest) != 1 || rest[0] != 0xAA {
			t.Fatalf("ring %+v: rest=%x err=%v", in, rest, err)
		}
		if out.Epoch != in.Epoch || out.Joint != in.Joint ||
			!sameAddrs(out.Old, in.Old) || !sameAddrs(out.New, in.New) {
			t.Fatalf("ring round trip: got %+v, want %+v", out, in)
		}
	}
}

func sameAddrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDecodeRingRejectsMalformed(t *testing.T) {
	good := AppendRing(nil, Ring{Epoch: 2, Old: []string{"a:1"}, New: []string{"a:1", "b:2"}})
	bad := map[string][]byte{
		"empty":         {},
		"short header":  good[:5],
		"short count":   good[:9],
		"member cut":    good[:12],
		"absurd count":  append(append([]byte{}, good[:9]...), 0xFF, 0xFF),
		"zero len addr": append(append([]byte{}, good[:11]...), 0),
	}
	for name, b := range bad {
		if _, _, err := DecodeRing(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRingRequestDecode(t *testing.T) {
	ring := Ring{Epoch: 9, Joint: true, Old: []string{"x:1"}, New: []string{"x:1", "y:2"}}
	req, err := DecodeRequest(AppendRingSetRequest(nil, ring))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpRingSet || req.Ring.Epoch != 9 || !req.Ring.Joint ||
		!sameAddrs(req.Ring.Old, ring.Old) || !sameAddrs(req.Ring.New, ring.New) {
		t.Fatalf("ring_set decoded %+v", req)
	}
	req, err = DecodeRequest(AppendRingGetRequest(nil))
	if err != nil || req.Op != OpRingGet {
		t.Fatalf("ring_get: %+v %v", req, err)
	}
	req, err = DecodeRequest(AppendElasticStatsRequest(nil))
	if err != nil || req.Op != OpElasticStats {
		t.Fatalf("elastic_stats: %+v %v", req, err)
	}
	// ELASTIC_STATS addresses a namespace through the envelope.
	req, err = DecodeRequest(AppendElasticStatsRequest(AppendNamespaced(nil, []byte("t"))))
	if err != nil || req.Op != OpElasticStats || string(req.NS) != "t" {
		t.Fatalf("namespaced elastic_stats: %+v %v", req, err)
	}
	blob := []byte("pretend-marshaled-filter")
	req, err = DecodeRequest(AppendImportRequest(nil, blob))
	if err != nil || req.Op != OpImport || !bytes.Equal(req.Blob, blob) {
		t.Fatalf("import: %+v %v", req, err)
	}
	// IMPORT addresses a namespace through the envelope too.
	req, err = DecodeRequest(AppendImportRequest(AppendNamespaced(nil, []byte("t")), blob))
	if err != nil || req.Op != OpImport || string(req.NS) != "t" || !bytes.Equal(req.Blob, blob) {
		t.Fatalf("namespaced import: %+v %v", req, err)
	}

	bad := map[string][]byte{
		"ring_set empty":        {OpRingSet},
		"ring_set truncated":    AppendRingSetRequest(nil, ring)[:6],
		"ring_set trailing":     append(AppendRingSetRequest(nil, ring), 0xFF),
		"ring_get trailing":     {OpRingGet, 0},
		"elastic stats body":    {OpElasticStats, 0},
		"import empty":          {OpImport},
		"envelope ring_set":     append([]byte{OpNamespaced, 1, 'a'}, AppendRingSetRequest(nil, ring)...),
		"envelope ring_get":     {OpNamespaced, 1, 'a', OpRingGet},
		"envelope empty import": {OpNamespaced, 1, 'a', OpImport},
	}
	for name, payload := range bad {
		if _, err := DecodeRequest(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestImportIsMutationRingIsNot(t *testing.T) {
	if !IsMutation(OpImport) {
		t.Error("IMPORT must be a mutation: the durable ack is the reshard handoff watermark")
	}
	if IsMutation(OpRingSet) || IsMutation(OpRingGet) || IsMutation(OpElasticStats) {
		t.Error("ring/stats ops are coordination metadata, not mutations — replicas must accept them")
	}
}

func TestElasticStatsRoundTrip(t *testing.T) {
	in := ElasticStats{
		Grows:     3,
		Imports:   2,
		TargetFPR: 0.001,
		Gens: []ElasticGenStats{
			{Items: 1000, Capacity: 1000, FillRatio: 0.93, Budget: 0.0005, MemoryBits: 1 << 17},
			{Items: 512, Capacity: 0, FillRatio: 0.4, Budget: 0, MemoryBits: 1 << 16, Imported: true},
			{Items: 77, Capacity: 2000, FillRatio: 0.05, Budget: 0.00025, MemoryBits: 1 << 18},
		},
	}
	out, err := DecodeElasticStats(AppendElasticStats(nil, in))
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("elastic stats: %+v %v", out, err)
	}
	empty := ElasticStats{Grows: 1, TargetFPR: 0.01}
	out, err = DecodeElasticStats(AppendElasticStats(nil, empty))
	if err != nil || out.Grows != 1 || len(out.Gens) != 0 {
		t.Fatalf("empty-chain stats: %+v %v", out, err)
	}
	bad := map[string][]byte{
		"empty":    {},
		"short":    make([]byte, 10),
		"count":    AppendElasticStats(nil, ElasticStats{Gens: make([]ElasticGenStats, 2)})[:30],
		"trailing": append(AppendElasticStats(nil, in), 0xFF),
	}
	for name, body := range bad {
		if _, err := DecodeElasticStats(body); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNsConfigElasticFlag(t *testing.T) {
	cfg := NsConfig{MemoryBits: 1 << 20, Flags: NsFlagElastic}
	if !cfg.Elastic() {
		t.Fatal("Elastic() false with NsFlagElastic set")
	}
	enc := AppendNsConfig(nil, cfg)
	if len(enc) != NsConfigSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), NsConfigSize)
	}
	out, _, err := DecodeNsConfig(enc)
	if err != nil || out != cfg {
		t.Fatalf("flag round trip: %+v %v", out, err)
	}
	if (NsConfig{}).Elastic() {
		t.Fatal("zero config reports elastic")
	}
}
