package client

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/server/wire"
)

// flakyServer accepts connections and, for the first drops of them,
// reads one request and hangs up without answering — the shape of a
// crashing or restarting daemon. Later connections are served by
// respond like fakeServer.
func flakyServer(t *testing.T, drops int, respond func(req wire.Request) []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	accepted := 0
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			n := accepted
			accepted++
			mu.Unlock()
			go func() {
				defer conn.Close()
				var buf []byte
				for {
					payload, err := wire.ReadFrame(conn, buf, 0)
					if err != nil {
						return
					}
					if n < drops {
						return // hang up mid-operation
					}
					buf = payload[:0]
					req, err := wire.DecodeRequest(payload)
					if err != nil {
						return
					}
					if err := wire.WriteFrame(conn, respond(req)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func reconnectOpts() []Option {
	return []Option{
		WithTimeout(2 * time.Second),
		WithReconnect(4, time.Millisecond, 20*time.Millisecond),
	}
}

func TestReconnectRetriesIdempotentRead(t *testing.T) {
	addr := flakyServer(t, 2, func(req wire.Request) []byte {
		return wire.AppendBool(wire.AppendOK(nil), true)
	})
	c, err := Dial(addr, reconnectOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Connections 0 and 1 die mid-request; the client must redial twice
	// and still answer.
	ok, err := c.Contains([]byte("k"))
	if err != nil {
		t.Fatalf("Contains across flaky connections: %v", err)
	}
	if !ok {
		t.Fatal("Contains = false, want true")
	}
}

func TestReconnectMutationSurfacesMaybeApplied(t *testing.T) {
	addr := flakyServer(t, 1, func(req wire.Request) []byte {
		return wire.AppendOK(nil)
	})
	c, err := Dial(addr, reconnectOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The request left the client before the connection died: the daemon
	// may have applied it, so the client must not silently re-send.
	err = c.Insert([]byte("k"))
	if !errors.Is(err, ErrMaybeApplied) {
		t.Fatalf("interrupted Insert: err = %v, want ErrMaybeApplied", err)
	}
	// The next call redials and proceeds normally.
	if err := c.Insert([]byte("k2")); err != nil {
		t.Fatalf("Insert after reconnect: %v", err)
	}
}

func TestReconnectGivesUpAfterAttempts(t *testing.T) {
	addr := flakyServer(t, 1<<30, func(req wire.Request) []byte {
		return wire.AppendOK(nil)
	})
	c, err := Dial(addr, reconnectOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Len(); err == nil {
		t.Fatal("Len against always-dropping server succeeded")
	}
	if errors.Is(err, ErrMaybeApplied) {
		t.Fatal("Dial error reported as ErrMaybeApplied")
	}
}

func TestReconnectDoesNotResurrectClosedClient(t *testing.T) {
	addr := fakeServer(t, func(req wire.Request) []byte {
		return wire.AppendOK(nil)
	})
	c, err := Dial(addr, reconnectOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Insert([]byte("k")); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestReadOnlyErrorCarriesPrimary(t *testing.T) {
	const primary = "10.0.0.7:7070"
	addr := fakeServer(t, func(req wire.Request) []byte {
		if wire.IsMutation(req.Op) {
			return wire.AppendReadOnly(nil, primary)
		}
		return wire.AppendBool(wire.AppendOK(nil), false)
	})
	c, err := Dial(addr, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Insert([]byte("k"))
	var ro *ReadOnlyError
	if !errors.As(err, &ro) {
		t.Fatalf("Insert on read-only server: err = %v, want *ReadOnlyError", err)
	}
	if ro.Primary != primary {
		t.Fatalf("Primary = %q, want %q", ro.Primary, primary)
	}
	// Operation-level rejection: the connection stays usable for reads.
	if _, err := c.Contains([]byte("k")); err != nil {
		t.Fatalf("Contains after ReadOnlyError: %v", err)
	}
}

func TestDumpReturnsDetachedCopy(t *testing.T) {
	blob := []byte("filter-bytes-stand-in")
	addr := fakeServer(t, func(req wire.Request) []byte {
		if req.Op == wire.OpLen {
			return wire.AppendU64(wire.AppendOK(nil), 1)
		}
		if req.Op != wire.OpDump {
			t.Errorf("op = %#x, want OpDump", req.Op)
		}
		return append(wire.AppendOK(nil), blob...)
	})
	c, err := Dial(addr, WithTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("Dump = %q, want %q", got, blob)
	}
	// The dump must not alias the client's scratch buffer.
	if _, err := c.Len(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("Dump mutated by a later call: %q", got)
	}
}
