// Package elastic implements generational capacity growth for the
// sharded MPCBF: a Filter is a chain of fixed-geometry generations
// where inserts always go to the newest generation (the head), lookups
// OR the chain newest-first, and a fresh head with geometrically
// scaled capacity is sealed on top whenever the current head fills.
//
// The chain keeps a bounded false positive rate the same way scalable
// Bloom filters do (Dynamic Partition Bloom Filters, arXiv:1901.06493;
// Autoscaling Bloom Filter, arXiv:1705.03934): generation i is sized
// for a tightened budget eps_i = eps * (1-r) * r^i, so the union bound
// over the whole chain stays under the configured target eps no matter
// how many generations growth appends. Capacity scales geometrically
// (factor G per generation), so reaching N elements costs O(log N)
// generations and a lookup is at most that many membership probes.
//
// Growth is never triggered inside the filter itself: callers (the
// server store) check NeedsGrow after applying inserts and call Grow
// explicitly, which is what lets a write-ahead log record the exact
// point of growth and replay it deterministically.
//
// A chain can also absorb whole filters from elsewhere: ImportGeneration
// splices an already-populated Sharded in as a frozen generation. That
// is the cluster-resharding primitive — a Bloom filter cannot enumerate
// its keys, so moving a key range means importing the source filter
// wholesale and letting membership queries OR through it. Imported
// generations are never insert targets and carry no FPR budget of their
// own; they cost the chain extra fill, not correctness.
package elastic

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	mpcbf "repro"
	"repro/internal/analytic"
)

// Options configures an elastic chain. The zero value of every field
// takes the documented default.
type Options struct {
	// Filter is the geometry of generation 0 (the seed generation):
	// MemoryBits and ExpectedItems set the base capacity, and the hash
	// parameters (k, g, word width, seed) are shared by every grown
	// generation. Required.
	Filter mpcbf.Options
	// Shards is the shard count of every generation (default 1).
	Shards int
	// TargetFPR is the chain-wide false positive bound eps. 0 derives
	// it from the seed geometry: eps = fpr0 / (1 - TighteningRatio),
	// where fpr0 is the seed generation's analytic FPR at its expected
	// items — the chain then promises "no worse than twice the filter
	// you configured" under the default ratio.
	TargetFPR float64
	// GrowthFactor scales ExpectedItems per generation (default 2).
	GrowthFactor int
	// TighteningRatio is r: generation i gets FPR budget
	// eps*(1-r)*r^i (default 0.5).
	TighteningRatio float64
	// GrowAt is the head fill-ratio trigger for NeedsGrow (default
	// 0.9). Reaching the head's expected-item capacity triggers
	// regardless.
	GrowAt float64
	// MaxGenerations bounds the chain length (default 48). A chain at
	// the bound stops reporting NeedsGrow and keeps absorbing inserts
	// into its head, trading the FPR bound for availability.
	MaxGenerations int
}

func (o *Options) setDefaults() error {
	if o.Filter.MemoryBits <= 0 {
		return errors.New("elastic: Filter.MemoryBits required")
	}
	if o.Filter.ExpectedItems <= 0 {
		return errors.New("elastic: Filter.ExpectedItems required")
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.GrowthFactor < 2 {
		o.GrowthFactor = 2
	}
	if o.TighteningRatio <= 0 || o.TighteningRatio >= 1 {
		o.TighteningRatio = 0.5
	}
	if o.GrowAt <= 0 || o.GrowAt > 1 {
		o.GrowAt = 0.9
	}
	if o.MaxGenerations <= 0 {
		o.MaxGenerations = 48
	}
	if o.TargetFPR <= 0 {
		fpr0 := analyticFPR(o.Filter, o.Filter.ExpectedItems)
		o.TargetFPR = fpr0 / (1 - o.TighteningRatio)
	}
	if o.TargetFPR >= 1 {
		return fmt.Errorf("elastic: target FPR %g not below 1", o.TargetFPR)
	}
	return nil
}

// analyticFPR evaluates the MPCBF-g model for a geometry at n items; an
// undersized geometry that the designer rejects reads as rate 1.
func analyticFPR(o mpcbf.Options, n int) float64 {
	k, g, w := 3, 1, 64
	if o.HashFunctions > 0 {
		k = o.HashFunctions
	}
	if o.MemoryAccesses > 0 {
		g = o.MemoryAccesses
	}
	if o.WordBits > 0 {
		w = o.WordBits
	}
	d, err := analytic.Design(n, o.MemoryBits, w, k, g)
	if err != nil {
		return 1
	}
	return d.FPR(n)
}

// generation is one link of the chain.
type generation struct {
	f *mpcbf.Sharded
	// capacity is the expected-item target that seals the generation
	// when it is the head (0 for imported generations).
	capacity int
	// budget is the generation's slice of the chain FPR bound (0 for
	// imported generations, which spend no budget).
	budget float64
	// growIdx is the generation's position in the growth schedule; its
	// geometry is a pure function of (Options, growIdx). Imported
	// generations use importedGrowIdx.
	growIdx uint32
	// imported generations came in whole via ImportGeneration (the
	// resharding path); they are frozen — never an insert target.
	imported bool
	// lastFill is the Len at which the fill ratio was last scanned;
	// NeedsGrow amortizes the O(memory) scan against it.
	lastFill atomic.Int64
}

const importedGrowIdx = ^uint32(0)

// Filter is a growable chain of Sharded MPCBF generations. Safe for
// concurrent use: the chain structure is guarded here, per-key
// operations by each generation's own shard locks.
type Filter struct {
	opts Options

	mu    sync.RWMutex
	gens  []*generation // gens[len-1] is the head (insert target)
	grows uint32        // grown generations ever created (head growIdx+1)

	imports uint64 // ImportGeneration calls absorbed
}

// New builds a chain holding just the seed generation.
func New(opts Options) (*Filter, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	f := &Filter{opts: opts}
	g, err := f.buildGeneration(0)
	if err != nil {
		return nil, err
	}
	f.gens = []*generation{g}
	f.grows = 1
	return f, nil
}

// geometryFor derives generation i's geometry: capacity n_i scales by
// GrowthFactor^i, the FPR budget tightens by TighteningRatio^i, and the
// memory budget is searched upward (deterministic integer steps) until
// the analytic model meets the budget. A pure function of (opts, i), so
// every node replaying the same growth schedule builds byte-identical
// generations.
func (f *Filter) geometryFor(i uint32) (cfg mpcbf.Options, capacity int, budget float64) {
	o := f.opts
	cfg = o.Filter
	capacity = o.Filter.ExpectedItems
	budget = o.TargetFPR * (1 - o.TighteningRatio)
	for j := uint32(0); j < i; j++ {
		capacity *= o.GrowthFactor
		budget *= o.TighteningRatio
	}
	if i == 0 {
		return cfg, capacity, budget
	}
	cfg.ExpectedItems = capacity
	cfg.Seed = o.Filter.Seed + i*0x85ebca6b
	// Start from capacity-proportional memory and step up by 25% until
	// the model meets the tightened budget at the best k for that
	// geometry (bounded deterministic search). Letting k float per
	// generation is what keeps the memory overhead near the theoretical
	// ~log2(1/r) extra bits/key per generation instead of blowing up
	// against a fixed-k FPR floor.
	g, w := 1, 64
	if o.Filter.MemoryAccesses > 0 {
		g = o.Filter.MemoryAccesses
	}
	if o.Filter.WordBits > 0 {
		w = o.Filter.WordBits
	}
	m := o.Filter.MemoryBits
	for j := uint32(0); j < i; j++ {
		m *= o.GrowthFactor
	}
	bestK := cfg.HashFunctions
	for step := 0; step < 64; step++ {
		k, fpr := analytic.OptimalKMPCBF(capacity, m, w, g, maxHashFunctions)
		if k > 0 {
			bestK = k
		}
		if fpr <= budget {
			break
		}
		m += m / 4
	}
	cfg.MemoryBits = m
	cfg.HashFunctions = bestK
	return cfg, capacity, budget
}

// maxHashFunctions caps the per-generation optimal-k search.
const maxHashFunctions = 8

func (f *Filter) buildGeneration(i uint32) (*generation, error) {
	cfg, capacity, budget := f.geometryFor(i)
	s, err := mpcbf.NewSharded(cfg, f.opts.Shards)
	if err != nil {
		return nil, fmt.Errorf("elastic: generation %d: %w", i, err)
	}
	return &generation{f: s, capacity: capacity, budget: budget, growIdx: i}, nil
}

func (f *Filter) head() *generation { return f.gens[len(f.gens)-1] }

// Insert adds key to the head generation. It never grows the chain;
// check NeedsGrow and call Grow (logging it) afterwards.
func (f *Filter) Insert(key []byte) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.head().f.Insert(key)
}

// InsertBatch adds keys to the head generation using up to workers
// goroutines.
func (f *Filter) InsertBatch(keys [][]byte, workers int) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.head().f.InsertBatch(keys, workers)
}

// Contains ORs the chain newest-first: the head holds the hottest keys,
// so most positives resolve on the first probe.
func (f *Filter) Contains(key []byte) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for i := len(f.gens) - 1; i >= 0; i-- {
		if f.gens[i].f.Contains(key) {
			return true
		}
	}
	return false
}

// ContainsBatch answers membership for keys, order-preserving, carrying
// only unresolved keys to older generations.
func (f *Filter) ContainsBatch(keys [][]byte, workers int) []bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]bool, len(keys))
	pending := keys
	pendingIdx := make([]int, len(keys))
	for i := range pendingIdx {
		pendingIdx[i] = i
	}
	for gi := len(f.gens) - 1; gi >= 0 && len(pending) > 0; gi-- {
		flags := f.gens[gi].f.ContainsBatch(pending, workers)
		var nextKeys [][]byte
		var nextIdx []int
		for i, ok := range flags {
			if ok {
				out[pendingIdx[i]] = true
			} else {
				nextKeys = append(nextKeys, pending[i])
				nextIdx = append(nextIdx, pendingIdx[i])
			}
		}
		pending, pendingIdx = nextKeys, nextIdx
	}
	return out
}

// Delete removes key from the newest generation that reports it — the
// counting-filter ownership rule: the generation whose counters the
// insert incremented is the only one a decrement is sound in, and
// newest-first matches where re-inserted keys live.
func (f *Filter) Delete(key []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.deleteLocked(key)
}

func (f *Filter) deleteLocked(key []byte) error {
	for i := len(f.gens) - 1; i >= 0; i-- {
		if f.gens[i].f.Contains(key) {
			return f.gens[i].f.Delete(key)
		}
	}
	return errors.New("elastic: delete of absent key")
}

// DeleteBatch deletes keys, returning order-preserving flags for which
// keys were actually removed. Absent keys read as false, not errors.
func (f *Filter) DeleteBatch(keys [][]byte, workers int) ([]bool, error) {
	_ = workers // deletes scan the chain per key; batch parallelism buys nothing
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]bool, len(keys))
	for i, k := range keys {
		out[i] = f.deleteLocked(k) == nil
	}
	return out, nil
}

// EstimateCount returns an upper bound on key's multiplicity: the sum
// of per-generation estimates (a key re-inserted after growth counts in
// several generations).
func (f *Filter) EstimateCount(key []byte) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, g := range f.gens {
		n += g.f.EstimateCount(key)
	}
	return n
}

// Len returns the element count across the chain.
func (f *Filter) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, g := range f.gens {
		n += g.f.Len()
	}
	return n
}

// MemoryBits returns the aggregate footprint of every generation.
func (f *Filter) MemoryBits() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, g := range f.gens {
		n += g.f.MemoryBits()
	}
	return n
}

// FillRatio reports the head generation's fill — the growth signal.
func (f *Filter) FillRatio() float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.head().f.FillRatio()
}

// SaturatedWords sums frozen always-positive words across the chain.
func (f *Filter) SaturatedWords() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for _, g := range f.gens {
		n += g.f.SaturatedWords()
	}
	return n
}

// HeadShardStats reports the head generation's per-shard counters (the
// live insert target, where load skew shows first).
func (f *Filter) HeadShardStats() []mpcbf.ShardStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.head().f.ShardStats()
}

// Generations returns the chain length.
func (f *Filter) Generations() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.gens)
}

// TargetFPR returns the chain-wide false positive bound.
func (f *Filter) TargetFPR() float64 { return f.opts.TargetFPR }

// NeedsGrow reports whether the head is due for sealing: it reached its
// expected-item capacity or the GrowAt fill ratio. It never fires past
// MaxGenerations. The caller decides when to act (and records it) — the
// filter itself never grows implicitly, so replayed logs reconstruct
// the same chain.
func (f *Filter) NeedsGrow() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(f.gens) >= f.opts.MaxGenerations {
		return false
	}
	h := f.head()
	n := h.f.Len()
	if n >= h.capacity {
		return true
	}
	// The fill-ratio trigger needs an O(memory) word scan, so it is
	// consulted only in the top quarter of the capacity schedule and at
	// most once per capacity/256 inserts.
	if n*4 < h.capacity*3 {
		return false
	}
	last := h.lastFill.Load()
	if int64(n)-last < int64(h.capacity/256)+1 {
		return false
	}
	if !h.lastFill.CompareAndSwap(last, int64(n)) {
		return false
	}
	return h.f.FillRatio() >= f.opts.GrowAt
}

// Grow seals the current head and appends a fresh one with the next
// geometry in the schedule. Idempotence is the caller's concern: every
// call appends a generation, which is exactly what WAL replay needs.
func (f *Filter) Grow() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	g, err := f.buildGeneration(f.grows)
	if err != nil {
		return err
	}
	f.gens = append(f.gens, g)
	f.grows++
	return nil
}

// Grows returns how many growth events the chain has absorbed — Grow
// calls since creation, excluding the seed generation (imported
// generations do not count either). A freshly created or Reset chain
// reports 0.
func (f *Filter) Grows() uint32 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.grows - 1
}

// Imports returns how many generations arrived via ImportGeneration.
func (f *Filter) Imports() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.imports
}

// ImportGeneration splices s into the chain as a frozen generation just
// below the head: queries OR through it, deletes can decrement it, but
// inserts never target it. The filter takes ownership of s.
func (f *Filter) ImportGeneration(s *mpcbf.Sharded) {
	f.mu.Lock()
	defer f.mu.Unlock()
	g := &generation{f: s, growIdx: importedGrowIdx, imported: true}
	f.gens = append(f.gens, nil)
	copy(f.gens[len(f.gens)-1:], f.gens[len(f.gens)-2:])
	f.gens[len(f.gens)-2] = g
	f.imports++
}

// ExportGenerations returns a marshaled snapshot of each generation's
// filter, oldest first. Resharding uses it to flatten a dumped chain
// into individual frozen generations the destination chain absorbs via
// ImportGeneration.
func (f *Filter) ExportGenerations() ([][]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([][]byte, len(f.gens))
	for i, g := range f.gens {
		b, err := g.f.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("elastic: export generation %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// GenStats describes one generation for observability.
type GenStats struct {
	Items      int     `json:"items"`
	Capacity   int     `json:"capacity"` // 0 for imported generations
	FillRatio  float64 `json:"fill_ratio"`
	Budget     float64 `json:"fpr_budget"` // 0 for imported generations
	MemoryBits int     `json:"memory_bits"`
	Imported   bool    `json:"imported"`
}

// Stats is a point-in-time view of the chain.
type Stats struct {
	Generations int        `json:"generations"`
	Grows       uint32     `json:"grows"` // growth events; the seed generation is not one
	Imports     uint64     `json:"imports"`
	TargetFPR   float64    `json:"target_fpr"`
	Gens        []GenStats `json:"gens"` // oldest first; last is the head
}

// Stats returns the chain's shape and per-generation occupancy.
func (f *Filter) Stats() Stats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	st := Stats{
		Generations: len(f.gens),
		Grows:       f.grows - 1,
		Imports:     f.imports,
		TargetFPR:   f.opts.TargetFPR,
		Gens:        make([]GenStats, len(f.gens)),
	}
	for i, g := range f.gens {
		st.Gens[i] = GenStats{
			Items:      g.f.Len(),
			Capacity:   g.capacity,
			FillRatio:  g.f.FillRatio(),
			Budget:     g.budget,
			MemoryBits: g.f.MemoryBits(),
			Imported:   g.imported,
		}
	}
	return st
}

// ExpectedFPR returns the analytic union bound of the chain's grown
// generations at their current populations — what the chain believes
// its false positive rate is right now. Imported generations are
// evaluated at their populations against their own geometry.
func (f *Filter) ExpectedFPR() float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	total := 0.0
	for _, g := range f.gens {
		cfg, _, _ := f.geometryFor(0)
		if !g.imported {
			cfg, _, _ = f.geometryFor(g.growIdx)
		} else {
			cfg.MemoryBits = g.f.MemoryBits()
		}
		total += analyticFPR(cfg, maxInt(g.f.Len(), 1))
	}
	return math.Min(total, 1)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Reset empties the chain back to a fresh seed generation.
func (f *Filter) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	g, err := f.buildGeneration(0)
	if err != nil {
		// The seed geometry built once at New; it cannot fail now.
		panic(fmt.Sprintf("elastic: rebuild seed generation: %v", err))
	}
	f.gens = []*generation{g}
	f.grows = 1
	f.imports = 0
}
