// Package bitvec provides packed bit vectors and 4-bit counter vectors used
// as the storage substrate for every filter in this repository.
//
// The central primitives beyond ordinary get/set are range popcount and
// in-range bit insertion/removal (ShiftRightOne / ShiftLeftOne), which the
// hierarchical counting Bloom filter (internal/hcbf) uses to grow and shrink
// hierarchy levels inside a single machine word.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a fixed-length bit vector backed by a []uint64. Bit i of the
// vector is bit (i%64) of word i/64. The zero value is an empty vector;
// use New to allocate a sized one.
type Vector struct {
	words []uint64
	n     int
}

// New returns a zeroed bit vector of n bits.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the length of the vector in bits.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing storage. It is used by benchmarks to account
// memory; callers must not resize it.
func (v *Vector) Words() []uint64 { return v.words }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i to b.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		v.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Uint64At returns the 64 bits starting at bit offset off as a uint64 (bit
// off+i of the vector is bit i of the result). off must be 64-bit aligned
// and the window must lie inside the vector. This is the load half of the
// register-resident HCBF word kernel: one aligned load replaces a per-bit
// Get loop. The body is deliberately small enough to inline into hot query
// loops; the backing-slice bounds check covers the range check.
func (v *Vector) Uint64At(off int) uint64 {
	if off&63 != 0 {
		panic("bitvec: unaligned uint64 window")
	}
	return v.words[off>>6]
}

// SetUint64At stores w into the 64 bits starting at bit offset off, the
// store half of the word kernel. Same contract as Uint64At.
func (v *Vector) SetUint64At(off int, w uint64) {
	if off&63 != 0 {
		panic("bitvec: unaligned uint64 window")
	}
	v.words[off>>6] = w
}

// Ones returns the number of set bits in [start, end).
func (v *Vector) Ones(start, end int) int {
	if start < 0 || end > v.n || start > end {
		panic(fmt.Sprintf("bitvec: bad range [%d,%d) of %d", start, end, v.n))
	}
	if start == end {
		return 0
	}
	fw, lw := start>>6, (end-1)>>6
	if fw == lw {
		w := v.words[fw] >> (uint(start) & 63)
		return bits.OnesCount64(w & lowMask(end-start))
	}
	total := bits.OnesCount64(v.words[fw] >> (uint(start) & 63))
	for i := fw + 1; i < lw; i++ {
		total += bits.OnesCount64(v.words[i])
	}
	total += bits.OnesCount64(v.words[lw] & lowMask(end-lw*64))
	return total
}

// lowMask returns a mask with the low k bits set, for 1 <= k <= 64.
func lowMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// rangeMask returns the mask of bits of word index wi that fall inside the
// vector range [start, end).
func rangeMask(wi, start, end int) uint64 {
	mask := ^uint64(0)
	if lo := start - wi*64; lo > 0 {
		mask &= ^uint64(0) << uint(lo)
	}
	if hi := end - wi*64; hi < 64 {
		mask &= lowMask(hi)
	}
	return mask
}

// ShiftRightOne shifts the bits of [start, end) right (toward higher
// indices) by one position: the bit previously at i moves to i+1 for
// start <= i < end-1, the bit previously at end-1 is discarded, and the
// vacated bit at start is cleared. Bits outside the range are untouched.
func (v *Vector) ShiftRightOne(start, end int) {
	if start < 0 || end > v.n || start > end {
		panic(fmt.Sprintf("bitvec: bad range [%d,%d) of %d", start, end, v.n))
	}
	if end-start <= 1 {
		if end > start {
			v.Set(start, false)
		}
		return
	}
	fw, lw := start>>6, (end-1)>>6
	carry := uint64(0)
	for i := fw; i <= lw; i++ {
		w := v.words[i]
		shifted := w<<1 | carry
		carry = w >> 63
		mask := rangeMask(i, start, end)
		v.words[i] = w&^mask | shifted&mask
	}
	v.Set(start, false)
}

// ShiftLeftOne shifts the bits of [start, end) left (toward lower indices)
// by one position: the bit previously at i moves to i-1 for
// start < i < end, the bit previously at start is discarded, and the
// vacated bit at end-1 is cleared. Bits outside the range are untouched.
func (v *Vector) ShiftLeftOne(start, end int) {
	if start < 0 || end > v.n || start > end {
		panic(fmt.Sprintf("bitvec: bad range [%d,%d) of %d", start, end, v.n))
	}
	if end-start <= 1 {
		if end > start {
			v.Set(start, false)
		}
		return
	}
	fw, lw := start>>6, (end-1)>>6
	carry := uint64(0)
	for i := lw; i >= fw; i-- {
		w := v.words[i]
		shifted := w>>1 | carry<<63
		carry = w & 1
		mask := rangeMask(i, start, end)
		v.words[i] = w&^mask | shifted&mask
	}
	v.Set(end-1, false)
}

// InsertZero inserts a cleared bit at position pos within the window
// [pos, windowEnd): bits [pos, windowEnd-1) move right by one and the bit
// previously at windowEnd-1 is discarded. The caller is responsible for
// ensuring the discarded bit is not meaningful (the HCBF layer tracks word
// occupancy so the last bit is always zero when space remains).
func (v *Vector) InsertZero(pos, windowEnd int) {
	v.ShiftRightOne(pos, windowEnd)
}

// InsertOne inserts a set bit at position pos within [pos, windowEnd),
// shifting the tail right as InsertZero does.
func (v *Vector) InsertOne(pos, windowEnd int) {
	v.ShiftRightOne(pos, windowEnd)
	v.Set(pos, true)
}

// RemoveBit deletes the bit at position pos within the window
// [pos, windowEnd): bits (pos, windowEnd) move left by one and the vacated
// bit at windowEnd-1 is cleared.
func (v *Vector) RemoveBit(pos, windowEnd int) {
	v.ShiftLeftOne(pos, windowEnd)
}

// Reset clears every bit.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns a deep copy of the vector.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.words))
	copy(w, v.words)
	return &Vector{words: w, n: v.n}
}

// Equal reports whether v and o have identical length and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders the vector as a bit string, lowest index first. Intended
// for tests and debugging on short vectors.
func (v *Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// SizeBits returns the allocated storage in bits (a multiple of 64).
func (v *Vector) SizeBits() int { return len(v.words) * 64 }
