package server

// End-to-end crash-recovery test against the real mpcbfd binary: build
// it, serve on a loopback port, SIGKILL it mid-insert-stream, restart on
// the same data directory, and require every acknowledged mutation back.
// This is the durability contract (SyncAlways: ack implies fsync'd WAL
// record) exercised the only honest way — across a process boundary.
// The build/spawn/kill plumbing lives in repro/internal/e2e.

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/e2e"
)

func intKey(i int) []byte { return []byte(fmt.Sprintf("crash-key-%06d", i)) }

func TestIntegrationCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs the daemon binary")
	}
	bin := e2e.BuildDaemon(t)
	dir := t.TempDir()
	addr, httpAddr := e2e.FreePort(t), e2e.FreePort(t)
	cfg := e2e.DaemonConfig{Bin: bin, Dir: dir, Addr: addr, HTTPAddr: httpAddr}

	// Phase 1: serve, stream inserts, SIGKILL mid-stream.
	d1 := e2e.StartDaemon(t, cfg)
	c := e2e.DialRetry(t, addr)

	var acked atomic.Int64
	insertDone := make(chan struct{})
	go func() {
		defer close(insertDone)
		for i := 0; i < 20000; i++ {
			if err := c.Insert(intKey(i)); err != nil {
				return // the kill landed; everything before i was acked
			}
			acked.Add(1)
		}
	}()

	const killAfter = 500
	deadline := time.Now().Add(20 * time.Second)
	for acked.Load() < killAfter {
		if time.Now().After(deadline) {
			t.Fatalf("only %d inserts acked before deadline\n%s", acked.Load(), d1)
		}
		time.Sleep(time.Millisecond)
	}
	d1.Kill()
	<-insertDone
	c.Close()
	n := int(acked.Load())
	t.Logf("killed daemon with %d acked inserts", n)

	// Phase 2: restart on the same directory; every acked insert must be
	// present (zero false negatives — acked means fsync'd under
	// -fsync always).
	d2 := e2e.StartDaemon(t, cfg)
	c2 := e2e.DialRetry(t, addr)
	defer c2.Close()

	got, err := c2.Len()
	if err != nil {
		t.Fatal(err)
	}
	// Len may exceed acked by at most one: an insert can be applied and
	// logged but killed before the ack reached the client.
	if got < n || got > n+1 {
		t.Fatalf("recovered Len = %d, want %d or %d\n%s", got, n, n+1, d2)
	}
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = intKey(i)
	}
	const batch = 256
	for off := 0; off < n; off += batch {
		end := off + batch
		if end > n {
			end = n
		}
		flags, err := c2.ContainsBatch(keys[off:end])
		if err != nil {
			t.Fatal(err)
		}
		for j, ok := range flags {
			if !ok {
				t.Fatalf("acked key %d lost after crash", off+j)
			}
		}
	}

	// The sidecar reports the post-restart workload: replayed records,
	// ops, and a fill ratio matching the recovered population.
	metrics := httpGet(t, "http://"+httpAddr+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("mpcbfd_replayed_records %d", got),
		fmt.Sprintf("mpcbfd_filter_len %d", got),
		`mpcbfd_requests_total{op="contains_batch"}`,
		`mpcbfd_requests_total{op="len"} 1`,
		"mpcbfd_filter_fill_ratio ",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(httpGet(t, "http://"+httpAddr+"/healthz"), "ok") {
		t.Error("/healthz not ok")
	}

	// Phase 3: graceful SIGTERM writes a final snapshot; a third start
	// recovers from it with nothing to replay.
	if err := d2.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v\n%s", err, d2)
	}
	if !strings.Contains(d2.Output(), "clean shutdown") {
		t.Fatalf("no clean shutdown marker:\n%s", d2)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no final snapshot: %v %v", snaps, err)
	}

	d3 := e2e.StartDaemon(t, cfg)
	c3 := e2e.DialRetry(t, addr)
	defer c3.Close()
	if got3, err := c3.Len(); err != nil || got3 != got {
		t.Fatalf("post-snapshot Len = %d, %v, want %d", got3, err, got)
	}
	if !strings.Contains(d3.Output(), "replayed=0") {
		t.Fatalf("third start should replay nothing:\n%s", d3)
	}
}
