// Quickstart: build an MPCBF, insert, query, delete, and inspect its
// geometry and cost model — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	mpcbf "repro"
)

func main() {
	// Size the filter for 100K items in 8 Mb of memory: about an order of
	// magnitude lower false positive rate than a standard CBF would give
	// at the same budget, with one memory access per query.
	f, err := mpcbf.New(mpcbf.Options{
		MemoryBits:    8 << 20,
		ExpectedItems: 100000,
	})
	if err != nil {
		log.Fatal(err)
	}

	geo := f.Geometry()
	fmt.Printf("geometry: %d words x %d bits, first level %d bits, k=%d, g=%d, per-word capacity %d\n",
		geo.Words, geo.WordBits, geo.FirstLevelBits, geo.HashFunctions, geo.MemoryAccesses, geo.WordCapacity)
	fmt.Printf("expected fpr at 100K items: %.2e\n", f.ExpectedFPR(100000))

	// Insert a batch.
	for i := 0; i < 100000; i++ {
		if err := f.Insert([]byte(fmt.Sprintf("user-%d", i))); err != nil {
			log.Fatal(err)
		}
	}

	// Membership queries cost one memory access each.
	ok, cost := f.ContainsWithCost([]byte("user-42"))
	fmt.Printf("user-42 present=%v (%d memory access, %d hash bits)\n",
		ok, cost.MemoryAccesses, cost.HashBits)
	fmt.Printf("ghost present=%v\n", f.Contains([]byte("ghost")))

	// Counting filters support deletion — the reason to use a CBF at all.
	if err := f.Delete([]byte("user-42")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user-42 after delete=%v\n", f.Contains([]byte("user-42")))

	// Measure the actual false positive rate against the analytic value.
	fp := 0
	const probes = 200000
	for i := 0; i < probes; i++ {
		if f.Contains([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	fmt.Printf("measured fpr: %.2e over %d probes\n", float64(fp)/probes, probes)

	// Compare with a standard CBF at the same memory.
	c, err := mpcbf.NewCBF(mpcbf.Options{MemoryBits: 8 << 20})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		c.Insert([]byte(fmt.Sprintf("user-%d", i)))
	}
	fpC := 0
	for i := 0; i < probes; i++ {
		if c.Contains([]byte(fmt.Sprintf("absent-%d", i))) {
			fpC++
		}
	}
	fmt.Printf("standard CBF at same memory: fpr %.2e (expected %.2e)\n",
		float64(fpC)/probes, c.ExpectedFPR(100000))
}
