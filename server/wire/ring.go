package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Ring is the cluster membership descriptor resharding pushes to every
// node (protocol version 4). Epochs totally order descriptors: a node
// or client adopts a pushed ring only if its epoch is newer than what
// it holds. Joint marks the dual-write window — clients write to the
// key's owner under Old AND under New and ack only when both succeed,
// while reads OR both owners; a stable ring (Joint false) carries the
// same membership in Old and New.
//
// Wire encoding:
//
//	[u64 epoch][u8 joint][u16 nOld]([u8 len][addr])*nOld
//	[u16 nNew]([u8 len][addr])*nNew
type Ring struct {
	Epoch uint64
	Joint bool
	Old   []string // rendezvous members before the change
	New   []string // rendezvous members after the change
}

// MaxRingNodes bounds the member count of one ring side — far above any
// plausible deployment, tight enough to reject garbage frames.
const MaxRingNodes = 1024

// AppendRing encodes a ring descriptor.
func AppendRing(dst []byte, r Ring) []byte {
	dst = appendU64(dst, r.Epoch)
	dst = AppendBool(dst, r.Joint)
	for _, side := range [2][]string{r.Old, r.New} {
		dst = append(dst, byte(len(side)), byte(len(side)>>8))
		for _, addr := range side {
			dst = append(dst, byte(len(addr)))
			dst = append(dst, addr...)
		}
	}
	return dst
}

// DecodeRing parses a ring descriptor from the start of b and returns
// the remaining bytes. The addr strings are copies, safe to retain.
func DecodeRing(b []byte) (Ring, []byte, error) {
	if len(b) < 9 {
		return Ring{}, nil, errors.New("truncated ring header")
	}
	r := Ring{
		Epoch: binary.LittleEndian.Uint64(b[0:8]),
		Joint: b[8] != 0,
	}
	b = b[9:]
	for side := 0; side < 2; side++ {
		if len(b) < 2 {
			return Ring{}, nil, errors.New("truncated ring member count")
		}
		n := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if n > MaxRingNodes {
			return Ring{}, nil, fmt.Errorf("ring member count %d exceeds %d", n, MaxRingNodes)
		}
		addrs := make([]string, 0, n)
		for i := 0; i < n; i++ {
			if len(b) < 1 {
				return Ring{}, nil, errors.New("truncated ring member length")
			}
			l := int(b[0])
			b = b[1:]
			if l == 0 || l > len(b) {
				return Ring{}, nil, fmt.Errorf("ring member length %d invalid for %d remaining bytes", l, len(b))
			}
			addrs = append(addrs, string(b[:l]))
			b = b[l:]
		}
		if side == 0 {
			r.Old = addrs
		} else {
			r.New = addrs
		}
	}
	return r, b, nil
}

// AppendRingSetRequest encodes a RING_SET request pushing a ring
// descriptor.
func AppendRingSetRequest(dst []byte, r Ring) []byte {
	dst = append(dst, OpRingSet)
	return AppendRing(dst, r)
}

// AppendRingGetRequest encodes the body-less RING_GET request. The OK
// response body is an encoded Ring; epoch 0 means no ring installed.
func AppendRingGetRequest(dst []byte) []byte { return append(dst, OpRingGet) }

// AppendImportRequest encodes an IMPORT request carrying a complete
// marshaled filter to absorb.
func AppendImportRequest(dst []byte, blob []byte) []byte {
	dst = append(dst, OpImport)
	return append(dst, blob...)
}

// AppendElasticStatsRequest encodes the body-less ELASTIC_STATS request
// payload.
func AppendElasticStatsRequest(dst []byte) []byte { return append(dst, OpElasticStats) }

// ElasticGenStats is one generation of an ELASTIC_STATS response.
type ElasticGenStats struct {
	Items      uint64
	Capacity   uint64 // 0 for imported generations
	FillRatio  float64
	Budget     float64 // generation's slice of the chain FPR bound
	MemoryBits uint64
	Imported   bool
}

// ElasticStats is the decoded ELASTIC_STATS response body: the shape of
// an elastic chain, oldest generation first (last entry is the head).
type ElasticStats struct {
	Grows     uint32
	Imports   uint64
	TargetFPR float64
	Gens      []ElasticGenStats
}

const elasticGenStatsSize = 8 + 8 + 8 + 8 + 8 + 1

// AppendElasticStats encodes an ELASTIC_STATS response body.
func AppendElasticStats(dst []byte, s ElasticStats) []byte {
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(s.Gens)))
	dst = append(dst, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], s.Grows)
	dst = append(dst, u32[:]...)
	dst = appendU64(dst, s.Imports)
	dst = appendU64(dst, math.Float64bits(s.TargetFPR))
	for _, g := range s.Gens {
		dst = appendU64(dst, g.Items)
		dst = appendU64(dst, g.Capacity)
		dst = appendU64(dst, math.Float64bits(g.FillRatio))
		dst = appendU64(dst, math.Float64bits(g.Budget))
		dst = appendU64(dst, g.MemoryBits)
		dst = AppendBool(dst, g.Imported)
	}
	return dst
}

// DecodeElasticStats parses an ELASTIC_STATS response body.
func DecodeElasticStats(body []byte) (ElasticStats, error) {
	const hdr = 4 + 4 + 8 + 8
	if len(body) < hdr {
		return ElasticStats{}, errors.New("wire: truncated elastic_stats response")
	}
	n := int(binary.LittleEndian.Uint32(body[0:4]))
	s := ElasticStats{
		Grows:     binary.LittleEndian.Uint32(body[4:8]),
		Imports:   binary.LittleEndian.Uint64(body[8:16]),
		TargetFPR: math.Float64frombits(binary.LittleEndian.Uint64(body[16:24])),
	}
	rest := body[hdr:]
	if uint64(len(rest)) != uint64(n)*elasticGenStatsSize {
		return ElasticStats{}, fmt.Errorf("wire: elastic_stats: %d trailing bytes for %d generations", len(rest), n)
	}
	s.Gens = make([]ElasticGenStats, n)
	for i := range s.Gens {
		b := rest[i*elasticGenStatsSize:]
		s.Gens[i] = ElasticGenStats{
			Items:      binary.LittleEndian.Uint64(b[0:8]),
			Capacity:   binary.LittleEndian.Uint64(b[8:16]),
			FillRatio:  math.Float64frombits(binary.LittleEndian.Uint64(b[16:24])),
			Budget:     math.Float64frombits(binary.LittleEndian.Uint64(b[24:32])),
			MemoryBits: binary.LittleEndian.Uint64(b[32:40]),
			Imported:   b[40] != 0,
		}
	}
	return s, nil
}
