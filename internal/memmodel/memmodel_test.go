package memmodel

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestSequentialAddsPipelinedMaxes(t *testing.T) {
	st := metrics.OpStats{MemAccesses: 3}
	soft := Technology{AccessNs: 10, HashNs: 5}
	hard := Technology{AccessNs: 10, HashNs: 5, Pipelined: true}
	if got := soft.OpLatencyNs(st, 4); got != 3*10+4*5 {
		t.Fatalf("sequential latency = %v", got)
	}
	if got := hard.OpLatencyNs(st, 4); got != 30 {
		t.Fatalf("pipelined latency = %v, want max(30,5)", got)
	}
	if got := hard.OpLatencyNs(metrics.OpStats{}, 4); got != 5 {
		t.Fatalf("pipelined hash-bound latency = %v, want 5 (parallel units)", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := ThroughputMops(10); got != 100 {
		t.Fatalf("10ns -> %v Mops, want 100", got)
	}
	if ThroughputMops(0) != 0 {
		t.Fatal("zero latency should yield zero throughput sentinel")
	}
}

func TestHardwareInvertsOrdering(t *testing.T) {
	// The paper's Fig. 8 story: in software (hash-dominated), a CBF with 3
	// hashes can beat an MPCBF-2 with 4; in hardware (access-dominated,
	// pipelined), MPCBF-2's 2 accesses beat CBF's 3.
	cbfQ := metrics.OpStats{MemAccesses: 3}
	mp2Q := metrics.OpStats{MemAccesses: 2}
	soft := SoftwareCache
	hard := HardwareSRAM
	if soft.OpLatencyNs(cbfQ, 3) >= soft.OpLatencyNs(mp2Q, 4) {
		t.Fatalf("software model should favor fewer hashes: %v vs %v",
			soft.OpLatencyNs(cbfQ, 3), soft.OpLatencyNs(mp2Q, 4))
	}
	if hard.OpLatencyNs(cbfQ, 3) <= hard.OpLatencyNs(mp2Q, 4) {
		t.Fatalf("hardware model should favor fewer accesses: %v vs %v",
			hard.OpLatencyNs(cbfQ, 3), hard.OpLatencyNs(mp2Q, 4))
	}
}

func TestString(t *testing.T) {
	if !strings.Contains(HardwareSRAM.String(), "SRAM") {
		t.Fatal("String missing name")
	}
}
