//go:build !race

package server

// raceEnabled gates tests that are meaningless under the race detector
// (e.g. allocation guards: -race instruments allocations).
const raceEnabled = false
