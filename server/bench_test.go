package server

import (
	"fmt"
	"testing"

	mpcbf "repro"
	"repro/server/wire"
)

// Benchmarks for the serving hot path: store-level ops (filter + WAL)
// and the server dispatch loop. These are the before/after pair for any
// change that touches the request path — observability instrumentation
// in particular must stay atomics/branch-only when sampling is off, and
// these numbers prove it.

func benchStore(b *testing.B) *Store {
	b.Helper()
	st, err := OpenStore(StoreOptions{
		Dir: b.TempDir(),
		Filter: mpcbf.Options{
			MemoryBits:    1 << 23,
			ExpectedItems: 200_000,
		},
		Shards: 8,
		Sync:   SyncNever, // isolate CPU cost from disk
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st
}

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench-key-%08d", i))
	}
	return keys
}

func BenchmarkStoreInsertDelete(b *testing.B) {
	st := benchStore(b)
	keys := benchKeys(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if err := st.Insert(k); err != nil {
			b.Fatal(err)
		}
		if err := st.Delete(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreContains(b *testing.B) {
	st := benchStore(b)
	keys := benchKeys(4096)
	for _, k := range keys[:2048] {
		if err := st.Insert(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Contains(keys[i%len(keys)])
	}
}

// BenchmarkDispatch runs decoded requests through the server dispatch
// path (store op + response encode), the full per-request CPU cost minus
// the socket.
func BenchmarkDispatchContains(b *testing.B) {
	st := benchStore(b)
	srv := New(st, Config{}, nil)
	keys := benchKeys(4096)
	for _, k := range keys[:2048] {
		if err := st.Insert(k); err != nil {
			b.Fatal(err)
		}
	}
	var resp []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := wire.Request{Op: wire.OpContains, Key: keys[i%len(keys)]}
		resp, _ = srv.dispatch(req, resp[:0], nil)
	}
}

func BenchmarkDispatchInsertDelete(b *testing.B) {
	st := benchStore(b)
	srv := New(st, Config{}, nil)
	keys := benchKeys(4096)
	var resp []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		resp, _ = srv.dispatch(wire.Request{Op: wire.OpInsert, Key: k}, resp[:0], nil)
		resp, _ = srv.dispatch(wire.Request{Op: wire.OpDelete, Key: k}, resp[:0], nil)
	}
}
