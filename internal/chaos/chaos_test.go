package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

var genCfg = GenConfig{
	Duration:  3 * time.Second,
	Kill:      []string{"primary"},
	Partition: []string{"replica-link"},
	SlowFsync: []string{"primary"},
}

// TestScheduleDeterminism: same seed, byte-identical schedule; any two
// of the first 32 seeds diverge somewhere.
func TestScheduleDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		a := Generate(seed, genCfg).Format()
		b := Generate(seed, genCfg).Format()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two expansions differ:\n%s\n--- vs ---\n%s", seed, a, b)
		}
	}
	logs := map[string]uint64{}
	for seed := uint64(1); seed <= 32; seed++ {
		l := string(Generate(seed, genCfg).Format())
		if prev, dup := logs[l]; dup {
			t.Fatalf("seeds %d and %d generated identical schedules:\n%s", prev, seed, l)
		}
		logs[l] = seed
	}
}

// TestScheduleShape: generated schedules validate, are ordered, pair
// every fault with its repair, and keep repairs inside the window with
// convergence slack.
func TestScheduleShape(t *testing.T) {
	for seed := uint64(1); seed <= 16; seed++ {
		s := Generate(seed, genCfg)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(s) != 6 {
			t.Fatalf("seed %d: %d events, want 6 (3 fault/repair pairs)", seed, len(s))
		}
		repair := map[Action]Action{ActionKill: ActionRestart, ActionPartition: ActionHeal, ActionSlowFsync: ActionFsyncOK}
		for fault, rep := range repair {
			var fAt, rAt time.Duration = -1, -1
			for _, e := range s {
				switch e.Action {
				case fault:
					fAt = e.At
				case rep:
					rAt = e.At
				}
			}
			if fAt < 0 || rAt < 0 {
				t.Fatalf("seed %d: missing %s/%s pair", seed, fault, rep)
			}
			if rAt <= fAt {
				t.Fatalf("seed %d: %s at %v not after %s at %v", seed, rep, rAt, fault, fAt)
			}
			if rAt > (genCfg.Duration*3)/4 {
				t.Fatalf("seed %d: repair at %v leaves no convergence slack in %v", seed, rAt, genCfg.Duration)
			}
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Schedule{
		{{At: 10 * time.Millisecond, Target: "x", Action: ActionKill}, {At: 5 * time.Millisecond, Target: "x", Action: ActionRestart}},
		{{Target: "", Action: ActionKill}},
		{{Target: "x", Action: Action("explode")}},
		{{Target: "x", Action: ActionSlowFsync, Arg: "banana"}},
		{{Target: "x", Action: ActionKill, Arg: "9"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad schedule %d validated", i)
		}
	}
	good := Schedule{
		{At: 0, Target: "a", Action: ActionDiskFull},
		{At: time.Millisecond, Target: "a", Action: ActionDiskOK},
		{At: time.Millisecond, Target: "a", Action: ActionSlowFsync, Arg: "2ms"},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRunnerReplay: two runs of one schedule produce byte-identical
// event logs equal to the schedule's own canonical rendering, applied
// in order and roughly on time.
func TestRunnerReplay(t *testing.T) {
	s := Schedule{
		{At: 0, Target: "a", Action: ActionPartition},
		{At: 30 * time.Millisecond, Target: "a", Action: ActionHeal},
		{At: 60 * time.Millisecond, Target: "b", Action: ActionSlowFsync, Arg: "2ms"},
	}
	run := func() ([]byte, []string) {
		var applied []string
		r := &Runner{Apply: func(e Event) error {
			applied = append(applied, string(e.Action))
			return nil
		}}
		if err := r.Run(context.Background(), s); err != nil {
			t.Fatal(err)
		}
		return r.EventLog(), applied
	}
	log1, applied1 := run()
	log2, _ := run()
	if !bytes.Equal(log1, log2) {
		t.Fatalf("two replays diverge:\n%s--- vs ---\n%s", log1, log2)
	}
	if !bytes.Equal(log1, s.Format()) {
		t.Fatalf("event log differs from schedule rendering:\n%s--- vs ---\n%s", log1, s.Format())
	}
	want := []string{"partition", "heal", "slow-fsync"}
	for i := range want {
		if applied1[i] != want[i] {
			t.Fatalf("apply order %v, want %v", applied1, want)
		}
	}
}

func TestRunnerAbortsOnApplyError(t *testing.T) {
	s := Schedule{
		{At: 0, Target: "a", Action: ActionKill},
		{At: time.Millisecond, Target: "a", Action: ActionRestart},
	}
	boom := fmt.Errorf("no such process")
	calls := 0
	r := &Runner{Apply: func(e Event) error { calls++; return boom }}
	err := r.Run(context.Background(), s)
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want wrapped error after first apply", err, calls)
	}
	if len(r.EventLog()) != 0 {
		t.Fatalf("failed event logged: %s", r.EventLog())
	}
}

func TestRunnerContextCancel(t *testing.T) {
	s := Schedule{{At: time.Hour, Target: "a", Action: ActionKill}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	r := &Runner{Apply: func(Event) error { t.Fatal("applied despite cancel"); return nil }}
	if err := r.Run(ctx, s); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); <-done }
}

// roundTrip sends one byte through the proxy and expects the echo.
func roundTrip(addr string) error {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte{'x'}); err != nil {
		return err
	}
	var b [1]byte
	if _, err := c.Read(b[:]); err != nil {
		return err
	}
	return nil
}

// TestProxyPartitionHeal: traffic flows, a partition kills live and new
// connections, healing restores flow, and teardown leaks nothing — the
// goroutine count returns to baseline.
func TestProxyPartitionHeal(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()

	before := runtime.NumGoroutine()

	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(p.Addr()); err != nil {
		t.Fatalf("pass-through round trip: %v", err)
	}

	// A held-open connection dies when the partition lands.
	held, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	if _, err := held.Write([]byte{'x'}); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	held.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := held.Read(b[:]); err != nil {
		t.Fatal(err)
	}

	p.SetDrop(true)
	held.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := held.Read(b[:]); err == nil {
		t.Fatal("held connection survived the partition")
	}
	if err := roundTrip(p.Addr()); err == nil {
		t.Fatal("new connection succeeded through a partition")
	}

	p.SetDrop(false)
	if err := roundTrip(p.Addr()); err != nil {
		t.Fatalf("round trip after heal: %v", err)
	}

	// Delay mode: a 20ms one-way delay makes the echo round trip >= 40ms.
	p.SetDelay(20 * time.Millisecond)
	t0 := time.Now()
	if err := roundTrip(p.Addr()); err != nil {
		t.Fatalf("delayed round trip: %v", err)
	}
	if d := time.Since(t0); d < 40*time.Millisecond {
		t.Fatalf("delayed round trip took %v, want >= 40ms", d)
	}
	p.SetDelay(0)

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if n := p.ActiveConns(); n != 0 {
		t.Fatalf("%d connection halves still tracked after Close", n)
	}

	// Leak check: Close waits on the proxy's WaitGroup, so every relay
	// and accept goroutine is gone; give unrelated runtime goroutines a
	// beat to settle and require the count back at (or below) baseline
	// plus slack for the test's own echo handlers that are unwinding.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProxyCloseIdempotent: Close twice is safe, and a proxy with live
// traffic in flight still unwinds.
func TestProxyCloseIdempotent(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte{'x'})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(p.Addr()); err == nil {
		t.Fatal("round trip succeeded through a closed proxy")
	}
}
