package spectral

import (
	"fmt"
	"testing"

	"repro/internal/hashing"
)

func keys(prefix string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-%d", prefix, i))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, false, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(10, 0, true, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestEstimateNeverUndercounts(t *testing.T) {
	for _, minInc := range []bool{false, true} {
		f, _ := New(1<<14, 4, minInc, 1)
		rng := hashing.NewRNG(2)
		truth := make(map[string]int)
		universe := keys("u", 500)
		for op := 0; op < 20000; op++ {
			k := universe[rng.Intn(len(universe))]
			f.Insert(k)
			truth[string(k)]++
		}
		for k, n := range truth {
			if got := f.Estimate([]byte(k)); got < n {
				t.Fatalf("minInc=%v: Estimate(%q) = %d below truth %d", minInc, k, got, n)
			}
		}
	}
}

func TestMinimalIncreaseNeverWorse(t *testing.T) {
	// The SBF theorem: for every key, the Minimal Increase estimate is at
	// most the plain-increment estimate under the same insert sequence and
	// hash family.
	plain, _ := New(1<<12, 3, false, 7)
	mi, _ := New(1<<12, 3, true, 7)
	rng := hashing.NewRNG(3)
	universe := keys("u", 2000)
	var seq [][]byte
	for op := 0; op < 30000; op++ {
		k := universe[rng.Intn(len(universe))]
		seq = append(seq, k)
		plain.Insert(k)
		mi.Insert(k)
	}
	for _, k := range universe {
		if mi.Estimate(k) > plain.Estimate(k) {
			t.Fatalf("minimal increase worsened %q: %d > %d", k, mi.Estimate(k), plain.Estimate(k))
		}
	}
	_ = seq
}

func TestMinimalIncreaseReducesError(t *testing.T) {
	// Aggregate estimation error must drop clearly under Minimal Increase
	// at a loaded operating point.
	const m, nKeys, inserts = 8192, 4000, 40000
	plain, _ := New(m, 3, false, 9)
	mi, _ := New(m, 3, true, 9)
	rng := hashing.NewRNG(4)
	truth := make(map[string]int)
	universe := keys("u", nKeys)
	for op := 0; op < inserts; op++ {
		k := universe[rng.Intn(nKeys)]
		plain.Insert(k)
		mi.Insert(k)
		truth[string(k)]++
	}
	var errPlain, errMI int
	for k, n := range truth {
		errPlain += plain.Estimate([]byte(k)) - n
		errMI += mi.Estimate([]byte(k)) - n
	}
	if errMI*2 >= errPlain {
		t.Fatalf("minimal increase error %d not well below plain %d", errMI, errPlain)
	}
}

func TestContains(t *testing.T) {
	f, _ := New(1<<12, 3, true, 0)
	if f.Contains([]byte("x")) {
		t.Fatal("fresh filter positive")
	}
	f.Insert([]byte("x"))
	if !f.Contains([]byte("x")) {
		t.Fatal("false negative")
	}
}

func TestExactWhenSparse(t *testing.T) {
	// With a nearly empty filter the estimates are exact.
	f, _ := New(1<<16, 4, true, 5)
	for i, k := range keys("sparse", 20) {
		for j := 0; j <= i; j++ {
			f.Insert(k)
		}
	}
	for i, k := range keys("sparse", 20) {
		if got := f.Estimate(k); got != i+1 {
			t.Fatalf("Estimate(%q) = %d, want %d", k, got, i+1)
		}
	}
}

func TestReset(t *testing.T) {
	f, _ := New(256, 3, true, 0)
	f.Insert([]byte("a"))
	f.Reset()
	if f.Count() != 0 || f.Contains([]byte("a")) {
		t.Fatal("Reset incomplete")
	}
}

func TestAccessors(t *testing.T) {
	f, _ := New(100, 3, false, 0)
	if f.M() != 100 || f.K() != 3 || f.MemoryBits() != 3200 {
		t.Fatal("accessor mismatch")
	}
}
